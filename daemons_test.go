package tft

// Cross-process integration: build the four daemons, launch them as real
// processes wired together over loopback, and drive a proxied measurement
// through the assembled service — the paper's infrastructure as separate
// programs.

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"github.com/tftproject/tft/internal/content"
	"github.com/tftproject/tft/internal/proxynet"
)

// freePort grabs an available loopback TCP port.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

func freeUDPPort(t *testing.T) int {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	return pc.LocalAddr().(*net.UDPAddr).Port
}

func TestDaemonsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-process test in -short mode")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin, "./cmd/authdns", "./cmd/originweb", "./cmd/superproxy", "./cmd/exitnode")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building daemons: %v", err)
	}

	dnsPort := freeUDPPort(t)
	webPort := freePort(t)
	proxyPort := freePort(t)
	agentPort := freePort(t)

	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	start := func(name string, args ...string) {
		t.Helper()
		cmd := exec.CommandContext(ctx, filepath.Join(bin, name), args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", name, err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
	}

	start("authdns",
		"-listen", fmt.Sprintf("127.0.0.1:%d", dnsPort),
		"-web", "127.0.0.1", "-super-src", "127.0.0.2", "-log=false")
	start("originweb", "-listen", fmt.Sprintf("127.0.0.1:%d", webPort))
	start("superproxy",
		"-listen", fmt.Sprintf("127.0.0.1:%d", proxyPort),
		"-agents", fmt.Sprintf("127.0.0.1:%d", agentPort),
		"-dns", fmt.Sprintf("127.0.0.1:%d", dnsPort),
		"-dns-bind", "127.0.0.2",
		"-http-port", fmt.Sprint(webPort))
	start("exitnode",
		"-zid", "zproc0001", "-country", "DE",
		"-gateway", fmt.Sprintf("127.0.0.1:%d", agentPort),
		"-dns", fmt.Sprintf("127.0.0.1:%d", dnsPort),
		"-dns-bind", "127.0.0.3")

	client := &proxynet.Client{
		Net: &proxynet.TCPDialer{
			MapAddr: func(netip.Addr, uint16) string {
				return fmt.Sprintf("127.0.0.1:%d", proxyPort)
			},
			Timeout: 2 * time.Second,
		},
		Src:   netip.MustParseAddr("127.0.0.1"),
		Proxy: netip.MustParseAddr("127.0.0.1"),
		User:  "lum-customer-it", Password: "pw",
	}

	// The agent needs a moment to register; retry the proxied GET until the
	// service is assembled.
	deadline := time.Now().Add(15 * time.Second)
	url := fmt.Sprintf("http://d1-proc.probe.tft-example.net:%d/object.css", webPort)
	var lastErr string
	for time.Now().Before(deadline) {
		resp, dbg, err := client.Get(context.Background(), proxynet.Options{RemoteDNS: true}, url)
		if err == nil && resp.StatusCode == 200 && dbg.ZID == "zproc0001" {
			if string(resp.Body) != string(content.Object(content.KindCSS)) {
				t.Fatalf("body mismatch: %d bytes", len(resp.Body))
			}
			// And the honest-NXDOMAIN path across processes: d2 names are
			// gated on the super proxy's 127.0.0.2 source, so the node's
			// 127.0.0.3 resolver sees NXDOMAIN.
			d2url := fmt.Sprintf("http://d2-proc.probe.tft-example.net:%d/", webPort)
			resp2, dbg2, err := client.Get(context.Background(), proxynet.Options{RemoteDNS: true}, d2url)
			if err != nil {
				t.Fatal(err)
			}
			if !dbg2.PeerNXDomain() {
				t.Fatalf("d2 probe: status %d, dbg %+v", resp2.StatusCode, dbg2)
			}
			return
		}
		if err != nil {
			lastErr = err.Error()
		} else {
			lastErr = fmt.Sprintf("status %d dbg %+v", resp.StatusCode, dbg)
		}
		time.Sleep(200 * time.Millisecond)
	}
	t.Fatalf("service never assembled: %s", lastErr)
}
