module github.com/tftproject/tft

go 1.22
