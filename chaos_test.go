package tft

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
)

// chaosOpts is the fixed-seed configuration the chaos soaks run under; a
// single worker keeps the crawl's completion order deterministic so the
// byte-identity check is exact, matching TestDNSRunDeterministic.
func chaosOpts(profile string) Options {
	return Options{Seed: 20160413, Scale: 0.02, Workers: 1, Chaos: profile}
}

// TestChaosDNSSoakDeterministic is the chaos plane's end-to-end gate: a
// fixed-seed DNS crawl under the lossy-links profile (client-visible faults
// on every port) must actually lose probes to injected faults, exclude them
// from the violation denominator rather than misclassify them, keep the
// stall watchdog silent, and — run twice — produce byte-identical tables,
// datasets, and stats. Any wall-clock leak or unseeded draw in the fault
// plane or the breaker shows up here as a diff.
func TestChaosDNSSoakDeterministic(t *testing.T) {
	opts := chaosOpts("lossy-links")
	first, err := RunDNS(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunDNS(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	a, b := renderDNS(t, first), renderDNS(t, second)
	if !bytes.Equal(a, b) {
		t.Fatalf("fixed-seed chaos runs diverged:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	if len(a) == 0 {
		t.Fatal("rendered report is empty; determinism check proved nothing")
	}

	st := first.Stats()
	if st.Faulted == 0 {
		t.Fatal("lossy-links soak injected no client-visible faults; the chaos plane is not armed")
	}
	man := first.Manifest()
	if man.Faults != int64(st.Faulted) {
		t.Fatalf("manifest faults = %d, stats faulted = %d", man.Faults, st.Faulted)
	}
	if man.Stalls != 0 {
		t.Fatalf("stall watchdog fired %d times under chaos", man.Stalls)
	}
	if !strings.Contains(first.Headline(), "error budget") {
		t.Fatalf("headline missing the error-budget line:\n%s", first.Headline())
	}

	// Faulted probes must be excluded, not misclassified: the hijack rate
	// under chaos stays within a small tolerance of the fault-free baseline
	// (the surviving sample is a random subset of the same population).
	baseline, err := RunDNS(context.Background(), chaosOpts(""))
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Stats().Faulted != 0 {
		t.Fatalf("fault-free baseline reports %d faulted probes", baseline.Stats().Faulted)
	}
	got := first.Analysis.Summary().HijackPct
	want := baseline.Analysis.Summary().HijackPct
	if diff := math.Abs(got - want); diff > 2.0 {
		t.Fatalf("hijack rate under chaos %.2f%% vs baseline %.2f%% (|diff| %.2f > 2.0pp): faulted probes are skewing the rate", got, want, diff)
	}
}

// TestChaosHTTPSoak drives the HTTP experiment under the slow-network
// profile (trickle + stalls on every stream). The run must complete without
// hanging, report its error budget, and reproduce byte-identically under
// the same seed.
func TestChaosHTTPSoak(t *testing.T) {
	opts := chaosOpts("slow-network")
	render := func(r *HTTPRun) []byte {
		var buf bytes.Buffer
		for _, tbl := range r.Tables() {
			buf.WriteString(tbl.String())
		}
		buf.WriteString(r.Headline())
		if err := r.WriteDataset(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first, err := RunHTTP(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunHTTP(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	a, b := render(first), render(second)
	if !bytes.Equal(a, b) {
		t.Fatalf("fixed-seed chaos runs diverged:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	if first.Stats().Faulted == 0 {
		t.Fatal("slow-network soak injected no client-visible faults")
	}
	if man := first.Manifest(); man.Stalls != 0 {
		t.Fatalf("stall watchdog fired %d times under chaos", man.Stalls)
	}
}

// TestChaosUnknownProfile: a typo in -chaos must fail fast with the valid
// profile names, not run fault-free and silently report a clean campaign.
func TestChaosUnknownProfile(t *testing.T) {
	_, err := RunDNS(context.Background(), chaosOpts("flaky-links"))
	if err == nil {
		t.Fatal("unknown chaos profile accepted")
	}
	if !strings.Contains(err.Error(), "flaky-links") || !strings.Contains(err.Error(), "lossy-links") {
		t.Fatalf("error does not name the bad profile and the valid ones: %v", err)
	}
}
