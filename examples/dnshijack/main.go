// dnshijack demonstrates the §4 NXDOMAIN methodology over REAL sockets on
// loopback: an authoritative UDP DNS server with the d1/d2 gate, a
// measurement web server and an ISP "search assist" landing page over TCP,
// a super proxy with its agent gateway, and two exit-node agents — one
// honest, one behind a hijacking resolver.
//
// Distinct 127.x.y.z source addresses stand in for the distinct resolver
// egress IPs the real methodology keys on.
//
//	go run ./examples/dnshijack
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/netip"
	"strings"
	"time"

	"github.com/tftproject/tft/internal/dnsserver"
	"github.com/tftproject/tft/internal/geo"
	"github.com/tftproject/tft/internal/middlebox"
	"github.com/tftproject/tft/internal/origin"
	"github.com/tftproject/tft/internal/proxynet"
	"github.com/tftproject/tft/internal/simnet"
)

const zone = "probe.tft-example.net"

var (
	loop      = netip.MustParseAddr("127.0.0.1")
	superSrc  = netip.MustParseAddr("127.0.0.2") // super proxy resolver egress
	honestSrc = netip.MustParseAddr("127.0.0.3") // honest node's resolver egress
	hijackSrc = netip.MustParseAddr("127.0.0.4") // hijacking resolver egress
)

func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}

func listen() (net.Listener, uint16) {
	l := must(net.Listen("tcp", "127.0.0.1:0"))
	ap := must(netip.ParseAddrPort(l.Addr().String()))
	return l, ap.Port()
}

func main() {
	// Authoritative DNS over UDP with the d1/d2 gate keyed on superSrc.
	auth := dnsserver.NewAuthority(zone, simnet.Real{})
	pc := must(net.ListenPacket("udp", "127.0.0.1:0"))
	go dnsserver.ServeUDP(pc, auth.Handler())
	dnsAP := must(netip.ParseAddrPort(pc.LocalAddr().String()))
	fmt.Printf("authoritative DNS on %s (gate source: %s)\n", pc.LocalAddr(), superSrc)

	// Measurement web server and the ISP landing page over TCP.
	web := origin.NewServer(simnet.Real{})
	wl, webPort := listen()
	go proxynet.ServeListener(wl, web.ConnHandler())
	landing := middlebox.LandingSpec{
		Operator:        "LoopTel",
		RedirectURL:     "http://searchassist.looptel.example/results",
		SharedAppliance: true, AdCount: 2,
	}.Render()
	ll, landingPort := listen()
	go proxynet.ServeListener(ll, origin.StaticPage(landing, "text/html"))
	fmt.Printf("web server on :%d, landing page on :%d\n", webPort, landingPort)

	auth.SetFallback(func(name string) dnsserver.Rule {
		label, _, _ := strings.Cut(name, ".")
		switch {
		case strings.HasPrefix(label, "d1-"):
			return dnsserver.Always(loop)
		case strings.HasPrefix(label, "d2-"):
			return dnsserver.OnlyFrom(loop, func(src netip.Addr) bool { return src == superSrc })
		}
		return nil
	})

	// Super proxy with agent gateway; its resolver queries from superSrc.
	upstream := func(string) (netip.Addr, bool) { return dnsAP.Addr(), true }
	spResolver := &dnsserver.Resolver{
		Addr:      geo.GoogleDNSAddr,
		Net:       &dnsserver.UDPExchanger{Port: dnsAP.Port(), BindSrc: true, Timeout: 2 * time.Second},
		Upstream:  upstream,
		EgressFor: func(netip.Addr) netip.Addr { return superSrc },
	}
	pool := proxynet.NewPool(simnet.NewRand(1), 0)
	sp := proxynet.NewSuperProxy(loop, pool, spResolver, simnet.Real{})
	sp.HTTPPort = webPort
	cl, _ := listen()
	go sp.Serve(cl)
	gw := proxynet.NewGateway(pool)
	al, _ := listen()
	go gw.Serve(al)

	// Two exit-node agents: honest and hijacking.
	startAgent := func(zid string, egress netip.Addr, hijack dnsserver.NXRewriter, mapLanding bool) {
		resolver := &dnsserver.Resolver{
			Addr:      egress,
			Net:       &dnsserver.UDPExchanger{Port: dnsAP.Port(), BindSrc: true, Timeout: 2 * time.Second},
			Upstream:  upstream,
			Hijack:    hijack,
			EgressFor: func(netip.Addr) netip.Addr { return egress },
		}
		dialer := &proxynet.TCPDialer{Timeout: 2 * time.Second}
		if mapLanding {
			dialer.MapAddr = func(dst netip.Addr, port uint16) string {
				// NXDOMAIN answers point at the landing host; route the
				// node's port-80-equivalent fetch there.
				if port == webPort && dst == loop {
					return fmt.Sprintf("127.0.0.1:%d", landingPort)
				}
				return fmt.Sprintf("%s:%d", dst, port)
			}
		}
		node := &proxynet.ExitNode{
			ZID: zid, Addr: loop, Country: "DE", Resolver: resolver, Net: dialer,
		}
		go (&proxynet.Agent{Node: node, Gateway: al.Addr().String(), Conns: 2}).Run(context.Background())
	}
	startAgent("zhonest01", honestSrc, nil, false)
	startAgent("zhijack01", hijackSrc,
		dnsserver.StaticNX{Name: "LoopTel", Landing: loop}, true)

	for pool.Len() < 2 {
		//tftlint:ignore simclock -- settle poll while real agents register over real sockets
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("exit nodes registered: %v\n\n", gw.Peers())

	// The measurement client runs the d1/d2 probe against each node.
	client := &proxynet.Client{
		Net: &proxynet.TCPDialer{
			MapAddr: func(netip.Addr, uint16) string { return cl.Addr().String() },
			Timeout: 2 * time.Second},
		Src: loop, Proxy: loop, User: "lum-customer-demo", Password: "pw",
	}
	for i, zid := range []string{"zhonest01", "zhijack01"} {
		// Pin the session to the node we want by retrying until it serves.
		sess := fmt.Sprintf("demo%d", i)
		opts := proxynet.Options{Session: sess, RemoteDNS: true}
		var dbg *proxynet.Debug
		for try := 0; try < 50; try++ {
			_, d, err := client.Get(context.Background(), opts,
				fmt.Sprintf("http://d1-%s-%d.%s:%d/", sess, try, zone, webPort))
			if err != nil {
				log.Fatal(err)
			}
			dbg = d
			if d.ZID == zid {
				break
			}
			opts.Session = fmt.Sprintf("demo%d-%d", i, try)
		}
		if dbg.ZID != zid {
			log.Fatalf("could not land on %s", zid)
		}
		resp, d2dbg, err := client.Get(context.Background(), opts,
			fmt.Sprintf("http://d2-%s.%s:%d/", opts.Session, zone, webPort))
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case d2dbg.PeerNXDomain():
			fmt.Printf("node %s: NXDOMAIN passed through untouched -> NOT hijacked\n", zid)
		case resp.StatusCode == 200:
			fmt.Printf("node %s: NXDOMAIN replaced with %d bytes of content -> HIJACKED\n", zid, len(resp.Body))
			if strings.Contains(string(resp.Body), middlebox.SharedRedirectJS) {
				fmt.Println("   landing page carries the shared redirect-appliance JavaScript (§4.3.1)")
			}
		default:
			fmt.Printf("node %s: unexpected outcome %d (%s)\n", zid, resp.StatusCode, d2dbg.Err)
		}
	}
}
