// monitoring demonstrates the §7 content-monitoring detection: unique
// per-node domains are fetched once through exit nodes whose machines run
// AV reputation scanners or sit behind monitoring ISPs; the origin server
// then records "unexpected" third-party fetches of those domains over a 24
// virtual-hour window, and the analysis recovers who monitors whom and the
// delay distributions of Figure 5.
//
//	go run ./examples/monitoring
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	tft "github.com/tftproject/tft"
	"github.com/tftproject/tft/internal/analysis"
)

func main() {
	fmt.Println("Building a monitoring world (2% scale) and fetching one unique URL per node...")
	run, err := tft.RunMonitor(context.Background(), tft.Options{Seed: 1606, Scale: 0.02})
	if err != nil {
		log.Fatal(err)
	}

	s := run.Analysis.Summary()
	fmt.Printf("\n%d nodes measured; %d (%.2f%%) had their requests refetched by third parties\n",
		s.MeasuredNodes, s.Monitored, s.MonitoredPct)
	fmt.Printf("unexpected requests came from %d addresses in %d AS groups\n\n", s.UniqueIPs, s.ASGroups)

	rows, table := run.Analysis.Table9(6)
	fmt.Println(table)
	_, fig5 := run.Analysis.Figure5Table(6)
	fmt.Println(fig5)
	fmt.Println(analysis.PlotCDFs(run.Analysis.Figure5(6), 90, 18))

	// Walk one monitored node end to end.
	for _, o := range run.Dataset.Observations {
		if !o.Monitored() || len(o.Unexpected) < 2 {
			continue
		}
		fmt.Printf("example: node %s (%s) fetched http://%s/ once\n", o.ZID, o.NodeIP, o.Host)
		for _, u := range o.Unexpected {
			fmt.Printf("  %s later, %s (%s) fetched it again\n",
				u.Delay.Round(10*time.Millisecond), u.Src, u.Org)
		}
		break
	}
	if len(rows) > 0 {
		fmt.Printf("\ntop monitoring entity: %s (%d nodes watched)\n", rows[0].Name, rows[0].Nodes)
	}
}
