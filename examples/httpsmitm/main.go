// httpsmitm demonstrates the §6 certificate-replacement methodology: exit
// nodes running AV-style TLS proxies, OpenDNS-style content filters, and
// Cloudguard-style malware replace certificate chains inside CONNECT
// tunnels; the measurement client detects each replacement by validating
// against a clean OS root store and exact-matching its own invalid sites,
// then prints the per-issuer behavioural fingerprints (key reuse,
// invalid-certificate laundering).
//
//	go run ./examples/httpsmitm
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"
	"sort"
	"time"

	"github.com/tftproject/tft/internal/cert"
	"github.com/tftproject/tft/internal/dnsserver"
	"github.com/tftproject/tft/internal/geo"
	"github.com/tftproject/tft/internal/middlebox"
	"github.com/tftproject/tft/internal/origin"
	"github.com/tftproject/tft/internal/proxynet"
	"github.com/tftproject/tft/internal/simnet"
	"github.com/tftproject/tft/internal/tlssim"
)

var epoch = time.Date(2016, 4, 14, 0, 0, 0, 0, time.UTC)

func main() {
	fabric := simnet.NewFabric()
	clock := simnet.NewVirtual(epoch)
	trust, cas := cert.NewOSRootStore(epoch)

	// Three sites: a valid one, a self-signed one, an expired one.
	siteIPs := map[string]netip.Addr{
		"www.bank.example":   netip.MustParseAddr("198.51.100.10"),
		"selfsigned.example": netip.MustParseAddr("198.51.100.11"),
		"expired.example":    netip.MustParseAddr("198.51.100.12"),
	}
	valid := cas[0].Issue(cert.Template{Subject: cert.Name{CommonName: "www.bank.example"},
		NotBefore: epoch.Add(-time.Hour), NotAfter: epoch.Add(365 * 24 * time.Hour), KeySeed: "bank"})
	self := cert.NewRootCA(cert.Name{CommonName: "selfsigned.example"}, "ss", epoch.Add(-time.Hour), 1000*time.Hour)
	expired := cas[0].Issue(cert.Template{Subject: cert.Name{CommonName: "expired.example"},
		NotBefore: epoch.Add(-2 * 365 * 24 * time.Hour), NotAfter: epoch.Add(-24 * time.Hour), KeySeed: "old"})
	chains := map[string][]*cert.Certificate{
		"www.bank.example":   {valid, cas[0].Cert},
		"selfsigned.example": {self.Cert},
		"expired.example":    {expired, cas[0].Cert},
	}
	for host, ip := range siteIPs {
		host := host
		fabric.HandleTCP(ip, 443, origin.TLSSite(func(sni string) []*cert.Certificate { return chains[host] }))
	}

	// Exit nodes: clean, Avast-style, Kaspersky-style (launders invalid
	// certs!), and Cloudguard-style malware.
	products := []middlebox.ProductSpec{
		{Product: "Avast", IssuerCN: "Avast Web/Mail Shield Root", Kind: "Anti-Virus/Security",
			ReuseKey: false, Invalid: middlebox.InvalidDistinctIssuer},
		{Product: "Kaspersky", IssuerCN: "Kaspersky Anti-Virus Personal Root", Kind: "Anti-Virus/Security",
			ReuseKey: true, Invalid: middlebox.InvalidLaunder},
		{Product: "Cloudguard.me", IssuerCN: "Cloudguard.me", Kind: "Malware",
			ReuseKey: true, Invalid: middlebox.InvalidLaunder, CopyFields: true},
	}

	upstream := func(string) (netip.Addr, bool) { return netip.Addr{}, false }
	pool := proxynet.NewPool(simnet.NewRand(7), 0)
	addNode := func(zid string, path *middlebox.Path) {
		node := &proxynet.ExitNode{
			ZID: zid, Addr: netip.MustParseAddr("91.7.1." + fmt.Sprint(pool.Len()+10)),
			Country:  "DE",
			Resolver: dnsserver.NewResolver(netip.MustParseAddr("91.7.0.53"), fabric, upstream),
			Path:     path, Net: fabric,
		}
		if err := pool.Add(node); err != nil {
			log.Fatal(err)
		}
	}
	addNode("zclean001", nil)
	for i, ps := range products {
		pcs := ps.Build(epoch, trust)
		addNode(fmt.Sprintf("zmitm%04d", i),
			&middlebox.Path{TLS: []middlebox.TLSInterceptor{pcs.Instance(fmt.Sprintf("node%d", i), clock.Now)}})
	}

	proxyIP := netip.MustParseAddr("203.0.113.22")
	spResolver := &dnsserver.Resolver{Addr: geo.GoogleDNSAddr, Net: fabric, Upstream: upstream}
	sp := proxynet.NewSuperProxy(proxyIP, pool, spResolver, clock)
	fabric.HandleTCP(proxyIP, proxynet.ProxyPort, sp.ConnHandler())
	client := &proxynet.Client{Net: fabric, Src: netip.MustParseAddr("203.0.113.1"),
		Proxy: proxyIP, User: "lum-customer-demo", Password: "pw"}

	// Probe every node against every site. Luminati cannot be asked for a
	// specific node, so keep opening fresh sessions until each zID has
	// served once — exactly the paper's crawl pattern.
	fmt.Println("node        site                  verdict")
	fmt.Println("--------------------------------------------------------------------")
	seen := map[string]bool{}
	for attempt := 0; len(seen) < pool.Len() && attempt < 200; attempt++ {
		sess := fmt.Sprintf("s%d", attempt)
		opts := proxynet.Options{Session: sess}
		// Peek which node this session lands on.
		peek, dbg0, err := client.Connect(context.Background(), opts,
			siteIPs["www.bank.example"].String()+":443")
		if err != nil {
			log.Fatal(err)
		}
		peek.Close()
		if seen[dbg0.ZID] {
			continue
		}
		seen[dbg0.ZID] = true
		var zid string
		keys := map[cert.KeyID]int{}
		// Probe sites in sorted order: ranging the map directly would print
		// the verdict lines in nondeterministic order (maporder).
		hosts := make([]string, 0, len(siteIPs))
		for host := range siteIPs {
			hosts = append(hosts, host)
		}
		sort.Strings(hosts)
		for _, host := range hosts {
			ip := siteIPs[host]
			conn, dbg, err := client.Connect(context.Background(), opts, ip.String()+":443")
			if err != nil {
				log.Fatal(err)
			}
			zid = dbg.ZID
			chain, err := tlssim.CollectChain(conn, host)
			conn.Close()
			if err != nil {
				log.Fatal(err)
			}
			leaf := chain[0]
			keys[leaf.PublicKey]++
			origLeaf := chains[host][0]
			replaced := leaf.Fingerprint() != origLeaf.Fingerprint()
			validNow := trust.Verify(host, chain, clock.Now()) == nil
			verdict := "genuine chain"
			if replaced {
				verdict = fmt.Sprintf("REPLACED (issuer %q)", leaf.Issuer.CommonName)
				if validNow {
					verdict += " [chain verifies: trusted-root laundering]"
				}
				origValid := trust.Verify(host, chains[host], clock.Now()) == nil
				if !origValid && leaf.Issuer == chain[len(chain)-1].Subject {
					verdict += " [invalid original replaced]"
				}
			}
			fmt.Printf("%-11s %-21s %s\n", zid, host, verdict)
		}
		if len(keys) == 1 && pool.Len() > 0 {
			var k cert.KeyID
			for key := range keys {
				k = key
			}
			fmt.Printf("%-11s %-21s same public key %s on every spoofed cert (§6.2 key reuse)\n", zid, "(all sites)", k.String()[:12])
		}
		fmt.Println()
	}
}
