// Quickstart: build a small calibrated world, run all four of the paper's
// experiments against it, and print the reproduced tables plus the
// paper-vs-measured report.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	tft "github.com/tftproject/tft"
)

func main() {
	//tftlint:ignore simclock -- demo timing printout; wall clock is the point
	start := time.Now()
	fmt.Println("Running the four experiments at 2% of paper scale...")

	res, err := tft.RunAll(context.Background(), tft.Options{Seed: 42, Scale: 0.02})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(res.Overview())
	for _, t := range res.DNS.Tables() {
		fmt.Println(t)
	}
	for _, t := range res.HTTP.Tables() {
		fmt.Println(t)
	}
	for _, t := range res.TLS.Tables() {
		fmt.Println(t)
	}
	for _, t := range res.Monitor.Tables() {
		fmt.Println(t)
	}
	fmt.Println(res.Report())
	//tftlint:ignore simclock -- demo timing printout; wall clock is the point
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
}
