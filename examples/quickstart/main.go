// Quickstart: build a small calibrated world, run all four of the paper's
// experiments against it, and print the reproduced tables plus the
// paper-vs-measured report.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"

	tft "github.com/tftproject/tft"
)

func main() {
	//tftlint:ignore simclock -- demo timing printout; wall clock is the point
	start := time.Now()
	fmt.Println("Running the four experiments at 2% of paper scale...")

	res, err := tft.RunAll(context.Background(), tft.Options{Seed: 42, Scale: 0.02})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(res.Overview())
	for _, t := range res.DNS.Tables() {
		fmt.Println(t)
	}
	for _, t := range res.HTTP.Tables() {
		fmt.Println(t)
	}
	for _, t := range res.TLS.Tables() {
		fmt.Println(t)
	}
	for _, t := range res.Monitor.Tables() {
		fmt.Println(t)
	}
	fmt.Println(res.Report())

	// Experiments are also reachable by name through the registry, and
	// every run serializes its release dataset through the exported
	// Run.WriteDataset/WriteGeo surface.
	run, err := tft.RunExperiment(context.Background(), "smtp", tft.Options{Seed: 42, Scale: 0.02})
	if err != nil {
		log.Fatal(err)
	}
	var ds, geo bytes.Buffer
	if err := run.WriteDataset(&ds); err != nil {
		log.Fatal(err)
	}
	if err := run.WriteGeo(&geo); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registry: %v\n", tft.Experiments())
	fmt.Printf("%q release dump: dataset %d bytes, geo snapshot %d bytes\n",
		run.Name(), ds.Len(), geo.Len())

	//tftlint:ignore simclock -- demo timing printout; wall clock is the point
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
}
