// smtpprobe runs the paper's stated future work (§3.4): probing SMTP
// through a VPN-style tunnel service that allows arbitrary ports. It
// detects ISP port-25 blocking and STARTTLS-stripping middleboxes, and
// shows that the Luminati-faithful 443-only configuration cannot run the
// experiment at all.
//
//	go run ./examples/smtpprobe
package main

import (
	"context"
	"fmt"
	"log"

	tft "github.com/tftproject/tft"
	"github.com/tftproject/tft/internal/proxynet"
)

func main() {
	fmt.Println("Probing SMTP through an any-port tunnel (2% scale)...")
	run, err := tft.RunSMTP(context.Background(), tft.Options{Seed: 25, Scale: 0.02})
	if err != nil {
		log.Fatal(err)
	}
	s := run.Analysis.Summary()
	fmt.Printf("\n%d nodes probed:\n", s.MeasuredNodes)
	fmt.Printf("  port 25 blocked outright: %d (%.1f%%)\n", s.Blocked, s.BlockedPct)
	fmt.Printf("  STARTTLS stripped:        %d (%.2f%%) across %d ASes\n\n",
		s.Stripped, s.StrippedPct, s.StripperASes)
	for _, t := range run.Tables() {
		fmt.Println(t)
	}

	// Walk one stripped node.
	for _, o := range run.Dataset.Observations {
		if o.Blocked || o.StartTLS {
			continue
		}
		fmt.Printf("example: node %s (%s) reached the mail server (%q)\n", o.ZID, o.NodeIP, o.Banner)
		fmt.Println("         but its EHLO reply arrived without STARTTLS — a downgrade middlebox")
		break
	}

	// The faithful 443-only service cannot run this at all.
	run.World.Super.AnyPortConnect = false
	_, _, err = run.World.Client.Connect(context.Background(),
		proxynet.Options{}, "198.18.0.25:25")
	if err != nil {
		fmt.Printf("\nwith CONNECT restricted to 443 (Luminati-faithful): %v\n", err)
		fmt.Println("— which is why the paper left SMTP to future work (§3.4).")
	}
}
