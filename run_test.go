package tft

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/tftproject/tft/internal/core"
	"github.com/tftproject/tft/internal/metrics"
)

// Every experiment must satisfy the unified Run interface.
var (
	_ Run = (*DNSRun)(nil)
	_ Run = (*HTTPRun)(nil)
	_ Run = (*TLSRun)(nil)
	_ Run = (*MonitorRun)(nil)
	_ Run = (*SMTPRun)(nil)
)

// The acceptance bar for the instrumented engine: a default-scale DNS run
// exposes a non-empty metrics snapshot — sessions, unique nodes,
// duplicates, the stop-rule window trajectory, and per-country session
// counts — and report.go renders it as a table.
func TestRunDNSDefaultScaleMetrics(t *testing.T) {
	run, err := RunDNS(context.Background(), Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	s := run.Metrics()
	st := run.Stats()
	if got := s.Counter("crawl_sessions_total"); got == 0 || got != int64(st.Sessions) {
		t.Fatalf("sessions counter = %d, stats = %d", got, st.Sessions)
	}
	if got := s.Counter("crawl_nodes_total"); got == 0 || got != int64(st.UniqueNodes) {
		t.Fatalf("nodes counter = %d, stats = %d", got, st.UniqueNodes)
	}
	if s.Counter("crawl_duplicates_total") == 0 {
		t.Fatal("a rule-stopped crawl must have revisited nodes")
	}
	if s.Histograms["crawl_window_new_rate"].Count == 0 {
		t.Fatal("no stop-rule window trajectory")
	}
	if len(s.EventsOfKind(metrics.EventStopWindow)) == 0 {
		t.Fatal("no stop-window events in the trace")
	}
	byCountry := s.Labeled["crawl_sessions_by_country"]
	if len(byCountry) < 10 {
		t.Fatalf("per-country sessions cover %d countries", len(byCountry))
	}
	if len(s.EventsOfKind(metrics.EventSessionStarted)) == 0 {
		t.Fatal("no session events retained")
	}

	tbl := MetricsTable(run.Name(), s)
	if len(tbl.Rows) == 0 {
		t.Fatal("metrics table rendered no rows")
	}
	out := tbl.String()
	for _, want := range []string{"crawl_sessions_total", "crawl_window_new_rate", "crawl_sessions_by_country"} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics table missing %s:\n%s", want, out)
		}
	}
}

// Workers precedence: an explicit Crawl.Workers wins over the convenience
// Options.Workers knob; the knob still applies when Crawl is untouched.
func TestWorkersPrecedence(t *testing.T) {
	o := Options{Workers: 3}.withDefaults()
	if o.Crawl.Workers != 3 {
		t.Fatalf("Options.Workers not applied: %+v", o.Crawl)
	}
	o = Options{Workers: 3, Crawl: core.CrawlConfig{Workers: 5}}.withDefaults()
	if o.Crawl.Workers != 5 {
		t.Fatalf("Crawl.Workers overridden: %+v", o.Crawl)
	}
}

// A cancelled context aborts the campaign promptly with the cancellation
// error instead of running the crawl to completion.
func TestRunAllCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunAll(ctx, Options{Seed: 13, Scale: 0.005})
	if err == nil {
		t.Fatal("cancelled RunAll returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled RunAll returned partial results")
	}
}

// Each longitudinal wave carries its own snapshot, so per-wave crawl cost
// stays comparable across waves.
func TestLongitudinalWaveMetrics(t *testing.T) {
	run, err := RunLongitudinal(context.Background(), Options{Seed: 17, Scale: 0.005}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Waves) != 2 {
		t.Fatalf("waves = %d", len(run.Waves))
	}
	for _, w := range run.Waves {
		if w.Metrics == nil {
			t.Fatalf("wave %d has no metrics", w.Index)
		}
		if w.Metrics.Counter("crawl_sessions_total") == 0 {
			t.Fatalf("wave %d recorded no sessions", w.Index)
		}
	}
}

// Runs() drives the iterating consumers; nil-snapshot rendering must be
// safe for partially-constructed results.
func TestResultsRunsAndNilMetricsTable(t *testing.T) {
	tbl := MetricsTable("empty", nil)
	if len(tbl.Rows) != 0 {
		t.Fatalf("nil snapshot rendered rows: %v", tbl.Rows)
	}
	_ = tbl.String()

	res := &Results{DNS: &DNSRun{}, HTTP: &HTTPRun{}, TLS: &TLSRun{}, Monitor: &MonitorRun{}}
	runs := res.Runs()
	wantNames := []string{"dns", "http", "tls", "monitor"}
	for i, run := range runs {
		if run.Name() != wantNames[i] {
			t.Fatalf("run %d = %q, want %q", i, run.Name(), wantNames[i])
		}
		if run.Metrics() == nil {
			t.Fatalf("run %q: nil-registry Metrics() must return an empty snapshot", run.Name())
		}
	}
}
