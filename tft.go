// Package tft reproduces "Tunneling for Transparency: A Large-Scale
// Analysis of End-to-End Violations in the Internet" (IMC 2016): it builds
// a calibrated synthetic Internet with a Luminati-style P2P proxy service
// on top, runs the paper's four measurement experiments through it, and
// regenerates every table and figure of the evaluation.
//
// Quick start:
//
//	run, err := tft.RunDNS(context.Background(), tft.Options{Seed: 1, Scale: 0.05})
//	fmt.Println(run.Analysis.Table3(10))
//
// Scale 1.0 reproduces full paper scale (1.27M nodes across the four
// experiments); the default 0.05 runs in seconds on a laptop with the same
// table shapes.
package tft

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/tftproject/tft/internal/analysis"
	"github.com/tftproject/tft/internal/core"
	"github.com/tftproject/tft/internal/dataset"
	"github.com/tftproject/tft/internal/population"
)

// Options selects a world and crawl configuration.
type Options struct {
	// Seed drives every stochastic choice; a (Seed, Scale) pair reproduces
	// a run exactly.
	Seed uint64
	// Scale multiplies the paper's population sizes (0 < Scale <= 1;
	// default 0.05).
	Scale float64
	// Workers is the measurement concurrency (default 8).
	Workers int
	// Crawl overrides the stop-rule parameters when non-zero.
	Crawl core.CrawlConfig
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 0.05
	}
	if o.Seed == 0 {
		o.Seed = 20160413
	}
	if o.Workers > 0 {
		o.Crawl.Workers = o.Workers
	}
	return o
}

func (o Options) cfg() analysis.Config { return analysis.Config{Scale: o.Scale} }

// DNSRun bundles the §4 experiment's world, dataset, and analysis.
type DNSRun struct {
	Opts     Options
	World    *population.World
	Dataset  *core.DNSDataset
	Analysis *analysis.DNSAnalysis
}

// RunDNS builds a DNS world and runs the NXDOMAIN-hijack experiment.
func RunDNS(ctx context.Context, opts Options) (*DNSRun, error) {
	opts = opts.withDefaults()
	w, err := population.BuildDNSWorld(opts.Seed, opts.Scale)
	if err != nil {
		return nil, err
	}
	exp := &core.DNSExperiment{
		Client: w.Client, Auth: w.Auth, Web: w.Web, Geo: w.Geo,
		Zone: population.Zone, Weights: w.Pool.CountryCounts(),
		Seed: opts.Seed, Crawl: opts.Crawl,
	}
	exp.InstallRules(population.WebIP)
	ds, err := exp.Run(ctx)
	if err != nil {
		return nil, err
	}
	return &DNSRun{Opts: opts, World: w, Dataset: ds,
		Analysis: analysis.AnalyzeDNS(opts.cfg(), w.Geo, ds)}, nil
}

// Tables renders the run's paper artifacts.
func (r *DNSRun) Tables() []*analysis.Table {
	_, t5 := r.Analysis.Table5()
	return []*analysis.Table{r.Analysis.Table3(10), r.Analysis.Table4(), t5}
}

// HTTPRun bundles the §5 experiment.
type HTTPRun struct {
	Opts     Options
	World    *population.World
	Dataset  *core.HTTPDataset
	Analysis *analysis.HTTPAnalysis
}

// RunHTTP builds an HTTP world and runs the content-modification
// experiment.
func RunHTTP(ctx context.Context, opts Options) (*HTTPRun, error) {
	opts = opts.withDefaults()
	w, err := population.BuildHTTPWorld(opts.Seed, opts.Scale)
	if err != nil {
		return nil, err
	}
	exp := &core.HTTPExperiment{
		Client: w.Client, Auth: w.Auth, Geo: w.Geo,
		Zone: population.Zone, Weights: w.Pool.CountryCounts(),
		Seed: opts.Seed, Crawl: opts.Crawl,
	}
	exp.InstallRules(population.WebIP)
	ds, err := exp.Run(ctx)
	if err != nil {
		return nil, err
	}
	return &HTTPRun{Opts: opts, World: w, Dataset: ds,
		Analysis: analysis.AnalyzeHTTP(opts.cfg(), w.Geo, ds)}, nil
}

// Tables renders the run's paper artifacts.
func (r *HTTPRun) Tables() []*analysis.Table {
	_, t6 := r.Analysis.Table6()
	_, t7 := r.Analysis.Table7()
	return []*analysis.Table{t6, t7}
}

// TLSRun bundles the §6 experiment.
type TLSRun struct {
	Opts     Options
	World    *population.World
	Dataset  *core.TLSDataset
	Analysis *analysis.TLSAnalysis
}

// RunTLS builds a TLS world and runs the certificate-replacement
// experiment.
func RunTLS(ctx context.Context, opts Options) (*TLSRun, error) {
	opts = opts.withDefaults()
	w, err := population.BuildTLSWorld(opts.Seed, opts.Scale)
	if err != nil {
		return nil, err
	}
	exp := &core.TLSExperiment{
		Client: w.Client, Geo: w.Geo, Trust: w.Trust,
		Targets: core.TargetsFromRegistry(w.Sites),
		Weights: w.Pool.CountryCounts(),
		Seed:    opts.Seed, Crawl: opts.Crawl,
		Now: w.Clock.Now,
	}
	ds, err := exp.Run(ctx)
	if err != nil {
		return nil, err
	}
	return &TLSRun{Opts: opts, World: w, Dataset: ds,
		Analysis: analysis.AnalyzeTLS(opts.cfg(), w.Geo, ds)}, nil
}

// Tables renders the run's paper artifacts.
func (r *TLSRun) Tables() []*analysis.Table {
	_, t8 := r.Analysis.Table8()
	return []*analysis.Table{t8}
}

// MonitorRun bundles the §7 experiment.
type MonitorRun struct {
	Opts     Options
	World    *population.World
	Dataset  *core.MonDataset
	Analysis *analysis.MonAnalysis
}

// RunMonitor builds a monitoring world and runs the content-monitoring
// experiment (24 virtual hours of server-log watching).
func RunMonitor(ctx context.Context, opts Options) (*MonitorRun, error) {
	opts = opts.withDefaults()
	w, err := population.BuildMonitorWorld(opts.Seed, opts.Scale)
	if err != nil {
		return nil, err
	}
	exp := &core.MonitorExperiment{
		Client: w.Client, Auth: w.Auth, Web: w.Web, Geo: w.Geo, Clock: w.Clock,
		Zone: population.Zone, Weights: w.Pool.CountryCounts(),
		Seed: opts.Seed, Crawl: opts.Crawl,
		Watch: 24 * time.Hour,
	}
	exp.InstallRules(population.WebIP)
	ds, err := exp.Run(ctx)
	if err != nil {
		return nil, err
	}
	return &MonitorRun{Opts: opts, World: w, Dataset: ds,
		Analysis: analysis.AnalyzeMonitor(opts.cfg(), w.Geo, ds)}, nil
}

// Tables renders the run's paper artifacts.
func (r *MonitorRun) Tables() []*analysis.Table {
	_, t9 := r.Analysis.Table9(6)
	return []*analysis.Table{t9, r.Analysis.Figure5Table(6)}
}

// Results is the output of a full four-experiment campaign.
type Results struct {
	DNS     *DNSRun
	HTTP    *HTTPRun
	TLS     *TLSRun
	Monitor *MonitorRun
}

// RunAll executes all four experiments.
func RunAll(ctx context.Context, opts Options) (*Results, error) {
	dns, err := RunDNS(ctx, opts)
	if err != nil {
		return nil, fmt.Errorf("dns experiment: %w", err)
	}
	http, err := RunHTTP(ctx, opts)
	if err != nil {
		return nil, fmt.Errorf("http experiment: %w", err)
	}
	tls, err := RunTLS(ctx, opts)
	if err != nil {
		return nil, fmt.Errorf("tls experiment: %w", err)
	}
	mon, err := RunMonitor(ctx, opts)
	if err != nil {
		return nil, fmt.Errorf("monitoring experiment: %w", err)
	}
	return &Results{DNS: dns, HTTP: http, TLS: tls, Monitor: mon}, nil
}

// Overview builds Table 2 from the four runs.
func (r *Results) Overview() *analysis.Table {
	d := r.DNS.Analysis.Summary()
	h := r.HTTP.Analysis.Summary()
	t := r.TLS.Analysis.Summary()
	m := r.Monitor.Analysis.Summary()
	monCountries, monASes := monCoverage(r.Monitor)
	return analysis.Table2([]analysis.DatasetOverview{
		{Name: "DNS", Nodes: d.MeasuredNodes + d.FilteredAnycast, ASes: d.ASes, Countries: d.Countries},
		{Name: "HTTP", Nodes: h.MeasuredNodes, ASes: h.ASes, Countries: h.Countries},
		{Name: "HTTPS", Nodes: t.MeasuredNodes, ASes: t.ASes, Countries: t.Countries},
		{Name: "Monitoring", Nodes: m.MeasuredNodes, ASes: monASes, Countries: monCountries},
	})
}

func monCoverage(r *MonitorRun) (countries, ases int) {
	cset := map[string]bool{}
	aset := map[uint32]bool{}
	for _, o := range r.Dataset.Observations {
		cset[string(o.Country)] = true
		aset[uint32(o.ASN)] = true
	}
	return len(cset), len(aset)
}

// SMTPRun bundles the §3.4 extension experiment: SMTP probing through an
// arbitrary-port tunnel service, implementing the paper's stated future
// work.
type SMTPRun struct {
	Opts     Options
	World    *population.World
	Dataset  *core.SMTPDataset
	Analysis *analysis.SMTPAnalysis
}

// RunSMTP builds the extension world (a VPN allowing any CONNECT port) and
// probes the measurement mail server through every node, detecting port-25
// blocking and STARTTLS stripping.
func RunSMTP(ctx context.Context, opts Options) (*SMTPRun, error) {
	opts = opts.withDefaults()
	w, err := population.BuildSMTPWorld(opts.Seed, opts.Scale)
	if err != nil {
		return nil, err
	}
	exp := &core.SMTPExperiment{
		Client: w.Client, Geo: w.Geo, Weights: w.Pool.CountryCounts(),
		Seed: opts.Seed, Crawl: opts.Crawl,
		MailIP: population.MailIP, MailHost: population.MailHost,
	}
	ds, err := exp.Run(ctx)
	if err != nil {
		return nil, err
	}
	return &SMTPRun{Opts: opts, World: w, Dataset: ds,
		Analysis: analysis.AnalyzeSMTP(opts.cfg(), w.Geo, ds)}, nil
}

// Tables renders the extension's findings.
func (r *SMTPRun) Tables() []*analysis.Table {
	_, t := r.Analysis.TableSMTP()
	return []*analysis.Table{t}
}

// Dump writes the campaign's datasets plus the geo snapshot into dir — the
// code-and-data release of the paper's fourth contribution. cmd/analyze
// regenerates every table from these files alone.
func (r *Results) Dump(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(w io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return fn(f)
	}
	opts := r.Opts()
	// The DNS world's registry covers the richest attribution structure;
	// each dataset carries its own world's mappings.
	if err := write("geo.jsonl", func(w io.Writer) error {
		return dataset.WriteGeo(w, opts.Seed, opts.Scale, r.DNS.World.Geo)
	}); err != nil {
		return err
	}
	if err := write("geo-http.jsonl", func(w io.Writer) error {
		return dataset.WriteGeo(w, opts.Seed, opts.Scale, r.HTTP.World.Geo)
	}); err != nil {
		return err
	}
	if err := write("geo-tls.jsonl", func(w io.Writer) error {
		return dataset.WriteGeo(w, opts.Seed, opts.Scale, r.TLS.World.Geo)
	}); err != nil {
		return err
	}
	if err := write("geo-monitor.jsonl", func(w io.Writer) error {
		return dataset.WriteGeo(w, opts.Seed, opts.Scale, r.Monitor.World.Geo)
	}); err != nil {
		return err
	}
	if err := write("dns.jsonl", func(w io.Writer) error {
		return dataset.WriteDNS(w, opts.Seed, opts.Scale, r.DNS.Dataset)
	}); err != nil {
		return err
	}
	if err := write("http.jsonl", func(w io.Writer) error {
		return dataset.WriteHTTP(w, opts.Seed, opts.Scale, r.HTTP.Dataset)
	}); err != nil {
		return err
	}
	if err := write("tls.jsonl", func(w io.Writer) error {
		return dataset.WriteTLS(w, opts.Seed, opts.Scale, r.TLS.Dataset)
	}); err != nil {
		return err
	}
	return write("monitor.jsonl", func(w io.Writer) error {
		return dataset.WriteMonitor(w, opts.Seed, opts.Scale, r.Monitor.Dataset)
	})
}

// LongitudinalRun bundles a §9-style continuous measurement: repeated DNS
// crawls over virtual weeks while the violator population evolves.
type LongitudinalRun struct {
	Opts  Options
	World *population.World
	Waves []core.Wave
}

// RunLongitudinal executes a multi-wave DNS campaign against one world,
// applying population.StandardEvolution between waves (large ISPs
// progressively retiring their hijacking appliances).
func RunLongitudinal(ctx context.Context, opts Options, waves int) (*LongitudinalRun, error) {
	opts = opts.withDefaults()
	w, err := population.BuildDNSWorld(opts.Seed, opts.Scale)
	if err != nil {
		return nil, err
	}
	exp := &core.DNSExperiment{
		Client: w.Client, Auth: w.Auth, Web: w.Web, Geo: w.Geo,
		Zone: population.Zone, Weights: w.Pool.CountryCounts(),
		Seed: opts.Seed, Crawl: opts.Crawl,
	}
	exp.InstallRules(population.WebIP)
	long := &core.LongitudinalDNS{
		Experiment:   exp,
		Clock:        w.Clock,
		Waves:        waves,
		BetweenWaves: population.StandardEvolution(w),
	}
	ws, err := long.Run(ctx)
	if err != nil {
		return nil, err
	}
	return &LongitudinalRun{Opts: opts, World: w, Waves: ws}, nil
}

// Table renders the wave time series.
func (r *LongitudinalRun) Table() *analysis.Table {
	rows := make([]analysis.WaveRow, 0, len(r.Waves))
	for _, w := range r.Waves {
		rows = append(rows, analysis.WaveRow{
			Wave: w.Index, Measured: w.Measured, Hijacked: w.Hijacked,
			HijackPct: 100 * w.HijackRate(),
		})
	}
	return analysis.TableLongitudinal(rows)
}
