// Package tft reproduces "Tunneling for Transparency: A Large-Scale
// Analysis of End-to-End Violations in the Internet" (IMC 2016): it builds
// a calibrated synthetic Internet with a Luminati-style P2P proxy service
// on top, runs the paper's four measurement experiments through it, and
// regenerates every table and figure of the evaluation.
//
// Quick start:
//
//	run, err := tft.RunDNS(context.Background(), tft.Options{Seed: 1, Scale: 0.05})
//	_, t3 := run.Analysis.Table3(10)
//	fmt.Println(t3)
//
// Scale 1.0 reproduces full paper scale (1.27M nodes across the four
// experiments); the default 0.05 runs in seconds on a laptop with the same
// table shapes.
//
// Every experiment satisfies the Run interface: uniform access to the
// rendered tables, the crawl statistics, and a metrics snapshot of the
// instrumented crawl engine (sessions, novelty, stop-rule trajectory,
// per-country coverage, violations).
package tft

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/tftproject/tft/internal/analysis"
	"github.com/tftproject/tft/internal/core"
	"github.com/tftproject/tft/internal/dataset"
	"github.com/tftproject/tft/internal/metrics"
	"github.com/tftproject/tft/internal/population"
	"github.com/tftproject/tft/internal/progress"
	"github.com/tftproject/tft/internal/proxynet"
	"github.com/tftproject/tft/internal/simnet"
	"github.com/tftproject/tft/internal/trace"
)

// Options selects a world and crawl configuration.
type Options struct {
	// Seed drives every stochastic choice; a (Seed, Scale) pair reproduces
	// a run exactly.
	Seed uint64
	// Scale multiplies the paper's population sizes (0 < Scale <= 1;
	// default 0.05).
	Scale float64
	// Workers is the measurement concurrency (default 8). Precedence: a
	// non-zero Crawl.Workers wins over this field; Workers only applies
	// when Crawl.Workers is unset.
	Workers int
	// Crawl overrides the stop-rule parameters when non-zero. A non-zero
	// Crawl.Workers takes precedence over Options.Workers. When
	// Crawl.Metrics is nil, each Run* call installs a fresh registry so
	// every run exposes a Metrics() snapshot.
	Crawl core.CrawlConfig
	// Chaos names a fault-injection profile (simnet.ProfileNames) to arm on
	// the world's fabric; it also installs the super proxy's per-exit
	// circuit breaker. Empty (the default) runs fault-free and is
	// byte-identical to builds without the chaos plane. The injection
	// schedule is a pure function of (Seed, Scale, Chaos).
	Chaos string
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 0.05
	}
	if o.Seed == 0 {
		o.Seed = 20160413
	}
	o.Crawl.Workers = resolveWorkers(o.Workers, o.Crawl.Workers)
	return o
}

// resolveWorkers collapses the Options.Workers vs Crawl.Workers precedence
// into one place: an explicitly-set Crawl.Workers wins, Options.Workers is
// the convenience knob for callers who leave Crawl untouched, and zero
// defers to the crawl engine's default.
func resolveWorkers(optWorkers, crawlWorkers int) int {
	if crawlWorkers > 0 {
		return crawlWorkers
	}
	return optWorkers
}

// instrument ensures the run has a metrics registry and a span tracer, and
// threads both into the world's service side: the registry into the super
// proxy, the tracer into the super proxy and every exit node, so one
// measured request yields one complete span tree. The tracer runs on the
// world's virtual clock, so span durations are in simulated time.
func (o *Options) instrument(w *population.World) *metrics.Registry {
	if o.Crawl.Metrics == nil {
		o.Crawl.Metrics = metrics.NewRegistry()
	}
	if o.Crawl.Progress == nil {
		// Always install a flight recorder so every run carries a populated
		// manifest; the tracker never touches the crawl's RNG or measured
		// output, so a fixed-seed run is byte-identical with or without it.
		o.Crawl.Progress = progress.NewTracker()
	}
	if o.Crawl.Tracer == nil && w != nil && w.Clock != nil {
		o.Crawl.Tracer = trace.New(w.Clock.Now, 0)
	}
	if w != nil && w.Super != nil && w.Super.Metrics == nil {
		w.Super.Metrics = o.Crawl.Metrics
	}
	if w != nil && w.Super != nil && w.Super.Tracer == nil {
		w.Super.Tracer = o.Crawl.Tracer
	}
	if w != nil && w.Pool != nil {
		tracer := o.Crawl.Tracer
		clock := w.Clock
		w.Pool.SetPrepare(func(n *proxynet.ExitNode) {
			if n.Tracer == nil {
				n.Tracer = tracer
			}
			if n.Clock == nil {
				n.Clock = clock
			}
		})
		if lp, ok := w.Pool.(*proxynet.LazyPool); ok {
			lp.SetMetrics(o.Crawl.Metrics)
		}
	}
	return o.Crawl.Metrics
}

// applyChaos arms the world's fault plane and the proxy-side hardening when
// Options.Chaos names a profile. Called after instrument (so the metrics
// registry exists) and before the experiment runs. With Chaos empty it does
// nothing: the breaker is only installed under chaos, so a fault-free run
// stays byte-identical to a build without the chaos plane.
func (o *Options) applyChaos(w *population.World) error {
	if o.Chaos == "" {
		return nil
	}
	prof, ok := simnet.ProfileByName(o.Chaos)
	if !ok {
		return fmt.Errorf("unknown chaos profile %q (have %v)", o.Chaos, simnet.ProfileNames())
	}
	plane := simnet.NewFaultPlane(prof, o.Seed, w.Clock)
	faults := o.Crawl.Metrics.Labeled("fault_injected_total")
	plane.OnInject(func(kind string) { faults.Inc(kind) })
	w.Fabric.Faults = plane
	w.Super.Health = proxynet.NewHealthTracker(w.Clock, o.Seed, o.Crawl.Metrics)
	return nil
}

// wallNow stamps run manifests. Manifests are operator-facing run records
// (when did this campaign actually execute), so they use the wall clock by
// contract and are excluded from all determinism comparisons.
func wallNow() time.Time {
	//tftlint:ignore simclock -- manifest timestamps are operator-facing wall-clock metadata, never part of measured output
	return time.Now()
}

// buildManifest closes a run's flight-recorder record from the crawl stats
// and the tracker's final counts. Called at the end of each Run* while the
// tracker still holds that crawl's state (a shared tracker is reset by the
// next run's Begin).
func (o Options) buildManifest(name string, st core.Stats, started, finished time.Time) *progress.RunManifest {
	snap := o.Crawl.Progress.Snapshot()
	wm := o.Crawl.Progress.CaptureWatermarks()
	workers := o.Crawl.Workers
	if snap.Workers > 0 {
		workers = snap.Workers // crawler-resolved count, after defaults
	}
	return &progress.RunManifest{
		Experiment:      name,
		Seed:            o.Seed,
		Scale:           o.Scale,
		Workers:         workers,
		Shards:          snap.Workers,
		StartedAt:       started,
		FinishedAt:      finished,
		DurationSeconds: finished.Sub(started).Seconds(),
		Sessions:        int64(st.Sessions),
		UniqueNodes:     int64(st.UniqueNodes),
		NodesDone:       snap.Done,
		TotalNodes:      snap.TotalNodes,
		Probes:          snap.Probes,
		Violations:      snap.Violations,
		Failures:        snap.Failures,
		Discarded:       snap.Discarded,
		Duplicates:      snap.Duplicates,
		Faults:          snap.Faults,
		StoppedByRule:   st.StoppedByRule,
		Stalls:          snap.Stalls,
		Watermarks:      wm,
	}
}

// runManifest is the embedded carrier for the Run interface's manifest
// accessors; every Run type gets Manifest/WriteManifest from it.
type runManifest struct{ man *progress.RunManifest }

// Manifest returns the run's flight-recorder manifest: seed, scale,
// workers, duration, final counts, and peak runtime watermarks.
func (r runManifest) Manifest() *progress.RunManifest { return r.man }

// WriteManifest serializes the manifest as indented JSON.
func (r runManifest) WriteManifest(w io.Writer) error {
	if r.man == nil {
		return nil
	}
	return r.man.Write(w)
}

func (o Options) cfg() analysis.Config { return analysis.Config{Scale: o.Scale} }

// faultLine is the error-budget suffix shared by every Headline. It is
// empty when the run lost no probes to transport faults, so fault-free
// output is byte-identical to builds without the chaos plane.
func faultLine(st core.Stats) string {
	if st.Faulted == 0 {
		return ""
	}
	return fmt.Sprintf("   error budget: %d probes lost to transport faults (excluded from violation rates)\n", st.Faulted)
}

// Run is the uniform view over one experiment's results: every experiment
// (DNS, HTTP, TLS, monitoring, SMTP) exposes its rendered paper tables,
// its crawl statistics, and the instrumented crawl engine's metrics
// snapshot through the same three calls. Consumers (Results.Overview,
// Results.Dump, cmd/tft, cmd/analyze) iterate over Runs instead of
// repeating per-experiment code.
type Run interface {
	// Name is the run's release identifier ("dns", "http", "tls",
	// "monitor", "smtp") — also the dataset file stem in a Dump.
	Name() string
	// Tables renders the run's paper artifacts.
	Tables() []*analysis.Table
	// Stats summarises the crawl that produced the run.
	Stats() core.Stats
	// Metrics snapshots the run's crawl-engine telemetry.
	Metrics() *metrics.Snapshot
	// Spans returns the finished request spans retained by the run's
	// tracer — the per-request trace trees behind -trace/-trace-jsonl.
	Spans() []trace.SpanData
	// Headline is the one-line summary the CLI prints above the tables.
	Headline() string
	// Overview is the run's Table-2 coverage row.
	Overview() analysis.DatasetOverview

	// WriteDataset and WriteGeo serialize the run and its geo snapshot for
	// the release dump — the exported surface cmd/analyze and external
	// consumers rebuild every table from.
	WriteDataset(w io.Writer) error
	WriteGeo(w io.Writer) error

	// Manifest is the run's flight-recorder closing record (seed, scale,
	// workers, duration, final counts, peak watermarks); WriteManifest
	// serializes it as indented JSON. Results.Dump collects the campaign's
	// manifests into manifest.json.
	Manifest() *progress.RunManifest
	WriteManifest(w io.Writer) error
}

// DNSRun bundles the §4 experiment's world, dataset, and analysis.
type DNSRun struct {
	runManifest

	Opts     Options
	World    *population.World
	Dataset  *core.DNSDataset
	Analysis *analysis.DNSAnalysis

	reg    *metrics.Registry
	tracer *trace.Tracer
}

// RunDNS builds a DNS world and runs the NXDOMAIN-hijack experiment.
func RunDNS(ctx context.Context, opts Options) (*DNSRun, error) {
	opts = opts.withDefaults()
	started := wallNow()
	w, err := population.BuildDNSWorld(opts.Seed, opts.Scale)
	if err != nil {
		return nil, err
	}
	reg := opts.instrument(w)
	if err := opts.applyChaos(w); err != nil {
		return nil, err
	}
	exp := &core.DNSExperiment{
		Client: w.Client, Auth: w.Auth, Web: w.Web, Geo: w.Geo,
		Zone: population.Zone, Weights: w.Pool.CountryCounts(),
		Seed: opts.Seed, Crawl: opts.Crawl,
	}
	exp.InstallRules(population.WebIP)
	ds, err := exp.Run(ctx)
	if err != nil {
		return nil, err
	}
	return &DNSRun{Opts: opts, World: w, Dataset: ds,
		Analysis: analysis.AnalyzeDNS(opts.cfg(), w.Geo, ds),
		reg:      reg, tracer: opts.Crawl.Tracer,
		runManifest: runManifest{man: opts.buildManifest("dns", ds.Crawl, started, wallNow())}}, nil
}

// Name implements Run.
func (r *DNSRun) Name() string { return "dns" }

// Tables renders the run's paper artifacts.
func (r *DNSRun) Tables() []*analysis.Table {
	_, t3 := r.Analysis.Table3(10)
	_, t4 := r.Analysis.Table4()
	_, t5 := r.Analysis.Table5()
	return []*analysis.Table{t3, t4, t5}
}

// Stats summarises the crawl.
func (r *DNSRun) Stats() core.Stats { return r.Dataset.Crawl }

// Metrics snapshots the run's crawl telemetry.
func (r *DNSRun) Metrics() *metrics.Snapshot { return r.reg.Snapshot() }

// Spans returns the run's retained request spans.
func (r *DNSRun) Spans() []trace.SpanData { return r.tracer.Spans() }

// Headline is the CLI summary.
func (r *DNSRun) Headline() string {
	s := r.Analysis.Summary()
	rs := r.Analysis.ResolverStats()
	return fmt.Sprintf("== DNS (§4): %d nodes measured (%d filtered shared-anycast), %d resolvers, %d countries, %d ASes\n"+
		"   servers: %d total, %d above threshold; ISP-provided %d (%d above threshold, %d hijacking)\n"+
		"   hijacked: %d (%.1f%%); attribution: %v\n",
		s.MeasuredNodes, s.FilteredAnycast, s.UniqueResolvers, s.Countries, s.ASes,
		rs.TotalServers, rs.AboveThreshold, rs.ISPServers, rs.ISPAboveThreshold, rs.HijackingISP,
		s.Hijacked, s.HijackPct, s.Attribution) + faultLine(r.Dataset.Crawl)
}

// Overview is the Table-2 row.
func (r *DNSRun) Overview() analysis.DatasetOverview {
	s := r.Analysis.Summary()
	return analysis.DatasetOverview{Name: "DNS",
		Nodes: s.MeasuredNodes + s.FilteredAnycast, ASes: s.ASes, Countries: s.Countries}
}

func (r *DNSRun) WriteDataset(w io.Writer) error {
	return dataset.WriteDNS(w, r.Opts.Seed, r.Opts.Scale, r.Dataset)
}

func (r *DNSRun) WriteGeo(w io.Writer) error {
	return dataset.WriteGeo(w, r.Opts.Seed, r.Opts.Scale, r.World.Geo)
}

// HTTPRun bundles the §5 experiment.
type HTTPRun struct {
	runManifest

	Opts     Options
	World    *population.World
	Dataset  *core.HTTPDataset
	Analysis *analysis.HTTPAnalysis

	reg    *metrics.Registry
	tracer *trace.Tracer
}

// RunHTTP builds an HTTP world and runs the content-modification
// experiment.
func RunHTTP(ctx context.Context, opts Options) (*HTTPRun, error) {
	opts = opts.withDefaults()
	started := wallNow()
	w, err := population.BuildHTTPWorld(opts.Seed, opts.Scale)
	if err != nil {
		return nil, err
	}
	reg := opts.instrument(w)
	if err := opts.applyChaos(w); err != nil {
		return nil, err
	}
	exp := &core.HTTPExperiment{
		Client: w.Client, Auth: w.Auth, Geo: w.Geo,
		Zone: population.Zone, Weights: w.Pool.CountryCounts(),
		Seed: opts.Seed, Crawl: opts.Crawl,
	}
	exp.InstallRules(population.WebIP)
	ds, err := exp.Run(ctx)
	if err != nil {
		return nil, err
	}
	return &HTTPRun{Opts: opts, World: w, Dataset: ds,
		Analysis: analysis.AnalyzeHTTP(opts.cfg(), w.Geo, ds),
		reg:      reg, tracer: opts.Crawl.Tracer,
		runManifest: runManifest{man: opts.buildManifest("http", ds.Crawl, started, wallNow())}}, nil
}

// Name implements Run.
func (r *HTTPRun) Name() string { return "http" }

// Tables renders the run's paper artifacts.
func (r *HTTPRun) Tables() []*analysis.Table {
	_, t6 := r.Analysis.Table6()
	_, t7 := r.Analysis.Table7()
	return []*analysis.Table{t6, t7}
}

// Stats summarises the crawl.
func (r *HTTPRun) Stats() core.Stats { return r.Dataset.Crawl }

// Metrics snapshots the run's crawl telemetry.
func (r *HTTPRun) Metrics() *metrics.Snapshot { return r.reg.Snapshot() }

// Spans returns the run's retained request spans.
func (r *HTTPRun) Spans() []trace.SpanData { return r.tracer.Spans() }

// Headline is the CLI summary.
func (r *HTTPRun) Headline() string {
	s := r.Analysis.Summary()
	return fmt.Sprintf("== HTTP (§5): %d nodes, %d ASes, %d countries; crawl skipped %d by AS quota\n"+
		"   HTML modified %d (injected %d, block pages %d), images %d, JS %d, CSS %d\n",
		s.MeasuredNodes, s.ASes, s.Countries, r.Dataset.SkippedQuota,
		s.HTMLModified, s.HTMLInjected, s.HTMLBlockPage, s.ImageModified, s.JSReplaced, s.CSSReplaced) +
		faultLine(r.Dataset.Crawl)
}

// Overview is the Table-2 row.
func (r *HTTPRun) Overview() analysis.DatasetOverview {
	s := r.Analysis.Summary()
	return analysis.DatasetOverview{Name: "HTTP",
		Nodes: s.MeasuredNodes, ASes: s.ASes, Countries: s.Countries}
}

func (r *HTTPRun) WriteDataset(w io.Writer) error {
	return dataset.WriteHTTP(w, r.Opts.Seed, r.Opts.Scale, r.Dataset)
}

func (r *HTTPRun) WriteGeo(w io.Writer) error {
	return dataset.WriteGeo(w, r.Opts.Seed, r.Opts.Scale, r.World.Geo)
}

// TLSRun bundles the §6 experiment.
type TLSRun struct {
	runManifest

	Opts     Options
	World    *population.World
	Dataset  *core.TLSDataset
	Analysis *analysis.TLSAnalysis

	reg    *metrics.Registry
	tracer *trace.Tracer
}

// RunTLS builds a TLS world and runs the certificate-replacement
// experiment.
func RunTLS(ctx context.Context, opts Options) (*TLSRun, error) {
	opts = opts.withDefaults()
	started := wallNow()
	w, err := population.BuildTLSWorld(opts.Seed, opts.Scale)
	if err != nil {
		return nil, err
	}
	reg := opts.instrument(w)
	if err := opts.applyChaos(w); err != nil {
		return nil, err
	}
	exp := &core.TLSExperiment{
		Client: w.Client, Geo: w.Geo, Trust: w.Trust,
		Targets: core.TargetsFromRegistry(w.Sites),
		Weights: w.Pool.CountryCounts(),
		Seed:    opts.Seed, Crawl: opts.Crawl,
		Now: w.Clock.Now,
	}
	ds, err := exp.Run(ctx)
	if err != nil {
		return nil, err
	}
	return &TLSRun{Opts: opts, World: w, Dataset: ds,
		Analysis: analysis.AnalyzeTLS(opts.cfg(), w.Geo, ds),
		reg:      reg, tracer: opts.Crawl.Tracer,
		runManifest: runManifest{man: opts.buildManifest("tls", ds.Crawl, started, wallNow())}}, nil
}

// Name implements Run.
func (r *TLSRun) Name() string { return "tls" }

// Tables renders the run's paper artifacts.
func (r *TLSRun) Tables() []*analysis.Table {
	_, t8 := r.Analysis.Table8()
	return []*analysis.Table{t8}
}

// Stats summarises the crawl.
func (r *TLSRun) Stats() core.Stats { return r.Dataset.Crawl }

// Metrics snapshots the run's crawl telemetry.
func (r *TLSRun) Metrics() *metrics.Snapshot { return r.reg.Snapshot() }

// Spans returns the run's retained request spans.
func (r *TLSRun) Spans() []trace.SpanData { return r.tracer.Spans() }

// Headline is the CLI summary.
func (r *TLSRun) Headline() string {
	s := r.Analysis.Summary()
	return fmt.Sprintf("== HTTPS (§6): %d nodes, %d ASes, %d countries; %d CONNECT tunnels\n"+
		"   replaced certificates on %d nodes (%.2f%%); selective on %d; ASes >10%% affected: %.1f%%\n",
		s.MeasuredNodes, s.ASes, s.Countries, r.Dataset.Probes,
		s.Affected, s.AffectedPct, s.SelectiveNodes, s.HighASShare) + faultLine(r.Dataset.Crawl)
}

// Overview is the Table-2 row.
func (r *TLSRun) Overview() analysis.DatasetOverview {
	s := r.Analysis.Summary()
	return analysis.DatasetOverview{Name: "HTTPS",
		Nodes: s.MeasuredNodes, ASes: s.ASes, Countries: s.Countries}
}

func (r *TLSRun) WriteDataset(w io.Writer) error {
	return dataset.WriteTLS(w, r.Opts.Seed, r.Opts.Scale, r.Dataset)
}

func (r *TLSRun) WriteGeo(w io.Writer) error {
	return dataset.WriteGeo(w, r.Opts.Seed, r.Opts.Scale, r.World.Geo)
}

// MonitorRun bundles the §7 experiment.
type MonitorRun struct {
	runManifest

	Opts     Options
	World    *population.World
	Dataset  *core.MonDataset
	Analysis *analysis.MonAnalysis

	reg    *metrics.Registry
	tracer *trace.Tracer
}

// RunMonitor builds a monitoring world and runs the content-monitoring
// experiment (24 virtual hours of server-log watching).
func RunMonitor(ctx context.Context, opts Options) (*MonitorRun, error) {
	opts = opts.withDefaults()
	started := wallNow()
	w, err := population.BuildMonitorWorld(opts.Seed, opts.Scale)
	if err != nil {
		return nil, err
	}
	reg := opts.instrument(w)
	if err := opts.applyChaos(w); err != nil {
		return nil, err
	}
	exp := &core.MonitorExperiment{
		Client: w.Client, Auth: w.Auth, Web: w.Web, Geo: w.Geo, Clock: w.Clock,
		Zone: population.Zone, Weights: w.Pool.CountryCounts(),
		Seed: opts.Seed, Crawl: opts.Crawl,
		Watch: 24 * time.Hour,
	}
	exp.InstallRules(population.WebIP)
	ds, err := exp.Run(ctx)
	if err != nil {
		return nil, err
	}
	return &MonitorRun{Opts: opts, World: w, Dataset: ds,
		Analysis: analysis.AnalyzeMonitor(opts.cfg(), w.Geo, ds),
		reg:      reg, tracer: opts.Crawl.Tracer,
		runManifest: runManifest{man: opts.buildManifest("monitor", ds.Crawl, started, wallNow())}}, nil
}

// Name implements Run.
func (r *MonitorRun) Name() string { return "monitor" }

// Tables renders the run's paper artifacts.
func (r *MonitorRun) Tables() []*analysis.Table {
	_, t9 := r.Analysis.Table9(6)
	_, f5 := r.Analysis.Figure5Table(6)
	return []*analysis.Table{t9, f5}
}

// Stats summarises the crawl.
func (r *MonitorRun) Stats() core.Stats { return r.Dataset.Crawl }

// Metrics snapshots the run's crawl telemetry.
func (r *MonitorRun) Metrics() *metrics.Snapshot { return r.reg.Snapshot() }

// Spans returns the run's retained request spans.
func (r *MonitorRun) Spans() []trace.SpanData { return r.tracer.Spans() }

// Headline is the CLI summary.
func (r *MonitorRun) Headline() string {
	s := r.Analysis.Summary()
	return fmt.Sprintf("== Monitoring (§7): %d nodes; monitored %d (%.2f%%) by %d IPs in %d AS groups\n",
		s.MeasuredNodes, s.Monitored, s.MonitoredPct, s.UniqueIPs, s.ASGroups) +
		faultLine(r.Dataset.Crawl)
}

// Overview is the Table-2 row.
func (r *MonitorRun) Overview() analysis.DatasetOverview {
	s := r.Analysis.Summary()
	countries, ases := monCoverage(r)
	return analysis.DatasetOverview{Name: "Monitoring",
		Nodes: s.MeasuredNodes, ASes: ases, Countries: countries}
}

func (r *MonitorRun) WriteDataset(w io.Writer) error {
	return dataset.WriteMonitor(w, r.Opts.Seed, r.Opts.Scale, r.Dataset)
}

func (r *MonitorRun) WriteGeo(w io.Writer) error {
	return dataset.WriteGeo(w, r.Opts.Seed, r.Opts.Scale, r.World.Geo)
}

func monCoverage(r *MonitorRun) (countries, ases int) {
	cset := map[string]bool{}
	aset := map[uint32]bool{}
	for _, o := range r.Dataset.Observations {
		cset[string(o.Country)] = true
		aset[uint32(o.ASN)] = true
	}
	return len(cset), len(aset)
}

// SMTPRun bundles the §3.4 extension experiment: SMTP probing through an
// arbitrary-port tunnel service, implementing the paper's stated future
// work.
type SMTPRun struct {
	runManifest

	Opts     Options
	World    *population.World
	Dataset  *core.SMTPDataset
	Analysis *analysis.SMTPAnalysis

	reg    *metrics.Registry
	tracer *trace.Tracer
}

// RunSMTP builds the extension world (a VPN allowing any CONNECT port) and
// probes the measurement mail server through every node, detecting port-25
// blocking and STARTTLS stripping.
func RunSMTP(ctx context.Context, opts Options) (*SMTPRun, error) {
	opts = opts.withDefaults()
	started := wallNow()
	w, err := population.BuildSMTPWorld(opts.Seed, opts.Scale)
	if err != nil {
		return nil, err
	}
	reg := opts.instrument(w)
	if err := opts.applyChaos(w); err != nil {
		return nil, err
	}
	exp := &core.SMTPExperiment{
		Client: w.Client, Geo: w.Geo, Weights: w.Pool.CountryCounts(),
		Seed: opts.Seed, Crawl: opts.Crawl,
		MailIP: population.MailIP, MailHost: population.MailHost,
	}
	ds, err := exp.Run(ctx)
	if err != nil {
		return nil, err
	}
	return &SMTPRun{Opts: opts, World: w, Dataset: ds,
		Analysis: analysis.AnalyzeSMTP(opts.cfg(), w.Geo, ds),
		reg:      reg, tracer: opts.Crawl.Tracer,
		runManifest: runManifest{man: opts.buildManifest("smtp", ds.Crawl, started, wallNow())}}, nil
}

// Name implements Run.
func (r *SMTPRun) Name() string { return "smtp" }

// Tables renders the extension's findings.
func (r *SMTPRun) Tables() []*analysis.Table {
	_, t := r.Analysis.TableSMTP()
	return []*analysis.Table{t}
}

// Stats summarises the crawl.
func (r *SMTPRun) Stats() core.Stats { return r.Dataset.Crawl }

// Metrics snapshots the run's crawl telemetry.
func (r *SMTPRun) Metrics() *metrics.Snapshot { return r.reg.Snapshot() }

// Spans returns the run's retained request spans.
func (r *SMTPRun) Spans() []trace.SpanData { return r.tracer.Spans() }

// Headline is the CLI summary.
func (r *SMTPRun) Headline() string {
	s := r.Analysis.Summary()
	return fmt.Sprintf("== SMTP extension (§3.4 future work): %d nodes probed through an any-port tunnel\n"+
		"   port 25 blocked: %d (%.1f%%); STARTTLS stripped: %d (%.2f%%) in %d ASes\n",
		s.MeasuredNodes, s.Blocked, s.BlockedPct, s.Stripped, s.StrippedPct, s.StripperASes) +
		faultLine(r.Dataset.Crawl)
}

// Overview is the Table-2 row.
func (r *SMTPRun) Overview() analysis.DatasetOverview {
	s := r.Analysis.Summary()
	cset := map[string]bool{}
	aset := map[uint32]bool{}
	for _, o := range r.Dataset.Observations {
		cset[string(o.Country)] = true
		aset[uint32(o.ASN)] = true
	}
	return analysis.DatasetOverview{Name: "SMTP",
		Nodes: s.MeasuredNodes, ASes: len(aset), Countries: len(cset)}
}

func (r *SMTPRun) WriteDataset(w io.Writer) error {
	return dataset.WriteSMTP(w, r.Opts.Seed, r.Opts.Scale, r.Dataset)
}

func (r *SMTPRun) WriteGeo(w io.Writer) error {
	return dataset.WriteGeo(w, r.Opts.Seed, r.Opts.Scale, r.World.Geo)
}

// Results is the output of a full four-experiment campaign.
type Results struct {
	DNS     *DNSRun
	HTTP    *HTTPRun
	TLS     *TLSRun
	Monitor *MonitorRun
}

// Runs returns the campaign's experiments in paper order. Consumers
// iterate over this slice instead of naming each field.
func (r *Results) Runs() []Run {
	return []Run{r.DNS, r.HTTP, r.TLS, r.Monitor}
}

// RunAll executes all four experiments. Each run gets its own metrics
// registry (unless opts.Crawl.Metrics pre-installs a shared one).
func RunAll(ctx context.Context, opts Options) (*Results, error) {
	dns, err := RunDNS(ctx, opts)
	if err != nil {
		return nil, fmt.Errorf("dns experiment: %w", err)
	}
	http, err := RunHTTP(ctx, opts)
	if err != nil {
		return nil, fmt.Errorf("http experiment: %w", err)
	}
	tls, err := RunTLS(ctx, opts)
	if err != nil {
		return nil, fmt.Errorf("tls experiment: %w", err)
	}
	mon, err := RunMonitor(ctx, opts)
	if err != nil {
		return nil, fmt.Errorf("monitoring experiment: %w", err)
	}
	return &Results{DNS: dns, HTTP: http, TLS: tls, Monitor: mon}, nil
}

// Overview builds Table 2 from the campaign's runs.
func (r *Results) Overview() *analysis.Table {
	rows := make([]analysis.DatasetOverview, 0, 4)
	for _, run := range r.Runs() {
		rows = append(rows, run.Overview())
	}
	return analysis.Table2(rows)
}

// Dump writes the campaign's datasets plus the geo snapshots into dir —
// the code-and-data release of the paper's fourth contribution.
// cmd/analyze regenerates every table from these files alone. The DNS
// world's geo snapshot is written as geo.jsonl (the fallback with the
// richest attribution structure); every other run writes
// geo-<name>.jsonl.
func (r *Results) Dump(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(w io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return fn(f)
	}
	manifests := make([]*progress.RunManifest, 0, 4)
	for _, run := range r.Runs() {
		geoName := "geo-" + run.Name() + ".jsonl"
		if run.Name() == "dns" {
			geoName = "geo.jsonl"
		}
		if err := write(geoName, run.WriteGeo); err != nil {
			return err
		}
		if err := write(run.Name()+".jsonl", run.WriteDataset); err != nil {
			return err
		}
		manifests = append(manifests, run.Manifest())
	}
	// manifest.json records how the release was produced: per-run seeds,
	// scale, workers, durations, final counts, and runtime watermarks.
	return write("manifest.json", func(w io.Writer) error {
		return progress.WriteManifests(w, manifests)
	})
}

// LongitudinalRun bundles a §9-style continuous measurement: repeated DNS
// crawls over virtual weeks while the violator population evolves.
type LongitudinalRun struct {
	Opts  Options
	World *population.World
	Waves []core.Wave
}

// RunLongitudinal executes a multi-wave DNS campaign against one world,
// applying population.StandardEvolution between waves (large ISPs
// progressively retiring their hijacking appliances). Each wave carries
// its own metrics snapshot in Wave.Metrics.
func RunLongitudinal(ctx context.Context, opts Options, waves int) (*LongitudinalRun, error) {
	opts = opts.withDefaults()
	w, err := population.BuildDNSWorld(opts.Seed, opts.Scale)
	if err != nil {
		return nil, err
	}
	opts.instrument(w)
	if err := opts.applyChaos(w); err != nil {
		return nil, err
	}
	exp := &core.DNSExperiment{
		Client: w.Client, Auth: w.Auth, Web: w.Web, Geo: w.Geo,
		Zone: population.Zone, Weights: w.Pool.CountryCounts(),
		Seed: opts.Seed, Crawl: opts.Crawl,
	}
	exp.InstallRules(population.WebIP)
	long := &core.LongitudinalDNS{
		Experiment:   exp,
		Clock:        w.Clock,
		Waves:        waves,
		BetweenWaves: population.StandardEvolution(w),
	}
	ws, err := long.Run(ctx)
	if err != nil {
		return nil, err
	}
	return &LongitudinalRun{Opts: opts, World: w, Waves: ws}, nil
}

// Table renders the wave time series, including each wave's crawl cost
// (sessions spent) from the per-wave metrics.
func (r *LongitudinalRun) Table() *analysis.Table {
	rows := make([]analysis.WaveRow, 0, len(r.Waves))
	for _, w := range r.Waves {
		rows = append(rows, analysis.WaveRow{
			Wave: w.Index, Measured: w.Measured, Hijacked: w.Hijacked,
			HijackPct: 100 * w.HijackRate(),
		})
	}
	return analysis.TableLongitudinal(rows)
}
