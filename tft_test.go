package tft

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/tftproject/tft/internal/analysis"
	"github.com/tftproject/tft/internal/dataset"
)

// Integration tests run the whole pipeline at a small scale; the benches in
// bench_test.go exercise the default scale.
const itScale = 0.02

func TestRunAllAndReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign in -short mode")
	}
	res, err := RunAll(context.Background(), Options{Seed: 3, Scale: itScale})
	if err != nil {
		t.Fatal(err)
	}
	comps := res.Compare()
	if len(comps) < 12 {
		t.Fatalf("only %d comparison rows", len(comps))
	}
	failed := 0
	for _, c := range comps {
		if !c.Holds {
			failed++
			t.Errorf("shape does not hold: %s %s — paper %s, measured %s", c.Ref, c.Metric, c.Paper, c.Measured)
		}
	}
	report := res.Report().String()
	if !strings.Contains(report, "Paper vs. measured") {
		t.Fatal("report render broken")
	}
	overview := res.Overview().String()
	if !strings.Contains(overview, "Exit Nodes") {
		t.Fatalf("overview broken:\n%s", overview)
	}
}

func TestRunDNSTables(t *testing.T) {
	run, err := RunDNS(context.Background(), Options{Seed: 5, Scale: itScale})
	if err != nil {
		t.Fatal(err)
	}
	tables := run.Tables()
	if len(tables) != 3 {
		t.Fatalf("tables = %d", len(tables))
	}
	t3 := tables[0].String()
	if !strings.Contains(t3, "Malaysia") {
		t.Errorf("Table 3 missing Malaysia:\n%s", t3)
	}
	t4 := tables[1].String()
	for _, isp := range []string{"TMnet", "Verizon", "Talk Talk"} {
		if !strings.Contains(t4, isp) {
			t.Errorf("Table 4 missing %s:\n%s", isp, t4)
		}
	}
	t5 := tables[2].String()
	if !strings.Contains(t5, "navigationshilfe.t-online.de") {
		t.Errorf("Table 5 missing t-online row:\n%s", t5)
	}
	if !strings.Contains(t5, "nortonsafe.search.ask.com") {
		t.Errorf("Table 5 missing norton row:\n%s", t5)
	}
}

func TestDefaultOptions(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 0.05 || o.Seed == 0 {
		t.Fatalf("defaults = %+v", o)
	}
	if _, err := RunDNS(context.Background(), Options{Scale: -1}); err == nil {
		t.Fatal("negative scale accepted")
	}
}

func TestDumpAndReanalyze(t *testing.T) {
	// The release round trip: run a small campaign, dump it, reload the
	// datasets with the geo snapshots, and confirm the regenerated analysis
	// matches the live one.
	res, err := RunAll(context.Background(), Options{Seed: 11, Scale: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := res.Dump(dir); err != nil {
		t.Fatal(err)
	}

	gf, err := os.Open(filepath.Join(dir, "geo.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	gh, reg, err := dataset.ReadGeo(gf)
	gf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if gh.Scale != 0.005 || reg.NumASes() == 0 {
		t.Fatalf("geo header %+v, ases %d", gh, reg.NumASes())
	}

	df, err := os.Open(filepath.Join(dir, "dns.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	_, ds, err := dataset.ReadDNS(df)
	df.Close()
	if err != nil {
		t.Fatal(err)
	}
	reloaded := analysis.AnalyzeDNS(analysis.Config{Scale: gh.Scale}, reg, ds)
	live := res.DNS.Analysis.Summary()
	got := reloaded.Summary()
	if got.MeasuredNodes != live.MeasuredNodes || got.Hijacked != live.Hijacked {
		t.Fatalf("reloaded summary %+v != live %+v", got, live)
	}
	if got.Attribution[analysis.SourceISPResolver] != live.Attribution[analysis.SourceISPResolver] {
		t.Fatalf("attribution diverged: %v vs %v", got.Attribution, live.Attribution)
	}
	// Table 4 regenerates identically.
	_, liveTable4 := res.DNS.Analysis.Table4()
	_, reTable4 := reloaded.Table4()
	liveT4 := liveTable4.String()
	reT4 := reTable4.String()
	if liveT4 != reT4 {
		t.Fatalf("Table 4 diverged:\n%s\nvs\n%s", liveT4, reT4)
	}

	// Monitoring delays survive the round trip.
	mf, err := os.Open(filepath.Join(dir, "monitor.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	_, mds, err := dataset.ReadMonitor(mf)
	mf.Close()
	if err != nil {
		t.Fatal(err)
	}
	mgf, _ := os.Open(filepath.Join(dir, "geo-monitor.jsonl"))
	_, mreg, err := dataset.ReadGeo(mgf)
	mgf.Close()
	if err != nil {
		t.Fatal(err)
	}
	liveMon := res.Monitor.Analysis.Summary()
	reMon := analysis.AnalyzeMonitor(analysis.Config{Scale: gh.Scale}, mreg, mds).Summary()
	if reMon.Monitored != liveMon.Monitored || reMon.UniqueIPs != liveMon.UniqueIPs {
		t.Fatalf("monitor summary diverged: %+v vs %+v", reMon, liveMon)
	}
}

func TestRunSMTPFacade(t *testing.T) {
	run, err := RunSMTP(context.Background(), Options{Seed: 2, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	s := run.Analysis.Summary()
	if s.MeasuredNodes == 0 || s.Blocked == 0 || s.Stripped == 0 {
		t.Fatalf("summary = %+v", s)
	}
	tables := run.Tables()
	if len(tables) != 1 || !strings.Contains(tables[0].String(), "port-25 blocked") {
		t.Fatalf("tables = %v", tables)
	}
}

func TestRunLongitudinalFacade(t *testing.T) {
	run, err := RunLongitudinal(context.Background(), Options{Seed: 2, Scale: 0.005}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Waves) != 2 {
		t.Fatalf("waves = %d", len(run.Waves))
	}
	tbl := run.Table().String()
	if !strings.Contains(tbl, "Wave") || !strings.Contains(tbl, "0") {
		t.Fatalf("table:\n%s", tbl)
	}
	// Wave 1 applied StandardEvolution (TMnet retired): rate must not rise.
	if run.Waves[1].HijackRate() > run.Waves[0].HijackRate()*1.05 {
		t.Fatalf("rate rose: %.3f -> %.3f", run.Waves[0].HijackRate(), run.Waves[1].HijackRate())
	}
}
