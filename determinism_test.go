package tft

import (
	"bytes"
	"context"
	"fmt"
	"testing"
)

// renderDNS flattens everything a fixed seed promises to reproduce into one
// byte stream: the paper tables, the CLI headline, both dataset exports,
// and the crawl stats. Spans and metrics are deliberately excluded — span
// IDs come from a process-global counter, so they differ between runs by
// construction without making the measurements any less reproducible.
func renderDNS(t *testing.T, r *DNSRun) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, tbl := range r.Tables() {
		buf.WriteString(tbl.String())
	}
	buf.WriteString(r.Headline())
	if err := r.writeDataset(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.writeGeo(&buf); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "%+v\n", r.Stats())
	return buf.Bytes()
}

// TestDNSRunDeterministic runs the same fixed-seed crawl twice in-process
// and requires byte-identical reports. This is the regression gate behind
// the simclock/seededrand analyzers: any time.Now or global-RNG call that
// sneaks into the measurement path shows up here as a diff.
func TestDNSRunDeterministic(t *testing.T) {
	opts := Options{Seed: 20160413, Scale: 0.02, Workers: 1}
	first, err := RunDNS(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunDNS(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	a, b := renderDNS(t, first), renderDNS(t, second)
	if !bytes.Equal(a, b) {
		t.Fatalf("fixed-seed runs diverged:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	if len(a) == 0 {
		t.Fatal("rendered report is empty; determinism check proved nothing")
	}
}
