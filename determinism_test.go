package tft

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"testing"

	"github.com/tftproject/tft/internal/core"
	"github.com/tftproject/tft/internal/metrics"
	"github.com/tftproject/tft/internal/population"
)

// renderDNS flattens everything a fixed seed promises to reproduce into one
// byte stream: the paper tables, the CLI headline, both dataset exports,
// and the crawl stats. Spans and metrics are deliberately excluded — span
// IDs come from a process-global counter, so they differ between runs by
// construction without making the measurements any less reproducible.
func renderDNS(t *testing.T, r *DNSRun) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, tbl := range r.Tables() {
		buf.WriteString(tbl.String())
	}
	buf.WriteString(r.Headline())
	if err := r.WriteDataset(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteGeo(&buf); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "%+v\n", r.Stats())
	return buf.Bytes()
}

// TestDNSRunDeterministic runs the same fixed-seed crawl twice in-process
// and requires byte-identical reports. This is the regression gate behind
// the simclock/seededrand analyzers: any time.Now or global-RNG call that
// sneaks into the measurement path shows up here as a diff.
func TestDNSRunDeterministic(t *testing.T) {
	opts := Options{Seed: 20160413, Scale: 0.02, Workers: 1}
	first, err := RunDNS(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunDNS(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	a, b := renderDNS(t, first), renderDNS(t, second)
	if !bytes.Equal(a, b) {
		t.Fatalf("fixed-seed runs diverged:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	if len(a) == 0 {
		t.Fatal("rendered report is empty; determinism check proved nothing")
	}
}

// TestDNSShardSinksMergeCanonically is the sharding half of the
// determinism gate. A multi-worker crawl's dataset is produced by merging
// per-shard sinks; this re-derives that merge from the Sink callback's
// per-shard streams and requires the result to equal the dataset the run
// returned — same observation set, same canonical ZID order, no worker
// allowed to drop, duplicate, or reorder a record. The crawl's stop point
// legitimately depends on worker interleaving (the novelty window is
// evaluated in completion order, as on a real crawl), so the invariant is
// merge fidelity for whatever set was measured, not cross-worker-count
// equality.
func TestDNSShardSinksMergeCanonically(t *testing.T) {
	const workers = 7
	w, err := population.BuildDNSWorld(20160413, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([][]*core.DNSObservation, workers)
	exp := &core.DNSExperiment{
		Client: w.Client, Auth: w.Auth, Web: w.Web, Geo: w.Geo,
		Zone: population.Zone, Weights: w.Pool.CountryCounts(),
		Seed: 20160413,
		Sink: func(shard int, o *core.DNSObservation) {
			shards[shard] = append(shards[shard], o)
		},
	}
	exp.Crawl.Workers = workers
	exp.Crawl.Metrics = metrics.NewRegistry()
	exp.InstallRules(population.WebIP)
	ds, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	var merged []*core.DNSObservation
	for _, s := range shards {
		merged = append(merged, s...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].ZID < merged[j].ZID })
	if len(merged) == 0 {
		t.Fatal("sink saw no observations; merge check proved nothing")
	}
	if len(merged) != len(ds.Observations) {
		t.Fatalf("sink streams carry %d observations, dataset has %d", len(merged), len(ds.Observations))
	}
	for i := range merged {
		if merged[i] != ds.Observations[i] {
			t.Fatalf("observation %d: merged sink stream has %q, dataset has %q",
				i, merged[i].ZID, ds.Observations[i].ZID)
		}
		if i > 0 && merged[i-1].ZID >= merged[i].ZID {
			t.Fatalf("dataset order not strictly increasing at %d: %q >= %q",
				i, merged[i-1].ZID, merged[i].ZID)
		}
	}
}
