package tft

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"github.com/tftproject/tft/internal/trace"
)

// The observability acceptance bar: a DNS run yields at least one complete
// per-request trace tree — client probe → super proxy request → exit-node
// attempt → node-side resolve and fetch — and the Chrome trace_event
// export of those spans is structurally valid (Perfetto-loadable).
func TestRunDNSTraceChain(t *testing.T) {
	run, err := RunDNS(context.Background(), Options{Seed: 21, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	spans := run.Spans()
	if len(spans) == 0 {
		t.Fatal("run retained no spans")
	}

	byID := make(map[trace.SpanID]trace.SpanData, len(spans))
	for _, d := range spans {
		byID[d.SpanID] = d
	}
	// ancestors resolves the parent chain's names, innermost-first.
	ancestors := func(d trace.SpanData) []string {
		var names []string
		for p := d.Parent; p != 0; {
			pd, ok := byID[p]
			if !ok {
				break
			}
			names = append(names, pd.Name)
			p = pd.Parent
		}
		return names
	}
	chainOK := func(names []string) bool {
		return len(names) == 3 && names[0] == "proxy.attempt" &&
			names[1] == "proxy.get" && names[2] == "probe.dns"
	}
	fetches, resolves := 0, 0
	for _, d := range spans {
		switch d.Name {
		case "node.fetch":
			if chainOK(ancestors(d)) {
				fetches++
			}
		case "node.resolve":
			if chainOK(ancestors(d)) {
				resolves++
			}
		}
	}
	if fetches == 0 {
		t.Fatal("no node.fetch span with the full probe.dns → proxy.get → proxy.attempt chain")
	}
	if resolves == 0 {
		t.Fatal("no node.resolve span with the full chain (RemoteDNS probes must trace resolution)")
	}

	// The Chrome export of a real run's spans must be structurally valid.
	var buf bytes.Buffer
	if err := trace.WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *int64         `json:"ts"`
			Dur  *int64         `json:"dur"`
			Pid  *int           `json:"pid"`
			Tid  *uint64        `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) != len(spans) {
		t.Fatalf("exported %d events for %d spans", len(f.TraceEvents), len(spans))
	}
	for i, ev := range f.TraceEvents {
		if ev.Name == "" || ev.Ph != "X" || ev.Ts == nil || ev.Dur == nil || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event %d structurally incomplete: %+v", i, ev)
		}
		if *ev.Dur < 0 {
			t.Fatalf("event %d has negative duration: %+v", i, ev)
		}
		if ev.Args["trace_id"] == "" || ev.Args["span_id"] == "" {
			t.Fatalf("event %d missing ids: %+v", i, ev)
		}
	}
}
