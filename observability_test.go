package tft

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"github.com/tftproject/tft/internal/core"
	"github.com/tftproject/tft/internal/metrics"
	"github.com/tftproject/tft/internal/progress"
	"github.com/tftproject/tft/internal/simnet"
	"github.com/tftproject/tft/internal/trace"
)

// The observability acceptance bar: a DNS run yields at least one complete
// per-request trace tree — client probe → super proxy request → exit-node
// attempt → node-side resolve and fetch — and the Chrome trace_event
// export of those spans is structurally valid (Perfetto-loadable).
func TestRunDNSTraceChain(t *testing.T) {
	run, err := RunDNS(context.Background(), Options{Seed: 21, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	spans := run.Spans()
	if len(spans) == 0 {
		t.Fatal("run retained no spans")
	}

	byID := make(map[trace.SpanID]trace.SpanData, len(spans))
	for _, d := range spans {
		byID[d.SpanID] = d
	}
	// ancestors resolves the parent chain's names, innermost-first.
	ancestors := func(d trace.SpanData) []string {
		var names []string
		for p := d.Parent; p != 0; {
			pd, ok := byID[p]
			if !ok {
				break
			}
			names = append(names, pd.Name)
			p = pd.Parent
		}
		return names
	}
	chainOK := func(names []string) bool {
		return len(names) == 3 && names[0] == "proxy.attempt" &&
			names[1] == "proxy.get" && names[2] == "probe.dns"
	}
	fetches, resolves := 0, 0
	for _, d := range spans {
		switch d.Name {
		case "node.fetch":
			if chainOK(ancestors(d)) {
				fetches++
			}
		case "node.resolve":
			if chainOK(ancestors(d)) {
				resolves++
			}
		}
	}
	if fetches == 0 {
		t.Fatal("no node.fetch span with the full probe.dns → proxy.get → proxy.attempt chain")
	}
	if resolves == 0 {
		t.Fatal("no node.resolve span with the full chain (RemoteDNS probes must trace resolution)")
	}

	// The Chrome export of a real run's spans must be structurally valid.
	var buf bytes.Buffer
	if err := trace.WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *int64         `json:"ts"`
			Dur  *int64         `json:"dur"`
			Pid  *int           `json:"pid"`
			Tid  *uint64        `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) != len(spans) {
		t.Fatalf("exported %d events for %d spans", len(f.TraceEvents), len(spans))
	}
	for i, ev := range f.TraceEvents {
		if ev.Name == "" || ev.Ph != "X" || ev.Ts == nil || ev.Dur == nil || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event %d structurally incomplete: %+v", i, ev)
		}
		if *ev.Dur < 0 {
			t.Fatalf("event %d has negative duration: %+v", i, ev)
		}
		if ev.Args["trace_id"] == "" || ev.Args["span_id"] == "" {
			t.Fatalf("event %d missing ids: %+v", i, ev)
		}
	}
}

// The flight-recorder acceptance bar: a DNS run observed by a live Sampler
// produces at least one sample (Stop's final read guarantees it even when
// the crawl beats the interval), and the RunManifest's final counts agree
// with both the crawl-engine metrics and the run's own Stats.
func TestRunDNSFlightRecorder(t *testing.T) {
	tracker := progress.NewTracker()
	reg := metrics.NewRegistry()
	opts := Options{Seed: 21, Scale: 0.01}
	opts.Crawl.Progress = tracker
	opts.Crawl.Metrics = reg

	sampler := &progress.Sampler{
		Tracker:  tracker,
		Clock:    simnet.Real{},
		Interval: 20 * time.Millisecond,
		Metrics:  reg,
	}
	if err := sampler.Start(); err != nil {
		t.Fatal(err)
	}
	run, err := RunDNS(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sampler.Stop(); err != nil {
		t.Fatal(err)
	}

	if len(sampler.Samples()) == 0 {
		t.Fatal("sampler retained no samples (Stop must take a final one)")
	}

	man := run.Manifest()
	if man == nil {
		t.Fatal("run has no manifest")
	}
	if man.Experiment != "dns" || man.Seed != 21 || man.Scale != 0.01 {
		t.Fatalf("manifest identity = %+v", man)
	}

	snap := reg.Snapshot()
	if got := snap.Counter("crawl_sessions_total"); got != man.Sessions {
		t.Errorf("manifest sessions %d != crawl_sessions_total %d", man.Sessions, got)
	}
	if got := snap.Counter("crawl_nodes_total"); got != man.UniqueNodes {
		t.Errorf("manifest unique nodes %d != crawl_nodes_total %d", man.UniqueNodes, got)
	}
	var st core.Stats = run.Stats()
	if man.Sessions != int64(st.Sessions) || man.UniqueNodes != int64(st.UniqueNodes) {
		t.Errorf("manifest %+v disagrees with run stats %+v", man, st)
	}
	if man.NodesDone != int64(len(run.Dataset.Observations))+man.Discarded {
		t.Errorf("manifest nodes done %d != observations %d + discarded %d",
			man.NodesDone, len(run.Dataset.Observations), man.Discarded)
	}
	if man.Probes < man.NodesDone {
		t.Errorf("probes %d < nodes done %d", man.Probes, man.NodesDone)
	}
	if man.Watermarks.PeakHeapBytes == 0 {
		t.Error("manifest watermarks empty")
	}
	if man.DurationSeconds < 0 || man.FinishedAt.Before(man.StartedAt) {
		t.Errorf("manifest time range invalid: %+v", man)
	}

	// WriteManifest renders valid JSON carrying the same counts.
	var buf bytes.Buffer
	if err := run.WriteManifest(&buf); err != nil {
		t.Fatal(err)
	}
	var back progress.RunManifest
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("manifest JSON invalid: %v", err)
	}
	if back.Sessions != man.Sessions || back.NodesDone != man.NodesDone {
		t.Errorf("round-tripped manifest %+v != %+v", back, man)
	}

	// A second run on the same Options reuses the tracker: Begin must reset
	// the per-run counts so the new manifest doesn't double-count. (Counts
	// are compared within the run, not across runs — the concurrent stop
	// rule makes per-run totals scheduling-dependent.)
	run2, err := RunDNS(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	m2 := run2.Manifest()
	if m2.NodesDone != int64(len(run2.Dataset.Observations))+m2.Discarded {
		t.Errorf("second run nodes done %d != observations %d + discarded %d (Begin must reset shard counts)",
			m2.NodesDone, len(run2.Dataset.Observations), m2.Discarded)
	}
}
