package httpwire

import (
	"bufio"
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func parseReq(t *testing.T, raw string) (*Request, error) {
	t.Helper()
	return ReadRequest(bufio.NewReader(strings.NewReader(raw)))
}

func TestRequestRoundTrip(t *testing.T) {
	req := NewRequest("GET", "http://d1.example.org/object.html")
	req.Header.Set("Proxy-Authorization", "Basic abc")
	req.Header.Set("x-hola-debug", "on")
	var buf bytes.Buffer
	if err := req.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != "GET" || got.Target != "http://d1.example.org/object.html" {
		t.Fatalf("request = %+v", got)
	}
	if got.Header.Get("X-Hola-Debug") != "on" {
		t.Fatalf("header canonicalization lost value: %v", got.Header)
	}
	if got.Header.Get("proxy-authorization") != "Basic abc" {
		t.Fatal("case-insensitive get failed")
	}
}

func TestResponseRoundTripWithBody(t *testing.T) {
	body := bytes.Repeat([]byte("x"), 9*1024)
	resp := NewResponse(200, body)
	resp.Header.Set("Content-Type", "text/html")
	resp.Header.Set("X-Hola-Timeline-Debug", "zid 12345 sid 429")
	var buf bytes.Buffer
	if err := resp.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponse(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.StatusCode != 200 || got.Reason != "OK" {
		t.Fatalf("status = %d %q", got.StatusCode, got.Reason)
	}
	if !bytes.Equal(got.Body, body) {
		t.Fatalf("body length = %d, want %d", len(got.Body), len(body))
	}
	if got.Header.Get("X-Hola-Timeline-Debug") != "zid 12345 sid 429" {
		t.Fatal("debug header lost")
	}
}

func TestConnectForm(t *testing.T) {
	req, err := parseReq(t, "CONNECT 192.0.2.10:443 HTTP/1.1\r\nHost: 192.0.2.10:443\r\n\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "CONNECT" || req.Target != "192.0.2.10:443" {
		t.Fatalf("req = %+v", req)
	}
	host, port := SplitHostPort(req.Target, 443)
	if host != "192.0.2.10" || port != 443 {
		t.Fatalf("split = %q %d", host, port)
	}
}

func TestEmptyBodyNoContentLength(t *testing.T) {
	req, err := parseReq(t, "GET / HTTP/1.1\r\nHost: x\r\n\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if req.Body != nil {
		t.Fatalf("body = %q", req.Body)
	}
}

func TestMalformedRequestLine(t *testing.T) {
	for _, raw := range []string{
		"GET\r\n\r\n",
		"GET /\r\n\r\n",
		"GET / NOTHTTP\r\n\r\n",
		" / HTTP/1.1\r\n\r\n",
	} {
		if _, err := parseReq(t, raw); err == nil {
			t.Errorf("accepted %q", raw)
		}
	}
}

func TestMalformedHeader(t *testing.T) {
	if _, err := parseReq(t, "GET / HTTP/1.1\r\nBad Header Line\r\n\r\n"); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v", err)
	}
}

func TestBadContentLength(t *testing.T) {
	if _, err := parseReq(t, "GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v", err)
	}
	if _, err := parseReq(t, "GET / HTTP/1.1\r\nContent-Length: -5\r\n\r\n"); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v", err)
	}
}

func TestBodyTooBig(t *testing.T) {
	raw := "GET / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"
	if _, err := parseReq(t, raw); !errors.Is(err, ErrBodyTooBig) {
		t.Fatalf("err = %v", err)
	}
}

func TestTooManyHeaderLines(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("GET / HTTP/1.1\r\n")
	for i := 0; i < 200; i++ {
		sb.WriteString("X-Filler: v\r\n")
	}
	sb.WriteString("\r\n")
	if _, err := parseReq(t, sb.String()); !errors.Is(err, ErrHeaderTooBig) {
		t.Fatalf("err = %v", err)
	}
}

func TestTruncatedBody(t *testing.T) {
	if _, err := parseReq(t, "GET / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestReadResponseMalformed(t *testing.T) {
	for _, raw := range []string{
		"NOTHTTP 200 OK\r\n\r\n",
		"HTTP/1.1 abc OK\r\n\r\n",
		"HTTP/1.1 99 Low\r\n\r\n",
	} {
		if _, err := ReadResponse(bufio.NewReader(strings.NewReader(raw))); err == nil {
			t.Errorf("accepted %q", raw)
		}
	}
}

func TestCanonicalKey(t *testing.T) {
	cases := map[string]string{
		"content-length":        "Content-Length",
		"X-HOLA-TIMELINE-DEBUG": "X-Hola-Timeline-Debug",
		"host":                  "Host",
	}
	for in, want := range cases {
		if got := CanonicalKey(in); got != want {
			t.Errorf("CanonicalKey(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseAbsoluteURL(t *testing.T) {
	host, port, path, err := ParseAbsoluteURL("http://D1.Example.org/object.html")
	if err != nil || host != "d1.example.org" || port != 80 || path != "/object.html" {
		t.Fatalf("got %q %d %q err=%v", host, port, path, err)
	}
	host, port, path, err = ParseAbsoluteURL("http://example.org:8080")
	if err != nil || host != "example.org" || port != 8080 || path != "/" {
		t.Fatalf("got %q %d %q err=%v", host, port, path, err)
	}
	if _, _, _, err := ParseAbsoluteURL("https://example.org/"); err == nil {
		t.Fatal("https absolute-form accepted (proxy only speaks plaintext GET)")
	}
	if _, _, _, err := ParseAbsoluteURL("http:///nohost"); err == nil {
		t.Fatal("empty host accepted")
	}
}

func TestRoundTripHelper(t *testing.T) {
	var wire bytes.Buffer
	resp := NewResponse(200, []byte("payload"))
	var respBytes bytes.Buffer
	resp.Write(&respBytes)
	got, err := RoundTrip(&wire, bufio.NewReader(&respBytes), NewRequest("GET", "/x"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Body) != "payload" {
		t.Fatalf("body = %q", got.Body)
	}
	if !strings.HasPrefix(wire.String(), "GET /x HTTP/1.1\r\n") {
		t.Fatalf("wire = %q", wire.String())
	}
}

func TestReadRequestGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		buf := make([]byte, rng.Intn(100))
		rng.Read(buf)
		ReadRequest(bufio.NewReader(bytes.NewReader(buf)))
		ReadResponse(bufio.NewReader(bytes.NewReader(buf)))
	}
}

// Property: responses round-trip for arbitrary bodies and status codes.
func TestPropertyResponseRoundTrip(t *testing.T) {
	f := func(code uint16, body []byte) bool {
		c := 100 + int(code)%500
		resp := NewResponse(c, body)
		var buf bytes.Buffer
		if err := resp.Write(&buf); err != nil {
			return false
		}
		got, err := ReadResponse(bufio.NewReader(&buf))
		if err != nil {
			return false
		}
		return got.StatusCode == c && bytes.Equal(got.Body, body)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: header Set/Get is case-insensitive for arbitrary ASCII keys.
func TestPropertyHeaderCaseInsensitive(t *testing.T) {
	f := func(raw string, v string) bool {
		k := sanitizeKey(raw)
		if k == "" {
			return true
		}
		h := Header{}
		h.Set(k, v)
		return h.Get(strings.ToUpper(k)) == v && h.Get(strings.ToLower(k)) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func sanitizeKey(s string) string {
	var sb strings.Builder
	for _, c := range s {
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '-' {
			sb.WriteRune(c)
		}
	}
	return strings.Trim(sb.String(), "-")
}
