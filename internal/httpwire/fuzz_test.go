package httpwire

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzReadRequest: the request parser must never panic, and accepted
// requests must survive a write/read round trip.
func FuzzReadRequest(f *testing.F) {
	f.Add([]byte("GET http://d1.example.org/object.html HTTP/1.1\r\nHost: d1.example.org\r\n\r\n"))
	f.Add([]byte("CONNECT 192.0.2.1:443 HTTP/1.1\r\n\r\n"))
	f.Add([]byte("REGISTER z0001 HTTP/1.1\r\nX-Tft-Country: DE\r\n\r\n"))
	f.Add([]byte("POST / HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc"))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ReadRequest(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := req.Write(&buf); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		req2, err := ReadRequest(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("re-decode failed: %v\nwire: %q", err, buf.Bytes())
		}
		if req2.Method != req.Method || req2.Target != req.Target || !bytes.Equal(req2.Body, req.Body) {
			t.Fatalf("unstable round trip: %+v vs %+v", req, req2)
		}
	})
}

// FuzzReadResponse mirrors FuzzReadRequest for responses.
func FuzzReadResponse(f *testing.F) {
	f.Add([]byte("HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi"))
	f.Add([]byte("HTTP/1.1 502 Bad Gateway\r\nX-Hola-Unblocker-Debug: dns_error peer NXDOMAIN\r\n\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := ReadResponse(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := resp.Write(&buf); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		resp2, err := ReadResponse(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if resp2.StatusCode != resp.StatusCode || !bytes.Equal(resp2.Body, resp.Body) {
			t.Fatalf("unstable round trip")
		}
	})
}
