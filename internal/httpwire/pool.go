package httpwire

import (
	"bufio"
	"io"
	"sync"
)

// readerPool recycles the bufio.Readers each connection wraps around its
// read side. A proxied probe crosses three hops and every hop used to
// allocate a fresh 4KB reader; at crawl scale that churn dominated the
// allocation profile, so parsing paths borrow readers here instead.
var readerPool = sync.Pool{New: func() any { return bufio.NewReader(nil) }}

// GetReader returns a pooled bufio.Reader reading from r. Pair it with
// PutReader when the connection's parsing is finished — but only when the
// reader does not outlive the call (a reader handed to a tunnel or stored
// on a connection must stay out of the pool).
func GetReader(r io.Reader) *bufio.Reader {
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(r)
	return br
}

// PutReader returns br to the pool. The caller must not touch br again;
// any bytes still buffered are discarded.
func PutReader(br *bufio.Reader) {
	br.Reset(nil)
	readerPool.Put(br)
}

// writerPool recycles the bufio.Writers Request.Write and Response.Write
// serialize through. Writers never escape those calls, so pooling is
// invisible to callers.
var writerPool = sync.Pool{New: func() any { return bufio.NewWriter(nil) }}

func getWriter(w io.Writer) *bufio.Writer {
	bw := writerPool.Get().(*bufio.Writer)
	bw.Reset(w)
	return bw
}

func putWriter(bw *bufio.Writer) {
	bw.Reset(nil)
	writerPool.Put(bw)
}
