// Package httpwire is a small, transport-agnostic HTTP/1.1 implementation
// covering exactly what the proxy service and the measurement methodology
// need: origin-form requests to web servers, absolute-form requests to the
// super proxy (GET http://host/path — §2.3), the CONNECT method for port-443
// tunnels, Content-Length bodies, and free-form headers (Luminati's
// X-Hola-* debug headers ride here).
//
// It reads from a bufio.Reader and writes to any io.Writer, so the same
// code serves the in-memory simnet fabric and real TCP sockets.
package httpwire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"slices"
	"strconv"
	"strings"
)

// Limits protecting servers from malformed or hostile peers.
const (
	MaxHeaderBytes = 64 << 10
	MaxBodyBytes   = 8 << 20
	maxHeaderLines = 128
)

// Protocol errors.
var (
	ErrMalformed    = errors.New("httpwire: malformed message")
	ErrHeaderTooBig = errors.New("httpwire: header block too large")
	ErrBodyTooBig   = errors.New("httpwire: body exceeds limit")
)

// Header is an ordered-insensitive header map with canonicalized keys.
type Header map[string]string

// CanonicalKey normalizes a header name (content-length → Content-Length).
func CanonicalKey(k string) string {
	// Fast path: keys at the call sites are almost always written in
	// canonical form already ("Host", "Content-Length"), so scan before
	// paying the two allocations of the rewrite.
	upper := true
	for i := 0; i < len(k); i++ {
		c := k[i]
		if (upper && 'a' <= c && c <= 'z') || (!upper && 'A' <= c && c <= 'Z') {
			return canonicalKeySlow(k)
		}
		upper = c == '-'
	}
	return k
}

func canonicalKeySlow(k string) string {
	b := []byte(k)
	upper := true
	for i, c := range b {
		switch {
		case upper && 'a' <= c && c <= 'z':
			b[i] = c - 'a' + 'A'
		case !upper && 'A' <= c && c <= 'Z':
			b[i] = c - 'A' + 'a'
		}
		upper = c == '-'
	}
	return string(b)
}

// Set stores a header value.
func (h Header) Set(k, v string) { h[CanonicalKey(k)] = v }

// Get retrieves a header value ("" when absent).
func (h Header) Get(k string) string { return h[CanonicalKey(k)] }

// Del removes a header.
func (h Header) Del(k string) { delete(h, CanonicalKey(k)) }

// Clone deep-copies the header map.
func (h Header) Clone() Header {
	out := make(Header, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// write emits headers sorted by key for deterministic wire bytes.
func (h Header) write(w *bufio.Writer) { h.writeWith(w, "", "") }

// writeWith emits the headers plus one override entry — replacing any
// existing value under the same key — in a single sorted pass, so the
// serializers can stamp Content-Length without cloning the map per message.
func (h Header) writeWith(w *bufio.Writer, oKey, oVal string) {
	// Sort from a stack-backed array: messages carry a handful of headers,
	// and slices.Sort (unlike sort.Strings) doesn't force the slice to heap.
	var arr [12]string
	keys := arr[:0]
	if len(h)+1 > len(arr) {
		keys = make([]string, 0, len(h)+1)
	}
	for k := range h {
		if k != oKey {
			keys = append(keys, k)
		}
	}
	if oKey != "" {
		keys = append(keys, oKey)
	}
	slices.Sort(keys)
	for _, k := range keys {
		w.WriteString(k)
		w.WriteString(": ")
		if k == oKey {
			w.WriteString(oVal)
		} else {
			w.WriteString(h[k])
		}
		w.WriteString("\r\n")
	}
}

// Request is an HTTP request in any of the three target forms the proxy
// stack uses: origin-form ("/object.html"), absolute-form
// ("http://d1.example.org/"), or authority-form for CONNECT
// ("192.0.2.1:443").
type Request struct {
	Method string
	Target string
	Proto  string
	Header Header
	Body   []byte
}

// NewRequest builds a request with an empty header map.
func NewRequest(method, target string) *Request {
	return &Request{Method: method, Target: target, Proto: "HTTP/1.1", Header: make(Header, 8)}
}

// Response is an HTTP response.
type Response struct {
	StatusCode int
	Reason     string
	Proto      string
	Header     Header
	Body       []byte
}

// NewResponse builds a response with standard reason text and body.
func NewResponse(code int, body []byte) *Response {
	return &Response{StatusCode: code, Reason: ReasonPhrase(code), Proto: "HTTP/1.1", Header: make(Header, 8), Body: body}
}

// ReasonPhrase returns the standard reason for common status codes.
func ReasonPhrase(code int) string {
	switch code {
	case 200:
		return "OK"
	case 400:
		return "Bad Request"
	case 403:
		return "Forbidden"
	case 404:
		return "Not Found"
	case 407:
		return "Proxy Authentication Required"
	case 502:
		return "Bad Gateway"
	case 504:
		return "Gateway Timeout"
	}
	return "Status " + strconv.Itoa(code)
}

// Write serializes the request. Content-Length is set from Body.
func (r *Request) Write(w io.Writer) error {
	bw := getWriter(w)
	defer putWriter(bw)
	bw.WriteString(r.Method)
	bw.WriteByte(' ')
	bw.WriteString(r.Target)
	bw.WriteByte(' ')
	bw.WriteString(protoOr(r.Proto))
	bw.WriteString("\r\n")
	if len(r.Body) > 0 || r.Method == "POST" || r.Method == "PUT" {
		r.Header.writeWith(bw, "Content-Length", strconv.Itoa(len(r.Body)))
	} else {
		r.Header.write(bw)
	}
	bw.WriteString("\r\n")
	bw.Write(r.Body)
	return bw.Flush()
}

// Write serializes the response. Content-Length is always set.
func (r *Response) Write(w io.Writer) error {
	bw := getWriter(w)
	defer putWriter(bw)
	reason := r.Reason
	if reason == "" {
		reason = ReasonPhrase(r.StatusCode)
	}
	bw.WriteString(protoOr(r.Proto))
	bw.WriteByte(' ')
	bw.Write(strconv.AppendInt(bw.AvailableBuffer(), int64(r.StatusCode), 10))
	bw.WriteByte(' ')
	bw.WriteString(reason)
	bw.WriteString("\r\n")
	r.Header.writeWith(bw, "Content-Length", strconv.Itoa(len(r.Body)))
	bw.WriteString("\r\n")
	bw.Write(r.Body)
	return bw.Flush()
}

func protoOr(p string) string {
	if p == "" {
		return "HTTP/1.1"
	}
	return p
}

// ReadRequest parses one request from br.
func ReadRequest(br *bufio.Reader) (*Request, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	method, rest, ok := strings.Cut(line, " ")
	if !ok {
		return nil, fmt.Errorf("%w: request line %q", ErrMalformed, line)
	}
	target, proto, ok := strings.Cut(rest, " ")
	if !ok || !strings.HasPrefix(proto, "HTTP/") || method == "" || target == "" {
		return nil, fmt.Errorf("%w: request line %q", ErrMalformed, line)
	}
	h, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	body, err := readBody(br, h)
	if err != nil {
		return nil, err
	}
	return &Request{Method: method, Target: target, Proto: proto, Header: h, Body: body}, nil
}

// ReadResponse parses one response from br.
func ReadResponse(br *bufio.Reader) (*Response, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	proto, rest, ok := strings.Cut(line, " ")
	if !ok || !strings.HasPrefix(proto, "HTTP/") {
		return nil, fmt.Errorf("%w: status line %q", ErrMalformed, line)
	}
	codeStr, reason, _ := strings.Cut(rest, " ")
	code, err := strconv.Atoi(codeStr)
	if err != nil || code < 100 || code > 599 {
		return nil, fmt.Errorf("%w: status %q", ErrMalformed, codeStr)
	}
	h, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	body, err := readBody(br, h)
	if err != nil {
		return nil, err
	}
	return &Response{StatusCode: code, Reason: reason, Proto: proto, Header: h, Body: body}, nil
}

func readLine(br *bufio.Reader) (string, error) {
	// Fast path: the line fits the bufio buffer (every header and request
	// line in the simulation does), so one string conversion suffices.
	chunk, isPrefix, err := br.ReadLine()
	if err != nil {
		return "", err
	}
	if !isPrefix {
		if len(chunk) > MaxHeaderBytes {
			return "", ErrHeaderTooBig
		}
		return string(chunk), nil
	}
	var sb strings.Builder
	sb.Write(chunk)
	for {
		chunk, isPrefix, err = br.ReadLine()
		if err != nil {
			return "", err
		}
		sb.Write(chunk)
		if sb.Len() > MaxHeaderBytes {
			return "", ErrHeaderTooBig
		}
		if !isPrefix {
			return sb.String(), nil
		}
	}
}

func readHeader(br *bufio.Reader) (Header, error) {
	// Sized for the typical message: presizing skips the incremental bucket
	// growth that dominated this function's allocation profile.
	h := make(Header, 8)
	total := 0
	for i := 0; ; i++ {
		if i > maxHeaderLines {
			return nil, ErrHeaderTooBig
		}
		line, err := readLine(br)
		if err != nil {
			return nil, err
		}
		if line == "" {
			return h, nil
		}
		total += len(line)
		if total > MaxHeaderBytes {
			return nil, ErrHeaderTooBig
		}
		k, v, ok := strings.Cut(line, ":")
		if !ok || k == "" || strings.ContainsAny(k, " \t") {
			return nil, fmt.Errorf("%w: header line %q", ErrMalformed, line)
		}
		h.Set(k, strings.TrimSpace(v))
	}
}

func readBody(br *bufio.Reader, h Header) ([]byte, error) {
	cl := h.Get("Content-Length")
	if cl == "" {
		return nil, nil
	}
	n, err := strconv.Atoi(cl)
	if err != nil || n < 0 {
		return nil, fmt.Errorf("%w: Content-Length %q", ErrMalformed, cl)
	}
	if n > MaxBodyBytes {
		return nil, ErrBodyTooBig
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, err
	}
	return body, nil
}

// RoundTrip writes req on conn and reads the response. The caller owns the
// connection; br must wrap conn's read side.
func RoundTrip(conn io.Writer, br *bufio.Reader, req *Request) (*Response, error) {
	if err := req.Write(conn); err != nil {
		return nil, err
	}
	return ReadResponse(br)
}

// SplitHostPort separates "host:port" with a default port when none is
// present. Unlike net.SplitHostPort it never errors on a bare host.
func SplitHostPort(target string, defaultPort uint16) (host string, port uint16) {
	host = target
	port = defaultPort
	if i := strings.LastIndexByte(target, ':'); i >= 0 && !strings.Contains(target[i+1:], "]") {
		if p, err := strconv.Atoi(target[i+1:]); err == nil && p > 0 && p < 65536 {
			host = target[:i]
			port = uint16(p)
		}
	}
	return host, port
}

// ParseAbsoluteURL splits an absolute-form http URL into host, port, and
// path. The super proxy receives these on every proxied GET.
func ParseAbsoluteURL(u string) (host string, port uint16, path string, err error) {
	rest, ok := strings.CutPrefix(u, "http://")
	if !ok {
		return "", 0, "", fmt.Errorf("%w: not an absolute http URL: %q", ErrMalformed, u)
	}
	hostport := rest
	path = "/"
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		hostport, path = rest[:i], rest[i:]
	}
	if hostport == "" {
		return "", 0, "", fmt.Errorf("%w: empty host in %q", ErrMalformed, u)
	}
	host, port = SplitHostPort(hostport, 80)
	return strings.ToLower(host), port, path, nil
}
