// Package content provides the measurement objects the HTTP experiment
// (§5.1) fetches through every exit node — a 9 KB HTML page, a 39 KB image,
// a 258 KB un-minified JavaScript library, and a 3 KB un-minified CSS file —
// together with the helpers the analysis needs: deterministic content
// generation, a quality-parameterized image codec whose size responds to
// recompression the way JPEG does, and URL extraction from HTML (used in
// §4.3.3 to attribute hijack landing pages).
package content

import (
	"crypto/sha256"
	"fmt"
	"strings"
)

// Kind is one of the four object types fetched per exit node.
type Kind int

// The four measured object kinds.
const (
	KindHTML Kind = iota
	KindImage
	KindJS
	KindCSS
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindHTML:
		return "HTML"
	case KindImage:
		return "Image"
	case KindJS:
		return "JavaScript"
	case KindCSS:
		return "CSS"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Path returns the URL path the object is served under.
func (k Kind) Path() string {
	switch k {
	case KindHTML:
		return "/object.html"
	case KindImage:
		return "/object.jpg"
	case KindJS:
		return "/object.js"
	case KindCSS:
		return "/object.css"
	}
	return "/unknown"
}

// ContentType returns the MIME type the origin serves the object with.
func (k Kind) ContentType() string {
	switch k {
	case KindHTML:
		return "text/html; charset=utf-8"
	case KindImage:
		return "image/jpeg"
	case KindJS:
		return "application/javascript"
	case KindCSS:
		return "text/css"
	}
	return "application/octet-stream"
}

// Kinds lists all object kinds in experiment order.
var Kinds = []Kind{KindHTML, KindImage, KindJS, KindCSS}

// Paper object sizes (§5.1).
const (
	HTMLSize  = 9 * 1024
	ImageSize = 39 * 1024
	JSSize    = 258 * 1024
	CSSSize   = 3 * 1024
)

// Object returns the canonical bytes for a kind. The generation is
// deterministic so any two parties (origin server, measurement client)
// agree on the exact payload.
func Object(k Kind) []byte {
	switch k {
	case KindHTML:
		return htmlObject()
	case KindImage:
		img := Image{Width: 640, Height: 480, Quality: 92, ID: 0x7f71}
		return img.Encode(ImageSize)
	case KindJS:
		return textObject("js", JSSize,
			"// tft measurement library — unminified on purpose (§5.1)\n",
			"function probeSegment%04d(input) {\n    var accumulator = input;\n    accumulator = accumulator + %d;\n    return accumulator;\n}\n")
	case KindCSS:
		return textObject("css", CSSSize,
			"/* tft measurement stylesheet — unminified on purpose (§5.1) */\n",
			".probe-segment-%04d {\n    margin: %dpx;\n    padding: 2px;\n}\n")
	}
	return nil
}

// Hash returns the SHA-256 of an object, the comparison key for
// modification detection.
func Hash(b []byte) [32]byte { return sha256.Sum256(b) }

// htmlObject builds the 9 KB HTML page. It intentionally contains realistic
// structure (head, scripts, body text) because several real-world injectors
// key on document structure.
func htmlObject() []byte {
	var sb strings.Builder
	sb.WriteString("<!DOCTYPE html>\n<html>\n<head>\n<title>tft measurement page</title>\n")
	sb.WriteString("<meta charset=\"utf-8\">\n")
	sb.WriteString("<link rel=\"stylesheet\" href=\"/object.css\">\n")
	sb.WriteString("<script src=\"/object.js\"></script>\n</head>\n<body>\n")
	sb.WriteString("<h1>End-to-end integrity probe</h1>\n")
	para := "<p id=\"seg-%04d\">This paragraph is part of a measurement object; " +
		"its bytes must arrive unmodified for the end-to-end test to pass. Sequence %d.</p>\n"
	for i := 0; sb.Len() < HTMLSize-260; i++ {
		fmt.Fprintf(&sb, para, i, i)
	}
	sb.WriteString("</body>\n</html>\n")
	out := []byte(sb.String())
	return padTo(out, HTMLSize, "<!-- pad -->")
}

// textObject builds a deterministic repetitive text object of exactly size
// bytes from a header and a repeating template.
func textObject(tag string, size int, header, tmpl string) []byte {
	var sb strings.Builder
	sb.WriteString(header)
	for i := 0; sb.Len() < size-200; i++ {
		fmt.Fprintf(&sb, tmpl, i, i%97)
	}
	return padTo([]byte(sb.String()), size, commentFor(tag))
}

func commentFor(tag string) string {
	if tag == "css" {
		return "/* pad */"
	}
	return "// pad \n"
}

// padTo extends b to exactly size bytes with the pad text (truncated as
// needed). It panics if b is already longer — the generators above size
// themselves below their targets.
func padTo(b []byte, size int, pad string) []byte {
	if len(b) > size {
		panic(fmt.Sprintf("content: object overflows target: %d > %d", len(b), size))
	}
	for len(b) < size {
		n := size - len(b)
		if n > len(pad) {
			n = len(pad)
		}
		b = append(b, pad[:n]...)
	}
	return b
}
