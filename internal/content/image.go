package content

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Image is a minimal JPEG-like object: a header carrying dimensions and a
// quality factor, followed by an entropy-coded payload whose length scales
// with quality. Recompressing to a lower quality yields a deterministic,
// smaller object — the behaviour the paper's mobile-ISP transcoders exhibit
// (§5.2, Table 7), where per-ISP compression ratios are the attribution
// signal.
type Image struct {
	Width, Height uint16
	// Quality is the compression quality factor, 1–100.
	Quality uint8
	// ID seeds the payload so different source images differ.
	ID uint32
}

// imageMagic identifies the format ("TFIM" — tft image).
var imageMagic = [4]byte{'T', 'F', 'I', 'M'}

// headerSize is the encoded header length.
const headerSize = 4 + 2 + 2 + 1 + 4 + 4 // magic, w, h, quality, id, payload length

// ErrBadImage reports malformed image bytes.
var ErrBadImage = errors.New("content: malformed image")

// PayloadSize returns the entropy payload length this codec produces for a
// raw size target at the image's quality. Like JPEG, output size is roughly
// proportional to quality with a floor for structural overhead.
func (im Image) PayloadSize(fullSize int) int {
	usable := fullSize - headerSize
	if usable < 16 {
		usable = 16
	}
	// Quality 92 (the origin's setting) fills the target; lower qualities
	// shrink proportionally.
	p := usable * int(im.Quality) / 92
	if p < 16 {
		p = 16
	}
	if p > usable {
		p = usable
	}
	return p
}

// Encode serializes the image sized against fullSize (the byte budget the
// origin encodes at quality 92 to fill).
func (im Image) Encode(fullSize int) []byte {
	payload := im.PayloadSize(fullSize)
	out := make([]byte, headerSize+payload)
	copy(out[0:4], imageMagic[:])
	binary.BigEndian.PutUint16(out[4:6], im.Width)
	binary.BigEndian.PutUint16(out[6:8], im.Height)
	out[8] = im.Quality
	binary.BigEndian.PutUint32(out[9:13], im.ID)
	binary.BigEndian.PutUint32(out[13:17], uint32(payload))
	// Deterministic "entropy-coded" bytes derived from (ID, quality).
	state := im.ID*2654435761 + uint32(im.Quality)*40503
	for i := 0; i < payload; i++ {
		state = state*1664525 + 1013904223
		out[headerSize+i] = byte(state >> 24)
	}
	return out
}

// DecodeImage parses image bytes.
func DecodeImage(b []byte) (Image, error) {
	if len(b) < headerSize {
		return Image{}, fmt.Errorf("%w: %d bytes", ErrBadImage, len(b))
	}
	if [4]byte(b[0:4]) != imageMagic {
		return Image{}, fmt.Errorf("%w: bad magic", ErrBadImage)
	}
	im := Image{
		Width:   binary.BigEndian.Uint16(b[4:6]),
		Height:  binary.BigEndian.Uint16(b[6:8]),
		Quality: b[8],
		ID:      binary.BigEndian.Uint32(b[9:13]),
	}
	payload := int(binary.BigEndian.Uint32(b[13:17]))
	if len(b) != headerSize+payload {
		return Image{}, fmt.Errorf("%w: payload length %d, have %d", ErrBadImage, payload, len(b)-headerSize)
	}
	if im.Quality == 0 || im.Quality > 100 {
		return Image{}, fmt.Errorf("%w: quality %d", ErrBadImage, im.Quality)
	}
	return im, nil
}

// Recompress decodes b and re-encodes it at newQuality, the transcoder
// operation. The result is smaller when newQuality is lower, and the
// achieved byte ratio (len(out)/len(in)) is stable per quality setting — the
// per-ISP fingerprint Table 7 reports.
func Recompress(b []byte, newQuality uint8) ([]byte, error) {
	im, err := DecodeImage(b)
	if err != nil {
		return nil, err
	}
	origFull := len(b) * 92 / int(im.Quality) // reconstruct the full-size budget
	im.Quality = newQuality
	return im.Encode(origFull), nil
}

// QualityForRatio returns the quality setting a transcoder must use to
// achieve (approximately) the target output/input size ratio against the
// origin's quality-92 objects. Table 7's "Cmp." column is expressed as this
// ratio.
func QualityForRatio(ratio float64) uint8 {
	q := int(ratio*92 + 0.5)
	if q < 1 {
		q = 1
	}
	if q > 100 {
		q = 100
	}
	return uint8(q)
}

// CompressionRatio reports len(modified)/len(original).
func CompressionRatio(original, modified []byte) float64 {
	if len(original) == 0 {
		return 0
	}
	return float64(len(modified)) / float64(len(original))
}
