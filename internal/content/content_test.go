package content

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestObjectSizes(t *testing.T) {
	cases := map[Kind]int{KindHTML: HTMLSize, KindImage: ImageSize, KindJS: JSSize, KindCSS: CSSSize}
	for k, want := range cases {
		if got := len(Object(k)); got != want {
			t.Errorf("%v object is %d bytes, want %d", k, got, want)
		}
	}
}

func TestObjectsDeterministic(t *testing.T) {
	for _, k := range Kinds {
		if !bytes.Equal(Object(k), Object(k)) {
			t.Errorf("%v object not deterministic", k)
		}
	}
}

func TestObjectsDistinct(t *testing.T) {
	seen := make(map[[32]byte]Kind)
	for _, k := range Kinds {
		h := Hash(Object(k))
		if prev, ok := seen[h]; ok {
			t.Fatalf("%v and %v hash identically", prev, k)
		}
		seen[h] = k
	}
}

func TestKindMetadata(t *testing.T) {
	if KindHTML.Path() != "/object.html" || KindImage.ContentType() != "image/jpeg" {
		t.Error("kind metadata mismatch")
	}
	if KindJS.String() != "JavaScript" || Kind(9).String() != "Kind(9)" {
		t.Error("Kind.String mismatch")
	}
}

func TestImageRoundTrip(t *testing.T) {
	im := Image{Width: 640, Height: 480, Quality: 92, ID: 42}
	enc := im.Encode(ImageSize)
	got, err := DecodeImage(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got != im {
		t.Fatalf("decoded %+v, want %+v", got, im)
	}
}

func TestImageDecodeErrors(t *testing.T) {
	if _, err := DecodeImage(nil); err == nil {
		t.Error("empty image accepted")
	}
	enc := Image{Width: 1, Height: 1, Quality: 50, ID: 1}.Encode(1024)
	enc[0] = 'X'
	if _, err := DecodeImage(enc); err == nil {
		t.Error("bad magic accepted")
	}
	enc = Image{Width: 1, Height: 1, Quality: 50, ID: 1}.Encode(1024)
	if _, err := DecodeImage(enc[:len(enc)-5]); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestRecompressShrinks(t *testing.T) {
	orig := Object(KindImage)
	out, err := Recompress(orig, 46) // ~50% quality target
	if err != nil {
		t.Fatal(err)
	}
	ratio := CompressionRatio(orig, out)
	if ratio >= 0.99 {
		t.Fatalf("recompression did not shrink: ratio %.3f", ratio)
	}
	if math.Abs(ratio-0.5) > 0.05 {
		t.Fatalf("ratio %.3f, want ~0.50", ratio)
	}
	// The recompressed object still decodes, at the new quality.
	im, err := DecodeImage(out)
	if err != nil {
		t.Fatal(err)
	}
	if im.Quality != 46 {
		t.Fatalf("quality = %d, want 46", im.Quality)
	}
}

func TestRecompressDeterministic(t *testing.T) {
	orig := Object(KindImage)
	a, err1 := Recompress(orig, 50)
	b, err2 := Recompress(orig, 50)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("recompression not deterministic")
	}
}

func TestQualityForRatioInverts(t *testing.T) {
	orig := Object(KindImage)
	for _, ratio := range []float64{0.34, 0.47, 0.51, 0.53, 0.54} {
		q := QualityForRatio(ratio)
		out, err := Recompress(orig, q)
		if err != nil {
			t.Fatal(err)
		}
		got := CompressionRatio(orig, out)
		if math.Abs(got-ratio) > 0.03 {
			t.Errorf("target ratio %.2f via q=%d achieved %.3f", ratio, q, got)
		}
	}
}

func TestPropertyRecompressionMonotone(t *testing.T) {
	orig := Object(KindImage)
	f := func(qa, qb uint8) bool {
		qa = qa%90 + 5
		qb = qb%90 + 5
		a, err1 := Recompress(orig, qa)
		b, err2 := Recompress(orig, qb)
		if err1 != nil || err2 != nil {
			return false
		}
		if qa < qb {
			return len(a) <= len(b)
		}
		return len(a) >= len(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestExtractLinks(t *testing.T) {
	body := []byte(`<html><body>
		<a href="http://searchassist.verizon.com/main?q=typo">search</a>
		<script src="https://d36mw5gp02ykm5.cloudfront.net/inject.js"></script>
		<img src="http://finder.cox.net/img.png">
		plain text http://finder.cox.net/img.png duplicate
		not-a-url http:// nohost
	</body></html>`)
	links := ExtractLinks(body)
	if len(links) != 3 {
		t.Fatalf("links = %v", links)
	}
	domains := ExtractDomains(body)
	want := []string{"d36mw5gp02ykm5.cloudfront.net", "finder.cox.net", "searchassist.verizon.com"}
	if len(domains) != len(want) {
		t.Fatalf("domains = %v, want %v", domains, want)
	}
	for i := range want {
		if domains[i] != want[i] {
			t.Fatalf("domains = %v, want %v", domains, want)
		}
	}
}

func TestHostOf(t *testing.T) {
	cases := map[string]string{
		"http://a.example.org/path":   "a.example.org",
		"https://B.Example.org:8443/": "b.example.org",
		"http://host.tld?x=1":         "host.tld",
		"ftp://x.example.org":         "",
		"http://":                     "",
		"http://nodots":               "",
	}
	for in, want := range cases {
		if got := HostOf(in); got != want {
			t.Errorf("HostOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestExtractLinksEmpty(t *testing.T) {
	if got := ExtractLinks([]byte("no urls here")); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
	if got := ExtractLinks(nil); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}
