package content

import (
	"sort"
	"strings"
)

// ExtractLinks pulls the absolute http/https URLs out of an HTML (or
// script) body. §4.3.3 extracts links from hijack landing pages to decide
// whether an ISP or end-host software produced them; the parser here is a
// small scanner, not a full HTML parser, because landing pages embed their
// URLs in plain attributes and script strings.
func ExtractLinks(body []byte) []string {
	s := string(body)
	seen := make(map[string]bool)
	var out []string
	for i := 0; i < len(s); {
		j := indexURLStart(s, i)
		if j < 0 {
			break
		}
		end := j
		for end < len(s) && isURLByte(s[end]) {
			end++
		}
		u := strings.TrimRight(s[j:end], ".,;:!?'\")")
		if host := HostOf(u); host != "" && !seen[u] {
			seen[u] = true
			out = append(out, u)
		}
		i = end
	}
	sort.Strings(out)
	return out
}

// ExtractDomains returns the unique hostnames of every link in body,
// sorted. Table 5 aggregates hijack pages by domain.
func ExtractDomains(body []byte) []string {
	seen := make(map[string]bool)
	var out []string
	for _, u := range ExtractLinks(body) {
		h := HostOf(u)
		if h != "" && !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	sort.Strings(out)
	return out
}

// HostOf extracts the hostname from an absolute http/https URL, dropping
// any port. Returns "" for non-URLs.
func HostOf(u string) string {
	rest, ok := strings.CutPrefix(u, "http://")
	if !ok {
		rest, ok = strings.CutPrefix(u, "https://")
	}
	if !ok || rest == "" {
		return ""
	}
	for i := 0; i < len(rest); i++ {
		if c := rest[i]; c == '/' || c == '?' || c == '#' || c == ':' {
			rest = rest[:i]
			break
		}
	}
	rest = strings.ToLower(strings.TrimSuffix(rest, "."))
	if rest == "" || !strings.Contains(rest, ".") {
		return ""
	}
	return rest
}

func indexURLStart(s string, from int) int {
	h := strings.Index(s[from:], "http://")
	hs := strings.Index(s[from:], "https://")
	switch {
	case h < 0 && hs < 0:
		return -1
	case h < 0:
		return from + hs
	case hs < 0:
		return from + h
	case h < hs:
		return from + h
	default:
		return from + hs
	}
}

func isURLByte(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	}
	return strings.IndexByte("-._~:/?#[]@!$&'()*+,;=%", c) >= 0
}
