package dnsserver

import (
	"net/netip"

	"github.com/tftproject/tft/internal/dnswire"
	"github.com/tftproject/tft/internal/geo"
)

// Exchanger moves one DNS datagram from src to dst — *simnet.Fabric
// implements it, as does the real-UDP adapter.
type Exchanger interface {
	ExchangeDNS(src, dst netip.Addr, query []byte) ([]byte, error)
}

// NXRewriter is an NXDOMAIN hijack policy: given the queried name, return
// the landing-page address to substitute for the error (ok=false leaves the
// NXDOMAIN untouched). Implementations live with the middlebox behaviours.
type NXRewriter interface {
	// Label names the rewriting party for diagnostics.
	Label() string
	RewriteNX(name string) (netip.Addr, bool)
}

// Resolver is a recursive resolver as an exit node experiences it: a
// service address to send queries to, an egress address the authoritative
// side observes, and optionally a hijack policy applied to NXDOMAIN
// answers.
type Resolver struct {
	// Addr is the service address clients are configured with.
	Addr netip.Addr
	// Net carries the resolver's upstream queries.
	Net Exchanger
	// Upstream locates the authoritative server for a name. Names without
	// an upstream yield SERVFAIL, which the experiments never trigger.
	Upstream func(name string) (netip.Addr, bool)
	// Hijack, when non-nil, rewrites NXDOMAIN answers (§4.3.1–4.3.2).
	Hijack NXRewriter
	// EgressFor maps the querying client to the egress address the
	// authoritative server sees. Nil means queries egress from Addr. The
	// Google anycast resolver overrides this so different clients surface
	// from different instances (§4.1 footnote 8).
	EgressFor func(client netip.Addr) netip.Addr
}

// NewResolver builds an honest resolver at addr.
func NewResolver(addr netip.Addr, net Exchanger, upstream func(string) (netip.Addr, bool)) *Resolver {
	return &Resolver{Addr: addr, Net: net, Upstream: upstream}
}

// NewGoogleResolver builds the 8.8.8.8 anycast resolver: honest (Google is
// "well-known to not hijack responses", §4.3.3), with per-client egress
// instances.
func NewGoogleResolver(net Exchanger, upstream func(string) (netip.Addr, bool)) *Resolver {
	return &Resolver{
		Addr: geo.GoogleDNSAddr, Net: net, Upstream: upstream,
		EgressFor: geo.GoogleEgressFor,
	}
}

// egress returns the egress address used for a client's query.
func (r *Resolver) egress(client netip.Addr) netip.Addr {
	if r.EgressFor != nil {
		return r.EgressFor(client)
	}
	return r.Addr
}

// Lookup resolves name for client, returning the parsed response the client
// receives after any hijack policy has run.
func (r *Resolver) Lookup(client netip.Addr, name string, qtype dnswire.Type) (*dnswire.Message, error) {
	q := dnswire.NewQuery(queryID(client, name), name, qtype)
	wire, err := q.Marshal()
	if err != nil {
		return nil, err
	}

	reply := q.Reply()
	auth, ok := r.Upstream(name)
	if !ok {
		reply.RCode = dnswire.RCodeServFail
		return r.applyHijack(name, reply), nil
	}
	respWire, err := r.Net.ExchangeDNS(r.egress(client), auth, wire)
	if err != nil {
		reply.RCode = dnswire.RCodeServFail
		return r.applyHijack(name, reply), nil
	}
	resp, err := dnswire.Unmarshal(respWire)
	if err != nil {
		reply.RCode = dnswire.RCodeServFail
		return r.applyHijack(name, reply), nil
	}
	resp.Authoritative = false
	resp.RecursionAvailable = true
	return r.applyHijack(name, resp), nil
}

// applyHijack rewrites an NXDOMAIN response per the resolver's policy.
func (r *Resolver) applyHijack(name string, resp *dnswire.Message) *dnswire.Message {
	if r.Hijack == nil || resp.RCode != dnswire.RCodeNXDomain {
		return resp
	}
	landing, ok := r.Hijack.RewriteNX(name)
	if !ok {
		return resp
	}
	resp.RCode = dnswire.RCodeSuccess
	resp.Authorities = nil
	resp.Answers = []dnswire.Record{{
		Name: dnswire.CanonicalName(name), Type: dnswire.TypeA, Class: dnswire.ClassIN,
		TTL: 300, A: landing,
	}}
	return resp
}

// queryID derives a deterministic query ID from client and name so runs are
// reproducible.
func queryID(client netip.Addr, name string) uint16 {
	var h uint32 = 2166136261
	for _, b := range client.As4() {
		h = (h ^ uint32(b)) * 16777619
	}
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	return uint16(h>>16) ^ uint16(h)
}

// StaticNX is the simplest NXRewriter: every NXDOMAIN becomes landing.
type StaticNX struct {
	Name    string
	Landing netip.Addr
}

// Label implements NXRewriter.
func (s StaticNX) Label() string { return s.Name }

// RewriteNX implements NXRewriter.
func (s StaticNX) RewriteNX(string) (netip.Addr, bool) { return s.Landing, true }
