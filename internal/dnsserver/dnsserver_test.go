package dnsserver

import (
	"net"
	"net/netip"
	"testing"
	"time"

	"github.com/tftproject/tft/internal/dnswire"
	"github.com/tftproject/tft/internal/geo"
	"github.com/tftproject/tft/internal/simnet"
)

var (
	t0        = time.Date(2016, 4, 13, 0, 0, 0, 0, time.UTC)
	webIP     = netip.MustParseAddr("198.51.100.10")
	authIP    = netip.MustParseAddr("198.51.100.53")
	landingIP = netip.MustParseAddr("198.51.100.99")
	superDNS  = geo.SuperProxyResolverEgress
	nodeIP    = netip.MustParseAddr("91.5.4.3")
	ispDNSIP  = netip.MustParseAddr("91.5.0.53")
)

func testAuthority(t *testing.T) (*Authority, *simnet.Virtual) {
	t.Helper()
	clock := simnet.NewVirtual(t0)
	a := NewAuthority("probe.tft-example.net", clock)
	a.SetRule("d1.probe.tft-example.net", Always(webIP))
	a.SetRule("d2.probe.tft-example.net", OnlyFrom(webIP, func(src netip.Addr) bool {
		return src == superDNS
	}))
	return a, clock
}

func lookupA(t *testing.T, a *Authority, src netip.Addr, name string) *dnswire.Message {
	t.Helper()
	q := dnswire.NewQuery(1, name, dnswire.TypeA)
	wire, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	resp := a.HandleQuery(src, wire)
	if resp == nil {
		t.Fatalf("query for %s dropped", name)
	}
	return resp
}

func TestD1AlwaysAnswers(t *testing.T) {
	a, _ := testAuthority(t)
	for _, src := range []netip.Addr{superDNS, ispDNSIP, nodeIP} {
		resp := lookupA(t, a, src, "d1.probe.tft-example.net")
		if resp.RCode != dnswire.RCodeSuccess || len(resp.Answers) != 1 || resp.Answers[0].A != webIP {
			t.Fatalf("d1 from %v: %+v", src, resp)
		}
	}
}

func TestD2ConditionalGate(t *testing.T) {
	a, _ := testAuthority(t)
	// The super proxy's resolver gets an answer (so the proxy forwards the
	// request)...
	resp := lookupA(t, a, superDNS, "d2.probe.tft-example.net")
	if resp.RCode != dnswire.RCodeSuccess {
		t.Fatalf("super proxy egress got %v", resp.RCode)
	}
	// ...every other resolver gets NXDOMAIN with an SOA.
	resp = lookupA(t, a, ispDNSIP, "d2.probe.tft-example.net")
	if resp.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("ISP resolver got %v", resp.RCode)
	}
	if len(resp.Authorities) != 1 || resp.Authorities[0].Type != dnswire.TypeSOA {
		t.Fatalf("NXDOMAIN without SOA: %+v", resp.Authorities)
	}
}

func TestUnknownNameNXDomain(t *testing.T) {
	a, _ := testAuthority(t)
	resp := lookupA(t, a, nodeIP, "never-configured.probe.tft-example.net")
	if resp.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("RCode = %v", resp.RCode)
	}
}

func TestOutOfZoneRefused(t *testing.T) {
	a, _ := testAuthority(t)
	resp := lookupA(t, a, nodeIP, "www.google.com")
	if resp.RCode != dnswire.RCodeRefused {
		t.Fatalf("RCode = %v", resp.RCode)
	}
}

func TestQueryLogRecordsSourceAndTime(t *testing.T) {
	a, clock := testAuthority(t)
	lookupA(t, a, ispDNSIP, "d2.probe.tft-example.net")
	clock.Advance(30 * time.Second)
	lookupA(t, a, superDNS, "d2.probe.tft-example.net")
	qs := a.QueriesFor("d2.probe.tft-example.net")
	if len(qs) != 2 {
		t.Fatalf("logged %d queries", len(qs))
	}
	if qs[0].Src != ispDNSIP || qs[1].Src != superDNS {
		t.Fatalf("sources = %v %v", qs[0].Src, qs[1].Src)
	}
	if !qs[1].Time.Equal(t0.Add(30 * time.Second)) {
		t.Fatalf("second query time = %v", qs[1].Time)
	}
	if a.QueryCount() != 2 {
		t.Fatalf("QueryCount = %d", a.QueryCount())
	}
}

func TestMalformedQueryDropped(t *testing.T) {
	a, _ := testAuthority(t)
	if resp := a.HandleQuery(nodeIP, []byte("garbage")); resp != nil {
		t.Fatal("garbage produced a response")
	}
	// A response message must not be answered either.
	r := dnswire.NewQuery(1, "d1.probe.tft-example.net", dnswire.TypeA).Reply()
	wire, _ := r.Marshal()
	if resp := a.HandleQuery(nodeIP, wire); resp != nil {
		t.Fatal("response message was answered")
	}
}

func TestDeleteRule(t *testing.T) {
	a, _ := testAuthority(t)
	a.DeleteRule("d1.probe.tft-example.net")
	resp := lookupA(t, a, nodeIP, "d1.probe.tft-example.net")
	if resp.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("RCode after delete = %v", resp.RCode)
	}
}

// fabricWorld wires an authority and resolvers onto a fabric.
func fabricWorld(t *testing.T) (*simnet.Fabric, *Authority) {
	t.Helper()
	f := simnet.NewFabric()
	a, _ := testAuthority(t)
	f.HandleDNS(authIP, a.Handler())
	return f, a
}

func upstreamAll(name string) (netip.Addr, bool) { return authIP, true }

func TestHonestResolverPassesNXDomain(t *testing.T) {
	f, _ := fabricWorld(t)
	r := NewResolver(ispDNSIP, f, upstreamAll)
	resp, err := r.Lookup(nodeIP, "d2.probe.tft-example.net", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("RCode = %v", resp.RCode)
	}
}

func TestHonestResolverEgressIsItsAddr(t *testing.T) {
	f, a := fabricWorld(t)
	r := NewResolver(ispDNSIP, f, upstreamAll)
	if _, err := r.Lookup(nodeIP, "d1.probe.tft-example.net", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	qs := a.QueriesFor("d1.probe.tft-example.net")
	if len(qs) != 1 || qs[0].Src != ispDNSIP {
		t.Fatalf("authority saw %+v", qs)
	}
}

func TestHijackingResolverRewritesNXDomain(t *testing.T) {
	f, _ := fabricWorld(t)
	r := NewResolver(ispDNSIP, f, upstreamAll)
	r.Hijack = StaticNX{Name: "tmnet", Landing: landingIP}
	resp, err := r.Lookup(nodeIP, "d2.probe.tft-example.net", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeSuccess {
		t.Fatalf("hijacked RCode = %v", resp.RCode)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].A != landingIP {
		t.Fatalf("answers = %+v", resp.Answers)
	}
}

func TestHijackingResolverLeavesSuccessAlone(t *testing.T) {
	f, _ := fabricWorld(t)
	r := NewResolver(ispDNSIP, f, upstreamAll)
	r.Hijack = StaticNX{Name: "tmnet", Landing: landingIP}
	resp, err := r.Lookup(nodeIP, "d1.probe.tft-example.net", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].A != webIP {
		t.Fatalf("valid answer modified: %+v", resp.Answers)
	}
}

func TestGoogleResolverEgressVariesByClient(t *testing.T) {
	f, a := fabricWorld(t)
	g := NewGoogleResolver(f, upstreamAll)
	clients := []netip.Addr{
		netip.MustParseAddr("91.5.4.3"),
		netip.MustParseAddr("14.102.9.77"),
		netip.MustParseAddr("200.45.3.2"),
		netip.MustParseAddr("41.86.1.9"),
	}
	for _, c := range clients {
		if _, err := g.Lookup(c, "d1.probe.tft-example.net", dnswire.TypeA); err != nil {
			t.Fatal(err)
		}
	}
	qs := a.QueriesFor("d1.probe.tft-example.net")
	egress := make(map[netip.Addr]bool)
	for _, q := range qs {
		if !geo.IsGoogleEgress(q.Src) {
			t.Fatalf("Google query egressed from %v", q.Src)
		}
		egress[q.Src] = true
	}
	if len(egress) < 2 {
		t.Fatalf("all clients shared one egress instance: %v", egress)
	}
}

func TestResolverNoUpstreamServFail(t *testing.T) {
	f, _ := fabricWorld(t)
	r := NewResolver(ispDNSIP, f, func(string) (netip.Addr, bool) { return netip.Addr{}, false })
	resp, err := r.Lookup(nodeIP, "anything.example", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeServFail {
		t.Fatalf("RCode = %v", resp.RCode)
	}
}

func TestResolverUnreachableAuthorityServFail(t *testing.T) {
	f := simnet.NewFabric()
	r := NewResolver(ispDNSIP, f, upstreamAll) // authIP not registered
	resp, err := r.Lookup(nodeIP, "d1.probe.tft-example.net", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeServFail {
		t.Fatalf("RCode = %v", resp.RCode)
	}
}

func TestServeUDPEndToEnd(t *testing.T) {
	a, _ := testAuthority(t)
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		ServeUDP(pc, a.Handler())
	}()
	q := dnswire.NewQuery(77, "d1.probe.tft-example.net", dnswire.TypeA)
	wire, _ := q.Marshal()
	respWire, err := QueryUDP(pc.LocalAddr().String(), wire, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dnswire.Unmarshal(respWire)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 77 || len(resp.Answers) != 1 || resp.Answers[0].A != webIP {
		t.Fatalf("UDP response = %+v", resp)
	}
	pc.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("ServeUDP did not exit on close")
	}
}
