package dnsserver

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"time"

	"github.com/tftproject/tft/internal/simnet"
)

// ServeUDP pumps DNS datagrams from a real socket through a handler until
// the socket is closed. It is the wall-clock front end used by cmd/authdns
// and the real-network examples; the handler is the same one the simnet
// fabric calls.
func ServeUDP(pc net.PacketConn, handler simnet.DNSHandler) error {
	buf := make([]byte, 4096)
	for {
		n, addr, err := pc.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		src := addrOf(addr)
		query := make([]byte, n)
		copy(query, buf[:n])
		go func(query []byte, raddr net.Addr, src netip.Addr) {
			if resp := handler(src, query); resp != nil {
				pc.WriteTo(resp, raddr)
			}
		}(query, addr, src)
	}
}

// QueryUDP sends one query datagram to server and waits for the reply. It
// always runs against real sockets, so the deadline timebase is explicitly
// the wall clock.
func QueryUDP(server string, query []byte, timeout time.Duration) ([]byte, error) {
	conn, err := net.Dial("udp", server)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := conn.SetDeadline(simnet.Real{}.Now().Add(timeout)); err != nil {
		return nil, err
	}
	if _, err := conn.Write(query); err != nil {
		return nil, err
	}
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

func addrOf(a net.Addr) netip.Addr {
	if ua, ok := a.(*net.UDPAddr); ok {
		if ip, ok := netip.AddrFromSlice(ua.IP); ok {
			return ip.Unmap()
		}
	}
	return netip.Addr{}
}

// UDPExchanger implements the Exchanger interface over real UDP sockets,
// letting Resolver instances run against network DNS servers (cmd/authdns).
type UDPExchanger struct {
	// Port is the server's UDP port (default 53; loopback demos use high
	// ports).
	Port uint16
	// BindSrc binds the local socket to the src address handed to
	// ExchangeDNS. On loopback, distinct 127.x.y.z sources let the
	// authoritative server discriminate callers — which the d2 gate
	// requires.
	BindSrc bool
	// Timeout per exchange (default 3s).
	Timeout time.Duration
	// Clock supplies the deadline timebase; nil means the wall clock
	// (exchanges ride real UDP sockets).
	Clock simnet.Clock
}

// ExchangeDNS implements Exchanger.
func (u *UDPExchanger) ExchangeDNS(src, dst netip.Addr, query []byte) ([]byte, error) {
	port := u.Port
	if port == 0 {
		port = 53
	}
	timeout := u.Timeout
	if timeout == 0 {
		timeout = 3 * time.Second
	}
	d := net.Dialer{Timeout: timeout}
	if u.BindSrc && src.IsValid() {
		d.LocalAddr = &net.UDPAddr{IP: src.AsSlice()}
	}
	conn, err := d.Dial("udp", fmt.Sprintf("%s:%d", dst, port))
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	clock := u.Clock
	if clock == nil {
		clock = simnet.Real{}
	}
	if err := conn.SetDeadline(clock.Now().Add(timeout)); err != nil {
		return nil, err
	}
	if _, err := conn.Write(query); err != nil {
		return nil, err
	}
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}
