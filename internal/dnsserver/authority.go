// Package dnsserver implements the DNS actors of the NXDOMAIN experiment
// (§4): the measurement team's authoritative server — whose per-name,
// per-source answer policy is the heart of the d1/d2 trick — and the
// recursive resolvers exit nodes are configured to use, honest or hijacking.
//
// A resolver here is a behaviour, not a byte pipe: it receives a client
// query, forwards it to the authoritative server for the zone (so the
// authoritative query log records the resolver's egress address, which is
// all the paper can observe), and may rewrite an NXDOMAIN answer into an A
// record pointing at an ad-laden landing page before handing it back.
package dnsserver

import (
	"net/netip"
	"sync"
	"time"

	"github.com/tftproject/tft/internal/dnswire"
	"github.com/tftproject/tft/internal/simnet"
)

// Query is one logged authoritative query.
type Query struct {
	Time time.Time
	// Src is the address the query arrived from: the exit node's resolver's
	// egress, which step 2 of §4.1 records.
	Src  netip.Addr
	Name string
	Type dnswire.Type
}

// Rule decides the authoritative answer for one name. Answer returns the A
// record target, or ok=false for NXDOMAIN.
type Rule func(src netip.Addr) (ip netip.Addr, ok bool)

// Always answers with ip for every querier (the d1 rule).
func Always(ip netip.Addr) Rule {
	return func(netip.Addr) (netip.Addr, bool) { return ip, true }
}

// OnlyFrom answers with ip when allow(src) is true and NXDOMAIN otherwise —
// the d2 rule, with allow set to "is the super proxy's resolver" (§4.1
// step 1).
func OnlyFrom(ip netip.Addr, allow func(src netip.Addr) bool) Rule {
	return func(src netip.Addr) (netip.Addr, bool) {
		if allow(src) {
			return ip, true
		}
		return netip.Addr{}, false
	}
}

// Never always answers NXDOMAIN.
func Never() Rule {
	return func(netip.Addr) (netip.Addr, bool) { return netip.Addr{}, false }
}

// Authority is the measurement team's authoritative DNS server for one
// zone. Every query is logged with its source address and virtual
// timestamp.
type Authority struct {
	zone  string
	clock simnet.Clock

	mu       sync.Mutex
	rules    map[string]Rule
	fallback func(name string) Rule
	byName   map[string][]Query // name -> logged queries, arrival order
	total    int
}

// NewAuthority creates an authoritative server for zone.
func NewAuthority(zone string, clock simnet.Clock) *Authority {
	return &Authority{
		zone:   dnswire.CanonicalName(zone),
		clock:  clock,
		rules:  make(map[string]Rule),
		byName: make(map[string][]Query),
	}
}

// Zone returns the served zone.
func (a *Authority) Zone() string { return a.zone }

// SetRule installs the answer rule for name (which must fall inside the
// zone; out-of-zone names are refused at query time anyway).
func (a *Authority) SetRule(name string, r Rule) {
	a.mu.Lock()
	a.rules[dnswire.CanonicalName(name)] = r
	a.mu.Unlock()
}

// SetFallback installs a rule generator consulted for names with no
// explicit rule. The experiments use it to give entire name families
// (d1-*, d2-*, u-*) their semantics in O(1) memory, instead of one map
// entry per probed node.
func (a *Authority) SetFallback(f func(name string) Rule) {
	a.mu.Lock()
	a.fallback = f
	a.mu.Unlock()
}

// DeleteRule removes a name's rule; subsequent queries get NXDOMAIN.
func (a *Authority) DeleteRule(name string) {
	a.mu.Lock()
	delete(a.rules, dnswire.CanonicalName(name))
	a.mu.Unlock()
}

// Handler adapts the authority to the simnet DNS handler signature.
func (a *Authority) Handler() simnet.DNSHandler {
	return func(src netip.Addr, query []byte) []byte {
		resp := a.HandleQuery(src, query)
		if resp == nil {
			return nil
		}
		out, err := resp.Marshal()
		if err != nil {
			return nil
		}
		return out
	}
}

// HandleQuery answers one parsed-or-raw query. Malformed input yields a nil
// response (dropped), mirroring a server that refuses garbage.
func (a *Authority) HandleQuery(src netip.Addr, query []byte) *dnswire.Message {
	q, err := dnswire.Unmarshal(query)
	if err != nil || q.Response || len(q.Questions) != 1 {
		return nil
	}
	return a.Resolve(src, q)
}

// Resolve produces the authoritative response for a parsed query,
// logging it.
func (a *Authority) Resolve(src netip.Addr, q *dnswire.Message) *dnswire.Message {
	question := q.Questions[0]
	name := dnswire.CanonicalName(question.Name)
	resp := q.Reply()
	resp.Authoritative = true

	if !dnswire.IsSubdomain(name, a.zone) {
		resp.RCode = dnswire.RCodeRefused
		return resp
	}

	a.mu.Lock()
	a.byName[name] = append(a.byName[name], Query{Time: a.clock.Now(), Src: src, Name: name, Type: question.Type})
	a.total++
	rule := a.rules[name]
	if rule == nil && a.fallback != nil {
		rule = a.fallback(name)
	}
	a.mu.Unlock()

	if question.Type != dnswire.TypeA || rule == nil {
		resp.RCode = dnswire.RCodeNXDomain
		resp.Authorities = append(resp.Authorities, a.soa())
		return resp
	}
	ip, ok := rule(src)
	if !ok {
		resp.RCode = dnswire.RCodeNXDomain
		resp.Authorities = append(resp.Authorities, a.soa())
		return resp
	}
	resp.Answers = append(resp.Answers, dnswire.Record{
		Name: name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 5, A: ip,
	})
	return resp
}

func (a *Authority) soa() dnswire.Record {
	return dnswire.Record{
		Name: a.zone, Type: dnswire.TypeSOA, Class: dnswire.ClassIN, TTL: 60,
		SOA: &dnswire.SOAData{
			MName: "ns1." + a.zone, RName: "hostmaster." + a.zone,
			Serial: 2016041300, Refresh: 7200, Retry: 900, Expire: 1209600, MinTTL: 60,
		},
	}
}

// QueriesFor returns the logged queries for a name, in arrival order.
func (a *Authority) QueriesFor(name string) []Query {
	name = dnswire.CanonicalName(name)
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Query, len(a.byName[name]))
	copy(out, a.byName[name])
	return out
}

// Forget drops the logged queries for a name. Experiments that fully
// consume a probe name's log release it so a paper-scale crawl holds
// O(in-flight sessions) log entries instead of O(all sessions). QueryCount
// still includes forgotten arrivals.
func (a *Authority) Forget(name string) {
	name = dnswire.CanonicalName(name)
	a.mu.Lock()
	delete(a.byName, name)
	a.mu.Unlock()
}

// QueryCount returns the total number of logged queries, including any
// later released with Forget.
func (a *Authority) QueryCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}
