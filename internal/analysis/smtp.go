package analysis

import (
	"fmt"
	"sort"

	"github.com/tftproject/tft/internal/core"
	"github.com/tftproject/tft/internal/geo"
)

// SMTPAnalysis covers the §3.4 extension experiment.
type SMTPAnalysis struct {
	Cfg Config
	Geo *geo.Registry
	DS  *core.SMTPDataset
}

// AnalyzeSMTP wraps a dataset.
func AnalyzeSMTP(cfg Config, reg *geo.Registry, ds *core.SMTPDataset) *SMTPAnalysis {
	return &SMTPAnalysis{Cfg: cfg, Geo: reg, DS: ds}
}

// NewSMTPAnalysis creates an empty aggregate for streaming use; shard
// partials combine with Merge.
func NewSMTPAnalysis(cfg Config, reg *geo.Registry) *SMTPAnalysis {
	return AnalyzeSMTP(cfg, reg, &core.SMTPDataset{})
}

// Observe adds one observation to the aggregate.
func (a *SMTPAnalysis) Observe(o *core.SMTPObservation) {
	a.DS.Observations = append(a.DS.Observations, o)
}

// Merge folds another shard's partial aggregate into a; b must not be used
// afterwards. Summaries and tables reduce over unordered maps with
// deterministic tie-breakers, so merge order never shows in the output.
func (a *SMTPAnalysis) Merge(b *SMTPAnalysis) {
	a.DS.Observations = append(a.DS.Observations, b.DS.Observations...)
}

// SMTPSummary is the extension headline.
type SMTPSummary struct {
	MeasuredNodes int
	Blocked       int
	BlockedPct    float64
	Stripped      int
	StrippedPct   float64
	StripperASes  int
}

// Summary computes headline counts.
func (a *SMTPAnalysis) Summary() SMTPSummary {
	s := SMTPSummary{MeasuredNodes: len(a.DS.Observations)}
	strippers := map[geo.ASN]bool{}
	for _, o := range a.DS.Observations {
		switch {
		case o.Blocked:
			s.Blocked++
		case !o.StartTLS:
			s.Stripped++
			strippers[o.ASN] = true
		}
	}
	s.StripperASes = len(strippers)
	if s.MeasuredNodes > 0 {
		s.BlockedPct = 100 * float64(s.Blocked) / float64(s.MeasuredNodes)
		s.StrippedPct = 100 * float64(s.Stripped) / float64(s.MeasuredNodes)
	}
	return s
}

// SMTPRow is one AS-level finding.
type SMTPRow struct {
	ASN      geo.ASN
	ISP      string
	Country  geo.CountryCode
	Kind     string // "port-25 blocked" or "STARTTLS stripped"
	Affected int
	Total    int
}

// TableSMTP groups mail-path violations by AS (≥ the scaled server cutoff).
func (a *SMTPAnalysis) TableSMTP() ([]SMTPRow, *Table) {
	type agg struct{ blocked, stripped, total int }
	byAS := map[geo.ASN]*agg{}
	for _, o := range a.DS.Observations {
		ag := byAS[o.ASN]
		if ag == nil {
			ag = &agg{}
			byAS[o.ASN] = ag
		}
		ag.total++
		switch {
		case o.Blocked:
			ag.blocked++
		case !o.StartTLS:
			ag.stripped++
		}
	}
	var rows []SMTPRow
	min := a.Cfg.MinASNodes()
	for asn, ag := range byAS {
		if ag.total < min {
			continue
		}
		mk := func(kind string, n int) {
			if n == 0 || float64(n)/float64(ag.total) < 0.5 {
				return
			}
			row := SMTPRow{ASN: asn, Kind: kind, Affected: n, Total: ag.total}
			if org, ok := a.Geo.Org(asn); ok {
				row.ISP = org.Name
				row.Country = org.Country
			}
			rows = append(rows, row)
		}
		mk("port-25 blocked", ag.blocked)
		mk("STARTTLS stripped", ag.stripped)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Affected != rows[j].Affected {
			return rows[i].Affected > rows[j].Affected
		}
		return rows[i].ASN < rows[j].ASN
	})
	t := &Table{ID: "Extension", Title: "Mail-path violations by AS (§3.4 future work)",
		Headers: []string{"AS", "ISP (Country)", "Violation", "Affected", "Total"}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("AS%d", r.ASN),
			fmt.Sprintf("%s (%s)", r.ISP, r.Country),
			r.Kind, itoa(r.Affected), itoa(r.Total),
		})
	}
	return rows, t
}
