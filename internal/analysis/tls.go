package analysis

import (
	"sort"

	"github.com/tftproject/tft/internal/cert"
	"github.com/tftproject/tft/internal/core"
	"github.com/tftproject/tft/internal/geo"
)

// TLSAnalysis is the §6 analysis over a TLS dataset.
type TLSAnalysis struct {
	Cfg Config
	Geo *geo.Registry
	DS  *core.TLSDataset
}

// AnalyzeTLS wraps a dataset.
func AnalyzeTLS(cfg Config, reg *geo.Registry, ds *core.TLSDataset) *TLSAnalysis {
	return &TLSAnalysis{Cfg: cfg, Geo: reg, DS: ds}
}

// NewTLSAnalysis creates an empty aggregate for streaming use; shard
// partials combine with Merge.
func NewTLSAnalysis(cfg Config, reg *geo.Registry) *TLSAnalysis {
	return AnalyzeTLS(cfg, reg, &core.TLSDataset{})
}

// Observe adds one observation to the aggregate.
func (a *TLSAnalysis) Observe(o *core.TLSObservation) {
	a.DS.Observations = append(a.DS.Observations, o)
}

// Merge folds another shard's partial aggregate into a; b must not be used
// afterwards. Summaries and tables reduce over unordered maps with
// deterministic tie-breakers, so merge order never shows in the output.
func (a *TLSAnalysis) Merge(b *TLSAnalysis) {
	a.DS.Observations = append(a.DS.Observations, b.DS.Observations...)
}

// TLSSummary is the §6.2 headline.
type TLSSummary struct {
	MeasuredNodes int
	ASes          int
	Countries     int
	Affected      int
	AffectedPct   float64
	// SelectiveNodes saw some sites replaced and others untouched.
	SelectiveNodes int
	// HighASShare is the fraction of ASes where >10% of nodes are affected
	// (the paper: 1.2% — evidence the cause is host software, not ISPs).
	HighASShare float64
}

// Summary computes headline counts.
func (a *TLSAnalysis) Summary() TLSSummary {
	s := TLSSummary{MeasuredNodes: len(a.DS.Observations)}
	countries := map[geo.CountryCode]bool{}
	type asAgg struct{ total, affected int }
	byAS := map[geo.ASN]*asAgg{}
	for _, o := range a.DS.Observations {
		countries[o.Country] = true
		ag := byAS[o.ASN]
		if ag == nil {
			ag = &asAgg{}
			byAS[o.ASN] = ag
		}
		ag.total++
		if o.AnyReplaced() {
			s.Affected++
			ag.affected++
			replaced, untouched := 0, 0
			for _, site := range o.Sites {
				if site.Err != "" {
					continue
				}
				if site.Replaced {
					replaced++
				} else {
					untouched++
				}
			}
			if replaced > 0 && untouched > 0 {
				s.SelectiveNodes++
			}
		}
	}
	s.ASes = len(byAS)
	s.Countries = len(countries)
	if s.MeasuredNodes > 0 {
		s.AffectedPct = 100 * float64(s.Affected) / float64(s.MeasuredNodes)
	}
	high := 0
	for _, ag := range byAS {
		if ag.total > 0 && float64(ag.affected)/float64(ag.total) > 0.10 {
			high++
		}
	}
	if len(byAS) > 0 {
		s.HighASShare = 100 * float64(high) / float64(len(byAS))
	}
	return s
}

// IssuerKind classifies a replaced-certificate issuer name the way the
// paper's manual investigation did. Unknown issuers are "N/A".
func IssuerKind(issuerCN string) string {
	kinds := map[string]string{
		"Avast Web/Mail Shield Root":         "Anti-Virus/Security",
		"AVG Technologies Root":              "Anti-Virus/Security",
		"BitDefender Personal CA":            "Anti-Virus/Security",
		"ESET SSL Filter CA":                 "Anti-Virus/Security",
		"Kaspersky Anti-Virus Personal Root": "Anti-Virus/Security",
		"OpenDNS Root Certificate Authority": "Content filter",
		"Cyberoam SSL CA":                    "Anti-Virus/Security",
		"Fortigate CA":                       "Anti-Virus/Security",
		"Cloudguard.me":                      "Malware",
		"Dr.Web SpIDer Gate Root":            "Anti-Virus/Security",
		"McAfee Web Gateway":                 "Anti-Virus/Security",
	}
	if k, ok := kinds[issuerCN]; ok {
		return k
	}
	return "N/A"
}

// IssuerRow is one Table 8 entry.
type IssuerRow struct {
	IssuerCN string
	Nodes    int
	Kind     string
	// KeyReuseNodes is how many of the nodes presented a single public key
	// across every spoofed certificate (§6.2's finding for all products but
	// Avast).
	KeyReuseNodes int
	// LaunderNodes replaced an originally-invalid certificate with one
	// carrying the same issuer/key as their valid-site spoofs.
	LaunderNodes int
}

// Table8 groups affected nodes by the issuer of their replaced
// certificates.
func (a *TLSAnalysis) Table8() ([]IssuerRow, *Table) {
	type agg struct {
		nodes, keyReuse, launder int
	}
	byIssuer := map[string]*agg{}
	for _, o := range a.DS.Observations {
		if !o.AnyReplaced() {
			continue
		}
		// The node's dominant issuer across replaced sites.
		issuerCount := map[string]int{}
		keys := map[string]map[cert.KeyID]bool{}
		launder := map[string]bool{}
		for _, s := range o.Sites {
			if !s.Replaced {
				continue
			}
			issuerCount[s.IssuerCN]++
			if keys[s.IssuerCN] == nil {
				keys[s.IssuerCN] = map[cert.KeyID]bool{}
			}
			keys[s.IssuerCN][s.LeafKey] = true
			if s.Class == core.SiteInvalid {
				launder[s.IssuerCN] = true
			}
		}
		best, bestN := "", 0
		for cn, n := range issuerCount {
			if n > bestN || (n == bestN && cn < best) {
				best, bestN = cn, n
			}
		}
		ag := byIssuer[best]
		if ag == nil {
			ag = &agg{}
			byIssuer[best] = ag
		}
		ag.nodes++
		if bestN > 1 && len(keys[best]) == 1 {
			ag.keyReuse++
		}
		if launder[best] {
			ag.launder++
		}
	}
	var rows []IssuerRow
	min := a.Cfg.MinRowNodes()
	for cn, ag := range byIssuer {
		if ag.nodes < min {
			continue
		}
		name := cn
		if name == "" {
			name = "Empty"
		}
		rows = append(rows, IssuerRow{
			IssuerCN: name, Nodes: ag.nodes, Kind: IssuerKind(cn),
			KeyReuseNodes: ag.keyReuse, LaunderNodes: ag.launder,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Nodes != rows[j].Nodes {
			return rows[i].Nodes > rows[j].Nodes
		}
		return rows[i].IssuerCN < rows[j].IssuerCN
	})
	t := &Table{ID: "Table 8", Title: "Most common issuers of replaced certificates",
		Headers: []string{"Issuer Name", "Exit Nodes", "Type", "Key-reuse", "Replaces invalid"}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.IssuerCN, itoa(r.Nodes), r.Kind,
			itoa(r.KeyReuseNodes), itoa(r.LaunderNodes)})
	}
	return rows, t
}
