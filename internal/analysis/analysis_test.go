package analysis

import (
	"fmt"
	"net/netip"
	"strings"
	"testing"
	"time"

	"github.com/tftproject/tft/internal/content"
	"github.com/tftproject/tft/internal/core"
	"github.com/tftproject/tft/internal/geo"
	"github.com/tftproject/tft/internal/httpwire"
	"github.com/tftproject/tft/internal/middlebox"
)

// testGeo builds a registry with two ISPs, a public operator, and Google.
func testGeo(t *testing.T) (*geo.Registry, map[string]geo.ASN) {
	t.Helper()
	r := geo.NewRegistry()
	if err := geo.InstallGoogle(r); err != nil {
		t.Fatal(err)
	}
	asns := map[string]geo.ASN{}
	add := func(key, org, name string, cc geo.CountryCode) {
		if _, err := r.AddOrg(geo.OrgID(org), name, cc); err != nil {
			t.Fatal(err)
		}
		as, err := r.AddAS(geo.ASN(1000+len(asns)), geo.OrgID(org), false)
		if err != nil {
			t.Fatal(err)
		}
		asns[key] = as.Number
	}
	add("tmnet", "tmnet", "TMnet", "MY")
	add("cleanisp", "cleanisp", "Clean ISP", "DE")
	add("comodo", "comodo", "Comodo DNS", "US")
	add("mobile", "mobile", "Globe Telecom", "PH")
	if as, ok := r.ASInfo(asns["mobile"]); ok {
		as.Mobile = true
	}
	add("monitor", "monitor", "Trend Micro", "US")
	return r, asns
}

func addrIn(t *testing.T, r *geo.Registry, asn geo.ASN) netip.Addr {
	t.Helper()
	a, err := r.NextAddr(asn)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestDNSAttribution(t *testing.T) {
	r, asns := testGeo(t)
	tmnetResolver := addrIn(t, r, asns["tmnet"])
	comodoResolver := addrIn(t, r, asns["comodo"])
	cleanResolver := addrIn(t, r, asns["cleanisp"])

	ds := &core.DNSDataset{}
	addObs := func(n int, resolver netip.Addr, nodeAS geo.ASN, cc geo.CountryCode, hijacked bool, landing string) {
		for i := 0; i < n; i++ {
			o := &core.DNSObservation{
				ZID: fmt.Sprintf("z%s%d%v%d", cc, nodeAS, hijacked, i), NodeIP: addrIn(t, r, nodeAS),
				ResolverIP: resolver, ASN: nodeAS, Country: cc, Hijacked: hijacked,
			}
			if hijacked {
				o.LandingBody = []byte("<a href=\"http://" + landing + "/x\">go</a>")
				o.LandingDomains = []string{landing}
			}
			ds.Observations = append(ds.Observations, o)
		}
	}
	// TMnet's own resolver hijacks all 20 of its nodes.
	addObs(20, tmnetResolver, asns["tmnet"], "MY", true, "midascdn.nervesis.com")
	// Comodo's public resolver hijacks nodes in 3+ countries.
	addObs(5, comodoResolver, asns["cleanisp"], "DE", true, "securedns.comodo.com")
	addObs(5, comodoResolver, asns["tmnet"], "MY", true, "securedns.comodo.com")
	addObs(5, comodoResolver, asns["mobile"], "PH", true, "securedns.comodo.com")
	// Google users hijacked on path.
	g := geo.GoogleEgressFor(netip.MustParseAddr("91.0.0.1"))
	if g == geo.SuperProxyResolverEgress {
		g = geo.GoogleEgressFor(netip.MustParseAddr("91.0.0.2"))
	}
	addObs(6, g, asns["cleanisp"], "DE", true, "nortonsafe.search.ask.com")
	// Clean nodes.
	addObs(60, cleanResolver, asns["cleanisp"], "DE", false, "")
	// A filtered shared-anycast node.
	ds.Observations = append(ds.Observations, &core.DNSObservation{
		ZID: "zfiltered", SharedAnycast: true,
	})

	a := AnalyzeDNS(Config{Scale: 0.3}, r, ds)
	sum := a.Summary()
	if sum.MeasuredNodes != 101 || sum.FilteredAnycast != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.Hijacked != 41 {
		t.Fatalf("hijacked = %d", sum.Hijacked)
	}
	if got := a.Attribution[SourceISPResolver]; got != 20 {
		t.Errorf("ISP attribution = %d, want 20", got)
	}
	if got := a.Attribution[SourcePublicResolver]; got != 15 {
		t.Errorf("public attribution = %d, want 15", got)
	}
	if got := a.Attribution[SourceOther]; got != 6 {
		t.Errorf("other attribution = %d, want 6", got)
	}

	// Table 4 lists TMnet only.
	rows := a.ISPHijackers()
	if len(rows) != 1 || rows[0].ISP != "TMnet" || rows[0].Nodes != 20 || rows[0].Servers != 1 {
		t.Fatalf("Table4 rows = %+v", rows)
	}

	// Public resolver stats see Comodo.
	ps := a.PublicResolvers()
	if ps.HijackingServers != 1 || ps.HijackedNodes != 15 || ps.Operators["Comodo DNS"] != 1 {
		t.Fatalf("public stats = %+v", ps)
	}

	// Table 5 catches the Norton landing domain on Google-DNS nodes.
	t5, tbl := a.Table5()
	if len(t5) != 1 || t5[0].Domain != "nortonsafe.search.ask.com" || t5[0].Nodes != 6 {
		t.Fatalf("Table5 = %+v", t5)
	}
	if !strings.Contains(tbl.String(), "nortonsafe") {
		t.Fatal("rendered table missing domain")
	}
}

func TestDNSTable3Ranking(t *testing.T) {
	r, asns := testGeo(t)
	res := addrIn(t, r, asns["tmnet"])
	ds := &core.DNSDataset{}
	mk := func(cc geo.CountryCode, asn geo.ASN, hij, total int) {
		for i := 0; i < total; i++ {
			ds.Observations = append(ds.Observations, &core.DNSObservation{
				ZID: fmt.Sprintf("%s-%d", cc, i), ResolverIP: res, ASN: asn,
				Country: cc, Hijacked: i < hij,
			})
		}
	}
	mk("MY", asns["tmnet"], 10, 20)   // 50%
	mk("DE", asns["cleanisp"], 2, 40) // 5%
	mk("PH", asns["mobile"], 1, 3)    // below country threshold
	a := AnalyzeDNS(Config{Scale: 0.05}, r, ds)
	_, tbl := a.Table3(10)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
	if tbl.Rows[0][1] != "Malaysia" || tbl.Rows[1][1] != "Germany" {
		t.Fatalf("ranking = %v", tbl.Rows)
	}
}

func TestSharedApplianceDetection(t *testing.T) {
	r, asns := testGeo(t)
	res := addrIn(t, r, asns["tmnet"])
	page := middlebox.LandingSpec{Operator: "TMnet", RedirectURL: "http://x.example/s", SharedAppliance: true}.Render()
	ds := &core.DNSDataset{Observations: []*core.DNSObservation{
		{ZID: "z1", ResolverIP: res, ASN: asns["tmnet"], Country: "MY", Hijacked: true, LandingBody: page},
	}}
	a := AnalyzeDNS(Config{}, r, ds)
	got := a.SharedApplianceISPs()
	if len(got) != 1 || got[0] != "TMnet" {
		t.Fatalf("shared appliance ISPs = %v", got)
	}
}

func httpObs(zid string, asn geo.ASN, cc geo.CountryCode) *core.HTTPObservation {
	o := &core.HTTPObservation{ZID: zid, ASN: asn, Country: cc}
	for k := range o.Objects {
		o.Objects[k] = core.ObjectResult{Outcome: core.ObjUnmodified}
	}
	return o
}

func TestHTTPSummaryAndTable6(t *testing.T) {
	r, asns := testGeo(t)
	ds := &core.HTTPDataset{}
	orig := content.Object(content.KindHTML)

	// Injected node: cloudfront signature.
	inj := middlebox.HTMLInjector{Product: "x", Signature: "d36mw5gp02ykm5.cloudfront.net", SignatureIsURL: true}
	for i := 0; i < 3; i++ {
		o := httpObs(fmt.Sprintf("zi%d", i), asns["cleanisp"], "DE")
		got := inj.InterceptHTTP("h", "/object.html", newHTMLResponse(append([]byte(nil), orig...)))
		o.Objects[content.KindHTML] = core.ObjectResult{Outcome: core.ObjModified, Body: got.Body, BodyLen: len(got.Body)}
		ds.Observations = append(ds.Observations, o)
	}
	// Block page node.
	bp := httpObs("zb", asns["cleanisp"], "DE")
	bp.Objects[content.KindHTML] = core.ObjectResult{Outcome: core.ObjBlocked, Body: []byte("<h1>bandwidth exceeded</h1>")}
	ds.Observations = append(ds.Observations, bp)
	// Clean node.
	ds.Observations = append(ds.Observations, httpObs("zc", asns["cleanisp"], "DE"))
	// JS replaced.
	js := httpObs("zj", asns["cleanisp"], "DE")
	js.Objects[content.KindJS] = core.ObjectResult{Outcome: core.ObjEmpty}
	ds.Observations = append(ds.Observations, js)

	a := AnalyzeHTTP(Config{Scale: 0.3}, r, ds)
	sum := a.Summary()
	if sum.HTMLModified != 4 || sum.HTMLBlockPage != 1 || sum.HTMLInjected != 3 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.JSReplaced != 1 || sum.CSSReplaced != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	rows, _ := a.Table6()
	if len(rows) != 1 || rows[0].Signature != "d36mw5gp02ykm5.cloudfront.net" || rows[0].Nodes != 3 || !rows[0].IsURL {
		t.Fatalf("Table6 = %+v", rows)
	}
}

// newHTMLResponse adapts bytes to an httpwire response for interceptor
// reuse in tests.
func newHTMLResponse(body []byte) *httpwire.Response {
	resp := httpwire.NewResponse(200, body)
	resp.Header.Set("Content-Type", "text/html; charset=utf-8")
	return resp
}

func TestExtractSignatureKeyword(t *testing.T) {
	orig := content.Object(content.KindHTML)
	inj := middlebox.HTMLInjector{Product: "x", Signature: "var oiasudoj;"}
	resp := newHTMLResponse(append([]byte(nil), orig...))
	got := inj.InterceptHTTP("h", "/object.html", resp)
	sig, isURL := ExtractSignature(orig, got.Body)
	if isURL || !strings.Contains(sig, "oiasudoj") {
		t.Fatalf("sig = %q (url=%v)", sig, isURL)
	}
}

func TestExtractSignatureNetSparkMeta(t *testing.T) {
	orig := content.Object(content.KindHTML)
	cf := middlebox.ContentFilter{Product: "NetSpark"}
	got := cf.InterceptHTTP("h", "/object.html", newHTMLResponse(append([]byte(nil), orig...)))
	sig, _ := ExtractSignature(orig, got.Body)
	if !strings.Contains(sig, "NetSparkQuiltingResult") {
		t.Fatalf("sig = %q", sig)
	}
}

func TestTable7Compression(t *testing.T) {
	r, asns := testGeo(t)
	ds := &core.HTTPDataset{}
	// 12 nodes in the mobile AS: 8 compressed at two ratios, 4 clean.
	for i := 0; i < 12; i++ {
		o := httpObs(fmt.Sprintf("zm%d", i), asns["mobile"], "PH")
		if i < 8 {
			ratio := 0.35
			if i%2 == 1 {
				ratio = 0.60
			}
			o.Objects[content.KindImage] = core.ObjectResult{Outcome: core.ObjModified, ImageRatio: ratio}
		}
		ds.Observations = append(ds.Observations, o)
	}
	// An AS below the node threshold.
	small := httpObs("zs", asns["cleanisp"], "DE")
	small.Objects[content.KindImage] = core.ObjectResult{Outcome: core.ObjModified, ImageRatio: 0.5}
	ds.Observations = append(ds.Observations, small)

	a := AnalyzeHTTP(Config{Scale: 0.5}, r, ds)
	rows, tbl := a.Table7()
	if len(rows) != 1 {
		t.Fatalf("rows = %+v", rows)
	}
	row := rows[0]
	if row.ASN != asns["mobile"] || row.Modified != 8 || row.Total != 12 || !row.Mobile {
		t.Fatalf("row = %+v", row)
	}
	if len(row.Ratios) != 2 || row.RatioLabel() != "M" {
		t.Fatalf("ratios = %v", row.Ratios)
	}
	if !strings.Contains(tbl.String(), "Globe Telecom") {
		t.Fatal("ISP missing from rendered table")
	}
}

func TestTLSSummaryAndTable8(t *testing.T) {
	r, asns := testGeo(t)
	ds := &core.TLSDataset{}
	keyA := [16]byte{1}
	keyB := [16]byte{2}
	// Kaspersky-like node: key reuse + laundering.
	ds.Observations = append(ds.Observations, &core.TLSObservation{
		ZID: "zk", ASN: asns["cleanisp"], Country: "DE", Phase2: true,
		Sites: []core.SiteResult{
			{Host: "a", Class: core.SitePopular, Replaced: true, IssuerCN: "Kaspersky Anti-Virus Personal Root", LeafKey: keyA},
			{Host: "b", Class: core.SiteUniversity, Replaced: true, IssuerCN: "Kaspersky Anti-Virus Personal Root", LeafKey: keyA},
			{Host: "c", Class: core.SiteInvalid, Replaced: true, IssuerCN: "Kaspersky Anti-Virus Personal Root", LeafKey: keyA},
		},
	})
	ds.Observations = append(ds.Observations, &core.TLSObservation{
		ZID: "zk2", ASN: asns["tmnet"], Country: "MY", Phase2: true,
		Sites: []core.SiteResult{
			{Host: "a", Class: core.SitePopular, Replaced: true, IssuerCN: "Kaspersky Anti-Virus Personal Root", LeafKey: keyB},
			{Host: "b", Class: core.SitePopular, Replaced: true, IssuerCN: "Kaspersky Anti-Virus Personal Root", LeafKey: keyB},
		},
	})
	// Selective nodes: one replaced site, one untouched.
	for i := 0; i < 2; i++ {
		ds.Observations = append(ds.Observations, &core.TLSObservation{
			ZID: fmt.Sprintf("zo%d", i), ASN: asns["cleanisp"], Country: "DE", Phase2: true,
			Sites: []core.SiteResult{
				{Host: "a", Class: core.SitePopular, Replaced: true, IssuerCN: "OpenDNS Root Certificate Authority", LeafKey: keyB},
				{Host: "b", Class: core.SitePopular, Replaced: false},
			},
		})
	}
	// Clean nodes.
	for i := 0; i < 97; i++ {
		ds.Observations = append(ds.Observations, &core.TLSObservation{
			ZID: fmt.Sprintf("zc%d", i), ASN: asns["cleanisp"], Country: "DE",
			Sites: []core.SiteResult{{Host: "a", Class: core.SitePopular}},
		})
	}

	a := AnalyzeTLS(Config{Scale: 0.3}, r, ds)
	sum := a.Summary()
	if sum.Affected != 4 || sum.MeasuredNodes != 101 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.SelectiveNodes != 2 {
		t.Fatalf("selective = %d", sum.SelectiveNodes)
	}
	rows, _ := a.Table8()
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].IssuerCN != "Kaspersky Anti-Virus Personal Root" || rows[0].Nodes != 2 {
		t.Fatalf("row0 = %+v", rows[0])
	}
	if rows[0].Kind != "Anti-Virus/Security" || rows[0].KeyReuseNodes != 2 || rows[0].LaunderNodes != 1 {
		t.Fatalf("row0 detail = %+v", rows[0])
	}
	if rows[1].Kind != "Content filter" {
		t.Fatalf("row1 = %+v", rows[1])
	}
}

func TestMonitorSummaryTable9Figure5(t *testing.T) {
	r, asns := testGeo(t)
	monIP1 := addrIn(t, r, asns["monitor"])
	monIP2 := addrIn(t, r, asns["monitor"])
	ds := &core.MonDataset{}
	for i := 0; i < 10; i++ {
		o := &core.MonObservation{ZID: fmt.Sprintf("zm%d", i), ASN: asns["cleanisp"], Country: "DE"}
		o.Unexpected = []core.UnexpectedRequest{
			{Src: monIP1, ASN: asns["monitor"], Org: "Trend Micro", Delay: time.Duration(20+i) * time.Second},
			{Src: monIP2, ASN: asns["monitor"], Org: "Trend Micro", Delay: time.Duration(300+i*100) * time.Second},
		}
		ds.Observations = append(ds.Observations, o)
	}
	// A Bluecoat-style pre-fetch.
	ds.Observations = append(ds.Observations, &core.MonObservation{
		ZID: "zpre", ASN: asns["cleanisp"], Country: "DE",
		Unexpected: []core.UnexpectedRequest{{Src: monIP1, ASN: asns["monitor"], Org: "Trend Micro", Delay: -time.Second}},
	})
	for i := 0; i < 89; i++ {
		ds.Observations = append(ds.Observations, &core.MonObservation{ZID: fmt.Sprintf("zc%d", i)})
	}

	a := AnalyzeMonitor(Config{}, r, ds)
	sum := a.Summary()
	if sum.Monitored != 11 || sum.MeasuredNodes != 100 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.UniqueIPs != 2 || sum.ASGroups != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	rows, tbl := a.Table9(5)
	if len(rows) != 1 || rows[0].Name != "Trend Micro" || rows[0].Nodes != 11 || rows[0].IPs != 2 {
		t.Fatalf("Table9 = %+v", rows)
	}
	if !strings.Contains(tbl.String(), "Trend Micro") {
		t.Fatal("render missing entity")
	}
	cdfs := a.Figure5(5)
	if len(cdfs) != 1 {
		t.Fatal("no CDF")
	}
	c := cdfs[0]
	if c.NegativeShare() <= 0 {
		t.Fatal("negative delays lost")
	}
	if c.At(25*time.Second) <= c.At(5*time.Second) {
		t.Fatal("CDF not increasing")
	}
	if c.Quantile(0.99) < c.Quantile(0.10) {
		t.Fatal("quantiles inverted")
	}
}

func TestOverviewTables(t *testing.T) {
	t1 := Table1()
	if len(t1.Rows) != 5 || !strings.Contains(t1.String(), "Netalyzr") {
		t.Fatal("Table 1 malformed")
	}
	t2 := Table2([]DatasetOverview{
		{Name: "DNS", Nodes: 753111, ASes: 10197, Countries: 167},
		{Name: "HTTP", Nodes: 49545, ASes: 12658, Countries: 171},
		{Name: "HTTPS", Nodes: 807910, ASes: 10007, Countries: 115},
		{Name: "Monitoring", Nodes: 747449, ASes: 11638, Countries: 167},
	})
	if len(t2.Rows) != 3 || !strings.Contains(t2.String(), "753111") {
		t.Fatalf("Table 2 malformed:\n%s", t2)
	}
}

func TestCDFEmptyAndSingle(t *testing.T) {
	e := NewCDF("empty", nil)
	if e.At(time.Second) != 0 || e.Quantile(0.5) != 0 || e.NegativeShare() != 0 {
		t.Fatal("empty CDF misbehaves")
	}
	s := NewCDF("one", []time.Duration{5 * time.Second})
	if s.At(4*time.Second) != 0 || s.At(5*time.Second) != 1 {
		t.Fatal("single-sample CDF wrong")
	}
}

func TestResolverStats(t *testing.T) {
	r, asns := testGeo(t)
	ispRes := addrIn(t, r, asns["tmnet"])   // ISP server, hijacking, 12 nodes
	smallRes := addrIn(t, r, asns["tmnet"]) // ISP server below threshold
	pubRes := addrIn(t, r, asns["comodo"])  // public (multi-country)
	ds := &core.DNSDataset{}
	add := func(res netip.Addr, asn geo.ASN, cc geo.CountryCode, n int, hijacked bool) {
		for i := 0; i < n; i++ {
			ds.Observations = append(ds.Observations, &core.DNSObservation{
				ZID: fmt.Sprintf("z%v%v%d%v", res, cc, i, hijacked), NodeIP: addrIn(t, r, asn),
				ResolverIP: res, ASN: asn, Country: cc, Hijacked: hijacked,
			})
		}
	}
	add(ispRes, asns["tmnet"], "MY", 12, true)
	add(smallRes, asns["tmnet"], "MY", 1, false)
	add(pubRes, asns["tmnet"], "MY", 4, false)
	add(pubRes, asns["cleanisp"], "DE", 4, false)
	add(pubRes, asns["mobile"], "PH", 4, false)

	a := AnalyzeDNS(Config{Scale: 0.5}, r, ds)
	st := a.ResolverStats()
	if st.TotalServers != 3 {
		t.Fatalf("total = %d", st.TotalServers)
	}
	// Threshold at scale 0.5 is 5 nodes: isp (12) and public (12) qualify.
	if st.AboveThreshold != 2 {
		t.Fatalf("above threshold = %d", st.AboveThreshold)
	}
	if st.ISPServers != 2 || st.ISPAboveThreshold != 1 || st.HijackingISP != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGoogleHeavyASes(t *testing.T) {
	r, asns := testGeo(t)
	g := geo.GoogleEgressFor(netip.MustParseAddr("41.85.1.1"))
	if g == geo.SuperProxyResolverEgress {
		g = geo.GoogleEgressFor(netip.MustParseAddr("41.85.1.2"))
	}
	isp := addrIn(t, r, asns["cleanisp"])
	ds := &core.DNSDataset{}
	// Heavy AS: 9 of 10 nodes on Google.
	for i := 0; i < 10; i++ {
		res := g
		if i == 9 {
			res = isp
		}
		ds.Observations = append(ds.Observations, &core.DNSObservation{
			ZID: fmt.Sprintf("zg%d", i), ASN: asns["tmnet"], Country: "MY", ResolverIP: res,
		})
	}
	// Light AS: 1 of 10 on Google.
	for i := 0; i < 10; i++ {
		res := isp
		if i == 0 {
			res = g
		}
		ds.Observations = append(ds.Observations, &core.DNSObservation{
			ZID: fmt.Sprintf("zl%d", i), ASN: asns["cleanisp"], Country: "DE", ResolverIP: res,
		})
	}
	a := AnalyzeDNS(Config{Scale: 0.5}, r, ds)
	heavy := a.GoogleHeavyASes(0.8)
	if len(heavy) != 1 || heavy[0].ASN != asns["tmnet"] || heavy[0].Google != 9 {
		t.Fatalf("heavy = %+v", heavy)
	}
	if s := heavy[0].Share(); s < 0.89 || s > 0.91 {
		t.Fatalf("share = %.2f", s)
	}
}

func TestClusterRatios(t *testing.T) {
	got := clusterRatios([]float64{0.50, 0.51, 0.52, 0.49})
	if len(got) != 1 || got[0] < 0.49 || got[0] > 0.52 {
		t.Fatalf("single cluster = %v", got)
	}
	got = clusterRatios([]float64{0.35, 0.36, 0.60, 0.61})
	if len(got) != 2 {
		t.Fatalf("two clusters = %v", got)
	}
	if got[0] > 0.4 || got[1] < 0.55 {
		t.Fatalf("cluster centers = %v", got)
	}
	if got := clusterRatios(nil); got != nil {
		t.Fatalf("empty input = %v", got)
	}
}

func TestInjectedSegment(t *testing.T) {
	orig := []byte("aaaa-MIDDLE-zzzz")
	mod := []byte("aaaa-MIDDLE-injected-zzzz")
	seg := injectedSegment(orig, mod)
	if !strings.Contains(string(seg), "injected") {
		t.Fatalf("segment = %q", seg)
	}
	// Identical inputs: empty segment.
	if seg := injectedSegment(orig, orig); len(seg) != 0 {
		t.Fatalf("identical inputs segment = %q", seg)
	}
	// Pure prefix injection.
	if seg := injectedSegment([]byte("tail"), []byte("head-tail")); string(seg) != "head-" {
		t.Fatalf("prefix injection = %q", seg)
	}
}

func TestExtractSignatureNoChange(t *testing.T) {
	orig := content.Object(content.KindHTML)
	sig, _ := ExtractSignature(orig, orig)
	if sig != "" {
		t.Fatalf("signature from identical bodies: %q", sig)
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tbl := &Table{ID: "T", Title: "x", Headers: []string{"A", "BBBB"},
		Rows: [][]string{{"aaaaaa", "b"}, {"c", "dd"}}}
	out := tbl.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Columns align: "BBBB" and "b" start at the same offset.
	h := strings.Index(lines[1], "BBBB")
	r := strings.Index(lines[3], "b")
	if h != r {
		t.Fatalf("misaligned: header col %d, row col %d\n%s", h, r, out)
	}
}

func TestIssuerKindUnknown(t *testing.T) {
	if IssuerKind("Totally Unknown CA") != "N/A" {
		t.Fatal("unknown issuer not N/A")
	}
	if IssuerKind("Cloudguard.me") != "Malware" {
		t.Fatal("Cloudguard misclassified")
	}
}
