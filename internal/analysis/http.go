package analysis

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"github.com/tftproject/tft/internal/content"
	"github.com/tftproject/tft/internal/core"
	"github.com/tftproject/tft/internal/geo"
)

// HTTPAnalysis is the §5 analysis over an HTTP dataset.
type HTTPAnalysis struct {
	Cfg Config
	Geo *geo.Registry
	DS  *core.HTTPDataset
}

// AnalyzeHTTP wraps a dataset for analysis.
func AnalyzeHTTP(cfg Config, reg *geo.Registry, ds *core.HTTPDataset) *HTTPAnalysis {
	return &HTTPAnalysis{Cfg: cfg, Geo: reg, DS: ds}
}

// NewHTTPAnalysis creates an empty aggregate for streaming use; shard
// partials combine with Merge.
func NewHTTPAnalysis(cfg Config, reg *geo.Registry) *HTTPAnalysis {
	return AnalyzeHTTP(cfg, reg, &core.HTTPDataset{})
}

// Observe adds one observation to the aggregate.
func (a *HTTPAnalysis) Observe(o *core.HTTPObservation) {
	a.DS.Observations = append(a.DS.Observations, o)
}

// Merge folds another shard's partial aggregate into a; b must not be used
// afterwards. Every summary and table reduces over unordered maps with
// deterministic sort tie-breakers, so merged partials render identically
// to a single unsharded aggregate.
func (a *HTTPAnalysis) Merge(b *HTTPAnalysis) {
	a.DS.Observations = append(a.DS.Observations, b.DS.Observations...)
}

// HTTPSummary is the §5.2 headline.
type HTTPSummary struct {
	MeasuredNodes int
	ASes          int
	Countries     int
	// HTMLModified includes block pages; HTMLInjected excludes them
	// (the paper's 472 → 440 filtering step).
	HTMLModified  int
	HTMLBlockPage int
	HTMLInjected  int
	ImageModified int
	JSReplaced    int
	CSSReplaced   int
}

// Summary computes headline counts.
func (a *HTTPAnalysis) Summary() HTTPSummary {
	s := HTTPSummary{MeasuredNodes: len(a.DS.Observations)}
	ases := map[geo.ASN]bool{}
	countries := map[geo.CountryCode]bool{}
	for _, o := range a.DS.Observations {
		ases[o.ASN] = true
		countries[o.Country] = true
		html := o.Objects[content.KindHTML]
		switch {
		case html.Outcome == core.ObjBlocked || isBlockPage(html.Body):
			s.HTMLModified++
			s.HTMLBlockPage++
		case html.Outcome == core.ObjModified:
			s.HTMLModified++
			s.HTMLInjected++
		}
		if img := o.Objects[content.KindImage]; img.Outcome == core.ObjModified {
			s.ImageModified++
		}
		if js := o.Objects[content.KindJS]; js.Outcome != core.ObjUnmodified && js.Outcome != core.ObjError {
			s.JSReplaced++
		}
		if css := o.Objects[content.KindCSS]; css.Outcome != core.ObjUnmodified && css.Outcome != core.ObjError {
			s.CSSReplaced++
		}
	}
	s.ASes = len(ases)
	s.Countries = len(countries)
	return s
}

// isBlockPage matches the §5.2 filtering of "bandwidth exceeded"/"blocked"
// responses.
func isBlockPage(body []byte) bool {
	l := bytes.ToLower(body)
	return bytes.Contains(l, []byte("bandwidth exceeded")) || bytes.Contains(l, []byte("blocked"))
}

// InjectionRow is one Table 6 entry.
type InjectionRow struct {
	Signature string
	IsURL     bool
	Nodes     int
	Countries int
	ASes      int
}

// Table6 extracts injected-code signatures from modified HTML and groups
// them, mirroring §5.2's URL/keyword extraction.
func (a *HTTPAnalysis) Table6() ([]InjectionRow, *Table) {
	type agg struct {
		isURL     bool
		nodes     int
		countries map[geo.CountryCode]bool
		ases      map[geo.ASN]bool
	}
	bySig := map[string]*agg{}
	orig := content.Object(content.KindHTML)
	for _, o := range a.DS.Observations {
		html := o.Objects[content.KindHTML]
		if html.Outcome != core.ObjModified || isBlockPage(html.Body) {
			continue
		}
		sig, isURL := ExtractSignature(orig, html.Body)
		if sig == "" {
			sig = "(unidentified)"
		}
		ag := bySig[sig]
		if ag == nil {
			ag = &agg{isURL: isURL, countries: map[geo.CountryCode]bool{}, ases: map[geo.ASN]bool{}}
			bySig[sig] = ag
		}
		ag.nodes++
		ag.countries[o.Country] = true
		ag.ases[o.ASN] = true
	}
	var rows []InjectionRow
	min := a.Cfg.MinRowNodes()
	for sig, ag := range bySig {
		if ag.nodes < min || sig == "(unidentified)" {
			continue
		}
		rows = append(rows, InjectionRow{
			Signature: sig, IsURL: ag.isURL, Nodes: ag.nodes,
			Countries: len(ag.countries), ASes: len(ag.ases),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Nodes != rows[j].Nodes {
			return rows[i].Nodes > rows[j].Nodes
		}
		return rows[i].Signature < rows[j].Signature
	})
	t := &Table{ID: "Table 6", Title: "Most common injected-JavaScript signatures",
		Headers: []string{"URL or Keyword", "Exit Nodes", "Countries", "ASes"}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Signature, itoa(r.Nodes), itoa(r.Countries), itoa(r.ASes)})
	}
	return rows, t
}

// ExtractSignature recovers the characteristic URL or keyword from an
// injected page by isolating the bytes not present in the original and
// mining them for a domain or a code token.
func ExtractSignature(orig, modified []byte) (sig string, isURL bool) {
	injected := injectedSegment(orig, modified)
	if len(injected) == 0 {
		return "", false
	}
	// Domains appearing in the injection but not in the original.
	origDoms := map[string]bool{}
	for _, d := range content.ExtractDomains(orig) {
		origDoms[d] = true
	}
	for _, d := range content.ExtractDomains(injected) {
		if !origDoms[d] {
			return d, true
		}
	}
	// Keyword fallback: the first script-ish token line.
	s := strings.TrimSpace(string(injected))
	if i := strings.Index(s, "<script>"); i >= 0 {
		s = s[i+len("<script>"):]
		if j := strings.Index(s, "</script>"); j >= 0 {
			s = s[:j]
		}
	} else if i := strings.Index(s, "name=\""); i >= 0 {
		// Meta-tag filters (NetSpark).
		s = s[i+len("name=\""):]
		if j := strings.IndexByte(s, '"'); j >= 0 {
			return s[:j], false
		}
	}
	s = strings.TrimSpace(s)
	if s == "" {
		return "", false
	}
	if i := strings.IndexAny(s, "\n"); i > 0 {
		s = s[:i]
	}
	if len(s) > 48 {
		s = s[:48]
	}
	return s, false
}

// injectedSegment returns modified minus its longest common prefix/suffix
// with orig.
func injectedSegment(orig, modified []byte) []byte {
	p := 0
	for p < len(orig) && p < len(modified) && orig[p] == modified[p] {
		p++
	}
	so, sm := len(orig), len(modified)
	for so > p && sm > p && orig[so-1] == modified[sm-1] {
		so--
		sm--
	}
	return modified[p:sm]
}

// CompressionRow is one Table 7 entry.
type CompressionRow struct {
	ASN      geo.ASN
	ISP      string
	Country  geo.CountryCode
	Modified int
	Total    int
	// Ratios are the clustered compression ratios ("M" = multiple).
	Ratios []float64
	Mobile bool
}

// RatioLabel renders the ratio column as the paper does.
func (r CompressionRow) RatioLabel() string {
	if len(r.Ratios) > 1 {
		return "M"
	}
	if len(r.Ratios) == 1 {
		return fmt.Sprintf("%.0f%%", 100*r.Ratios[0])
	}
	return "-"
}

// Table7 groups image-modified nodes by AS with per-AS compression ratios.
func (a *HTTPAnalysis) Table7() ([]CompressionRow, *Table) {
	type agg struct {
		modified, total int
		ratios          []float64
	}
	byAS := map[geo.ASN]*agg{}
	for _, o := range a.DS.Observations {
		ag := byAS[o.ASN]
		if ag == nil {
			ag = &agg{}
			byAS[o.ASN] = ag
		}
		ag.total++
		if img := o.Objects[content.KindImage]; img.Outcome == core.ObjModified {
			ag.modified++
			ag.ratios = append(ag.ratios, img.ImageRatio)
		}
	}
	var rows []CompressionRow
	min := a.Cfg.MinASNodes()
	for asn, ag := range byAS {
		if ag.modified == 0 || ag.total < min {
			continue
		}
		row := CompressionRow{ASN: asn, Modified: ag.modified, Total: ag.total,
			Ratios: clusterRatios(ag.ratios)}
		if org, ok := a.Geo.Org(asn); ok {
			row.ISP = org.Name
			row.Country = org.Country
		}
		if as, ok := a.Geo.ASInfo(asn); ok {
			row.Mobile = as.Mobile
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		ri := float64(rows[i].Modified) / float64(rows[i].Total)
		rj := float64(rows[j].Modified) / float64(rows[j].Total)
		if ri != rj {
			return ri > rj
		}
		return rows[i].ASN < rows[j].ASN
	})
	t := &Table{ID: "Table 7", Title: "Exit nodes receiving compressed images, by AS",
		Headers: []string{"AS", "ISP (Country)", "Mod.", "Total", "Ratio", "Cmp.", "Mobile"}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("AS%d", r.ASN),
			fmt.Sprintf("%s (%s)", r.ISP, r.Country),
			itoa(r.Modified), itoa(r.Total), pct(r.Modified, r.Total),
			r.RatioLabel(), fmt.Sprintf("%v", r.Mobile),
		})
	}
	return rows, t
}

// clusterRatios collapses observed per-node ratios into the appliance's
// distinct settings (±3 percentage points).
func clusterRatios(ratios []float64) []float64 {
	if len(ratios) == 0 {
		return nil
	}
	sort.Float64s(ratios)
	var out []float64
	start := 0
	for i := 1; i <= len(ratios); i++ {
		if i == len(ratios) || ratios[i]-ratios[i-1] > 0.03 {
			sum := 0.0
			for _, v := range ratios[start:i] {
				sum += v
			}
			out = append(out, sum/float64(i-start))
			start = i
		}
	}
	return out
}
