// Package analysis turns experiment datasets into the paper's tables and
// figures: hijack attribution (§4.3–4.4), country and ISP rankings
// (Tables 3–5), injection signatures (Table 6), image-transcoding ASes
// (Table 7), certificate-replacement issuers (Table 8), monitoring entities
// (Table 9), and the monitoring-delay CDF (Figure 5).
//
// Everything here consumes only measurement observations plus the public
// IP→AS/org mapping — never the world's ground truth.
package analysis

import (
	"fmt"
	"strings"
)

// Table is a rendered result table.
type Table struct {
	ID      string // "Table 3", "Figure 5", ...
	Title   string
	Headers []string
	Rows    [][]string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Headers)
	total := len(t.Headers) - 1
	for _, w := range widths {
		total += w + 1
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return sb.String()
}

// pct formats a ratio as a percentage.
func pct(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}

// itoa is a short fmt helper.
func itoa(v int) string { return fmt.Sprintf("%d", v) }

// Config carries analysis thresholds, scaled so that the paper's absolute
// cutoffs (10 nodes per server, 100 per country, 5 per table row) keep
// their selective power at reduced world scales.
type Config struct {
	Scale float64
}

// scaleThreshold converts a full-scale cutoff.
func (c Config) scaleThreshold(full int, floor int) int {
	if c.Scale <= 0 || c.Scale > 1 {
		return full
	}
	v := int(float64(full)*c.Scale + 0.5)
	if v < floor {
		v = floor
	}
	return v
}

// MinNodesPerServer is the §4.3.1 "at least 10 exit nodes" server cutoff.
func (c Config) MinNodesPerServer() int { return c.scaleThreshold(10, 2) }

// MinNodesPerCountry is the §4.2 "at least 100 exit nodes" country cutoff.
func (c Config) MinNodesPerCountry() int { return c.scaleThreshold(100, 5) }

// MinRowNodes is the ≥5-node row cutoff used by Tables 5, 6, and 8.
func (c Config) MinRowNodes() int { return c.scaleThreshold(5, 2) }

// MinASNodes is Table 7's ≥10-measured-nodes AS cutoff.
func (c Config) MinASNodes() int { return c.scaleThreshold(10, 2) }

// HijackServerRatio is the ≥90% per-server hijack criterion (§4.3.1).
const HijackServerRatio = 0.9
