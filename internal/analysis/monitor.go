package analysis

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"github.com/tftproject/tft/internal/core"
	"github.com/tftproject/tft/internal/geo"
)

// MonAnalysis is the §7 analysis over a monitoring dataset.
type MonAnalysis struct {
	Cfg Config
	Geo *geo.Registry
	DS  *core.MonDataset
}

// AnalyzeMonitor wraps a dataset.
func AnalyzeMonitor(cfg Config, reg *geo.Registry, ds *core.MonDataset) *MonAnalysis {
	return &MonAnalysis{Cfg: cfg, Geo: reg, DS: ds}
}

// NewMonAnalysis creates an empty aggregate for streaming use; shard
// partials combine with Merge.
func NewMonAnalysis(cfg Config, reg *geo.Registry) *MonAnalysis {
	return AnalyzeMonitor(cfg, reg, &core.MonDataset{})
}

// Observe adds one observation to the aggregate.
func (a *MonAnalysis) Observe(o *core.MonObservation) {
	a.DS.Observations = append(a.DS.Observations, o)
}

// Merge folds another shard's partial aggregate into a; b must not be used
// afterwards. Summaries and tables reduce over unordered maps with
// deterministic tie-breakers, so merge order never shows in the output.
func (a *MonAnalysis) Merge(b *MonAnalysis) {
	a.DS.Observations = append(a.DS.Observations, b.DS.Observations...)
}

// MonSummary is the §7.2 headline.
type MonSummary struct {
	MeasuredNodes int
	Monitored     int
	MonitoredPct  float64
	UniqueIPs     int
	ASGroups      int
}

// Summary computes headline counts.
func (a *MonAnalysis) Summary() MonSummary {
	s := MonSummary{MeasuredNodes: len(a.DS.Observations)}
	ips := map[netip.Addr]bool{}
	groups := map[geo.ASN]bool{}
	for _, o := range a.DS.Observations {
		if !o.Monitored() {
			continue
		}
		s.Monitored++
		for _, u := range o.Unexpected {
			ips[u.Src] = true
			groups[u.ASN] = true
		}
	}
	s.UniqueIPs = len(ips)
	s.ASGroups = len(groups)
	if s.MeasuredNodes > 0 {
		s.MonitoredPct = 100 * float64(s.Monitored) / float64(s.MeasuredNodes)
	}
	return s
}

// MonitorRow is one Table 9 entry.
type MonitorRow struct {
	Name      string
	IPs       int
	Nodes     int
	ASes      int
	Countries int
	// UserAgent is the most common User-Agent on the entity's requests —
	// §7.2's extra attribution clue.
	UserAgent string
	// Delays are every unexpected-request delay attributed to the entity
	// (feeds Figure 5).
	Delays []time.Duration
}

// Table9 groups unexpected requests by the organization owning the
// requesting addresses.
func (a *MonAnalysis) Table9(topN int) ([]MonitorRow, *Table) {
	type agg struct {
		ips       map[netip.Addr]bool
		nodes     map[string]bool
		ases      map[geo.ASN]bool
		countries map[geo.CountryCode]bool
		uas       map[string]int
		delays    []time.Duration
	}
	byOrg := map[string]*agg{}
	for _, o := range a.DS.Observations {
		for _, u := range o.Unexpected {
			name := u.Org
			if name == "" {
				name = fmt.Sprintf("AS%d", u.ASN)
			}
			ag := byOrg[name]
			if ag == nil {
				ag = &agg{ips: map[netip.Addr]bool{}, nodes: map[string]bool{},
					ases: map[geo.ASN]bool{}, countries: map[geo.CountryCode]bool{},
					uas: map[string]int{}}
				byOrg[name] = ag
			}
			ag.ips[u.Src] = true
			ag.nodes[o.ZID] = true
			ag.ases[o.ASN] = true
			ag.countries[o.Country] = true
			if u.UserAgent != "" {
				ag.uas[u.UserAgent]++
			}
			ag.delays = append(ag.delays, u.Delay)
		}
	}
	rows := make([]MonitorRow, 0, len(byOrg))
	for name, ag := range byOrg {
		bestUA, bestN := "", 0
		for ua, n := range ag.uas {
			if n > bestN || (n == bestN && ua < bestUA) {
				bestUA, bestN = ua, n
			}
		}
		rows = append(rows, MonitorRow{
			Name: name, IPs: len(ag.ips), Nodes: len(ag.nodes),
			ASes: len(ag.ases), Countries: len(ag.countries),
			UserAgent: bestUA, Delays: ag.delays,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Nodes != rows[j].Nodes {
			return rows[i].Nodes > rows[j].Nodes
		}
		return rows[i].Name < rows[j].Name
	})
	all := rows
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	t := &Table{ID: "Table 9", Title: "Top sources of unexpected (monitoring) requests",
		Headers: []string{"Name", "IPs", "Exit nodes", "ASes", "Countries", "User-Agent"}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Name, itoa(r.IPs), itoa(r.Nodes), itoa(r.ASes),
			itoa(r.Countries), r.UserAgent})
	}
	_ = all
	return rows, t
}

// CDF is an empirical distribution over delays.
type CDF struct {
	Name string
	// Sorted delay samples.
	Samples []time.Duration
}

// NewCDF builds a CDF from samples.
func NewCDF(name string, samples []time.Duration) CDF {
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return CDF{Name: name, Samples: s}
}

// At returns P(delay <= d).
func (c CDF) At(d time.Duration) float64 {
	if len(c.Samples) == 0 {
		return 0
	}
	lo, hi := 0, len(c.Samples)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.Samples[mid] <= d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return float64(lo) / float64(len(c.Samples))
}

// Quantile returns the q-th sample quantile (0..1).
func (c CDF) Quantile(q float64) time.Duration {
	if len(c.Samples) == 0 {
		return 0
	}
	i := int(q * float64(len(c.Samples)-1))
	return c.Samples[i]
}

// NegativeShare is the fraction of delays below zero — Bluecoat's
// fetch-before-user behaviour makes its CDF "start at 41%" on the paper's
// positive log axis.
func (c CDF) NegativeShare() float64 {
	n := 0
	for _, d := range c.Samples {
		if d < 0 {
			n++
		}
	}
	if len(c.Samples) == 0 {
		return 0
	}
	return float64(n) / float64(len(c.Samples))
}

// Figure5 builds per-entity delay CDFs for the top monitoring sources.
func (a *MonAnalysis) Figure5(topN int) []CDF {
	rows, _ := a.Table9(topN)
	out := make([]CDF, 0, len(rows))
	for _, r := range rows {
		out = append(out, NewCDF(r.Name, r.Delays))
	}
	return out
}

// Figure5Table renders the CDFs as quantile rows (the textual stand-in for
// the paper's plot), returning the typed CDFs alongside the rendered table.
func (a *MonAnalysis) Figure5Table(topN int) ([]CDF, *Table) {
	cdfs := a.Figure5(topN)
	t := &Table{ID: "Figure 5", Title: "Delay between exit-node request and unexpected request (quantiles)",
		Headers: []string{"Name", "neg%", "p10", "p25", "p50", "p75", "p90", "p99"}}
	for _, c := range cdfs {
		t.Rows = append(t.Rows, []string{
			c.Name,
			fmt.Sprintf("%.0f%%", 100*c.NegativeShare()),
			fmtDelay(c.Quantile(0.10)), fmtDelay(c.Quantile(0.25)), fmtDelay(c.Quantile(0.50)),
			fmtDelay(c.Quantile(0.75)), fmtDelay(c.Quantile(0.90)), fmtDelay(c.Quantile(0.99)),
		})
	}
	return cdfs, t
}

func fmtDelay(d time.Duration) string {
	return d.Round(10 * time.Millisecond).String()
}
