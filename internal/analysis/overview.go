package analysis

// Table1 is the paper's platform-comparison table — static context, not a
// measurement output.
func Table1() *Table {
	return &Table{
		ID:      "Table 1",
		Title:   "Comparison with complementary measurement platforms",
		Headers: []string{"Project", "Nodes", "ASes", "Countries", "Period", "ICMP", "DNS", "HTTP", "HTTPS"},
		Rows: [][]string{
			{"This approach", "1,276,873", "14,772", "172", "5 days", "", "Y", "Y", "Y"},
			{"Netalyzr", "1,217,181", "14,375", "196", "6 years", "Y", "Y", "Y", "Y"},
			{"BISmark", "406", "118", "34", "2 years", "Y", "Y", "Y", "Y"},
			{"Dasu", "100,104", "1,802", "147", "6 years", "Y", "Y", "Y", "Y"},
			{"RIPE Atlas", "9,300", "3,333", "181", "6 years", "Y", "Y", "Y", "Y"},
		},
	}
}

// DatasetOverview is one experiment's coverage row.
type DatasetOverview struct {
	Name      string
	Nodes     int
	ASes      int
	Countries int
}

// Table2 renders experiment coverage.
func Table2(rows []DatasetOverview) *Table {
	t := &Table{ID: "Table 2", Title: "Exit nodes, ASes, and countries per experiment",
		Headers: []string{"", "DNS", "HTTP", "HTTPS", "Monitoring"}}
	get := func(f func(DatasetOverview) int) []string {
		out := make([]string, 0, len(rows))
		for _, r := range rows {
			out = append(out, itoa(f(r)))
		}
		return out
	}
	t.Rows = append(t.Rows, append([]string{"Exit Nodes"}, get(func(r DatasetOverview) int { return r.Nodes })...))
	t.Rows = append(t.Rows, append([]string{"ASes"}, get(func(r DatasetOverview) int { return r.ASes })...))
	t.Rows = append(t.Rows, append([]string{"Countries"}, get(func(r DatasetOverview) int { return r.Countries })...))
	return t
}
