package analysis

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"github.com/tftproject/tft/internal/core"
	"github.com/tftproject/tft/internal/geo"
	"github.com/tftproject/tft/internal/middlebox"
)

// HijackSource classifies who rewrote a node's NXDOMAIN (§4.3).
type HijackSource int

// The attribution classes of §4.4.
const (
	// SourceISPResolver: the node's ISP-operated DNS server.
	SourceISPResolver HijackSource = iota
	// SourcePublicResolver: a public resolver used from many countries.
	SourcePublicResolver
	// SourceOther: on-path middlebox or end-host software — the node's
	// resolver (often Google) is known honest, yet the answer was rewritten.
	SourceOther
)

// String names the source.
func (s HijackSource) String() string {
	switch s {
	case SourceISPResolver:
		return "ISP DNS server"
	case SourcePublicResolver:
		return "public DNS server"
	case SourceOther:
		return "middlebox/software"
	}
	return fmt.Sprintf("HijackSource(%d)", int(s))
}

// ResolverGroup aggregates the nodes observed behind one resolver egress.
type ResolverGroup struct {
	Addr      netip.Addr
	ASN       geo.ASN
	Org       *geo.Organization
	Nodes     int
	Hijacked  int
	Countries map[geo.CountryCode]int
	// SameOrg: every node's organization matches the resolver's.
	SameOrg bool
}

// HijackRatio is the group's hijacked fraction.
func (g *ResolverGroup) HijackRatio() float64 {
	if g.Nodes == 0 {
		return 0
	}
	return float64(g.Hijacked) / float64(g.Nodes)
}

// IsPublic applies the §4.3.2 heuristic: nodes from more than two
// countries.
func (g *ResolverGroup) IsPublic() bool { return len(g.Countries) > 2 }

// DNSAnalysis is the full §4 analysis over a DNS dataset.
type DNSAnalysis struct {
	Cfg Config
	Geo *geo.Registry

	// Measured excludes shared-anycast-filtered nodes.
	Measured []*core.DNSObservation
	Filtered int

	// Groups maps resolver egress to its group.
	Groups map[netip.Addr]*ResolverGroup

	// Attribution per hijacked node.
	Attribution   map[HijackSource]int
	HijackedTotal int
}

// AnalyzeDNS runs grouping and attribution.
func AnalyzeDNS(cfg Config, reg *geo.Registry, ds *core.DNSDataset) *DNSAnalysis {
	a := &DNSAnalysis{
		Cfg: cfg, Geo: reg,
		Groups:      make(map[netip.Addr]*ResolverGroup),
		Attribution: make(map[HijackSource]int),
	}
	for _, o := range ds.Observations {
		if o.SharedAnycast {
			a.Filtered++
			continue
		}
		a.Measured = append(a.Measured, o)
		g := a.Groups[o.ResolverIP]
		if g == nil {
			g = &ResolverGroup{Addr: o.ResolverIP, Countries: make(map[geo.CountryCode]int), SameOrg: true}
			if asn, ok := reg.LookupAS(o.ResolverIP); ok {
				g.ASN = asn
				g.Org, _ = reg.Org(asn)
			}
			a.Groups[o.ResolverIP] = g
		}
		g.Nodes++
		g.Countries[o.Country]++
		if o.Hijacked {
			g.Hijacked++
			a.HijackedTotal++
		}
		nodeOrg, ok := reg.Org(o.ASN)
		if !ok || g.Org == nil || nodeOrg.ID != g.Org.ID {
			g.SameOrg = false
		}
	}
	for _, o := range a.Measured {
		if !o.Hijacked {
			continue
		}
		a.Attribution[a.attributeNode(o)]++
	}
	return a
}

// attributeNode decides who hijacked one node's response.
func (a *DNSAnalysis) attributeNode(o *core.DNSObservation) HijackSource {
	if geo.IsGoogleEgress(o.ResolverIP) {
		// Google is well known not to hijack (§4.3.3): the rewrite happened
		// on the path or on the host.
		return SourceOther
	}
	g := a.Groups[o.ResolverIP]
	nodeOrg, okN := a.Geo.Org(o.ASN)
	resOrg, okR := a.Geo.Org(g.ASN)
	if okN && okR && nodeOrg.ID == resOrg.ID {
		return SourceISPResolver
	}
	if g.IsPublic() {
		return SourcePublicResolver
	}
	// A resolver outside the node's ISP serving few countries: most are
	// regional ISP infrastructure shared across sibling orgs; the server
	// itself is still doing the rewriting when its ratio is high.
	if g.HijackRatio() >= HijackServerRatio {
		return SourceISPResolver
	}
	return SourceOther
}

// Summary reports the headline §4.2/§4.4 numbers.
type DNSSummary struct {
	MeasuredNodes   int
	FilteredAnycast int
	UniqueResolvers int
	Hijacked        int
	HijackPct       float64
	Countries       int
	ASes            int
	Attribution     map[HijackSource]int
}

// Summary computes the dataset-wide statistics.
func (a *DNSAnalysis) Summary() DNSSummary {
	countries := map[geo.CountryCode]bool{}
	ases := map[geo.ASN]bool{}
	for _, o := range a.Measured {
		countries[o.Country] = true
		ases[o.ASN] = true
	}
	s := DNSSummary{
		MeasuredNodes:   len(a.Measured),
		FilteredAnycast: a.Filtered,
		UniqueResolvers: len(a.Groups),
		Hijacked:        a.HijackedTotal,
		Countries:       len(countries),
		ASes:            len(ases),
		Attribution:     a.Attribution,
	}
	if s.MeasuredNodes > 0 {
		s.HijackPct = 100 * float64(s.Hijacked) / float64(s.MeasuredNodes)
	}
	return s
}

// Table3 ranks countries by hijacked ratio (≥ the scaled 100-node cutoff).
func (a *DNSAnalysis) Table3(topN int) *Table {
	type row struct {
		cc         geo.CountryCode
		hij, total int
	}
	byCC := map[geo.CountryCode]*row{}
	for _, o := range a.Measured {
		r := byCC[o.Country]
		if r == nil {
			r = &row{cc: o.Country}
			byCC[o.Country] = r
		}
		r.total++
		if o.Hijacked {
			r.hij++
		}
	}
	var rows []*row
	min := a.Cfg.MinNodesPerCountry()
	for _, r := range byCC {
		if r.total >= min {
			rows = append(rows, r)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		ri := float64(rows[i].hij) / float64(rows[i].total)
		rj := float64(rows[j].hij) / float64(rows[j].total)
		if ri != rj {
			return ri > rj
		}
		return rows[i].cc < rows[j].cc
	})
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	t := &Table{ID: "Table 3", Title: "Top countries by ratio of hijacked exit nodes",
		Headers: []string{"Rank", "Country", "Hijacked", "Total", "Ratio"}}
	for i, r := range rows {
		t.Rows = append(t.Rows, []string{
			itoa(i + 1), geo.CountryName(r.cc), itoa(r.hij), itoa(r.total), pct(r.hij, r.total),
		})
	}
	return t
}

// ISPHijackRow is one Table 4 entry.
type ISPHijackRow struct {
	Country geo.CountryCode
	ISP     string
	Servers int
	Nodes   int
}

// ISPHijackers identifies ISP-provided servers hijacking ≥90% of their
// nodes (§4.3.1), aggregated by organization.
func (a *DNSAnalysis) ISPHijackers() []ISPHijackRow {
	min := a.Cfg.MinNodesPerServer()
	type agg struct {
		row ISPHijackRow
	}
	byOrg := map[geo.OrgID]*agg{}
	for _, g := range a.Groups {
		if g.Org == nil || !g.SameOrg || g.Nodes < min || g.IsPublic() {
			continue
		}
		if g.HijackRatio() < HijackServerRatio {
			continue
		}
		ag := byOrg[g.Org.ID]
		if ag == nil {
			ag = &agg{row: ISPHijackRow{Country: g.Org.Country, ISP: g.Org.Name}}
			byOrg[g.Org.ID] = ag
		}
		ag.row.Servers++
		ag.row.Nodes += g.Nodes
	}
	rows := make([]ISPHijackRow, 0, len(byOrg))
	for _, ag := range byOrg {
		rows = append(rows, ag.row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Country != rows[j].Country {
			return rows[i].Country < rows[j].Country
		}
		return rows[i].ISP < rows[j].ISP
	})
	return rows
}

// Table4 renders the ISP hijacker list.
func (a *DNSAnalysis) Table4() *Table {
	t := &Table{ID: "Table 4", Title: "ISP DNS servers hijacking responses for >90% of exit nodes",
		Headers: []string{"Country", "ISP", "DNS Servers", "Exit Nodes"}}
	for _, r := range a.ISPHijackers() {
		t.Rows = append(t.Rows, []string{
			geo.CountryName(r.Country), r.ISP, itoa(r.Servers), itoa(r.Nodes),
		})
	}
	return t
}

// PublicResolverStats summarises §4.3.2.
type PublicResolverStats struct {
	PublicServers    int
	HijackingServers int
	HijackedNodes    int
	// Operators maps the owning organization of each hijacking server (by
	// BGP prefix ownership) to its server count.
	Operators map[string]int
}

// PublicResolvers applies the multi-country heuristic and the ≥90%
// criterion.
func (a *DNSAnalysis) PublicResolvers() PublicResolverStats {
	min := a.Cfg.MinNodesPerServer()
	st := PublicResolverStats{Operators: map[string]int{}}
	for _, g := range a.Groups {
		if g.Nodes < min || !g.IsPublic() || geo.IsGoogleEgress(g.Addr) {
			continue
		}
		st.PublicServers++
		if g.HijackRatio() >= HijackServerRatio {
			st.HijackingServers++
			st.HijackedNodes += g.Hijacked
			name := "(unknown)"
			if g.Org != nil {
				name = g.Org.Name
			}
			st.Operators[name]++
		}
	}
	return st
}

// Table5Row is one hijack-landing-domain entry for Google-DNS nodes.
type Table5Row struct {
	Domain string
	Nodes  int
	ASes   int
	// Software: spread over many ASes relative to nodes suggests end-host
	// software rather than an ISP path device (§4.3.3).
	Software bool
}

// Table5 analyses nodes hijacked despite using Google DNS: the landing
// domains in the content they received, with AS spread.
func (a *DNSAnalysis) Table5() ([]Table5Row, *Table) {
	type agg struct {
		nodes int
		ases  map[geo.ASN]bool
	}
	byDomain := map[string]*agg{}
	for _, o := range a.Measured {
		if !o.Hijacked || !geo.IsGoogleEgress(o.ResolverIP) {
			continue
		}
		for _, d := range o.LandingDomains {
			ag := byDomain[d]
			if ag == nil {
				ag = &agg{ases: map[geo.ASN]bool{}}
				byDomain[d] = ag
			}
			ag.nodes++
			ag.ases[o.ASN] = true
		}
	}
	var rows []Table5Row
	min := a.Cfg.MinRowNodes()
	for d, ag := range byDomain {
		if ag.nodes < min {
			continue
		}
		rows = append(rows, Table5Row{
			Domain: d, Nodes: ag.nodes, ASes: len(ag.ases),
			// Heuristic from §4.3.3: ISP path devices concentrate in 1–3
			// ASes; software spreads across many.
			Software: len(ag.ases) >= 4 && len(ag.ases)*2 >= ag.nodes,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Nodes != rows[j].Nodes {
			return rows[i].Nodes > rows[j].Nodes
		}
		return rows[i].Domain < rows[j].Domain
	})
	t := &Table{ID: "Table 5", Title: "Domains in hijacked responses of Google-DNS nodes",
		Headers: []string{"URL domain", "Exit Nodes", "ASes", "Likely source"}}
	for _, r := range rows {
		src := "ISP path device"
		if r.Software {
			src = "anti-virus/malware"
		}
		t.Rows = append(t.Rows, []string{r.Domain, itoa(r.Nodes), itoa(r.ASes), src})
	}
	return rows, t
}

// SharedApplianceISPs finds landing pages embedding the byte-identical
// redirect JavaScript block (§4.3.1's five-ISP finding).
func (a *DNSAnalysis) SharedApplianceISPs() []string {
	orgs := map[string]bool{}
	for _, o := range a.Measured {
		if !o.Hijacked || len(o.LandingBody) == 0 {
			continue
		}
		if !strings.Contains(string(o.LandingBody), middlebox.SharedRedirectJS) {
			continue
		}
		if org, ok := a.Geo.Org(o.ASN); ok {
			orgs[org.Name] = true
		}
	}
	out := make([]string, 0, len(orgs))
	for name := range orgs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ResolverStats summarises the resolver population the way §4.2/§4.3.1 do:
// total unique servers, servers above the observation threshold, and the
// ISP-provided subset (every observed node shares the server's
// organization).
type ResolverStats struct {
	TotalServers int
	// AboveThreshold servers were observed from at least the (scaled) ten
	// nodes the paper requires for statistical significance.
	AboveThreshold int
	// ISPServers is the ISP-provided subset (all sizes); ISPAboveThreshold
	// applies the node cutoff.
	ISPServers        int
	ISPAboveThreshold int
	// HijackingISP counts ISP servers above threshold with ≥90% hijacked.
	HijackingISP int
}

// ResolverStats computes the §4.2 server-population numbers.
func (a *DNSAnalysis) ResolverStats() ResolverStats {
	min := a.Cfg.MinNodesPerServer()
	var st ResolverStats
	for _, g := range a.Groups {
		st.TotalServers++
		if g.Nodes >= min {
			st.AboveThreshold++
		}
		if g.SameOrg && g.Org != nil && !g.IsPublic() {
			st.ISPServers++
			if g.Nodes >= min {
				st.ISPAboveThreshold++
				if g.HijackRatio() >= HijackServerRatio {
					st.HijackingISP++
				}
			}
		}
	}
	return st
}

// GoogleHeavyAS is an AS whose subscribers are pointed at Google DNS —
// footnote 9's finding (91 such ASes; OPT Benin at 99.1%).
type GoogleHeavyAS struct {
	ASN     geo.ASN
	Org     string
	Country geo.CountryCode
	Google  int
	Total   int
}

// Share is the AS's Google-DNS fraction.
func (g GoogleHeavyAS) Share() float64 {
	if g.Total == 0 {
		return 0
	}
	return float64(g.Google) / float64(g.Total)
}

// GoogleHeavyASes lists ASes (≥ the scaled server cutoff of nodes) where at
// least threshold of nodes resolve through Google.
func (a *DNSAnalysis) GoogleHeavyASes(threshold float64) []GoogleHeavyAS {
	type agg struct{ google, total int }
	byAS := map[geo.ASN]*agg{}
	for _, o := range a.Measured {
		ag := byAS[o.ASN]
		if ag == nil {
			ag = &agg{}
			byAS[o.ASN] = ag
		}
		ag.total++
		if geo.IsGoogleEgress(o.ResolverIP) {
			ag.google++
		}
	}
	min := a.Cfg.MinNodesPerServer()
	var out []GoogleHeavyAS
	for asn, ag := range byAS {
		if ag.total < min || float64(ag.google)/float64(ag.total) < threshold {
			continue
		}
		row := GoogleHeavyAS{ASN: asn, Google: ag.google, Total: ag.total}
		if org, ok := a.Geo.Org(asn); ok {
			row.Org = org.Name
			row.Country = org.Country
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := out[i].Share(), out[j].Share()
		if si != sj {
			return si > sj
		}
		return out[i].ASN < out[j].ASN
	})
	return out
}

// WaveRow is one longitudinal wave's summary row.
type WaveRow struct {
	Wave      int
	Measured  int
	Hijacked  int
	HijackPct float64
}

// TableLongitudinal renders a hijack-rate time series — the §9 continuous-
// measurement output.
func TableLongitudinal(rows []WaveRow) *Table {
	t := &Table{ID: "Longitudinal", Title: "NXDOMAIN hijacking over repeated weekly crawls (§9)",
		Headers: []string{"Wave", "Measured", "Hijacked", "Rate"}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{itoa(r.Wave), itoa(r.Measured), itoa(r.Hijacked),
			fmt.Sprintf("%.2f%%", r.HijackPct)})
	}
	return t
}
