package analysis

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"github.com/tftproject/tft/internal/core"
	"github.com/tftproject/tft/internal/geo"
	"github.com/tftproject/tft/internal/middlebox"
)

// HijackSource classifies who rewrote a node's NXDOMAIN (§4.3).
type HijackSource int

// The attribution classes of §4.4.
const (
	// SourceISPResolver: the node's ISP-operated DNS server.
	SourceISPResolver HijackSource = iota
	// SourcePublicResolver: a public resolver used from many countries.
	SourcePublicResolver
	// SourceOther: on-path middlebox or end-host software — the node's
	// resolver (often Google) is known honest, yet the answer was rewritten.
	SourceOther
)

// String names the source.
func (s HijackSource) String() string {
	switch s {
	case SourceISPResolver:
		return "ISP DNS server"
	case SourcePublicResolver:
		return "public DNS server"
	case SourceOther:
		return "middlebox/software"
	}
	return fmt.Sprintf("HijackSource(%d)", int(s))
}

// ResolverGroup aggregates the nodes observed behind one resolver egress.
type ResolverGroup struct {
	Addr      netip.Addr
	ASN       geo.ASN
	Org       *geo.Organization
	Nodes     int
	Hijacked  int
	Countries map[geo.CountryCode]int
	// SameOrg: every node's organization matches the resolver's.
	SameOrg bool
}

// HijackRatio is the group's hijacked fraction.
func (g *ResolverGroup) HijackRatio() float64 {
	if g.Nodes == 0 {
		return 0
	}
	return float64(g.Hijacked) / float64(g.Nodes)
}

// IsPublic applies the §4.3.2 heuristic: nodes from more than two
// countries.
func (g *ResolverGroup) IsPublic() bool { return len(g.Countries) > 2 }

// DNSAnalysis is the full §4 analysis over a DNS dataset. It is a
// streaming aggregate: observations feed in one at a time through Observe
// and are reduced immediately into fixed-size tallies, so analysing a
// paper-scale crawl never retains the observations themselves. Partial
// aggregates built on separate worker shards combine with Merge; every
// summary and table is identical whether the observations arrived in one
// stream or were sharded K ways, because each tally is a commutative sum
// and attribution is deferred until the merged resolver groups are known.
type DNSAnalysis struct {
	Cfg Config
	Geo *geo.Registry

	// MeasuredNodes counts observations kept; Filtered counts the
	// shared-anycast-excluded ones.
	MeasuredNodes int
	Filtered      int

	// Groups maps resolver egress to its group.
	Groups map[netip.Addr]*ResolverGroup

	// Attribution per hijacked node. Populated by Finalize (AnalyzeDNS,
	// Summary, and the table builders call it implicitly).
	Attribution   map[HijackSource]int
	HijackedTotal int

	byCC           map[geo.CountryCode]*ccTally
	byAS           map[geo.ASN]*asTally
	googleLandings map[string]*landingTally
	sharedOrgs     map[string]bool
	// hijacked retains, per hijacked node, only what attribution needs:
	// attribution depends on the *globally merged* resolver groups (a
	// resolver's multi-country spread may only appear after Merge), so it
	// cannot be decided per observation.
	hijacked []hijackRef
	final    bool
}

type ccTally struct{ total, hijacked int }

type asTally struct{ total, google int }

type landingTally struct {
	nodes int
	ases  map[geo.ASN]bool
}

type hijackRef struct {
	resolver netip.Addr
	asn      geo.ASN
}

// NewDNSAnalysis creates an empty streaming aggregate. Observe is not safe
// for concurrent use; sharded crawls build one aggregate per shard and
// Merge them.
func NewDNSAnalysis(cfg Config, reg *geo.Registry) *DNSAnalysis {
	return &DNSAnalysis{
		Cfg: cfg, Geo: reg,
		Groups:         make(map[netip.Addr]*ResolverGroup),
		Attribution:    make(map[HijackSource]int),
		byCC:           make(map[geo.CountryCode]*ccTally),
		byAS:           make(map[geo.ASN]*asTally),
		googleLandings: make(map[string]*landingTally),
		sharedOrgs:     make(map[string]bool),
	}
}

// AnalyzeDNS runs grouping and attribution over a fully materialized
// dataset — the convenience path for in-memory runs.
func AnalyzeDNS(cfg Config, reg *geo.Registry, ds *core.DNSDataset) *DNSAnalysis {
	a := NewDNSAnalysis(cfg, reg)
	for _, o := range ds.Observations {
		a.Observe(o)
	}
	a.Finalize()
	return a
}

// Observe folds one observation into the aggregate. The observation is not
// retained.
func (a *DNSAnalysis) Observe(o *core.DNSObservation) {
	a.final = false
	if o.SharedAnycast {
		a.Filtered++
		return
	}
	a.MeasuredNodes++
	g := a.Groups[o.ResolverIP]
	if g == nil {
		g = &ResolverGroup{Addr: o.ResolverIP, Countries: make(map[geo.CountryCode]int), SameOrg: true}
		if asn, ok := a.Geo.LookupAS(o.ResolverIP); ok {
			g.ASN = asn
			g.Org, _ = a.Geo.Org(asn)
		}
		a.Groups[o.ResolverIP] = g
	}
	g.Nodes++
	g.Countries[o.Country]++
	if o.Hijacked {
		g.Hijacked++
	}
	nodeOrg, ok := a.Geo.Org(o.ASN)
	if !ok || g.Org == nil || nodeOrg.ID != g.Org.ID {
		g.SameOrg = false
	}

	cc := a.byCC[o.Country]
	if cc == nil {
		cc = &ccTally{}
		a.byCC[o.Country] = cc
	}
	cc.total++
	as := a.byAS[o.ASN]
	if as == nil {
		as = &asTally{}
		a.byAS[o.ASN] = as
	}
	as.total++
	if geo.IsGoogleEgress(o.ResolverIP) {
		as.google++
	}

	if !o.Hijacked {
		return
	}
	cc.hijacked++
	a.hijacked = append(a.hijacked, hijackRef{resolver: o.ResolverIP, asn: o.ASN})
	if geo.IsGoogleEgress(o.ResolverIP) {
		for _, d := range o.LandingDomains {
			lt := a.googleLandings[d]
			if lt == nil {
				lt = &landingTally{ases: map[geo.ASN]bool{}}
				a.googleLandings[d] = lt
			}
			lt.nodes++
			lt.ases[o.ASN] = true
		}
	}
	if len(o.LandingBody) > 0 && strings.Contains(string(o.LandingBody), middlebox.SharedRedirectJS) {
		if org, ok := a.Geo.Org(o.ASN); ok {
			a.sharedOrgs[org.Name] = true
		}
	}
}

// Merge folds another shard's partial aggregate into a. Both must share
// the same Config and geo registry; b must not be used afterwards. Every
// tally is a commutative sum, so merging K shard partials in any order
// equals analysing the concatenated stream.
func (a *DNSAnalysis) Merge(b *DNSAnalysis) {
	a.final = false
	a.MeasuredNodes += b.MeasuredNodes
	a.Filtered += b.Filtered
	for addr, gb := range b.Groups {
		g := a.Groups[addr]
		if g == nil {
			a.Groups[addr] = gb
			continue
		}
		g.Nodes += gb.Nodes
		g.Hijacked += gb.Hijacked
		for cc, n := range gb.Countries {
			g.Countries[cc] += n
		}
		g.SameOrg = g.SameOrg && gb.SameOrg
	}
	for cc, tb := range b.byCC {
		t := a.byCC[cc]
		if t == nil {
			a.byCC[cc] = tb
			continue
		}
		t.total += tb.total
		t.hijacked += tb.hijacked
	}
	for asn, tb := range b.byAS {
		t := a.byAS[asn]
		if t == nil {
			a.byAS[asn] = tb
			continue
		}
		t.total += tb.total
		t.google += tb.google
	}
	for d, lb := range b.googleLandings {
		lt := a.googleLandings[d]
		if lt == nil {
			a.googleLandings[d] = lb
			continue
		}
		lt.nodes += lb.nodes
		for asn := range lb.ases {
			lt.ases[asn] = true
		}
	}
	for org := range b.sharedOrgs {
		a.sharedOrgs[org] = true
	}
	a.hijacked = append(a.hijacked, b.hijacked...)
}

// Finalize computes the attribution split from the merged resolver groups.
// Idempotent; Summary and the table builders call it implicitly, so
// explicit calls are only needed before reading the Attribution field
// directly.
func (a *DNSAnalysis) Finalize() {
	if a.final {
		return
	}
	a.final = true
	a.HijackedTotal = len(a.hijacked)
	a.Attribution = make(map[HijackSource]int)
	for _, h := range a.hijacked {
		a.Attribution[a.attributeNode(h)]++
	}
}

// attributeNode decides who hijacked one node's response.
func (a *DNSAnalysis) attributeNode(h hijackRef) HijackSource {
	if geo.IsGoogleEgress(h.resolver) {
		// Google is well known not to hijack (§4.3.3): the rewrite happened
		// on the path or on the host.
		return SourceOther
	}
	g := a.Groups[h.resolver]
	nodeOrg, okN := a.Geo.Org(h.asn)
	resOrg, okR := a.Geo.Org(g.ASN)
	if okN && okR && nodeOrg.ID == resOrg.ID {
		return SourceISPResolver
	}
	if g.IsPublic() {
		return SourcePublicResolver
	}
	// A resolver outside the node's ISP serving few countries: most are
	// regional ISP infrastructure shared across sibling orgs; the server
	// itself is still doing the rewriting when its ratio is high.
	if g.HijackRatio() >= HijackServerRatio {
		return SourceISPResolver
	}
	return SourceOther
}

// Summary reports the headline §4.2/§4.4 numbers.
type DNSSummary struct {
	MeasuredNodes   int
	FilteredAnycast int
	UniqueResolvers int
	Hijacked        int
	HijackPct       float64
	Countries       int
	ASes            int
	Attribution     map[HijackSource]int
}

// Summary computes the dataset-wide statistics.
func (a *DNSAnalysis) Summary() DNSSummary {
	a.Finalize()
	s := DNSSummary{
		MeasuredNodes:   a.MeasuredNodes,
		FilteredAnycast: a.Filtered,
		UniqueResolvers: len(a.Groups),
		Hijacked:        a.HijackedTotal,
		Countries:       len(a.byCC),
		ASes:            len(a.byAS),
		Attribution:     a.Attribution,
	}
	if s.MeasuredNodes > 0 {
		s.HijackPct = 100 * float64(s.Hijacked) / float64(s.MeasuredNodes)
	}
	return s
}

// Table3Row is one country's hijack tally.
type Table3Row struct {
	Country  geo.CountryCode
	Hijacked int
	Total    int
}

// Ratio is the country's hijacked fraction.
func (r Table3Row) Ratio() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Hijacked) / float64(r.Total)
}

// Table3 ranks countries by hijacked ratio (≥ the scaled 100-node cutoff),
// returning the typed rows alongside the rendered table.
func (a *DNSAnalysis) Table3(topN int) ([]Table3Row, *Table) {
	a.Finalize()
	var rows []Table3Row
	min := a.Cfg.MinNodesPerCountry()
	for cc, ct := range a.byCC {
		if ct.total >= min {
			rows = append(rows, Table3Row{Country: cc, Hijacked: ct.hijacked, Total: ct.total})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		ri, rj := rows[i].Ratio(), rows[j].Ratio()
		if ri != rj {
			return ri > rj
		}
		return rows[i].Country < rows[j].Country
	})
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	t := &Table{ID: "Table 3", Title: "Top countries by ratio of hijacked exit nodes",
		Headers: []string{"Rank", "Country", "Hijacked", "Total", "Ratio"}}
	for i, r := range rows {
		t.Rows = append(t.Rows, []string{
			itoa(i + 1), geo.CountryName(r.Country), itoa(r.Hijacked), itoa(r.Total), pct(r.Hijacked, r.Total),
		})
	}
	return rows, t
}

// ISPHijackRow is one Table 4 entry.
type ISPHijackRow struct {
	Country geo.CountryCode
	ISP     string
	Servers int
	Nodes   int
}

// ISPHijackers identifies ISP-provided servers hijacking ≥90% of their
// nodes (§4.3.1), aggregated by organization.
func (a *DNSAnalysis) ISPHijackers() []ISPHijackRow {
	min := a.Cfg.MinNodesPerServer()
	type agg struct {
		row ISPHijackRow
	}
	byOrg := map[geo.OrgID]*agg{}
	for _, g := range a.Groups {
		if g.Org == nil || !g.SameOrg || g.Nodes < min || g.IsPublic() {
			continue
		}
		if g.HijackRatio() < HijackServerRatio {
			continue
		}
		ag := byOrg[g.Org.ID]
		if ag == nil {
			ag = &agg{row: ISPHijackRow{Country: g.Org.Country, ISP: g.Org.Name}}
			byOrg[g.Org.ID] = ag
		}
		ag.row.Servers++
		ag.row.Nodes += g.Nodes
	}
	rows := make([]ISPHijackRow, 0, len(byOrg))
	for _, ag := range byOrg {
		rows = append(rows, ag.row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Country != rows[j].Country {
			return rows[i].Country < rows[j].Country
		}
		return rows[i].ISP < rows[j].ISP
	})
	return rows
}

// Table4 renders the ISP hijacker list, returning the typed rows alongside
// the rendered table.
func (a *DNSAnalysis) Table4() ([]ISPHijackRow, *Table) {
	rows := a.ISPHijackers()
	t := &Table{ID: "Table 4", Title: "ISP DNS servers hijacking responses for >90% of exit nodes",
		Headers: []string{"Country", "ISP", "DNS Servers", "Exit Nodes"}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			geo.CountryName(r.Country), r.ISP, itoa(r.Servers), itoa(r.Nodes),
		})
	}
	return rows, t
}

// PublicResolverStats summarises §4.3.2.
type PublicResolverStats struct {
	PublicServers    int
	HijackingServers int
	HijackedNodes    int
	// Operators maps the owning organization of each hijacking server (by
	// BGP prefix ownership) to its server count.
	Operators map[string]int
}

// PublicResolvers applies the multi-country heuristic and the ≥90%
// criterion.
func (a *DNSAnalysis) PublicResolvers() PublicResolverStats {
	min := a.Cfg.MinNodesPerServer()
	st := PublicResolverStats{Operators: map[string]int{}}
	for _, g := range a.Groups {
		if g.Nodes < min || !g.IsPublic() || geo.IsGoogleEgress(g.Addr) {
			continue
		}
		st.PublicServers++
		if g.HijackRatio() >= HijackServerRatio {
			st.HijackingServers++
			st.HijackedNodes += g.Hijacked
			name := "(unknown)"
			if g.Org != nil {
				name = g.Org.Name
			}
			st.Operators[name]++
		}
	}
	return st
}

// Table5Row is one hijack-landing-domain entry for Google-DNS nodes.
type Table5Row struct {
	Domain string
	Nodes  int
	ASes   int
	// Software: spread over many ASes relative to nodes suggests end-host
	// software rather than an ISP path device (§4.3.3).
	Software bool
}

// Table5 analyses nodes hijacked despite using Google DNS: the landing
// domains in the content they received, with AS spread.
func (a *DNSAnalysis) Table5() ([]Table5Row, *Table) {
	a.Finalize()
	var rows []Table5Row
	min := a.Cfg.MinRowNodes()
	for d, ag := range a.googleLandings {
		if ag.nodes < min {
			continue
		}
		rows = append(rows, Table5Row{
			Domain: d, Nodes: ag.nodes, ASes: len(ag.ases),
			// Heuristic from §4.3.3: ISP path devices concentrate in 1–3
			// ASes; software spreads across many.
			Software: len(ag.ases) >= 4 && len(ag.ases)*2 >= ag.nodes,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Nodes != rows[j].Nodes {
			return rows[i].Nodes > rows[j].Nodes
		}
		return rows[i].Domain < rows[j].Domain
	})
	t := &Table{ID: "Table 5", Title: "Domains in hijacked responses of Google-DNS nodes",
		Headers: []string{"URL domain", "Exit Nodes", "ASes", "Likely source"}}
	for _, r := range rows {
		src := "ISP path device"
		if r.Software {
			src = "anti-virus/malware"
		}
		t.Rows = append(t.Rows, []string{r.Domain, itoa(r.Nodes), itoa(r.ASes), src})
	}
	return rows, t
}

// SharedApplianceISPs finds landing pages embedding the byte-identical
// redirect JavaScript block (§4.3.1's five-ISP finding). The fingerprint
// match happens at Observe time, so the landing bodies are never retained.
func (a *DNSAnalysis) SharedApplianceISPs() []string {
	out := make([]string, 0, len(a.sharedOrgs))
	for name := range a.sharedOrgs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ResolverStats summarises the resolver population the way §4.2/§4.3.1 do:
// total unique servers, servers above the observation threshold, and the
// ISP-provided subset (every observed node shares the server's
// organization).
type ResolverStats struct {
	TotalServers int
	// AboveThreshold servers were observed from at least the (scaled) ten
	// nodes the paper requires for statistical significance.
	AboveThreshold int
	// ISPServers is the ISP-provided subset (all sizes); ISPAboveThreshold
	// applies the node cutoff.
	ISPServers        int
	ISPAboveThreshold int
	// HijackingISP counts ISP servers above threshold with ≥90% hijacked.
	HijackingISP int
}

// ResolverStats computes the §4.2 server-population numbers.
func (a *DNSAnalysis) ResolverStats() ResolverStats {
	min := a.Cfg.MinNodesPerServer()
	var st ResolverStats
	for _, g := range a.Groups {
		st.TotalServers++
		if g.Nodes >= min {
			st.AboveThreshold++
		}
		if g.SameOrg && g.Org != nil && !g.IsPublic() {
			st.ISPServers++
			if g.Nodes >= min {
				st.ISPAboveThreshold++
				if g.HijackRatio() >= HijackServerRatio {
					st.HijackingISP++
				}
			}
		}
	}
	return st
}

// GoogleHeavyAS is an AS whose subscribers are pointed at Google DNS —
// footnote 9's finding (91 such ASes; OPT Benin at 99.1%).
type GoogleHeavyAS struct {
	ASN     geo.ASN
	Org     string
	Country geo.CountryCode
	Google  int
	Total   int
}

// Share is the AS's Google-DNS fraction.
func (g GoogleHeavyAS) Share() float64 {
	if g.Total == 0 {
		return 0
	}
	return float64(g.Google) / float64(g.Total)
}

// GoogleHeavyASes lists ASes (≥ the scaled server cutoff of nodes) where at
// least threshold of nodes resolve through Google.
func (a *DNSAnalysis) GoogleHeavyASes(threshold float64) []GoogleHeavyAS {
	min := a.Cfg.MinNodesPerServer()
	var out []GoogleHeavyAS
	for asn, ag := range a.byAS {
		if ag.total < min || float64(ag.google)/float64(ag.total) < threshold {
			continue
		}
		row := GoogleHeavyAS{ASN: asn, Google: ag.google, Total: ag.total}
		if org, ok := a.Geo.Org(asn); ok {
			row.Org = org.Name
			row.Country = org.Country
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := out[i].Share(), out[j].Share()
		if si != sj {
			return si > sj
		}
		return out[i].ASN < out[j].ASN
	})
	return out
}

// WaveRow is one longitudinal wave's summary row.
type WaveRow struct {
	Wave      int
	Measured  int
	Hijacked  int
	HijackPct float64
}

// TableLongitudinal renders a hijack-rate time series — the §9 continuous-
// measurement output.
func TableLongitudinal(rows []WaveRow) *Table {
	t := &Table{ID: "Longitudinal", Title: "NXDOMAIN hijacking over repeated weekly crawls (§9)",
		Headers: []string{"Wave", "Measured", "Hijacked", "Rate"}}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{itoa(r.Wave), itoa(r.Measured), itoa(r.Hijacked),
			fmt.Sprintf("%.2f%%", r.HijackPct)})
	}
	return t
}
