package analysis

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/tftproject/tft/internal/core"
)

func TestSMTPSummaryAndTable(t *testing.T) {
	r, asns := testGeo(t)
	ds := &core.SMTPDataset{}
	// A blocking AS: 10 nodes, all blocked.
	for i := 0; i < 10; i++ {
		ds.Observations = append(ds.Observations, &core.SMTPObservation{
			ZID: fmt.Sprintf("zb%d", i), ASN: asns["tmnet"], Country: "MY", Blocked: true,
		})
	}
	// A stripping AS: 6 nodes without STARTTLS.
	for i := 0; i < 6; i++ {
		ds.Observations = append(ds.Observations, &core.SMTPObservation{
			ZID: fmt.Sprintf("zs%d", i), ASN: asns["mobile"], Country: "PH",
			Banner: "mail ok", StartTLS: false,
		})
	}
	// Clean nodes.
	for i := 0; i < 84; i++ {
		ds.Observations = append(ds.Observations, &core.SMTPObservation{
			ZID: fmt.Sprintf("zc%d", i), ASN: asns["cleanisp"], Country: "DE",
			Banner: "mail ok", StartTLS: true,
		})
	}
	a := AnalyzeSMTP(Config{Scale: 0.5}, r, ds)
	s := a.Summary()
	if s.Blocked != 10 || s.Stripped != 6 || s.MeasuredNodes != 100 {
		t.Fatalf("summary = %+v", s)
	}
	if s.StripperASes != 1 {
		t.Fatalf("stripper ASes = %d", s.StripperASes)
	}
	rows, tbl := a.TableSMTP()
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Kind != "port-25 blocked" || rows[0].Affected != 10 {
		t.Fatalf("row0 = %+v", rows[0])
	}
	if rows[1].Kind != "STARTTLS stripped" || rows[1].ISP != "Globe Telecom" {
		t.Fatalf("row1 = %+v", rows[1])
	}
	if !strings.Contains(tbl.String(), "STARTTLS stripped") {
		t.Fatal("render missing violation")
	}
}

func TestPlotCDFs(t *testing.T) {
	var tm, bc []time.Duration
	for i := 0; i < 50; i++ {
		tm = append(tm, time.Duration(12+i*2)*time.Second)
		tm = append(tm, time.Duration(200+i*200)*time.Second)
		if i < 20 {
			bc = append(bc, -time.Duration(i+1)*100*time.Millisecond)
		} else {
			bc = append(bc, time.Duration(i)*time.Second)
		}
	}
	plot := PlotCDFs([]CDF{NewCDF("Trend Micro", tm), NewCDF("Bluecoat", bc)}, 72, 14)
	if !strings.Contains(plot, "Trend Micro") || !strings.Contains(plot, "Bluecoat") {
		t.Fatalf("legend missing:\n%s", plot)
	}
	if !strings.Contains(plot, "40% negative") {
		t.Fatalf("negative share missing:\n%s", plot)
	}
	// The Bluecoat curve must start above the bottom row: its mark appears
	// in the leftmost column somewhere above y=0.
	lines := strings.Split(plot, "\n")
	foundElevatedStart := false
	for _, l := range lines {
		if strings.HasPrefix(l, " 0.4") && strings.Contains(l, "K") {
			foundElevatedStart = true
		}
	}
	if !foundElevatedStart {
		t.Fatalf("Bluecoat curve does not start elevated:\n%s", plot)
	}
	// Axis labels present.
	if !strings.Contains(plot, "1s") || !strings.Contains(plot, "3h") {
		t.Fatalf("axis labels missing:\n%s", plot)
	}
}

func TestPlotCDFsEmpty(t *testing.T) {
	plot := PlotCDFs(nil, 0, 0)
	if !strings.Contains(plot, "Figure 5") {
		t.Fatal("empty plot broken")
	}
}
