package analysis

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// PlotCDFs renders a set of delay CDFs as an ASCII chart with a log-scaled
// x axis — the textual rendition of the paper's Figure 5. Negative delays
// (Bluecoat's pre-fetches) lift a curve's starting height above zero, the
// "CDF starts at 41%" effect.
func PlotCDFs(cdfs []CDF, width, height int) string {
	if width < 20 {
		width = 72
	}
	if height < 5 {
		height = 16
	}
	// X axis spans 100ms..10h in log space, matching Figure 5's range.
	minX, maxX := 0.1, 36_000.0 // seconds
	logMin, logMax := math.Log10(minX), math.Log10(maxX)

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := "TKCAB5123467890" // one rune per curve
	var legend strings.Builder

	for ci, c := range cdfs {
		if len(c.Samples) == 0 {
			continue
		}
		mark := marks[ci%len(marks)]
		fmt.Fprintf(&legend, "  %c = %s (%d samples, %.0f%% negative)\n",
			mark, c.Name, len(c.Samples), 100*c.NegativeShare())
		for col := 0; col < width; col++ {
			x := math.Pow(10, logMin+(logMax-logMin)*float64(col)/float64(width-1))
			y := c.At(time.Duration(x * float64(time.Second)))
			row := height - 1 - int(y*float64(height-1)+0.5)
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = mark
		}
	}

	var sb strings.Builder
	sb.WriteString("Figure 5: CDF of delay between exit-node request and unexpected request\n")
	for i, row := range grid {
		yVal := 1 - float64(i)/float64(height-1)
		fmt.Fprintf(&sb, "%4.1f |%s\n", yVal, string(row))
	}
	sb.WriteString("     +" + strings.Repeat("-", width) + "\n")
	// X tick labels at decade boundaries.
	ticks := "      "
	lastEnd := 0
	for d := math.Ceil(logMin); d <= logMax; d++ {
		col := int((d - logMin) / (logMax - logMin) * float64(width-1))
		label := humanSeconds(math.Pow(10, d))
		if col > lastEnd {
			ticks += strings.Repeat(" ", col-lastEnd) + label
			lastEnd = col + len(label)
		}
	}
	sb.WriteString(ticks + "\n")
	sb.WriteString(legend.String())
	return sb.String()
}

func humanSeconds(s float64) string {
	switch {
	case s < 1:
		return fmt.Sprintf("%.0fms", s*1000)
	case s < 60:
		return fmt.Sprintf("%.0fs", s)
	case s < 3600:
		return fmt.Sprintf("%.0fm", s/60)
	default:
		return fmt.Sprintf("%.0fh", s/3600)
	}
}
