// Package trace is the request-level half of the repository's
// observability substrate (the aggregate half is internal/metrics): a
// lightweight span tracer that records what happened to one request as it
// crossed the proxy chain — client → super proxy attempt(s) → exit node →
// resolver/origin.
//
// The design mirrors the paper's own debugging surface: Luminati's
// X-Hola-Timeline-Debug header (§2.3) exposes which exit node served a
// request and what was retried, and every attribution technique in §4–§6
// leans on that per-request visibility. A Span is the structured form of
// one hop of that timeline; a trace tree is the whole timeline.
//
// Like metrics.Registry, everything is nil-safe: a nil *Tracer hands out
// nil *Spans whose methods are no-ops, so instrumented code paths never
// branch on "is tracing enabled". Timestamps come from a caller-supplied
// clock function (the simnet virtual clock in simulated worlds, the wall
// clock in the cmd/ daemons), so full-scale simulated crawls produce spans
// whose durations reflect virtual time.
package trace

import (
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one request's whole span tree.
type TraceID uint64

// SpanID identifies one span within a trace.
type SpanID uint64

// String renders the ID as fixed-width hex (the header/export form).
func (t TraceID) String() string { return hex16(uint64(t)) }

// String renders the ID as fixed-width hex.
func (s SpanID) String() string { return hex16(uint64(s)) }

const hexDigits = "0123456789abcdef"

// hex16 renders v as 16 lowercase hex digits in a single allocation —
// String() runs once per log record and twice per propagated header, where
// fmt.Sprintf("%016x") costs three.
func hex16(v uint64) string {
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// appendHex16 appends v as 16 lowercase hex digits.
func appendHex16(b []byte, v uint64) []byte {
	var h [16]byte
	for i := 15; i >= 0; i-- {
		h[i] = hexDigits[v&0xf]
		v >>= 4
	}
	return append(b, h[:]...)
}

// MarshalJSON renders the ID as a quoted hex string.
func (t TraceID) MarshalJSON() ([]byte, error) { return []byte(`"` + t.String() + `"`), nil }

// MarshalJSON renders the ID as a quoted hex string.
func (s SpanID) MarshalJSON() ([]byte, error) { return []byte(`"` + s.String() + `"`), nil }

// UnmarshalJSON parses the quoted hex form.
func (t *TraceID) UnmarshalJSON(b []byte) error {
	v, err := unhexJSON(b)
	*t = TraceID(v)
	return err
}

// UnmarshalJSON parses the quoted hex form.
func (s *SpanID) UnmarshalJSON(b []byte) error {
	v, err := unhexJSON(b)
	*s = SpanID(v)
	return err
}

func unhexJSON(b []byte) (uint64, error) {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return 0, fmt.Errorf("trace: malformed id %q", b)
	}
	return strconv.ParseUint(string(b[1:len(b)-1]), 16, 64)
}

// SpanContext is the propagated part of a span: enough for a downstream
// hop (another goroutine, another process) to parent its own spans.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool { return sc.Trace != 0 && sc.Span != 0 }

// Kind classifies a span by the hop that produced it — the /traces
// endpoint's primary filter.
type Kind string

// The proxy chain's span vocabulary.
const (
	// KindClient: a measurement client's root probe span.
	KindClient Kind = "client"
	// KindProxy: the super proxy's server-side request span.
	KindProxy Kind = "superproxy"
	// KindAttempt: one exit-node try within a proxied request (the
	// structured form of one entry in the X-Hola-Timeline-Debug retry
	// chain).
	KindAttempt Kind = "attempt"
	// KindDNS: a DNS resolution, at the super proxy or on the exit node.
	KindDNS Kind = "dns"
	// KindFetch: the exit node's origin fetch.
	KindFetch Kind = "fetch"
	// KindTunnel: the exit node's CONNECT tunnel data phase.
	KindTunnel Kind = "tunnel"
)

// Kinds lists the span vocabulary in chain order — the /traces endpoint's
// filter validation and usage text iterate this instead of hard-coding the
// names.
func Kinds() []Kind {
	return []Kind{KindClient, KindProxy, KindAttempt, KindDNS, KindFetch, KindTunnel}
}

// ValidKind reports whether k is part of the span vocabulary.
func ValidKind(k Kind) bool {
	for _, v := range Kinds() {
		if v == k {
			return true
		}
	}
	return false
}

// attrKind discriminates the typed value fields of an Attr.
type attrKind uint8

const (
	attrString attrKind = iota
	attrInt
	attrBool
)

// Attr is one typed span attribute. The value lives in typed fields rather
// than an interface so that building an attribute on the hot path never
// allocates; MarshalJSON preserves the {"key":K,"value":V} wire form.
type Attr struct {
	Key  string
	kind attrKind
	str  string
	num  int64
}

// Str builds a string attribute.
func Str(key, value string) Attr { return Attr{Key: key, kind: attrString, str: value} }

// Int builds an integer attribute.
func Int(key string, value int64) Attr { return Attr{Key: key, kind: attrInt, num: value} }

// Bool builds a boolean attribute.
func Bool(key string, value bool) Attr {
	var n int64
	if value {
		n = 1
	}
	return Attr{Key: key, kind: attrBool, num: n}
}

// Value returns the attribute's value boxed as any — for exporters and
// generic inspection; hot paths stay on the typed fields.
func (a Attr) Value() any {
	switch a.kind {
	case attrInt:
		return a.num
	case attrBool:
		return a.num != 0
	default:
		return a.str
	}
}

// MarshalJSON renders the attribute as {"key":K,"value":V}, the same shape
// the interface-valued struct produced.
func (a Attr) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, len(a.Key)+len(a.str)+24)
	b = append(b, `{"key":`...)
	b = appendJSONString(b, a.Key)
	b = append(b, `,"value":`...)
	switch a.kind {
	case attrInt:
		b = strconv.AppendInt(b, a.num, 10)
	case attrBool:
		b = strconv.AppendBool(b, a.num != 0)
	default:
		b = appendJSONString(b, a.str)
	}
	return append(b, '}'), nil
}

// UnmarshalJSON parses the {"key":K,"value":V} wire form back into the
// typed fields, inferring the kind from the JSON value shape.
func (a *Attr) UnmarshalJSON(b []byte) error {
	var raw struct {
		Key   string          `json:"key"`
		Value json.RawMessage `json:"value"`
	}
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	a.Key = raw.Key
	v := string(raw.Value)
	switch {
	case len(v) > 0 && v[0] == '"':
		a.kind = attrString
		return json.Unmarshal(raw.Value, &a.str)
	case v == "true" || v == "false":
		a.kind = attrBool
		a.num = 0
		if v == "true" {
			a.num = 1
		}
		return nil
	default:
		a.kind = attrInt
		return json.Unmarshal(raw.Value, &a.num)
	}
}

// appendJSONString appends s as a JSON string. The fast path covers plain
// printable ASCII; anything needing escapes defers to encoding/json so the
// escaping rules match the rest of the document.
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x7f || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			enc, _ := json.Marshal(s)
			return append(b, enc...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// SpanData is a span's frozen state: what the collector retains and the
// exporters serialize.
type SpanData struct {
	TraceID TraceID   `json:"trace_id"`
	SpanID  SpanID    `json:"span_id"`
	Parent  SpanID    `json:"parent_id,omitempty"`
	Name    string    `json:"name"`
	Kind    Kind      `json:"kind"`
	Start   time.Time `json:"start"`
	End     time.Time `json:"end"`
	Err     string    `json:"error,omitempty"`
	Attrs   []Attr    `json:"attrs,omitempty"`
}

// Attr returns the named attribute's value ("" / nil when absent).
func (d *SpanData) Attr(key string) any {
	for _, a := range d.Attrs {
		if a.Key == key {
			return a.Value()
		}
	}
	return nil
}

// Str returns the named attribute as a string ("" when absent or not a
// string). It reads the typed field directly, so lookups never box.
func (d *SpanData) Str(key string) string {
	for _, a := range d.Attrs {
		if a.Key == key && a.kind == attrString {
			return a.str
		}
	}
	return ""
}

// Context returns the span's propagation context.
func (d *SpanData) Context() SpanContext {
	return SpanContext{Trace: d.TraceID, Span: d.SpanID}
}

// Duration is the span's elapsed time on its tracer's clock.
func (d *SpanData) Duration() time.Duration { return d.End.Sub(d.Start) }

// Span is one in-flight operation. Created by a Tracer, finished with End,
// at which point its frozen SpanData enters the tracer's collector. All
// methods are safe on a nil receiver and for concurrent use.
type Span struct {
	tracer *Tracer

	mu    sync.Mutex
	data  SpanData
	ended bool
}

// Context returns the span's propagation context (zero for a nil span, so
// child spans of an untraced request become roots of their own traces).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.data.TraceID, Span: s.data.SpanID}
}

// SetAttrs appends attributes to the span.
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.data.Attrs = append(s.data.Attrs, attrs...)
	s.mu.Unlock()
}

// SetError marks the span failed. The last non-empty message wins.
func (s *Span) SetError(msg string) {
	if s == nil || msg == "" {
		return
	}
	s.mu.Lock()
	s.data.Err = msg
	s.mu.Unlock()
}

// End closes the span, stamping the end time and handing the frozen data
// to the collector. Idempotent: only the first End records.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.End = s.tracer.now()
	data := s.data
	s.mu.Unlock()
	s.tracer.collect(data)
}

// defaultCapacity bounds a tracer's span memory: roughly one default-scale
// crawl's worth of request trees, small enough to cap a long-lived
// daemon's footprint.
const defaultCapacity = 16384

// lastID hands out process-unique span and trace IDs. A single counter
// shared by every tracer keeps IDs unique even when several worlds (the
// all-experiments campaign) trace concurrently.
var lastID atomic.Uint64

func newID() uint64 { return lastID.Add(1) }

// Tracer creates spans and retains finished ones in a fixed-capacity ring
// (oldest spans are overwritten once the ring wraps; Total reports how
// many were ever recorded). A nil *Tracer is a valid no-op sink.
type Tracer struct {
	nowFn func() time.Time

	mu    sync.Mutex
	buf   []SpanData
	total int64
}

// New creates a tracer. now supplies timestamps (nil means the wall
// clock); capacity bounds the collector (<= 0 means the default 16384).
func New(now func() time.Time, capacity int) *Tracer {
	if now == nil {
		//tftlint:ignore simclock -- documented fallback timebase when no clock is injected; simulated runs always inject the virtual clock
		now = time.Now
	}
	if capacity <= 0 {
		capacity = defaultCapacity
	}
	return &Tracer{nowFn: now, buf: make([]SpanData, 0, capacity)}
}

func (t *Tracer) now() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.nowFn()
}

// StartRoot opens a span at the root of a fresh trace.
func (t *Tracer) StartRoot(name string, kind Kind, attrs ...Attr) *Span {
	return t.start(SpanContext{}, name, kind, attrs)
}

// StartChild opens a span under parent. An invalid parent context (an
// untraced request) starts a fresh trace instead, so per-hop spans survive
// callers that never propagated context.
func (t *Tracer) StartChild(parent SpanContext, name string, kind Kind, attrs ...Attr) *Span {
	return t.start(parent, name, kind, attrs)
}

func (t *Tracer) start(parent SpanContext, name string, kind Kind, attrs []Attr) *Span {
	if t == nil {
		return nil
	}
	d := SpanData{
		SpanID: SpanID(newID()),
		Name:   name,
		Kind:   kind,
		Start:  t.now(),
		Attrs:  attrs,
	}
	if parent.Valid() {
		d.TraceID = parent.Trace
		d.Parent = parent.Span
	} else {
		d.TraceID = TraceID(newID())
	}
	return &Span{tracer: t, data: d}
}

// collect appends a finished span to the ring.
func (t *Tracer) collect(d SpanData) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, d)
	} else {
		t.buf[t.total%int64(cap(t.buf))] = d
	}
	t.total++
	t.mu.Unlock()
}

// Spans returns the retained finished spans in completion order.
func (t *Tracer) Spans() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, 0, len(t.buf))
	if t.total > int64(len(t.buf)) {
		at := t.total % int64(cap(t.buf))
		out = append(out, t.buf[at:]...)
		out = append(out, t.buf[:at]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// Total reports how many spans were ever recorded, including overwritten
// ones.
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}
