package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic test clock ticking 1ms per Now call.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2016, 4, 13, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(time.Millisecond)
	return c.t
}

// Nil tracer and nil span: every method must be a safe no-op, because the
// whole proxy chain is instrumented unconditionally.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil tracer Spans = %v", got)
	}
	if got := tr.Total(); got != 0 {
		t.Fatalf("nil tracer Total = %d", got)
	}
	sp := tr.StartRoot("x", KindClient)
	if sp != nil {
		t.Fatal("nil tracer handed out a non-nil span")
	}
	sp.SetAttrs(Str("k", "v"))
	sp.SetError("boom")
	sp.End()
	sp.End()
	if sc := sp.Context(); sc.Valid() {
		t.Fatalf("nil span context valid: %+v", sc)
	}
	child := tr.StartChild(sp.Context(), "y", KindProxy)
	if child != nil {
		t.Fatal("nil tracer handed out a child span")
	}
}

// Parent links: children share the root's trace and point at their parent;
// an invalid parent context falls back to a fresh root trace.
func TestParentLinks(t *testing.T) {
	tr := New(newFakeClock().Now, 16)
	root := tr.StartRoot("probe", KindClient)
	child := tr.StartChild(root.Context(), "proxy", KindProxy)
	grand := tr.StartChild(child.Context(), "fetch", KindFetch)
	for _, sp := range []*Span{grand, child, root} {
		sp.End()
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	byName := map[string]SpanData{}
	for _, d := range spans {
		byName[d.Name] = d
	}
	r, c, g := byName["probe"], byName["proxy"], byName["fetch"]
	if r.Parent != 0 {
		t.Fatalf("root has parent %v", r.Parent)
	}
	if c.TraceID != r.TraceID || c.Parent != r.SpanID {
		t.Fatalf("child links wrong: %+v vs root %+v", c, r)
	}
	if g.TraceID != r.TraceID || g.Parent != c.SpanID {
		t.Fatalf("grandchild links wrong: %+v vs child %+v", g, c)
	}
	if g.End.Before(g.Start) {
		t.Fatalf("timestamps inverted: %+v", g)
	}

	orphan := tr.StartChild(SpanContext{}, "orphan", KindDNS)
	orphan.End()
	od := tr.Spans()[3]
	if od.Parent != 0 || od.TraceID == r.TraceID || od.TraceID == 0 {
		t.Fatalf("invalid parent must start a fresh root trace: %+v", od)
	}
}

// End is idempotent and ordering survives ring wrap: the collector keeps
// the newest capacity spans in completion order.
func TestRingWrapAndIdempotentEnd(t *testing.T) {
	const capacity = 8
	tr := New(newFakeClock().Now, capacity)
	sp := tr.StartRoot("once", KindClient)
	sp.End()
	sp.End()
	if got := tr.Total(); got != 1 {
		t.Fatalf("double End recorded %d spans", got)
	}
	for i := 0; i < 3*capacity; i++ {
		s := tr.StartRoot(fmt.Sprintf("s%02d", i), KindClient)
		s.End()
	}
	spans := tr.Spans()
	if len(spans) != capacity {
		t.Fatalf("retained %d spans, want %d", len(spans), capacity)
	}
	if got := tr.Total(); got != 1+3*capacity {
		t.Fatalf("total = %d, want %d", got, 1+3*capacity)
	}
	// The retained window is the newest spans, oldest-first.
	for i, d := range spans {
		want := fmt.Sprintf("s%02d", 2*capacity+i)
		if d.Name != want {
			t.Fatalf("span %d = %q, want %q (full window %v)", i, d.Name, want, names(spans))
		}
	}
}

func names(spans []SpanData) []string {
	out := make([]string, len(spans))
	for i, d := range spans {
		out[i] = d.Name
	}
	return out
}

// The collector must be race-free under concurrent span creation and End
// across the wrap boundary (run with -race).
func TestConcurrentCollect(t *testing.T) {
	const (
		capacity = 64
		workers  = 8
		perW     = 100
	)
	tr := New(nil, capacity)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				root := tr.StartRoot("root", KindClient, Int("w", int64(w)))
				child := tr.StartChild(root.Context(), "child", KindAttempt)
				child.SetAttrs(Int("i", int64(i)))
				child.SetError("err")
				child.End()
				root.End()
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Total(); got != 2*workers*perW {
		t.Fatalf("total = %d, want %d", got, 2*workers*perW)
	}
	if got := len(tr.Spans()); got != capacity {
		t.Fatalf("retained = %d, want %d", got, capacity)
	}
}

// Header round-trip plus rejection of malformed wire forms.
func TestHeaderRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: 0xdeadbeef, Span: 0x1234}
	h := FormatHeader(sc)
	if h != "v1;t=00000000deadbeef;s=0000000000001234" {
		t.Fatalf("header = %q", h)
	}
	if got := ParseHeader(h); got != sc {
		t.Fatalf("round trip = %+v, want %+v", got, sc)
	}
	if got := FormatHeader(SpanContext{}); got != "" {
		t.Fatalf("invalid context formatted as %q", got)
	}
	for _, bad := range []string{
		"", "v2;t=1;s=2", "v1;t=1", "v1;t=xyz;s=2", "v1;t=1;s=", "v1;s=2;x=9",
		"v1;t=0;s=0", "v1;t=1;s=2;extra=3",
	} {
		if got := ParseHeader(bad); got.Valid() {
			t.Errorf("ParseHeader(%q) = %+v, want invalid", bad, got)
		}
	}
}

// Chrome export: structurally valid trace_event JSON — the shape Perfetto
// requires (complete events with name/ph/ts/dur, IDs in args).
func TestWriteChromeTrace(t *testing.T) {
	tr := New(newFakeClock().Now, 16)
	root := tr.StartRoot("probe.dns", KindClient, Str("country", "DE"))
	child := tr.StartChild(root.Context(), "proxy.get", KindProxy)
	child.SetError("timeout")
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(f.TraceEvents) != 2 {
		t.Fatalf("events = %d, want 2", len(f.TraceEvents))
	}
	for _, ev := range f.TraceEvents {
		if ev["ph"] != "X" {
			t.Fatalf("event phase %v, want X", ev["ph"])
		}
		for _, k := range []string{"name", "cat", "ts", "dur", "pid", "tid"} {
			if _, ok := ev[k]; !ok {
				t.Fatalf("event missing %q: %v", k, ev)
			}
		}
		args, ok := ev["args"].(map[string]any)
		if !ok {
			t.Fatalf("event args missing: %v", ev)
		}
		if args["trace_id"] == "" || args["span_id"] == "" {
			t.Fatalf("event args missing ids: %v", args)
		}
	}
}

// JSONL export round-trips through SpanData, one object per line.
func TestWriteJSONL(t *testing.T) {
	tr := New(newFakeClock().Now, 16)
	root := tr.StartRoot("probe", KindClient, Str("zid", "z1"))
	tr.StartChild(root.Context(), "fetch", KindFetch).End()
	root.End()

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	var d SpanData
	if err := json.Unmarshal([]byte(lines[1]), &d); err != nil {
		t.Fatal(err)
	}
	if d.Name != "probe" || d.Str("zid") != "z1" {
		t.Fatalf("decoded span = %+v", d)
	}
	if d.SpanID == 0 || d.TraceID == 0 {
		t.Fatalf("ids did not round-trip: %+v", d)
	}
}

// The slog wrapper injects trace_id/span_id from the context into every
// record, and stays silent for untraced contexts.
func TestLogHandlerInjection(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(NewLogHandler(slog.NewJSONHandler(&buf, nil)))

	sc := SpanContext{Trace: 0xabc, Span: 0xdef}
	logger.InfoContext(NewContext(context.Background(), sc), "traced", "k", "v")
	logger.InfoContext(context.Background(), "untraced")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("records = %d, want 2", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["trace_id"] != sc.Trace.String() || rec["span_id"] != sc.Span.String() {
		t.Fatalf("traced record missing ids: %v", rec)
	}
	if rec["k"] != "v" {
		t.Fatalf("user attrs lost: %v", rec)
	}
	rec = map[string]any{}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if _, ok := rec["trace_id"]; ok {
		t.Fatalf("untraced record gained a trace id: %v", rec)
	}
}
