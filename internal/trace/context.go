package trace

import (
	"context"
	"log/slog"
	"strconv"
	"strings"
)

// HeaderName carries trace context across process hops (client → super
// proxy → agent), playing the role X-Hola-Timeline-Debug plays for
// Luminati's own per-request attribution.
const HeaderName = "X-Tft-Trace"

// FormatHeader renders a span context in the wire form
// "v1;t=<16-hex>;s=<16-hex>" ("" for an invalid context, meaning: do not
// stamp a header at all).
func FormatHeader(sc SpanContext) string {
	if !sc.Valid() {
		return ""
	}
	var b [40]byte
	buf := append(b[:0], "v1;t="...)
	buf = appendHex16(buf, uint64(sc.Trace))
	buf = append(buf, ";s="...)
	buf = appendHex16(buf, uint64(sc.Span))
	return string(buf)
}

// ParseHeader parses the wire form. Malformed or empty input yields an
// invalid (zero) context — propagation is best-effort, never an error.
func ParseHeader(s string) SpanContext {
	var sc SpanContext
	parts := strings.Split(s, ";")
	if len(parts) != 3 || parts[0] != "v1" {
		return SpanContext{}
	}
	for _, p := range parts[1:] {
		switch {
		case strings.HasPrefix(p, "t="):
			v, err := strconv.ParseUint(p[2:], 16, 64)
			if err != nil {
				return SpanContext{}
			}
			sc.Trace = TraceID(v)
		case strings.HasPrefix(p, "s="):
			v, err := strconv.ParseUint(p[2:], 16, 64)
			if err != nil {
				return SpanContext{}
			}
			sc.Span = SpanID(v)
		default:
			return SpanContext{}
		}
	}
	if !sc.Valid() {
		return SpanContext{}
	}
	return sc
}

type ctxKey struct{}

// NewContext returns ctx carrying sc for downstream spans and log records.
func NewContext(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext extracts the span context carried by ctx (zero when absent).
func FromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}

// LogHandler wraps a slog.Handler so every record logged with a
// trace-carrying context automatically gains trace_id and span_id
// attributes — the "every slog record during a traced request carries its
// trace ID" guarantee, enforced in one place instead of at 30 call sites.
type LogHandler struct {
	inner slog.Handler
}

// NewLogHandler wraps h.
func NewLogHandler(h slog.Handler) *LogHandler { return &LogHandler{inner: h} }

// Enabled implements slog.Handler.
func (h *LogHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

// Handle implements slog.Handler, injecting the context's trace IDs.
func (h *LogHandler) Handle(ctx context.Context, r slog.Record) error {
	if sc := FromContext(ctx); sc.Valid() {
		r.AddAttrs(
			slog.String("trace_id", sc.Trace.String()),
			slog.String("span_id", sc.Span.String()),
		)
	}
	return h.inner.Handle(ctx, r)
}

// WithAttrs implements slog.Handler.
func (h *LogHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &LogHandler{inner: h.inner.WithAttrs(attrs)}
}

// WithGroup implements slog.Handler.
func (h *LogHandler) WithGroup(name string) slog.Handler {
	return &LogHandler{inner: h.inner.WithGroup(name)}
}
