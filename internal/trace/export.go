package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one Chrome trace_event record. The "X" phase (complete
// event) carries both timestamp and duration, which is all a span needs;
// pid/tid place spans on tracks — we map every trace tree onto its own
// track so Perfetto renders one request per row.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`  // microseconds
	Dur  int64          `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the top-level object form of the trace_event format
// (preferred over the bare-array form because it tolerates trailing
// metadata and loads in both chrome://tracing and Perfetto).
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace serializes spans in Chrome trace_event JSON, loadable
// in chrome://tracing or https://ui.perfetto.dev. Each trace tree becomes
// one thread track (tid = TraceID), so a request's span chain nests
// visually.
func WriteChromeTrace(w io.Writer, spans []SpanData) error {
	f := chromeFile{TraceEvents: make([]chromeEvent, 0, len(spans)), DisplayTimeUnit: "ms"}
	for _, d := range spans {
		args := map[string]any{
			"trace_id": d.TraceID.String(),
			"span_id":  d.SpanID.String(),
		}
		if d.Parent != 0 {
			args["parent_id"] = d.Parent.String()
		}
		if d.Err != "" {
			args["error"] = d.Err
		}
		for _, a := range d.Attrs {
			args[a.Key] = a.Value()
		}
		dur := d.Duration().Microseconds()
		if dur < 0 {
			dur = 0
		}
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: d.Name,
			Cat:  string(d.Kind),
			Ph:   "X",
			Ts:   d.Start.UnixMicro(),
			Dur:  dur,
			Pid:  1,
			Tid:  uint64(d.TraceID),
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(f); err != nil {
		return fmt.Errorf("trace: chrome export: %w", err)
	}
	return nil
}

// WriteJSONL serializes spans as one JSON object per line — the flat form
// for grep/jq pipelines.
func WriteJSONL(w io.Writer, spans []SpanData) error {
	enc := json.NewEncoder(w)
	for _, d := range spans {
		if err := enc.Encode(d); err != nil {
			return fmt.Errorf("trace: jsonl export: %w", err)
		}
	}
	return nil
}
