package dataset

import (
	"bytes"
	"net/netip"
	"reflect"
	"strings"
	"testing"

	"github.com/tftproject/tft/internal/core"
)

func streamFixture() []*core.DNSObservation {
	return []*core.DNSObservation{
		{ZID: "z1", NodeIP: netip.MustParseAddr("91.1.2.3"),
			ResolverIP: netip.MustParseAddr("91.1.0.53"), ASN: 64500, Country: "MY",
			Hijacked: true, LandingDomains: []string{"midascdn.nervesis.com"},
			LandingBody: []byte("<html>ads</html>")},
		{ZID: "z2", NodeIP: netip.MustParseAddr("91.1.2.4"), ASN: 64500, Country: "MY",
			SharedAnycast: true},
		{ZID: "z3", NodeIP: netip.MustParseAddr("10.0.0.1"),
			ResolverIP: netip.MustParseAddr("8.8.8.8"), ASN: 64501, Country: "DE"},
	}
}

// TestStreamWriterMatchesBatch pins the compatibility contract: a streaming
// writer fed the same observations with an exact record count produces a
// byte-identical file to the in-memory batch writer.
func TestStreamWriterMatchesBatch(t *testing.T) {
	obs := streamFixture()
	ds := &core.DNSDataset{Observations: obs}

	var batch bytes.Buffer
	if err := WriteDNS(&batch, 42, 0.05, ds); err != nil {
		t.Fatal(err)
	}

	var streamed bytes.Buffer
	sw, err := NewDNSWriter(&streamed, 42, 0.05, len(obs))
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range obs {
		if err := sw.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(batch.Bytes(), streamed.Bytes()) {
		t.Fatalf("streamed output diverged from batch output:\n--- batch ---\n%s\n--- streamed ---\n%s",
			batch.Bytes(), streamed.Bytes())
	}
}

// TestStreamWriterUnknownCount round-trips a stream written before its
// record count was known: the header carries the StreamRecords sentinel and
// the reader consumes to EOF.
func TestStreamWriterUnknownCount(t *testing.T) {
	obs := streamFixture()
	var buf bytes.Buffer
	sw, err := NewDNSWriter(&buf, 42, 0.05, StreamRecords)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range obs {
		if err := sw.Write(o); err != nil {
			t.Fatal(err)
		}
	}
	if sw.Count() != len(obs) {
		t.Fatalf("Count = %d, want %d", sw.Count(), len(obs))
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	h, got, err := ReadDNS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Records != StreamRecords {
		t.Fatalf("header records = %d, want %d", h.Records, StreamRecords)
	}
	if len(got.Observations) != len(obs) {
		t.Fatalf("read %d observations, want %d", len(got.Observations), len(obs))
	}
	for i := range obs {
		if !reflect.DeepEqual(obs[i], got.Observations[i]) {
			t.Fatalf("record %d: %+v != %+v", i, obs[i], got.Observations[i])
		}
	}
}

// TestStreamWriterClose checks Close is idempotent and fences off further
// writes.
func TestStreamWriterClose(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewDNSWriter(&buf, 1, 0.05, StreamRecords)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := sw.Write(streamFixture()[0]); err == nil {
		t.Fatal("Write after Close succeeded")
	}
}

// TestReadHeaderRejectsBelowSentinel keeps garbage counts out: -1 is the
// one legal negative value.
func TestReadHeaderRejectsBelowSentinel(t *testing.T) {
	raw := `{"format":"tft-dataset","version":1,"experiment":"dns","seed":1,"scale":0.05,"records":-2}` + "\n"
	if _, _, err := ReadDNS(strings.NewReader(raw)); err == nil {
		t.Fatal("records=-2 accepted")
	}
}
