// Package dataset serializes experiment observations to line-delimited
// JSON and back. The paper's fourth contribution is releasing analysis
// code and data (https://tft.ccs.neu.edu); this package is that release
// format: cmd/tft -dump writes the datasets a run produced, and
// cmd/analyze regenerates every table from the files alone, without
// re-running the measurement.
//
// Records deliberately contain only what the paper could publish: no
// request bodies beyond hijack landing pages, and node identity limited to
// zID/IP/AS/country.
package dataset

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"time"

	"github.com/tftproject/tft/internal/cert"
	"github.com/tftproject/tft/internal/core"
	"github.com/tftproject/tft/internal/geo"
)

// Header is the first line of every dataset file.
type Header struct {
	Format     string  `json:"format"` // "tft-dataset"
	Version    int     `json:"version"`
	Experiment string  `json:"experiment"` // dns|http|tls|monitor
	Seed       uint64  `json:"seed"`
	Scale      float64 `json:"scale"`
	Records    int     `json:"records"`
}

// FormatName identifies dataset files.
const FormatName = "tft-dataset"

// Version is the current format version.
const Version = 1

// dnsRecord is the JSON shape of a DNS observation.
type dnsRecord struct {
	ZID            string   `json:"zid"`
	NodeIP         string   `json:"node_ip"`
	ResolverIP     string   `json:"resolver_ip,omitempty"`
	ASN            uint32   `json:"asn"`
	Country        string   `json:"country"`
	SharedAnycast  bool     `json:"shared_anycast,omitempty"`
	Hijacked       bool     `json:"hijacked,omitempty"`
	LandingDomains []string `json:"landing_domains,omitempty"`
	LandingBody    []byte   `json:"landing_body,omitempty"`
}

// dnsRecordOf converts an observation to its serialized shape.
func dnsRecordOf(o *core.DNSObservation) any {
	return dnsRecord{
		ZID: o.ZID, NodeIP: addrString(o.NodeIP), ResolverIP: addrString(o.ResolverIP),
		ASN: uint32(o.ASN), Country: string(o.Country),
		SharedAnycast: o.SharedAnycast, Hijacked: o.Hijacked,
		LandingDomains: o.LandingDomains, LandingBody: o.LandingBody,
	}
}

// WriteDNS streams a DNS dataset.
func WriteDNS(w io.Writer, seed uint64, scale float64, ds *core.DNSDataset) error {
	sw, err := NewDNSWriter(w, seed, scale, len(ds.Observations))
	if err != nil {
		return err
	}
	return drain(sw, ds.Observations)
}

// ReadDNS loads a DNS dataset.
func ReadDNS(r io.Reader) (*Header, *core.DNSDataset, error) {
	h, dec, err := readHeader(r, "dns")
	if err != nil {
		return nil, nil, err
	}
	ds := &core.DNSDataset{}
	for i := 0; h.Records < 0 || i < h.Records; i++ {
		var rec dnsRecord
		if err := dec.Decode(&rec); err != nil {
			if h.Records < 0 && errors.Is(err, io.EOF) {
				break
			}
			return nil, nil, fmt.Errorf("dataset: record %d: %w", i, err)
		}
		o := &core.DNSObservation{
			ZID: rec.ZID, ASN: geo.ASN(rec.ASN), Country: geo.CountryCode(rec.Country),
			SharedAnycast: rec.SharedAnycast, Hijacked: rec.Hijacked,
			LandingDomains: rec.LandingDomains, LandingBody: rec.LandingBody,
		}
		o.NodeIP = parseAddr(rec.NodeIP)
		o.ResolverIP = parseAddr(rec.ResolverIP)
		ds.Observations = append(ds.Observations, o)
	}
	return h, ds, nil
}

// httpRecord is the JSON shape of an HTTP observation.
type httpRecord struct {
	ZID     string       `json:"zid"`
	NodeIP  string       `json:"node_ip"`
	ASN     uint32       `json:"asn"`
	Country string       `json:"country"`
	Objects []httpObject `json:"objects"`
}

type httpObject struct {
	Outcome    int     `json:"outcome"`
	BodyLen    int     `json:"body_len,omitempty"`
	Body       []byte  `json:"body,omitempty"`
	ImageRatio float64 `json:"image_ratio,omitempty"`
}

// httpRecordOf converts an observation to its serialized shape.
func httpRecordOf(o *core.HTTPObservation) any {
	rec := httpRecord{ZID: o.ZID, NodeIP: addrString(o.NodeIP),
		ASN: uint32(o.ASN), Country: string(o.Country)}
	for _, obj := range o.Objects {
		rec.Objects = append(rec.Objects, httpObject{
			Outcome: int(obj.Outcome), BodyLen: obj.BodyLen,
			Body: obj.Body, ImageRatio: obj.ImageRatio,
		})
	}
	return rec
}

// WriteHTTP streams an HTTP dataset.
func WriteHTTP(w io.Writer, seed uint64, scale float64, ds *core.HTTPDataset) error {
	sw, err := NewHTTPWriter(w, seed, scale, len(ds.Observations))
	if err != nil {
		return err
	}
	return drain(sw, ds.Observations)
}

// ReadHTTP loads an HTTP dataset.
func ReadHTTP(r io.Reader) (*Header, *core.HTTPDataset, error) {
	h, dec, err := readHeader(r, "http")
	if err != nil {
		return nil, nil, err
	}
	ds := &core.HTTPDataset{}
	for i := 0; h.Records < 0 || i < h.Records; i++ {
		var rec httpRecord
		if err := dec.Decode(&rec); err != nil {
			if h.Records < 0 && errors.Is(err, io.EOF) {
				break
			}
			return nil, nil, fmt.Errorf("dataset: record %d: %w", i, err)
		}
		o := &core.HTTPObservation{ZID: rec.ZID, NodeIP: parseAddr(rec.NodeIP),
			ASN: geo.ASN(rec.ASN), Country: geo.CountryCode(rec.Country)}
		for k, obj := range rec.Objects {
			if k >= len(o.Objects) {
				break
			}
			o.Objects[k] = core.ObjectResult{
				Outcome: core.ObjectOutcome(obj.Outcome), BodyLen: obj.BodyLen,
				Body: obj.Body, ImageRatio: obj.ImageRatio,
			}
		}
		ds.Observations = append(ds.Observations, o)
	}
	return h, ds, nil
}

// tlsRecord is the JSON shape of a TLS observation.
type tlsRecord struct {
	ZID     string      `json:"zid"`
	NodeIP  string      `json:"node_ip"`
	ASN     uint32      `json:"asn"`
	Country string      `json:"country"`
	Phase2  bool        `json:"phase2,omitempty"`
	Sites   []tlsResult `json:"sites"`
}

type tlsResult struct {
	Host       string `json:"host"`
	Class      int    `json:"class"`
	Replaced   bool   `json:"replaced,omitempty"`
	IssuerCN   string `json:"issuer_cn,omitempty"`
	LeafKey    string `json:"leaf_key,omitempty"`
	ChainValid bool   `json:"chain_valid,omitempty"`
	Err        string `json:"err,omitempty"`
}

// tlsRecordOf converts an observation to its serialized shape.
func tlsRecordOf(o *core.TLSObservation) any {
	rec := tlsRecord{ZID: o.ZID, NodeIP: addrString(o.NodeIP),
		ASN: uint32(o.ASN), Country: string(o.Country), Phase2: o.Phase2}
	for _, s := range o.Sites {
		rec.Sites = append(rec.Sites, tlsResult{
			Host: s.Host, Class: int(s.Class), Replaced: s.Replaced,
			IssuerCN: s.IssuerCN, LeafKey: s.LeafKey.String(),
			ChainValid: s.ChainValid, Err: s.Err,
		})
	}
	return rec
}

// WriteTLS streams a TLS dataset.
func WriteTLS(w io.Writer, seed uint64, scale float64, ds *core.TLSDataset) error {
	sw, err := NewTLSWriter(w, seed, scale, len(ds.Observations))
	if err != nil {
		return err
	}
	return drain(sw, ds.Observations)
}

// ReadTLS loads a TLS dataset.
func ReadTLS(r io.Reader) (*Header, *core.TLSDataset, error) {
	h, dec, err := readHeader(r, "tls")
	if err != nil {
		return nil, nil, err
	}
	ds := &core.TLSDataset{}
	for i := 0; h.Records < 0 || i < h.Records; i++ {
		var rec tlsRecord
		if err := dec.Decode(&rec); err != nil {
			if h.Records < 0 && errors.Is(err, io.EOF) {
				break
			}
			return nil, nil, fmt.Errorf("dataset: record %d: %w", i, err)
		}
		o := &core.TLSObservation{ZID: rec.ZID, NodeIP: parseAddr(rec.NodeIP),
			ASN: geo.ASN(rec.ASN), Country: geo.CountryCode(rec.Country), Phase2: rec.Phase2}
		for _, s := range rec.Sites {
			sr := core.SiteResult{
				Host: s.Host, Class: core.SiteClass(s.Class), Replaced: s.Replaced,
				IssuerCN: s.IssuerCN, ChainValid: s.ChainValid, Err: s.Err,
			}
			sr.LeafKey = parseKeyID(s.LeafKey)
			o.Sites = append(o.Sites, sr)
		}
		ds.Observations = append(ds.Observations, o)
	}
	return h, ds, nil
}

// monRecord is the JSON shape of a monitoring observation.
type monRecord struct {
	ZID        string      `json:"zid"`
	NodeIP     string      `json:"node_ip"`
	ASN        uint32      `json:"asn"`
	Country    string      `json:"country"`
	Host       string      `json:"host"`
	RequestAt  time.Time   `json:"request_at"`
	ViaVPN     bool        `json:"via_vpn,omitempty"`
	OwnSrc     string      `json:"own_src,omitempty"`
	Unexpected []monSource `json:"unexpected,omitempty"`
}

type monSource struct {
	Src       string `json:"src"`
	ASN       uint32 `json:"asn"`
	Org       string `json:"org,omitempty"`
	DelayNS   int64  `json:"delay_ns"`
	UserAgent string `json:"user_agent,omitempty"`
}

// monRecordOf converts an observation to its serialized shape.
func monRecordOf(o *core.MonObservation) any {
	rec := monRecord{ZID: o.ZID, NodeIP: addrString(o.NodeIP),
		ASN: uint32(o.ASN), Country: string(o.Country),
		Host: o.Host, RequestAt: o.RequestAt, ViaVPN: o.ViaVPN, OwnSrc: addrString(o.OwnSrc)}
	for _, u := range o.Unexpected {
		rec.Unexpected = append(rec.Unexpected, monSource{
			Src: addrString(u.Src), ASN: uint32(u.ASN), Org: u.Org,
			DelayNS: int64(u.Delay), UserAgent: u.UserAgent,
		})
	}
	return rec
}

// WriteMonitor streams a monitoring dataset.
func WriteMonitor(w io.Writer, seed uint64, scale float64, ds *core.MonDataset) error {
	sw, err := NewMonitorWriter(w, seed, scale, len(ds.Observations))
	if err != nil {
		return err
	}
	return drain(sw, ds.Observations)
}

// ReadMonitor loads a monitoring dataset.
func ReadMonitor(r io.Reader) (*Header, *core.MonDataset, error) {
	h, dec, err := readHeader(r, "monitor")
	if err != nil {
		return nil, nil, err
	}
	ds := &core.MonDataset{}
	for i := 0; h.Records < 0 || i < h.Records; i++ {
		var rec monRecord
		if err := dec.Decode(&rec); err != nil {
			if h.Records < 0 && errors.Is(err, io.EOF) {
				break
			}
			return nil, nil, fmt.Errorf("dataset: record %d: %w", i, err)
		}
		o := &core.MonObservation{ZID: rec.ZID, NodeIP: parseAddr(rec.NodeIP),
			ASN: geo.ASN(rec.ASN), Country: geo.CountryCode(rec.Country),
			Host: rec.Host, RequestAt: rec.RequestAt, ViaVPN: rec.ViaVPN, OwnSrc: parseAddr(rec.OwnSrc)}
		for _, u := range rec.Unexpected {
			o.Unexpected = append(o.Unexpected, core.UnexpectedRequest{
				Src: parseAddr(u.Src), ASN: geo.ASN(u.ASN), Org: u.Org,
				Delay: time.Duration(u.DelayNS), UserAgent: u.UserAgent,
			})
		}
		ds.Observations = append(ds.Observations, o)
	}
	return h, ds, nil
}

// smtpRecord is the JSON shape of an SMTP observation.
type smtpRecord struct {
	ZID      string `json:"zid"`
	NodeIP   string `json:"node_ip"`
	ASN      uint32 `json:"asn"`
	Country  string `json:"country"`
	Blocked  bool   `json:"blocked,omitempty"`
	StartTLS bool   `json:"starttls,omitempty"`
	Banner   string `json:"banner,omitempty"`
}

// smtpRecordOf converts an observation to its serialized shape.
func smtpRecordOf(o *core.SMTPObservation) any {
	return smtpRecord{ZID: o.ZID, NodeIP: addrString(o.NodeIP),
		ASN: uint32(o.ASN), Country: string(o.Country),
		Blocked: o.Blocked, StartTLS: o.StartTLS, Banner: o.Banner}
}

// WriteSMTP streams an SMTP-extension dataset.
func WriteSMTP(w io.Writer, seed uint64, scale float64, ds *core.SMTPDataset) error {
	sw, err := NewSMTPWriter(w, seed, scale, len(ds.Observations))
	if err != nil {
		return err
	}
	return drain(sw, ds.Observations)
}

// ReadSMTP loads an SMTP-extension dataset.
func ReadSMTP(r io.Reader) (*Header, *core.SMTPDataset, error) {
	h, dec, err := readHeader(r, "smtp")
	if err != nil {
		return nil, nil, err
	}
	ds := &core.SMTPDataset{}
	for i := 0; h.Records < 0 || i < h.Records; i++ {
		var rec smtpRecord
		if err := dec.Decode(&rec); err != nil {
			if h.Records < 0 && errors.Is(err, io.EOF) {
				break
			}
			return nil, nil, fmt.Errorf("dataset: record %d: %w", i, err)
		}
		ds.Observations = append(ds.Observations, &core.SMTPObservation{
			ZID: rec.ZID, NodeIP: parseAddr(rec.NodeIP),
			ASN: geo.ASN(rec.ASN), Country: geo.CountryCode(rec.Country),
			Blocked: rec.Blocked, StartTLS: rec.StartTLS, Banner: rec.Banner,
		})
	}
	return h, ds, nil
}

// readHeader decodes and validates the header line.
func readHeader(r io.Reader, wantExperiment string) (*Header, *json.Decoder, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var h Header
	if err := dec.Decode(&h); err != nil {
		return nil, nil, fmt.Errorf("dataset: reading header: %w", err)
	}
	if h.Format != FormatName {
		return nil, nil, fmt.Errorf("dataset: not a %s file (format %q)", FormatName, h.Format)
	}
	if h.Version != Version {
		return nil, nil, fmt.Errorf("dataset: unsupported version %d", h.Version)
	}
	if wantExperiment != "" && h.Experiment != wantExperiment {
		return nil, nil, fmt.Errorf("dataset: experiment %q, want %q", h.Experiment, wantExperiment)
	}
	if h.Records < StreamRecords {
		return nil, nil, fmt.Errorf("dataset: negative record count")
	}
	return &h, dec, nil
}

// drain writes every observation through a streaming writer and closes it,
// preserving the first error encountered.
func drain[T any](sw *Writer[T], obs []T) error {
	for _, o := range obs {
		if err := sw.Write(o); err != nil {
			sw.Close()
			return err
		}
	}
	return sw.Close()
}

// Peek reads only the header to identify a file.
func Peek(r io.Reader) (*Header, error) {
	h, _, err := readHeader(r, "")
	return h, err
}

func addrString(a netip.Addr) string {
	if !a.IsValid() {
		return ""
	}
	return a.String()
}

func parseAddr(s string) netip.Addr {
	if s == "" {
		return netip.Addr{}
	}
	a, _ := netip.ParseAddr(s)
	return a
}

func parseKeyID(s string) cert.KeyID {
	var k cert.KeyID
	for i := 0; i+1 < len(s) && i/2 < len(k); i += 2 {
		k[i/2] = hexByte(s[i])<<4 | hexByte(s[i+1])
	}
	return k
}

func hexByte(c byte) byte {
	switch {
	case c >= '0' && c <= '9':
		return c - '0'
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10
	}
	return 0
}

// geoRecord lines carry one of the three snapshot row kinds.
type geoRecord struct {
	Org    *geo.SnapshotOrg    `json:"org,omitempty"`
	AS     *geo.SnapshotAS     `json:"as,omitempty"`
	Prefix *geo.SnapshotPrefix `json:"prefix,omitempty"`
}

// WriteGeo streams the registry snapshot — the release's RouteViews/CAIDA
// analogue, required to reproduce attribution from the raw observations.
func WriteGeo(w io.Writer, seed uint64, scale float64, reg *geo.Registry) error {
	orgs, ases, prefixes := reg.Snapshot()
	bw := getWriter(w)
	defer putWriter(bw)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(Header{Format: FormatName, Version: Version, Experiment: "geo",
		Seed: seed, Scale: scale, Records: len(orgs) + len(ases) + len(prefixes)}); err != nil {
		return err
	}
	for i := range orgs {
		if err := enc.Encode(geoRecord{Org: &orgs[i]}); err != nil {
			return err
		}
	}
	for i := range ases {
		if err := enc.Encode(geoRecord{AS: &ases[i]}); err != nil {
			return err
		}
	}
	for i := range prefixes {
		if err := enc.Encode(geoRecord{Prefix: &prefixes[i]}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadGeo rebuilds a registry from a snapshot file.
func ReadGeo(r io.Reader) (*Header, *geo.Registry, error) {
	h, dec, err := readHeader(r, "geo")
	if err != nil {
		return nil, nil, err
	}
	var orgs []geo.SnapshotOrg
	var ases []geo.SnapshotAS
	var prefixes []geo.SnapshotPrefix
	for i := 0; h.Records < 0 || i < h.Records; i++ {
		var rec geoRecord
		if err := dec.Decode(&rec); err != nil {
			if h.Records < 0 && errors.Is(err, io.EOF) {
				break
			}
			return nil, nil, fmt.Errorf("dataset: geo record %d: %w", i, err)
		}
		switch {
		case rec.Org != nil:
			orgs = append(orgs, *rec.Org)
		case rec.AS != nil:
			ases = append(ases, *rec.AS)
		case rec.Prefix != nil:
			prefixes = append(prefixes, *rec.Prefix)
		}
	}
	reg, err := geo.FromSnapshot(orgs, ases, prefixes)
	if err != nil {
		return nil, nil, err
	}
	return h, reg, nil
}
