package dataset

import (
	"bytes"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/tftproject/tft/internal/cert"
	"github.com/tftproject/tft/internal/core"
	"github.com/tftproject/tft/internal/geo"
)

func TestDNSRoundTrip(t *testing.T) {
	ds := &core.DNSDataset{Observations: []*core.DNSObservation{
		{ZID: "z1", NodeIP: netip.MustParseAddr("91.1.2.3"),
			ResolverIP: netip.MustParseAddr("91.1.0.53"), ASN: 64500, Country: "MY",
			Hijacked: true, LandingDomains: []string{"midascdn.nervesis.com"},
			LandingBody: []byte("<html>ads</html>")},
		{ZID: "z2", NodeIP: netip.MustParseAddr("91.1.2.4"), ASN: 64500, Country: "MY",
			SharedAnycast: true},
		{ZID: "z3", NodeIP: netip.MustParseAddr("10.0.0.1"),
			ResolverIP: netip.MustParseAddr("8.8.8.8"), ASN: 64501, Country: "DE"},
	}}
	var buf bytes.Buffer
	if err := WriteDNS(&buf, 42, 0.05, ds); err != nil {
		t.Fatal(err)
	}
	h, got, err := ReadDNS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Seed != 42 || h.Scale != 0.05 || h.Records != 3 || h.Experiment != "dns" {
		t.Fatalf("header = %+v", h)
	}
	if len(got.Observations) != 3 {
		t.Fatalf("records = %d", len(got.Observations))
	}
	for i := range ds.Observations {
		if !reflect.DeepEqual(ds.Observations[i], got.Observations[i]) {
			t.Fatalf("record %d: %+v != %+v", i, ds.Observations[i], got.Observations[i])
		}
	}
}

func TestHTTPRoundTrip(t *testing.T) {
	o := &core.HTTPObservation{ZID: "z1", NodeIP: netip.MustParseAddr("91.7.7.7"),
		ASN: 132199, Country: "PH"}
	o.Objects[0] = core.ObjectResult{Outcome: core.ObjModified, BodyLen: 9300, Body: []byte("<html>mod</html>")}
	o.Objects[1] = core.ObjectResult{Outcome: core.ObjModified, BodyLen: 20000, ImageRatio: 0.51}
	o.Objects[2] = core.ObjectResult{Outcome: core.ObjUnmodified, BodyLen: 258 * 1024}
	o.Objects[3] = core.ObjectResult{Outcome: core.ObjEmpty}
	ds := &core.HTTPDataset{Observations: []*core.HTTPObservation{o}}
	var buf bytes.Buffer
	if err := WriteHTTP(&buf, 7, 0.1, ds); err != nil {
		t.Fatal(err)
	}
	_, got, err := ReadHTTP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds.Observations[0], got.Observations[0]) {
		t.Fatalf("%+v != %+v", ds.Observations[0], got.Observations[0])
	}
}

func TestTLSRoundTrip(t *testing.T) {
	key := cert.NewKeyPair("k").Public
	o := &core.TLSObservation{ZID: "z1", NodeIP: netip.MustParseAddr("91.8.8.8"),
		ASN: 64500, Country: "DE", Phase2: true,
		Sites: []core.SiteResult{
			{Host: "a.example", Class: core.SitePopular, Replaced: true,
				IssuerCN: "Avast Web/Mail Shield Root", LeafKey: key, ChainValid: false},
			{Host: "b.example", Class: core.SiteInvalid, Err: "handshake timeout"},
		}}
	ds := &core.TLSDataset{Observations: []*core.TLSObservation{o}}
	var buf bytes.Buffer
	if err := WriteTLS(&buf, 7, 0.1, ds); err != nil {
		t.Fatal(err)
	}
	_, got, err := ReadTLS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g := got.Observations[0]
	if g.Sites[0].LeafKey != key {
		t.Fatalf("key = %v, want %v", g.Sites[0].LeafKey, key)
	}
	if !reflect.DeepEqual(o, g) {
		t.Fatalf("%+v != %+v", o, g)
	}
}

func TestMonitorRoundTrip(t *testing.T) {
	at := time.Date(2016, 4, 13, 10, 0, 0, 0, time.UTC)
	o := &core.MonObservation{ZID: "z1", NodeIP: netip.MustParseAddr("91.3.3.3"),
		ASN: 64500, Country: "GB", Host: "u-1.probe.example", RequestAt: at,
		ViaVPN: true, OwnSrc: netip.MustParseAddr("203.0.113.9"),
		Unexpected: []core.UnexpectedRequest{
			{Src: netip.MustParseAddr("150.70.1.1"), ASN: 100, Org: "Trend Micro",
				Delay: 42 * time.Second, UserAgent: "trend-micro-reputation-scanner/1.0"},
			{Src: netip.MustParseAddr("150.70.1.2"), ASN: 100, Org: "Trend Micro", Delay: -time.Second},
		}}
	ds := &core.MonDataset{Observations: []*core.MonObservation{o}}
	var buf bytes.Buffer
	if err := WriteMonitor(&buf, 9, 0.02, ds); err != nil {
		t.Fatal(err)
	}
	_, got, err := ReadMonitor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(o, got.Observations[0]) {
		t.Fatalf("%+v != %+v", o, got.Observations[0])
	}
}

func TestHeaderValidation(t *testing.T) {
	if _, _, err := ReadDNS(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := ReadDNS(strings.NewReader(`{"format":"nope","version":1}`)); err == nil {
		t.Error("wrong format accepted")
	}
	if _, _, err := ReadDNS(strings.NewReader(`{"format":"tft-dataset","version":99,"experiment":"dns"}`)); err == nil {
		t.Error("future version accepted")
	}
	// Wrong experiment type.
	var buf bytes.Buffer
	WriteHTTP(&buf, 1, 1, &core.HTTPDataset{})
	if _, _, err := ReadDNS(&buf); err == nil {
		t.Error("http file read as dns")
	}
}

func TestTruncatedRecords(t *testing.T) {
	var buf bytes.Buffer
	ds := &core.DNSDataset{Observations: []*core.DNSObservation{
		{ZID: "z1", NodeIP: netip.MustParseAddr("1.2.3.4")},
		{ZID: "z2", NodeIP: netip.MustParseAddr("1.2.3.5")},
	}}
	if err := WriteDNS(&buf, 1, 1, ds); err != nil {
		t.Fatal(err)
	}
	full := buf.String()
	cut := full[:len(full)-20]
	if _, _, err := ReadDNS(strings.NewReader(cut)); err == nil {
		t.Error("truncated file accepted")
	}
}

func TestPeek(t *testing.T) {
	var buf bytes.Buffer
	WriteMonitor(&buf, 5, 0.5, &core.MonDataset{})
	h, err := Peek(&buf)
	if err != nil || h.Experiment != "monitor" || h.Seed != 5 {
		t.Fatalf("peek = %+v, %v", h, err)
	}
}

func TestGeoRoundTrip(t *testing.T) {
	reg := geo.NewRegistry()
	if err := geo.InstallGoogle(reg); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.AddOrg("tmnet", "TMnet", "MY"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.AddAS(4788, "tmnet", false); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.AddAS(4789, "tmnet", true); err != nil {
		t.Fatal(err)
	}
	var addrs []netip.Addr
	for i := 0; i < 40; i++ {
		a, err := reg.NextAddr(4788)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	var buf bytes.Buffer
	if err := WriteGeo(&buf, 77, 0.25, reg); err != nil {
		t.Fatal(err)
	}
	h, got, err := ReadGeo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Experiment != "geo" || h.Seed != 77 {
		t.Fatalf("header = %+v", h)
	}
	if got.NumASes() != reg.NumASes() || got.NumOrgs() != reg.NumOrgs() {
		t.Fatalf("sizes: %d/%d vs %d/%d", got.NumASes(), got.NumOrgs(), reg.NumASes(), reg.NumOrgs())
	}
	for _, a := range addrs {
		asn, ok := got.LookupAS(a)
		if !ok || asn != 4788 {
			t.Fatalf("lookup %v = AS%d,%v", a, asn, ok)
		}
	}
	if as, ok := got.ASInfo(4789); !ok || !as.Mobile {
		t.Fatal("mobile flag lost")
	}
	org, ok := got.Org(4788)
	if !ok || org.Name != "TMnet" || org.Country != "MY" {
		t.Fatalf("org = %+v", org)
	}
}

func TestGeoRejectsWrongFile(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDNS(&buf, 1, 1, &core.DNSDataset{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadGeo(&buf); err == nil {
		t.Fatal("dns file read as geo")
	}
}

func TestParseKeyIDRoundTrip(t *testing.T) {
	k := cert.NewKeyPair("roundtrip").Public
	if got := parseKeyID(k.String()); got != k {
		t.Fatalf("parseKeyID(%q) = %v", k.String(), got)
	}
	if got := parseKeyID(""); got != (cert.KeyID{}) {
		t.Fatal("empty string not zero key")
	}
}

func TestSMTPRoundTrip(t *testing.T) {
	ds := &core.SMTPDataset{Observations: []*core.SMTPObservation{
		{ZID: "z1", NodeIP: netip.MustParseAddr("91.1.2.3"), ASN: 64500, Country: "US",
			StartTLS: true, Banner: "220 mail.tft-project.net ESMTP"},
		{ZID: "z2", NodeIP: netip.MustParseAddr("91.1.2.4"), ASN: 64501, Country: "IN",
			Blocked: true},
		{ZID: "z3", NodeIP: netip.MustParseAddr("91.1.2.5"), ASN: 64502, Country: "TN",
			StartTLS: false, Banner: "220 mail.tft-project.net ESMTP"},
	}}
	var buf bytes.Buffer
	if err := WriteSMTP(&buf, 7, 0.01, ds); err != nil {
		t.Fatal(err)
	}
	h, got, err := ReadSMTP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Seed != 7 || h.Scale != 0.01 || h.Records != 3 || h.Experiment != "smtp" {
		t.Fatalf("header = %+v", h)
	}
	if !reflect.DeepEqual(got.Observations, ds.Observations) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got.Observations[0], ds.Observations[0])
	}
}
