package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"github.com/tftproject/tft/internal/core"
)

// StreamRecords is the Header.Records sentinel for streamed datasets: the
// writer emits the header before any observation exists, so the count is
// unknown. Readers of a streamed file consume records until EOF.
const StreamRecords = -1

// writerPool recycles the bufio.Writers every dataset writer serializes
// through. A paper-scale run opens one writer per experiment per shard;
// pooling keeps that churn out of the allocation profile the same way
// httpwire pools its per-connection buffers.
var writerPool = sync.Pool{New: func() any { return bufio.NewWriter(nil) }}

func getWriter(w io.Writer) *bufio.Writer {
	bw := writerPool.Get().(*bufio.Writer)
	bw.Reset(w)
	return bw
}

func putWriter(bw *bufio.Writer) {
	bw.Reset(nil)
	writerPool.Put(bw)
}

// Writer streams one dataset: a header line followed by one JSON record
// per observation, written as each arrives rather than from a materialized
// slice. Not safe for concurrent use; sharded crawls write one file per
// shard. Close flushes and recycles the underlying buffer — every Write
// after Close fails.
type Writer[T any] struct {
	bw   *bufio.Writer
	enc  *json.Encoder
	conv func(T) any
	n    int
}

// newStreamWriter writes the header and returns the row writer. records is
// the exact observation count when known, or StreamRecords for an
// unbounded stream.
func newStreamWriter[T any](w io.Writer, experiment string, seed uint64, scale float64, records int, conv func(T) any) (*Writer[T], error) {
	bw := getWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(Header{Format: FormatName, Version: Version, Experiment: experiment,
		Seed: seed, Scale: scale, Records: records}); err != nil {
		putWriter(bw)
		return nil, err
	}
	return &Writer[T]{bw: bw, enc: enc, conv: conv}, nil
}

// Write encodes one observation.
func (sw *Writer[T]) Write(o T) error {
	if sw.bw == nil {
		return fmt.Errorf("dataset: write after Close")
	}
	sw.n++
	return sw.enc.Encode(sw.conv(o))
}

// Count reports the records written so far.
func (sw *Writer[T]) Count() int { return sw.n }

// Close flushes buffered output and recycles the buffer. Idempotent.
func (sw *Writer[T]) Close() error {
	if sw.bw == nil {
		return nil
	}
	err := sw.bw.Flush()
	putWriter(sw.bw)
	sw.bw = nil
	sw.enc = nil
	return err
}

// Per-experiment streaming writer types.
type (
	// DNSWriter streams DNS observations.
	DNSWriter = Writer[*core.DNSObservation]
	// HTTPWriter streams HTTP observations.
	HTTPWriter = Writer[*core.HTTPObservation]
	// TLSWriter streams TLS observations.
	TLSWriter = Writer[*core.TLSObservation]
	// MonitorWriter streams monitoring observations.
	MonitorWriter = Writer[*core.MonObservation]
	// SMTPWriter streams SMTP observations.
	SMTPWriter = Writer[*core.SMTPObservation]
)

// NewDNSWriter opens a streaming DNS dataset writer. records may be
// StreamRecords when the count is unknown up front.
func NewDNSWriter(w io.Writer, seed uint64, scale float64, records int) (*DNSWriter, error) {
	return newStreamWriter(w, "dns", seed, scale, records, dnsRecordOf)
}

// NewHTTPWriter opens a streaming HTTP dataset writer.
func NewHTTPWriter(w io.Writer, seed uint64, scale float64, records int) (*HTTPWriter, error) {
	return newStreamWriter(w, "http", seed, scale, records, httpRecordOf)
}

// NewTLSWriter opens a streaming TLS dataset writer.
func NewTLSWriter(w io.Writer, seed uint64, scale float64, records int) (*TLSWriter, error) {
	return newStreamWriter(w, "tls", seed, scale, records, tlsRecordOf)
}

// NewMonitorWriter opens a streaming monitoring dataset writer.
func NewMonitorWriter(w io.Writer, seed uint64, scale float64, records int) (*MonitorWriter, error) {
	return newStreamWriter(w, "monitor", seed, scale, records, monRecordOf)
}

// NewSMTPWriter opens a streaming SMTP dataset writer.
func NewSMTPWriter(w io.Writer, seed uint64, scale float64, records int) (*SMTPWriter, error) {
	return newStreamWriter(w, "smtp", seed, scale, records, smtpRecordOf)
}
