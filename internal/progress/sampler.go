package progress

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"github.com/tftproject/tft/internal/metrics"
	"github.com/tftproject/tft/internal/simnet"
)

// Sample is one periodic flight-recorder reading: the tracker's counters,
// sliding-window rates, the ETA over the remaining node population, and the
// runtime watermarks, all stamped with time elapsed on the sampler's clock.
// It is also the "sample" line type of the JSONL checkpoint stream.
type Sample struct {
	// Type is "sample" — the checkpoint stream's line discriminator
	// (manifest lines carry "manifest", watchdog dumps "stall").
	Type       string `json:"type"`
	Experiment string `json:"experiment,omitempty"`
	// ElapsedSeconds is time since Start on the sampler's clock.
	ElapsedSeconds float64 `json:"elapsed_seconds"`

	Done       int64 `json:"done"`
	Total      int64 `json:"total"`
	Probes     int64 `json:"probes"`
	Violations int64 `json:"violations"`
	Failures   int64 `json:"failures"`
	Discarded  int64 `json:"discarded"`
	Duplicates int64 `json:"duplicates"`

	// NodesPerSec and ProbesPerSec are sliding-window rates over the last
	// Window samples.
	NodesPerSec  float64 `json:"nodes_per_sec"`
	ProbesPerSec float64 `json:"probes_per_sec"`
	// ETASeconds extrapolates the remaining (Total - Done) work at the
	// current node rate; -1 when unknown (no total, or no progress yet).
	ETASeconds float64 `json:"eta_seconds"`

	Watermarks Watermarks    `json:"watermarks"`
	Shards     []ShardStatus `json:"shards,omitempty"`
	// Stalled is set while the watchdog considers the crawl wedged.
	Stalled bool `json:"stalled,omitempty"`
}

// stallRecord is the watchdog's checkpoint line: a structured report plus
// the goroutine profile, embedded as a string so the stream stays
// line-parseable.
type stallRecord struct {
	Type                 string  `json:"type"` // "stall"
	Experiment           string  `json:"experiment,omitempty"`
	ElapsedSeconds       float64 `json:"elapsed_seconds"`
	SinceProgressSeconds float64 `json:"since_progress_seconds"`
	Done                 int64   `json:"done"`
	Probes               int64   `json:"probes"`
	Goroutines           int64   `json:"goroutines"`
	GoroutineProfile     string  `json:"goroutine_profile,omitempty"`
}

// checkpointWriterPool recycles the buffered writers in front of checkpoint
// streams, mirroring dataset's pooled-writer discipline: one Get at Start,
// one Put at Stop.
var checkpointWriterPool = sync.Pool{
	New: func() any { return bufio.NewWriterSize(nil, 16<<10) },
}

// Defaults for the sampler's tunables.
const (
	defaultInterval = time.Second
	defaultWindow   = 10
	defaultRingCap  = 512
)

// Sampler periodically snapshots a Tracker on an injected clock. All time
// flows through Clock, so a Virtual clock drives the sampler
// deterministically in tests while cmd/tft injects simnet.Real for live
// runs.
//
// Configure the exported fields before Start; they must not change while
// the sampler runs.
type Sampler struct {
	// Tracker is the progress source (required).
	Tracker *Tracker
	// Clock schedules the ticks (required).
	Clock simnet.Clock
	// Interval between samples (default 1s).
	Interval time.Duration
	// Window is how many trailing samples the rate estimate spans
	// (default 10).
	Window int
	// RingCap bounds the retained samples (default 512; oldest evicted).
	RingCap int
	// Metrics, when non-nil, receives the progress gauges
	// (progress_nodes_done, progress_probes_per_sec, progress_eta_seconds,
	// progress_heap_bytes, progress_goroutines) and the watchdog's stall
	// events.
	Metrics *metrics.Registry
	// Log, when non-nil, receives the watchdog's structured stall report.
	Log *slog.Logger
	// Checkpoint, when non-nil, receives the JSONL stream: one "sample"
	// line per tick, "stall" lines from the watchdog. The stream is flushed
	// after every line so it can be tailed live.
	Checkpoint io.Writer
	// StallAfter arms the watchdog: when no probe or completion lands for
	// at least this long, the sampler records a stall event, logs it, and
	// dumps the goroutine profile to the checkpoint. Zero disables the
	// watchdog. The watchdog fires once per stall episode and re-arms when
	// progress resumes.
	StallAfter time.Duration
	// OnSample, when non-nil, observes every sample — the -progress stderr
	// line. Called outside the sampler lock.
	OnSample func(Sample)

	mu             sync.Mutex
	started        bool
	stopped        bool
	start          time.Time
	timer          simnet.Timer
	bw             *bufio.Writer
	enc            *json.Encoder
	writeErr       error
	ring           []Sample
	ringStart      int
	window         []ratePoint
	lastCounts     int64
	lastProgressAt time.Time
	stalled        bool
}

// ratePoint is one window entry for the sliding-rate estimate.
type ratePoint struct {
	at     time.Time
	probes int64
	done   int64
}

func (s *Sampler) interval() time.Duration {
	if s.Interval > 0 {
		return s.Interval
	}
	return defaultInterval
}

func (s *Sampler) ringCap() int {
	if s.RingCap > 0 {
		return s.RingCap
	}
	return defaultRingCap
}

func (s *Sampler) windowLen() int {
	if s.Window > 0 {
		return s.Window
	}
	return defaultWindow
}

// Start arms the periodic tick. It returns an error when the required
// fields are missing or the sampler already ran.
func (s *Sampler) Start() error {
	if s.Tracker == nil {
		return errors.New("progress: Sampler.Tracker is required")
	}
	if s.Clock == nil {
		return errors.New("progress: Sampler.Clock is required")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("progress: Sampler started twice")
	}
	s.started = true
	s.start = s.Clock.Now()
	s.lastProgressAt = s.start
	if s.Checkpoint != nil {
		s.bw = checkpointWriterPool.Get().(*bufio.Writer)
		s.bw.Reset(s.Checkpoint)
		s.enc = json.NewEncoder(s.bw)
	}
	s.timer = s.Clock.AfterFunc(s.interval(), s.tick)
	return nil
}

// tick takes one sample and re-arms.
func (s *Sampler) tick() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	sample := s.sampleLocked()
	s.timer = s.Clock.AfterFunc(s.interval(), s.tick)
	cb := s.OnSample
	s.mu.Unlock()
	if cb != nil {
		cb(sample)
	}
}

// Stop disarms the tick, takes one final sample (so even a crawl shorter
// than the interval leaves a record), flushes the checkpoint, and returns
// the buffered writer to the pool. It reports the first checkpoint write
// error, if any. Stop is idempotent.
func (s *Sampler) Stop() error {
	s.mu.Lock()
	if !s.started || s.stopped {
		err := s.writeErr
		s.mu.Unlock()
		return err
	}
	s.stopped = true
	if s.timer != nil {
		s.timer.Stop()
	}
	sample := s.sampleLocked()
	if s.bw != nil {
		if err := s.bw.Flush(); err != nil && s.writeErr == nil {
			s.writeErr = err
		}
		s.bw.Reset(nil)
		checkpointWriterPool.Put(s.bw)
		s.bw = nil
		s.enc = nil
	}
	err := s.writeErr
	cb := s.OnSample
	s.mu.Unlock()
	if cb != nil {
		cb(sample)
	}
	return err
}

// Err reports the first checkpoint write error.
func (s *Sampler) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writeErr
}

// Samples returns the retained ring in chronological order.
func (s *Sampler) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, 0, len(s.ring))
	out = append(out, s.ring[s.ringStart:]...)
	out = append(out, s.ring[:s.ringStart]...)
	return out
}

// sampleLocked takes one reading: snapshot the tracker, capture watermarks,
// update rates and the watchdog, publish gauges, append to the ring, and
// write the checkpoint line. Caller holds s.mu.
func (s *Sampler) sampleLocked() Sample {
	now := s.Clock.Now()
	st := s.Tracker.Snapshot()
	wm := s.Tracker.CaptureWatermarks()

	sample := Sample{
		Type:           "sample",
		Experiment:     st.Experiment,
		ElapsedSeconds: now.Sub(s.start).Seconds(),
		Done:           st.Done,
		Total:          st.TotalNodes,
		Probes:         st.Probes,
		Violations:     st.Violations,
		Failures:       st.Failures,
		Discarded:      st.Discarded,
		Duplicates:     st.Duplicates,
		Watermarks:     wm,
		Shards:         st.Shards,
		ETASeconds:     -1,
	}

	// Sliding-window rates: compare against the oldest retained point.
	s.window = append(s.window, ratePoint{at: now, probes: st.Probes, done: st.Done})
	if n := s.windowLen() + 1; len(s.window) > n {
		s.window = s.window[len(s.window)-n:]
	}
	oldest := s.window[0]
	if dt := now.Sub(oldest.at).Seconds(); dt > 0 {
		sample.ProbesPerSec = float64(st.Probes-oldest.probes) / dt
		sample.NodesPerSec = float64(st.Done-oldest.done) / dt
	}
	if st.TotalNodes > 0 && sample.NodesPerSec > 0 {
		remaining := st.TotalNodes - st.Done
		if remaining < 0 {
			remaining = 0
		}
		sample.ETASeconds = float64(remaining) / sample.NodesPerSec
	}

	s.watchdogLocked(&sample, st, now)

	s.publishGauges(sample)

	// Bounded ring; oldest sample evicted once full.
	if len(s.ring) < s.ringCap() {
		s.ring = append(s.ring, sample)
	} else {
		s.ring[s.ringStart] = sample
		s.ringStart = (s.ringStart + 1) % len(s.ring)
	}

	published := sample
	s.Tracker.setSample(&published)

	if s.enc != nil {
		if err := s.enc.Encode(sample); err != nil && s.writeErr == nil {
			s.writeErr = err
		}
		if err := s.bw.Flush(); err != nil && s.writeErr == nil {
			s.writeErr = err
		}
	}
	return sample
}

// watchdogLocked advances the stall detector: any new probe or completion
// re-arms it; otherwise, once StallAfter elapses without progress, it fires
// exactly once per episode. Caller holds s.mu.
func (s *Sampler) watchdogLocked(sample *Sample, st Status, now time.Time) {
	counts := st.Probes + st.Done
	if counts != s.lastCounts {
		s.lastCounts = counts
		s.lastProgressAt = now
		s.stalled = false
		return
	}
	if s.StallAfter <= 0 {
		return
	}
	since := now.Sub(s.lastProgressAt)
	if since < s.StallAfter {
		sample.Stalled = s.stalled
		return
	}
	sample.Stalled = true
	if s.stalled {
		return // already reported this episode
	}
	s.stalled = true
	s.Tracker.noteStall()
	s.Metrics.Record(metrics.Event{Kind: metrics.EventStall,
		Detail: st.Experiment, Value: since.Seconds()})
	if s.Log != nil {
		s.Log.Error("crawl stalled",
			"experiment", st.Experiment,
			"since_progress", since,
			"done", st.Done,
			"total", st.TotalNodes,
			"probes", st.Probes,
			"goroutines", sample.Watermarks.Goroutines)
	}
	if s.enc != nil {
		rec := stallRecord{
			Type:                 "stall",
			Experiment:           st.Experiment,
			ElapsedSeconds:       now.Sub(s.start).Seconds(),
			SinceProgressSeconds: since.Seconds(),
			Done:                 st.Done,
			Probes:               st.Probes,
			Goroutines:           sample.Watermarks.Goroutines,
			GoroutineProfile:     goroutineProfile(),
		}
		if err := s.enc.Encode(rec); err != nil && s.writeErr == nil {
			s.writeErr = err
		}
	}
}

// publishGauges mirrors the sample into the Prometheus-exposed gauges.
// Rates round to the nearest integer (Gauge is int64); the heap gauge is in
// bytes. ETA publishes -1 while unknown, matching the JSON convention.
func (s *Sampler) publishGauges(sample Sample) {
	m := s.Metrics
	if m == nil {
		return
	}
	m.Gauge("progress_nodes_done").Set(sample.Done)
	m.Gauge("progress_nodes_total").Set(sample.Total)
	m.Gauge("progress_probes_per_sec").Set(int64(sample.ProbesPerSec + 0.5))
	eta := int64(-1)
	if sample.ETASeconds >= 0 {
		eta = int64(sample.ETASeconds + 0.5)
	}
	m.Gauge("progress_eta_seconds").Set(eta)
	m.Gauge("progress_heap_bytes").Set(int64(sample.Watermarks.HeapBytes))
	m.Gauge("progress_goroutines").Set(sample.Watermarks.Goroutines)
}

// goroutineProfile renders the debug=1 goroutine profile — the wedged-shard
// forensics the watchdog attaches to its checkpoint line.
func goroutineProfile() string {
	p := pprof.Lookup("goroutine")
	if p == nil {
		return ""
	}
	var b strings.Builder
	if err := p.WriteTo(&b, 1); err != nil {
		return ""
	}
	return b.String()
}
