package progress

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/tftproject/tft/internal/metrics"
	"github.com/tftproject/tft/internal/simnet"
)

var t0 = time.Date(2016, 4, 13, 0, 0, 0, 0, time.UTC)

func TestSamplerRequiredFields(t *testing.T) {
	if err := (&Sampler{Clock: simnet.NewVirtual(t0)}).Start(); err == nil {
		t.Fatal("Start without Tracker should fail")
	}
	if err := (&Sampler{Tracker: NewTracker()}).Start(); err == nil {
		t.Fatal("Start without Clock should fail")
	}
	s := &Sampler{Tracker: NewTracker(), Clock: simnet.NewVirtual(t0)}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err == nil {
		t.Fatal("double Start should fail")
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := s.Stop(); err != nil {
		t.Fatal("Stop must be idempotent")
	}
}

// A Virtual clock drives the sampler deterministically: rates, ETA, the
// ring, and the checkpoint stream are all exact functions of the scripted
// progress.
func TestSamplerVirtualClock(t *testing.T) {
	clock := simnet.NewVirtual(t0)
	tk := NewTracker()
	tk.Begin("dns", 1000, 4)
	var ckpt bytes.Buffer
	reg := metrics.NewRegistry()
	s := &Sampler{
		Tracker:    tk,
		Clock:      clock,
		Interval:   time.Second,
		Window:     5,
		Metrics:    reg,
		Checkpoint: &ckpt,
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}

	// 10 ticks at 10 done/probes per second.
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			tk.Probe(j % 4)
			tk.Done(j % 4)
		}
		clock.Advance(time.Second)
	}
	samples := s.Samples()
	if len(samples) != 10 {
		t.Fatalf("samples = %d, want 10", len(samples))
	}
	last := samples[len(samples)-1]
	if last.Done != 100 || last.Total != 1000 {
		t.Fatalf("last sample counts = %+v", last)
	}
	// Steady 10 nodes/sec over the window.
	if last.NodesPerSec < 9.99 || last.NodesPerSec > 10.01 {
		t.Fatalf("nodes/sec = %v, want 10", last.NodesPerSec)
	}
	// 900 remaining at 10/sec.
	if last.ETASeconds < 89.9 || last.ETASeconds > 90.1 {
		t.Fatalf("eta = %v, want 90", last.ETASeconds)
	}
	if last.ElapsedSeconds != 10 {
		t.Fatalf("elapsed = %v, want 10", last.ElapsedSeconds)
	}

	// Gauges mirror the latest sample (WritePrometheus adds the tft_ prefix).
	snap := reg.Snapshot()
	if got := snap.Gauges["progress_nodes_done"]; got != 100 {
		t.Errorf("progress_nodes_done gauge = %d", got)
	}
	if got := snap.Gauges["progress_probes_per_sec"]; got != 10 {
		t.Errorf("progress_probes_per_sec gauge = %d", got)
	}
	if got := snap.Gauges["progress_eta_seconds"]; got != 90 {
		t.Errorf("progress_eta_seconds gauge = %d", got)
	}

	// The tracker publishes the latest sample to Snapshot readers.
	if sm := tk.Snapshot().Sample; sm == nil || sm.Done != 100 {
		t.Fatalf("tracker last sample = %+v", sm)
	}

	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	// Stop appended one final sample.
	if n := len(s.Samples()); n != 11 {
		t.Fatalf("samples after Stop = %d, want 11", n)
	}

	// Every checkpoint line parses and is a "sample".
	sc := bufio.NewScanner(&ckpt)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad checkpoint line %q: %v", sc.Text(), err)
		}
		if m["type"] != "sample" {
			t.Fatalf("unexpected line type %v", m["type"])
		}
		lines++
	}
	if lines != 11 {
		t.Fatalf("checkpoint lines = %d, want 11", lines)
	}
}

func TestSamplerRingEviction(t *testing.T) {
	clock := simnet.NewVirtual(t0)
	tk := NewTracker()
	tk.Begin("dns", 0, 1)
	s := &Sampler{Tracker: tk, Clock: clock, Interval: time.Second, RingCap: 4}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		tk.Done(0)
		clock.Advance(time.Second)
	}
	samples := s.Samples()
	if len(samples) != 4 {
		t.Fatalf("ring size = %d, want 4", len(samples))
	}
	// Chronological order: oldest retained first.
	for i := 1; i < len(samples); i++ {
		if samples[i].ElapsedSeconds <= samples[i-1].ElapsedSeconds {
			t.Fatalf("ring out of order: %v", samples)
		}
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
}

// wedgedFakeShard blocks forever on a channel — the named frame the stall
// dump must surface in its goroutine profile.
func wedgedFakeShard(ch chan struct{}, wg *sync.WaitGroup) {
	wg.Done()
	<-ch
}

// The watchdog: a wedged shard trips the stall after StallAfter without
// progress, fires exactly once per episode, dumps a goroutine profile
// naming the wedged function, and re-arms when progress resumes.
func TestStallWatchdog(t *testing.T) {
	release := make(chan struct{})
	var ready sync.WaitGroup
	ready.Add(1)
	go wedgedFakeShard(release, &ready)
	ready.Wait()
	defer close(release)

	clock := simnet.NewVirtual(t0)
	tk := NewTracker()
	tk.Begin("dns", 100, 2)
	var ckpt bytes.Buffer
	reg := metrics.NewRegistry()
	s := &Sampler{
		Tracker:    tk,
		Clock:      clock,
		Interval:   time.Second,
		Metrics:    reg,
		Checkpoint: &ckpt,
		StallAfter: 3 * time.Second,
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}

	// Progress for 2 ticks, then the crawl wedges.
	tk.Probe(0)
	tk.Done(0)
	clock.Advance(time.Second)
	tk.Probe(1)
	clock.Advance(time.Second)

	// 10 stalled ticks: well past StallAfter, but only one report.
	clock.Advance(10 * time.Second)
	if got := tk.Stalls(); got != 1 {
		t.Fatalf("stalls after wedge = %d, want 1 (single-fire per episode)", got)
	}
	events := reg.Snapshot().EventsOfKind(metrics.EventStall)
	if len(events) != 1 || events[0].Detail != "dns" {
		t.Fatalf("stall events = %+v", events)
	}
	if events[0].Value < 3 {
		t.Fatalf("stall event since-progress = %v, want >= 3", events[0].Value)
	}
	samples := s.Samples()
	if !samples[len(samples)-1].Stalled {
		t.Fatal("latest sample should be marked stalled")
	}

	// The checkpoint stream carries exactly one "stall" line whose goroutine
	// profile names the wedged function.
	var stallLines []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(ckpt.Bytes()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad checkpoint line: %v", err)
		}
		if m["type"] == "stall" {
			stallLines = append(stallLines, m)
		}
	}
	if len(stallLines) != 1 {
		t.Fatalf("stall lines = %d, want 1", len(stallLines))
	}
	prof, _ := stallLines[0]["goroutine_profile"].(string)
	if !strings.Contains(prof, "wedgedFakeShard") {
		t.Fatalf("goroutine profile does not name the wedged shard:\n%s", prof)
	}

	// Progress resumes: the episode ends and a later stall fires again.
	tk.Done(1)
	clock.Advance(time.Second)
	samples = s.Samples()
	if samples[len(samples)-1].Stalled {
		t.Fatal("progress should clear the stalled flag")
	}
	clock.Advance(10 * time.Second)
	if got := tk.Stalls(); got != 2 {
		t.Fatalf("stalls after second wedge = %d, want 2 (watchdog re-arms)", got)
	}

	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
}
