// Package progress is the flight recorder for long-running crawls: a
// lock-sharded Tracker the crawl workers report into, a clock-injected
// Sampler that periodically snapshots throughput, ETA, and runtime
// watermarks into a bounded ring (and optionally a JSONL checkpoint
// stream), a stall watchdog, and the RunManifest written alongside every
// dataset release.
//
// The package follows the same two design rules as internal/metrics:
//
//   - Nil-safety: every method works on a nil *Tracker as a no-op, so the
//     crawl hot path never branches on "is the flight recorder enabled".
//   - Lock sharding: each worker shard owns a padded cell of atomic
//     counters, so concurrent sessions never serialize on progress
//     reporting; aggregates are computed at snapshot time by summing the
//     cells.
//
// Nothing in this package touches the crawl's RNG or its measured output:
// enabling the recorder cannot perturb a fixed-seed run.
package progress

import (
	"runtime"
	"sync/atomic"
)

// shardCell is one worker shard's progress counters, padded so adjacent
// shards do not share a cache line (7 x 8 bytes + 8 pad = 64).
type shardCell struct {
	done       atomic.Int64
	probes     atomic.Int64
	violations atomic.Int64
	failures   atomic.Int64
	discarded  atomic.Int64
	duplicates atomic.Int64
	faults     atomic.Int64
	_          [8]byte
}

// runState is the per-crawl portion of a Tracker, swapped atomically by
// Begin so a long-lived Tracker can recycle across a campaign's runs.
type runState struct {
	experiment string
	total      int64
	workers    int
	shards     []shardCell
}

// Tracker accumulates a crawl's live progress. Workers report through the
// shard-indexed methods; the Sampler and /progressz read a consistent-ish
// view through Snapshot. All methods are safe for concurrent use and are
// no-ops on a nil receiver.
type Tracker struct {
	run    atomic.Pointer[runState]
	stalls atomic.Int64

	// Process watermarks survive Begin: a campaign's manifest reports the
	// peaks observed across the whole process lifetime, sampled at each
	// CaptureWatermarks call (the Sampler's tick and every run finish).
	heapBytes      atomic.Uint64
	peakHeapBytes  atomic.Uint64
	goroutines     atomic.Int64
	peakGoroutines atomic.Int64
	gcPauseNs      atomic.Uint64

	lastSample atomic.Pointer[Sample]
}

// NewTracker returns an empty tracker. Begin announces each crawl.
func NewTracker() *Tracker { return &Tracker{} }

// Begin resets the per-run counters for a new crawl: experiment names the
// run ("dns", ...), total is the node population the crawl works through
// (the ETA denominator; 0 if unknown), and workers is the resolved shard
// count. Prior runs' shard counts are discarded; process watermarks and the
// stall total persist.
func (t *Tracker) Begin(experiment string, total int64, workers int) {
	if t == nil {
		return
	}
	if workers < 1 {
		workers = 1
	}
	if total < 0 {
		total = 0
	}
	t.run.Store(&runState{
		experiment: experiment,
		total:      total,
		workers:    workers,
		shards:     make([]shardCell, workers),
	})
	t.lastSample.Store(nil)
}

// cell returns shard's counter cell, or nil when no run is active.
func (t *Tracker) cell(shard int) *shardCell {
	if t == nil {
		return nil
	}
	rs := t.run.Load()
	if rs == nil || len(rs.shards) == 0 {
		return nil
	}
	if shard < 0 {
		shard = 0
	}
	return &rs.shards[shard%len(rs.shards)]
}

// Probe records one issued probe (a session handed to shard).
func (t *Tracker) Probe(shard int) {
	if c := t.cell(shard); c != nil {
		c.probes.Add(1)
	}
}

// Done records one completed node measurement on shard.
func (t *Tracker) Done(shard int) {
	if c := t.cell(shard); c != nil {
		c.done.Add(1)
	}
}

// Violation records one detected end-to-end violation on shard.
func (t *Tracker) Violation(shard int) {
	if c := t.cell(shard); c != nil {
		c.violations.Add(1)
	}
}

// Fail records one errored session on shard.
func (t *Tracker) Fail(shard int) {
	if c := t.cell(shard); c != nil {
		c.failures.Add(1)
	}
}

// Duplicate records a session that landed on an already-measured node.
func (t *Tracker) Duplicate(shard int) {
	if c := t.cell(shard); c != nil {
		c.duplicates.Add(1)
	}
}

// Discard records a session dropped by experiment policy (node switched
// mid-probe, AS quota already satisfied).
func (t *Tracker) Discard(shard int) {
	if c := t.cell(shard); c != nil {
		c.discarded.Add(1)
	}
}

// Fault records a probe lost to a transport-layer fault on shard — the
// run's error budget, disjoint from Fail's honest failures.
func (t *Tracker) Fault(shard int) {
	if c := t.cell(shard); c != nil {
		c.faults.Add(1)
	}
}

// Stalls reports how many times the watchdog fired over the tracker's
// lifetime.
func (t *Tracker) Stalls() int64 {
	if t == nil {
		return 0
	}
	return t.stalls.Load()
}

// noteStall counts one watchdog firing.
func (t *Tracker) noteStall() {
	if t != nil {
		t.stalls.Add(1)
	}
}

// Watermarks are the process-level runtime peaks the flight recorder
// samples. Peaks are observed at CaptureWatermarks calls, not continuously:
// a spike between two samples can be missed, which is the usual watermark
// trade-off.
type Watermarks struct {
	// HeapBytes is live heap at the last capture; PeakHeapBytes the highest
	// capture so far.
	HeapBytes     uint64 `json:"heap_bytes"`
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	// Goroutines / PeakGoroutines mirror the same pair for goroutine count.
	Goroutines     int64 `json:"goroutines"`
	PeakGoroutines int64 `json:"peak_goroutines"`
	// GCPauseTotalSeconds is the runtime's cumulative stop-the-world pause
	// time.
	GCPauseTotalSeconds float64 `json:"gc_pause_total_seconds"`
}

// CaptureWatermarks reads the runtime (ReadMemStats, NumGoroutine),
// advances the tracker's peaks, and returns the current watermark view.
// A nil tracker returns zero watermarks without touching the runtime.
func (t *Tracker) CaptureWatermarks() Watermarks {
	if t == nil {
		return Watermarks{}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	g := int64(runtime.NumGoroutine())
	t.heapBytes.Store(ms.HeapAlloc)
	storeMaxUint64(&t.peakHeapBytes, ms.HeapAlloc)
	t.goroutines.Store(g)
	storeMaxInt64(&t.peakGoroutines, g)
	t.gcPauseNs.Store(ms.PauseTotalNs)
	return t.watermarks()
}

// watermarks returns the last captured view without touching the runtime.
func (t *Tracker) watermarks() Watermarks {
	return Watermarks{
		HeapBytes:           t.heapBytes.Load(),
		PeakHeapBytes:       t.peakHeapBytes.Load(),
		Goroutines:          t.goroutines.Load(),
		PeakGoroutines:      t.peakGoroutines.Load(),
		GCPauseTotalSeconds: float64(t.gcPauseNs.Load()) / 1e9,
	}
}

func storeMaxUint64(p *atomic.Uint64, v uint64) {
	for {
		old := p.Load()
		if v <= old || p.CompareAndSwap(old, v) {
			return
		}
	}
}

func storeMaxInt64(p *atomic.Int64, v int64) {
	for {
		old := p.Load()
		if v <= old || p.CompareAndSwap(old, v) {
			return
		}
	}
}

// ShardStatus is one worker shard's progress counters.
type ShardStatus struct {
	Done       int64 `json:"done"`
	Probes     int64 `json:"probes"`
	Violations int64 `json:"violations"`
	Failures   int64 `json:"failures"`
	Discarded  int64 `json:"discarded"`
	Duplicates int64 `json:"duplicates"`
	Faults     int64 `json:"faults"`
}

// Status is a Tracker's point-in-time view: per-shard counters, their sums,
// the process watermarks, and (when a Sampler runs) the latest rate sample.
type Status struct {
	Experiment string `json:"experiment"`
	TotalNodes int64  `json:"total_nodes"`
	Workers    int    `json:"workers"`

	Done       int64 `json:"done"`
	Probes     int64 `json:"probes"`
	Violations int64 `json:"violations"`
	Failures   int64 `json:"failures"`
	Discarded  int64 `json:"discarded"`
	Duplicates int64 `json:"duplicates"`
	Faults     int64 `json:"faults"`

	Shards     []ShardStatus `json:"shards,omitempty"`
	Watermarks Watermarks    `json:"watermarks"`
	Stalls     int64         `json:"stalls"`

	// Sample is the Sampler's most recent output (rates, ETA); nil when no
	// sampler has ticked yet.
	Sample *Sample `json:"sample,omitempty"`
}

// Snapshot freezes the tracker. The aggregate fields are the sums of the
// returned Shards, so they always satisfy total == sum-of-shards; because
// every cell is monotonic and cells are read in order, the aggregates are
// also monotonic across successive snapshots. A nil tracker yields the zero
// Status.
func (t *Tracker) Snapshot() Status {
	if t == nil {
		return Status{}
	}
	rs := t.run.Load()
	st := Status{
		Watermarks: t.watermarks(),
		Stalls:     t.stalls.Load(),
		Sample:     t.lastSample.Load(),
	}
	if rs == nil {
		return st
	}
	st.Experiment = rs.experiment
	st.TotalNodes = rs.total
	st.Workers = rs.workers
	st.Shards = make([]ShardStatus, len(rs.shards))
	for i := range rs.shards {
		c := &rs.shards[i]
		s := ShardStatus{
			Done:       c.done.Load(),
			Probes:     c.probes.Load(),
			Violations: c.violations.Load(),
			Failures:   c.failures.Load(),
			Discarded:  c.discarded.Load(),
			Duplicates: c.duplicates.Load(),
			Faults:     c.faults.Load(),
		}
		st.Shards[i] = s
		st.Done += s.Done
		st.Probes += s.Probes
		st.Violations += s.Violations
		st.Failures += s.Failures
		st.Discarded += s.Discarded
		st.Duplicates += s.Duplicates
		st.Faults += s.Faults
	}
	return st
}

// setSample publishes the sampler's latest output for Snapshot readers.
func (t *Tracker) setSample(s *Sample) {
	if t != nil {
		t.lastSample.Store(s)
	}
}
