package progress

import (
	"sync"
	"testing"
)

func TestTrackerNilSafe(t *testing.T) {
	var tk *Tracker
	tk.Begin("dns", 10, 2)
	tk.Probe(0)
	tk.Done(0)
	tk.Violation(1)
	tk.Fail(1)
	tk.Duplicate(0)
	tk.Discard(0)
	tk.noteStall()
	if st := tk.Snapshot(); st.Done != 0 || st.Experiment != "" {
		t.Fatalf("nil tracker snapshot = %+v", st)
	}
	if wm := tk.CaptureWatermarks(); wm.PeakHeapBytes != 0 {
		t.Fatalf("nil tracker watermarks = %+v", wm)
	}
}

func TestTrackerCounts(t *testing.T) {
	tk := NewTracker()
	tk.Begin("http", 100, 4)
	for i := 0; i < 20; i++ {
		tk.Probe(i % 4)
	}
	for i := 0; i < 12; i++ {
		tk.Done(i % 4)
	}
	tk.Violation(0)
	tk.Violation(1)
	tk.Fail(2)
	tk.Duplicate(3)
	tk.Discard(3)

	st := tk.Snapshot()
	if st.Experiment != "http" || st.TotalNodes != 100 || st.Workers != 4 {
		t.Fatalf("run identity = %+v", st)
	}
	if st.Probes != 20 || st.Done != 12 || st.Violations != 2 ||
		st.Failures != 1 || st.Duplicates != 1 || st.Discarded != 1 {
		t.Fatalf("counts = %+v", st)
	}
	if len(st.Shards) != 4 {
		t.Fatalf("shards = %d", len(st.Shards))
	}

	// Begin resets per-run counts but keeps process-lifetime state.
	tk.noteStall()
	tk.Begin("tls", 50, 2)
	st = tk.Snapshot()
	if st.Done != 0 || st.Probes != 0 || st.Experiment != "tls" {
		t.Fatalf("post-Begin counts = %+v", st)
	}
	if st.Stalls != 1 {
		t.Fatalf("stall total should persist across Begin, got %d", st.Stalls)
	}
}

func TestTrackerShardClamping(t *testing.T) {
	tk := NewTracker()
	tk.Begin("dns", 10, 3)
	// Out-of-range shard indexes wrap instead of panicking.
	tk.Done(7)
	tk.Done(-1)
	if st := tk.Snapshot(); st.Done != 2 {
		t.Fatalf("wrapped shard counts lost: %+v", st)
	}
}

func TestCaptureWatermarksPeaks(t *testing.T) {
	tk := NewTracker()
	wm1 := tk.CaptureWatermarks()
	if wm1.HeapBytes == 0 || wm1.Goroutines == 0 {
		t.Fatalf("watermarks empty: %+v", wm1)
	}
	hold := make([]byte, 8<<20)
	wm2 := tk.CaptureWatermarks()
	_ = hold
	if wm2.PeakHeapBytes < wm1.PeakHeapBytes {
		t.Fatalf("peak heap regressed: %d -> %d", wm1.PeakHeapBytes, wm2.PeakHeapBytes)
	}
	if wm2.PeakHeapBytes < wm2.HeapBytes {
		t.Fatalf("peak below current: %+v", wm2)
	}
}

// The satellite race test: K shards hammer the tracker while a reader
// snapshots concurrently. Run under -race this exercises the lock-free
// cells; the assertions check that done-counts are monotonic, every
// snapshot's aggregate equals the sum of its shard rows, and the final
// totals are exact.
func TestTrackerConcurrentSnapshots(t *testing.T) {
	const (
		shards   = 8
		perShard = 5000
	)
	tk := NewTracker()
	tk.Begin("race", shards*perShard, shards)

	var writers, reader sync.WaitGroup
	stop := make(chan struct{})
	reader.Add(1)
	go func() {
		defer reader.Done()
		var lastDone, lastProbes int64
		for {
			st := tk.Snapshot()
			if st.Done < lastDone || st.Probes < lastProbes {
				t.Errorf("non-monotonic snapshot: done %d -> %d, probes %d -> %d",
					lastDone, st.Done, lastProbes, st.Probes)
				return
			}
			lastDone, lastProbes = st.Done, st.Probes
			var sum int64
			for _, sh := range st.Shards {
				sum += sh.Done
			}
			if sum != st.Done {
				t.Errorf("aggregate done %d != shard sum %d", st.Done, sum)
				return
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	for s := 0; s < shards; s++ {
		writers.Add(1)
		go func(s int) {
			defer writers.Done()
			for i := 0; i < perShard; i++ {
				tk.Probe(s)
				tk.Done(s)
				if i%10 == 0 {
					tk.Violation(s)
				}
			}
		}(s)
	}
	writers.Wait()
	close(stop)
	reader.Wait()

	st := tk.Snapshot()
	if st.Done != shards*perShard || st.Probes != shards*perShard {
		t.Fatalf("final counts: done=%d probes=%d want %d", st.Done, st.Probes, shards*perShard)
	}
	if want := int64(shards * (perShard / 10)); st.Violations != want {
		t.Fatalf("violations = %d, want %d", st.Violations, want)
	}
}
