package progress

import (
	"encoding/json"
	"io"
	"time"
)

// RunManifest is a run's flight-recorder closing statement: the
// reproducibility inputs (seed, scale, workers), the crawl's final counts,
// and the process watermarks observed while it ran. tft attaches one to
// every Run, Results.Dump writes the campaign's manifests as
// manifest.json, and checkpoint streams end with one "manifest" line.
//
// Timestamps are wall-clock (they describe the operator's run, not
// simulated time) and are zero when the caller did not supply them;
// DurationSeconds is elapsed on whatever clock the caller timed the run
// with.
type RunManifest struct {
	// Type is "manifest" in JSONL checkpoint streams; empty in
	// manifest.json (the array form is self-describing).
	Type       string `json:"type,omitempty"`
	Experiment string `json:"experiment"`

	Seed    uint64  `json:"seed"`
	Scale   float64 `json:"scale"`
	Workers int     `json:"workers"`
	Shards  int     `json:"shards"`

	StartedAt       time.Time `json:"started_at"`
	FinishedAt      time.Time `json:"finished_at"`
	DurationSeconds float64   `json:"duration_seconds"`

	// Sessions and UniqueNodes come from the crawl's Stats; NodesDone
	// counts successful observations (UniqueNodes minus sessions that
	// failed after discovery), and TotalNodes is the population the ETA
	// counted down from.
	Sessions    int64 `json:"sessions"`
	UniqueNodes int64 `json:"unique_nodes"`
	NodesDone   int64 `json:"nodes_done"`
	TotalNodes  int64 `json:"total_nodes"`
	Probes      int64 `json:"probes"`
	Violations  int64 `json:"violations"`
	Failures    int64 `json:"failures"`
	Discarded   int64 `json:"discarded"`
	Duplicates  int64 `json:"duplicates"`
	// Faults is the run's error budget: probes lost to transport faults
	// (injected chaos or real-network analogues), excluded from violation
	// denominators.
	Faults        int64 `json:"faults"`
	StoppedByRule bool  `json:"stopped_by_rule"`
	Stalls        int64 `json:"stalls"`

	Watermarks Watermarks `json:"watermarks"`
}

// Write serializes the manifest as indented JSON (Type suppressed).
func (m *RunManifest) Write(w io.Writer) error {
	out := *m
	out.Type = ""
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteLine appends the manifest as one JSONL line with Type "manifest" —
// the checkpoint stream's closing record.
func (m *RunManifest) WriteLine(w io.Writer) error {
	out := *m
	out.Type = "manifest"
	return json.NewEncoder(w).Encode(out)
}

// WriteManifests serializes a campaign's manifests as an indented JSON
// array — the manifest.json in a dataset release.
func WriteManifests(w io.Writer, ms []*RunManifest) error {
	out := make([]RunManifest, 0, len(ms))
	for _, m := range ms {
		if m == nil {
			continue
		}
		c := *m
		c.Type = ""
		out = append(out, c)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
