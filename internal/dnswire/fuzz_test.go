package dnswire

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal hammers the wire decoder: it must never panic, and
// anything it accepts must re-encode and re-decode to an equivalent
// message (decode/encode/decode stability).
func FuzzUnmarshal(f *testing.F) {
	seed := func(m *Message) {
		if wire, err := m.Marshal(); err == nil {
			f.Add(wire)
		}
	}
	seed(NewQuery(1, "d1.probe.tft-example.net", TypeA))
	r := NewQuery(2, "d2.probe.tft-example.net", TypeA).Reply()
	r.RCode = RCodeNXDomain
	seed(r)
	f.Add([]byte{0xC0, 0x0C})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		wire, err := m.Marshal()
		if err != nil {
			// Some decodable messages (e.g. with exotic names) may not be
			// re-encodable; that is fine as long as nothing panics.
			return
		}
		m2, err := Unmarshal(wire)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		if m2.ID != m.ID || m2.RCode != m.RCode ||
			len(m2.Questions) != len(m.Questions) || len(m2.Answers) != len(m.Answers) {
			t.Fatalf("unstable round trip: %+v vs %+v", m, m2)
		}
	})
}
