// Package dnswire implements the subset of the DNS wire format (RFC 1035)
// that the paper's methodology exercises: queries and responses carrying A,
// NS, CNAME, TXT, and SOA records, response codes including NXDOMAIN, and
// name compression on both encode and decode.
//
// The NXDOMAIN-hijacking experiment (§4) hinges on three wire-level
// behaviours this package provides faithfully: source-conditional answers
// (the server inspects who asked before deciding between an A record and
// RCODE NXDOMAIN), NXDOMAIN itself, and answer substitution by on-path
// interceptors, which rewrite a response message in place.
package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// Type is a DNS RR type.
type Type uint16

// Record types used by the experiments.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypeTXT   Type = 16
)

// String returns the conventional mnemonic.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypeTXT:
		return "TXT"
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// Class is a DNS class; only IN is used.
type Class uint16

// ClassIN is the Internet class.
const ClassIN Class = 1

// RCode is a DNS response code.
type RCode uint8

// Response codes.
const (
	RCodeSuccess  RCode = 0 // NOERROR
	RCodeFormat   RCode = 1 // FORMERR
	RCodeServFail RCode = 2 // SERVFAIL
	RCodeNXDomain RCode = 3 // NXDOMAIN — the code the paper's hijackers suppress
	RCodeRefused  RCode = 5 // REFUSED
)

// String returns the conventional mnemonic.
func (rc RCode) String() string {
	switch rc {
	case RCodeSuccess:
		return "NOERROR"
	case RCodeFormat:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeRefused:
		return "REFUSED"
	}
	return fmt.Sprintf("RCODE%d", uint8(rc))
}

// Question is the query section entry.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// Record is one resource record. Exactly one of the payload fields is
// meaningful, selected by Type.
type Record struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32
	// A holds the address for TypeA.
	A netip.Addr
	// Target holds the name for TypeNS and TypeCNAME.
	Target string
	// Text holds the strings for TypeTXT.
	Text []string
	// SOA holds the start-of-authority payload for TypeSOA.
	SOA *SOAData
}

// SOAData is the RDATA of an SOA record.
type SOAData struct {
	MName, RName                           string
	Serial, Refresh, Retry, Expire, MinTTL uint32
}

// Message is a DNS message.
type Message struct {
	ID                 uint16
	Response           bool
	Opcode             uint8
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              RCode
	Questions          []Question
	Answers            []Record
	Authorities        []Record
	Additionals        []Record
}

// NewQuery builds a standard recursive query for (name, type).
func NewQuery(id uint16, name string, t Type) *Message {
	return &Message{
		ID:               id,
		RecursionDesired: true,
		Questions:        []Question{{Name: name, Type: t, Class: ClassIN}},
	}
}

// Reply builds a response skeleton echoing the query's ID and question.
func (m *Message) Reply() *Message {
	r := &Message{
		ID:                 m.ID,
		Response:           true,
		Opcode:             m.Opcode,
		RecursionDesired:   m.RecursionDesired,
		RecursionAvailable: true,
		Questions:          append([]Question(nil), m.Questions...),
	}
	return r
}

// Errors returned by the codec.
var (
	ErrShortMessage   = errors.New("dnswire: truncated message")
	ErrBadName        = errors.New("dnswire: malformed domain name")
	ErrPointerLoop    = errors.New("dnswire: compression pointer loop")
	ErrBadRecord      = errors.New("dnswire: malformed resource record")
	ErrNameTooLong    = errors.New("dnswire: domain name exceeds 255 octets")
	ErrLabelTooLong   = errors.New("dnswire: label exceeds 63 octets")
	ErrTooManyRecords = errors.New("dnswire: section count exceeds message")
)

const (
	flagQR = 1 << 15
	flagAA = 1 << 10
	flagTC = 1 << 9
	flagRD = 1 << 8
	flagRA = 1 << 7
)

// Marshal encodes the message with name compression.
func (m *Message) Marshal() ([]byte, error) {
	buf := make([]byte, 12, 512)
	binary.BigEndian.PutUint16(buf[0:2], m.ID)
	var flags uint16
	if m.Response {
		flags |= flagQR
	}
	flags |= uint16(m.Opcode&0xF) << 11
	if m.Authoritative {
		flags |= flagAA
	}
	if m.Truncated {
		flags |= flagTC
	}
	if m.RecursionDesired {
		flags |= flagRD
	}
	if m.RecursionAvailable {
		flags |= flagRA
	}
	flags |= uint16(m.RCode & 0xF)
	binary.BigEndian.PutUint16(buf[2:4], flags)
	binary.BigEndian.PutUint16(buf[4:6], uint16(len(m.Questions)))
	binary.BigEndian.PutUint16(buf[6:8], uint16(len(m.Answers)))
	binary.BigEndian.PutUint16(buf[8:10], uint16(len(m.Authorities)))
	binary.BigEndian.PutUint16(buf[10:12], uint16(len(m.Additionals)))

	comp := map[string]int{}
	var err error
	for _, q := range m.Questions {
		buf, err = appendName(buf, q.Name, comp)
		if err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Type))
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Class))
	}
	for _, sec := range [][]Record{m.Answers, m.Authorities, m.Additionals} {
		for i := range sec {
			buf, err = appendRecord(buf, &sec[i], comp)
			if err != nil {
				return nil, err
			}
		}
	}
	return buf, nil
}

func appendRecord(buf []byte, r *Record, comp map[string]int) ([]byte, error) {
	var err error
	buf, err = appendName(buf, r.Name, comp)
	if err != nil {
		return nil, err
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(r.Type))
	buf = binary.BigEndian.AppendUint16(buf, uint16(r.Class))
	buf = binary.BigEndian.AppendUint32(buf, r.TTL)
	lenAt := len(buf)
	buf = append(buf, 0, 0) // RDLENGTH placeholder
	switch r.Type {
	case TypeA:
		if !r.A.Is4() {
			return nil, fmt.Errorf("%w: A record with non-IPv4 address %v", ErrBadRecord, r.A)
		}
		a4 := r.A.As4()
		buf = append(buf, a4[:]...)
	case TypeNS, TypeCNAME:
		buf, err = appendName(buf, r.Target, comp)
		if err != nil {
			return nil, err
		}
	case TypeTXT:
		for _, s := range r.Text {
			if len(s) > 255 {
				return nil, fmt.Errorf("%w: TXT string too long", ErrBadRecord)
			}
			buf = append(buf, byte(len(s)))
			buf = append(buf, s...)
		}
	case TypeSOA:
		if r.SOA == nil {
			return nil, fmt.Errorf("%w: SOA record without payload", ErrBadRecord)
		}
		buf, err = appendName(buf, r.SOA.MName, comp)
		if err != nil {
			return nil, err
		}
		buf, err = appendName(buf, r.SOA.RName, comp)
		if err != nil {
			return nil, err
		}
		for _, v := range []uint32{r.SOA.Serial, r.SOA.Refresh, r.SOA.Retry, r.SOA.Expire, r.SOA.MinTTL} {
			buf = binary.BigEndian.AppendUint32(buf, v)
		}
	default:
		return nil, fmt.Errorf("%w: unsupported type %v", ErrBadRecord, r.Type)
	}
	binary.BigEndian.PutUint16(buf[lenAt:lenAt+2], uint16(len(buf)-lenAt-2))
	return buf, nil
}

// appendName encodes a domain name, emitting a compression pointer when a
// suffix has been written before.
//
//tftlint:hotpath
func appendName(buf []byte, name string, comp map[string]int) ([]byte, error) {
	name = CanonicalName(name)
	if name == "." || name == "" {
		return append(buf, 0), nil
	}
	if len(name) > 254 {
		return nil, ErrNameTooLong
	}
	// Walk the labels by index: every suffix is a substring of name, so
	// the compression-map probes and inserts allocate nothing.
	trimmed := strings.TrimSuffix(name, ".")
	for i := 0; i < len(trimmed); {
		suffix := trimmed[i:]
		if off, ok := comp[suffix]; ok && off < 0x3FFF {
			return binary.BigEndian.AppendUint16(buf, uint16(0xC000|off)), nil
		}
		if len(buf) < 0x3FFF {
			comp[suffix] = len(buf)
		}
		l := suffix
		if j := strings.IndexByte(suffix, '.'); j >= 0 {
			l = suffix[:j]
		}
		if l == "" {
			return nil, ErrBadName
		}
		if len(l) > 63 {
			return nil, ErrLabelTooLong
		}
		buf = append(buf, byte(len(l)))
		buf = append(buf, l...)
		i += len(l) + 1
	}
	return append(buf, 0), nil
}

// Unmarshal decodes a wire-format message.
func Unmarshal(data []byte) (*Message, error) {
	if len(data) < 12 {
		return nil, ErrShortMessage
	}
	m := &Message{ID: binary.BigEndian.Uint16(data[0:2])}
	flags := binary.BigEndian.Uint16(data[2:4])
	m.Response = flags&flagQR != 0
	m.Opcode = uint8(flags >> 11 & 0xF)
	m.Authoritative = flags&flagAA != 0
	m.Truncated = flags&flagTC != 0
	m.RecursionDesired = flags&flagRD != 0
	m.RecursionAvailable = flags&flagRA != 0
	m.RCode = RCode(flags & 0xF)
	qd := int(binary.BigEndian.Uint16(data[4:6]))
	an := int(binary.BigEndian.Uint16(data[6:8]))
	ns := int(binary.BigEndian.Uint16(data[8:10]))
	ar := int(binary.BigEndian.Uint16(data[10:12]))
	if qd+an+ns+ar > len(data) {
		return nil, ErrTooManyRecords
	}

	off := 12
	var err error
	for i := 0; i < qd; i++ {
		var q Question
		q.Name, off, err = readName(data, off)
		if err != nil {
			return nil, err
		}
		if off+4 > len(data) {
			return nil, ErrShortMessage
		}
		q.Type = Type(binary.BigEndian.Uint16(data[off:]))
		q.Class = Class(binary.BigEndian.Uint16(data[off+2:]))
		off += 4
		m.Questions = append(m.Questions, q)
	}
	for _, sec := range []*[]Record{&m.Answers, &m.Authorities, &m.Additionals} {
		var n int
		switch sec {
		case &m.Answers:
			n = an
		case &m.Authorities:
			n = ns
		default:
			n = ar
		}
		for i := 0; i < n; i++ {
			var r Record
			r, off, err = readRecord(data, off)
			if err != nil {
				return nil, err
			}
			*sec = append(*sec, r)
		}
	}
	return m, nil
}

func readRecord(data []byte, off int) (Record, int, error) {
	var r Record
	var err error
	r.Name, off, err = readName(data, off)
	if err != nil {
		return r, off, err
	}
	if off+10 > len(data) {
		return r, off, ErrShortMessage
	}
	r.Type = Type(binary.BigEndian.Uint16(data[off:]))
	r.Class = Class(binary.BigEndian.Uint16(data[off+2:]))
	r.TTL = binary.BigEndian.Uint32(data[off+4:])
	rdlen := int(binary.BigEndian.Uint16(data[off+8:]))
	off += 10
	if off+rdlen > len(data) {
		return r, off, ErrShortMessage
	}
	rdata := data[off : off+rdlen]
	switch r.Type {
	case TypeA:
		if rdlen != 4 {
			return r, off, fmt.Errorf("%w: A RDATA length %d", ErrBadRecord, rdlen)
		}
		r.A = netip.AddrFrom4([4]byte(rdata))
	case TypeNS, TypeCNAME:
		// Names in RDATA may use compression pointers into the full message.
		r.Target, _, err = readName(data, off)
		if err != nil {
			return r, off, err
		}
	case TypeTXT:
		for p := 0; p < rdlen; {
			l := int(rdata[p])
			p++
			if p+l > rdlen {
				return r, off, fmt.Errorf("%w: TXT string overruns RDATA", ErrBadRecord)
			}
			r.Text = append(r.Text, string(rdata[p:p+l]))
			p += l
		}
	case TypeSOA:
		soa := &SOAData{}
		p := off
		soa.MName, p, err = readName(data, p)
		if err != nil {
			return r, off, err
		}
		soa.RName, p, err = readName(data, p)
		if err != nil {
			return r, off, err
		}
		if p+20 > len(data) || p+20 > off+rdlen {
			return r, off, ErrShortMessage
		}
		soa.Serial = binary.BigEndian.Uint32(data[p:])
		soa.Refresh = binary.BigEndian.Uint32(data[p+4:])
		soa.Retry = binary.BigEndian.Uint32(data[p+8:])
		soa.Expire = binary.BigEndian.Uint32(data[p+12:])
		soa.MinTTL = binary.BigEndian.Uint32(data[p+16:])
		r.SOA = soa
	default:
		return r, off, fmt.Errorf("%w: unsupported type %v", ErrBadRecord, r.Type)
	}
	return r, off + rdlen, nil
}

// readName decodes a possibly-compressed name starting at off, returning the
// canonical dotted name and the offset just past the name's in-place bytes.
//
//tftlint:hotpath
func readName(data []byte, off int) (string, int, error) {
	// Accumulate into a stack buffer so the whole decode costs exactly one
	// allocation (the final string). 256 bytes covers every legal name: the
	// dotted form of a maximal name is 255 bytes, which the n > 255 check
	// below rejects anyway.
	var nb [256]byte
	n := 0
	jumped := false
	end := off
	hops := 0
	for {
		if off >= len(data) {
			return "", end, ErrShortMessage
		}
		b := data[off]
		switch {
		case b == 0:
			if !jumped {
				end = off + 1
			}
			if n == 0 {
				return ".", end, nil
			}
			if n > 255 {
				return "", end, ErrNameTooLong
			}
			return string(nb[:n]), end, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(data) {
				return "", end, ErrShortMessage
			}
			ptr := int(binary.BigEndian.Uint16(data[off:]) & 0x3FFF)
			if !jumped {
				end = off + 2
				jumped = true
			}
			hops++
			if hops > 64 || ptr >= off {
				return "", end, ErrPointerLoop
			}
			off = ptr
		case b&0xC0 != 0:
			return "", end, ErrBadName
		default:
			l := int(b)
			if off+1+l > len(data) {
				return "", end, ErrShortMessage
			}
			if n+l+1 > len(nb) {
				return "", end, ErrNameTooLong
			}
			n += copy(nb[n:], data[off+1:off+1+l])
			nb[n] = '.'
			n++
			off += 1 + l
		}
	}
}

// CanonicalName lowercases a domain name and ensures a trailing dot, the
// form used as map keys throughout the repository.
func CanonicalName(name string) string {
	if canonicalAlready(name) {
		return name
	}
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" {
		return "."
	}
	if !strings.HasSuffix(name, ".") {
		name += "."
	}
	return name
}

// canonicalAlready reports whether name is already in canonical form — all
// ASCII, lowercase, whitespace-free, with a trailing dot — so CanonicalName
// can return it unchanged. Names on the hot path are canonical already; this
// check makes the common case allocation-free.
func canonicalAlready(name string) bool {
	if name == "" || name[len(name)-1] != '.' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 0x80 || (c >= 'A' && c <= 'Z') ||
			c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f' {
			return false
		}
	}
	return true
}

// IsSubdomain reports whether child equals or falls under parent.
func IsSubdomain(child, parent string) bool {
	c, p := CanonicalName(child), CanonicalName(parent)
	if p == "." {
		return true
	}
	return c == p || strings.HasSuffix(c, "."+p)
}
