package dnswire

import (
	"bytes"
	"errors"
	"math/rand"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0x1234, "node-1.probe.tft-example.net", TypeA)
	wire, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 0x1234 || got.Response || !got.RecursionDesired {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Questions) != 1 {
		t.Fatalf("questions = %d", len(got.Questions))
	}
	if got.Questions[0].Name != "node-1.probe.tft-example.net." {
		t.Fatalf("name = %q", got.Questions[0].Name)
	}
	if got.Questions[0].Type != TypeA || got.Questions[0].Class != ClassIN {
		t.Fatalf("question = %+v", got.Questions[0])
	}
}

func TestResponseWithARecord(t *testing.T) {
	q := NewQuery(7, "d1.example.org", TypeA)
	r := q.Reply()
	r.Authoritative = true
	r.Answers = append(r.Answers, Record{
		Name: "d1.example.org", Type: TypeA, Class: ClassIN, TTL: 60,
		A: netip.MustParseAddr("192.0.2.10"),
	})
	wire, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Response || !got.Authoritative || got.RCode != RCodeSuccess {
		t.Fatalf("header: %+v", got)
	}
	if len(got.Answers) != 1 || got.Answers[0].A != netip.MustParseAddr("192.0.2.10") {
		t.Fatalf("answers: %+v", got.Answers)
	}
	if got.Answers[0].TTL != 60 {
		t.Fatalf("TTL = %d", got.Answers[0].TTL)
	}
}

func TestNXDomainRoundTrip(t *testing.T) {
	q := NewQuery(9, "d2.example.org", TypeA)
	r := q.Reply()
	r.RCode = RCodeNXDomain
	r.Authorities = append(r.Authorities, Record{
		Name: "example.org", Type: TypeSOA, Class: ClassIN, TTL: 300,
		SOA: &SOAData{MName: "ns1.example.org", RName: "hostmaster.example.org",
			Serial: 2016041301, Refresh: 7200, Retry: 900, Expire: 1209600, MinTTL: 300},
	})
	wire, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.RCode != RCodeNXDomain {
		t.Fatalf("RCode = %v", got.RCode)
	}
	soa := got.Authorities[0].SOA
	if soa == nil || soa.Serial != 2016041301 || soa.MName != "ns1.example.org." {
		t.Fatalf("SOA = %+v", soa)
	}
}

func TestCNAMEAndNS(t *testing.T) {
	m := &Message{ID: 3, Response: true}
	m.Questions = []Question{{Name: "www.example.org", Type: TypeA, Class: ClassIN}}
	m.Answers = []Record{
		{Name: "www.example.org", Type: TypeCNAME, Class: ClassIN, TTL: 30, Target: "cdn.example.org"},
		{Name: "cdn.example.org", Type: TypeA, Class: ClassIN, TTL: 30, A: netip.MustParseAddr("198.51.100.4")},
	}
	m.Authorities = []Record{
		{Name: "example.org", Type: TypeNS, Class: ClassIN, TTL: 86400, Target: "ns1.example.org"},
	}
	wire, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Answers[0].Target != "cdn.example.org." {
		t.Fatalf("CNAME target = %q", got.Answers[0].Target)
	}
	if got.Authorities[0].Target != "ns1.example.org." {
		t.Fatalf("NS target = %q", got.Authorities[0].Target)
	}
}

func TestTXTMultipleStrings(t *testing.T) {
	m := &Message{ID: 5, Response: true}
	m.Answers = []Record{{Name: "t.example.org", Type: TypeTXT, Class: ClassIN, TTL: 10,
		Text: []string{"hello", "", strings.Repeat("x", 255)}}}
	wire, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Answers[0].Text, m.Answers[0].Text) {
		t.Fatalf("TXT = %q", got.Answers[0].Text)
	}
}

func TestTXTStringTooLong(t *testing.T) {
	m := &Message{Answers: []Record{{Name: "t.example.org", Type: TypeTXT, Class: ClassIN,
		Text: []string{strings.Repeat("x", 256)}}}}
	if _, err := m.Marshal(); err == nil {
		t.Fatal("overlong TXT string accepted")
	}
}

func TestCompressionShrinksAndRoundTrips(t *testing.T) {
	m := &Message{ID: 11, Response: true}
	m.Questions = []Question{{Name: "a.very.long.subdomain.of.example.org", Type: TypeA, Class: ClassIN}}
	for i := 0; i < 10; i++ {
		m.Answers = append(m.Answers, Record{
			Name: "a.very.long.subdomain.of.example.org", Type: TypeA, Class: ClassIN, TTL: 1,
			A: netip.AddrFrom4([4]byte{10, 0, 0, byte(i)}),
		})
	}
	wire, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Uncompressed, each answer would repeat the 38-byte name; compressed,
	// answers after the question use a 2-byte pointer.
	if len(wire) > 12+44+10*(2+14) {
		t.Fatalf("message not compressed: %d bytes", len(wire))
	}
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range got.Answers {
		if a.Name != "a.very.long.subdomain.of.example.org." {
			t.Fatalf("decompressed name = %q", a.Name)
		}
	}
}

func TestPointerLoopRejected(t *testing.T) {
	// Hand-craft a message whose question name is a self-pointer.
	wire := make([]byte, 16)
	wire[4], wire[5] = 0, 1 // QDCOUNT=1
	wire[12] = 0xC0
	wire[13] = 12 // pointer to itself
	_, err := Unmarshal(wire)
	if !errors.Is(err, ErrPointerLoop) {
		t.Fatalf("err = %v, want ErrPointerLoop", err)
	}
}

func TestTruncatedInputs(t *testing.T) {
	q := NewQuery(1, "abc.example.org", TypeA)
	wire, _ := q.Marshal()
	for cut := 0; cut < len(wire); cut++ {
		if _, err := Unmarshal(wire[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestUnmarshalGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		rng.Read(buf)
		Unmarshal(buf) // must not panic
	}
}

func TestLabelTooLong(t *testing.T) {
	m := NewQuery(1, strings.Repeat("a", 64)+".example.org", TypeA)
	if _, err := m.Marshal(); !errors.Is(err, ErrLabelTooLong) {
		t.Fatalf("err = %v, want ErrLabelTooLong", err)
	}
}

func TestNameTooLong(t *testing.T) {
	long := strings.Repeat("abcdefgh.", 32) + "example.org"
	m := NewQuery(1, long, TypeA)
	if _, err := m.Marshal(); !errors.Is(err, ErrNameTooLong) {
		t.Fatalf("err = %v, want ErrNameTooLong", err)
	}
}

func TestCanonicalName(t *testing.T) {
	cases := map[string]string{
		"Example.ORG":   "example.org.",
		"example.org.":  "example.org.",
		"":              ".",
		" example.org ": "example.org.",
	}
	for in, want := range cases {
		if got := CanonicalName(in); got != want {
			t.Errorf("CanonicalName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestIsSubdomain(t *testing.T) {
	if !IsSubdomain("a.b.example.org", "example.org") {
		t.Error("subdomain not detected")
	}
	if !IsSubdomain("example.org", "example.org.") {
		t.Error("self not detected")
	}
	if IsSubdomain("notexample.org", "example.org") {
		t.Error("suffix-collision false positive")
	}
	if !IsSubdomain("anything.at.all", ".") {
		t.Error("root should contain everything")
	}
}

func TestReplyEchoesQuestion(t *testing.T) {
	q := NewQuery(99, "q.example.org", TypeTXT)
	r := q.Reply()
	if !r.Response || r.ID != 99 || len(r.Questions) != 1 || r.Questions[0].Name != "q.example.org" {
		t.Fatalf("Reply = %+v", r)
	}
}

// randName builds a random valid domain name from a fuzz seed.
func randName(rng *rand.Rand) string {
	labels := 1 + rng.Intn(4)
	parts := make([]string, labels)
	for i := range parts {
		n := 1 + rng.Intn(12)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte('a' + rng.Intn(26))
		}
		parts[i] = string(b)
	}
	return strings.Join(parts, ".")
}

// Property: any well-formed message round-trips through Marshal/Unmarshal
// preserving header bits, questions, and answers.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := &Message{
			ID:               uint16(rng.Uint32()),
			Response:         rng.Intn(2) == 0,
			Authoritative:    rng.Intn(2) == 0,
			RecursionDesired: rng.Intn(2) == 0,
			RCode:            RCode(rng.Intn(6)),
		}
		for i := 0; i < 1+rng.Intn(3); i++ {
			m.Questions = append(m.Questions, Question{Name: randName(rng), Type: TypeA, Class: ClassIN})
		}
		for i := 0; i < rng.Intn(5); i++ {
			switch rng.Intn(3) {
			case 0:
				m.Answers = append(m.Answers, Record{Name: randName(rng), Type: TypeA, Class: ClassIN,
					TTL: rng.Uint32(), A: netip.AddrFrom4([4]byte{byte(rng.Intn(256)), 1, 2, 3})})
			case 1:
				m.Answers = append(m.Answers, Record{Name: randName(rng), Type: TypeCNAME, Class: ClassIN,
					TTL: rng.Uint32(), Target: randName(rng)})
			default:
				m.Answers = append(m.Answers, Record{Name: randName(rng), Type: TypeTXT, Class: ClassIN,
					TTL: rng.Uint32(), Text: []string{randName(rng)}})
			}
		}
		wire, err := m.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(wire)
		if err != nil {
			return false
		}
		if got.ID != m.ID || got.Response != m.Response || got.RCode != m.RCode ||
			got.Authoritative != m.Authoritative || got.RecursionDesired != m.RecursionDesired {
			return false
		}
		if len(got.Questions) != len(m.Questions) || len(got.Answers) != len(m.Answers) {
			return false
		}
		for i, q := range m.Questions {
			if got.Questions[i].Name != CanonicalName(q.Name) || got.Questions[i].Type != q.Type {
				return false
			}
		}
		for i, a := range m.Answers {
			g := got.Answers[i]
			if g.Name != CanonicalName(a.Name) || g.Type != a.Type || g.TTL != a.TTL {
				return false
			}
			switch a.Type {
			case TypeA:
				if g.A != a.A {
					return false
				}
			case TypeCNAME:
				if g.Target != CanonicalName(a.Target) {
					return false
				}
			case TypeTXT:
				if !reflect.DeepEqual(g.Text, a.Text) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Marshal output is deterministic.
func TestPropertyMarshalDeterministic(t *testing.T) {
	f := func(id uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewQuery(id, randName(rng), TypeA)
		w1, err1 := m.Marshal()
		w2, err2 := m.Marshal()
		return err1 == nil && err2 == nil && bytes.Equal(w1, w2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTypeAndRCodeStrings(t *testing.T) {
	if TypeA.String() != "A" || TypeSOA.String() != "SOA" || Type(99).String() != "TYPE99" {
		t.Error("Type.String mismatch")
	}
	if RCodeNXDomain.String() != "NXDOMAIN" || RCode(9).String() != "RCODE9" {
		t.Error("RCode.String mismatch")
	}
}
