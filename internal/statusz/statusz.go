// Package statusz is the daemons' live-introspection surface: one HTTP
// handler exposing the metrics registry (Prometheus text exposition and
// the expvar-style JSON snapshot), the span collector, the crawl event
// ring, and — behind a flag — net/http/pprof. It is the debug listener
// the super proxy mounts on -metrics-addr, playing the role Luminati's
// own debug headers played for the paper: letting an operator ask "what
// happened to request N" while the service is running.
package statusz

import (
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"

	"github.com/tftproject/tft/internal/metrics"
	"github.com/tftproject/tft/internal/trace"
)

// Server wires the introspection endpoints over the process's telemetry.
// Every field is optional: nil sources serve empty-but-valid documents,
// so daemons can mount the surface before deciding which telemetry to
// enable.
type Server struct {
	// Metrics backs /metrics (Prometheus by default, ?format=json for the
	// snapshot) and /events.
	Metrics *metrics.Registry
	// Tracer backs /traces.
	Tracer *trace.Tracer
	// Pprof additionally mounts net/http/pprof under /debug/pprof/.
	Pprof bool
	// Log receives one record per request when set.
	Log *slog.Logger
}

// Handler builds the introspection mux:
//
//	/statusz        text overview with endpoint index and telemetry counts
//	/metrics        Prometheus text exposition; ?format=json for the snapshot
//	/traces         recent spans as JSON; ?kind=, ?zid=, ?limit= filters
//	/events         crawl event ring as JSONL; ?kind= filter
//	/debug/pprof/   (only when Pprof is set)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/traces", s.handleTraces)
	mux.HandleFunc("/events", s.handleEvents)
	if s.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s.logged(mux)
}

func (s *Server) logged(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.Log != nil {
			s.Log.InfoContext(r.Context(), "statusz request",
				"path", r.URL.Path, "remote", r.RemoteAddr)
		}
		next.ServeHTTP(w, r)
	})
}

// Start listens on addr and serves the handler in a background goroutine,
// returning the bound address (useful with ":0" in tests and scripts).
func (s *Server) Start(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		srv := &http.Server{Handler: s.Handler()}
		if err := srv.Serve(l); err != nil && s.Log != nil {
			s.Log.Error("statusz listener stopped", "err", err)
		}
	}()
	return l.Addr(), nil
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	snap := s.Metrics.Snapshot()
	fmt.Fprintln(w, "tft statusz")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "counters:    %d\n", len(snap.Counters))
	fmt.Fprintf(w, "gauges:      %d\n", len(snap.Gauges))
	fmt.Fprintf(w, "histograms:  %d\n", len(snap.Histograms))
	fmt.Fprintf(w, "events:      %d retained / %d total\n", len(snap.Events), snap.EventsTotal)
	fmt.Fprintf(w, "spans:       %d retained / %d total\n", len(s.Tracer.Spans()), s.Tracer.Total())
	fmt.Fprintln(w)
	fmt.Fprintln(w, "endpoints:")
	fmt.Fprintln(w, "  /metrics             Prometheus text exposition")
	fmt.Fprintln(w, "  /metrics?format=json expvar-style snapshot")
	fmt.Fprintln(w, "  /traces              recent spans (?kind=, ?zid=, ?limit=)")
	fmt.Fprintln(w, "  /events              crawl event ring as JSONL (?kind=)")
	if s.Pprof {
		fmt.Fprintln(w, "  /debug/pprof/        runtime profiles")
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		if err := s.Metrics.WriteJSON(w); err != nil && s.Log != nil {
			s.Log.Error("metrics json dump", "err", err)
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.Metrics.WritePrometheus(w); err != nil && s.Log != nil {
		s.Log.Error("metrics exposition", "err", err)
	}
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	kind := trace.Kind(q.Get("kind"))
	zid := q.Get("zid")
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = n
	}
	spans := s.Tracer.Spans()
	out := spans[:0:0]
	for _, d := range spans {
		if kind != "" && d.Kind != kind {
			continue
		}
		if zid != "" && d.Str("zid") != zid {
			continue
		}
		out = append(out, d)
	}
	// Newest last; the limit keeps the most recent spans.
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if err := trace.WriteJSONL(w, out); err != nil && s.Log != nil {
		s.Log.Error("traces dump", "err", err)
	}
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	var kinds []metrics.EventKind
	if v := r.URL.Query().Get("kind"); v != "" {
		k, ok := metrics.ParseEventKind(v)
		if !ok {
			http.Error(w, "unknown event kind", http.StatusBadRequest)
			return
		}
		kinds = append(kinds, k)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if err := s.Metrics.Snapshot().WriteEventsJSONL(w, kinds...); err != nil && s.Log != nil {
		s.Log.Error("events dump", "err", err)
	}
}
