// Package statusz is the daemons' live-introspection surface: one HTTP
// handler exposing the metrics registry (Prometheus text exposition and
// the expvar-style JSON snapshot), the span collector, the crawl event
// ring, and — behind a flag — net/http/pprof. It is the debug listener
// the super proxy mounts on -metrics-addr, playing the role Luminati's
// own debug headers played for the paper: letting an operator ask "what
// happened to request N" while the service is running.
package statusz

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"github.com/tftproject/tft/internal/metrics"
	"github.com/tftproject/tft/internal/progress"
	"github.com/tftproject/tft/internal/trace"
)

// Server wires the introspection endpoints over the process's telemetry.
// Every field is optional: nil sources serve empty-but-valid documents,
// so daemons can mount the surface before deciding which telemetry to
// enable.
type Server struct {
	// Metrics backs /metrics (Prometheus by default, ?format=json for the
	// snapshot) and /events.
	Metrics *metrics.Registry
	// Tracer backs /traces.
	Tracer *trace.Tracer
	// Progress backs /progressz — the flight recorder's live crawl view.
	Progress *progress.Tracker
	// Pprof additionally mounts net/http/pprof under /debug/pprof/.
	Pprof bool
	// Log receives one record per request when set.
	Log *slog.Logger
}

// Handler builds the introspection mux:
//
//	/statusz        text overview with endpoint index and telemetry counts
//	/metrics        Prometheus text exposition; ?format=json for the snapshot
//	/progressz      live crawl progress; ?format=json for the full snapshot
//	/traces         recent spans as JSON; ?kind=, ?zid=, ?limit= filters
//	/events         crawl event ring as JSONL; ?kind=, ?limit= filters
//	/debug/pprof/   (only when Pprof is set)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/progressz", s.handleProgressz)
	mux.HandleFunc("/traces", s.handleTraces)
	mux.HandleFunc("/events", s.handleEvents)
	if s.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s.logged(mux)
}

func (s *Server) logged(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.Log != nil {
			s.Log.InfoContext(r.Context(), "statusz request",
				"path", r.URL.Path, "remote", r.RemoteAddr)
		}
		next.ServeHTTP(w, r)
	})
}

// Start listens on addr and serves the handler in a background goroutine,
// returning the bound address (useful with ":0" in tests and scripts).
func (s *Server) Start(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		srv := &http.Server{Handler: s.Handler()}
		if err := srv.Serve(l); err != nil && s.Log != nil {
			s.Log.Error("statusz listener stopped", "err", err)
		}
	}()
	return l.Addr(), nil
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	snap := s.Metrics.Snapshot()
	fmt.Fprintln(w, "tft statusz")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "counters:    %d\n", len(snap.Counters))
	fmt.Fprintf(w, "gauges:      %d\n", len(snap.Gauges))
	fmt.Fprintf(w, "histograms:  %d\n", len(snap.Histograms))
	fmt.Fprintf(w, "events:      %d retained / %d total\n", len(snap.Events), snap.EventsTotal)
	fmt.Fprintf(w, "spans:       %d retained / %d total\n", len(s.Tracer.Spans()), s.Tracer.Total())
	fmt.Fprintln(w)
	fmt.Fprintln(w, "endpoints:")
	fmt.Fprintln(w, "  /metrics             Prometheus text exposition")
	fmt.Fprintln(w, "  /metrics?format=json expvar-style snapshot")
	fmt.Fprintln(w, "  /progressz           live crawl progress (?format=json)")
	fmt.Fprintln(w, "  /traces              recent spans (?kind=, ?zid=, ?limit=)")
	fmt.Fprintln(w, "  /events              crawl event ring as JSONL (?kind=, ?limit=)")
	if s.Pprof {
		fmt.Fprintln(w, "  /debug/pprof/        runtime profiles")
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		if err := s.Metrics.WriteJSON(w); err != nil && s.Log != nil {
			s.Log.Error("metrics json dump", "err", err)
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.Metrics.WritePrometheus(w); err != nil && s.Log != nil {
		s.Log.Error("metrics exposition", "err", err)
	}
}

// handleProgressz renders the flight recorder's live view of the crawl: a
// plain-text summary by default, the full progress.Status document with
// ?format=json.
func (s *Server) handleProgressz(w http.ResponseWriter, r *http.Request) {
	st := s.Progress.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil && s.Log != nil {
			s.Log.Error("progressz dump", "err", err)
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "tft progressz")
	fmt.Fprintln(w)
	if st.Experiment == "" {
		fmt.Fprintln(w, "no run in progress")
		return
	}
	fmt.Fprintf(w, "experiment:  %s\n", st.Experiment)
	pct := 0.0
	if st.TotalNodes > 0 {
		pct = 100 * float64(st.Done) / float64(st.TotalNodes)
	}
	fmt.Fprintf(w, "nodes:       %d/%d (%.1f%%) done, %d workers, %d shards\n",
		st.Done, st.TotalNodes, pct, st.Workers, len(st.Shards))
	fmt.Fprintf(w, "probes:      %d issued, %d failed, %d duplicate, %d discarded\n",
		st.Probes, st.Failures, st.Duplicates, st.Discarded)
	fmt.Fprintf(w, "violations:  %d\n", st.Violations)
	if sm := st.Sample; sm != nil {
		fmt.Fprintf(w, "throughput:  %.1f probes/s, %.1f nodes/s\n",
			sm.ProbesPerSec, sm.NodesPerSec)
		if sm.ETASeconds >= 0 {
			fmt.Fprintf(w, "eta:         %.0fs\n", sm.ETASeconds)
		} else {
			fmt.Fprintln(w, "eta:         unknown")
		}
	}
	fmt.Fprintf(w, "heap:        %d bytes (peak %d)\n",
		st.Watermarks.HeapBytes, st.Watermarks.PeakHeapBytes)
	fmt.Fprintf(w, "goroutines:  %d (peak %d)\n",
		st.Watermarks.Goroutines, st.Watermarks.PeakGoroutines)
	fmt.Fprintf(w, "gc pause:    %.3fs total\n", st.Watermarks.GCPauseTotalSeconds)
	fmt.Fprintf(w, "stalls:      %d\n", st.Stalls)
}

// parseLimit validates an optional non-negative integer ?limit= value,
// answering the request itself (400 plus the endpoint's usage line) on a
// malformed one.
func (s *Server) parseLimit(w http.ResponseWriter, r *http.Request, usage string) (int, bool) {
	v := r.URL.Query().Get("limit")
	if v == "" {
		return 0, true
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		http.Error(w, fmt.Sprintf("bad limit %q: must be a non-negative integer\nusage: %s", v, usage),
			http.StatusBadRequest)
		return 0, false
	}
	return n, true
}

// tracesUsage is /traces' self-describing error text; the kind list comes
// from the span vocabulary, not a hand-maintained copy.
func tracesUsage() string {
	kinds := trace.Kinds()
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = string(k)
	}
	return fmt.Sprintf("/traces?kind=<%s>&zid=<zid>&limit=<non-negative int>",
		strings.Join(names, "|"))
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	kind := trace.Kind(q.Get("kind"))
	if kind != "" && !trace.ValidKind(kind) {
		http.Error(w, fmt.Sprintf("unknown span kind %q\nusage: %s", kind, tracesUsage()),
			http.StatusBadRequest)
		return
	}
	zid := q.Get("zid")
	limit, ok := s.parseLimit(w, r, tracesUsage())
	if !ok {
		return
	}
	spans := s.Tracer.Spans()
	out := spans[:0:0]
	for _, d := range spans {
		if kind != "" && d.Kind != kind {
			continue
		}
		if zid != "" && d.Str("zid") != zid {
			continue
		}
		out = append(out, d)
	}
	// Newest last; the limit keeps the most recent spans.
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if err := trace.WriteJSONL(w, out); err != nil && s.Log != nil {
		s.Log.Error("traces dump", "err", err)
	}
}

// eventsUsage is /events' self-describing error text; the kind list comes
// from metrics.EventKinds, the enum's single source of truth.
func eventsUsage() string {
	kinds := metrics.EventKinds()
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = k.String()
	}
	return fmt.Sprintf("/events?kind=<%s>&limit=<non-negative int>",
		strings.Join(names, "|"))
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	var kinds []metrics.EventKind
	if v := r.URL.Query().Get("kind"); v != "" {
		k, ok := metrics.ParseEventKind(v)
		if !ok {
			http.Error(w, fmt.Sprintf("unknown event kind %q\nusage: %s", v, eventsUsage()),
				http.StatusBadRequest)
			return
		}
		kinds = append(kinds, k)
	}
	limit, ok := s.parseLimit(w, r, eventsUsage())
	if !ok {
		return
	}
	snap := s.Metrics.Snapshot()
	if limit > 0 {
		// The ring is oldest-first; the limit keeps the most recent events
		// matching the kind filter.
		events := snap.Events
		if len(kinds) > 0 {
			events = events[:0:0]
			for _, e := range snap.Events {
				if e.Kind == kinds[0] {
					events = append(events, e)
				}
			}
			kinds = nil
		}
		if len(events) > limit {
			events = events[len(events)-limit:]
		}
		snap.Events = events
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if err := snap.WriteEventsJSONL(w, kinds...); err != nil && s.Log != nil {
		s.Log.Error("events dump", "err", err)
	}
}
