package statusz

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/tftproject/tft/internal/metrics"
	"github.com/tftproject/tft/internal/progress"
	"github.com/tftproject/tft/internal/trace"
)

func testServer(t *testing.T, pprof bool) (*Server, *httptest.Server) {
	t.Helper()
	reg := metrics.NewRegistry()
	reg.Counter("crawl_sessions_total").Add(3)
	reg.Record(metrics.Event{Kind: metrics.EventViolation, ZID: "z1", Detail: "dns_hijack"})
	reg.Record(metrics.Event{Kind: metrics.EventSessionStarted, Session: "s1"})

	clock := time.Unix(1460505600, 0)
	tr := trace.New(func() time.Time { clock = clock.Add(time.Millisecond); return clock }, 0)
	root := tr.StartRoot("probe.dns", trace.KindClient)
	child := tr.StartChild(root.Context(), "node.fetch", trace.KindFetch, trace.Str("zid", "z1"))
	child.End()
	root.End()
	other := tr.StartRoot("probe.http", trace.KindClient, trace.Str("zid", "z2"))
	other.End()

	s := &Server{Metrics: reg, Tracer: tr, Pprof: pprof}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestEndpoints(t *testing.T) {
	_, ts := testServer(t, false)

	code, body := get(t, ts.URL+"/statusz")
	if code != http.StatusOK || !strings.Contains(body, "tft statusz") {
		t.Fatalf("/statusz = %d %q", code, body)
	}
	if !strings.Contains(body, "3 retained / 3 total") {
		t.Errorf("/statusz missing span counts:\n%s", body)
	}

	code, body = get(t, ts.URL+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "tft_crawl_sessions_total 3") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if !strings.Contains(body, "# TYPE tft_events_total counter") {
		t.Errorf("/metrics missing exposition type line:\n%s", body)
	}

	code, body = get(t, ts.URL+"/metrics?format=json")
	var snap metrics.Snapshot
	if code != http.StatusOK || json.Unmarshal([]byte(body), &snap) != nil {
		t.Fatalf("/metrics?format=json = %d %q", code, body)
	}
	if snap.Counter("crawl_sessions_total") != 3 {
		t.Errorf("json snapshot counter = %d", snap.Counter("crawl_sessions_total"))
	}
}

func TestTracesFiltering(t *testing.T) {
	_, ts := testServer(t, false)

	lines := func(body string) []string {
		body = strings.TrimSpace(body)
		if body == "" {
			return nil
		}
		return strings.Split(body, "\n")
	}

	_, body := get(t, ts.URL+"/traces")
	if n := len(lines(body)); n != 3 {
		t.Fatalf("/traces lines = %d, want 3:\n%s", n, body)
	}
	_, body = get(t, ts.URL+"/traces?kind=fetch")
	got := lines(body)
	if len(got) != 1 || !strings.Contains(got[0], "node.fetch") {
		t.Fatalf("/traces?kind=fetch = %v", got)
	}
	_, body = get(t, ts.URL+"/traces?zid=z2")
	got = lines(body)
	if len(got) != 1 || !strings.Contains(got[0], "probe.http") {
		t.Fatalf("/traces?zid=z2 = %v", got)
	}
	_, body = get(t, ts.URL+"/traces?limit=1")
	got = lines(body)
	if len(got) != 1 || !strings.Contains(got[0], "probe.http") {
		t.Fatalf("/traces?limit=1 should keep the newest span, got %v", got)
	}
	code, _ := get(t, ts.URL+"/traces?limit=bogus")
	if code != http.StatusBadRequest {
		t.Fatalf("bad limit = %d, want 400", code)
	}
}

func TestEventsFiltering(t *testing.T) {
	_, ts := testServer(t, false)

	_, body := get(t, ts.URL+"/events")
	if n := len(strings.Split(strings.TrimSpace(body), "\n")); n != 2 {
		t.Fatalf("/events lines = %d, want 2:\n%s", n, body)
	}
	_, body = get(t, ts.URL+"/events?kind=violation")
	got := strings.Split(strings.TrimSpace(body), "\n")
	if len(got) != 1 || !strings.Contains(got[0], "dns_hijack") {
		t.Fatalf("/events?kind=violation = %v", got)
	}
	code, _ := get(t, ts.URL+"/events?kind=bogus")
	if code != http.StatusBadRequest {
		t.Fatalf("unknown kind = %d, want 400", code)
	}
}

// Malformed filter parameters come back as 400s that teach the caller the
// endpoint's query vocabulary instead of a bare error string.
func TestFilterValidation(t *testing.T) {
	_, ts := testServer(t, false)

	cases := []struct {
		path string
		want string // substring the usage text must carry
	}{
		{"/traces?kind=bogus", "superproxy"},
		{"/traces?limit=-1", "non-negative"},
		{"/traces?limit=abc", "usage: /traces"},
		{"/events?kind=bogus", "session_started"},
		{"/events?limit=-3", "usage: /events"},
		{"/events?limit=1.5", "non-negative"},
	}
	for _, tc := range cases {
		code, body := get(t, ts.URL+tc.path)
		if code != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400", tc.path, code)
		}
		if !strings.Contains(body, tc.want) {
			t.Errorf("%s body %q missing %q", tc.path, body, tc.want)
		}
	}

	// Valid filters still pass.
	code, _ := get(t, ts.URL+"/traces?kind=attempt&limit=5")
	if code != http.StatusOK {
		t.Fatalf("/traces?kind=attempt&limit=5 = %d", code)
	}
}

// /events?limit= keeps the newest matching events.
func TestEventsLimit(t *testing.T) {
	_, ts := testServer(t, false)
	_, body := get(t, ts.URL+"/events?limit=1")
	got := strings.Split(strings.TrimSpace(body), "\n")
	if len(got) != 1 || !strings.Contains(got[0], "session_started") {
		t.Fatalf("/events?limit=1 should keep the newest event, got %v", got)
	}
	_, body = get(t, ts.URL+"/events?kind=violation&limit=1")
	got = strings.Split(strings.TrimSpace(body), "\n")
	if len(got) != 1 || !strings.Contains(got[0], "dns_hijack") {
		t.Fatalf("/events?kind=violation&limit=1 = %v", got)
	}
}

func TestProgressz(t *testing.T) {
	tk := progress.NewTracker()
	tk.Begin("dns", 40, 4)
	for i := 0; i < 10; i++ {
		tk.Probe(i % 4)
		tk.Done(i % 4)
	}
	tk.Violation(2)
	s := &Server{Progress: tk}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	code, body := get(t, ts.URL+"/progressz")
	if code != http.StatusOK || !strings.Contains(body, "tft progressz") {
		t.Fatalf("/progressz = %d %q", code, body)
	}
	if !strings.Contains(body, "10/40 (25.0%)") {
		t.Errorf("/progressz missing node progress:\n%s", body)
	}
	if !strings.Contains(body, "violations:  1") {
		t.Errorf("/progressz missing violations:\n%s", body)
	}

	code, body = get(t, ts.URL+"/progressz?format=json")
	var st progress.Status
	if code != http.StatusOK || json.Unmarshal([]byte(body), &st) != nil {
		t.Fatalf("/progressz?format=json = %d %q", code, body)
	}
	if st.Experiment != "dns" || st.Done != 10 || st.TotalNodes != 40 || st.Violations != 1 {
		t.Errorf("json status = %+v", st)
	}
	if len(st.Shards) != 4 {
		t.Errorf("json status shards = %d, want 4", len(st.Shards))
	}
}

func TestPprofGating(t *testing.T) {
	_, ts := testServer(t, false)
	code, _ := get(t, ts.URL+"/debug/pprof/cmdline")
	if code != http.StatusNotFound {
		t.Fatalf("pprof off: /debug/pprof/cmdline = %d, want 404", code)
	}

	_, ts2 := testServer(t, true)
	code, _ = get(t, ts2.URL+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("pprof on: /debug/pprof/cmdline = %d, want 200", code)
	}
}

// Nil telemetry sources still serve valid (empty) documents.
func TestNilSources(t *testing.T) {
	ts := httptest.NewServer((&Server{}).Handler())
	defer ts.Close()
	for _, path := range []string{"/statusz", "/metrics", "/metrics?format=json", "/traces", "/events", "/progressz", "/progressz?format=json"} {
		code, _ := get(t, ts.URL+path)
		if code != http.StatusOK {
			t.Fatalf("%s = %d with nil sources", path, code)
		}
	}
	_, body := get(t, ts.URL+"/metrics")
	if !strings.Contains(body, "tft_events_total 0") {
		t.Fatalf("nil /metrics = %q", body)
	}
}
