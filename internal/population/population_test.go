package population

import (
	"context"
	"testing"

	"github.com/tftproject/tft/internal/dnswire"
	"github.com/tftproject/tft/internal/geo"
	"github.com/tftproject/tft/internal/proxynet"
)

const (
	testSeed  = 42
	testScale = 0.02
)

func dnsWorld(t testing.TB) *World {
	t.Helper()
	w, err := BuildDNSWorld(testSeed, testScale)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func sc(n int, s float64) int { return int(float64(n) * s) }

func approx(t *testing.T, label string, got, want int, tol float64) {
	t.Helper()
	lo := int(float64(want) * (1 - tol))
	hi := int(float64(want)*(1+tol)) + 2
	if got < lo || got > hi {
		t.Errorf("%s = %d, want %d (±%.0f%%)", label, got, want, tol*100)
	}
}

func TestDNSWorldScaleTotals(t *testing.T) {
	w := dnsWorld(t)
	wantNodes := sc(DNSTotalNodes, testScale)
	approx(t, "pool size", w.Pool.Len(), wantNodes, 0.10)

	hijacked := 0
	for _, tr := range w.Truths() {
		if tr.DNSHijacker != "" {
			hijacked++
		}
	}
	approx(t, "hijacked nodes", hijacked, sc(DNSHijackTotal, testScale), 0.15)
}

func TestDNSWorldCountryRatios(t *testing.T) {
	w := dnsWorld(t)
	total := make(map[geo.CountryCode]int)
	hij := make(map[geo.CountryCode]int)
	for _, tr := range w.Truths() {
		total[tr.Country]++
		if tr.DNSHijacker != "" {
			hij[tr.Country]++
		}
	}
	for _, row := range []CountryDNS{Table3[0], Table3[3], Table3[5]} { // MY, GB, US
		gotRatio := float64(hij[row.Country]) / float64(total[row.Country])
		wantRatio := float64(row.Hijacked) / float64(row.Total)
		if gotRatio < wantRatio*0.8 || gotRatio > wantRatio*1.25 {
			t.Errorf("%s hijack ratio = %.3f, want ~%.3f", row.Country, gotRatio, wantRatio)
		}
	}
	if len(total) < 150 {
		t.Errorf("world spans %d countries, want ~167", len(total))
	}
}

func TestDNSWorldDeterministic(t *testing.T) {
	w1 := dnsWorld(t)
	w2 := dnsWorld(t)
	if w1.Pool.Len() != w2.Pool.Len() {
		t.Fatalf("pool sizes differ: %d vs %d", w1.Pool.Len(), w2.Pool.Len())
	}
	n1, n2 := w1.Pool.Nodes(), w2.Pool.Nodes()
	for i := range n1 {
		if n1[i].ZID != n2[i].ZID || n1[i].Addr != n2[i].Addr || n1[i].Country != n2[i].Country {
			t.Fatalf("node %d differs: %v vs %v", i, n1[i], n2[i])
		}
	}
	for _, t1 := range w1.Truths() {
		if t2 := w2.TruthFor(t1.ZID); t2 == nil || *t1 != *t2 {
			t.Fatalf("truth differs for %s", t1.ZID)
		}
	}
}

func TestDNSWorldGroundTruthBehaviour(t *testing.T) {
	// Ground truth must match behaviour: a node marked hijacked must
	// actually receive a rewritten NXDOMAIN, and a clean node must not.
	w := dnsWorld(t)
	w.Auth.SetRule("gone."+Zone, nil) // ensure NXDOMAIN (no rule)
	checked := map[string]int{}
	for _, n := range w.Pool.Nodes() {
		tr := w.TruthFor(n.ZID)
		kind := "clean"
		if tr.DNSHijacker != "" {
			kind = "hijacked"
		}
		if checked[kind] >= 40 {
			continue
		}
		checked[kind]++
		ip, rcode, err := n.ResolveA(context.Background(), "gone."+Zone)
		if err != nil {
			t.Fatalf("%s: %v", n.ZID, err)
		}
		if tr.DNSHijacker == "" && rcode != dnswire.RCodeNXDomain {
			t.Fatalf("clean node %s got rcode %v ip %v", n.ZID, rcode, ip)
		}
		if tr.DNSHijacker != "" && (rcode != dnswire.RCodeSuccess || !ip.IsValid()) {
			t.Fatalf("hijacked node %s (by %s) got rcode %v", n.ZID, tr.DNSHijacker, rcode)
		}
	}
	if checked["hijacked"] == 0 || checked["clean"] == 0 {
		t.Fatal("did not exercise both classes")
	}
}

func TestDNSWorldGoogleUsersExist(t *testing.T) {
	w := dnsWorld(t)
	google, pathHijacked := 0, 0
	for _, tr := range w.Truths() {
		if tr.UsesGoogleDNS {
			google++
			if tr.DNSHijacker != "" {
				pathHijacked++
			}
		}
	}
	if google == 0 {
		t.Fatal("no Google DNS users")
	}
	// Named path/software groups are floored at 3 nodes each, so the small-
	// scale count sits between the plain scaling and the sum of floors.
	if lo, hi := sc(927, testScale), 70; pathHijacked < lo || pathHijacked > hi {
		t.Errorf("Google-DNS hijacked (path/software) = %d, want in [%d,%d]", pathHijacked, lo, hi)
	}
}

func TestDNSWorldNodeAddressesResolveToTruthAS(t *testing.T) {
	w := dnsWorld(t)
	for i, n := range w.Pool.Nodes() {
		if i%97 != 0 {
			continue
		}
		asn, ok := w.Geo.LookupAS(n.Addr)
		if !ok || asn != w.TruthFor(n.ZID).ASN {
			t.Fatalf("node %s addr %v maps to AS%d, truth AS%d", n.ZID, n.Addr, asn, w.TruthFor(n.ZID).ASN)
		}
		cc, ok := w.Geo.Country(asn)
		if !ok || cc != n.Country {
			t.Fatalf("node %s AS%d country %q, want %q", n.ZID, asn, cc, n.Country)
		}
	}
}

func TestHTTPWorld(t *testing.T) {
	w, err := BuildHTTPWorld(testSeed, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "pool size", w.Pool.Len(), sc(HTTPTotalNodes, 0.05), 0.10)
	counts := map[string]int{}
	imgCounts := map[string]int{}
	for _, tr := range w.Truths() {
		if tr.HTTPModifier != "" {
			counts[tr.HTTPModifier]++
		}
		if tr.ImageISP != "" {
			imgCounts[tr.ImageISP]++
		}
	}
	if counts["NetSpark web filter"] == 0 {
		t.Error("no NetSpark nodes")
	}
	approx(t, "cloudfront injector nodes", counts["cloudfront ad malware"], sc(201, 0.05), 0.4)
	if imgCounts["Globe Telecom"] == 0 || imgCounts["Vodacom"] == 0 {
		t.Errorf("image groups missing: %v", imgCounts)
	}
}

func TestTLSWorld(t *testing.T) {
	w, err := BuildTLSWorld(testSeed, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if w.Sites == nil {
		t.Fatal("no site registry")
	}
	if len(w.Sites.Countries()) != TLSTotalCountries {
		t.Fatalf("site countries = %d, want %d", len(w.Sites.Countries()), TLSTotalCountries)
	}
	if len(w.Sites.Universities) != 10 || len(w.Sites.Invalid) != 3 {
		t.Fatalf("universities %d, invalid %d", len(w.Sites.Universities), len(w.Sites.Invalid))
	}
	// Valid sites verify against the clean store; invalid ones do not.
	for _, cc := range w.Sites.Countries()[:3] {
		s := w.Sites.Popular[cc][0]
		if err := w.Trust.Verify(s.Host, s.Chain, Epoch); err != nil {
			t.Fatalf("popular site %s chain invalid: %v", s.Host, err)
		}
	}
	for _, s := range w.Sites.Invalid {
		if err := w.Trust.Verify(s.Host, s.Chain, Epoch); err == nil {
			t.Fatalf("invalid site %s verified", s.Host)
		}
	}
	products := map[string]int{}
	for _, tr := range w.Truths() {
		if tr.TLSProduct != "" {
			products[tr.TLSProduct]++
		}
	}
	approx(t, "Avast nodes", products["Avast"], sc(3283, 0.01), 0.25)
	if products["OpenDNS"] == 0 || products["Cloudguard.me"] == 0 {
		t.Errorf("products missing: %v", products)
	}
}

func TestMonitorWorld(t *testing.T) {
	w, err := BuildMonitorWorld(testSeed, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	monitored := map[string]int{}
	for _, tr := range w.Truths() {
		if tr.MonitorProduct != "" {
			monitored[tr.MonitorProduct]++
		}
	}
	approx(t, "TrendMicro nodes", monitored["Trend Micro"], sc(6571, 0.01), 0.25)
	approx(t, "TalkTalk nodes", monitored["TalkTalk"], sc(2233, 0.01), 0.25)
	if monitored["AnchorFree"] == 0 || monitored["Bluecoat"] == 0 || monitored["Tiscali U.K."] == 0 {
		t.Errorf("named monitors missing: %v", monitored)
	}
	// TalkTalk coverage fraction: monitored / ISP total ≈ 45.2%.
	ttTotal, ttMon := 0, 0
	for _, n := range w.Pool.Nodes() {
		org, ok := w.Geo.Org(n.ASN)
		if ok && org.ID == "talktalk-gb" {
			ttTotal++
			if w.TruthFor(n.ZID).MonitorProduct == "TalkTalk" {
				ttMon++
			}
		}
	}
	if ttTotal == 0 {
		t.Fatal("no TalkTalk nodes")
	}
	frac := float64(ttMon) / float64(ttTotal)
	if frac < 0.35 || frac > 0.55 {
		t.Errorf("TalkTalk coverage = %.2f, want ~0.452", frac)
	}
}

func TestMonitorWorldRefetchArrives(t *testing.T) {
	w, err := BuildMonitorWorld(testSeed, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Find a TrendMicro node and fetch through it directly.
	var node *proxynet.ExitNode
	for _, n := range w.Pool.Nodes() {
		if w.TruthFor(n.ZID).MonitorProduct == "Trend Micro" {
			node = n
			break
		}
	}
	if node == nil {
		t.Fatal("no TrendMicro node")
	}
	host := "u-test." + Zone
	resp, err := node.FetchHTTP(context.Background(), host, 80, "/", WebIP)
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("fetch: %v %v", err, resp)
	}
	// The node's own request is logged...
	if got := len(w.Web.RequestsFor(host)); got != 1 {
		t.Fatalf("immediate requests = %d", got)
	}
	// ...and after the 24h window the monitor's two refetches arrive from
	// foreign addresses.
	w.Clock.Run()
	reqs := w.Web.RequestsFor(host)
	if len(reqs) != 3 {
		t.Fatalf("total requests = %d, want 3", len(reqs))
	}
	for _, r := range reqs[1:] {
		if r.Src == node.Addr {
			t.Fatal("unexpected request came from the node itself")
		}
		asn, _ := w.Geo.LookupAS(r.Src)
		org, _ := w.Geo.Org(asn)
		if org == nil || org.Name != "Trend Micro" {
			t.Fatalf("unexpected request from %v (org %v)", r.Src, org)
		}
	}
}

func TestScaleValidation(t *testing.T) {
	if _, err := BuildDNSWorld(1, 0); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := BuildDNSWorld(1, 1.5); err == nil {
		t.Error("scale >1 accepted")
	}
}

func TestSMTPWorld(t *testing.T) {
	w, err := BuildSMTPWorld(testSeed, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Super.AnyPortConnect {
		t.Fatal("SMTP world without any-port tunnels")
	}
	blocked, stripped, clean := 0, 0, 0
	for _, tr := range w.Truths() {
		switch tr.HTTPModifier {
		case "smtp:port25-blocked":
			blocked++
		case "smtp:starttls-stripped":
			stripped++
		default:
			clean++
		}
	}
	total := blocked + stripped + clean
	approx(t, "SMTP world size", total, sc(SMTPTotalNodes, 0.02), 0.05)
	rate := float64(blocked) / float64(total)
	if rate < 0.10 || rate > 0.14 {
		t.Fatalf("blocked share = %.3f, want ~0.12", rate)
	}
	if stripped == 0 {
		t.Fatal("no strippers")
	}
}

func TestCloudguardConfinedToRussia(t *testing.T) {
	w, err := BuildTLSWorld(testSeed, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, tr := range w.Truths() {
		if tr.TLSProduct == "Cloudguard.me" {
			found++
			if tr.Country != "RU" {
				t.Fatalf("Cloudguard node in %s; §6.2 pins them to Russian ISPs", tr.Country)
			}
		}
	}
	if found == 0 {
		t.Fatal("no Cloudguard nodes")
	}
}
