// Package population builds the synthetic worlds the experiments measure:
// exit-node populations whose countries, ASes, resolvers, middleboxes, and
// monitoring software are calibrated so that the paper's published tables
// are the ground truth the measurement pipeline should re-derive.
//
// Calibration is the substitution DESIGN.md documents: the real Internet's
// violator population is unobservable, so we instantiate one matching the
// paper's published marginals (Tables 2–9) and validate the methodology by
// measuring it back out through the full proxy/DNS/HTTP/TLS stack.
package population

import (
	"fmt"
	"math/rand/v2"
	"net/netip"
	"time"

	"github.com/tftproject/tft/internal/cert"
	"github.com/tftproject/tft/internal/dnsserver"
	"github.com/tftproject/tft/internal/dnswire"
	"github.com/tftproject/tft/internal/geo"
	"github.com/tftproject/tft/internal/middlebox"
	"github.com/tftproject/tft/internal/origin"
	"github.com/tftproject/tft/internal/proxynet"
	"github.com/tftproject/tft/internal/simnet"
)

// Epoch is the virtual-time origin of every world — the paper's first
// collection day (April 13, 2016).
var Epoch = time.Date(2016, 4, 13, 0, 0, 0, 0, time.UTC)

// Zone is the measurement team's domain; every probe name lives under it.
const Zone = "probe.tft-example.net"

// Well-known infrastructure addresses.
var (
	WebIP    = netip.MustParseAddr("198.18.0.10") // measurement web server
	AuthIP   = netip.MustParseAddr("198.18.0.53") // authoritative DNS
	ProxyIP  = netip.MustParseAddr("198.18.0.22") // super proxy
	ClientIP = netip.MustParseAddr("198.18.0.99") // measurement client
)

// NodeTruth is the generator's ground-truth record for one exit node,
// used by tests to validate what the pipeline measures.
type NodeTruth struct {
	ZID     string
	Country geo.CountryCode
	ASN     geo.ASN
	// DNSHijacker is the party hijacking NXDOMAIN for this node:
	// "" (none), or a label like "isp:TMnet", "public:Comodo",
	// "path:Deutsche Telekom", "software:Norton ConnectSafe".
	DNSHijacker string
	// UsesGoogleDNS marks nodes configured with 8.8.8.8.
	UsesGoogleDNS bool
	// HTTPModifier / ImageISP / TLSProduct / MonitorProduct label the other
	// experiment ground truths ("" = clean).
	HTTPModifier   string
	ImageISP       string
	TLSProduct     string
	MonitorProduct string
}

// World is a fully wired simulated Internet for one experiment.
type World struct {
	Scale float64
	Seed  uint64

	Clock  *simnet.Virtual
	Fabric *simnet.Fabric
	Geo    *geo.Registry
	Auth   *dnsserver.Authority
	Web    *origin.Server
	Pool   proxynet.NodeSource
	Super  *proxynet.SuperProxy
	Client *proxynet.Client

	// Spec is the recorded node population backing Pool: builders record
	// one columnar row per node here, and the pool materializes live nodes
	// from it on demand.
	Spec *WorldSpec

	// Trust is the clean OS root store; SiteCAs issue legitimate site
	// certificates chained into it.
	Trust   *cert.Store
	SiteCAs []*cert.CA

	// Google is the shared 8.8.8.8 resolver.
	Google *dnsserver.Resolver

	// Sites is the HTTPS experiment's target registry (TLS worlds only).
	Sites *SiteRegistry

	// ResolverDir lists every recursive resolver in the world with its
	// openness — the target list the open-resolver-scan baseline sweeps
	// (standing in for an IPv4-wide scan).
	ResolverDir []ResolverEntry

	// ResolversByOrg indexes the recursive resolvers by operating
	// organization, letting longitudinal scenarios flip an ISP's hijack
	// policy over time (the continuous-measurement vision of §9).
	ResolversByOrg map[geo.OrgID][]*dnsserver.Resolver

	rng        *rand.Rand
	lazy       *proxynet.LazyPool
	nextASN    geo.ASN
	nextOrg    int
	landings   map[string]netip.Addr // landing domain -> host address
	upstreamFn func(string) (netip.Addr, bool)
}

// newWorld wires the shared infrastructure every experiment needs.
func newWorld(seed uint64, scale float64, label string) (*World, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("population: scale %v out of (0,1]", scale)
	}
	w := &World{
		Scale:          scale,
		Seed:           seed,
		Clock:          simnet.NewVirtual(Epoch),
		Fabric:         simnet.NewFabric(),
		Geo:            geo.NewRegistry(),
		Spec:           NewWorldSpec(seed),
		ResolversByOrg: make(map[geo.OrgID][]*dnsserver.Resolver),
		rng:            simnet.SubRand(seed, "population/"+label),
		nextASN:        100000,
		landings:       make(map[string]netip.Addr),
	}
	if err := geo.InstallGoogle(w.Geo); err != nil {
		return nil, err
	}
	// Stream deadlines live on virtual time: a simulated run never stalls on
	// a wall-clock timer, and Advance can expire idle connections.
	w.Fabric.Clock = w.Clock

	w.Auth = dnsserver.NewAuthority(Zone, w.Clock)
	w.Fabric.HandleDNS(AuthIP, w.Auth.Handler())
	w.Web = origin.NewServer(w.Clock)
	w.Web.AllowSkew = true
	w.Fabric.HandleTCP(WebIP, 80, w.Web.ConnHandler())

	w.upstreamFn = func(name string) (netip.Addr, bool) { return AuthIP, true }
	w.Google = dnsserver.NewGoogleResolver(w.Fabric, w.upstreamFn)
	w.registerResolver(w.Google, true)

	w.Trust, w.SiteCAs = cert.NewOSRootStore(Epoch)

	spResolver := &dnsserver.Resolver{
		Addr: geo.GoogleDNSAddr, Net: w.Fabric, Upstream: w.upstreamFn,
		EgressFor: func(netip.Addr) netip.Addr { return geo.SuperProxyResolverEgress },
	}
	w.lazy = proxynet.NewLazyPool(simnet.SubRand(seed, "pool/"+label), 0.01,
		func(i int) *proxynet.ExitNode { return w.Spec.Materialize(i, w.Fabric) },
		w.Spec.Index)
	w.Pool = w.lazy
	w.Super = proxynet.NewSuperProxy(ProxyIP, w.Pool, spResolver, w.Clock)
	// Experiment hostnames are per-session unique, so the cache never
	// changes what the probes observe; repeated-host traffic benefits.
	w.Super.DNSCache = proxynet.NewResolveCache(w.Clock)
	w.Fabric.HandleTCP(ProxyIP, proxynet.ProxyPort, w.Super.ConnHandler())
	w.Client = &proxynet.Client{
		Net: w.Fabric, Src: ClientIP, Proxy: ProxyIP,
		User: "lum-customer-tft", Password: "tft-secret",
	}
	return w, nil
}

// scaled converts a full-scale paper count into this world's count. Named
// groups keep at least three members so they survive the analysis row
// cutoffs (which floor at 2) and the table shapes hold at small scales.
func (w *World) scaled(n int) int {
	if n <= 0 {
		return 0
	}
	v := float64(n) * w.Scale
	out := int(v + 0.5)
	if out < 3 {
		out = 3
	}
	if out > n {
		out = n
	}
	return out
}

// scaledBg scales a background (non-named) count with plain rounding.
func (w *World) scaledBg(n int) int {
	return int(float64(n)*w.Scale + 0.5)
}

// newOrg registers a background organization in a country.
func (w *World) newOrg(name string, cc geo.CountryCode) geo.OrgID {
	w.nextOrg++
	id := geo.OrgID(fmt.Sprintf("org-%05d", w.nextOrg))
	if name == "" {
		name = fmt.Sprintf("%s Network %d", geo.CountryName(cc), w.nextOrg)
	}
	if _, err := w.Geo.AddOrg(id, name, cc); err != nil {
		panic(err)
	}
	return id
}

// namedOrg registers an organization with a stable ID (paper-named ISPs).
func (w *World) namedOrg(id geo.OrgID, name string, cc geo.CountryCode) geo.OrgID {
	if _, ok := w.Geo.OrgByID(id); ok {
		return id
	}
	if _, err := w.Geo.AddOrg(id, name, cc); err != nil {
		panic(err)
	}
	return id
}

// newAS allocates a fresh AS for an organization.
func (w *World) newAS(org geo.OrgID, mobile bool) geo.ASN {
	w.nextASN++
	if _, err := w.Geo.AddAS(w.nextASN, org, mobile); err != nil {
		panic(err)
	}
	return w.nextASN
}

// namedAS registers a specific AS number (paper-named ASes).
func (w *World) namedAS(asn geo.ASN, org geo.OrgID, mobile bool) geo.ASN {
	if _, ok := w.Geo.ASInfo(asn); ok {
		return asn
	}
	if _, err := w.Geo.AddAS(asn, org, mobile); err != nil {
		panic(err)
	}
	return asn
}

// addr hands out an address inside an AS.
func (w *World) addr(asn geo.ASN) netip.Addr {
	a, err := w.Geo.NextAddr(asn)
	if err != nil {
		panic(err)
	}
	return a
}

// landingHost registers (once) a landing-page host for a domain, serving
// the given page, and returns its address. The host lives in the supplied
// AS so prefix-ownership attribution works.
func (w *World) landingHost(domain string, asn geo.ASN, page []byte) netip.Addr {
	if ip, ok := w.landings[domain]; ok {
		return ip
	}
	ip := w.addr(asn)
	w.Fabric.HandleTCP(ip, 80, origin.StaticPage(page, "text/html; charset=utf-8"))
	w.landings[domain] = ip
	return ip
}

// ResolverEntry is one recursive resolver as seen by a scanner.
type ResolverEntry struct {
	Addr netip.Addr
	// Open resolvers answer anyone; closed (ISP) resolvers refuse queries
	// from outside their operator's network.
	Open bool
}

// ispResolver builds an honest or hijacking ISP resolver homed in asn. ISP
// resolvers are closed: they refuse queries from outside their operator.
func (w *World) ispResolver(asn geo.ASN, hijack dnsserver.NXRewriter) *dnsserver.Resolver {
	r := dnsserver.NewResolver(w.addr(asn), w.Fabric, w.upstreamFn)
	r.Hijack = hijack
	w.registerResolver(r, false)
	w.indexResolver(asn, r)
	return r
}

// publicResolver builds a resolver that answers the whole Internet.
func (w *World) publicResolver(asn geo.ASN, hijack dnsserver.NXRewriter) *dnsserver.Resolver {
	r := dnsserver.NewResolver(w.addr(asn), w.Fabric, w.upstreamFn)
	r.Hijack = hijack
	w.registerResolver(r, true)
	return r
}

// indexResolver records the resolver under its operator.
func (w *World) indexResolver(asn geo.ASN, r *dnsserver.Resolver) {
	if org, ok := w.Geo.Org(asn); ok {
		w.ResolversByOrg[org.ID] = append(w.ResolversByOrg[org.ID], r)
	}
}

// SetOrgHijack flips the NXDOMAIN policy of every resolver an organization
// operates — an evolution event for longitudinal scenarios. Passing a nil
// rewriter makes the ISP honest. It returns how many resolvers changed.
func (w *World) SetOrgHijack(org geo.OrgID, rewriter dnsserver.NXRewriter) int {
	rs := w.ResolversByOrg[org]
	for _, r := range rs {
		r.Hijack = rewriter
	}
	return len(rs)
}

// registerResolver exposes a resolver as a DNS service on the fabric and
// records it in the scan directory. Closed resolvers refuse sources outside
// their operator's organization, which is why open-resolver scans cannot
// see ISP-resolver hijacking (§8).
func (w *World) registerResolver(r *dnsserver.Resolver, open bool) {
	w.ResolverDir = append(w.ResolverDir, ResolverEntry{Addr: r.Addr, Open: open})
	ownASN, _ := w.Geo.LookupAS(r.Addr)
	ownOrg, _ := w.Geo.Org(ownASN)
	w.Fabric.HandleDNS(r.Addr, func(src netip.Addr, query []byte) []byte {
		q, err := dnswire.Unmarshal(query)
		if err != nil || q.Response || len(q.Questions) != 1 {
			return nil
		}
		if !open {
			srcASN, ok := w.Geo.LookupAS(src)
			srcOrg, ok2 := w.Geo.Org(srcASN)
			if !ok || !ok2 || ownOrg == nil || srcOrg.ID != ownOrg.ID {
				refused := q.Reply()
				refused.RCode = dnswire.RCodeRefused
				out, _ := refused.Marshal()
				return out
			}
		}
		resp, err := r.Lookup(src, q.Questions[0].Name, q.Questions[0].Type)
		if err != nil {
			return nil
		}
		resp.ID = q.ID
		out, err := resp.Marshal()
		if err != nil {
			return nil
		}
		return out
	})
}

// addNode records an exit-node spec row, registers its country with the
// lazy pool, and seeds its ground truth. The node itself is materialized on
// demand when the super proxy picks it. Returns a handle for the per-node
// assignments builders make after creation.
func (w *World) addNode(cc geo.CountryCode, asn geo.ASN, resolver *dnsserver.Resolver, path *middlebox.Path) NodeHandle {
	i := w.Spec.add(cc, asn, w.addr(asn), resolver, path)
	if j := w.lazy.Register(cc); j != i {
		panic(fmt.Sprintf("population: spec row %d registered as pool index %d", i, j))
	}
	t := w.Spec.Truth(i)
	*t = NodeTruth{ZID: w.Spec.ZID(i), Country: cc, ASN: asn}
	if resolver == w.Google {
		t.UsesGoogleDNS = true
	}
	return NodeHandle{spec: w.Spec, idx: i}
}

// truth returns the ground-truth record for a recorded node.
func (w *World) truth(h NodeHandle) *NodeTruth { return w.Spec.Truth(h.idx) }

// TruthFor returns the ground-truth record for a zID, or nil for unknown
// identifiers. Tests use it to validate what the pipeline measures.
func (w *World) TruthFor(zid string) *NodeTruth {
	i, ok := w.Spec.Index(zid)
	if !ok {
		return nil
	}
	return w.Spec.Truth(i)
}

// Truths returns the ground-truth records for every recorded node in
// creation order — a test helper; O(population).
func (w *World) Truths() []*NodeTruth {
	out := make([]*NodeTruth, w.Spec.Len())
	for i := range out {
		out[i] = w.Spec.Truth(i)
	}
	return out
}

// pickCountries returns n distinct background countries, deterministically
// pseudo-shuffled, excluding any in the given set.
func (w *World) pickCountries(n int, exclude map[geo.CountryCode]bool) []geo.CountryCode {
	var out []geo.CountryCode
	perm := w.rng.Perm(len(geo.Countries))
	for _, i := range perm {
		cc := geo.Countries[i].Code
		if exclude[cc] {
			continue
		}
		out = append(out, cc)
		if len(out) == n {
			break
		}
	}
	return out
}
