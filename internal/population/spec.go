package population

import (
	"time"

	"github.com/tftproject/tft/internal/geo"
	"github.com/tftproject/tft/internal/middlebox"
)

// This file encodes the paper's published tables as the calibration ground
// truth. Counts are full-scale (scale = 1.0); the builders scale them.

// Paper dataset totals (Table 2).
const (
	DNSTotalNodes     = 753_111
	DNSTotalCountries = 167
	HTTPTotalNodes    = 49_545
	HTTPTotalASes     = 12_658
	TLSTotalNodes     = 807_910
	TLSTotalCountries = 115
	MonTotalNodes     = 747_449
)

// CountryDNS is one row of Table 3: a country's DNS-experiment population
// and how much of it is hijacked.
type CountryDNS struct {
	Country  geo.CountryCode
	Total    int
	Hijacked int
}

// Table3 is the paper's top-10 hijacked countries.
var Table3 = []CountryDNS{
	{"MY", 6_983, 3_652},
	{"ID", 8_568, 3_178},
	{"CN", 671, 237},
	{"GB", 37_156, 9_553},
	{"DE", 19_076, 4_703},
	{"US", 33_398, 6_108},
	{"IN", 6_868, 1_127},
	{"BR", 24_298, 3_190},
	{"BJ", 716, 90},
	{"JO", 1_117, 76},
}

// ISPResolverGroup is one row of Table 4: an ISP whose resolvers hijack
// NXDOMAIN for (nearly) all their users.
type ISPResolverGroup struct {
	ISP     string
	OrgID   geo.OrgID
	Country geo.CountryCode
	// Servers and Nodes are the Table 4 columns.
	Servers int
	Nodes   int
	// LandingDomain is where hijacked users are redirected (Table 5 for the
	// ISPs that appear there).
	LandingDomain string
	// SharedAppliance marks the five ISPs whose landing pages share the
	// identical redirect JavaScript (§4.3.1).
	SharedAppliance bool
	// Tagline is extra landing-page text (TMnet's monetization partner).
	Tagline string
	// PathNodes is the ISP's row in Table 5: how many of its *Google-DNS*
	// users get hijacked on-path by the same ISP (0 = not in Table 5).
	PathNodes int
	// PathASNs is the number of ASes those path hijacks span (Table 5).
	PathASNs int
}

// Table4 lists the 19 hijacking ISPs.
var Table4 = []ISPResolverGroup{
	{ISP: "Telefonica de Argentina", OrgID: "telefonica-ar", Country: "AR", Servers: 14, Nodes: 276,
		LandingDomain: "ayudaenlabusqueda.telefonica.com.ar", PathNodes: 16, PathASNs: 1},
	{ISP: "Dodo Australia", OrgID: "dodo-au", Country: "AU", Servers: 21, Nodes: 1_404,
		LandingDomain: "google.dodo.com.au", PathNodes: 13, PathASNs: 1},
	{ISP: "Oi Fixo", OrgID: "oi-br", Country: "BR", Servers: 21, Nodes: 2_558,
		LandingDomain: "dnserros.oi.com.br", SharedAppliance: true, PathNodes: 40, PathASNs: 2},
	{ISP: "CTBC", OrgID: "ctbc-br", Country: "BR", Servers: 4, Nodes: 290,
		LandingDomain: "nodomain.ctbc.com.br", PathNodes: 7, PathASNs: 1},
	{ISP: "Deutsche Telekom AG", OrgID: "dtag-de", Country: "DE", Servers: 8, Nodes: 1_385,
		LandingDomain: "navigationshilfe.t-online.de", PathNodes: 80, PathASNs: 1},
	{ISP: "Airtel Broadband", OrgID: "airtel-in", Country: "IN", Servers: 9, Nodes: 735,
		LandingDomain: "airtelforum.com", PathNodes: 14, PathASNs: 1},
	{ISP: "BSNL", OrgID: "bsnl-in", Country: "IN", Servers: 2, Nodes: 71,
		LandingDomain: "searchguide.bsnl.in"},
	{ISP: "Ntl. Int. Backbone", OrgID: "nib-in", Country: "IN", Servers: 8, Nodes: 245,
		LandingDomain: "search.nib.in"},
	{ISP: "TMnet", OrgID: "tmnet-my", Country: "MY", Servers: 8, Nodes: 1_676,
		LandingDomain: "midascdn.nervesis.com",
		Tagline:       "We turn users' typing errors into your advertising advantage",
		PathNodes:     68, PathASNs: 1},
	{ISP: "ONO", OrgID: "ono-es", Country: "ES", Servers: 2, Nodes: 71,
		LandingDomain: "buscador.ono.es"},
	{ISP: "BT Internet", OrgID: "bt-gb", Country: "GB", Servers: 6, Nodes: 479,
		LandingDomain: "www.webaddresshelp.bt.com", SharedAppliance: true, PathNodes: 73, PathASNs: 1},
	{ISP: "Talk Talk", OrgID: "talktalk-gb", Country: "GB", Servers: 46, Nodes: 3_738,
		LandingDomain: "error.talktalk.co.uk", SharedAppliance: true, PathNodes: 46, PathASNs: 3},
	{ISP: "AT&T", OrgID: "att-us", Country: "US", Servers: 37, Nodes: 561,
		LandingDomain: "dnserrorassist.att.net", PathNodes: 32, PathASNs: 1},
	{ISP: "Cable One", OrgID: "cableone-us", Country: "US", Servers: 4, Nodes: 108,
		LandingDomain: "search.cableone.net"},
	{ISP: "Cox Communications", OrgID: "cox-us", Country: "US", Servers: 63, Nodes: 1_789,
		LandingDomain: "finder.cox.net", SharedAppliance: true, PathNodes: 17, PathASNs: 1},
	{ISP: "Mediacom Cable", OrgID: "mediacom-us", Country: "US", Servers: 6, Nodes: 219,
		LandingDomain: "search.mediacomcable.com", PathNodes: 7, PathASNs: 1},
	{ISP: "Suddenlink", OrgID: "suddenlink-us", Country: "US", Servers: 9, Nodes: 98,
		LandingDomain: "search.suddenlink.net"},
	{ISP: "Verizon", OrgID: "verizon-us", Country: "US", Servers: 98, Nodes: 2_102,
		LandingDomain: "searchassist.verizon.com", SharedAppliance: true, PathNodes: 30, PathASNs: 1},
	{ISP: "WideOpenWest", OrgID: "wow-us", Country: "US", Servers: 1, Nodes: 39,
		LandingDomain: "search.wideopenwest.com"},
}

// PublicResolverGroup is a public DNS operator (§4.3.2).
type PublicResolverGroup struct {
	Org     string
	OrgID   geo.OrgID
	Country geo.CountryCode
	// Servers hijack; Nodes use them.
	Servers int
	Nodes   int
	// LandingDomain for hijacked answers; "" for operators whose identity
	// the paper could not establish.
	LandingDomain string
	// Malware marks LookSafe-style resolver-changing malware.
	Malware bool
}

// PublicHijackers are the 21 hijacking public resolvers, grouped by
// operator (Comodo 9, UltraDNS 4, LookSafe 2, Level 3, plus 3 unidentified)
// covering 1,512 exit nodes.
var PublicHijackers = []PublicResolverGroup{
	{Org: "Comodo DNS", OrgID: "comodo", Country: "US", Servers: 9, Nodes: 648, LandingDomain: "securedns.comodo.com"},
	{Org: "UltraDNS", OrgID: "ultradns", Country: "US", Servers: 4, Nodes: 288, LandingDomain: "redirect.ultradns.net"},
	{Org: "LookSafe", OrgID: "looksafe", Country: "US", Servers: 2, Nodes: 144, LandingDomain: "search.looksafe.example", Malware: true},
	{Org: "Level 3", OrgID: "level3", Country: "US", Servers: 3, Nodes: 216, LandingDomain: "search.level3.example"},
	{Org: "(unidentified)", OrgID: "pub-unknown", Country: "US", Servers: 3, Nodes: 216, LandingDomain: "ads.nxredirect.example"},
}

// HonestPublicResolvers is how many non-hijacking public resolvers exist
// (1,110 public servers observed, 21 hijacking).
const HonestPublicResolvers = 1_089

// PathOnlyISP is an ISP appearing in Table 5 (on-path hijacking of
// Google-DNS users) without a Table 4 row (its resolvers were not observed
// hijacking).
type PathOnlyISP struct {
	ISP           string
	OrgID         geo.OrgID
	Country       geo.CountryCode
	LandingDomain string
	Nodes         int
}

// PathOnlyISPs holds Table 5's v3.mercusuar.uzone.id row (Telkom
// Indonesia's uzone portal, 53 nodes in one AS).
var PathOnlyISPs = []PathOnlyISP{
	{ISP: "Telkom Indonesia", OrgID: "telkom-id", Country: "ID",
		LandingDomain: "v3.mercusuar.uzone.id", Nodes: 53},
}

// SoftwareHijackGroup is end-host software that hijacks NXDOMAIN regardless
// of resolver (Table 5's shaded rows).
type SoftwareHijackGroup struct {
	Product       string
	LandingDomain string
	Nodes         int
	Countries     int
}

// SoftwareHijackers are the Norton/Comodo rows of Table 5.
var SoftwareHijackers = []SoftwareHijackGroup{
	{Product: "Norton ConnectSafe", LandingDomain: "nortonsafe.search.ask.com", Nodes: 25, Countries: 18},
	{Product: "Comodo SecureDNS client", LandingDomain: "securedns.comodo.com", Nodes: 9, Countries: 9},
}

// MiscPathHijackNodes is the remainder of the 927 Google-DNS hijack cases
// not in any named Table 5 row (misc landing domains, <5 nodes each).
const MiscPathHijackNodes = 397 - 25 - 9 // table rows below 5 nodes

// GoogleDNSShare is the fraction of background nodes configured with
// 8.8.8.8 (§4.3.2 footnote 9 reports whole ASes pointed at Google).
const GoogleDNSShare = 0.08

// DNSHijackTotal is the paper's headline count: 35,800 nodes (4.8%).
const DNSHijackTotal = 35_800

// ExtraCountryTotals pins populations for countries that host Table 4 ISPs
// but do not appear in Table 3 — their totals must be large enough that
// their hijack ratios fall below Jordan's 7.7% (rank 10), or they would
// have made the paper's table.
var ExtraCountryTotals = map[geo.CountryCode]int{
	"AU": 25_000, // Dodo's 1,404 hijacked nodes => ratio ~5.7%
	"AR": 6_000,  // Telefonica de Argentina's ~292 => ~4.9%
	"ES": 4_000,  // ONO's 71 => ~1.8%
}

// BeninGoogleAS reproduces footnote 9: AS 28683 (OPT Benin) with 225 of
// 227 nodes on Google DNS.
var BeninGoogleAS = struct {
	ASN         geo.ASN
	Org         geo.OrgID
	Total       int
	GoogleNodes int
}{28683, "opt-benin", 227, 225}

// --- HTTP experiment (§5) ---------------------------------------------------

// InjectorGroup is one row of Table 6: an injected-JS signature.
type InjectorGroup struct {
	Product string
	// Signature is the URL or keyword appearing in the injected code.
	Signature string
	IsURL     bool
	Nodes     int
	Countries int
	ASes      int
	// ExtraBytes of ad payload accompanying the injection.
	ExtraBytes int
	// FilterISP marks the Internet Rimon/NetSpark row: ISP-level filtering
	// where every node in the AS is affected.
	FilterISP bool
}

// Table6 lists the injected-JS signatures.
var Table6 = []InjectorGroup{
	{Product: "NetSpark web filter", Signature: "NetSparkQuiltingResult", Nodes: 21, Countries: 1, ASes: 1, FilterISP: true},
	{Product: "cloudfront ad malware", Signature: "d36mw5gp02ykm5.cloudfront.net", IsURL: true, Nodes: 201, Countries: 44, ASes: 99},
	{Product: "msmdzbsyrw adware", Signature: "msmdzbsyrw.org", IsURL: true, Nodes: 97, Countries: 4, ASes: 76},
	{Product: "pgjs adware", Signature: "pgjs.me", IsURL: true, Nodes: 16, Countries: 1, ASes: 12},
	{Product: "jswrite adware", Signature: "jswrite.com/script1.js", IsURL: true, Nodes: 15, Countries: 9, ASes: 10},
	{Product: "oiasudoj malware", Signature: "var oiasudoj;", Nodes: 11, Countries: 1, ASes: 11, ExtraBytes: 23 * 1024},
	{Product: "AdTaily widget", Signature: "AdTaily_Widget_Container", Nodes: 11, Countries: 8, ASes: 9, ExtraBytes: 335 * 1024},
}

// HTTP experiment remainder groups (§5.2 text).
const (
	// MiscInjectedNodes: identified signatures below Table 6's cutoff
	// (21 signatures covered 416 of 440 injected nodes).
	MiscInjectedNodes = 416 - (21 + 201 + 97 + 16 + 15 + 11 + 11)
	// UnidentifiedInjectedNodes: injected content with no extractable
	// signature (440 - 416).
	UnidentifiedInjectedNodes = 24
	// BlockPageNodes: "bandwidth exceeded"/"blocked" responses filtered out
	// of the HTML analysis.
	BlockPageNodes = 32
	// JSReplacedNodes and CSSReplacedNodes received error pages or empty
	// responses in place of scripts/stylesheets.
	JSReplacedNodes  = 45
	CSSReplacedNodes = 11
	// RimonASN is Internet Rimon's AS (§5.2).
	RimonASN geo.ASN = 42925
)

// MobileASGroup is one row of Table 7: a mobile AS compressing images.
type MobileASGroup struct {
	ASN     geo.ASN
	ISP     string
	OrgID   geo.OrgID
	Country geo.CountryCode
	// Modified and Total are the Table 7 exit-node columns.
	Modified int
	Total    int
	// Ratios: the observed compression ratios ("M" rows have two).
	Ratios []float64
}

// Table7 lists the compressing mobile ASes.
var Table7 = []MobileASGroup{
	{15617, "Wind Hellas", "wind-gr", "GR", 10, 10, []float64{0.53}},
	{29180, "Telefonica UK", "telefonica-gb", "GB", 17, 17, []float64{0.47}},
	{29975, "Vodacom", "vodacom-za", "ZA", 83, 88, []float64{0.35, 0.60}},
	{25135, "Vodafone UK", "vodafone-gb", "GB", 15, 18, []float64{0.54}},
	{36935, "Vodafone Egypt", "vodafone-eg", "EG", 62, 81, []float64{0.40, 0.62}},
	{36925, "Meditelecom", "meditel-ma", "MA", 87, 128, []float64{0.34}},
	{16135, "Turkcell", "turkcell-tr", "TR", 44, 65, []float64{0.54}},
	{15897, "Vodafone Turkey", "vodafone-tr", "TR", 14, 25, []float64{0.53}},
	{12361, "Vodafone Greece", "vodafone-gr", "GR", 11, 23, []float64{0.52}},
	{37492, "Orange Tunisia", "orange-tn", "TN", 97, 331, []float64{0.34}},
	{132199, "Globe Telecom", "globe-ph", "PH", 197, 1_374, []float64{0.51}},
	{12844, "Bouygues Telecom", "bouygues-fr", "FR", 34, 615, []float64{0.53}},
}

// SmallCompressingNodes is the image-modified remainder in ASes with fewer
// than 10 measured nodes (694 total - 671 in Table 7).
const SmallCompressingNodes = 23

// --- HTTPS experiment (§6) ---------------------------------------------------

// TLSProductGroup is one row of Table 8.
type TLSProductGroup struct {
	Spec  middlebox.ProductSpec
	Nodes int
}

// Table8 lists the certificate-replacing products. Behaviour flags follow
// §6.2: every product but Avast reuses one key per node; Cyberoam, ESET,
// Kaspersky, McAfee, and Fortigate launder invalid certificates; Avast,
// BitDefender, and Dr. Web use a distinct issuer for them; OpenDNS skips
// them and only MITMs its block list; Cloudguard copies fields.
var Table8 = []TLSProductGroup{
	{Spec: middlebox.ProductSpec{Product: "Avast", IssuerCN: "Avast Web/Mail Shield Root",
		Kind: "Anti-Virus/Security", ReuseKey: false, Invalid: middlebox.InvalidDistinctIssuer}, Nodes: 3_283},
	{Spec: middlebox.ProductSpec{Product: "AVG Technology", IssuerCN: "AVG Technologies Root",
		Kind: "Anti-Virus/Security", ReuseKey: true, Invalid: middlebox.InvalidSkip}, Nodes: 247},
	{Spec: middlebox.ProductSpec{Product: "BitDefender", IssuerCN: "BitDefender Personal CA",
		Kind: "Anti-Virus/Security", ReuseKey: true, Invalid: middlebox.InvalidDistinctIssuer}, Nodes: 241},
	{Spec: middlebox.ProductSpec{Product: "Eset SSL Filter", IssuerCN: "ESET SSL Filter CA",
		Kind: "Anti-Virus/Security", ReuseKey: true, Invalid: middlebox.InvalidLaunder}, Nodes: 217},
	{Spec: middlebox.ProductSpec{Product: "Kaspersky", IssuerCN: "Kaspersky Anti-Virus Personal Root",
		Kind: "Anti-Virus/Security", ReuseKey: true, Invalid: middlebox.InvalidLaunder}, Nodes: 68},
	{Spec: middlebox.ProductSpec{Product: "OpenDNS", IssuerCN: "OpenDNS Root Certificate Authority",
		Kind: "Content filter", ReuseKey: true, Invalid: middlebox.InvalidSkip}, Nodes: 64},
	{Spec: middlebox.ProductSpec{Product: "Cyberoam SSL", IssuerCN: "Cyberoam SSL CA",
		Kind: "Anti-Virus/Security", ReuseKey: true, Invalid: middlebox.InvalidLaunder}, Nodes: 35},
	{Spec: middlebox.ProductSpec{Product: "Sample CA 2", IssuerCN: "Sample CA 2",
		Kind: "N/A", ReuseKey: true, Invalid: middlebox.InvalidSkip}, Nodes: 29},
	{Spec: middlebox.ProductSpec{Product: "Fortigate", IssuerCN: "Fortigate CA",
		Kind: "Anti-Virus/Security", ReuseKey: true, Invalid: middlebox.InvalidLaunder}, Nodes: 17},
	{Spec: middlebox.ProductSpec{Product: "Empty", IssuerCN: "",
		Kind: "N/A", ReuseKey: true, Invalid: middlebox.InvalidSkip}, Nodes: 14},
	{Spec: middlebox.ProductSpec{Product: "Cloudguard.me", IssuerCN: "Cloudguard.me",
		Kind: "Malware", ReuseKey: true, Invalid: middlebox.InvalidLaunder, CopyFields: true}, Nodes: 14},
	{Spec: middlebox.ProductSpec{Product: "Dr. Web", IssuerCN: "Dr.Web SpIDer Gate Root",
		Kind: "Anti-Virus/Security", ReuseKey: true, Invalid: middlebox.InvalidDistinctIssuer}, Nodes: 13},
	{Spec: middlebox.ProductSpec{Product: "McAfee", IssuerCN: "McAfee Web Gateway",
		Kind: "Anti-Virus/Security", ReuseKey: true, Invalid: middlebox.InvalidLaunder}, Nodes: 6},
}

// MiscTLSProducts / MiscTLSNodes cover the long tail: 320 unique issuers in
// total, with the unnamed remainder holding 292 nodes.
const (
	MiscTLSProducts = 60
	MiscTLSNodes    = 292
)

// TLSAffectedTotal is the paper's headline: 4,540 nodes with at least one
// replaced certificate.
const TLSAffectedTotal = 4_540

// --- Monitoring experiment (§7) ----------------------------------------------

// MonitorGroup is one row of Table 9 plus its Figure 5 delay behaviour.
type MonitorGroup struct {
	Name string
	// IPs is the entity's server-address count; Nodes/ASes/Countries are
	// the Table 9 coverage columns.
	IPs       int
	Nodes     int
	ASes      int
	Countries int
	// HomeISP pins monitored nodes to one ISP (TalkTalk, Tiscali).
	HomeISP geo.OrgID
	// HomeISPName labels it.
	HomeISPName string
	// HomeCountry of the ISP.
	HomeCountry geo.CountryCode
	// CoverageFrac is the share of that ISP's nodes being monitored
	// (TalkTalk 45.2%, Tiscali 11.4%).
	CoverageFrac float64
	// Requests describe the unexpected fetches (delay distributions from
	// Figure 5); built into middlebox.RefetchSpec by the builder.
	Requests []MonitorReqSpec
	// VPN marks AnchorFree: the node's own traffic egresses via the
	// entity's network.
	VPN bool
	// SecondFixedSource: AnchorFree's second request always comes from one
	// address (Menlo Park).
	SecondFixedSource bool
}

// MonitorReqSpec is the delay behaviour of one unexpected request.
type MonitorReqSpec struct {
	Min, Max     time.Duration
	LogUniform   bool
	PreFetchProb float64
	LeadMin      time.Duration
	LeadMax      time.Duration
}

// Table9 lists the six monitoring entities.
var Table9 = []MonitorGroup{
	{Name: "Trend Micro", IPs: 55, Nodes: 6_571, ASes: 734, Countries: 13,
		Requests: []MonitorReqSpec{
			{Min: 12 * time.Second, Max: 120 * time.Second, LogUniform: true},
			{Min: 200 * time.Second, Max: 12_500 * time.Second, LogUniform: true},
		}},
	{Name: "TalkTalk", IPs: 6, Nodes: 2_233, ASes: 5, Countries: 1,
		HomeISP: "talktalk-gb", HomeISPName: "Talk Talk", HomeCountry: "GB", CoverageFrac: 0.452,
		Requests: []MonitorReqSpec{
			{Min: 29 * time.Second, Max: 31 * time.Second},
			{Min: 60 * time.Second, Max: 3_600 * time.Second, LogUniform: true},
		}},
	{Name: "Commtouch", IPs: 20, Nodes: 1_154, ASes: 371, Countries: 79,
		Requests: []MonitorReqSpec{
			{Min: 60 * time.Second, Max: 600 * time.Second, LogUniform: true},
		}},
	// AnchorFree: the node's own browsing egresses through the VPN (one of
	// many VPN addresses grouped in ten locations); the single unexpected
	// request always comes from one Menlo Park address, under a second
	// later (§7.2.1).
	{Name: "AnchorFree", IPs: 223, Nodes: 461, ASes: 225, Countries: 98, VPN: true, SecondFixedSource: true,
		Requests: []MonitorReqSpec{
			{Min: 300 * time.Millisecond, Max: 900 * time.Millisecond},
		}},
	{Name: "Bluecoat", IPs: 12, Nodes: 453, ASes: 162, Countries: 64,
		Requests: []MonitorReqSpec{
			{Min: time.Second, Max: 30 * time.Second, LogUniform: true,
				PreFetchProb: 0.83, LeadMin: 100 * time.Millisecond, LeadMax: 2 * time.Second},
			{Min: 30 * time.Second, Max: 1_800 * time.Second, LogUniform: true},
		}},
	{Name: "Tiscali U.K.", IPs: 2, Nodes: 363, ASes: 6, Countries: 1,
		HomeISP: "tiscali-gb", HomeISPName: "Tiscali U.K.", HomeCountry: "GB", CoverageFrac: 0.114,
		Requests: []MonitorReqSpec{
			{Min: 30 * time.Second, Max: 30 * time.Second},
		}},
}

// MiscMonitorGroups / MiscMonitorNodes / MiscMonitorIPs cover the long
// tail: 54 AS groups and 424 IPs in total.
const (
	MiscMonitorGroups = 48
	MiscMonitorNodes  = 400
	MiscMonitorIPs    = 106
)
