package population

import (
	"github.com/tftproject/tft/internal/geo"
	"github.com/tftproject/tft/internal/middlebox"
)

// HTTPTotalCountries is Table 2's country count for the HTTP experiment.
const HTTPTotalCountries = 171

// BuildHTTPWorld assembles the §5 world: ~50k nodes across ~12.7k ASes
// whose HTTP paths are calibrated to Tables 6 and 7.
func BuildHTTPWorld(seed uint64, scale float64) (*World, error) {
	w, err := newWorld(seed, scale, "http")
	if err != nil {
		return nil, err
	}
	b := &httpBuilder{World: w,
		total:  make(map[geo.CountryCode]int),
		asPool: make(map[geo.CountryCode]*asPool),
	}
	b.buildRimon()
	b.buildInjectors()
	b.buildImageCompressors()
	b.buildReplacers()
	b.fill()
	return w, nil
}

type httpBuilder struct {
	*World
	total  map[geo.CountryCode]int
	asPool map[geo.CountryCode]*asPool
}

// httpASCapacity keeps the HTTP world's AS structure near the paper's (~4
// measured nodes per AS).
const httpASCapacity = 4

func (b *httpBuilder) bgAS(cc geo.CountryCode) geo.ASN {
	p := b.asPool[cc]
	if p == nil {
		p = &asPool{}
		b.asPool[cc] = p
	}
	if len(p.asns) == 0 || p.used >= httpASCapacity {
		org := b.newOrg("", cc)
		p.asns = append(p.asns, b.newAS(org, false))
		p.used = 0
	}
	p.used++
	return p.asns[len(p.asns)-1]
}

// addHTTPNode creates a node with an honest resolver and the given path.
func (b *httpBuilder) addHTTPNode(cc geo.CountryCode, asn geo.ASN, path *middlebox.Path, truthLabel, imageISP string) {
	r := b.Google // DNS is incidental here; the super proxy resolves anyway
	n := b.addNode(cc, asn, r, path)
	t := b.truth(n)
	t.HTTPModifier = truthLabel
	t.ImageISP = imageISP
	b.total[cc]++
}

// buildRimon instantiates AS 42925 (Internet Rimon): every node behind the
// NetSpark filter.
func (b *httpBuilder) buildRimon() {
	org := b.namedOrg("rimon-il", "Internet Rimon ISP", "IL")
	asn := b.namedAS(RimonASN, org, false)
	filter := middlebox.ContentFilter{Product: "NetSpark web filter"}
	n := b.scaled(Table6[0].Nodes)
	for i := 0; i < n; i++ {
		path := &middlebox.Path{HTTP: []middlebox.HTTPInterceptor{filter}}
		b.addHTTPNode("IL", asn, path, filter.Product, "")
	}
}

// buildInjectors instantiates the malware rows of Table 6 plus the
// below-threshold remainder groups.
func (b *httpBuilder) buildInjectors() {
	for _, g := range Table6 {
		if g.FilterISP {
			continue // Rimon handled above
		}
		inj := middlebox.HTMLInjector{
			Product: g.Product, Signature: g.Signature, SignatureIsURL: g.IsURL,
			ExtraBytes: g.ExtraBytes,
		}
		countries := b.pickCountries(g.Countries, nil)
		// Spread the group's nodes over its AS count; ASes are reused so
		// the per-group (nodes, ASes, countries) triple tracks Table 6.
		asns := make([]geo.ASN, 0, g.ASes)
		n := b.scaled(g.Nodes)
		for i := 0; i < n; i++ {
			cc := countries[i%len(countries)]
			var asn geo.ASN
			if len(asns) < g.ASes {
				asn = b.bgAS(cc)
				asns = append(asns, asn)
			} else {
				asn = asns[i%len(asns)]
			}
			path := &middlebox.Path{HTTP: []middlebox.HTTPInterceptor{inj}}
			b.addHTTPNode(cc, asn, path, g.Product, "")
		}
	}

	// Identified signatures below Table 6's five-node cutoff.
	miscCountries := b.pickCountries(20, nil)
	nMisc := b.scaledBg(MiscInjectedNodes)
	for i := 0; i < nMisc; i++ {
		sig := miscSignature(i)
		inj := middlebox.HTMLInjector{Product: "misc adware", Signature: sig, SignatureIsURL: true}
		cc := miscCountries[i%len(miscCountries)]
		path := &middlebox.Path{HTTP: []middlebox.HTTPInterceptor{inj}}
		b.addHTTPNode(cc, b.bgAS(cc), path, "misc adware", "")
	}

	// Injections with no extractable signature: inline code with no URL and
	// a node-unique keyword.
	nUnid := b.scaledBg(UnidentifiedInjectedNodes)
	for i := 0; i < nUnid; i++ {
		inj := middlebox.HTMLInjector{Product: "unidentified injector",
			Signature: "(function(){/*" + miscSignature(i+1000) + "*/})();"}
		cc := miscCountries[(i*3)%len(miscCountries)]
		path := &middlebox.Path{HTTP: []middlebox.HTTPInterceptor{inj}}
		b.addHTTPNode(cc, b.bgAS(cc), path, "unidentified injector", "")
	}

	// Block/"bandwidth exceeded" pages, filtered out of the HTML analysis.
	nBlock := b.scaledBg(BlockPageNodes)
	for i := 0; i < nBlock; i++ {
		msg := "bandwidth exceeded"
		if i%2 == 1 {
			msg = "blocked by network policy"
		}
		bp := middlebox.BlockPage{Product: "quota appliance", Message: msg, Kinds: []string{"text/html"}}
		cc := miscCountries[(i*7)%len(miscCountries)]
		path := &middlebox.Path{HTTP: []middlebox.HTTPInterceptor{bp}}
		b.addHTTPNode(cc, b.bgAS(cc), path, "blockpage", "")
	}
}

// miscSignature generates a distinct below-threshold injection domain.
func miscSignature(i int) string {
	letters := "abcdefghijklmnopqrstuvwxyz"
	buf := make([]byte, 8)
	v := uint32(i)*2654435761 + 12345
	for j := range buf {
		buf[j] = letters[v%26]
		v = v*1664525 + 1013904223
	}
	return string(buf) + ".example"
}

// buildImageCompressors instantiates Table 7: mobile ASes transcoding
// images, with per-ISP compression ratios.
func (b *httpBuilder) buildImageCompressors() {
	for _, g := range Table7 {
		org := b.namedOrg(g.OrgID, g.ISP, g.Country)
		asn := b.namedAS(g.ASN, org, true)
		total := b.scaled(g.Total)
		modified := b.scaled(g.Modified)
		if modified > total {
			modified = total
		}
		for i := 0; i < total; i++ {
			if i < modified {
				// "M" rows: the appliance runs two settings; nodes split
				// between them.
				ratio := g.Ratios[i%len(g.Ratios)]
				ic := middlebox.ImageCompressor{Product: g.ISP + " transcoder", Ratios: []float64{ratio}}
				path := &middlebox.Path{HTTP: []middlebox.HTTPInterceptor{ic}}
				b.addHTTPNode(g.Country, asn, path, "", g.ISP)
				continue
			}
			b.addHTTPNode(g.Country, asn, nil, "", "")
		}
	}

	// Compressed images in ASes too small to pass the 10-node filter.
	n := b.scaledBg(SmallCompressingNodes)
	countries := b.pickCountries(8, nil)
	for i := 0; i < n; i++ {
		cc := countries[i%len(countries)]
		org := b.newOrg("", cc)
		asn := b.newAS(org, true)
		ic := middlebox.ImageCompressor{Product: "small mobile transcoder", Ratios: []float64{0.5}}
		path := &middlebox.Path{HTTP: []middlebox.HTTPInterceptor{ic}}
		b.addHTTPNode(cc, asn, path, "", "small mobile ISP")
	}
}

// buildReplacers instantiates the §5.2 JS/CSS replacement cases: error
// pages or empty responses in place of scripts and stylesheets.
func (b *httpBuilder) buildReplacers() {
	countries := b.pickCountries(15, nil)
	nJS := b.scaledBg(JSReplacedNodes)
	for i := 0; i < nJS; i++ {
		bp := middlebox.BlockPage{Product: "script filter", Message: "request rejected",
			Kinds: []string{"application/javascript"}, Empty: i%2 == 0}
		cc := countries[i%len(countries)]
		path := &middlebox.Path{HTTP: []middlebox.HTTPInterceptor{bp}}
		b.addHTTPNode(cc, b.bgAS(cc), path, "js-replaced", "")
	}
	nCSS := b.scaledBg(CSSReplacedNodes)
	for i := 0; i < nCSS; i++ {
		bp := middlebox.BlockPage{Product: "style filter", Message: "request rejected",
			Kinds: []string{"text/css"}, Empty: i%2 == 1}
		cc := countries[(i*3)%len(countries)]
		path := &middlebox.Path{HTTP: []middlebox.HTTPInterceptor{bp}}
		b.addHTTPNode(cc, b.bgAS(cc), path, "css-replaced", "")
	}
}

// fill tops the world up to the Table 2 totals with clean nodes spread
// across HTTPTotalCountries countries.
func (b *httpBuilder) fill() {
	target := b.scaledBg(HTTPTotalNodes)
	built := 0
	for _, v := range b.total {
		built += v
	}
	remaining := target - built
	if remaining <= 0 {
		return
	}
	countries := b.pickCountries(HTTPTotalCountries, nil)
	var weightSum float64
	for i := range countries {
		weightSum += 1 / float64(i+2)
	}
	for i, cc := range countries {
		n := int(float64(remaining) * (1 / float64(i+2)) / weightSum)
		if n < 1 {
			n = 1
		}
		for j := 0; j < n; j++ {
			b.addHTTPNode(cc, b.bgAS(cc), nil, "", "")
		}
	}
}
