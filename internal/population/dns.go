package population

import (
	"fmt"
	"sort"

	"github.com/tftproject/tft/internal/dnsserver"
	"github.com/tftproject/tft/internal/geo"
	"github.com/tftproject/tft/internal/middlebox"
)

// BuildDNSWorld assembles the §4 world: 753k nodes (at scale 1.0) across
// 167 countries whose resolver assignments and hijack behaviours are
// calibrated to Tables 3–5.
func BuildDNSWorld(seed uint64, scale float64) (*World, error) {
	w, err := newWorld(seed, scale, "dns")
	if err != nil {
		return nil, err
	}
	b := &dnsBuilder{World: w,
		total:  make(map[geo.CountryCode]int),
		hijack: make(map[geo.CountryCode]int),
		asPool: make(map[geo.CountryCode]*asPool),
	}
	b.buildISPGroups()
	b.buildPathOnlyISPs()
	b.buildPublicResolvers()
	b.buildSoftwareHijackers()
	b.buildMiscPathHijacks()
	b.buildBeninCluster()
	b.fillCountries()
	return w, nil
}

// dnsBuilder carries the running per-country tallies the fill step needs.
type dnsBuilder struct {
	*World
	total  map[geo.CountryCode]int
	hijack map[geo.CountryCode]int
	asPool map[geo.CountryCode]*asPool
	misc   int // counter for generic landing domains
}

// asPool hands out background ASes for a country, rolling to a new AS every
// asCapacity nodes so the world's AS count tracks the paper's (~74 nodes
// per AS).
type asPool struct {
	asns []geo.ASN
	used int
}

const asCapacity = 74

// bgAS returns a background AS for a country, creating orgs/ASes on demand.
func (b *dnsBuilder) bgAS(cc geo.CountryCode) geo.ASN {
	p := b.asPool[cc]
	if p == nil {
		p = &asPool{}
		b.asPool[cc] = p
	}
	if len(p.asns) == 0 || p.used >= asCapacity {
		org := b.newOrg("", cc)
		p.asns = append(p.asns, b.newAS(org, false))
		p.used = 0
	}
	p.used++
	return p.asns[len(p.asns)-1]
}

// note updates the tallies after adding a node.
func (b *dnsBuilder) note(cc geo.CountryCode, hijacked bool) {
	b.total[cc]++
	if hijacked {
		b.hijack[cc]++
	}
}

// buildISPGroups instantiates Table 4: ISPs whose resolvers hijack, plus
// their Table 5 on-path hijacking of Google-DNS users.
func (b *dnsBuilder) buildISPGroups() {
	for _, g := range Table4 {
		org := b.namedOrg(g.OrgID, g.ISP, g.Country)
		// Each ISP operates a few ASes; TalkTalk famously three (§4.3.3).
		nASes := 1 + b.scaled(g.Nodes)/1200
		if nASes > 4 {
			nASes = 4
		}
		asns := make([]geo.ASN, nASes)
		for i := range asns {
			asns[i] = b.newAS(org, false)
		}

		page := middlebox.LandingSpec{
			Operator:        g.ISP,
			RedirectURL:     "http://" + g.LandingDomain + "/search",
			SharedAppliance: g.SharedAppliance,
			Tagline:         g.Tagline,
			AdCount:         4,
		}.Render()
		landing := b.landingHost(g.LandingDomain, asns[0], page)
		rewriter := middlebox.PathNXHijack{Product: "isp:" + g.ISP, Landing: landing}

		nServers := b.scaled(g.Servers)
		servers := make([]*dnsserver.Resolver, nServers)
		for i := range servers {
			servers[i] = b.ispResolver(asns[i%len(asns)], rewriter)
		}
		honest := b.ispResolver(asns[0], nil)

		nNodes := b.scaled(g.Nodes)
		for i := 0; i < nNodes; i++ {
			asn := asns[i%len(asns)]
			// A small share of subscribers opted out (or use a secondary
			// honest server), keeping per-server hijack ratios near but
			// below 100% as the paper observed.
			if i%37 == 36 {
				n := b.addNode(g.Country, asn, honest, nil)
				b.truth(n).DNSHijacker = ""
				b.note(g.Country, false)
				continue
			}
			n := b.addNode(g.Country, asn, servers[i%len(servers)], nil)
			b.truth(n).DNSHijacker = "isp:" + g.ISP
			b.note(g.Country, true)
		}

		// Table 5: the ISP's transparent DNS proxy also hijacks subscribers
		// who configured Google DNS.
		nPath := 0
		if g.PathNodes > 0 {
			nPath = b.scaled(g.PathNodes)
		}
		for i := 0; i < nPath; i++ {
			asn := asns[i%min(len(asns), max(1, g.PathASNs))]
			path := &middlebox.Path{DNS: []middlebox.DNSInterceptor{rewriter}}
			n := b.addNode(g.Country, asn, b.Google, path)
			t := b.truth(n)
			t.DNSHijacker = "path:" + g.ISP
			t.UsesGoogleDNS = true
			b.note(g.Country, true)
		}
	}
}

// buildPathOnlyISPs instantiates Table 5's ISP rows without Table 4
// presence: the ISP's transparent DNS proxy hijacks Google-DNS users even
// though its own resolvers were never caught doing so.
func (b *dnsBuilder) buildPathOnlyISPs() {
	for _, g := range PathOnlyISPs {
		org := b.namedOrg(g.OrgID, g.ISP, g.Country)
		asn := b.newAS(org, false)
		page := middlebox.LandingSpec{
			Operator:    g.ISP,
			RedirectURL: "http://" + g.LandingDomain + "/portal",
			AdCount:     4,
		}.Render()
		landing := b.landingHost(g.LandingDomain, asn, page)
		rewriter := middlebox.PathNXHijack{Product: "path:" + g.ISP, Landing: landing}
		n := b.scaled(g.Nodes)
		for i := 0; i < n; i++ {
			path := &middlebox.Path{DNS: []middlebox.DNSInterceptor{rewriter}}
			node := b.addNode(g.Country, asn, b.Google, path)
			t := b.truth(node)
			t.DNSHijacker = "path:" + g.ISP
			t.UsesGoogleDNS = true
			b.note(g.Country, true)
		}
	}
}

// buildPublicResolvers instantiates §4.3.2: hijacking public resolver
// operators plus the honest public-resolver long tail. Public resolvers are
// identified by serving nodes in >2 countries.
func (b *dnsBuilder) buildPublicResolvers() {
	for _, g := range PublicHijackers {
		org := b.namedOrg(g.OrgID, g.Org, g.Country)
		asn := b.newAS(org, false)
		page := middlebox.LandingSpec{
			Operator:    g.Org,
			RedirectURL: "http://" + g.LandingDomain + "/results",
			AdCount:     6,
		}.Render()
		landing := b.landingHost(g.LandingDomain, asn, page)
		rewriter := middlebox.PathNXHijack{Product: "public:" + g.Org, Landing: landing}

		nServers := b.scaled(g.Servers)
		nNodes := b.scaled(g.Nodes)
		// Each server must be observed from >2 countries or the §4.3.2
		// public-resolver heuristic cannot fire; guarantee at least four
		// nodes per server spanning four countries.
		perServer := max(4, nNodes/nServers)
		countries := b.pickCountries(6, nil)
		for si := 0; si < nServers; si++ {
			server := b.publicResolver(asn, rewriter)
			for i := 0; i < perServer; i++ {
				cc := countries[(si+i)%len(countries)]
				n := b.addNode(cc, b.bgAS(cc), server, nil)
				b.truth(n).DNSHijacker = "public:" + g.Org
				b.note(cc, true)
			}
		}
	}

	// Honest public resolvers: each serving ~12 nodes from several
	// countries (so the multi-country heuristic classifies them public).
	// At tiny scales the named hijacker groups are floored, so the honest
	// population is floored proportionally to keep hijacking a small
	// minority of open resolvers (the §4.3.2 shape); the inflated servers
	// carry fewer nodes each to limit the distortion.
	hijackServers := 0
	for _, g := range PublicHijackers {
		hijackServers += b.scaled(g.Servers)
	}
	org := b.namedOrg("pub-honest", "Assorted Public DNS", "US")
	asn := b.newAS(org, false)
	nServers := b.scaledBg(HonestPublicResolvers)
	nodesEach := 12
	if floor := 10 * hijackServers; nServers < floor {
		nServers = floor
		nodesEach = 4
	}
	countries := b.pickCountries(12, nil)
	for s := 0; s < nServers; s++ {
		r := b.publicResolver(asn, nil)
		for i := 0; i < nodesEach; i++ {
			cc := countries[(s+i)%len(countries)]
			b.addNode(cc, b.bgAS(cc), r, nil)
			b.note(cc, false)
		}
	}
}

// buildSoftwareHijackers instantiates Table 5's shaded rows: AV software
// and malware rewriting NXDOMAIN on the host, visible because the nodes use
// Google DNS yet still receive hijacked answers spread across many ASes and
// countries.
func (b *dnsBuilder) buildSoftwareHijackers() {
	adOrg := b.namedOrg("ad-networks", "Assorted Ad Networks", "US")
	adASN := b.newAS(adOrg, false)
	for _, g := range SoftwareHijackers {
		page := middlebox.LandingSpec{
			Operator:    g.Product,
			RedirectURL: "http://" + g.LandingDomain + "/safe-search",
			AdCount:     2,
		}.Render()
		landing := b.landingHost(g.LandingDomain, adASN, page)
		rewriter := middlebox.PathNXHijack{Product: "software:" + g.Product, Landing: landing}
		countries := b.pickCountries(g.Countries, nil)
		nNodes := b.scaled(g.Nodes)
		for i := 0; i < nNodes; i++ {
			cc := countries[i%len(countries)]
			path := &middlebox.Path{DNS: []middlebox.DNSInterceptor{rewriter}}
			n := b.addNode(cc, b.bgAS(cc), b.Google, path)
			t := b.truth(n)
			t.DNSHijacker = "software:" + g.Product
			t.UsesGoogleDNS = true
			b.note(cc, true)
		}
	}
}

// buildMiscPathHijacks covers the remaining Google-DNS hijack cases: many
// distinct landing domains each seen on fewer than five nodes.
func (b *dnsBuilder) buildMiscPathHijacks() {
	adOrg := geo.OrgID("ad-networks")
	asns := b.Geo.ASesOf(adOrg)
	if len(asns) == 0 {
		adOrg = b.namedOrg("ad-networks", "Assorted Ad Networks", "US")
		asns = []geo.ASN{b.newAS(adOrg, false)}
	}
	nNodes := b.scaledBg(MiscPathHijackNodes)
	countries := b.pickCountries(30, nil)
	for i := 0; i < nNodes; i++ {
		b.misc++
		domain := fmt.Sprintf("ads%03d.nxmonetize.example", b.misc%120)
		page := middlebox.LandingSpec{
			Operator:    "misc ad network",
			RedirectURL: "http://" + domain + "/serve",
			AdCount:     3,
		}.Render()
		landing := b.landingHost(domain, asns[0], page)
		rewriter := middlebox.PathNXHijack{Product: "software:misc", Landing: landing}
		cc := countries[i%len(countries)]
		path := &middlebox.Path{DNS: []middlebox.DNSInterceptor{rewriter}}
		n := b.addNode(cc, b.bgAS(cc), b.Google, path)
		t := b.truth(n)
		t.DNSHijacker = "software:misc"
		t.UsesGoogleDNS = true
		b.note(cc, true)
	}
}

// buildBeninCluster reproduces footnote 9: OPT Benin's AS with 99% of nodes
// on Google DNS.
func (b *dnsBuilder) buildBeninCluster() {
	org := b.namedOrg(BeninGoogleAS.Org, "OPT Benin", "BJ")
	asn := b.namedAS(BeninGoogleAS.ASN, org, false)
	honest := b.ispResolver(asn, nil)
	total := b.scaled(BeninGoogleAS.Total)
	google := b.scaled(BeninGoogleAS.GoogleNodes)
	if google > total {
		google = total
	}
	for i := 0; i < total; i++ {
		if i < google {
			b.addNode("BJ", asn, b.Google, nil)
		} else {
			b.addNode("BJ", asn, honest, nil)
		}
		b.note("BJ", false)
	}
}

// fillCountries tops up every country to its Table 3 target (or its share
// of the rest-of-world mass), adding below-threshold hijacking servers to
// hit the hijack budgets and honest nodes for the rest.
func (b *dnsBuilder) fillCountries() {
	named := make(map[geo.CountryCode]bool)
	for _, row := range Table3 {
		named[row.Country] = true
	}
	for _, row := range Table3 {
		b.fillCountry(row.Country, b.scaled(row.Total), b.scaled(row.Hijacked))
	}

	// Countries hosting Table 4 ISPs without a Table 3 row: dilute their
	// named hijackers with clean background mass (no extra hijacking).
	// Sorted iteration keeps world generation deterministic.
	extras := make([]geo.CountryCode, 0, len(ExtraCountryTotals))
	for cc := range ExtraCountryTotals {
		extras = append(extras, cc)
	}
	sort.Slice(extras, func(i, j int) bool { return extras[i] < extras[j] })
	for _, cc := range extras {
		named[cc] = true
		b.fillCountry(cc, b.scaledBg(ExtraCountryTotals[cc]), b.hijack[cc])
	}

	// Rest of world: remaining node and hijack mass over the remaining
	// countries, weighted harmonically so country sizes vary.
	var namedTotal, namedHijack int
	for _, row := range Table3 {
		namedTotal += row.Total
		namedHijack += row.Hijacked
	}
	for _, total := range ExtraCountryTotals {
		namedTotal += total
	}
	restTotal := b.scaledBg(DNSTotalNodes - namedTotal)
	restHijack := b.scaledBg(DNSHijackTotal - namedHijack)
	nRest := DNSTotalCountries - len(named)
	rest := b.pickCountries(nRest, named)
	var weightSum float64
	for i := range rest {
		weightSum += 1 / float64(i+3)
	}
	for i, cc := range rest {
		frac := (1 / float64(i+3)) / weightSum
		t := int(float64(restTotal) * frac)
		h := int(float64(restHijack) * frac)
		// Give every rest country at least a node so the country count
		// matches the paper's 167.
		if t < 1 {
			t = 1
		}
		b.fillCountry(cc, b.total[cc]+t, b.hijack[cc]+h)
	}
}

// fillCountry adds nodes until the country reaches the given totals.
func (b *dnsBuilder) fillCountry(cc geo.CountryCode, targetTotal, targetHijack int) {
	// Hijack deficit first: small ISP resolvers (4–9 nodes each — below
	// the paper's 10-node server threshold, so they contribute to totals
	// and attribution but not to Table 4).
	for b.hijack[cc] < targetHijack && b.total[cc] < targetTotal {
		b.misc++
		domain := fmt.Sprintf("dnshelp%04d.%s.example", b.misc, cc)
		asn := b.bgAS(cc)
		org, _ := b.Geo.Org(asn)
		page := middlebox.LandingSpec{
			Operator:    org.Name,
			RedirectURL: "http://" + domain + "/search",
			AdCount:     3,
		}.Render()
		landing := b.landingHost(domain, asn, page)
		rewriter := middlebox.PathNXHijack{Product: "isp:" + org.Name, Landing: landing}
		server := b.ispResolver(asn, rewriter)
		// Stay below the (scale-adjusted) 10-node server-observation cutoff
		// so these contribute to totals and attribution but never to
		// Table 4 — matching the paper's below-threshold ISP servers.
		cutoff := int(10*b.Scale + 0.5)
		if cutoff < 2 {
			cutoff = 2
		}
		lo := cutoff - 6
		if lo < 1 {
			lo = 1
		}
		size := lo
		if hi := cutoff - 1; hi > lo {
			size = lo + b.rng.IntN(hi-lo+1)
		}
		for i := 0; i < size && b.hijack[cc] < targetHijack && b.total[cc] < targetTotal; i++ {
			n := b.addNode(cc, asn, server, nil)
			b.truth(n).DNSHijacker = "isp:" + org.Name
			b.note(cc, true)
		}
	}

	// Honest remainder: mostly ISP resolvers, some Google users. A server's
	// nodes stay inside the server's AS so the ISP-resolver identification
	// (same org for server and all its nodes) holds.
	var server *dnsserver.Resolver
	var serverASN geo.ASN
	serverLeft := 0
	for b.total[cc] < targetTotal {
		if b.rng.Float64() < GoogleDNSShare {
			b.addNode(cc, b.bgAS(cc), b.Google, nil)
			b.note(cc, false)
			continue
		}
		if serverLeft == 0 {
			serverASN = b.bgAS(cc)
			server = b.ispResolver(serverASN, nil)
			serverLeft = 8 + int(b.rng.IntN(30))
		}
		b.addNode(cc, serverASN, server, nil)
		serverLeft--
		b.note(cc, false)
	}
}

// StandardEvolution returns a wave hook for longitudinal scenarios: large
// hijacking ISPs progressively retire their appliances, the kind of change
// §9's continuous measurement is meant to surface. The returned function
// mutates the world before the given wave.
func StandardEvolution(w *World) func(wave int) {
	return func(wave int) {
		switch wave {
		case 1:
			// TMnet retires NXDOMAIN monetization.
			w.SetOrgHijack("tmnet-my", nil)
		case 2:
			// The big U.S. deployments follow.
			w.SetOrgHijack("verizon-us", nil)
			w.SetOrgHijack("cox-us", nil)
		case 3:
			// And the U.K. ones.
			w.SetOrgHijack("talktalk-gb", nil)
			w.SetOrgHijack("bt-gb", nil)
		}
	}
}
