package population

import (
	"context"
	"fmt"
	"net/netip"
	"strings"
	"time"

	"github.com/tftproject/tft/internal/geo"
	"github.com/tftproject/tft/internal/httpwire"
	"github.com/tftproject/tft/internal/middlebox"
	"github.com/tftproject/tft/internal/origin"
	"github.com/tftproject/tft/internal/simnet"
)

// MonTotalCountries is Table 2's country count for the monitoring
// experiment.
const MonTotalCountries = 167

// BuildMonitorWorld assembles the §7 world: ~747k nodes, a fraction of
// which carry content-monitoring software or sit behind monitoring ISPs
// calibrated to Table 9 and Figure 5.
func BuildMonitorWorld(seed uint64, scale float64) (*World, error) {
	w, err := newWorld(seed, scale, "monitor")
	if err != nil {
		return nil, err
	}
	b := &monBuilder{World: w, asPool: make(map[geo.CountryCode]*asPool)}
	for i := range Table9 {
		b.buildGroup(&Table9[i])
	}
	b.buildMiscMonitors()
	b.fill()
	return w, nil
}

type monBuilder struct {
	*World
	asPool map[geo.CountryCode]*asPool
	total  int
}

const monASCapacity = 74

func (b *monBuilder) bgAS(cc geo.CountryCode) geo.ASN {
	p := b.asPool[cc]
	if p == nil {
		p = &asPool{}
		b.asPool[cc] = p
	}
	if len(p.asns) == 0 || p.used >= monASCapacity {
		org := b.newOrg("", cc)
		p.asns = append(p.asns, b.newAS(org, false))
		p.used = 0
	}
	p.used++
	return p.asns[len(p.asns)-1]
}

// refetchFunc builds the middlebox.Env Refetch implementation: the monitor
// fetches http://host+path from one of its own addresses, now or later on
// the virtual clock, carrying its product's scanner User-Agent (§7.2 mines
// the field); negative delays carry the backdating skew header (see
// origin.SkewHeader).
func (w *World) refetchFunc(userAgent string) func(src netip.Addr, host, path string, delay time.Duration) {
	return func(src netip.Addr, host, path string, delay time.Duration) {
		do := func(skew time.Duration) {
			conn, err := w.Fabric.Dial(context.Background(), src, WebIP, 80)
			if err != nil {
				return
			}
			defer conn.Close()
			req := httpwire.NewRequest("GET", path)
			req.Header.Set("Host", host)
			req.Header.Set("User-Agent", userAgent)
			if skew < 0 {
				req.Header.Set(origin.SkewHeader, skew.String())
			}
			br := httpwire.GetReader(conn)
			httpwire.RoundTrip(conn, br, req)
			httpwire.PutReader(br)
		}
		if delay < 0 {
			do(delay)
			return
		}
		w.Clock.AfterFunc(delay, func() { do(0) })
	}
}

// scannerUA derives the product's crawler User-Agent.
func scannerUA(product string) string {
	ua := strings.ToLower(strings.ReplaceAll(product, " ", "-"))
	return ua + "-reputation-scanner/1.0"
}

// monitorEnv builds the per-node Env monitors run in.
func (b *monBuilder) monitorEnv(zid, product string) *middlebox.Env {
	return &middlebox.Env{
		Clock:   b.Clock,
		Rand:    simnet.SubRand(b.Seed, "monenv/"+zid),
		Refetch: b.refetchFunc(scannerUA(product)),
	}
}

// buildGroup instantiates one Table 9 monitoring entity and its covered
// nodes.
func (b *monBuilder) buildGroup(g *MonitorGroup) {
	entOrg := b.namedOrg(geo.OrgID("mon-"+g.Name), g.Name, "US")
	entASN := b.newAS(entOrg, false)
	ips := make([]netip.Addr, b.scaled(g.IPs))
	for i := range ips {
		ips[i] = b.addr(entASN)
	}

	// Split the entity's addresses across its requests; AnchorFree's second
	// request always comes from one address (Menlo Park, §7.2.1).
	reqSources := make([][]netip.Addr, len(g.Requests))
	switch {
	case g.SecondFixedSource:
		// All refetches from one fixed address (AnchorFree's Menlo Park);
		// the other entity addresses are its VPN egress pool.
		for i := range reqSources {
			reqSources[i] = ips[len(ips)-1:]
		}
	case len(g.Requests) == 1:
		reqSources[0] = ips
	default:
		half := (len(ips) + 1) / 2
		reqSources[0] = ips[:half]
		reqSources[1] = ips[half:]
		if len(reqSources[1]) == 0 {
			reqSources[1] = ips
		}
	}

	makeWatcher := func() *middlebox.Watcher {
		w := &middlebox.Watcher{Product: g.Name}
		for i, rs := range g.Requests {
			w.Requests = append(w.Requests, middlebox.RefetchSpec{
				Delay:        middlebox.DelaySpec{Min: rs.Min, Max: rs.Max, LogUniform: rs.LogUniform},
				Sources:      reqSources[i],
				PreFetchProb: rs.PreFetchProb,
				Lead:         middlebox.DelaySpec{Min: rs.LeadMin, Max: rs.LeadMax},
			})
		}
		return w
	}

	// VPN egress pool for AnchorFree-style entities: every entity address
	// except the fixed refetch source carries subscriber traffic.
	var vpnEgress []netip.Addr
	if g.VPN {
		vpnEgress = ips[:max(1, len(ips)-1)]
	}

	addMonitored := func(cc geo.CountryCode, asn geo.ASN, i int) {
		node := b.addNode(cc, asn, b.Google, nil)
		path := &middlebox.Path{Monitors: []middlebox.Monitor{makeWatcher()}}
		if g.VPN {
			path.VPNEgress = vpnEgress[i%len(vpnEgress)]
		}
		node.SetPath(path)
		node.SetEnv(b.monitorEnv(node.ZID(), g.Name))
		b.truth(node).MonitorProduct = g.Name
		b.total++
	}

	if g.HomeISP != "" {
		// ISP-level monitoring: the entity is the subscribers' own ISP, and
		// only CoverageFrac of its nodes are monitored (opt-in parental
		// controls or sampling, §7.2.2).
		org := b.namedOrg(g.HomeISP, g.HomeISPName, g.HomeCountry)
		asns := make([]geo.ASN, max(1, g.ASes))
		for i := range asns {
			asns[i] = b.newAS(org, false)
		}
		monitored := b.scaled(g.Nodes)
		ispTotal := int(float64(monitored)/g.CoverageFrac + 0.5)
		for i := 0; i < ispTotal; i++ {
			asn := asns[i%len(asns)]
			if i < monitored {
				addMonitored(g.HomeCountry, asn, i)
				continue
			}
			b.addNode(g.HomeCountry, asn, b.Google, nil)
			b.total++
		}
		return
	}

	// Software/VPN monitoring: nodes spread over many countries and ASes.
	countries := b.pickCountries(g.Countries, nil)
	monitored := b.scaled(g.Nodes)
	for i := 0; i < monitored; i++ {
		cc := countries[i%len(countries)]
		addMonitored(cc, b.bgAS(cc), i)
	}
}

// buildMiscMonitors covers the long tail: 48 more AS groups sourcing
// unexpected requests for a few nodes each.
func (b *monBuilder) buildMiscMonitors() {
	nGroups := MiscMonitorGroups
	nodesEach := b.scaledBg(MiscMonitorNodes) / nGroups
	if nodesEach == 0 {
		// At small scales keep a couple of misc groups alive.
		nGroups = min(4, b.scaledBg(MiscMonitorNodes))
		nodesEach = 1
	}
	countries := b.pickCountries(25, nil)
	for gi := 0; gi < nGroups; gi++ {
		name := fmt.Sprintf("misc-monitor-%02d", gi)
		entOrg := b.namedOrg(geo.OrgID("mon-"+name), name, "US")
		entASN := b.newAS(entOrg, false)
		srcs := []netip.Addr{b.addr(entASN)}
		if gi%2 == 0 {
			srcs = append(srcs, b.addr(entASN))
		}
		for i := 0; i < nodesEach; i++ {
			cc := countries[(gi+i)%len(countries)]
			node := b.addNode(cc, b.bgAS(cc), b.Google, nil)
			node.SetPath(&middlebox.Path{Monitors: []middlebox.Monitor{&middlebox.Watcher{
				Product: name,
				Requests: []middlebox.RefetchSpec{{
					Delay:   middlebox.DelaySpec{Min: 5 * time.Second, Max: 900 * time.Second, LogUniform: true},
					Sources: srcs,
				}},
			}}})
			node.SetEnv(b.monitorEnv(node.ZID(), name))
			b.truth(node).MonitorProduct = name
			b.total++
		}
	}
}

// fill adds clean nodes up to the Table 2 total across 167 countries.
func (b *monBuilder) fill() {
	target := b.scaledBg(MonTotalNodes)
	remaining := target - b.total
	if remaining <= 0 {
		return
	}
	countries := b.pickCountries(MonTotalCountries, nil)
	var weightSum float64
	for i := range countries {
		weightSum += 1 / float64(i+2)
	}
	for i, cc := range countries {
		n := int(float64(remaining) * (1 / float64(i+2)) / weightSum)
		if n < 1 {
			n = 1
		}
		for j := 0; j < n; j++ {
			b.addNode(cc, b.bgAS(cc), b.Google, nil)
		}
	}
}
