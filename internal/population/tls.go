package population

import (
	"fmt"
	"net/netip"
	"sync/atomic"
	"time"

	"github.com/tftproject/tft/internal/cert"
	"github.com/tftproject/tft/internal/geo"
	"github.com/tftproject/tft/internal/middlebox"
	"github.com/tftproject/tft/internal/origin"
)

// Site is one HTTPS destination the §6 experiment probes.
type Site struct {
	Host string
	IP   netip.Addr
	// Chain is the certificate chain the genuine server presents.
	Chain []*cert.Certificate
	// AltChain, when non-nil, is a second genuine chain the site rotates
	// to on alternating connections — CDN behaviour, the §6.1 footnote-20
	// reason the methodology validates rather than exact-matches popular
	// sites ("many sites use content delivery networks and end up using
	// different certificates on different servers").
	AltChain []*cert.Certificate
	// Invalid marks the three deliberately broken sites; their chains are
	// exact-match checked (§6.1) because the team controls them.
	Invalid bool
}

// SiteRegistry is the experiment's target list: per-country popular sites
// (Alexa top-20 stand-ins), ten university sites, and three invalid sites.
type SiteRegistry struct {
	Popular      map[geo.CountryCode][]*Site
	Universities []*Site
	Invalid      []*Site
	byHost       map[string]*Site
}

// ByHost looks a site up by hostname.
func (sr *SiteRegistry) ByHost(host string) (*Site, bool) {
	s, ok := sr.byHost[host]
	return s, ok
}

// Countries lists the countries with popular-site lists.
func (sr *SiteRegistry) Countries() []geo.CountryCode {
	out := make([]geo.CountryCode, 0, len(sr.Popular))
	for cc := range sr.Popular {
		out = append(out, cc)
	}
	return out
}

// BuildTLSWorld assembles the §6 world: ~808k nodes in 115 countries, a
// site registry, and the Table 8 population of TLS-intercepting products.
func BuildTLSWorld(seed uint64, scale float64) (*World, error) {
	w, err := newWorld(seed, scale, "tls")
	if err != nil {
		return nil, err
	}
	b := &tlsBuilder{World: w, asPool: make(map[geo.CountryCode]*asPool)}
	// 115 countries had usable Alexa rankings (§6.2 footnote). Russia must
	// be among them: the Cloudguard malware population is pinned there.
	b.countries = b.pickCountries(TLSTotalCountries, nil)
	hasRU := false
	for _, cc := range b.countries {
		if cc == "RU" {
			hasRU = true
			break
		}
	}
	if !hasRU {
		b.countries[len(b.countries)-1] = "RU"
	}
	b.buildSites()
	b.buildProducts()
	b.fill()
	w.Sites = b.sites
	return w, nil
}

type tlsBuilder struct {
	*World
	countries []geo.CountryCode
	sites     *SiteRegistry
	asPool    map[geo.CountryCode]*asPool
	total     int
}

const tlsASCapacity = 81 // ~808k nodes over ~10k ASes

func (b *tlsBuilder) bgAS(cc geo.CountryCode) geo.ASN {
	p := b.asPool[cc]
	if p == nil {
		p = &asPool{}
		b.asPool[cc] = p
	}
	if len(p.asns) == 0 || p.used >= tlsASCapacity {
		org := b.newOrg("", cc)
		p.asns = append(p.asns, b.newAS(org, false))
		p.used = 0
	}
	p.used++
	return p.asns[len(p.asns)-1]
}

// registerSite issues a certificate, registers the HTTPS host, and indexes
// the site. Sites with an AltChain rotate between the two chains across
// connections, like CDN-fronted services.
func (b *tlsBuilder) registerSite(host string, asn geo.ASN, chain []*cert.Certificate, invalid bool) *Site {
	ip := b.addr(asn)
	s := &Site{Host: host, IP: ip, Chain: chain, Invalid: invalid}
	var flip atomic.Uint64
	// Stream, not run-to-completion: HTTPS origins are dialed by the exit
	// node while setting up a CONNECT tunnel, so their first bytes (the
	// ClientHello) only arrive after the tunnel's 200 has reached the client
	// and the relay is armed — the handler cannot run to completion inline
	// on whichever goroutine happens to pump it.
	b.Fabric.HandleTCPStream(ip, 443, origin.TLSSite(func(sni string) []*cert.Certificate {
		if s.AltChain != nil && flip.Add(1)%2 == 0 {
			return s.AltChain
		}
		return chain
	}))
	b.sites.byHost[host] = s
	return s
}

// buildSites creates the three site classes of §6.1.
func (b *tlsBuilder) buildSites() {
	b.sites = &SiteRegistry{
		Popular: make(map[geo.CountryCode][]*Site),
		byHost:  make(map[string]*Site),
	}
	webOrg := b.namedOrg("web-hosting", "Global Web Hosting", "US")
	webASN := b.newAS(webOrg, false)
	ca := b.SiteCAs[0]
	eduCA := b.SiteCAs[2]
	valid := func(host string, ca *cert.CA) []*cert.Certificate {
		leaf := ca.Issue(cert.Template{
			Subject:   cert.Name{CommonName: host, Organization: "Site Operator"},
			NotBefore: Epoch.Add(-90 * 24 * time.Hour),
			NotAfter:  Epoch.Add(365 * 24 * time.Hour),
			KeySeed:   "site/" + host,
		})
		return []*cert.Certificate{leaf, ca.Cert}
	}

	// Popular sites: 20 per country; every third sits behind a CDN that
	// rotates between two (equally valid) certificates.
	for _, cc := range b.countries {
		for i := 0; i < 20; i++ {
			host := fmt.Sprintf("www.popular%02d.%s.example", i, cc)
			site := b.registerSite(host, webASN, valid(host, ca), false)
			if i%3 == 0 {
				alt := ca.Issue(cert.Template{
					Subject:   cert.Name{CommonName: host, Organization: "Site Operator (CDN edge)"},
					NotBefore: Epoch.Add(-60 * 24 * time.Hour),
					NotAfter:  Epoch.Add(305 * 24 * time.Hour),
					KeySeed:   "site-cdn/" + host,
				})
				site.AltChain = []*cert.Certificate{alt, ca.Cert}
			}
			b.sites.Popular[cc] = append(b.sites.Popular[cc], site)
		}
	}

	// International sites: ten U.S. universities.
	eduOrg := b.namedOrg("us-universities", "US Universities", "US")
	eduASN := b.newAS(eduOrg, false)
	for i := 0; i < 10; i++ {
		host := fmt.Sprintf("www.university%02d.edu.example", i)
		b.sites.Universities = append(b.sites.Universities, b.registerSite(host, eduASN, valid(host, eduCA), false))
	}

	// Invalid sites: self-signed, expired, wrong common name (§6.1).
	invOrg := b.namedOrg("tft-invalid", "TFT Measurement Servers", "US")
	invASN := b.newAS(invOrg, false)
	self := cert.NewRootCA(cert.Name{CommonName: "selfsigned.tft-invalid.example"}, "inv-self",
		Epoch.Add(-time.Hour), 365*24*time.Hour)
	b.sites.Invalid = append(b.sites.Invalid,
		b.registerSite("selfsigned.tft-invalid.example", invASN,
			[]*cert.Certificate{self.Cert}, true))
	expired := ca.Issue(cert.Template{
		Subject:   cert.Name{CommonName: "expired.tft-invalid.example"},
		NotBefore: Epoch.Add(-2 * 365 * 24 * time.Hour),
		NotAfter:  Epoch.Add(-365 * 24 * time.Hour),
		KeySeed:   "inv-expired",
	})
	b.sites.Invalid = append(b.sites.Invalid,
		b.registerSite("expired.tft-invalid.example", invASN,
			[]*cert.Certificate{expired, ca.Cert}, true))
	wrongCN := ca.Issue(cert.Template{
		Subject:   cert.Name{CommonName: "completely-different-name.example"},
		NotBefore: Epoch.Add(-time.Hour),
		NotAfter:  Epoch.Add(365 * 24 * time.Hour),
		KeySeed:   "inv-wrongcn",
	})
	b.sites.Invalid = append(b.sites.Invalid,
		b.registerSite("wrongname.tft-invalid.example", invASN,
			[]*cert.Certificate{wrongCN, ca.Cert}, true))
}

// buildProducts instantiates Table 8's interceptor population plus the
// long-tail issuers.
func (b *tlsBuilder) buildProducts() {
	now := func() time.Time { return b.Clock.Now() }
	for _, g := range Table8 {
		spec := g.Spec
		if spec.Product == "OpenDNS" {
			// OpenDNS MITMs only its block page list: a slice of popular
			// sites plus some university sites. Coverage below 100% is why
			// selective replacement appears in the data.
			var blocked []string
			for _, cc := range b.countries {
				for i, s := range b.sites.Popular[cc] {
					if i%2 == 0 {
						blocked = append(blocked, s.Host)
					}
				}
			}
			for i, s := range b.sites.Universities {
				if i < 3 {
					blocked = append(blocked, s.Host)
				}
			}
			spec.BlockList = blocked
		}
		pcs := spec.Build(Epoch, b.Trust)
		n := b.scaled(g.Nodes)
		for i := 0; i < n; i++ {
			cc := b.countries[int(b.rng.IntN(len(b.countries)))]
			if spec.Product == "Cloudguard.me" {
				// §6.2: every Cloudguard-infected node sat in a Russian ISP.
				cc = "RU"
			}
			asn := b.bgAS(cc)
			node := b.addNode(cc, asn, b.Google, nil)
			node.SetPath(&middlebox.Path{TLS: []middlebox.TLSInterceptor{pcs.Instance(node.ZID(), now)}})
			b.truth(node).TLSProduct = spec.Product
			b.total++
		}
	}

	// Long tail: many rare issuers.
	nMisc := b.scaledBg(MiscTLSNodes)
	for i := 0; i < nMisc; i++ {
		idx := i % MiscTLSProducts
		spec := middlebox.ProductSpec{
			Product:  fmt.Sprintf("misc-tls-%02d", idx),
			IssuerCN: fmt.Sprintf("Gateway CA %02d", idx),
			Kind:     "N/A", ReuseKey: true, Invalid: middlebox.InvalidSkip,
		}
		pcs := spec.Build(Epoch, b.Trust)
		cc := b.countries[int(b.rng.IntN(len(b.countries)))]
		asn := b.bgAS(cc)
		node := b.addNode(cc, asn, b.Google, nil)
		node.SetPath(&middlebox.Path{TLS: []middlebox.TLSInterceptor{pcs.Instance(node.ZID(), now)}})
		b.truth(node).TLSProduct = spec.Product
		b.total++
	}
}

// fill adds clean nodes up to the Table 2 total, spread over the site
// countries.
func (b *tlsBuilder) fill() {
	target := b.scaledBg(TLSTotalNodes)
	remaining := target - b.total
	if remaining <= 0 {
		return
	}
	var weightSum float64
	for i := range b.countries {
		weightSum += 1 / float64(i+2)
	}
	for i, cc := range b.countries {
		n := int(float64(remaining) * (1 / float64(i+2)) / weightSum)
		if n < 1 {
			n = 1
		}
		for j := 0; j < n; j++ {
			b.addNode(cc, b.bgAS(cc), b.Google, nil)
		}
	}
}
