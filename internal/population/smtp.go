package population

import (
	"net"
	"net/netip"

	"github.com/tftproject/tft/internal/geo"
	"github.com/tftproject/tft/internal/middlebox"
	"github.com/tftproject/tft/internal/smtpwire"
)

// The SMTP world implements the paper's stated future work (§3.4): a VPN
// service that tunnels arbitrary ports, measured for mail-path violations.
// The paper publishes no numbers here, so the ground-truth rates below are
// plausible-world parameters (residential port-25 blocking is widespread;
// STARTTLS stripping is rarer and concentrated in a handful of networks),
// clearly marked as extension calibration rather than paper calibration.
const (
	// SMTPTotalNodes at scale 1.0.
	SMTPTotalNodes = 100_000
	// SMTPBlockedShare of nodes sit in ASes that block outbound port 25.
	SMTPBlockedShare = 0.12
	// SMTPStrippedShare of nodes sit behind STARTTLS-stripping middleboxes.
	SMTPStrippedShare = 0.015
	// SMTPStripperASes is how many ASes operate strippers.
	SMTPStrippedASes = 12
	// SMTPCountries spanned by the crawl.
	SMTPCountries = 120
)

// MailIP is the measurement team's SMTP server.
var MailIP = netip.MustParseAddr("198.18.0.25")

// MailHost is its hostname.
const MailHost = "mail." + Zone

// BuildSMTPWorld assembles the extension world: an any-port tunnel service
// and a node population with port-25 blockers and STARTTLS strippers.
func BuildSMTPWorld(seed uint64, scale float64) (*World, error) {
	w, err := newWorld(seed, scale, "smtp")
	if err != nil {
		return nil, err
	}
	// The hypothetical VPN allows arbitrary ports (§3.4).
	w.Super.AnyPortConnect = true

	// The measurement mail server. SMTP is server-talks-first (the 220
	// greeting) and multi-round, so it keeps a goroutine per connection.
	mail := smtpwire.NewServer(MailHost)
	w.Fabric.HandleTCPStream(MailIP, 25, func(conn net.Conn) {
		defer conn.Close()
		mail.ServeOnce(conn)
	})

	b := &smtpBuilder{World: w, asPool: make(map[geo.CountryCode]*asPool)}
	b.build()
	return w, nil
}

type smtpBuilder struct {
	*World
	asPool map[geo.CountryCode]*asPool
}

func (b *smtpBuilder) bgAS(cc geo.CountryCode) geo.ASN {
	p := b.asPool[cc]
	if p == nil {
		p = &asPool{}
		b.asPool[cc] = p
	}
	if len(p.asns) == 0 || p.used >= asCapacity {
		org := b.newOrg("", cc)
		p.asns = append(p.asns, b.newAS(org, false))
		p.used = 0
	}
	p.used++
	return p.asns[len(p.asns)-1]
}

func (b *smtpBuilder) build() {
	total := b.scaledBg(SMTPTotalNodes)
	blocked := int(float64(total) * SMTPBlockedShare)
	stripped := int(float64(total) * SMTPStrippedShare)
	if stripped < SMTPStrippedASes {
		stripped = SMTPStrippedASes
	}
	countries := b.pickCountries(SMTPCountries, nil)

	// Port-25-blocking ASes: the block is an AS-level policy, so whole
	// background ASes carry it.
	for placed := 0; placed < blocked; {
		cc := countries[int(b.rng.IntN(len(countries)))]
		org := b.newOrg("", cc)
		asn := b.newAS(org, false)
		size := 30 + int(b.rng.IntN(60))
		for i := 0; i < size && placed < blocked; i++ {
			node := b.addNode(cc, asn, b.Google, &middlebox.Path{BlockedPorts: []uint16{25}})
			b.truth(node).HTTPModifier = "smtp:port25-blocked"
			placed++
		}
	}

	// STARTTLS strippers: a dozen ASes run mail-downgrading middleboxes.
	perAS := max(1, stripped/SMTPStrippedASes)
	placedStrip := 0
	for g := 0; g < SMTPStrippedASes && placedStrip < stripped; g++ {
		cc := countries[(g*7)%len(countries)]
		org := b.newOrg("", cc)
		asn := b.newAS(org, false)
		stripper := middlebox.STARTTLSStripper{Product: "mailguard appliance"}
		for i := 0; i < perAS && placedStrip < stripped; i++ {
			node := b.addNode(cc, asn, b.Google,
				&middlebox.Path{Stream: []middlebox.StreamInterceptor{stripper}})
			b.truth(node).HTTPModifier = "smtp:starttls-stripped"
			placedStrip++
		}
	}

	// Clean remainder.
	for b.Pool.Len() < total {
		cc := countries[int(b.rng.IntN(len(countries)))]
		b.addNode(cc, b.bgAS(cc), b.Google, nil)
	}
}
