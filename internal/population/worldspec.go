package population

import (
	"fmt"
	"net/netip"

	"github.com/tftproject/tft/internal/dnsserver"
	"github.com/tftproject/tft/internal/geo"
	"github.com/tftproject/tft/internal/middlebox"
	"github.com/tftproject/tft/internal/proxynet"
	"github.com/tftproject/tft/internal/simnet"
)

// WorldSpec is the recorded blueprint of a world's exit-node population.
// The builders run exactly as they would for an eager world — consuming the
// same random streams and allocating addresses in the same order — but each
// addNode call records one compact columnar row here instead of
// materializing a *proxynet.ExitNode and registering it in a pool. Nodes
// are materialized on demand (per pick, or per shard for sharded
// consumers), so idle cost per unrealized node is a handful of column cells
// instead of a live node object plus pool and truth map entries.
//
// Storage is structure-of-arrays: shared components (resolvers, interceptor
// paths, monitor envs) are stored as pointers to objects the builders share
// between many nodes, so two materializations of the same index observe the
// same cross-pick state.
type WorldSpec struct {
	seed uint64

	addrs     []netip.Addr
	asns      []geo.ASN
	countries []geo.CountryCode
	resolvers []*dnsserver.Resolver
	paths     []*middlebox.Path
	envs      []*middlebox.Env
	truths    []NodeTruth
}

// NewWorldSpec creates an empty spec store for a world with the given seed.
func NewWorldSpec(seed uint64) *WorldSpec {
	return &WorldSpec{seed: seed}
}

// Len is the recorded population size.
func (s *WorldSpec) Len() int { return len(s.addrs) }

// ZID returns the persistent identifier of node i. Identifiers are dense —
// node i is "z%08d" of i+1 — so a zID maps back to its row without an index
// structure.
func (s *WorldSpec) ZID(i int) string { return fmt.Sprintf("z%08d", i+1) }

// Index maps a zID back to its row, reporting false for identifiers this
// spec never issued.
func (s *WorldSpec) Index(zid string) (int, bool) {
	if len(zid) != 9 || zid[0] != 'z' {
		return 0, false
	}
	n := 0
	for i := 1; i < len(zid); i++ {
		c := zid[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	if n < 1 || n > len(s.addrs) {
		return 0, false
	}
	return n - 1, true
}

// add records one node row and returns its index.
func (s *WorldSpec) add(cc geo.CountryCode, asn geo.ASN, addr netip.Addr, resolver *dnsserver.Resolver, path *middlebox.Path) int {
	i := len(s.addrs)
	s.addrs = append(s.addrs, addr)
	s.asns = append(s.asns, asn)
	s.countries = append(s.countries, cc)
	s.resolvers = append(s.resolvers, resolver)
	s.paths = append(s.paths, path)
	s.envs = append(s.envs, nil)
	s.truths = append(s.truths, NodeTruth{})
	return i
}

// Truth returns the mutable ground-truth record for row i.
func (s *WorldSpec) Truth(i int) *NodeTruth { return &s.truths[i] }

// Materialize builds the live exit node for row i, carrying its traffic
// over net. Every call returns a fresh instance; all cross-pick state lives
// in the shared resolver/path/env components.
func (s *WorldSpec) Materialize(i int, net proxynet.Dialer) *proxynet.ExitNode {
	return &proxynet.ExitNode{
		ZID:      s.ZID(i),
		Addr:     s.addrs[i],
		ASN:      s.asns[i],
		Country:  s.countries[i],
		Resolver: s.resolvers[i],
		Path:     s.paths[i],
		Env:      s.envs[i],
		Net:      net,
	}
}

// SpecShard is one contiguous share of a sharded traversal of the spec,
// with a splitmix-derived seed of its own so per-shard consumers draw from
// decorrelated random streams and any shard's work is reproducible without
// touching the others.
type SpecShard struct {
	spec *WorldSpec
	// Index is the shard number; Start/End the half-open row range.
	Index      int
	Start, End int
}

// Shards splits the spec into k contiguous shards (earlier shards absorb
// the remainder). k is clamped to [1, Len()] for non-empty specs.
func (s *WorldSpec) Shards(k int) []SpecShard {
	n := s.Len()
	if k < 1 {
		k = 1
	}
	if n > 0 && k > n {
		k = n
	}
	out := make([]SpecShard, k)
	for i := 0; i < k; i++ {
		out[i] = SpecShard{spec: s, Index: i, Start: i * n / k, End: (i + 1) * n / k}
	}
	return out
}

// Len is the shard's row count.
func (sh SpecShard) Len() int { return sh.End - sh.Start }

// Seed is the shard's derived random-stream root.
func (sh SpecShard) Seed() uint64 { return simnet.ShardSeed(sh.spec.seed, sh.Index) }

// Each visits the shard's rows in order, handing the visitor the row
// index; materialize what is needed via the parent spec.
func (sh SpecShard) Each(visit func(i int)) {
	for i := sh.Start; i < sh.End; i++ {
		visit(i)
	}
}

// Spec returns the parent spec.
func (sh SpecShard) Spec() *WorldSpec { return sh.spec }

// NodeHandle is the builders' reference to a recorded node: enough to set
// the per-node components assigned after creation (interceptor path,
// monitor env) and the ground-truth labels, without keeping a live node
// around.
type NodeHandle struct {
	spec *WorldSpec
	idx  int
}

// ZID returns the node's persistent identifier.
func (h NodeHandle) ZID() string { return h.spec.ZID(h.idx) }

// SetPath assigns the node's interceptor stack.
func (h NodeHandle) SetPath(p *middlebox.Path) { h.spec.paths[h.idx] = p }

// SetEnv assigns the node's monitor environment.
func (h NodeHandle) SetEnv(e *middlebox.Env) { h.spec.envs[h.idx] = e }
