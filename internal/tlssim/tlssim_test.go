package tlssim

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net"
	"testing"
	"testing/quick"
	"time"

	"github.com/tftproject/tft/internal/cert"
)

var epoch = time.Date(2016, 4, 14, 0, 0, 0, 0, time.UTC)

func sitePKI(t *testing.T) (*cert.Store, *cert.CA, []*cert.Certificate) {
	t.Helper()
	root := cert.NewRootCA(cert.Name{CommonName: "Root"}, "r", epoch.Add(-time.Hour), 1000*time.Hour)
	leaf := root.Issue(cert.Template{
		Subject:   cert.Name{CommonName: "www.example.org"},
		NotBefore: epoch.Add(-time.Hour), NotAfter: epoch.Add(1000 * time.Hour),
		KeySeed: "site",
	})
	return cert.NewStore(root.Cert), root, []*cert.Certificate{leaf, root.Cert}
}

func TestRecordRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecord(&buf, RecordClientHello, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	rec, err := ReadRecord(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Type != RecordClientHello || string(rec.Payload) != "payload" {
		t.Fatalf("rec = %+v", rec)
	}
}

func TestRecordTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecord(&buf, RecordAlert, make([]byte, MaxRecordSize+1)); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadRecordTruncated(t *testing.T) {
	if _, err := ReadRecord(bytes.NewReader([]byte{1, 0, 0})); err == nil {
		t.Fatal("short header accepted")
	}
	if _, err := ReadRecord(bytes.NewReader([]byte{1, 0, 0, 5, 'a', 'b'})); err == nil {
		t.Fatal("short payload accepted")
	}
}

func TestHelloRoundTrip(t *testing.T) {
	sni, err := ParseHello(marshalHello("www.example.org"))
	if err != nil || sni != "www.example.org" {
		t.Fatalf("sni = %q, err = %v", sni, err)
	}
	if _, err := ParseHello([]byte{0}); err == nil {
		t.Fatal("short hello accepted")
	}
	if _, err := ParseHello([]byte{0, 3, 'a'}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestClientServerHandshake(t *testing.T) {
	store, _, chain := sitePKI(t)
	c, s := net.Pipe()
	defer c.Close()
	go func() {
		defer s.Close()
		ServeOnce(s, func(sni string) []*cert.Certificate {
			if sni != "www.example.org" {
				return nil
			}
			return chain
		})
	}()
	got, err := CollectChain(c, "www.example.org")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("chain length = %d", len(got))
	}
	if err := store.Verify("www.example.org", got, epoch); err != nil {
		t.Fatalf("collected chain invalid: %v", err)
	}
}

func TestUnknownSNIGetsAlert(t *testing.T) {
	_, _, chain := sitePKI(t)
	c, s := net.Pipe()
	defer c.Close()
	go func() {
		defer s.Close()
		ServeOnce(s, func(sni string) []*cert.Certificate {
			if sni == "www.example.org" {
				return chain
			}
			return nil
		})
	}()
	_, err := CollectChain(c, "nonexistent.example.org")
	if !errors.Is(err, ErrAlert) {
		t.Fatalf("err = %v, want ErrAlert", err)
	}
}

// relayPair runs a client handshake through a Relay to a server, returning
// the chain the client sees.
func relayPair(t *testing.T, chain []*cert.Certificate, icept ChainInterceptor) []*cert.Certificate {
	t.Helper()
	clientEnd, relayClientSide := net.Pipe()
	relayServerSide, serverEnd := net.Pipe()
	defer clientEnd.Close()
	go func() {
		defer serverEnd.Close()
		ServeOnce(serverEnd, func(string) []*cert.Certificate { return chain })
	}()
	go func() {
		defer relayClientSide.Close()
		defer relayServerSide.Close()
		if err := Relay(relayClientSide, relayServerSide, icept); err != nil && !errors.Is(err, io.EOF) {
			t.Logf("relay: %v", err)
		}
	}()
	got, err := CollectChain(clientEnd, "www.example.org")
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestTransparentRelay(t *testing.T) {
	store, _, chain := sitePKI(t)
	got := relayPair(t, chain, nil)
	if err := store.Verify("www.example.org", got, epoch); err != nil {
		t.Fatalf("transparent relay corrupted chain: %v", err)
	}
	if got[0].Fingerprint() != chain[0].Fingerprint() {
		t.Fatal("leaf fingerprint changed through transparent relay")
	}
}

func TestMITMRelayReplacesChain(t *testing.T) {
	store, _, chain := sitePKI(t)
	avRoot := cert.NewRootCA(cert.Name{CommonName: "Avast Web/Mail Shield Root"}, "avast",
		epoch.Add(-time.Hour), 1000*time.Hour)
	icept := func(sni string, orig []*cert.Certificate) []*cert.Certificate {
		spoof := avRoot.Issue(cert.Template{
			Subject:   cert.Name{CommonName: sni},
			NotBefore: epoch.Add(-time.Hour), NotAfter: epoch.Add(100 * time.Hour),
			KeySeed: "av-shared",
		})
		return []*cert.Certificate{spoof, avRoot.Cert}
	}
	got := relayPair(t, chain, icept)
	err := store.Verify("www.example.org", got, epoch)
	if !errors.Is(err, cert.ErrUntrustedRoot) {
		t.Fatalf("MITM chain verification = %v, want ErrUntrustedRoot", err)
	}
	if got[0].Issuer.CommonName != "Avast Web/Mail Shield Root" {
		t.Fatalf("issuer = %q", got[0].Issuer.CommonName)
	}
	// The original cert never reaches the client.
	if got[0].Fingerprint() == chain[0].Fingerprint() {
		t.Fatal("original leaf leaked through MITM")
	}
}

func TestSelectiveInterceptorPassthrough(t *testing.T) {
	// Returning nil from the interceptor means "do not replace" — §6.2
	// observed selective replacement.
	store, _, chain := sitePKI(t)
	icept := func(sni string, orig []*cert.Certificate) []*cert.Certificate { return nil }
	got := relayPair(t, chain, icept)
	if err := store.Verify("www.example.org", got, epoch); err != nil {
		t.Fatalf("selective passthrough corrupted chain: %v", err)
	}
}

func TestServeOnceRejectsNonHello(t *testing.T) {
	c, s := net.Pipe()
	defer c.Close()
	errCh := make(chan error, 1)
	go func() {
		defer s.Close()
		errCh <- ServeOnce(s, func(string) []*cert.Certificate { return nil })
	}()
	WriteRecord(c, RecordAlert, []byte("x"))
	if err := <-errCh; !errors.Is(err, ErrUnexpected) {
		t.Fatalf("err = %v, want ErrUnexpected", err)
	}
}

// Property: records of arbitrary payloads round-trip through the framing.
func TestPropertyRecordRoundTrip(t *testing.T) {
	f := func(typ uint8, payload []byte) bool {
		var buf bytes.Buffer
		if err := WriteRecord(&buf, RecordType(typ), payload); err != nil {
			return false
		}
		rec, err := ReadRecord(&buf)
		if err != nil {
			return false
		}
		return rec.Type == RecordType(typ) && bytes.Equal(rec.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: hello parsing accepts exactly what marshalHello produces.
func TestPropertyHelloRoundTrip(t *testing.T) {
	f := func(sni string) bool {
		if len(sni) > 65535 {
			sni = sni[:65535]
		}
		got, err := ParseHello(marshalHello(sni))
		return err == nil && got == sni
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRecordGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		buf := make([]byte, rng.Intn(40))
		rng.Read(buf)
		ReadRecord(bytes.NewReader(buf)) // must not panic
	}
}
