// Package tlssim implements the record-framed handshake the HTTPS
// experiment (§6) drives through CONNECT tunnels: the client sends a hello
// naming the server (SNI), the server answers with its certificate chain,
// and the client hangs up — the paper never requests content, it only
// collects certificates.
//
// Framing matters because the tunnel is a byte pipe: the exit node (and any
// on-path interceptor) sees records, not structures. A man-in-the-middle
// replaces the server's certificate record in flight, which is exactly how
// the AV products, OpenDNS, and the Cloudguard malware of §6.2 operate.
package tlssim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/tftproject/tft/internal/cert"
)

// RecordType labels a handshake record.
type RecordType uint8

// The protocol's record types.
const (
	RecordClientHello  RecordType = 1
	RecordCertificates RecordType = 2
	RecordAlert        RecordType = 3
)

// MaxRecordSize bounds a record payload (16 MiB framing limit).
const MaxRecordSize = 1<<24 - 1

// Protocol errors.
var (
	ErrRecordTooLarge = errors.New("tlssim: record exceeds maximum size")
	ErrUnexpected     = errors.New("tlssim: unexpected record type")
	ErrAlert          = errors.New("tlssim: peer sent alert")
)

// Record is one framed protocol message.
type Record struct {
	Type    RecordType
	Payload []byte
}

// WriteRecord frames and writes one record.
func WriteRecord(w io.Writer, typ RecordType, payload []byte) error {
	if len(payload) > MaxRecordSize {
		return ErrRecordTooLarge
	}
	hdr := [4]byte{byte(typ), byte(len(payload) >> 16), byte(len(payload) >> 8), byte(len(payload))}
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadRecord reads one framed record.
func ReadRecord(r io.Reader) (Record, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Record{}, err
	}
	n := int(hdr[1])<<16 | int(hdr[2])<<8 | int(hdr[3])
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Record{}, err
	}
	return Record{Type: RecordType(hdr[0]), Payload: payload}, nil
}

// marshalHello encodes a ClientHello payload carrying the SNI.
func marshalHello(serverName string) []byte {
	b := make([]byte, 0, 2+len(serverName))
	b = binary.BigEndian.AppendUint16(b, uint16(len(serverName)))
	return append(b, serverName...)
}

// ParseHello decodes a ClientHello payload.
func ParseHello(payload []byte) (serverName string, err error) {
	if len(payload) < 2 {
		return "", fmt.Errorf("tlssim: short hello")
	}
	n := int(binary.BigEndian.Uint16(payload))
	if len(payload) != 2+n {
		return "", fmt.Errorf("tlssim: hello length mismatch")
	}
	return string(payload[2:]), nil
}

// CollectChain performs the client side of the handshake over rw: it sends
// a hello for serverName and returns the certificate chain the peer
// presents. This is the §6.1 operation — connect, record certificates,
// terminate without requesting content.
func CollectChain(rw io.ReadWriter, serverName string) ([]*cert.Certificate, error) {
	if err := WriteRecord(rw, RecordClientHello, marshalHello(serverName)); err != nil {
		return nil, err
	}
	rec, err := ReadRecord(rw)
	if err != nil {
		return nil, err
	}
	switch rec.Type {
	case RecordCertificates:
		return cert.UnmarshalChain(rec.Payload)
	case RecordAlert:
		return nil, fmt.Errorf("%w: %s", ErrAlert, rec.Payload)
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnexpected, rec.Type)
	}
}

// ChainSource supplies a server's certificate chain for an SNI value. A nil
// return produces an alert (unknown server name).
type ChainSource func(serverName string) []*cert.Certificate

// ServeOnce performs the server side for a single handshake on rw.
func ServeOnce(rw io.ReadWriter, chains ChainSource) error {
	rec, err := ReadRecord(rw)
	if err != nil {
		return err
	}
	if rec.Type != RecordClientHello {
		return fmt.Errorf("%w: %d", ErrUnexpected, rec.Type)
	}
	sni, err := ParseHello(rec.Payload)
	if err != nil {
		return err
	}
	chain := chains(sni)
	if chain == nil {
		return WriteRecord(rw, RecordAlert, []byte("unrecognized name: "+sni))
	}
	return WriteRecord(rw, RecordCertificates, cert.MarshalChain(chain))
}

// ChainInterceptor rewrites a server's certificate chain in flight. The
// serverName comes from the observed ClientHello. Interceptors that act
// conditionally (OpenDNS only MITMs valid-cert sites; several AV products
// launder invalid ones, §6.2) validate the original chain themselves.
// Returning nil leaves the original chain untouched.
type ChainInterceptor func(serverName string, original []*cert.Certificate) []*cert.Certificate

// Relay pipes a handshake between client and server, optionally rewriting
// the server's certificate record through icept (nil means transparent).
// This is the exit node's tunnel role: bytes in, bytes out — except when a
// middlebox sits on the path.
func Relay(client, server io.ReadWriter, icept ChainInterceptor) error {
	hello, err := ReadRecord(client)
	if err != nil {
		return err
	}
	if hello.Type != RecordClientHello {
		return fmt.Errorf("%w: %d", ErrUnexpected, hello.Type)
	}
	sni, err := ParseHello(hello.Payload)
	if err != nil {
		return err
	}
	if err := WriteRecord(server, hello.Type, hello.Payload); err != nil {
		return err
	}
	resp, err := ReadRecord(server)
	if err != nil {
		return err
	}
	if resp.Type == RecordCertificates && icept != nil {
		chain, err := cert.UnmarshalChain(resp.Payload)
		if err != nil {
			return err
		}
		if replaced := icept(sni, chain); replaced != nil {
			resp.Payload = cert.MarshalChain(replaced)
		}
	}
	return WriteRecord(client, resp.Type, resp.Payload)
}
