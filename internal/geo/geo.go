// Package geo models the pieces of Internet cartography the paper relies
// on: Autonomous Systems, the organizations (ISPs) that operate them, the
// countries those organizations are registered in, and the IPv4 address
// space each AS announces.
//
// The paper (§3.1) maps IP addresses to ASes with RouteViews data and ASes
// to organizations and countries with CAIDA's AS-organizations dataset.
// Registry exposes the same two queries — LookupAS(ip) and Org(asn) — over a
// synthetic allocation, so every attribution step in internal/analysis runs
// against the interface the paper used.
package geo

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"
)

// ASN is an Autonomous System number.
type ASN uint32

// CountryCode is an ISO 3166-1 alpha-2 country code.
type CountryCode string

// OrgID identifies an organization (ISP) in the registry. One organization
// may operate several ASes, exactly as in CAIDA's dataset.
type OrgID string

// Organization is an ISP or other network operator.
type Organization struct {
	ID      OrgID
	Name    string
	Country CountryCode
}

// AS is one autonomous system and its operator.
type AS struct {
	Number ASN
	Org    OrgID
	// Mobile marks ASes operated as cellular networks; the paper's image
	// transcoding findings (§5.2, Table 7) are exclusive to mobile ISPs.
	Mobile bool
}

// Registry is the synthetic RouteViews + CAIDA stand-in: organizations,
// their ASes, and the IPv4 prefixes each AS announces. It allocates address
// space on demand and answers longest-prefix IP→AS lookups. Safe for
// concurrent reads after construction; registration is serialized.
type Registry struct {
	mu       sync.RWMutex
	orgs     map[OrgID]*Organization
	ases     map[ASN]*AS
	prefixes []prefixEntry // sorted by address for binary search
	sorted   bool

	// nextBlock walks the allocatable space handing out /16-aligned blocks.
	nextBlock uint32
	// cursor per AS for sequential address assignment inside its prefixes.
	cursors map[ASN]*allocCursor
}

type prefixEntry struct {
	prefix netip.Prefix
	asn    ASN
}

type allocCursor struct {
	prefix netip.Prefix
	next   uint32 // next host offset within prefix
	size   uint32 // number of addresses in prefix
}

// allocBase is where synthetic allocation starts. The space below (and a few
// carved-out ranges) is reserved for well-known actors pinned by tests.
const allocBase = 0x0B000000 // 11.0.0.0

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		orgs:      make(map[OrgID]*Organization),
		ases:      make(map[ASN]*AS),
		cursors:   make(map[ASN]*allocCursor),
		nextBlock: allocBase,
	}
}

// AddOrg registers an organization. Re-registering an existing ID is an
// error: the calibrated world must not silently merge distinct operators.
func (r *Registry) AddOrg(id OrgID, name string, country CountryCode) (*Organization, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.orgs[id]; ok {
		return nil, fmt.Errorf("geo: organization %q already registered", id)
	}
	o := &Organization{ID: id, Name: name, Country: country}
	r.orgs[id] = o
	return o, nil
}

// AddAS registers an AS operated by org. The organization must already
// exist.
func (r *Registry) AddAS(asn ASN, org OrgID, mobile bool) (*AS, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.orgs[org]; !ok {
		return nil, fmt.Errorf("geo: AS%d references unknown organization %q", asn, org)
	}
	if _, ok := r.ases[asn]; ok {
		return nil, fmt.Errorf("geo: AS%d already registered", asn)
	}
	a := &AS{Number: asn, Org: org, Mobile: mobile}
	r.ases[asn] = a
	return a, nil
}

// Announce records that asn originates prefix. Used both by the synthetic
// allocator and to pin well-known real-world ranges (Google's 8.8.8.0/24 and
// 74.125.0.0/16, which the paper's methodology special-cases).
func (r *Registry) Announce(asn ASN, prefix netip.Prefix) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.ases[asn]; !ok {
		return fmt.Errorf("geo: announce from unknown AS%d", asn)
	}
	return r.announceLocked(asn, prefix)
}

func (r *Registry) announceLocked(asn ASN, prefix netip.Prefix) error {
	if !prefix.Addr().Is4() {
		return fmt.Errorf("geo: only IPv4 prefixes are supported, got %v", prefix)
	}
	r.prefixes = append(r.prefixes, prefixEntry{prefix: prefix.Masked(), asn: asn})
	r.sorted = false
	return nil
}

// AllocPrefix carves a fresh /p prefix out of unallocated space and
// announces it from asn.
func (r *Registry) AllocPrefix(asn ASN, bits int) (netip.Prefix, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.ases[asn]; !ok {
		return netip.Prefix{}, fmt.Errorf("geo: allocation for unknown AS%d", asn)
	}
	if bits < 8 || bits > 30 {
		return netip.Prefix{}, fmt.Errorf("geo: prefix length /%d out of range", bits)
	}
	size := uint32(1) << (32 - bits)
	// Align the block to its own size.
	base := (r.nextBlock + size - 1) &^ (size - 1)
	if base < r.nextBlock || base+size < base {
		return netip.Prefix{}, fmt.Errorf("geo: IPv4 allocation space exhausted")
	}
	r.nextBlock = base + size
	p := netip.PrefixFrom(u32ToAddr(base), bits)
	if err := r.announceLocked(asn, p); err != nil {
		return netip.Prefix{}, err
	}
	return p, nil
}

// NextAddr hands out the next unused address from asn's allocated space,
// allocating a new prefix when the current one is exhausted. This is how the
// population generator assigns node and resolver addresses.
func (r *Registry) NextAddr(asn ASN) (netip.Addr, error) {
	r.mu.Lock()
	cur := r.cursors[asn]
	r.mu.Unlock()
	if cur == nil || cur.next >= cur.size {
		// A /18 (16k addresses) per chunk keeps the prefix table small even
		// for million-node worlds.
		p, err := r.AllocPrefix(asn, 18)
		if err != nil {
			return netip.Addr{}, err
		}
		cur = &allocCursor{prefix: p, next: 1, size: 1 << (32 - uint32(p.Bits()))}
		r.mu.Lock()
		r.cursors[asn] = cur
		r.mu.Unlock()
	}
	base := addrToU32(cur.prefix.Addr())
	a := u32ToAddr(base + cur.next)
	cur.next++
	return a, nil
}

// LookupAS maps an IP address to the AS announcing its covering prefix
// (longest match), as RouteViews-derived tools do.
func (r *Registry) LookupAS(ip netip.Addr) (ASN, bool) {
	r.mu.Lock()
	if !r.sorted {
		sort.Slice(r.prefixes, func(i, j int) bool {
			pi, pj := r.prefixes[i], r.prefixes[j]
			ai, aj := addrToU32(pi.prefix.Addr()), addrToU32(pj.prefix.Addr())
			if ai != aj {
				return ai < aj
			}
			return pi.prefix.Bits() < pj.prefix.Bits()
		})
		r.sorted = true
	}
	prefixes := r.prefixes
	r.mu.Unlock()

	if !ip.Is4() {
		return 0, false
	}
	want := addrToU32(ip)
	// Find the last prefix whose base address is <= ip, then walk backwards
	// looking for containment, preferring the longest match.
	i := sort.Search(len(prefixes), func(i int) bool {
		return addrToU32(prefixes[i].prefix.Addr()) > want
	})
	bestBits := -1
	var best ASN
	for j := i - 1; j >= 0; j-- {
		e := prefixes[j]
		if e.prefix.Contains(ip) {
			if e.prefix.Bits() > bestBits {
				bestBits = e.prefix.Bits()
				best = e.asn
			}
			continue
		}
		// Once we've moved past any prefix that could contain ip (base more
		// than a /8 away), stop scanning.
		if want-addrToU32(e.prefix.Addr()) > 1<<24 {
			break
		}
	}
	if bestBits < 0 {
		return 0, false
	}
	return best, true
}

// ASInfo returns the AS record for asn.
func (r *Registry) ASInfo(asn ASN) (*AS, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.ases[asn]
	return a, ok
}

// Org returns the organization operating asn.
func (r *Registry) Org(asn ASN) (*Organization, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.ases[asn]
	if !ok {
		return nil, false
	}
	o, ok := r.orgs[a.Org]
	return o, ok
}

// OrgByID returns the organization with the given ID.
func (r *Registry) OrgByID(id OrgID) (*Organization, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	o, ok := r.orgs[id]
	return o, ok
}

// Country returns the registration country for asn, following the paper's
// convention of inferring country from the AS's organization.
func (r *Registry) Country(asn ASN) (CountryCode, bool) {
	o, ok := r.Org(asn)
	if !ok {
		return "", false
	}
	return o.Country, true
}

// NumASes returns the number of registered ASes.
func (r *Registry) NumASes() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.ases)
}

// NumOrgs returns the number of registered organizations.
func (r *Registry) NumOrgs() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.orgs)
}

// ASesOf lists the AS numbers operated by org, sorted ascending.
func (r *Registry) ASesOf(org OrgID) []ASN {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []ASN
	for asn, a := range r.ases {
		if a.Org == org {
			out = append(out, asn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func addrToU32(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func u32ToAddr(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// SnapshotOrg, SnapshotAS, and SnapshotPrefix are the registry's
// serializable form — the synthetic analogue of publishing the RouteViews
// and CAIDA snapshots alongside a dataset release.
type SnapshotOrg struct {
	ID      OrgID       `json:"id"`
	Name    string      `json:"name"`
	Country CountryCode `json:"country"`
}

// SnapshotAS is one AS row.
type SnapshotAS struct {
	ASN    ASN   `json:"asn"`
	Org    OrgID `json:"org"`
	Mobile bool  `json:"mobile,omitempty"`
}

// SnapshotPrefix is one announced prefix.
type SnapshotPrefix struct {
	Prefix string `json:"prefix"`
	ASN    ASN    `json:"asn"`
}

// Snapshot exports the registry's contents, sorted deterministically.
func (r *Registry) Snapshot() ([]SnapshotOrg, []SnapshotAS, []SnapshotPrefix) {
	r.mu.Lock()
	defer r.mu.Unlock()
	orgs := make([]SnapshotOrg, 0, len(r.orgs))
	for _, o := range r.orgs {
		orgs = append(orgs, SnapshotOrg{ID: o.ID, Name: o.Name, Country: o.Country})
	}
	sort.Slice(orgs, func(i, j int) bool { return orgs[i].ID < orgs[j].ID })
	ases := make([]SnapshotAS, 0, len(r.ases))
	for _, a := range r.ases {
		ases = append(ases, SnapshotAS{ASN: a.Number, Org: a.Org, Mobile: a.Mobile})
	}
	sort.Slice(ases, func(i, j int) bool { return ases[i].ASN < ases[j].ASN })
	prefixes := make([]SnapshotPrefix, 0, len(r.prefixes))
	for _, p := range r.prefixes {
		prefixes = append(prefixes, SnapshotPrefix{Prefix: p.prefix.String(), ASN: p.asn})
	}
	sort.Slice(prefixes, func(i, j int) bool {
		if prefixes[i].Prefix != prefixes[j].Prefix {
			return prefixes[i].Prefix < prefixes[j].Prefix
		}
		return prefixes[i].ASN < prefixes[j].ASN
	})
	return orgs, ases, prefixes
}

// FromSnapshot rebuilds a registry from exported rows.
func FromSnapshot(orgs []SnapshotOrg, ases []SnapshotAS, prefixes []SnapshotPrefix) (*Registry, error) {
	r := NewRegistry()
	for _, o := range orgs {
		if _, err := r.AddOrg(o.ID, o.Name, o.Country); err != nil {
			return nil, err
		}
	}
	for _, a := range ases {
		if _, err := r.AddAS(a.ASN, a.Org, a.Mobile); err != nil {
			return nil, err
		}
	}
	for _, p := range prefixes {
		pfx, err := netip.ParsePrefix(p.Prefix)
		if err != nil {
			return nil, fmt.Errorf("geo: snapshot prefix %q: %w", p.Prefix, err)
		}
		if err := r.Announce(p.ASN, pfx); err != nil {
			return nil, err
		}
	}
	return r, nil
}
