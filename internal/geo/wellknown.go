package geo

import "net/netip"

// Well-known actors the methodology special-cases, pinned to their
// real-world identifiers so the detection heuristics read like the paper.
const (
	// GoogleASN is Google's AS, operator of the 8.8.8.8 public resolver. The
	// Luminati super proxy resolves through it (§2.3), and §4.3.3 keys the
	// "hijacked despite Google DNS" analysis on queries arriving from
	// Google's published netblocks.
	GoogleASN ASN = 15169
	// GoogleOrg is the organization ID for Google.
	GoogleOrg OrgID = "google"
)

var (
	// GoogleDNSAddr is the public anycast resolver address nodes configure.
	GoogleDNSAddr = netip.MustParseAddr("8.8.8.8")
	// GoogleEgressPrefix is where Google's recursive egress queries come
	// from (the paper empirically pinned the super proxy's resolver inside
	// 74.125.0.0/16).
	GoogleEgressPrefix = netip.MustParsePrefix("74.125.0.0/16")
	// GoogleServicePrefix covers the anycast service address itself.
	GoogleServicePrefix = netip.MustParsePrefix("8.8.8.0/24")
	// SuperProxyResolverEgress is the specific Google egress address serving
	// the super proxy. Exit nodes whose Google anycast instance shares this
	// egress are indistinguishable from the super proxy's own resolution and
	// must be filtered (§4.1 footnote 8).
	SuperProxyResolverEgress = netip.MustParseAddr("74.125.45.53")
)

// InstallGoogle registers Google's organization, AS, and address space in a
// registry. Worlds call this before any other allocation.
func InstallGoogle(r *Registry) error {
	if _, err := r.AddOrg(GoogleOrg, "Google", "US"); err != nil {
		return err
	}
	if _, err := r.AddAS(GoogleASN, GoogleOrg, false); err != nil {
		return err
	}
	if err := r.Announce(GoogleASN, GoogleServicePrefix); err != nil {
		return err
	}
	return r.Announce(GoogleASN, GoogleEgressPrefix)
}

// GoogleEgressFor deterministically maps an anycast client to one of
// Google's egress addresses, modelling which physical resolver instance a
// given exit node's queries surface from. A small share of clients land on
// the super proxy's instance and become unmeasurable, as in the paper.
func GoogleEgressFor(client netip.Addr) netip.Addr {
	b := client.As4()
	h := uint32(b[0])*16777619 ^ uint32(b[1])*2166136261 ^ uint32(b[2])*709607 ^ uint32(b[3])*31
	// 64 distinct egress instances; instance 0 is the super proxy's.
	inst := h % 64
	if inst == 0 {
		return SuperProxyResolverEgress
	}
	base := GoogleEgressPrefix.Addr().As4()
	return netip.AddrFrom4([4]byte{base[0], base[1], byte(40 + inst/8), byte(10 + inst%8*13)})
}

// IsGoogleEgress reports whether ip lies in Google's published egress
// netblocks — the §4.3.3 test for "this node uses Google DNS".
func IsGoogleEgress(ip netip.Addr) bool {
	return GoogleEgressPrefix.Contains(ip) || GoogleServicePrefix.Contains(ip)
}
