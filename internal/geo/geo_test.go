package geo

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func newTestRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	if _, err := r.AddOrg("isp-a", "ISP Alpha", "US"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddOrg("isp-b", "ISP Beta", "GB"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddAS(100, "isp-a", false); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddAS(101, "isp-a", false); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddAS(200, "isp-b", true); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDuplicateOrgRejected(t *testing.T) {
	r := newTestRegistry(t)
	if _, err := r.AddOrg("isp-a", "again", "US"); err == nil {
		t.Fatal("duplicate org accepted")
	}
}

func TestDuplicateASRejected(t *testing.T) {
	r := newTestRegistry(t)
	if _, err := r.AddAS(100, "isp-b", false); err == nil {
		t.Fatal("duplicate AS accepted")
	}
}

func TestASRequiresOrg(t *testing.T) {
	r := NewRegistry()
	if _, err := r.AddAS(1, "ghost", false); err == nil {
		t.Fatal("AS with unknown org accepted")
	}
}

func TestAllocAndLookup(t *testing.T) {
	r := newTestRegistry(t)
	p, err := r.AllocPrefix(100, 20)
	if err != nil {
		t.Fatal(err)
	}
	if p.Bits() != 20 {
		t.Fatalf("prefix bits = %d, want 20", p.Bits())
	}
	asn, ok := r.LookupAS(p.Addr())
	if !ok || asn != 100 {
		t.Fatalf("LookupAS(%v) = %d,%v; want 100", p.Addr(), asn, ok)
	}
	// Last address of the prefix also maps back.
	last := lastAddr(p)
	asn, ok = r.LookupAS(last)
	if !ok || asn != 100 {
		t.Fatalf("LookupAS(%v) = %d,%v; want 100", last, asn, ok)
	}
}

func TestAllocDistinctPrefixes(t *testing.T) {
	r := newTestRegistry(t)
	p1, err := r.AllocPrefix(100, 22)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := r.AllocPrefix(200, 22)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Overlaps(p2) {
		t.Fatalf("allocated prefixes overlap: %v %v", p1, p2)
	}
	if asn, _ := r.LookupAS(p2.Addr()); asn != 200 {
		t.Fatalf("p2 maps to AS%d, want 200", asn)
	}
}

func TestNextAddrSequentialAndOwned(t *testing.T) {
	r := newTestRegistry(t)
	seen := make(map[netip.Addr]bool)
	for i := 0; i < 500; i++ {
		a, err := r.NextAddr(100)
		if err != nil {
			t.Fatal(err)
		}
		if seen[a] {
			t.Fatalf("address %v handed out twice", a)
		}
		seen[a] = true
		asn, ok := r.LookupAS(a)
		if !ok || asn != 100 {
			t.Fatalf("LookupAS(%v) = %d,%v; want 100", a, asn, ok)
		}
	}
}

func TestNextAddrSpansPrefixes(t *testing.T) {
	r := newTestRegistry(t)
	// A /18 holds 16384 addresses; drawing more must roll into a second
	// prefix transparently.
	n := 16500
	for i := 0; i < n; i++ {
		a, err := r.NextAddr(200)
		if err != nil {
			t.Fatal(err)
		}
		if asn, ok := r.LookupAS(a); !ok || asn != 200 {
			t.Fatalf("address %d (%v) maps to AS%d, want 200", i, a, asn)
		}
	}
}

func TestLookupMiss(t *testing.T) {
	r := newTestRegistry(t)
	if _, err := r.AllocPrefix(100, 20); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.LookupAS(netip.MustParseAddr("203.0.113.7")); ok {
		t.Fatal("lookup of unallocated address succeeded")
	}
	if _, ok := r.LookupAS(netip.MustParseAddr("2001:db8::1")); ok {
		t.Fatal("IPv6 lookup succeeded")
	}
}

func TestLongestPrefixWins(t *testing.T) {
	r := newTestRegistry(t)
	if err := r.Announce(100, netip.MustParsePrefix("50.0.0.0/8")); err != nil {
		t.Fatal(err)
	}
	if err := r.Announce(200, netip.MustParsePrefix("50.1.0.0/16")); err != nil {
		t.Fatal(err)
	}
	if asn, _ := r.LookupAS(netip.MustParseAddr("50.1.2.3")); asn != 200 {
		t.Fatalf("more-specific lost: got AS%d, want 200", asn)
	}
	if asn, _ := r.LookupAS(netip.MustParseAddr("50.2.0.1")); asn != 100 {
		t.Fatalf("covering prefix lost: got AS%d, want 100", asn)
	}
}

func TestOrgAndCountry(t *testing.T) {
	r := newTestRegistry(t)
	o, ok := r.Org(200)
	if !ok || o.Name != "ISP Beta" {
		t.Fatalf("Org(200) = %+v,%v", o, ok)
	}
	cc, ok := r.Country(200)
	if !ok || cc != "GB" {
		t.Fatalf("Country(200) = %q,%v", cc, ok)
	}
	if _, ok := r.Country(999); ok {
		t.Fatal("Country of unknown AS succeeded")
	}
}

func TestASesOf(t *testing.T) {
	r := newTestRegistry(t)
	got := r.ASesOf("isp-a")
	if len(got) != 2 || got[0] != 100 || got[1] != 101 {
		t.Fatalf("ASesOf(isp-a) = %v, want [100 101]", got)
	}
}

func TestInstallGoogle(t *testing.T) {
	r := NewRegistry()
	if err := InstallGoogle(r); err != nil {
		t.Fatal(err)
	}
	if asn, ok := r.LookupAS(GoogleDNSAddr); !ok || asn != GoogleASN {
		t.Fatalf("8.8.8.8 maps to AS%d,%v", asn, ok)
	}
	if asn, ok := r.LookupAS(SuperProxyResolverEgress); !ok || asn != GoogleASN {
		t.Fatalf("super proxy egress maps to AS%d,%v", asn, ok)
	}
	cc, _ := r.Country(GoogleASN)
	if cc != "US" {
		t.Fatalf("Google country = %q", cc)
	}
}

func TestGoogleEgressDeterministicAndInRange(t *testing.T) {
	a := netip.MustParseAddr("91.4.22.19")
	e1 := GoogleEgressFor(a)
	e2 := GoogleEgressFor(a)
	if e1 != e2 {
		t.Fatal("egress mapping not deterministic")
	}
	if !IsGoogleEgress(e1) {
		t.Fatalf("egress %v outside Google netblocks", e1)
	}
}

func TestGoogleEgressSometimesSuperProxyInstance(t *testing.T) {
	super, other := 0, 0
	for i := 0; i < 4096; i++ {
		a := netip.AddrFrom4([4]byte{byte(i >> 8), byte(i), 7, 9})
		if GoogleEgressFor(a) == SuperProxyResolverEgress {
			super++
		} else {
			other++
		}
	}
	if super == 0 {
		t.Fatal("no client ever shares the super proxy's anycast instance; footnote-8 filter untestable")
	}
	if other == 0 {
		t.Fatal("every client shares the super proxy's instance")
	}
	if super > other {
		t.Fatalf("shared-instance share too high: %d vs %d", super, other)
	}
}

func TestCountryName(t *testing.T) {
	if got := CountryName("MY"); got != "Malaysia" {
		t.Fatalf("CountryName(MY) = %q", got)
	}
	if got := CountryName("ZZ"); got != "ZZ" {
		t.Fatalf("CountryName(ZZ) = %q", got)
	}
	if NumCountries() < 172 {
		t.Fatalf("curated set has %d countries; need >= 172 to match paper scale", NumCountries())
	}
}

func TestCountryCodesUnique(t *testing.T) {
	seen := make(map[CountryCode]bool)
	for _, c := range Countries {
		if seen[c.Code] {
			t.Fatalf("duplicate country code %q", c.Code)
		}
		seen[c.Code] = true
	}
}

// Property: round-tripping any u32 through addr conversion is the identity,
// and every allocated address looks up to its owner.
func TestAddrU32RoundTrip(t *testing.T) {
	f := func(v uint32) bool { return addrToU32(u32ToAddr(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAllocatedAddressesLookup(t *testing.T) {
	r := newTestRegistry(t)
	asns := []ASN{100, 101, 200}
	f := func(picks []uint8) bool {
		for _, p := range picks {
			asn := asns[int(p)%len(asns)]
			a, err := r.NextAddr(asn)
			if err != nil {
				return false
			}
			got, ok := r.LookupAS(a)
			if !ok || got != asn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func lastAddr(p netip.Prefix) netip.Addr {
	base := addrToU32(p.Addr())
	return u32ToAddr(base + (1 << (32 - uint32(p.Bits()))) - 1)
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := newTestRegistry(t)
	if err := InstallGoogle(r); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := r.NextAddr(100); err != nil {
			t.Fatal(err)
		}
	}
	orgs, ases, prefixes := r.Snapshot()
	if len(orgs) != 3 || len(ases) != 4 {
		t.Fatalf("snapshot sizes: %d orgs, %d ases", len(orgs), len(ases))
	}
	r2, err := FromSnapshot(orgs, ases, prefixes)
	if err != nil {
		t.Fatal(err)
	}
	// Every lookup agrees between original and rebuilt registries.
	probes := []netip.Addr{GoogleDNSAddr, SuperProxyResolverEgress}
	for i := 0; i < 50; i++ {
		a, err := r.NextAddr(200)
		if err != nil {
			t.Fatal(err)
		}
		probes = append(probes, a)
	}
	// Addresses allocated after the snapshot won't resolve in r2; re-take
	// the snapshot so both sides carry the same announcements.
	orgs, ases, prefixes = r.Snapshot()
	r2, err = FromSnapshot(orgs, ases, prefixes)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range probes {
		a1, ok1 := r.LookupAS(p)
		a2, ok2 := r2.LookupAS(p)
		if ok1 != ok2 || a1 != a2 {
			t.Fatalf("lookup diverged for %v: (%d,%v) vs (%d,%v)", p, a1, ok1, a2, ok2)
		}
		o1, _ := r.Org(a1)
		o2, _ := r2.Org(a2)
		if (o1 == nil) != (o2 == nil) || (o1 != nil && *o1 != *o2) {
			t.Fatalf("org diverged for AS%d", a1)
		}
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := newTestRegistry(t)
	o1, a1, p1 := r.Snapshot()
	o2, a2, p2 := r.Snapshot()
	if len(o1) != len(o2) || len(a1) != len(a2) || len(p1) != len(p2) {
		t.Fatal("snapshot sizes differ")
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("org order unstable")
		}
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("AS order unstable")
		}
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("prefix order unstable")
		}
	}
}

func TestFromSnapshotRejectsBadData(t *testing.T) {
	if _, err := FromSnapshot(nil, []SnapshotAS{{ASN: 1, Org: "ghost"}}, nil); err == nil {
		t.Error("AS with unknown org accepted")
	}
	orgs := []SnapshotOrg{{ID: "o", Name: "O", Country: "US"}}
	if _, err := FromSnapshot(orgs, nil, []SnapshotPrefix{{Prefix: "10.0.0.0/8", ASN: 9}}); err == nil {
		t.Error("prefix from unknown AS accepted")
	}
	ases := []SnapshotAS{{ASN: 9, Org: "o"}}
	if _, err := FromSnapshot(orgs, ases, []SnapshotPrefix{{Prefix: "not-a-prefix", ASN: 9}}); err == nil {
		t.Error("malformed prefix accepted")
	}
}
