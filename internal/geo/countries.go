package geo

// Countries used by the synthetic world. The paper measured nodes in 172
// countries; the named set below covers every country appearing in a paper
// table plus enough background countries to reproduce the country-count
// marginals. Names follow common short forms.
var Countries = []struct {
	Code CountryCode
	Name string
}{
	// Countries named in the paper's tables and text.
	{"MY", "Malaysia"}, {"ID", "Indonesia"}, {"CN", "China"}, {"GB", "United Kingdom"},
	{"DE", "Germany"}, {"US", "United States"}, {"IN", "India"}, {"BR", "Brazil"},
	{"BJ", "Benin"}, {"JO", "Jordan"}, {"AR", "Argentina"}, {"AU", "Australia"},
	{"ES", "Spain"}, {"GR", "Greece"}, {"ZA", "South Africa"}, {"EG", "Egypt"},
	{"MA", "Morocco"}, {"TR", "Turkey"}, {"TN", "Tunisia"}, {"PH", "Philippines"},
	{"FR", "France"}, {"RU", "Russia"}, {"IL", "Israel"}, {"PL", "Poland"},
	// Background countries for marginal counts.
	{"AE", "United Arab Emirates"}, {"AF", "Afghanistan"}, {"AL", "Albania"},
	{"AM", "Armenia"}, {"AO", "Angola"}, {"AT", "Austria"}, {"AZ", "Azerbaijan"},
	{"BA", "Bosnia and Herzegovina"}, {"BD", "Bangladesh"}, {"BE", "Belgium"},
	{"BF", "Burkina Faso"}, {"BG", "Bulgaria"}, {"BH", "Bahrain"}, {"BI", "Burundi"},
	{"BN", "Brunei"}, {"BO", "Bolivia"}, {"BS", "Bahamas"}, {"BT", "Bhutan"},
	{"BW", "Botswana"}, {"BY", "Belarus"}, {"BZ", "Belize"}, {"CA", "Canada"},
	{"CD", "DR Congo"}, {"CG", "Congo"}, {"CH", "Switzerland"}, {"CI", "Ivory Coast"},
	{"CL", "Chile"}, {"CM", "Cameroon"}, {"CO", "Colombia"}, {"CR", "Costa Rica"},
	{"CU", "Cuba"}, {"CV", "Cape Verde"}, {"CY", "Cyprus"}, {"CZ", "Czechia"},
	{"DJ", "Djibouti"}, {"DK", "Denmark"}, {"DM", "Dominica"}, {"DO", "Dominican Republic"},
	{"DZ", "Algeria"}, {"EC", "Ecuador"}, {"EE", "Estonia"}, {"ET", "Ethiopia"},
	{"FI", "Finland"}, {"FJ", "Fiji"}, {"GA", "Gabon"}, {"GE", "Georgia"},
	{"GH", "Ghana"}, {"GM", "Gambia"}, {"GN", "Guinea"}, {"GQ", "Equatorial Guinea"},
	{"GT", "Guatemala"}, {"GW", "Guinea-Bissau"}, {"GY", "Guyana"}, {"HK", "Hong Kong"},
	{"HN", "Honduras"}, {"HR", "Croatia"}, {"HT", "Haiti"}, {"HU", "Hungary"},
	{"IE", "Ireland"}, {"IQ", "Iraq"}, {"IR", "Iran"}, {"IS", "Iceland"},
	{"IT", "Italy"}, {"JM", "Jamaica"}, {"JP", "Japan"}, {"KE", "Kenya"},
	{"KG", "Kyrgyzstan"}, {"KH", "Cambodia"}, {"KM", "Comoros"}, {"KR", "South Korea"},
	{"KW", "Kuwait"}, {"KZ", "Kazakhstan"}, {"LA", "Laos"}, {"LB", "Lebanon"},
	{"LK", "Sri Lanka"}, {"LR", "Liberia"}, {"LS", "Lesotho"}, {"LT", "Lithuania"},
	{"LU", "Luxembourg"}, {"LV", "Latvia"}, {"LY", "Libya"}, {"MC", "Monaco"},
	{"MD", "Moldova"}, {"ME", "Montenegro"}, {"MG", "Madagascar"}, {"MK", "North Macedonia"},
	{"ML", "Mali"}, {"MM", "Myanmar"}, {"MN", "Mongolia"}, {"MO", "Macao"},
	{"MR", "Mauritania"}, {"MT", "Malta"}, {"MU", "Mauritius"}, {"MV", "Maldives"},
	{"MW", "Malawi"}, {"MX", "Mexico"}, {"MZ", "Mozambique"}, {"NA", "Namibia"},
	{"NE", "Niger"}, {"NG", "Nigeria"}, {"NI", "Nicaragua"}, {"NL", "Netherlands"},
	{"NO", "Norway"}, {"NP", "Nepal"}, {"NZ", "New Zealand"}, {"OM", "Oman"},
	{"PA", "Panama"}, {"PE", "Peru"}, {"PG", "Papua New Guinea"}, {"PK", "Pakistan"},
	{"PT", "Portugal"}, {"PY", "Paraguay"}, {"QA", "Qatar"}, {"RO", "Romania"},
	{"RS", "Serbia"}, {"RW", "Rwanda"}, {"SA", "Saudi Arabia"}, {"SC", "Seychelles"},
	{"SD", "Sudan"}, {"SE", "Sweden"}, {"SG", "Singapore"}, {"SI", "Slovenia"},
	{"SK", "Slovakia"}, {"SL", "Sierra Leone"}, {"SN", "Senegal"}, {"SO", "Somalia"},
	{"SR", "Suriname"}, {"SV", "El Salvador"}, {"SY", "Syria"}, {"SZ", "Eswatini"},
	{"TD", "Chad"}, {"TG", "Togo"}, {"TH", "Thailand"}, {"TJ", "Tajikistan"},
	{"TM", "Turkmenistan"}, {"TO", "Tonga"}, {"TT", "Trinidad and Tobago"},
	{"TW", "Taiwan"}, {"TZ", "Tanzania"}, {"UA", "Ukraine"}, {"UG", "Uganda"},
	{"UY", "Uruguay"}, {"UZ", "Uzbekistan"}, {"VE", "Venezuela"}, {"VN", "Vietnam"},
	{"VU", "Vanuatu"}, {"WS", "Samoa"}, {"YE", "Yemen"}, {"ZM", "Zambia"},
	{"ZW", "Zimbabwe"}, {"KY", "Cayman Islands"}, {"BM", "Bermuda"}, {"AD", "Andorra"},
	{"AG", "Antigua and Barbuda"}, {"AW", "Aruba"}, {"BB", "Barbados"},
	{"CW", "Curacao"}, {"ER", "Eritrea"}, {"FO", "Faroe Islands"}, {"GD", "Grenada"},
	{"GI", "Gibraltar"}, {"GL", "Greenland"}, {"KN", "Saint Kitts and Nevis"},
	{"LC", "Saint Lucia"}, {"LI", "Liechtenstein"}, {"MF", "Saint Martin"},
	{"NC", "New Caledonia"}, {"PF", "French Polynesia"}, {"PR", "Puerto Rico"},
	{"PS", "Palestine"}, {"RE", "Reunion"}, {"SB", "Solomon Islands"},
	{"SM", "San Marino"}, {"ST", "Sao Tome and Principe"}, {"TL", "Timor-Leste"},
	{"VC", "Saint Vincent"}, {"VG", "British Virgin Islands"}, {"VI", "US Virgin Islands"},
}

// CountryName returns the short name for code, or the code itself when the
// country is outside the curated set.
func CountryName(code CountryCode) string {
	for _, c := range Countries {
		if c.Code == code {
			return c.Name
		}
	}
	return string(code)
}

// NumCountries is the size of the curated country set.
func NumCountries() int { return len(Countries) }
