// Package middlebox implements the parties that violate end-to-end
// connectivity in the paper, as composable interceptors an exit node's
// traffic flows through: NXDOMAIN hijackers (§4), HTML injectors and image
// transcoders (§5), TLS certificate replacers (§6), and content monitors
// (§7).
//
// An exit node owns a Path — an ordered interceptor stack modelling
// end-host software first (malware, AV products), then the LAN, then ISP
// equipment. The proxynet exit-node agent consults the Path around every
// network operation; interceptors never see each other, only the traffic.
package middlebox

import (
	"math/rand/v2"
	"net/netip"
	"time"

	"github.com/tftproject/tft/internal/cert"
	"github.com/tftproject/tft/internal/dnswire"
	"github.com/tftproject/tft/internal/httpwire"
	"github.com/tftproject/tft/internal/simnet"
)

// DNSInterceptor rewrites DNS responses on the node's path — a transparent
// DNS proxy in the ISP or resolver-tampering software on the host (§4.3.3).
type DNSInterceptor interface {
	// Label names the interceptor for attribution ground truth.
	Label() string
	// InterceptDNS may rewrite the response for the queried name in place
	// and must return it (or a replacement).
	InterceptDNS(name string, resp *dnswire.Message) *dnswire.Message
}

// HTTPInterceptor rewrites HTTP responses in flight (§5).
type HTTPInterceptor interface {
	Label() string
	// InterceptHTTP may rewrite resp (returning it or a replacement). host
	// and path identify the fetched URL.
	InterceptHTTP(host, path string, resp *httpwire.Response) *httpwire.Response
}

// TLSInterceptor replaces certificate chains in CONNECT tunnels (§6).
// Returning nil leaves the original chain untouched (selective MITM).
type TLSInterceptor interface {
	Label() string
	InterceptChain(serverName string, chain []*cert.Certificate) []*cert.Certificate
}

// Env gives monitors access to the simulation clock, a deterministic random
// stream, and the ability to issue their own HTTP fetches.
type Env struct {
	Clock simnet.Clock
	Rand  *rand.Rand
	// Refetch issues a monitoring fetch of http://host+path from src after
	// delay. A negative delay models a monitor that raced ahead of the
	// user's held request (Bluecoat, §7.2.1): the fetch happens now but the
	// origin is asked to log it backdated. See origin.SkewHeader.
	Refetch func(src netip.Addr, host, path string, delay time.Duration)
}

// Monitor observes the node's HTTP requests and may duplicate them (§7).
type Monitor interface {
	Label() string
	// Observe is called when the node fetches http://host+path. proceed
	// performs the node's own fetch and must be called exactly once.
	Observe(env *Env, host, path string, proceed func())
}

// StreamInterceptor rewrites raw tunnel bytes — middleboxes that operate
// below any protocol this repository parses, like the STARTTLS strippers
// the §3.4 SMTP extension hunts for. Only the server→client direction is
// rewritten (capability advertisements flow that way).
type StreamInterceptor interface {
	Label() string
	// AppliesTo reports whether the interceptor engages for tunnels to the
	// given destination port.
	AppliesTo(port uint16) bool
	// RewriteS2C rewrites one server→client chunk.
	RewriteS2C(chunk []byte) []byte
}

// Path is one exit node's interceptor stack, applied in slice order
// (end-host software before ISP equipment).
type Path struct {
	DNS      []DNSInterceptor
	HTTP     []HTTPInterceptor
	TLS      []TLSInterceptor
	Stream   []StreamInterceptor
	Monitors []Monitor
	// BlockedPorts lists destination ports the node's ISP refuses outright
	// (residential port-25 blocking).
	BlockedPorts []uint16
	// VPNEgress, when valid, replaces the source address of the node's own
	// origin fetches — the node browses through a VPN (AnchorFree, §7.2.1),
	// so the origin sees the VPN's address instead of the node's.
	VPNEgress netip.Addr
}

// ApplyDNS runs the DNS interceptors in order.
func (p *Path) ApplyDNS(name string, resp *dnswire.Message) *dnswire.Message {
	for _, ic := range p.DNS {
		resp = ic.InterceptDNS(name, resp)
	}
	return resp
}

// ApplyHTTP runs the HTTP interceptors in order.
func (p *Path) ApplyHTTP(host, path string, resp *httpwire.Response) *httpwire.Response {
	for _, ic := range p.HTTP {
		resp = ic.InterceptHTTP(host, path, resp)
	}
	return resp
}

// ApplyTLS runs the TLS interceptors in order; the first one that replaces
// the chain wins (stacked SSL proxies do not compose in practice).
func (p *Path) ApplyTLS(serverName string, chain []*cert.Certificate) []*cert.Certificate {
	for _, ic := range p.TLS {
		if replaced := ic.InterceptChain(serverName, chain); replaced != nil {
			return replaced
		}
	}
	return chain
}

// ObserveFetch threads a node fetch through every monitor, innermost last,
// so each monitor's proceed wraps the next.
func (p *Path) ObserveFetch(env *Env, host, path string, fetch func()) {
	wrapped := fetch
	for i := len(p.Monitors) - 1; i >= 0; i-- {
		m := p.Monitors[i]
		inner := wrapped
		wrapped = func() { m.Observe(env, host, path, inner) }
	}
	wrapped()
}

// Empty reports whether the path intercepts nothing at all.
func (p *Path) Empty() bool {
	return p == nil || (len(p.DNS) == 0 && len(p.HTTP) == 0 && len(p.TLS) == 0 &&
		len(p.Stream) == 0 && len(p.Monitors) == 0 && len(p.BlockedPorts) == 0 &&
		!p.VPNEgress.IsValid())
}

// PortBlocked reports whether the node's ISP refuses connections to port.
func (p *Path) PortBlocked(port uint16) bool {
	if p == nil {
		return false
	}
	for _, b := range p.BlockedPorts {
		if b == port {
			return true
		}
	}
	return false
}

// StreamFor collects the stream interceptors engaging for a port.
func (p *Path) StreamFor(port uint16) []StreamInterceptor {
	if p == nil {
		return nil
	}
	var out []StreamInterceptor
	for _, ic := range p.Stream {
		if ic.AppliesTo(port) {
			out = append(out, ic)
		}
	}
	return out
}

// decide returns a deterministic pseudo-random bool with probability prob,
// keyed by a label so independent decisions are uncorrelated.
func decide(rng *rand.Rand, prob float64) bool {
	if prob >= 1 {
		return true
	}
	if prob <= 0 {
		return false
	}
	return rng.Float64() < prob
}
