package middlebox

import (
	"fmt"
	"net/netip"
	"strings"

	"github.com/tftproject/tft/internal/dnswire"
)

// SharedRedirectJS is the JavaScript block §4.3.1 found byte-identical in
// the hijack pages of Cox, Oi Fixo, TalkTalk, BT Internet, and Verizon —
// evidence they bought the same redirection appliance. The attribution
// pipeline fingerprints it.
const SharedRedirectJS = `<script type="text/javascript">
// dnsassist redirection appliance v2.3
var q = encodeURIComponent(window.location.hostname);
function dnsAssistRedirect(base) { window.location = base + "?q=" + q + "&src=nxd"; }
</script>`

// LandingSpec describes one NXDOMAIN landing page: who operates it and what
// it links to. The rendered HTML is what the measurement client captures in
// §4.1 step 3 and mines for URLs in §4.3.3.
type LandingSpec struct {
	// Operator is the human-readable owner ("TMnet", "Verizon", ...).
	Operator string
	// RedirectURL is the search/ads page the hijack sends users to; its
	// domain is the Table 4/5 attribution signal.
	RedirectURL string
	// SharedAppliance marks operators using the common appliance; their
	// pages embed the byte-identical SharedRedirectJS block.
	SharedAppliance bool
	// Tagline is extra marketing text (TMnet's monetization partner brags
	// about "typing errors into advertising advantage").
	Tagline string
	// AdCount pads the page with this many ad placeholders.
	AdCount int
}

// Render produces the landing page HTML.
func (l LandingSpec) Render() []byte {
	var sb strings.Builder
	sb.WriteString("<!DOCTYPE html>\n<html>\n<head>\n")
	fmt.Fprintf(&sb, "<title>%s search assistance</title>\n", l.Operator)
	if l.SharedAppliance {
		sb.WriteString(SharedRedirectJS)
		fmt.Fprintf(&sb, "<script>dnsAssistRedirect(%q);</script>\n", l.RedirectURL)
	} else {
		fmt.Fprintf(&sb, "<meta http-equiv=\"refresh\" content=\"0; url=%s\">\n", l.RedirectURL)
	}
	sb.WriteString("</head>\n<body>\n")
	fmt.Fprintf(&sb, "<h1>The address you requested could not be found</h1>\n")
	fmt.Fprintf(&sb, "<p>%s suggests: <a href=%q>search results</a></p>\n", l.Operator, l.RedirectURL)
	if l.Tagline != "" {
		fmt.Fprintf(&sb, "<p class=\"partner\">%s</p>\n", l.Tagline)
	}
	for i := 0; i < l.AdCount; i++ {
		fmt.Fprintf(&sb, "<div class=\"ad-slot\" id=\"ad-%d\"><a href=%q>sponsored result %d</a></div>\n",
			i, l.RedirectURL, i)
	}
	sb.WriteString("</body>\n</html>\n")
	return []byte(sb.String())
}

// PathNXHijack is a DNS interceptor that rewrites NXDOMAIN answers into an
// A record for a landing page. In §4.3.3 this models both transparent DNS
// proxies in ISPs and resolver-tampering software on the host — the cases
// where the node uses Google DNS and still receives a hijacked answer.
type PathNXHijack struct {
	// Product names the hijacking party ("Deutsche Telekom path proxy",
	// "Norton ConnectSafe client", ...).
	Product string
	// Landing is the page users are sent to.
	Landing netip.Addr
}

// Label implements DNSInterceptor.
func (h PathNXHijack) Label() string { return h.Product }

// InterceptDNS implements DNSInterceptor.
func (h PathNXHijack) InterceptDNS(name string, resp *dnswire.Message) *dnswire.Message {
	if resp == nil || resp.RCode != dnswire.RCodeNXDomain {
		return resp
	}
	resp.RCode = dnswire.RCodeSuccess
	resp.Authorities = nil
	resp.Answers = []dnswire.Record{{
		Name: dnswire.CanonicalName(name), Type: dnswire.TypeA, Class: dnswire.ClassIN,
		TTL: 60, A: h.Landing,
	}}
	return resp
}

// RewriteNX lets PathNXHijack double as a resolver hijack policy
// (dnsserver.NXRewriter): ISP resolvers and their path proxies serve the
// same landing pages.
func (h PathNXHijack) RewriteNX(string) (netip.Addr, bool) { return h.Landing, true }
