package middlebox

import (
	"bytes"
	"fmt"
	"strings"

	"github.com/tftproject/tft/internal/httpwire"
)

// isHTML reports whether a response carries an HTML document.
func isHTML(resp *httpwire.Response) bool {
	return strings.HasPrefix(resp.Header.Get("Content-Type"), "text/html")
}

// MinInjectSize is the object size below which real-world injectors leave
// content alone. §5.1 reports that objects under 1 KB saw much less
// modification, which is why the paper's measurement objects are larger;
// the ablation bench exercises this threshold.
const MinInjectSize = 1024

// HTMLInjector appends a JavaScript payload to HTML documents — the §5.2
// ad-injection behaviour. Signature is the URL or keyword the paper's
// Table 6 extracts from injected code; it is embedded verbatim so the
// analysis can recover it.
type HTMLInjector struct {
	// Product names the injecting party ("AdTaily widget malware", ...).
	Product string
	// Signature is the characteristic URL (e.g.
	// "d36mw5gp02ykm5.cloudfront.net") or keyword (e.g. "var oiasudoj;")
	// appearing in the injected code.
	Signature string
	// SignatureIsURL selects between a script-src injection (URL) and an
	// inline code injection (keyword).
	SignatureIsURL bool
	// ExtraBytes pads the injection to model heavyweight ad payloads
	// (AdTaily adds ~335 KB, oiasudoj ~23 KB).
	ExtraBytes int
	// MinSize is the smallest object the injector touches; zero means
	// MinInjectSize.
	MinSize int
}

// Label implements HTTPInterceptor.
func (in HTMLInjector) Label() string { return in.Product }

// InterceptHTTP implements HTTPInterceptor.
func (in HTMLInjector) InterceptHTTP(host, path string, resp *httpwire.Response) *httpwire.Response {
	if resp.StatusCode != 200 || !isHTML(resp) {
		return resp
	}
	min := in.MinSize
	if min == 0 {
		min = MinInjectSize
	}
	if len(resp.Body) < min {
		return resp
	}
	var inject string
	if in.SignatureIsURL {
		inject = fmt.Sprintf("<script src=\"http://%s/adframe.js\" async></script>\n", in.Signature)
	} else {
		inject = fmt.Sprintf("<script>%s /* injected */</script>\n", in.Signature)
	}
	if in.ExtraBytes > 0 {
		pad := fmt.Sprintf("<div style=\"display:none\" class=\"ad-payload\">%s</div>\n",
			strings.Repeat("ad ", in.ExtraBytes/3))
		inject += pad
	}
	resp.Body = injectBeforeBodyClose(resp.Body, []byte(inject))
	return resp
}

// NetSparkMetaTag is the marker §5.2 found on every page filtered by
// Internet Rimon's NetSpark appliance.
const NetSparkMetaTag = `<meta name="NetSparkQuiltingResult" content="clean">`

// ContentFilter models NetSpark-style ISP web filtering: every HTML page is
// rewritten and stamped with the filter's meta tag.
type ContentFilter struct {
	Product string
	Meta    string
}

// Label implements HTTPInterceptor.
func (cf ContentFilter) Label() string { return cf.Product }

// InterceptHTTP implements HTTPInterceptor.
func (cf ContentFilter) InterceptHTTP(host, path string, resp *httpwire.Response) *httpwire.Response {
	if resp.StatusCode != 200 || !isHTML(resp) {
		return resp
	}
	meta := cf.Meta
	if meta == "" {
		meta = NetSparkMetaTag
	}
	if i := bytes.Index(resp.Body, []byte("<head>")); i >= 0 {
		var out []byte
		out = append(out, resp.Body[:i+len("<head>")]...)
		out = append(out, '\n')
		out = append(out, meta...)
		out = append(out, resp.Body[i+len("<head>"):]...)
		resp.Body = out
	} else {
		resp.Body = append([]byte(meta+"\n"), resp.Body...)
	}
	return resp
}

// BlockPage replaces responses outright with an error/block page — the 32
// "bandwidth exceeded"/"blocked" cases §5.2 filters out of the HTML
// analysis, and the empty/error replacements observed for JS and CSS.
type BlockPage struct {
	Product string
	// Message is the page text ("bandwidth exceeded", "blocked").
	Message string
	// Kinds restricts which content types are replaced; empty means all.
	Kinds []string
	// Empty returns a 200 with an empty body instead of an error page.
	Empty bool
}

// Label implements HTTPInterceptor.
func (bp BlockPage) Label() string { return bp.Product }

// InterceptHTTP implements HTTPInterceptor.
func (bp BlockPage) InterceptHTTP(host, path string, resp *httpwire.Response) *httpwire.Response {
	if len(bp.Kinds) > 0 {
		ct := resp.Header.Get("Content-Type")
		matched := false
		for _, k := range bp.Kinds {
			if strings.HasPrefix(ct, k) {
				matched = true
				break
			}
		}
		if !matched {
			return resp
		}
	}
	if bp.Empty {
		out := httpwire.NewResponse(200, nil)
		out.Header.Set("Content-Type", resp.Header.Get("Content-Type"))
		return out
	}
	body := fmt.Sprintf("<html><head><title>%s</title></head><body><h1>%s</h1></body></html>",
		bp.Message, bp.Message)
	out := httpwire.NewResponse(403, []byte(body))
	out.Header.Set("Content-Type", "text/html")
	return out
}

// injectBeforeBodyClose inserts payload just before </body>, or appends it
// when the page has no closing tag.
func injectBeforeBodyClose(body, payload []byte) []byte {
	i := bytes.LastIndex(body, []byte("</body>"))
	if i < 0 {
		return append(body, payload...)
	}
	out := make([]byte, 0, len(body)+len(payload))
	out = append(out, body[:i]...)
	out = append(out, payload...)
	out = append(out, body[i:]...)
	return out
}
