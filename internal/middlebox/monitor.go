package middlebox

import (
	"math"
	"math/rand/v2"
	"net/netip"
	"time"
)

// DelaySpec is a sampling distribution for monitor refetch delays. Figure 5
// of the paper is the CDF of these delays per monitoring entity, so the
// world encodes each entity's observed distribution here.
type DelaySpec struct {
	Min, Max time.Duration
	// LogUniform samples uniformly in log space (straight lines on the
	// paper's log-x CDF); otherwise sampling is uniform.
	LogUniform bool
}

// Sample draws one delay.
func (d DelaySpec) Sample(rng *rand.Rand) time.Duration {
	if d.Max <= d.Min {
		return d.Min
	}
	if d.LogUniform {
		lo, hi := math.Log(float64(d.Min)), math.Log(float64(d.Max))
		return time.Duration(math.Exp(lo + rng.Float64()*(hi-lo)))
	}
	return d.Min + time.Duration(rng.Int64N(int64(d.Max-d.Min)))
}

// RefetchSpec describes one unexpected request a monitor issues per
// observed fetch.
type RefetchSpec struct {
	// Delay distributes the time between the node's request and this one.
	Delay DelaySpec
	// Sources are the candidate origin addresses of the request (the
	// monitoring entity's servers); one is picked per fetch.
	Sources []netip.Addr
	// PreFetchProb is the probability this request instead races *ahead* of
	// the node's (Bluecoat fetches before letting the user's request
	// proceed 83% of the time, §7.2.1); when it fires, the delay is the
	// negated Lead sample.
	PreFetchProb float64
	// Lead distributes how far ahead the pre-fetch lands.
	Lead DelaySpec
}

// Watcher is a content-monitoring party on a node's path: anti-virus
// reputation services, ISP monitoring, or a VPN's "malware protection". It
// duplicates the node's HTTP requests toward the monitoring entity's own
// servers (§7).
type Watcher struct {
	// Product is the ground-truth label ("TrendMicro", "TalkTalk", ...).
	Product string
	// Requests lists the unexpected requests issued per observed fetch.
	Requests []RefetchSpec
	// SampleProb monitors only this fraction of fetches (1 = all). §7.2.2
	// raises non-deterministic monitoring as a possibility; the ablation
	// bench uses it.
	SampleProb float64
}

// Label implements Monitor.
func (w *Watcher) Label() string { return w.Product }

// Observe implements Monitor.
func (w *Watcher) Observe(env *Env, host, path string, proceed func()) {
	proceed()
	if w.SampleProb > 0 && w.SampleProb < 1 && !decide(env.Rand, w.SampleProb) {
		return
	}
	for _, spec := range w.Requests {
		if len(spec.Sources) == 0 {
			continue
		}
		src := spec.Sources[env.Rand.IntN(len(spec.Sources))]
		var delay time.Duration
		if spec.PreFetchProb > 0 && decide(env.Rand, spec.PreFetchProb) {
			delay = -spec.Lead.Sample(env.Rand)
		} else {
			delay = spec.Delay.Sample(env.Rand)
		}
		env.Refetch(src, host, path, delay)
	}
}
