package middlebox

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/tftproject/tft/internal/cert"
)

// InvalidCertPolicy selects what a TLS proxy does when the origin's
// certificate is itself invalid — the behavioural split §6.2 documents.
type InvalidCertPolicy int

// The three observed policies.
const (
	// InvalidSkip leaves invalid-cert sites alone (OpenDNS: "they do not
	// replace certificates that were originally invalid").
	InvalidSkip InvalidCertPolicy = iota
	// InvalidLaunder replaces the invalid certificate with a spoofed one
	// signed like every valid one — the browser stops warning. Cyberoam,
	// ESET, Kaspersky, McAfee, and Fortigate do this, "potentially exposing
	// users to security vulnerabilities like phishing attacks."
	InvalidLaunder
	// InvalidDistinctIssuer replaces the certificate but under a separate
	// "untrusted" issuer so clients can still tell (Avast, BitDefender,
	// Dr. Web).
	InvalidDistinctIssuer
)

// CertMITM is a TLS-intercepting product instance on one exit node: an AV
// engine, a content filter, or malware. The product's root CA is shared
// across every node running it; the key material of spoofed leaves is
// per-node (and per-site only for Avast, which §6.2 singles out as the one
// product not reusing keys).
type CertMITM struct {
	// Product is the ground-truth label ("Avast", "OpenDNS", ...).
	Product string
	// Root signs spoofed certificates. Its Subject.CommonName is the Issuer
	// name Table 8 groups by.
	Root *cert.CA
	// UntrustedRoot signs replacements for invalid-cert sites under
	// InvalidDistinctIssuer policy.
	UntrustedRoot *cert.CA
	// NodeSeed individualizes per-node key material.
	NodeSeed string
	// ReuseKey: one key pair for every spoofed certificate on this node
	// (all products except Avast).
	ReuseKey bool
	// Invalid selects the invalid-certificate policy.
	Invalid InvalidCertPolicy
	// Hosts, when non-nil, restricts interception to hosts it returns true
	// for (OpenDNS block lists). Nil intercepts everything.
	Hosts func(host string) bool
	// CopyFields mimics Cloudguard malware: the spoofed certificate copies
	// the original's validity window and organization to look legitimate.
	CopyFields bool
	// Trust is the product's own validity judgement of origin chains,
	// usually the public root store.
	Trust *cert.Store
	// Now supplies the current (virtual) time.
	Now func() time.Time

	serial atomic.Uint64
}

// Label implements TLSInterceptor.
func (m *CertMITM) Label() string { return m.Product }

// InterceptChain implements TLSInterceptor.
func (m *CertMITM) InterceptChain(serverName string, chain []*cert.Certificate) []*cert.Certificate {
	if len(chain) == 0 {
		return nil
	}
	if m.Hosts != nil && !m.Hosts(serverName) {
		return nil
	}
	now := m.Now()
	origValid := m.Trust.Verify(serverName, chain, now) == nil

	signer := m.Root
	if !origValid {
		switch m.Invalid {
		case InvalidSkip:
			return nil
		case InvalidDistinctIssuer:
			if m.UntrustedRoot != nil {
				signer = m.UntrustedRoot
			}
		}
	}

	keySeed := m.Product + "/" + m.NodeSeed
	if !m.ReuseKey {
		keySeed = fmt.Sprintf("%s/%s/%d", keySeed, serverName, m.serial.Add(1))
	}
	tmpl := cert.Template{
		Subject:   cert.Name{CommonName: serverName, Organization: m.Product + " on-the-fly"},
		NotBefore: now.Add(-time.Hour),
		NotAfter:  now.Add(30 * 24 * time.Hour),
		KeySeed:   keySeed,
	}
	if m.CopyFields {
		orig := chain[0]
		tmpl.Subject = orig.Subject
		tmpl.DNSNames = orig.DNSNames
		tmpl.NotBefore = orig.NotBefore
		tmpl.NotAfter = orig.NotAfter
	}
	leaf := signer.Issue(tmpl)
	return []*cert.Certificate{leaf, signer.Cert}
}

// ProductSpec describes a TLS-intercepting product for the world builder:
// everything shared across nodes running it.
type ProductSpec struct {
	// Product is the ground-truth product name.
	Product string
	// IssuerCN is the Issuer Common Name Table 8 reports.
	IssuerCN string
	// Kind is the paper's classification ("Anti-Virus/Security",
	// "Content filter", "Malware", "N/A").
	Kind string
	// ReuseKey, Invalid, CopyFields as in CertMITM.
	ReuseKey   bool
	Invalid    InvalidCertPolicy
	CopyFields bool
	// BlockList, when non-empty, restricts interception to these hosts.
	BlockList []string
}

// Build instantiates the shared CAs for the product. Call once per world;
// per-node CertMITMs come from Instance.
func (ps ProductSpec) Build(epoch time.Time, trust *cert.Store) *ProductCAs {
	life := 10 * 365 * 24 * time.Hour
	root := cert.NewRootCA(
		cert.Name{CommonName: ps.IssuerCN, Organization: ps.Product},
		"mitm-root/"+ps.Product, epoch.Add(-365*24*time.Hour), life)
	var untrusted *cert.CA
	if ps.Invalid == InvalidDistinctIssuer {
		untrusted = cert.NewRootCA(
			cert.Name{CommonName: ps.IssuerCN + " (untrusted)", Organization: ps.Product},
			"mitm-untrusted/"+ps.Product, epoch.Add(-365*24*time.Hour), life)
	}
	var hosts func(string) bool
	if len(ps.BlockList) > 0 {
		set := make(map[string]bool, len(ps.BlockList))
		for _, h := range ps.BlockList {
			set[h] = true
		}
		hosts = func(h string) bool { return set[h] }
	}
	return &ProductCAs{spec: ps, root: root, untrusted: untrusted, hosts: hosts, trust: trust}
}

// ProductCAs carries a product's shared signing material.
type ProductCAs struct {
	spec      ProductSpec
	root      *cert.CA
	untrusted *cert.CA
	hosts     func(string) bool
	trust     *cert.Store
}

// Spec returns the product description.
func (pc *ProductCAs) Spec() ProductSpec { return pc.spec }

// Instance creates the per-node interceptor.
func (pc *ProductCAs) Instance(nodeSeed string, now func() time.Time) *CertMITM {
	return &CertMITM{
		Product:       pc.spec.Product,
		Root:          pc.root,
		UntrustedRoot: pc.untrusted,
		NodeSeed:      nodeSeed,
		ReuseKey:      pc.spec.ReuseKey,
		Invalid:       pc.spec.Invalid,
		Hosts:         pc.hosts,
		CopyFields:    pc.spec.CopyFields,
		Trust:         pc.trust,
		Now:           now,
	}
}
