package middlebox

import (
	"bytes"
	"math/rand/v2"
	"net/netip"
	"strings"
	"testing"
	"time"

	"github.com/tftproject/tft/internal/cert"
	"github.com/tftproject/tft/internal/content"
	"github.com/tftproject/tft/internal/dnswire"
	"github.com/tftproject/tft/internal/httpwire"
	"github.com/tftproject/tft/internal/simnet"
)

var (
	epoch     = time.Date(2016, 4, 14, 0, 0, 0, 0, time.UTC)
	landingIP = netip.MustParseAddr("203.0.113.80")
)

func htmlResp() *httpwire.Response {
	resp := httpwire.NewResponse(200, content.Object(content.KindHTML))
	resp.Header.Set("Content-Type", "text/html; charset=utf-8")
	return resp
}

func imageResp() *httpwire.Response {
	resp := httpwire.NewResponse(200, content.Object(content.KindImage))
	resp.Header.Set("Content-Type", "image/jpeg")
	return resp
}

func nxResp(name string) *dnswire.Message {
	q := dnswire.NewQuery(1, name, dnswire.TypeA)
	r := q.Reply()
	r.RCode = dnswire.RCodeNXDomain
	return r
}

func TestLandingPageSharedAppliance(t *testing.T) {
	a := LandingSpec{Operator: "Verizon", RedirectURL: "http://searchassist.verizon.com/main", SharedAppliance: true}
	b := LandingSpec{Operator: "Cox Communications", RedirectURL: "http://finder.cox.net/", SharedAppliance: true}
	pa, pb := a.Render(), b.Render()
	if !bytes.Contains(pa, []byte(SharedRedirectJS)) || !bytes.Contains(pb, []byte(SharedRedirectJS)) {
		t.Fatal("shared appliance pages missing common JS block")
	}
	doms := content.ExtractDomains(pa)
	if len(doms) != 1 || doms[0] != "searchassist.verizon.com" {
		t.Fatalf("domains = %v", doms)
	}
}

func TestLandingPageTagline(t *testing.T) {
	p := LandingSpec{
		Operator: "TMnet", RedirectURL: "http://midascdn.nervesis.com/land",
		Tagline: "We turn users' typing errors into your advertising advantage", AdCount: 3,
	}.Render()
	if !bytes.Contains(p, []byte("advertising advantage")) {
		t.Fatal("tagline missing")
	}
	if got := content.ExtractDomains(p); len(got) != 1 || got[0] != "midascdn.nervesis.com" {
		t.Fatalf("domains = %v", got)
	}
}

func TestPathNXHijackRewrites(t *testing.T) {
	h := PathNXHijack{Product: "norton-connectsafe", Landing: landingIP}
	resp := h.InterceptDNS("typo.example.net", nxResp("typo.example.net"))
	if resp.RCode != dnswire.RCodeSuccess || len(resp.Answers) != 1 || resp.Answers[0].A != landingIP {
		t.Fatalf("resp = %+v", resp)
	}
	// Success responses pass through untouched.
	ok := dnswire.NewQuery(2, "real.example.net", dnswire.TypeA).Reply()
	ok.Answers = []dnswire.Record{{Name: "real.example.net", Type: dnswire.TypeA, Class: dnswire.ClassIN, A: landingIP}}
	before := len(ok.Answers)
	if got := h.InterceptDNS("real.example.net", ok); got.RCode != dnswire.RCodeSuccess || len(got.Answers) != before {
		t.Fatal("success response modified")
	}
	if ip, hijack := h.RewriteNX("x"); !hijack || ip != landingIP {
		t.Fatal("RewriteNX mismatch")
	}
}

func TestHTMLInjectorURL(t *testing.T) {
	in := HTMLInjector{Product: "cloudfront-injector", Signature: "d36mw5gp02ykm5.cloudfront.net", SignatureIsURL: true}
	orig := content.Object(content.KindHTML)
	resp := in.InterceptHTTP("d.example.net", "/object.html", htmlResp())
	if bytes.Equal(resp.Body, orig) {
		t.Fatal("no modification")
	}
	if !bytes.Contains(resp.Body, []byte("d36mw5gp02ykm5.cloudfront.net")) {
		t.Fatal("signature missing from injected page")
	}
	// Injection lands before </body> so the document stays well-formed.
	sig := bytes.Index(resp.Body, []byte("d36mw5gp02ykm5"))
	if end := bytes.Index(resp.Body, []byte("</body>")); sig > end {
		t.Fatalf("injection at %d after </body> at %d", sig, end)
	}
}

func TestHTMLInjectorKeywordAndPayload(t *testing.T) {
	in := HTMLInjector{Product: "oiasudoj-malware", Signature: "var oiasudoj;", ExtraBytes: 23 * 1024}
	resp := in.InterceptHTTP("d.example.net", "/object.html", htmlResp())
	if !bytes.Contains(resp.Body, []byte("var oiasudoj;")) {
		t.Fatal("keyword missing")
	}
	if len(resp.Body) < content.HTMLSize+23*1024 {
		t.Fatalf("payload not padded: %d bytes", len(resp.Body))
	}
}

func TestHTMLInjectorSkipsSmallObjects(t *testing.T) {
	in := HTMLInjector{Product: "x", Signature: "sig", SignatureIsURL: true}
	small := httpwire.NewResponse(200, []byte("<html><body>tiny</body></html>"))
	small.Header.Set("Content-Type", "text/html")
	if got := in.InterceptHTTP("h", "/p", small); bytes.Contains(got.Body, []byte("sig")) {
		t.Fatal("sub-1KB object was injected; §5.1 observed the opposite")
	}
}

func TestHTMLInjectorSkipsNonHTML(t *testing.T) {
	in := HTMLInjector{Product: "x", Signature: "sig", SignatureIsURL: true}
	img := imageResp()
	origLen := len(img.Body)
	if got := in.InterceptHTTP("h", "/object.jpg", img); len(got.Body) != origLen {
		t.Fatal("image was injected")
	}
}

func TestContentFilterMetaTag(t *testing.T) {
	cf := ContentFilter{Product: "NetSpark"}
	resp := cf.InterceptHTTP("h", "/object.html", htmlResp())
	if !bytes.Contains(resp.Body, []byte("NetSparkQuiltingResult")) {
		t.Fatal("meta tag missing")
	}
	if !bytes.Contains(resp.Body, []byte("<head>\n<meta")) {
		t.Fatal("meta tag not inserted in head")
	}
}

func TestBlockPage(t *testing.T) {
	bp := BlockPage{Product: "quota", Message: "bandwidth exceeded"}
	resp := bp.InterceptHTTP("h", "/object.html", htmlResp())
	if resp.StatusCode != 403 || !bytes.Contains(resp.Body, []byte("bandwidth exceeded")) {
		t.Fatalf("resp = %d %q", resp.StatusCode, resp.Body)
	}
}

func TestBlockPageKindRestriction(t *testing.T) {
	bp := BlockPage{Product: "jsblock", Message: "blocked", Kinds: []string{"application/javascript"}, Empty: true}
	html := bp.InterceptHTTP("h", "/object.html", htmlResp())
	if html.StatusCode != 200 || len(html.Body) == 0 {
		t.Fatal("HTML was blocked despite kind restriction")
	}
	js := httpwire.NewResponse(200, content.Object(content.KindJS))
	js.Header.Set("Content-Type", "application/javascript")
	got := bp.InterceptHTTP("h", "/object.js", js)
	if len(got.Body) != 0 {
		t.Fatal("JS not replaced with empty response")
	}
}

func TestImageCompressorRatio(t *testing.T) {
	ic := ImageCompressor{Product: "Wind Hellas transcoder", Ratios: []float64{0.53}}
	orig := content.Object(content.KindImage)
	resp := ic.InterceptHTTP("d.example.net", "/object.jpg", imageResp())
	ratio := content.CompressionRatio(orig, resp.Body)
	if ratio > 0.58 || ratio < 0.48 {
		t.Fatalf("ratio = %.3f, want ~0.53", ratio)
	}
}

func TestImageCompressorMultipleRatios(t *testing.T) {
	ic := ImageCompressor{Product: "Vodacom", Ratios: []float64{0.35, 0.6}}
	orig := content.Object(content.KindImage)
	seen := make(map[int]bool)
	for i := 0; i < 40; i++ {
		resp := imageResp()
		path := "/object.jpg?" + strings.Repeat("x", i)
		got := ic.InterceptHTTP("d.example.net", path, resp)
		seen[len(got.Body)*10/len(orig)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("multi-ratio appliance produced one ratio bucket: %v", seen)
	}
}

func TestImageCompressorSkipsHTML(t *testing.T) {
	ic := ImageCompressor{Product: "x", Ratios: []float64{0.5}}
	resp := ic.InterceptHTTP("h", "/object.html", htmlResp())
	if !bytes.Equal(resp.Body, content.Object(content.KindHTML)) {
		t.Fatal("HTML was transcoded")
	}
}

func TestImageCompressorDeterministicPerURL(t *testing.T) {
	ic := ImageCompressor{Product: "x", Ratios: []float64{0.35, 0.6}}
	a := ic.InterceptHTTP("h", "/object.jpg", imageResp())
	b := ic.InterceptHTTP("h", "/object.jpg", imageResp())
	if !bytes.Equal(a.Body, b.Body) {
		t.Fatal("same URL transcoded differently")
	}
}

// mitm test fixtures ---------------------------------------------------------

func mitmWorld(t *testing.T) (*cert.Store, *cert.CA, []*cert.Certificate, []*cert.Certificate) {
	t.Helper()
	store, cas := cert.NewOSRootStore(epoch)
	site := cas[0].Issue(cert.Template{
		Subject:   cert.Name{CommonName: "www.bank.example"},
		NotBefore: epoch.Add(-time.Hour), NotAfter: epoch.Add(1000 * time.Hour),
		KeySeed: "bank",
	})
	valid := []*cert.Certificate{site, cas[0].Cert}
	selfCA := cert.NewRootCA(cert.Name{CommonName: "selfsigned.example"}, "ss", epoch.Add(-time.Hour), 1000*time.Hour)
	invalid := []*cert.Certificate{selfCA.Cert}
	return store, cas[0], valid, invalid
}

func avastSpec() ProductSpec {
	return ProductSpec{
		Product: "Avast", IssuerCN: "Avast Web/Mail Shield Root", Kind: "Anti-Virus/Security",
		ReuseKey: false, Invalid: InvalidDistinctIssuer,
	}
}

func kasperskySpec() ProductSpec {
	return ProductSpec{
		Product: "Kaspersky", IssuerCN: "Kaspersky Anti-Virus Personal Root", Kind: "Anti-Virus/Security",
		ReuseKey: true, Invalid: InvalidLaunder,
	}
}

func TestCertMITMReplacesValidChain(t *testing.T) {
	store, _, valid, _ := mitmWorld(t)
	pc := kasperskySpec().Build(epoch, store)
	m := pc.Instance("node-1", func() time.Time { return epoch })
	got := m.InterceptChain("www.bank.example", valid)
	if got == nil {
		t.Fatal("no replacement")
	}
	if got[0].Issuer.CommonName != "Kaspersky Anti-Virus Personal Root" {
		t.Fatalf("issuer = %q", got[0].Issuer.CommonName)
	}
	if err := store.Verify("www.bank.example", got, epoch); err == nil {
		t.Fatal("spoofed chain verified against clean store")
	}
}

func TestCertMITMKeyReuse(t *testing.T) {
	store, _, valid, _ := mitmWorld(t)
	pc := kasperskySpec().Build(epoch, store)
	m := pc.Instance("node-1", func() time.Time { return epoch })
	a := m.InterceptChain("www.bank.example", valid)
	b := m.InterceptChain("othersite.example", []*cert.Certificate{valid[0].Clone(), valid[1]})
	if a[0].PublicKey != b[0].PublicKey {
		t.Fatal("Kaspersky-style product minted distinct keys; §6.2 says same key per node")
	}
	// Different node, different key.
	m2 := pc.Instance("node-2", func() time.Time { return epoch })
	c := m2.InterceptChain("www.bank.example", []*cert.Certificate{valid[0].Clone(), valid[1]})
	if c[0].PublicKey == a[0].PublicKey {
		t.Fatal("key shared across nodes")
	}
}

func TestAvastUniqueKeys(t *testing.T) {
	store, _, valid, _ := mitmWorld(t)
	pc := avastSpec().Build(epoch, store)
	m := pc.Instance("node-1", func() time.Time { return epoch })
	a := m.InterceptChain("www.bank.example", valid)
	b := m.InterceptChain("www.bank.example", []*cert.Certificate{valid[0].Clone(), valid[1]})
	if a[0].PublicKey == b[0].PublicKey {
		t.Fatal("Avast reused a key; §6.2 says it is the exception")
	}
}

func TestInvalidLaunderMakesInvalidLookSpoofValid(t *testing.T) {
	store, _, _, invalid := mitmWorld(t)
	pc := kasperskySpec().Build(epoch, store)
	m := pc.Instance("node-1", func() time.Time { return epoch })
	got := m.InterceptChain("selfsigned.example", invalid)
	if got == nil {
		t.Fatal("laundering product skipped invalid site")
	}
	// Same issuer and key as for valid sites — the §6.2 signature of the
	// dangerous behaviour.
	valid := m.InterceptChain("www.bank.example", []*cert.Certificate{invalid[0]})
	if got[0].Issuer != valid[0].Issuer || got[0].PublicKey != valid[0].PublicKey {
		t.Fatal("laundered cert distinguishable from valid-site spoof")
	}
}

func TestInvalidDistinctIssuer(t *testing.T) {
	store, _, valid, invalid := mitmWorld(t)
	pc := avastSpec().Build(epoch, store)
	m := pc.Instance("node-1", func() time.Time { return epoch })
	gotValid := m.InterceptChain("www.bank.example", valid)
	gotInvalid := m.InterceptChain("selfsigned.example", invalid)
	if gotInvalid == nil || gotValid == nil {
		t.Fatal("missing replacement")
	}
	if gotInvalid[0].Issuer == gotValid[0].Issuer {
		t.Fatal("invalid-site replacement shares the trusted-looking issuer")
	}
	if !strings.Contains(gotInvalid[0].Issuer.CommonName, "untrusted") {
		t.Fatalf("issuer = %q", gotInvalid[0].Issuer.CommonName)
	}
}

func TestInvalidSkipPolicy(t *testing.T) {
	store, _, _, invalid := mitmWorld(t)
	spec := ProductSpec{Product: "OpenDNS", IssuerCN: "OpenDNS Root Certificate Authority",
		Kind: "Content filter", ReuseKey: true, Invalid: InvalidSkip,
		BlockList: []string{"blocked.example"}}
	pc := spec.Build(epoch, store)
	m := pc.Instance("node-1", func() time.Time { return epoch })
	if got := m.InterceptChain("selfsigned.example", invalid); got != nil {
		t.Fatal("OpenDNS-style filter replaced an invalid certificate")
	}
}

func TestBlockListRestriction(t *testing.T) {
	store, _, valid, _ := mitmWorld(t)
	spec := ProductSpec{Product: "OpenDNS", IssuerCN: "OpenDNS Root CA", Kind: "Content filter",
		ReuseKey: true, Invalid: InvalidSkip, BlockList: []string{"www.bank.example"}}
	pc := spec.Build(epoch, store)
	m := pc.Instance("n", func() time.Time { return epoch })
	if got := m.InterceptChain("www.bank.example", valid); got == nil {
		t.Fatal("blocked host not intercepted")
	}
	other := []*cert.Certificate{valid[0].Clone(), valid[1]}
	if got := m.InterceptChain("unblocked.example", other); got != nil {
		t.Fatal("unblocked host intercepted")
	}
}

func TestCopyFieldsMalware(t *testing.T) {
	store, _, valid, _ := mitmWorld(t)
	spec := ProductSpec{Product: "Cloudguard", IssuerCN: "Cloudguard.me", Kind: "Malware",
		ReuseKey: true, Invalid: InvalidLaunder, CopyFields: true}
	pc := spec.Build(epoch, store)
	m := pc.Instance("n", func() time.Time { return epoch })
	got := m.InterceptChain("www.bank.example", valid)
	if got[0].Subject != valid[0].Subject {
		t.Fatal("malware did not copy subject fields")
	}
	if !got[0].NotAfter.Equal(valid[0].NotAfter) {
		t.Fatal("malware did not copy validity window")
	}
}

// path composition -----------------------------------------------------------

func TestPathApplyOrderAndEmpty(t *testing.T) {
	var p Path
	if !p.Empty() {
		t.Fatal("zero path not empty")
	}
	p.HTTP = []HTTPInterceptor{
		HTMLInjector{Product: "a", Signature: "first-sig", SignatureIsURL: false},
		HTMLInjector{Product: "b", Signature: "second-sig", SignatureIsURL: false},
	}
	if p.Empty() {
		t.Fatal("non-empty path reported empty")
	}
	resp := p.ApplyHTTP("h", "/object.html", htmlResp())
	i1 := bytes.Index(resp.Body, []byte("first-sig"))
	i2 := bytes.Index(resp.Body, []byte("second-sig"))
	if i1 < 0 || i2 < 0 {
		t.Fatal("an interceptor was skipped")
	}
}

func TestPathTLSFirstReplacementWins(t *testing.T) {
	store, _, valid, _ := mitmWorld(t)
	pcA := kasperskySpec().Build(epoch, store)
	pcB := avastSpec().Build(epoch, store)
	now := func() time.Time { return epoch }
	p := Path{TLS: []TLSInterceptor{pcA.Instance("n", now), pcB.Instance("n", now)}}
	got := p.ApplyTLS("www.bank.example", valid)
	if got[0].Issuer.CommonName != "Kaspersky Anti-Virus Personal Root" {
		t.Fatalf("issuer = %q (second interceptor won?)", got[0].Issuer.CommonName)
	}
}

// watcher ---------------------------------------------------------------------

type refetchRec struct {
	src   netip.Addr
	host  string
	delay time.Duration
}

func watchEnv(rng *rand.Rand) (*Env, *[]refetchRec) {
	var recs []refetchRec
	env := &Env{
		Clock: simnet.NewVirtual(epoch),
		Rand:  rng,
		Refetch: func(src netip.Addr, host, path string, delay time.Duration) {
			recs = append(recs, refetchRec{src, host, delay})
		},
	}
	return env, &recs
}

func TestWatcherTwoRequestsBimodal(t *testing.T) {
	tm := &Watcher{
		Product: "TrendMicro",
		Requests: []RefetchSpec{
			{Delay: DelaySpec{Min: 12 * time.Second, Max: 120 * time.Second, LogUniform: true},
				Sources: []netip.Addr{netip.MustParseAddr("150.70.1.1")}},
			{Delay: DelaySpec{Min: 200 * time.Second, Max: 12500 * time.Second, LogUniform: true},
				Sources: []netip.Addr{netip.MustParseAddr("150.70.1.2")}},
		},
	}
	env, recs := watchEnv(simnet.NewRand(5))
	proceeded := 0
	for i := 0; i < 50; i++ {
		tm.Observe(env, "u1.example.net", "/", func() { proceeded++ })
	}
	if proceeded != 50 {
		t.Fatalf("proceed called %d times", proceeded)
	}
	if len(*recs) != 100 {
		t.Fatalf("refetches = %d, want 100", len(*recs))
	}
	for i, r := range *recs {
		if i%2 == 0 && (r.delay < 12*time.Second || r.delay > 120*time.Second) {
			t.Fatalf("first request delay %v out of band", r.delay)
		}
		if i%2 == 1 && (r.delay < 200*time.Second || r.delay > 12500*time.Second) {
			t.Fatalf("second request delay %v out of band", r.delay)
		}
	}
}

func TestWatcherPreFetch(t *testing.T) {
	bc := &Watcher{
		Product: "Bluecoat",
		Requests: []RefetchSpec{{
			Delay:        DelaySpec{Min: time.Second, Max: 30 * time.Second, LogUniform: true},
			Sources:      []netip.Addr{netip.MustParseAddr("199.19.250.1")},
			PreFetchProb: 0.83,
			Lead:         DelaySpec{Min: 100 * time.Millisecond, Max: 2 * time.Second},
		}},
	}
	env, recs := watchEnv(simnet.NewRand(6))
	for i := 0; i < 400; i++ {
		bc.Observe(env, "u.example.net", "/", func() {})
	}
	neg := 0
	for _, r := range *recs {
		if r.delay < 0 {
			neg++
		}
	}
	frac := float64(neg) / float64(len(*recs))
	if frac < 0.75 || frac > 0.9 {
		t.Fatalf("pre-fetch fraction = %.2f, want ~0.83", frac)
	}
}

func TestWatcherSampling(t *testing.T) {
	w := &Watcher{
		Product:    "Tiscali",
		SampleProb: 0.5,
		Requests: []RefetchSpec{{
			Delay:   DelaySpec{Min: 30 * time.Second, Max: 30 * time.Second},
			Sources: []netip.Addr{netip.MustParseAddr("212.74.1.1")},
		}},
	}
	env, recs := watchEnv(simnet.NewRand(7))
	for i := 0; i < 400; i++ {
		w.Observe(env, "u.example.net", "/", func() {})
	}
	frac := float64(len(*recs)) / 400
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("sampled fraction = %.2f, want ~0.5", frac)
	}
	for _, r := range *recs {
		if r.delay != 30*time.Second {
			t.Fatalf("Tiscali delay = %v, want exactly 30s", r.delay)
		}
	}
}

func TestObserveFetchOrdering(t *testing.T) {
	var order []string
	mkWatcher := func(name string) Monitor {
		return watcherFunc{name: name, fn: func(env *Env, host, path string, proceed func()) {
			order = append(order, "pre-"+name)
			proceed()
			order = append(order, "post-"+name)
		}}
	}
	p := Path{Monitors: []Monitor{mkWatcher("outer"), mkWatcher("inner")}}
	env, _ := watchEnv(simnet.NewRand(8))
	p.ObserveFetch(env, "h", "/", func() { order = append(order, "fetch") })
	want := []string{"pre-outer", "pre-inner", "fetch", "post-inner", "post-outer"}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Fatalf("order = %v", order)
	}
}

type watcherFunc struct {
	name string
	fn   func(env *Env, host, path string, proceed func())
}

func (w watcherFunc) Label() string { return w.name }
func (w watcherFunc) Observe(env *Env, host, path string, proceed func()) {
	w.fn(env, host, path, proceed)
}

func TestDelaySpecBounds(t *testing.T) {
	rng := simnet.NewRand(9)
	specs := []DelaySpec{
		{Min: time.Second, Max: 10 * time.Second},
		{Min: 12 * time.Second, Max: 12500 * time.Second, LogUniform: true},
		{Min: 5 * time.Second, Max: 5 * time.Second},
	}
	for _, s := range specs {
		for i := 0; i < 200; i++ {
			d := s.Sample(rng)
			if d < s.Min || d > s.Max {
				t.Fatalf("sample %v outside [%v,%v]", d, s.Min, s.Max)
			}
		}
	}
}

func TestSTARTTLSStripperPortScope(t *testing.T) {
	st := STARTTLSStripper{Product: "mailguard"}
	if !st.AppliesTo(25) || !st.AppliesTo(587) {
		t.Fatal("mail ports not covered")
	}
	if st.AppliesTo(443) || st.AppliesTo(80) {
		t.Fatal("non-mail ports covered")
	}
	if st.Label() != "mailguard" {
		t.Fatal("label mismatch")
	}
}

func TestPathBlockedPortsAndStreamFor(t *testing.T) {
	p := &Path{
		BlockedPorts: []uint16{25},
		Stream:       []StreamInterceptor{STARTTLSStripper{Product: "x"}},
	}
	if !p.PortBlocked(25) || p.PortBlocked(443) {
		t.Fatal("blocked-port logic wrong")
	}
	if got := p.StreamFor(587); len(got) != 1 {
		t.Fatalf("StreamFor(587) = %d", len(got))
	}
	if got := p.StreamFor(443); len(got) != 0 {
		t.Fatalf("StreamFor(443) = %d", len(got))
	}
	var nilPath *Path
	if nilPath.PortBlocked(25) || nilPath.StreamFor(25) != nil {
		t.Fatal("nil path misbehaves")
	}
	if !nilPath.Empty() {
		t.Fatal("nil path not empty")
	}
	if p.Empty() {
		t.Fatal("configured path reported empty")
	}
}

func TestCertMITMEmptyChainAndIssuerlessProduct(t *testing.T) {
	store, _, valid, _ := mitmWorld(t)
	spec := ProductSpec{Product: "Empty", IssuerCN: "", Kind: "N/A",
		ReuseKey: true, Invalid: InvalidSkip}
	pc := spec.Build(epoch, store)
	m := pc.Instance("n", func() time.Time { return epoch })
	if got := m.InterceptChain("www.bank.example", nil); got != nil {
		t.Fatal("empty chain intercepted")
	}
	got := m.InterceptChain("www.bank.example", valid)
	if got == nil || got[0].Issuer.CommonName != "" {
		t.Fatalf("issuerless product produced %+v", got)
	}
}
