package middlebox

import (
	"strings"

	"github.com/tftproject/tft/internal/content"
	"github.com/tftproject/tft/internal/httpwire"
)

// ImageCompressor transcodes images to lower quality in flight — the mobile
// ISP behaviour of §5.2/Table 7. Each ISP runs a characteristic compression
// ratio (or two, for the "M" rows); the achieved byte ratio is the
// attribution fingerprint the analysis recovers.
type ImageCompressor struct {
	// Product names the ISP's transcoding appliance.
	Product string
	// Ratios lists the output/input size ratios the appliance produces.
	// One entry models a fixed setting; two model the ISPs where the paper
	// saw multiple ratios (Vodacom ZA, Vodafone EG). Selection between them
	// is per-request pseudo-random but deterministic per (host, path).
	Ratios []float64
	// MinSize is the smallest image worth transcoding; zero means
	// MinInjectSize.
	MinSize int
}

// Label implements HTTPInterceptor.
func (ic ImageCompressor) Label() string { return ic.Product }

// InterceptHTTP implements HTTPInterceptor.
func (ic ImageCompressor) InterceptHTTP(host, path string, resp *httpwire.Response) *httpwire.Response {
	if resp.StatusCode != 200 || !strings.HasPrefix(resp.Header.Get("Content-Type"), "image/") {
		return resp
	}
	min := ic.MinSize
	if min == 0 {
		min = MinInjectSize
	}
	if len(resp.Body) < min || len(ic.Ratios) == 0 {
		return resp
	}
	ratio := ic.Ratios[hashStrings(host, path)%uint32(len(ic.Ratios))]
	out, err := content.Recompress(resp.Body, content.QualityForRatio(ratio))
	if err != nil {
		// Not an image our transcoder understands; real appliances pass
		// unknown formats through.
		return resp
	}
	resp.Body = out
	return resp
}

func hashStrings(parts ...string) uint32 {
	var h uint32 = 2166136261
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h = (h ^ uint32(p[i])) * 16777619
		}
		h = (h ^ 0x1f) * 16777619
	}
	// Finalization avalanche: FNV's low bits respond weakly to suffix
	// changes, and callers reduce modulo small counts.
	h ^= h >> 16
	h *= 0x7feb352d
	h ^= h >> 15
	h *= 0x846ca68b
	h ^= h >> 16
	return h
}
