package middlebox

import "github.com/tftproject/tft/internal/smtpwire"

// STARTTLSStripper is the middlebox the §3.4 SMTP extension detects: a
// device on the node's path that deletes the STARTTLS capability from EHLO
// replies so mail sessions stay in cleartext.
type STARTTLSStripper struct {
	// Product names the stripping party.
	Product string
}

// Label implements StreamInterceptor.
func (st STARTTLSStripper) Label() string { return st.Product }

// AppliesTo implements StreamInterceptor: mail submission ports only.
func (st STARTTLSStripper) AppliesTo(port uint16) bool {
	return port == 25 || port == 587
}

// RewriteS2C implements StreamInterceptor.
func (st STARTTLSStripper) RewriteS2C(chunk []byte) []byte {
	return smtpwire.StripSTARTTLS(chunk)
}
