// Package origin implements the measurement team's server-side
// infrastructure: the web server that serves the probe objects and logs
// every arriving request (the paper's detection signal for both the exit
// node's identity, §4.1 step 2, and content monitoring, §7), plus helpers
// for hijacker landing pages and TLS sites.
package origin

import (
	"net"
	"net/netip"
	"sync"
	"time"

	"github.com/tftproject/tft/internal/content"
	"github.com/tftproject/tft/internal/httpwire"
	"github.com/tftproject/tft/internal/simnet"
	"github.com/tftproject/tft/internal/tlssim"
)

// SkewHeader is a simulation affordance: monitors that race ahead of a held
// user request (Bluecoat, §7.2.1) cannot literally preempt it under a
// single-threaded virtual clock, so their fetch carries this header and the
// server logs the request backdated by the given duration (e.g. "-1.2s").
// Real daemons (cmd/originweb) ignore it unless explicitly enabled.
const SkewHeader = "X-Tft-Clock-Skew"

// Request is one logged arrival at the measurement web server.
type Request struct {
	Time time.Time
	// Src is the TCP peer — the exit node's IP (or its VPN egress, or a
	// monitoring entity's server).
	Src netip.Addr
	// Host is the Host header: the unique measurement domain.
	Host string
	Path string
	// UserAgent is the requester's User-Agent header — §7.2 mines it for
	// clues about the monitoring entity.
	UserAgent string
}

// Server is the measurement web server. It serves the four §5.1 objects on
// their canonical paths, a small index page elsewhere, and records every
// request. Safe for concurrent use.
type Server struct {
	clock simnet.Clock
	// AllowSkew honours SkewHeader; the simulated world enables it.
	AllowSkew bool

	mu     sync.Mutex
	byHost map[string][]Request
	total  int
}

// NewServer creates a measurement web server on the given clock.
func NewServer(clock simnet.Clock) *Server {
	return &Server{clock: clock, byHost: make(map[string][]Request)}
}

// Handle processes one parsed request from src and returns the response.
func (s *Server) Handle(src netip.Addr, req *httpwire.Request) *httpwire.Response {
	at := s.clock.Now()
	if s.AllowSkew {
		if skew := req.Header.Get(SkewHeader); skew != "" {
			if d, err := time.ParseDuration(skew); err == nil {
				at = at.Add(d)
			}
		}
	}
	host, _ := httpwire.SplitHostPort(req.Header.Get("Host"), 80)
	s.record(Request{Time: at, Src: src, Host: host, Path: req.Target,
		UserAgent: req.Header.Get("User-Agent")})

	if req.Method != "GET" {
		return httpwire.NewResponse(400, []byte("unsupported method"))
	}
	for _, k := range content.Kinds {
		if req.Target == k.Path() {
			resp := httpwire.NewResponse(200, content.Object(k))
			resp.Header.Set("Content-Type", k.ContentType())
			return resp
		}
	}
	resp := httpwire.NewResponse(200, IndexBody())
	resp.Header.Set("Content-Type", "text/html; charset=utf-8")
	return resp
}

// IndexBody is the small page served for non-object paths. At well under
// 1 KB it doubles as the probe for the §5.1 object-size observation:
// injectors leave tiny objects alone.
func IndexBody() []byte {
	return []byte("<html><head><title>tft probe</title></head><body>ok</body></html>")
}

func (s *Server) record(r Request) {
	s.mu.Lock()
	s.byHost[r.Host] = append(s.byHost[r.Host], r)
	s.total++
	s.mu.Unlock()
}

// RequestsFor returns the logged requests whose Host is host, ordered by
// log arrival (callers sort by Time when they need backdated entries
// in timestamp order).
func (s *Server) RequestsFor(host string) []Request {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Request, len(s.byHost[host]))
	copy(out, s.byHost[host])
	return out
}

// Forget drops the logged requests for a host. Experiments that fully
// consume a probe name's log release it so a paper-scale crawl holds
// O(in-flight sessions) log entries instead of O(all sessions).
// RequestCount still includes forgotten arrivals.
func (s *Server) Forget(host string) {
	s.mu.Lock()
	delete(s.byHost, host)
	s.mu.Unlock()
}

// RequestCount returns the total number of logged requests, including any
// later released with Forget.
func (s *Server) RequestCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// ConnHandler serves one connection: a single request/response exchange,
// as the experiments use Connection: close semantics.
func (s *Server) ConnHandler() simnet.ConnHandler {
	return func(conn net.Conn) {
		defer conn.Close()
		src, _ := simnet.RemoteIP(conn)
		br := httpwire.GetReader(conn)
		req, err := httpwire.ReadRequest(br)
		httpwire.PutReader(br)
		if err != nil {
			return
		}
		s.Handle(src, req).Write(conn)
	}
}

// StaticPage returns a handler serving fixed bytes for every request —
// hijacker landing pages, injected-ad hosts, and other third-party content.
func StaticPage(body []byte, contentType string) simnet.ConnHandler {
	return func(conn net.Conn) {
		defer conn.Close()
		br := httpwire.GetReader(conn)
		_, err := httpwire.ReadRequest(br)
		httpwire.PutReader(br)
		if err != nil {
			return
		}
		resp := httpwire.NewResponse(200, body)
		resp.Header.Set("Content-Type", contentType)
		resp.Write(conn)
	}
}

// TLSSite returns a handler that answers tlssim handshakes with the chain
// for the requested SNI.
func TLSSite(chains tlssim.ChainSource) simnet.ConnHandler {
	return func(conn net.Conn) {
		defer conn.Close()
		tlssim.ServeOnce(conn, chains)
	}
}
