package origin

import (
	"bufio"
	"bytes"
	"context"
	"net/netip"
	"testing"
	"time"

	"github.com/tftproject/tft/internal/cert"
	"github.com/tftproject/tft/internal/content"
	"github.com/tftproject/tft/internal/httpwire"
	"github.com/tftproject/tft/internal/simnet"
	"github.com/tftproject/tft/internal/tlssim"
)

var (
	t0     = time.Date(2016, 4, 13, 0, 0, 0, 0, time.UTC)
	nodeIP = netip.MustParseAddr("91.4.4.4")
	monIP  = netip.MustParseAddr("150.70.2.2")
	srvIP  = netip.MustParseAddr("198.51.100.10")
)

func getReq(host, path string) *httpwire.Request {
	req := httpwire.NewRequest("GET", path)
	req.Header.Set("Host", host)
	return req
}

func TestServesAllObjects(t *testing.T) {
	s := NewServer(simnet.NewVirtual(t0))
	for _, k := range content.Kinds {
		resp := s.Handle(nodeIP, getReq("d.example.net", k.Path()))
		if resp.StatusCode != 200 {
			t.Fatalf("%v: status %d", k, resp.StatusCode)
		}
		if !bytes.Equal(resp.Body, content.Object(k)) {
			t.Fatalf("%v: body mismatch", k)
		}
		if resp.Header.Get("Content-Type") != k.ContentType() {
			t.Fatalf("%v: content-type %q", k, resp.Header.Get("Content-Type"))
		}
	}
}

func TestIndexPage(t *testing.T) {
	s := NewServer(simnet.NewVirtual(t0))
	resp := s.Handle(nodeIP, getReq("d.example.net", "/"))
	if resp.StatusCode != 200 || len(resp.Body) == 0 {
		t.Fatalf("index: %d", resp.StatusCode)
	}
}

func TestLogRecordsHostSrcTime(t *testing.T) {
	clock := simnet.NewVirtual(t0)
	s := NewServer(clock)
	s.Handle(nodeIP, getReq("u-node1.probe.example", "/"))
	clock.Advance(42 * time.Second)
	s.Handle(monIP, getReq("u-node1.probe.example", "/"))
	reqs := s.RequestsFor("u-node1.probe.example")
	if len(reqs) != 2 {
		t.Fatalf("logged %d", len(reqs))
	}
	if reqs[0].Src != nodeIP || reqs[1].Src != monIP {
		t.Fatalf("srcs = %v %v", reqs[0].Src, reqs[1].Src)
	}
	if got := reqs[1].Time.Sub(reqs[0].Time); got != 42*time.Second {
		t.Fatalf("delta = %v", got)
	}
	if s.RequestCount() != 2 {
		t.Fatalf("count = %d", s.RequestCount())
	}
}

func TestHostHeaderPortStripped(t *testing.T) {
	s := NewServer(simnet.NewVirtual(t0))
	req := getReq("d.example.net:80", "/")
	s.Handle(nodeIP, req)
	if len(s.RequestsFor("d.example.net")) != 1 {
		t.Fatal("host with port not normalized")
	}
}

func TestSkewBackdatesWhenAllowed(t *testing.T) {
	clock := simnet.NewVirtual(t0.Add(time.Hour))
	s := NewServer(clock)
	s.AllowSkew = true
	req := getReq("d.example.net", "/")
	req.Header.Set(SkewHeader, "-1.5s")
	s.Handle(monIP, req)
	reqs := s.RequestsFor("d.example.net")
	if want := t0.Add(time.Hour - 1500*time.Millisecond); !reqs[0].Time.Equal(want) {
		t.Fatalf("time = %v, want %v", reqs[0].Time, want)
	}
}

func TestSkewIgnoredByDefault(t *testing.T) {
	clock := simnet.NewVirtual(t0)
	s := NewServer(clock)
	req := getReq("d.example.net", "/")
	req.Header.Set(SkewHeader, "-10s")
	s.Handle(monIP, req)
	if !s.RequestsFor("d.example.net")[0].Time.Equal(t0) {
		t.Fatal("skew honoured without AllowSkew")
	}
}

func TestConnHandlerOverFabric(t *testing.T) {
	f := simnet.NewFabric()
	s := NewServer(simnet.NewVirtual(t0))
	f.HandleTCP(srvIP, 80, s.ConnHandler())
	conn, err := f.Dial(context.Background(), nodeIP, srvIP, 80)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := getReq("d.example.net", "/object.css")
	resp, err := httpwire.RoundTrip(conn, bufio.NewReader(conn), req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Body, content.Object(content.KindCSS)) {
		t.Fatal("CSS body mismatch over fabric")
	}
	reqs := s.RequestsFor("d.example.net")
	if len(reqs) != 1 || reqs[0].Src != nodeIP {
		t.Fatalf("log = %+v", reqs)
	}
}

func TestStaticPage(t *testing.T) {
	f := simnet.NewFabric()
	landing := []byte("<html><body><a href=\"http://searchassist.verizon.com\">go</a></body></html>")
	f.HandleTCP(srvIP, 80, StaticPage(landing, "text/html"))
	conn, err := f.Dial(context.Background(), nodeIP, srvIP, 80)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	resp, err := httpwire.RoundTrip(conn, bufio.NewReader(conn), getReq("whatever.example", "/"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Body, landing) {
		t.Fatal("landing body mismatch")
	}
}

func TestTLSSiteOverFabric(t *testing.T) {
	f := simnet.NewFabric()
	root := cert.NewRootCA(cert.Name{CommonName: "R"}, "r", t0.Add(-time.Hour), 1000*time.Hour)
	leaf := root.Issue(cert.Template{Subject: cert.Name{CommonName: "site.example"},
		NotBefore: t0.Add(-time.Hour), NotAfter: t0.Add(1000 * time.Hour), KeySeed: "s"})
	chain := []*cert.Certificate{leaf, root.Cert}
	f.HandleTCP(srvIP, 443, TLSSite(func(sni string) []*cert.Certificate {
		if sni == "site.example" {
			return chain
		}
		return nil
	}))
	conn, err := f.Dial(context.Background(), nodeIP, srvIP, 443)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	got, err := tlssim.CollectChain(conn, "site.example")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Subject.CommonName != "site.example" {
		t.Fatalf("chain = %+v", got)
	}
}

func TestNonGETRejected(t *testing.T) {
	s := NewServer(simnet.NewVirtual(t0))
	req := httpwire.NewRequest("POST", "/object.html")
	req.Header.Set("Host", "d.example.net")
	if resp := s.Handle(nodeIP, req); resp.StatusCode != 400 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
