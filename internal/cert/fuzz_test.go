package cert

import "testing"

// FuzzUnmarshal: the certificate decoder must never panic, and accepted
// inputs must be re-encodable to an identical fingerprint.
func FuzzUnmarshal(f *testing.F) {
	root := NewRootCA(Name{CommonName: "Fuzz Root"}, "fr", epoch, 1000*1000*1000*3600)
	f.Add(root.Cert.Marshal())
	leaf := root.Issue(Template{Subject: Name{CommonName: "leaf.example"},
		NotBefore: epoch, NotAfter: epoch.Add(1000), KeySeed: "l"})
	f.Add(leaf.Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Unmarshal(data)
		if err != nil {
			return
		}
		c2, err := Unmarshal(c.Marshal())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if c2.Fingerprint() != c.Fingerprint() {
			t.Fatal("fingerprint changed across round trip")
		}
	})
}

// FuzzUnmarshalChain covers the chain framing.
func FuzzUnmarshalChain(f *testing.F) {
	root := NewRootCA(Name{CommonName: "Fuzz Root"}, "fr2", epoch, 1000*1000*1000*3600)
	leaf := root.Issue(Template{Subject: Name{CommonName: "leaf.example"},
		NotBefore: epoch, NotAfter: epoch.Add(1000), KeySeed: "l2"})
	f.Add(MarshalChain([]*Certificate{leaf, root.Cert}))
	f.Fuzz(func(t *testing.T, data []byte) {
		chain, err := UnmarshalChain(data)
		if err != nil {
			return
		}
		chain2, err := UnmarshalChain(MarshalChain(chain))
		if err != nil || len(chain2) != len(chain) {
			t.Fatalf("unstable chain round trip: %v", err)
		}
	})
}
