package cert

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Wire encoding for certificates and chains, used by the tlssim handshake.
// The format is a simple length-prefixed TLV; it has no compatibility
// obligations beyond this repository.

// ErrDecode reports malformed certificate bytes.
var ErrDecode = errors.New("cert: malformed certificate encoding")

const wireVersion = 1

// Marshal encodes a certificate.
func (c *Certificate) Marshal() []byte {
	var b []byte
	b = append(b, wireVersion)
	b = binary.BigEndian.AppendUint64(b, c.SerialNumber)
	b = appendName(b, c.Subject)
	b = appendName(b, c.Issuer)
	b = binary.BigEndian.AppendUint64(b, uint64(c.NotBefore.Unix()))
	b = binary.BigEndian.AppendUint64(b, uint64(c.NotAfter.Unix()))
	if c.IsCA {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = append(b, c.PublicKey[:]...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(c.DNSNames)))
	for _, dn := range c.DNSNames {
		b = appendString(b, dn)
	}
	b = append(b, c.Signature[:]...)
	return b
}

// Unmarshal decodes a certificate produced by Marshal.
func Unmarshal(data []byte) (*Certificate, error) {
	d := &decoder{data: data}
	if v := d.byte(); v != wireVersion {
		return nil, fmt.Errorf("%w: version %d", ErrDecode, v)
	}
	c := &Certificate{}
	c.SerialNumber = d.uint64()
	c.Subject = d.name()
	c.Issuer = d.name()
	c.NotBefore = time.Unix(int64(d.uint64()), 0).UTC()
	c.NotAfter = time.Unix(int64(d.uint64()), 0).UTC()
	c.IsCA = d.byte() == 1
	d.copy(c.PublicKey[:])
	n := int(d.uint16())
	if n > 256 {
		return nil, fmt.Errorf("%w: %d DNS names", ErrDecode, n)
	}
	for i := 0; i < n; i++ {
		c.DNSNames = append(c.DNSNames, d.string())
	}
	d.copy(c.Signature[:])
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrDecode, len(data)-d.off)
	}
	return c, nil
}

// MarshalChain encodes a chain, leaf first.
func MarshalChain(chain []*Certificate) []byte {
	var b []byte
	b = binary.BigEndian.AppendUint16(b, uint16(len(chain)))
	for _, c := range chain {
		enc := c.Marshal()
		b = binary.BigEndian.AppendUint32(b, uint32(len(enc)))
		b = append(b, enc...)
	}
	return b
}

// UnmarshalChain decodes a chain produced by MarshalChain.
func UnmarshalChain(data []byte) ([]*Certificate, error) {
	if len(data) < 2 {
		return nil, ErrDecode
	}
	n := int(binary.BigEndian.Uint16(data))
	if n > 64 {
		return nil, fmt.Errorf("%w: chain of %d certificates", ErrDecode, n)
	}
	off := 2
	chain := make([]*Certificate, 0, n)
	for i := 0; i < n; i++ {
		if off+4 > len(data) {
			return nil, ErrDecode
		}
		l := int(binary.BigEndian.Uint32(data[off:]))
		off += 4
		if off+l > len(data) {
			return nil, ErrDecode
		}
		c, err := Unmarshal(data[off : off+l])
		if err != nil {
			return nil, err
		}
		chain = append(chain, c)
		off += l
	}
	if off != len(data) {
		return nil, fmt.Errorf("%w: trailing bytes after chain", ErrDecode)
	}
	return chain, nil
}

func appendString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func appendName(b []byte, n Name) []byte {
	b = appendString(b, n.CommonName)
	b = appendString(b, n.Organization)
	return appendString(b, n.Country)
}

// decoder is a cursor with sticky error handling.
type decoder struct {
	data []byte
	off  int
	err  error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = ErrDecode
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || d.off+1 > len(d.data) {
		d.fail()
		return 0
	}
	v := d.data[d.off]
	d.off++
	return v
}

func (d *decoder) uint16() uint16 {
	if d.err != nil || d.off+2 > len(d.data) {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(d.data[d.off:])
	d.off += 2
	return v
}

func (d *decoder) uint64() uint64 {
	if d.err != nil || d.off+8 > len(d.data) {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.data[d.off:])
	d.off += 8
	return v
}

func (d *decoder) string() string {
	n := int(d.uint16())
	if d.err != nil || d.off+n > len(d.data) {
		d.fail()
		return ""
	}
	s := string(d.data[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) name() Name {
	return Name{CommonName: d.string(), Organization: d.string(), Country: d.string()}
}

func (d *decoder) copy(dst []byte) {
	if d.err != nil || d.off+len(dst) > len(d.data) {
		d.fail()
		return
	}
	copy(dst, d.data[d.off:])
	d.off += len(dst)
}
