package cert

import (
	"fmt"
	"time"
)

// NumOSRoots matches the paper's §6.1 footnote: the OS X 10.11 root store
// the authors validated against contained 187 unique root certificates.
const NumOSRoots = 187

// NewOSRootStore builds the measurement client's trust store: NumOSRoots
// synthetic public roots plus handles to a few named CAs that the site
// registry issues real site certificates from. The returned CAs all have
// their roots in the store.
func NewOSRootStore(epoch time.Time) (*Store, []*CA) {
	lifetime := 20 * 365 * 24 * time.Hour
	cas := []*CA{
		NewRootCA(Name{CommonName: "TFT Global Root CA", Organization: "TFT Trust Services", Country: "US"}, "root-global", epoch.Add(-5*365*24*time.Hour), lifetime),
		NewRootCA(Name{CommonName: "TFT EV Root CA", Organization: "TFT Trust Services", Country: "US"}, "root-ev", epoch.Add(-5*365*24*time.Hour), lifetime),
		NewRootCA(Name{CommonName: "Academic Trust Root", Organization: "EduCert", Country: "US"}, "root-edu", epoch.Add(-5*365*24*time.Hour), lifetime),
	}
	store := NewStore()
	for _, ca := range cas {
		store.Add(ca.Cert)
	}
	for i := store.Len(); i < NumOSRoots; i++ {
		filler := NewRootCA(Name{
			CommonName:   fmt.Sprintf("Public Root CA %03d", i),
			Organization: "Assorted Trust Operators",
			Country:      "US",
		}, fmt.Sprintf("root-filler-%d", i), epoch.Add(-10*365*24*time.Hour), lifetime)
		store.Add(filler.Cert)
	}
	return store, cas
}
