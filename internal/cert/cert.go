// Package cert implements the certificate model used by the HTTPS
// experiment (§6): X.509-shaped certificates with subject/issuer names,
// validity windows, per-certificate public keys, and issuer signatures over
// the to-be-signed bytes, plus a root store and chain verification.
//
// The signature scheme is deliberately a structural stand-in, not real
// public-key cryptography: Sign computes SHA-256 over the issuer's public
// key and the TBS bytes. This preserves everything the paper's methodology
// observes — chain linkage, trust-anchor membership, issuer common names,
// public-key reuse across spoofed leaves, expiry and common-name validity —
// while keeping million-certificate simulations cheap. No simulated actor
// attempts cryptographic forgery, so the weakened scheme is never load-
// bearing; the measurement client detects MITM exactly as the paper does,
// by validating chains against a clean OS root store that does not contain
// the interceptor's root.
package cert

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"
)

// KeyID is a public-key fingerprint. The paper's §6.2 finding that most AV
// products reuse one key pair for every spoofed certificate on a host makes
// key identity a first-class observable.
type KeyID [16]byte

// String renders the fingerprint in hex.
func (k KeyID) String() string { return fmt.Sprintf("%x", k[:]) }

// KeyPair is a simulated asymmetric key pair.
type KeyPair struct {
	Public KeyID
}

// NewKeyPair derives a key pair from a seed. Distinct seeds give distinct
// keys; the same seed reproduces the same key, which the deterministic world
// generator relies on.
func NewKeyPair(seed string) KeyPair {
	sum := sha256.Sum256([]byte("tft-key:" + seed))
	var id KeyID
	copy(id[:], sum[:])
	return KeyPair{Public: id}
}

// Name is a distinguished name, reduced to the fields the paper inspects.
type Name struct {
	CommonName   string
	Organization string
	Country      string
}

// String renders the name in a compact openssl-like form.
func (n Name) String() string {
	parts := []string{"CN=" + n.CommonName}
	if n.Organization != "" {
		parts = append(parts, "O="+n.Organization)
	}
	if n.Country != "" {
		parts = append(parts, "C="+n.Country)
	}
	return strings.Join(parts, ", ")
}

// Certificate is one certificate.
type Certificate struct {
	SerialNumber uint64
	Subject      Name
	Issuer       Name
	NotBefore    time.Time
	NotAfter     time.Time
	IsCA         bool
	PublicKey    KeyID
	// DNSNames lists additional subject alternative names; CommonName is
	// always implicitly included.
	DNSNames  []string
	Signature [32]byte
}

// tbsBytes serializes every signed field.
func (c *Certificate) tbsBytes() []byte {
	var b []byte
	b = binary.BigEndian.AppendUint64(b, c.SerialNumber)
	for _, s := range []string{
		c.Subject.CommonName, c.Subject.Organization, c.Subject.Country,
		c.Issuer.CommonName, c.Issuer.Organization, c.Issuer.Country,
	} {
		b = binary.BigEndian.AppendUint32(b, uint32(len(s)))
		b = append(b, s...)
	}
	b = binary.BigEndian.AppendUint64(b, uint64(c.NotBefore.Unix()))
	b = binary.BigEndian.AppendUint64(b, uint64(c.NotAfter.Unix()))
	if c.IsCA {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = append(b, c.PublicKey[:]...)
	for _, dn := range c.DNSNames {
		b = binary.BigEndian.AppendUint32(b, uint32(len(dn)))
		b = append(b, dn...)
	}
	return b
}

// sign computes the simulated signature of tbs under the issuer key.
func sign(issuerKey KeyID, tbs []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("tft-sig:"))
	h.Write(issuerKey[:])
	h.Write(tbs)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// CheckSignatureFrom verifies that parent's key signed c.
func (c *Certificate) CheckSignatureFrom(parent *Certificate) error {
	want := sign(parent.PublicKey, c.tbsBytes())
	if c.Signature != want {
		return ErrBadSignature
	}
	return nil
}

// SelfSigned reports whether the certificate is signed by its own key.
func (c *Certificate) SelfSigned() bool {
	return c.Signature == sign(c.PublicKey, c.tbsBytes())
}

// Fingerprint returns a stable identity for the exact certificate contents,
// used by the invalid-site exact-match check (§6.1: "we check whether the
// invalid certificate matches exactly").
func (c *Certificate) Fingerprint() [32]byte {
	h := sha256.New()
	h.Write(c.tbsBytes())
	h.Write(c.Signature[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Clone returns a deep copy.
func (c *Certificate) Clone() *Certificate {
	dup := *c
	dup.DNSNames = append([]string(nil), c.DNSNames...)
	return &dup
}

// MatchesHostname reports whether the certificate covers host, honouring
// single-label wildcards (*.example.org).
func (c *Certificate) MatchesHostname(host string) bool {
	host = strings.ToLower(strings.TrimSuffix(host, "."))
	names := append([]string{c.Subject.CommonName}, c.DNSNames...)
	for _, n := range names {
		n = strings.ToLower(strings.TrimSuffix(n, "."))
		if n == host {
			return true
		}
		if rest, ok := strings.CutPrefix(n, "*."); ok {
			if i := strings.IndexByte(host, '.'); i > 0 && host[i+1:] == rest {
				return true
			}
		}
	}
	return false
}

// CA couples a certificate with signing ability. Issue is safe for
// concurrent use: one product root signs spoofed leaves on many simulated
// hosts at once.
type CA struct {
	Cert *Certificate
	key  KeyPair

	mu     sync.Mutex
	serial uint64
}

// NewRootCA creates a self-signed root.
func NewRootCA(name Name, keySeed string, notBefore time.Time, lifetime time.Duration) *CA {
	kp := NewKeyPair(keySeed)
	c := &Certificate{
		SerialNumber: 1,
		Subject:      name,
		Issuer:       name,
		NotBefore:    notBefore,
		NotAfter:     notBefore.Add(lifetime),
		IsCA:         true,
		PublicKey:    kp.Public,
	}
	c.Signature = sign(kp.Public, c.tbsBytes())
	return &CA{Cert: c, key: kp, serial: 1}
}

// Template carries the caller-controlled fields of a new certificate.
type Template struct {
	Subject   Name
	DNSNames  []string
	NotBefore time.Time
	NotAfter  time.Time
	IsCA      bool
	// KeySeed fixes the subject key; AV products that reuse one key across
	// every spoofed certificate pass the same seed each time.
	KeySeed string
}

// Issue signs a new certificate from the template.
func (ca *CA) Issue(tmpl Template) *Certificate {
	ca.mu.Lock()
	ca.serial++
	serial := ca.serial
	ca.mu.Unlock()
	kp := NewKeyPair(tmpl.KeySeed)
	c := &Certificate{
		SerialNumber: serial,
		Subject:      tmpl.Subject,
		Issuer:       ca.Cert.Subject,
		NotBefore:    tmpl.NotBefore,
		NotAfter:     tmpl.NotAfter,
		IsCA:         tmpl.IsCA,
		PublicKey:    kp.Public,
		DNSNames:     append([]string(nil), tmpl.DNSNames...),
	}
	c.Signature = sign(ca.key.Public, c.tbsBytes())
	return c
}

// IssueIntermediate creates a subordinate CA.
func (ca *CA) IssueIntermediate(name Name, keySeed string, notBefore time.Time, lifetime time.Duration) *CA {
	c := ca.Issue(Template{
		Subject: name, NotBefore: notBefore, NotAfter: notBefore.Add(lifetime),
		IsCA: true, KeySeed: keySeed,
	})
	return &CA{Cert: c, key: NewKeyPair(keySeed), serial: 1000}
}

// Verification errors.
var (
	ErrBadSignature  = errors.New("cert: signature verification failed")
	ErrExpired       = errors.New("cert: certificate expired or not yet valid")
	ErrNameMismatch  = errors.New("cert: certificate name does not match host")
	ErrUntrustedRoot = errors.New("cert: chain does not terminate at a trusted root")
	ErrEmptyChain    = errors.New("cert: empty certificate chain")
	ErrNotCA         = errors.New("cert: intermediate is not a CA certificate")
)

// Store is a set of trusted root certificates, the analogue of the OS X
// 10.11 root store (187 roots) the paper validated against.
type Store struct {
	roots map[KeyID]*Certificate
}

// NewStore builds a store from roots.
func NewStore(roots ...*Certificate) *Store {
	s := &Store{roots: make(map[KeyID]*Certificate, len(roots))}
	for _, r := range roots {
		s.roots[r.PublicKey] = r
	}
	return s
}

// Add inserts a root. Installing an AV product's root into a victim's store
// is exactly the paper's §6.2 scenario; the measurement client never does
// this, which is why replaced chains fail its validation.
func (s *Store) Add(root *Certificate) { s.roots[root.PublicKey] = root }

// Contains reports whether the store trusts a root with the given key.
func (s *Store) Contains(key KeyID) bool { _, ok := s.roots[key]; return ok }

// Len returns the number of trusted roots.
func (s *Store) Len() int { return len(s.roots) }

// Verify checks a presented chain (leaf first) against the store: hostname
// match on the leaf, validity window and signature on every link, CA bit on
// intermediates, and a trusted terminal root. It mirrors `openssl verify`
// as the paper used it (§6.1).
func (s *Store) Verify(host string, chain []*Certificate, at time.Time) error {
	if len(chain) == 0 {
		return ErrEmptyChain
	}
	leaf := chain[0]
	if host != "" && !leaf.MatchesHostname(host) {
		return fmt.Errorf("%w: %q not covered by %q", ErrNameMismatch, host, leaf.Subject.CommonName)
	}
	for i, c := range chain {
		if at.Before(c.NotBefore) || at.After(c.NotAfter) {
			return fmt.Errorf("%w: %q (depth %d)", ErrExpired, c.Subject.CommonName, i)
		}
		if i > 0 && !c.IsCA {
			return fmt.Errorf("%w: %q (depth %d)", ErrNotCA, c.Subject.CommonName, i)
		}
	}
	for i := 0; i < len(chain)-1; i++ {
		if err := chain[i].CheckSignatureFrom(chain[i+1]); err != nil {
			return fmt.Errorf("%w: depth %d", err, i)
		}
	}
	last := chain[len(chain)-1]
	// The chain may either end at a trusted root itself, or at a
	// certificate signed by a trusted root's key.
	if s.Contains(last.PublicKey) && last.SelfSigned() {
		return nil
	}
	for key := range s.roots {
		if last.Signature == sign(key, last.tbsBytes()) {
			return nil
		}
	}
	return fmt.Errorf("%w: issuer %q", ErrUntrustedRoot, last.Issuer.CommonName)
}
