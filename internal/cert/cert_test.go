package cert

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

var epoch = time.Date(2016, 4, 14, 0, 0, 0, 0, time.UTC)

func testPKI(t *testing.T) (*Store, *CA) {
	t.Helper()
	root := NewRootCA(Name{CommonName: "Test Root", Organization: "T", Country: "US"},
		"test-root", epoch.Add(-time.Hour), 10*365*24*time.Hour)
	return NewStore(root.Cert), root
}

func leafTemplate(cn string) Template {
	return Template{
		Subject:   Name{CommonName: cn, Organization: "Site", Country: "US"},
		NotBefore: epoch.Add(-time.Hour),
		NotAfter:  epoch.Add(365 * 24 * time.Hour),
		KeySeed:   "leaf-" + cn,
	}
}

func TestValidChainVerifies(t *testing.T) {
	store, root := testPKI(t)
	leaf := root.Issue(leafTemplate("www.example.org"))
	if err := store.Verify("www.example.org", []*Certificate{leaf, root.Cert}, epoch); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
}

func TestChainWithoutRootVerifies(t *testing.T) {
	// Servers often send only the leaf; validation should still succeed when
	// the leaf is directly signed by a trusted root's key.
	store, root := testPKI(t)
	leaf := root.Issue(leafTemplate("www.example.org"))
	if err := store.Verify("www.example.org", []*Certificate{leaf}, epoch); err != nil {
		t.Fatalf("leaf-only chain rejected: %v", err)
	}
}

func TestIntermediateChain(t *testing.T) {
	store, root := testPKI(t)
	inter := root.IssueIntermediate(Name{CommonName: "Test Intermediate"}, "test-inter",
		epoch.Add(-time.Hour), 5*365*24*time.Hour)
	leaf := inter.Issue(leafTemplate("api.example.org"))
	chain := []*Certificate{leaf, inter.Cert, root.Cert}
	if err := store.Verify("api.example.org", chain, epoch); err != nil {
		t.Fatalf("intermediate chain rejected: %v", err)
	}
}

func TestUntrustedRootRejected(t *testing.T) {
	store, _ := testPKI(t)
	evil := NewRootCA(Name{CommonName: "Avast Web/Mail Shield Root"}, "avast-root",
		epoch.Add(-time.Hour), 10*365*24*time.Hour)
	leaf := evil.Issue(leafTemplate("www.example.org"))
	err := store.Verify("www.example.org", []*Certificate{leaf, evil.Cert}, epoch)
	if !errors.Is(err, ErrUntrustedRoot) {
		t.Fatalf("err = %v, want ErrUntrustedRoot", err)
	}
}

func TestExpiredRejected(t *testing.T) {
	store, root := testPKI(t)
	tmpl := leafTemplate("old.example.org")
	tmpl.NotAfter = epoch.Add(-time.Minute)
	leaf := root.Issue(tmpl)
	err := store.Verify("old.example.org", []*Certificate{leaf, root.Cert}, epoch)
	if !errors.Is(err, ErrExpired) {
		t.Fatalf("err = %v, want ErrExpired", err)
	}
}

func TestNotYetValidRejected(t *testing.T) {
	store, root := testPKI(t)
	tmpl := leafTemplate("future.example.org")
	tmpl.NotBefore = epoch.Add(time.Hour)
	leaf := root.Issue(tmpl)
	if err := store.Verify("future.example.org", []*Certificate{leaf, root.Cert}, epoch); !errors.Is(err, ErrExpired) {
		t.Fatalf("err = %v, want ErrExpired", err)
	}
}

func TestWrongCommonNameRejected(t *testing.T) {
	store, root := testPKI(t)
	leaf := root.Issue(leafTemplate("other.example.org"))
	err := store.Verify("www.example.org", []*Certificate{leaf, root.Cert}, epoch)
	if !errors.Is(err, ErrNameMismatch) {
		t.Fatalf("err = %v, want ErrNameMismatch", err)
	}
}

func TestWildcardMatch(t *testing.T) {
	store, root := testPKI(t)
	tmpl := leafTemplate("*.example.org")
	tmpl.KeySeed = "wild"
	leaf := root.Issue(tmpl)
	if err := store.Verify("www.example.org", []*Certificate{leaf, root.Cert}, epoch); err != nil {
		t.Fatalf("wildcard rejected: %v", err)
	}
	// Wildcards cover exactly one label.
	if err := store.Verify("a.b.example.org", []*Certificate{leaf, root.Cert}, epoch); !errors.Is(err, ErrNameMismatch) {
		t.Fatalf("multi-label wildcard accepted: %v", err)
	}
}

func TestSANMatch(t *testing.T) {
	store, root := testPKI(t)
	tmpl := leafTemplate("example.org")
	tmpl.DNSNames = []string{"www.example.org", "cdn.example.org"}
	leaf := root.Issue(tmpl)
	if err := store.Verify("cdn.example.org", []*Certificate{leaf, root.Cert}, epoch); err != nil {
		t.Fatalf("SAN rejected: %v", err)
	}
}

func TestTamperedCertificateRejected(t *testing.T) {
	store, root := testPKI(t)
	leaf := root.Issue(leafTemplate("www.example.org"))
	tampered := leaf.Clone()
	tampered.Subject.CommonName = "www.example.org" // unchanged
	tampered.NotAfter = tampered.NotAfter.Add(time.Hour)
	err := store.Verify("www.example.org", []*Certificate{tampered, root.Cert}, epoch)
	if !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestNonCAIntermediateRejected(t *testing.T) {
	store, root := testPKI(t)
	fakeInter := root.Issue(leafTemplate("not-a-ca.example.org")) // IsCA=false
	leaf := root.Issue(leafTemplate("www.example.org"))
	// Build an (invalidly structured) chain placing a non-CA in the middle.
	leaf.Issuer = fakeInter.Subject
	err := store.Verify("www.example.org", []*Certificate{leaf, fakeInter, root.Cert}, epoch)
	if err == nil {
		t.Fatal("chain through non-CA accepted")
	}
}

func TestEmptyChainRejected(t *testing.T) {
	store, _ := testPKI(t)
	if err := store.Verify("x", nil, epoch); !errors.Is(err, ErrEmptyChain) {
		t.Fatalf("err = %v, want ErrEmptyChain", err)
	}
}

func TestSelfSignedLeafRejected(t *testing.T) {
	store, _ := testPKI(t)
	self := NewRootCA(Name{CommonName: "www.example.org"}, "self", epoch.Add(-time.Hour), time.Hour*48)
	err := store.Verify("www.example.org", []*Certificate{self.Cert}, epoch)
	if !errors.Is(err, ErrUntrustedRoot) {
		t.Fatalf("err = %v, want ErrUntrustedRoot", err)
	}
}

func TestKeyReuseObservable(t *testing.T) {
	// AV products (all but Avast, §6.2) mint every spoofed leaf with the
	// same key pair; the fingerprint must expose that.
	_, root := testPKI(t)
	t1 := leafTemplate("a.example.org")
	t1.KeySeed = "av-shared-key"
	t2 := leafTemplate("b.example.org")
	t2.KeySeed = "av-shared-key"
	l1, l2 := root.Issue(t1), root.Issue(t2)
	if l1.PublicKey != l2.PublicKey {
		t.Fatal("same seed produced different keys")
	}
	t3 := leafTemplate("c.example.org")
	t3.KeySeed = "fresh"
	if l3 := root.Issue(t3); l3.PublicKey == l1.PublicKey {
		t.Fatal("different seeds collided")
	}
}

func TestFingerprintDistinguishesCertificates(t *testing.T) {
	_, root := testPKI(t)
	a := root.Issue(leafTemplate("www.example.org"))
	b := root.Issue(leafTemplate("www.example.org"))
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("distinct serials share a fingerprint")
	}
	if a.Fingerprint() != a.Clone().Fingerprint() {
		t.Fatal("clone changed fingerprint")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	_, root := testPKI(t)
	tmpl := leafTemplate("www.example.org")
	tmpl.DNSNames = []string{"example.org", "*.example.org"}
	leaf := root.Issue(tmpl)
	got, err := Unmarshal(leaf.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != leaf.Fingerprint() {
		t.Fatal("round trip changed fingerprint")
	}
	if got.Subject != leaf.Subject || got.Issuer != leaf.Issuer || !got.NotAfter.Equal(leaf.NotAfter) {
		t.Fatalf("round trip changed fields: %+v", got)
	}
}

func TestChainRoundTrip(t *testing.T) {
	store, root := testPKI(t)
	inter := root.IssueIntermediate(Name{CommonName: "I"}, "i", epoch.Add(-time.Hour), time.Hour*1000)
	leaf := inter.Issue(leafTemplate("www.example.org"))
	chain := []*Certificate{leaf, inter.Cert, root.Cert}
	got, err := UnmarshalChain(MarshalChain(chain))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("chain length = %d", len(got))
	}
	if err := store.Verify("www.example.org", got, epoch); err != nil {
		t.Fatalf("decoded chain fails verification: %v", err)
	}
}

func TestUnmarshalGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		buf := make([]byte, rng.Intn(200))
		rng.Read(buf)
		Unmarshal(buf)
		UnmarshalChain(buf)
	}
}

func TestUnmarshalTruncations(t *testing.T) {
	_, root := testPKI(t)
	enc := root.Issue(leafTemplate("www.example.org")).Marshal()
	for cut := 0; cut < len(enc); cut++ {
		if _, err := Unmarshal(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestOSRootStore(t *testing.T) {
	store, cas := NewOSRootStore(epoch)
	if store.Len() != NumOSRoots {
		t.Fatalf("store has %d roots, want %d", store.Len(), NumOSRoots)
	}
	if len(cas) < 3 {
		t.Fatalf("only %d operational CAs", len(cas))
	}
	leaf := cas[0].Issue(leafTemplate("site.example.com"))
	if err := store.Verify("site.example.com", []*Certificate{leaf, cas[0].Cert}, epoch); err != nil {
		t.Fatalf("operational CA chain rejected: %v", err)
	}
}

func TestNameString(t *testing.T) {
	n := Name{CommonName: "x", Organization: "O", Country: "US"}
	if got := n.String(); got != "CN=x, O=O, C=US" {
		t.Fatalf("Name.String = %q", got)
	}
	if got := (Name{CommonName: "y"}).String(); got != "CN=y" {
		t.Fatalf("Name.String = %q", got)
	}
}

// Property: marshal/unmarshal is the identity on issued certificates with
// fuzzed CNs and validity windows.
func TestPropertyMarshalRoundTrip(t *testing.T) {
	_, root := testPKI(t)
	f := func(cnSeed uint32, days uint16, isCA bool) bool {
		tmpl := Template{
			Subject:   Name{CommonName: randCN(cnSeed), Organization: "O", Country: "ZZ"},
			NotBefore: epoch,
			NotAfter:  epoch.Add(time.Duration(days) * 24 * time.Hour),
			IsCA:      isCA,
			KeySeed:   randCN(cnSeed ^ 0xFFFF),
		}
		c := root.Issue(tmpl)
		got, err := Unmarshal(c.Marshal())
		return err == nil && got.Fingerprint() == c.Fingerprint() && got.IsCA == isCA
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randCN(seed uint32) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	b := make([]byte, 3+seed%10)
	s := seed
	for i := range b {
		s = s*1664525 + 1013904223
		b[i] = letters[s%26]
	}
	return string(b) + ".example.net"
}
