package lint

import (
	"go/ast"
	"strings"
)

// bannedRand are the package-level math/rand and math/rand/v2 functions
// that draw from the process-global, randomly-seeded source. Constructors
// (New, NewPCG, NewChaCha8, NewZipf) stay legal: they are exactly how the
// seeded world RNG is built.
var bannedRand = map[string]bool{
	// math/rand/v2
	"Int": true, "IntN": true,
	"Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true,
	"Uint": true, "UintN": true,
	"Uint32": true, "Uint32N": true,
	"Uint64": true, "Uint64N": true,
	"Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "N": true,
	// math/rand (v1) spellings, should one ever sneak in
	"Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Seed": true, "Read": true,
}

// runSeededRand bans package-level math/rand calls under internal/: a
// fixed-seed crawl must never touch the process-global RNG, or two runs
// with the same seed stop being comparable.
func runSeededRand(p *Pass) []Diagnostic {
	if !strings.HasPrefix(p.RelDir+"/", "internal/") {
		return nil
	}
	var ds []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !bannedRand[sel.Sel.Name] {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if path, ok := p.ImportedPkg(x); ok && (path == "math/rand/v2" || path == "math/rand") {
				ds = append(ds, p.Diag(sel.Pos(),
					"package-level %s.%s draws from the process-global RNG; use a seeded *rand.Rand from simnet.NewRand/SubRand",
					x.Name, sel.Sel.Name))
			}
			return true
		})
	}
	return ds
}
