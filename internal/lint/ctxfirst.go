package lint

import (
	"go/ast"
	"go/types"
)

// runCtxFirst enforces the Go API convention the rest of the repository
// already follows: an exported function or method that accepts a
// context.Context takes it as the first parameter (receivers excluded).
// Unexported functions are left alone — closures and internal helpers
// sometimes thread context late for readability.
func runCtxFirst(p *Pass) []Diagnostic {
	var ds []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() || fd.Type.Params == nil {
				continue
			}
			idx := 0
			for _, field := range fd.Type.Params.List {
				width := len(field.Names)
				if width == 0 {
					width = 1 // unnamed parameter still occupies a position
				}
				if idx > 0 && isContextType(p, field.Type) {
					ds = append(ds, p.Diag(field.Pos(),
						"exported %s takes context.Context as parameter %d; context must come first",
						fd.Name.Name, idx+1))
				}
				idx += width
			}
		}
	}
	return ds
}

// isContextType reports whether the type expression denotes context.Context.
func isContextType(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
