package lint

// dataflow.go is the second half of the analysis substrate: a generic
// forward worklist solver over a CFG, plus the per-package static call
// graph the reachability-style analyzers (noblock, maporder) chase edges
// through. Everything here is intra-package by design — the lint suite
// checks the repository's own invariants, and every sink it cares about is
// at most a few same-package calls away.

import (
	"go/ast"
	"go/types"
)

// Forward runs a forward may-dataflow analysis over c to fixpoint.
//
//   - entry produces the state on function entry.
//   - transfer applies one block's effect and returns the out-state; it must
//     not mutate its input.
//   - join merges two predecessor out-states (union for may-analyses,
//     intersection for must-analyses) and reports whether the result differs
//     from the first argument, so the solver knows when to requeue.
//
// It returns the in-state of every block, indexed like c.Blocks. States for
// unreachable blocks are the zero value of S.
func Forward[S any](c *CFG, entry func() S, transfer func(*Block, S) S, join func(S, S) (S, bool)) []S {
	in := make([]S, len(c.Blocks))
	seeded := make([]bool, len(c.Blocks))
	if len(c.Blocks) == 0 {
		return in
	}
	in[0] = entry()
	seeded[0] = true
	work := []*Block{c.Blocks[0]}
	queued := make([]bool, len(c.Blocks))
	queued[0] = true
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk.Index] = false
		out := transfer(blk, in[blk.Index])
		for _, s := range blk.Succs {
			var changed bool
			if !seeded[s.Index] {
				in[s.Index] = out
				seeded[s.Index] = true
				changed = true
			} else {
				in[s.Index], changed = join(in[s.Index], out)
			}
			if changed && !queued[s.Index] {
				queued[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return in
}

// CallGraph indexes a package's function declarations so analyzers can
// resolve a statically-known callee to its body and chase same-package
// call chains.
type CallGraph struct {
	pass  *Pass
	decls map[*types.Func]*ast.FuncDecl
}

// NewCallGraph builds the declaration index for the pass's package.
func NewCallGraph(p *Pass) *CallGraph {
	g := &CallGraph{pass: p, decls: make(map[*types.Func]*ast.FuncDecl)}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				g.decls[fn] = fd
			}
		}
	}
	return g
}

// DeclOf returns the package-local declaration of a callee resolved from a
// call expression, or nil when the callee is not a statically-known
// function declared (with a body) in this package.
func (g *CallGraph) DeclOf(call *ast.CallExpr) *ast.FuncDecl {
	fn := g.pass.PkgFunc(call)
	if fn == nil {
		return nil
	}
	return g.decls[fn]
}

// funcKey identifies a visited function body during reachability walks:
// either a declared function or a function literal.
type funcKey struct {
	decl *ast.FuncDecl
	lit  *ast.FuncLit
}

// ReachWalk visits every node executable from root (a function body),
// following same-package static calls transitively and descending into
// function literals created along the way. Only CFG-reachable blocks are
// walked, so code behind an unconditional return never reaches visit.
// visit receives each node and the position of the call-chain origin that
// led into the current function (root's own nodes get depth 0); returning
// false from visit stops descending into that node's subtree but not the
// walk as a whole.
func (g *CallGraph) ReachWalk(root *ast.BlockStmt, visit func(n ast.Node, depth int) bool) {
	seen := make(map[funcKey]bool)
	var walkBody func(body *ast.BlockStmt, depth int)
	walkBody = func(body *ast.BlockStmt, depth int) {
		cfg := BuildCFG(body)
		for _, blk := range cfg.Reachable() {
			for _, n := range blk.Nodes {
				ast.Inspect(n, func(sub ast.Node) bool {
					if sub == nil {
						return true
					}
					if !visit(sub, depth) {
						return false
					}
					switch sub := sub.(type) {
					case *ast.FuncLit:
						// A literal built on a reachable path is
						// conservatively assumed to run.
						k := funcKey{lit: sub}
						if !seen[k] {
							seen[k] = true
							walkBody(sub.Body, depth+1)
						}
						return false
					case *ast.CallExpr:
						if fd := g.DeclOf(sub); fd != nil {
							k := funcKey{decl: fd}
							if !seen[k] {
								seen[k] = true
								walkBody(fd.Body, depth+1)
							}
						}
					}
					return true
				})
			}
		}
	}
	walkBody(root, 0)
}
