package lint

// noblock enforces the run-to-completion contract of the simnet event core:
// callbacks registered on the fabric's task queue (taskQueue.push) or as
// stream readiness handlers (Stream.SetNotify) execute inline on whichever
// goroutine next pumps the queue, so anything that blocks in one — a
// channel operation, a mutex, a blocking Stream.Read/Write, an io.Copy over
// a net.Conn — parks the entire scheduler. Only the non-blocking readiness
// APIs (TryRead, TryWrite, SetNotify) are legal inside them. The analyzer
// finds every registration site, then chases same-package static calls and
// function literals from the handler body (CFG-reachable code only, via
// ReachWalk) looking for blocking operations.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// noblockScoped limits the analyzer to the event-core packages plus its own
// fixtures; registration APIs elsewhere (none today) are out of contract.
func noblockScoped(relFile string) bool {
	return strings.HasPrefix(relFile, "internal/simnet/") ||
		strings.HasPrefix(relFile, "internal/proxynet/") ||
		strings.Contains(relFile, "testdata/src/noblock/")
}

// runNoBlock locates handler registrations and diagnoses blocking
// operations reachable from their bodies.
func runNoBlock(p *Pass) []Diagnostic {
	g := NewCallGraph(p)
	var ds []Diagnostic
	// reported dedupes sinks reachable from more than one registration:
	// the first (file-order) root wins.
	reported := make(map[token.Pos]bool)
	for _, f := range p.Files {
		if !noblockScoped(p.FileRel(f)) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			body, ok := noblockRoot(p, g, call)
			if !ok {
				return true
			}
			file, line, _ := p.Rel(call.Pos())
			g.ReachWalk(body, func(n ast.Node, depth int) bool {
				if _, ok := n.(*ast.GoStmt); ok {
					// A spawned goroutine may block; nogo already demands a
					// waiver for its existence.
					return false
				}
				kind, pos, ok := noblockSink(p, n)
				if !ok || reported[pos] {
					return true
				}
				reported[pos] = true
				ds = append(ds, p.Diag(pos,
					"%s inside a run-to-completion callback (registered at %s:%d); only TryRead/TryWrite/SetNotify readiness APIs may run here",
					kind, file, line))
				return true
			})
			return true
		})
	}
	return ds
}

// noblockRoot reports whether call registers a run-to-completion callback —
// Stream.SetNotify(fn) or taskQueue.push(fn) — and resolves the callback's
// body. Dynamic callbacks (interface-valued, cross-package) resolve to
// nothing and are skipped: the walk is intra-package by design.
func noblockRoot(p *Pass, g *CallGraph, call *ast.CallExpr) (*ast.BlockStmt, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return nil, false
	}
	switch sel.Sel.Name {
	case "SetNotify":
		if recvTypeName(p, sel.X) != "Stream" {
			return nil, false
		}
	case "push":
		if recvTypeName(p, sel.X) != "taskQueue" {
			return nil, false
		}
	default:
		return nil, false
	}
	switch arg := ast.Unparen(call.Args[0]).(type) {
	case *ast.FuncLit:
		return arg.Body, true
	case *ast.Ident, *ast.SelectorExpr:
		var id *ast.Ident
		if s, ok := arg.(*ast.SelectorExpr); ok {
			id = s.Sel
		} else {
			id = arg.(*ast.Ident)
		}
		if fn, ok := p.Info.Uses[id].(*types.Func); ok {
			if fd := g.decls[fn]; fd != nil {
				return fd.Body, true
			}
		}
	}
	return nil, false
}

// recvTypeName returns the name of the named type (pointers stripped) of an
// expression, or "".
func recvTypeName(p *Pass, x ast.Expr) string {
	tv, ok := p.Info.Types[x]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// noblockSink classifies one node as a blocking operation.
func noblockSink(p *Pass, n ast.Node) (kind string, pos token.Pos, ok bool) {
	switch n := n.(type) {
	case *ast.SendStmt:
		return "channel send", n.Pos(), true
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			return "channel receive", n.Pos(), true
		}
	case *ast.CallExpr:
		fn := p.PkgFunc(n)
		if fn == nil || fn.Pkg() == nil {
			return "", 0, false
		}
		name := fn.Name()
		sig, _ := fn.Type().(*types.Signature)
		switch fn.Pkg().Path() {
		case "sync":
			switch name {
			case "Lock", "RLock":
				return "mutex " + name, n.Pos(), true
			case "Wait":
				return recvName(sig) + ".Wait", n.Pos(), true
			}
			return "", 0, false
		case "time":
			if name == "Sleep" {
				return "time.Sleep", n.Pos(), true
			}
			return "", 0, false
		case "io":
			switch name {
			case "Copy", "CopyBuffer", "CopyN", "ReadFull", "ReadAll":
				return "io." + name, n.Pos(), true
			}
		}
		if name != "Read" && name != "Write" {
			return "", 0, false
		}
		if sig == nil || sig.Recv() == nil {
			return "", 0, false
		}
		rt := sig.Recv().Type()
		if types.IsInterface(rt) {
			// net.Conn, io.Reader, io.Writer, ... — any interface
			// Read/Write may block on a fabric stream underneath.
			return "interface " + recvName(sig) + "." + name, n.Pos(), true
		}
		if rn := recvName(sig); rn == "Stream" {
			return "Stream." + name + " (use Try" + name + ")", n.Pos(), true
		}
	}
	return "", 0, false
}

// recvName names a method's receiver type (pointers stripped), or "func"
// when there is none.
func recvName(sig *types.Signature) string {
	if sig == nil || sig.Recv() == nil {
		return "func"
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return "func"
}
