package lint

import (
	"go/ast"
	"sort"
	"strings"
)

// WaiverAnalyzer is the pseudo-analyzer name under which malformed waiver
// comments are reported. It is always on: a waiver that cannot suppress
// anything must never look like it does.
const WaiverAnalyzer = "waiver"

// UnusedWaiverAnalyzer is the pseudo-analyzer name under which dead
// waivers are reported: a well-formed //tftlint:ignore whose named
// analyzers all ran and which suppressed nothing no longer documents a
// real exception and must be deleted.
const UnusedWaiverAnalyzer = "waiverunused"

// waiver is one well-formed //tftlint:ignore comment.
type waiver struct {
	file      string
	line, col int
	analyzers map[string]bool
	reason    string
	used      bool
}

// suppresses reports whether w covers d: same file, the comment's own line
// or the line directly below it (so both trailing and leading placements
// work), and a matching analyzer name.
func (w *waiver) suppresses(d Diagnostic) bool {
	return w.file == d.File && (d.Line == w.line || d.Line == w.line+1) && w.analyzers[d.Analyzer]
}

// names returns the waiver's analyzer list, sorted.
func (w *waiver) names() []string {
	ns := make([]string, 0, len(w.analyzers))
	for n := range w.analyzers {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}

// collectWaivers scans a package's comments for tftlint directives. It
// returns the effective waivers plus a diagnostic for every malformed one:
// a missing "-- reason", an empty analyzer list, or an analyzer name not in
// known. Malformed waivers suppress nothing. The //tftlint:hotpath
// annotation (read by the hotalloc analyzer) is recognized and skipped.
func collectWaivers(p *Pass, known map[string]bool) ([]*waiver, []Diagnostic) {
	var ws []*waiver
	var ds []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//tftlint:")
				if !ok {
					continue
				}
				if rest == "hotpath" || strings.HasPrefix(rest, "hotpath ") {
					continue
				}
				w, msg := parseWaiver(rest, known)
				if msg != "" {
					d := p.Diag(c.Pos(), "%s", msg)
					d.Analyzer = WaiverAnalyzer
					ds = append(ds, d)
					continue
				}
				w.file, w.line, w.col = p.Rel(c.Pos())
				ws = append(ws, w)
			}
		}
	}
	return ws, ds
}

// parseWaiver validates the directive text after "//tftlint:". It returns
// either a waiver or a malformed-waiver message.
func parseWaiver(rest string, known map[string]bool) (*waiver, string) {
	args, ok := strings.CutPrefix(rest, "ignore")
	if !ok {
		verb := rest
		if i := strings.IndexAny(verb, " \t"); i >= 0 {
			verb = verb[:i]
		}
		return nil, "unknown tftlint directive \"" + verb + "\" (only \"ignore\" and \"hotpath\" exist)"
	}
	names, reason, ok := strings.Cut(args, "--")
	if !ok || strings.TrimSpace(reason) == "" {
		return nil, "waiver without a reason; write //tftlint:ignore <analyzer> -- <reason>"
	}
	set := make(map[string]bool)
	for _, n := range strings.FieldsFunc(names, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		if !known[n] {
			return nil, "waiver names unknown analyzer \"" + n + "\""
		}
		set[n] = true
	}
	if len(set) == 0 {
		return nil, "waiver without analyzer names; write //tftlint:ignore <analyzer> -- <reason>"
	}
	return &waiver{analyzers: set, reason: strings.TrimSpace(reason)}, ""
}

// lintPackage runs the analyzers over one loaded package, applying and
// auditing waivers. A well-formed waiver whose named analyzers all ran yet
// suppressed no finding is itself diagnosed (waiverunused): dead waivers
// are documentation of exceptions that no longer exist.
func (l *Loader) lintPackage(pkg *Package, analyzers []*Analyzer, known map[string]bool) ([]Diagnostic, []*waiver) {
	pass := &Pass{
		Fset:   l.Fset,
		Files:  pkg.Files,
		Pkg:    pkg.Pkg,
		Info:   pkg.Info,
		Path:   pkg.Path,
		RelDir: pkg.RelDir,
		root:   l.Root,
	}
	waivers, out := collectWaivers(pass, known)
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
		for _, d := range a.Run(pass) {
			d.Analyzer = a.Name
			if waived(d, waivers) {
				continue
			}
			out = append(out, d)
		}
	}
	for _, w := range waivers {
		if w.used {
			continue
		}
		// Only audit a waiver when every analyzer it names actually ran;
		// under -only/-skip a silent waiver may still be load-bearing.
		eligible := true
		for n := range w.analyzers {
			if !ran[n] {
				eligible = false
				break
			}
		}
		if !eligible {
			continue
		}
		out = append(out, Diagnostic{
			File: w.file, Line: w.line, Col: w.col,
			Analyzer: UnusedWaiverAnalyzer,
			Message:  "waiver for " + strings.Join(w.names(), ", ") + " suppresses nothing; delete it",
		})
	}
	return out, waivers
}

// Lint loads every directory, runs the analyzers over each package, applies
// waivers, and returns the findings in deterministic order. Packages are
// loaded and analyzed concurrently (bounded by GOMAXPROCS); output order is
// independent of scheduling.
func (l *Loader) Lint(dirs []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	ds, _, err := l.lint(dirs, analyzers)
	return ds, err
}

// WaiverInfo describes one well-formed waiver for the -waivers listing.
type WaiverInfo struct {
	File      string   `json:"file"`
	Line      int      `json:"line"`
	Col       int      `json:"col"`
	Analyzers []string `json:"analyzers"`
	Reason    string   `json:"reason"`
	// Used reports whether the waiver suppressed at least one finding in
	// this run.
	Used bool `json:"used"`
}

// Waivers runs the analyzers like Lint but returns the waiver inventory
// (file-sorted) instead of the findings.
func (l *Loader) Waivers(dirs []string, analyzers []*Analyzer) ([]WaiverInfo, error) {
	_, ws, err := l.lint(dirs, analyzers)
	if err != nil {
		return nil, err
	}
	infos := make([]WaiverInfo, 0, len(ws))
	for _, w := range ws {
		infos = append(infos, WaiverInfo{
			File: w.file, Line: w.line, Col: w.col,
			Analyzers: w.names(), Reason: w.reason, Used: w.used,
		})
	}
	sort.Slice(infos, func(i, j int) bool {
		a, b := infos[i], infos[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	return infos, nil
}

func waived(d Diagnostic, ws []*waiver) bool {
	for _, w := range ws {
		if w.suppresses(d) {
			w.used = true
			return true
		}
	}
	return false
}

// identObj resolves an identifier to its object, looking in both the Uses
// and Defs maps.
func identObj(p *Pass, id *ast.Ident) any {
	if o := p.Info.Uses[id]; o != nil {
		return o
	}
	if o := p.Info.Defs[id]; o != nil {
		return o
	}
	return nil
}
