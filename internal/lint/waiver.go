package lint

import (
	"go/ast"
	"strings"
)

// WaiverAnalyzer is the pseudo-analyzer name under which malformed waiver
// comments are reported. It is always on: a waiver that cannot suppress
// anything must never look like it does.
const WaiverAnalyzer = "waiver"

// waiver is one well-formed //tftlint:ignore comment.
type waiver struct {
	file      string
	line      int
	analyzers map[string]bool
}

// suppresses reports whether w covers d: same file, the comment's own line
// or the line directly below it (so both trailing and leading placements
// work), and a matching analyzer name.
func (w waiver) suppresses(d Diagnostic) bool {
	return w.file == d.File && (d.Line == w.line || d.Line == w.line+1) && w.analyzers[d.Analyzer]
}

// collectWaivers scans a package's comments for tftlint directives. It
// returns the effective waivers plus a diagnostic for every malformed one:
// a missing "-- reason", an empty analyzer list, or an analyzer name not in
// known. Malformed waivers suppress nothing.
func collectWaivers(p *Pass, known map[string]bool) ([]waiver, []Diagnostic) {
	var ws []waiver
	var ds []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//tftlint:")
				if !ok {
					continue
				}
				w, msg := parseWaiver(rest, known)
				if msg != "" {
					d := p.Diag(c.Pos(), "%s", msg)
					d.Analyzer = WaiverAnalyzer
					ds = append(ds, d)
					continue
				}
				w.file, w.line, _ = p.Rel(c.Pos())
				ws = append(ws, w)
			}
		}
	}
	return ws, ds
}

// parseWaiver validates the directive text after "//tftlint:". It returns
// either a waiver or a malformed-waiver message.
func parseWaiver(rest string, known map[string]bool) (waiver, string) {
	args, ok := strings.CutPrefix(rest, "ignore")
	if !ok {
		verb := rest
		if i := strings.IndexAny(verb, " \t"); i >= 0 {
			verb = verb[:i]
		}
		return waiver{}, "unknown tftlint directive \"" + verb + "\" (only \"ignore\" exists)"
	}
	names, reason, ok := strings.Cut(args, "--")
	if !ok || strings.TrimSpace(reason) == "" {
		return waiver{}, "waiver without a reason; write //tftlint:ignore <analyzer> -- <reason>"
	}
	set := make(map[string]bool)
	for _, n := range strings.FieldsFunc(names, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		if !known[n] {
			return waiver{}, "waiver names unknown analyzer \"" + n + "\""
		}
		set[n] = true
	}
	if len(set) == 0 {
		return waiver{}, "waiver without analyzer names; write //tftlint:ignore <analyzer> -- <reason>"
	}
	return waiver{analyzers: set}, ""
}

// Lint loads every directory, runs the analyzers over each package, applies
// waivers, and returns the findings in deterministic order.
func (l *Loader) Lint(dirs []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	var all []Diagnostic
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pass := &Pass{
			Fset:   l.Fset,
			Files:  pkg.Files,
			Pkg:    pkg.Pkg,
			Info:   pkg.Info,
			Path:   pkg.Path,
			RelDir: pkg.RelDir,
			root:   l.Root,
		}
		waivers, malformed := collectWaivers(pass, known)
		all = append(all, malformed...)
		for _, a := range analyzers {
			for _, d := range a.Run(pass) {
				d.Analyzer = a.Name
				if waived(d, waivers) {
					continue
				}
				all = append(all, d)
			}
		}
	}
	Sort(all)
	return all, nil
}

func waived(d Diagnostic, ws []waiver) bool {
	for _, w := range ws {
		if w.suppresses(d) {
			return true
		}
	}
	return false
}

// identObj resolves an identifier to its object, looking in both the Uses
// and Defs maps.
func identObj(p *Pass, id *ast.Ident) any {
	if o := p.Info.Uses[id]; o != nil {
		return o
	}
	if o := p.Info.Defs[id]; o != nil {
		return o
	}
	return nil
}
