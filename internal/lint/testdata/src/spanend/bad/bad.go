// Package bad leaks spans every way the spanend analyzer understands.
package bad

import (
	"context"

	"github.com/tftproject/tft/internal/trace"
)

// Dropped discards the started span outright.
func Dropped(t *trace.Tracer) {
	t.StartRoot("dropped", trace.KindClient)
}

// Blank assigns the span to the blank identifier.
func Blank(t *trace.Tracer) {
	_ = t.StartRoot("blank", trace.KindClient)
}

// Leaked decorates the span but never ends it.
func Leaked(ctx context.Context, t *trace.Tracer) {
	span := t.StartChild(trace.FromContext(ctx), "leaked", trace.KindProxy)
	span.SetError("boom")
}
