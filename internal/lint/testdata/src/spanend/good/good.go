// Package good closes or hands off every span it starts.
package good

import (
	"context"

	"github.com/tftproject/tft/internal/trace"
)

// Ended defers the close.
func Ended(t *trace.Tracer) {
	span := t.StartRoot("ok", trace.KindClient)
	defer span.End()
}

// Branched ends the span on both paths.
func Branched(ctx context.Context, t *trace.Tracer, fail bool) {
	span := t.StartChild(trace.FromContext(ctx), "branch", trace.KindProxy)
	if fail {
		span.SetError("boom")
		span.End()
		return
	}
	span.End()
}

// Handed transfers ownership to the caller.
func Handed(t *trace.Tracer) *trace.Span {
	return t.StartRoot("handed", trace.KindClient)
}

// Closure ends the span from a captured function literal.
func Closure(t *trace.Tracer) func() {
	span := t.StartRoot("closure", trace.KindClient)
	return func() { span.End() }
}
