// Package bad acquires two mutexes in opposite orders on two code paths
// (a lock-order cycle) and makes an opaque dynamic call inside a critical
// section; both must diagnose.
package bad

import "sync"

// A and B each guard part of the fixture's state.
type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

// Forward takes A.mu then B.mu.
func Forward(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

// Backward takes B.mu then A.mu — the reversed edge that closes the cycle.
func Backward(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

// Opaque calls through a function value while holding A.mu: the
// acquisition graph cannot see past it.
func Opaque(a *A, f func()) {
	a.mu.Lock()
	f()
	a.mu.Unlock()
}
