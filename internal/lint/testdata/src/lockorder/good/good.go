// Package good keeps a single global acquisition order (A.mu before B.mu
// everywhere, including through a same-package call) and hoists dynamic
// calls out of critical sections.
package good

import "sync"

// A and B each guard part of the fixture's state.
type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

// Forward takes A.mu then B.mu.
func Forward(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

// Nested reaches the same A.mu -> B.mu edge through a call; consistent
// order, no cycle.
func Nested(a *A, b *B) {
	a.mu.Lock()
	lockB(b)
	a.mu.Unlock()
}

func lockB(b *B) {
	b.mu.Lock()
	b.mu.Unlock()
}

// Hoisted releases A.mu before the opaque call, then retakes it: the
// dynamic call happens outside every critical section.
func Hoisted(a *A, f func()) {
	a.mu.Lock()
	a.mu.Unlock()
	f()
	a.mu.Lock()
	a.mu.Unlock()
}
