// Package good follows the convention: exported functions take their
// context first; unexported helpers may order parameters freely.
package good

import "context"

// Fetch takes ctx first.
func Fetch(ctx context.Context, name string) error {
	_ = name
	return ctx.Err()
}

// Client is a method receiver for the analyzer's method case.
type Client struct{}

// Do takes ctx first after the receiver.
func (Client) Do(ctx context.Context, n int) error {
	_ = n
	return ctx.Err()
}

// retryLater is unexported, so late context placement is tolerated.
func retryLater(n int, ctx context.Context) error {
	_ = n
	return ctx.Err()
}
