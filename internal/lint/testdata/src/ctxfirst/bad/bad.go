// Package bad buries context.Context behind other parameters.
package bad

import "context"

// Fetch takes ctx second.
func Fetch(name string, ctx context.Context) error {
	return ctx.Err()
}

// Client is a method receiver for the analyzer's method case.
type Client struct{}

// Do takes ctx after the payload.
func (Client) Do(n int, ctx context.Context) error {
	_ = n
	return ctx.Err()
}
