// Package bad calls package-level math/rand/v2 functions, which draw from
// the process-global, randomly-seeded source — poison for a fixed-seed
// crawl.
package bad

import "math/rand/v2"

// Pick indexes via the global RNG.
func Pick(xs []int) int {
	return xs[rand.IntN(len(xs))]
}

// Jitter samples the global RNG.
func Jitter() float64 {
	return rand.Float64()
}

// Shuffled permutes via the global RNG.
func Shuffled(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
