// Package good threads seeded RNGs the way the repository does: rand.Rand
// values built by simnet.NewRand/SubRand and passed explicitly.
package good

import (
	"math/rand/v2"

	"github.com/tftproject/tft/internal/simnet"
)

// Pick indexes via an injected seeded RNG; methods on *rand.Rand are fine.
func Pick(rng *rand.Rand, xs []int) int {
	return xs[rng.IntN(len(xs))]
}

// Fresh builds a deterministic RNG — the constructors are exactly how the
// seeded world RNG comes to be, so they stay legal.
func Fresh(seed uint64) *rand.Rand {
	if seed == 0 {
		return rand.New(rand.NewPCG(1, 2))
	}
	return simnet.NewRand(seed)
}
