// Package bad spawns goroutines inside the event-core scope (this fixture
// path counts as in-scope) without waivers: every go statement must
// diagnose, whatever it runs.
package bad

// Serve spawns a goroutine per accepted connection — the dispatch pattern
// the event core retired.
func Serve(accept func() func()) {
	for {
		h := accept()
		if h == nil {
			return
		}
		go h()
	}
}

// Relay spawns one goroutine per direction.
func Relay(c2s, s2c func()) {
	go c2s()
	go func() {
		s2c()
	}()
}
