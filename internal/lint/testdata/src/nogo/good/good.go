// Package good shows the two legal shapes under the nogo analyzer: no
// goroutines at all (callback-driven state machines), and a goroutine that
// argues for itself with a reasoned waiver.
package good

// Pump drives work from a run queue instead of spawning; run-to-completion
// needs no go statement.
func Pump(next func() func()) {
	for task := next(); task != nil; task = next() {
		task()
	}
}

// Stream keeps a goroutine by contract, with the reason on record.
func Stream(h func()) {
	//tftlint:ignore nogo -- server-talks-first protocols deadlock on the dialer's event loop and keep a goroutine by contract
	go h()
}
