// Package bad takes pooled buffers without returning them.
package bad

import (
	"bytes"

	"github.com/tftproject/tft/internal/httpwire"
)

// getCopyBuf and putCopyBuf mirror proxynet's package-local pool helpers;
// the analyzer matches the unexported pair by name in any package.
func getCopyBuf() *[]byte {
	b := make([]byte, 32<<10)
	return &b
}

func putCopyBuf(*[]byte) {}

// Leak borrows a pooled reader and never puts it back.
func Leak(src *bytes.Buffer) {
	br := httpwire.GetReader(src)
	br.ReadByte()
}

// Dropped does not even hold the pooled reader in a local.
func Dropped(src *bytes.Buffer) {
	httpwire.GetReader(src)
}

// LeakLocal loses a package-local pooled buffer.
func LeakLocal() int {
	buf := getCopyBuf()
	return len(*buf)
}
