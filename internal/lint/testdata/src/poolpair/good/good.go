// Package good pairs every pooled Get with its Put in-function, the PR 3
// discipline: pool only where the lifetime ends in-function.
package good

import (
	"bytes"

	"github.com/tftproject/tft/internal/httpwire"
)

func getCopyBuf() *[]byte {
	b := make([]byte, 32<<10)
	return &b
}

func putCopyBuf(*[]byte) {}

// Paired returns the reader on the spot once parsing is done.
func Paired(src *bytes.Buffer) byte {
	br := httpwire.GetReader(src)
	b, _ := br.ReadByte()
	httpwire.PutReader(br)
	return b
}

// PairedDefer returns the buffer via defer, error paths included.
func PairedDefer() int {
	buf := getCopyBuf()
	defer putCopyBuf(buf)
	return len(*buf)
}
