// Package good carries one waiver that genuinely suppresses a finding:
// used waivers are not flagged, and the suppressed diagnostic stays
// suppressed, so this package lints clean.
package good

import "time"

// Epoch reads the wall clock, legitimately waived for this fixture.
func Epoch() time.Time {
	//tftlint:ignore simclock -- fixture: demonstrates a used waiver
	return time.Now()
}
