// Package bad carries waivers that suppress nothing: every analyzer they
// name runs over this package and finds no matching diagnostic on the
// waived line, so each waiver must be flagged as unused.
package bad

// answer is an ordinary constant; the waiver above it is dead.
//
//tftlint:ignore simclock -- stale: this line stopped calling time.Now long ago
const answer = 42

// double doubles n; nothing here ranges a map.
func double(n int) int {
	//tftlint:ignore maporder,seededrand -- stale: the map range this guarded is gone
	return n * 2
}

var _ = double(answer)
