// Package malformed carries broken waivers. Each one is itself a
// diagnostic, and the finding it pretended to cover still fires.
package malformed

import "time"

// NoReason waives without the mandatory "-- reason".
func NoReason() time.Time {
	//tftlint:ignore simclock
	return time.Now()
}

// UnknownAnalyzer waives an analyzer that does not exist.
func UnknownAnalyzer() time.Time {
	//tftlint:ignore clocksim -- name is wrong
	return time.Now()
}

// BadVerb uses a directive other than ignore.
func BadVerb() time.Time {
	//tftlint:allow simclock -- no such verb
	return time.Now()
}
