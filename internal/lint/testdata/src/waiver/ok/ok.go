// Package ok demonstrates well-formed waivers: analyzer name plus a
// mandatory reason, on the finding's line or the line above.
package ok

import "time"

// Stamp is wall-clock on purpose and says so.
func Stamp() time.Time {
	//tftlint:ignore simclock -- fixture: wall-clock wanted here, waiver on the line above
	return time.Now()
}

// Delay waives with a trailing comment on the finding's own line.
func Delay() {
	time.Sleep(time.Millisecond) //tftlint:ignore simclock -- fixture: trailing waiver on the same line
}
