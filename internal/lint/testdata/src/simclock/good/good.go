// Package good shows the injected-clock idiom the simclock analyzer wants:
// all time flows through a simnet.Clock handed in by the caller.
package good

import (
	"time"

	"github.com/tftproject/tft/internal/simnet"
)

// Wait blocks for d on the injected clock.
func Wait(clock simnet.Clock, d time.Duration) time.Time {
	done := make(chan struct{})
	t := clock.AfterFunc(d, func() { close(done) })
	defer t.Stop()
	<-done
	return clock.Now()
}

// Deadline computes an absolute instant from the injected clock; duration
// arithmetic and the zero time stay legal.
func Deadline(clock simnet.Clock, timeout time.Duration) time.Time {
	if timeout <= 0 {
		return time.Time{}
	}
	return clock.Now().Add(timeout)
}
