// Package bad exercises every wall-clock read the simclock analyzer bans.
package bad

import "time"

// Elapsed reads the ambient clock four ways.
func Elapsed() time.Duration {
	start := time.Now()
	time.Sleep(time.Millisecond)
	<-time.After(time.Millisecond)
	_ = time.Until(start)
	return time.Since(start)
}

// Timers constructs every wall-clock timer flavour.
func Timers() {
	t := time.NewTimer(time.Second)
	t.Stop()
	k := time.NewTicker(time.Second)
	k.Stop()
	_ = time.Tick(time.Second)
	a := time.AfterFunc(time.Second, func() {})
	a.Stop()
}

// Timebase passes the wall clock as a function value — just as banned as
// calling it.
func Timebase() func() time.Time {
	return time.Now
}
