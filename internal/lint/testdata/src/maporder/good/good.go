// Package good shows the legal shapes: sort the keys first, keep the sink
// outside the loop, or do order-insensitive work inside it.
package good

import (
	"fmt"
	"sort"
)

// SortedKeys is the repository idiom: extract, sort, range the slice.
func SortedKeys(counts map[string]int) {
	hosts := make([]string, 0, len(counts))
	for host := range counts {
		hosts = append(hosts, host)
	}
	sort.Strings(hosts)
	for _, host := range hosts {
		fmt.Printf("%s %d\n", host, counts[host])
	}
}

// SinkAfterLoop aggregates inside the loop and prints once after it.
func SinkAfterLoop(counts map[string]int) {
	total := 0
	for _, n := range counts {
		total += n
	}
	fmt.Println(total)
}

// SliceRange is not a map range at all.
func SliceRange(hosts []string) {
	for _, host := range hosts {
		fmt.Println(host)
	}
}
