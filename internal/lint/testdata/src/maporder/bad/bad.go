// Package bad ranges over maps whose bodies reach order-sensitive sinks:
// prints, builder appends, Table rows — directly or through a same-package
// call. Every map range here must diagnose at the range statement.
package bad

import (
	"fmt"
	"strings"
)

// Table mimics the report table the real sinks append to.
type Table struct{ Rows [][]string }

// PrintDirect prints one line per map entry in iteration order.
func PrintDirect(counts map[string]int) {
	for host, n := range counts {
		fmt.Printf("%s %d\n", host, n)
	}
}

// BuildString accumulates map entries into a strings.Builder.
func BuildString(counts map[string]int) string {
	var b strings.Builder
	for host := range counts {
		b.WriteString(host)
	}
	return b.String()
}

// AppendRows lands map entries in a Table in iteration order.
func AppendRows(t *Table, counts map[string]int) {
	for host, n := range counts {
		t.Rows = append(t.Rows, []string{host, fmt.Sprint(n)})
	}
}

// ThroughCall reaches the print through a same-package helper.
func ThroughCall(counts map[string]int) {
	for host := range counts {
		emit(host)
	}
}

func emit(host string) {
	fmt.Println(host)
}
