// Package bad registers run-to-completion callbacks (this fixture path is
// in the noblock scope) that perform blocking operations: every channel
// op, mutex Lock, and blocking Stream read reachable from a SetNotify or
// taskQueue callback must diagnose, including through same-package calls.
package bad

import "sync"

// Stream mimics the fabric stream's readiness API surface.
type Stream struct {
	mu     sync.Mutex
	notify func()
	data   chan byte
}

// SetNotify arms the readiness callback — a noblock registration root.
func (s *Stream) SetNotify(fn func()) { s.notify = fn }

// Read blocks until a byte arrives.
func (s *Stream) Read(p []byte) (int, error) {
	p[0] = <-s.data
	return 1, nil
}

// TryRead is the non-blocking variant.
func (s *Stream) TryRead(p []byte) (int, error) { return 0, nil }

// taskQueue mimics the fabric's run-to-completion queue.
type taskQueue struct{ q []func() }

// push enqueues a callback — the other registration root.
func (t *taskQueue) push(fn func()) { t.q = append(t.q, fn) }

// ArmDirect blocks directly inside the callback body.
func ArmDirect(s *Stream, ready chan struct{}) {
	s.SetNotify(func() {
		<-ready     // channel receive
		s.mu.Lock() // mutex Lock
		s.mu.Unlock()
		var buf [1]byte
		s.Read(buf[:]) // blocking Stream.Read
	})
}

// ArmThroughCall reaches the sink through a same-package static call.
func ArmThroughCall(t *taskQueue, ready chan struct{}) {
	t.push(func() { drain(ready) })
}

func drain(ready chan struct{}) {
	ready <- struct{}{} // channel send, reached from the pushed callback
}

// armNamed registers a named package function rather than a literal.
func armNamed(s *Stream, t *taskQueue) {
	t.push(blocker)
	_ = s
}

var global sync.Mutex

func blocker() {
	global.Lock() // mutex Lock inside a pushed named function
	global.Unlock()
}
