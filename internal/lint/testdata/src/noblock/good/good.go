// Package good registers run-to-completion callbacks that stay on the
// readiness API: TryRead/TryWrite, goroutine hand-offs (nogo's concern,
// not noblock's), and blocking code the CFG proves unreachable are all
// legal.
package good

import "sync"

// Stream mimics the fabric stream's readiness API surface.
type Stream struct {
	notify func()
	data   chan byte
}

// SetNotify arms the readiness callback.
func (s *Stream) SetNotify(fn func()) { s.notify = fn }

// TryRead never blocks.
func (s *Stream) TryRead(p []byte) (int, error) { return 0, nil }

// TryWrite never blocks.
func (s *Stream) TryWrite(p []byte) (int, error) { return len(p), nil }

// taskQueue mimics the fabric's run-to-completion queue.
type taskQueue struct{ q []func() }

func (t *taskQueue) push(fn func()) { t.q = append(t.q, fn) }

// Arm drives the state machine with the non-blocking API only.
func Arm(s *Stream) {
	s.SetNotify(func() {
		var buf [16]byte
		n, _ := s.TryRead(buf[:])
		if n > 0 {
			s.TryWrite(buf[:n])
		}
	})
}

// ArmDetached hands blocking work to a goroutine: its body may block, and
// policing goroutine existence is nogo's job, not noblock's.
func ArmDetached(s *Stream, mu *sync.Mutex) {
	s.SetNotify(func() {
		go func() {
			mu.Lock()
			defer mu.Unlock()
			<-s.data
		}()
	})
}

// ArmUnreachable returns before the blocking send: the CFG proves the sink
// dead, so it must not diagnose.
func ArmUnreachable(t *taskQueue, ready chan struct{}) {
	t.push(func() {
		return
		ready <- struct{}{}
	})
}

// NotACallback blocks in ordinary code: registration roots only.
func NotACallback(ready chan struct{}) {
	<-ready
}
