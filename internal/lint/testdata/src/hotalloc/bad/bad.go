// Package bad annotates hot paths that allocate: fmt calls, string
// concatenation in loops, interface boxing, and escaping composite
// literals must all diagnose — but only inside annotated functions.
package bad

import "fmt"

// Record is boxed and escaped by the bad paths below.
type Record struct{ N int }

func sink(v any) { _ = v }

// Format allocates with fmt on an annotated path.
//
//tftlint:hotpath
func Format(host string, port int) string {
	return fmt.Sprintf("%s:%d", host, port)
}

// Join concatenates strings inside a loop.
//
//tftlint:hotpath
func Join(parts []string) string {
	out := ""
	for _, p := range parts {
		out += p
	}
	return out
}

// Box passes an integer through an any parameter.
//
//tftlint:hotpath
func Box(n int) {
	sink(n)
}

// Escape returns a pointer to a composite literal.
//
//tftlint:hotpath
func Escape(n int) *Record {
	return &Record{N: n}
}

// Assign stores a concrete value into an interface variable.
//
//tftlint:hotpath
func Assign(n int) {
	var v any
	v = n
	_ = v
}
