// Package good shows the allocation-free shapes hotalloc asks for — and
// that unannotated functions may allocate freely.
package good

import (
	"fmt"
	"strconv"
)

// Record is returned by pointer from a cold constructor.
type Record struct{ N int }

// Format builds host:port with strconv appends into a stack buffer.
//
//tftlint:hotpath
func Format(host string, port int) string {
	b := make([]byte, 0, 64)
	b = append(b, host...)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(port), 10)
	return string(b)
}

// Join accumulates bytes instead of concatenating strings.
//
//tftlint:hotpath
func Join(parts []string) string {
	b := make([]byte, 0, 64)
	for _, p := range parts {
		b = append(b, p...)
	}
	return string(b)
}

// Pass keeps values concrete: pointers are pointer-shaped and do not box.
//
//tftlint:hotpath
func Pass(r *Record, f func(*Record)) {
	f(r)
}

// Cold is unannotated: fmt and boxing are fine off the hot path.
func Cold(n int) string {
	var v any = n
	return fmt.Sprint(v)
}
