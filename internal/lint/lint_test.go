package lint

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update regenerates the golden files from current analyzer output:
//
//	go test ./internal/lint -run TestFixtures -update
var update = flag.Bool("update", false, "rewrite fixture golden files")

// sharedLoader caches stdlib type-checking across every test in the
// package; building a loader per test would re-check the standard library
// each time.
var sharedLoader *Loader

func loaderFor(t *testing.T) *Loader {
	t.Helper()
	if sharedLoader != nil {
		return sharedLoader
	}
	root, err := FindRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	sharedLoader = l
	return l
}

// fixture runs the full analyzer set over one testdata package and renders
// the findings as text.
func fixture(t *testing.T, l *Loader, dir string) string {
	t.Helper()
	ds, err := l.Lint([]string{filepath.Join("testdata", "src", dir)}, All())
	if err != nil {
		t.Fatalf("lint %s: %v", dir, err)
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, ds); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestFixtures golden-tests each analyzer against one positive (findings
// expected, compared byte-for-byte against golden.txt) and one negative
// (must be silent) fixture, plus the waiver-comment and malformed-waiver
// packages.
func TestFixtures(t *testing.T) {
	l := loaderFor(t)
	positives := []string{
		"simclock/bad",
		"seededrand/bad",
		"spanend/bad",
		"poolpair/bad",
		"ctxfirst/bad",
		"nogo/bad",
		"noblock/bad",
		"maporder/bad",
		"lockorder/bad",
		"hotalloc/bad",
		"waiverunused/bad",
		"waiver/malformed",
	}
	for _, dir := range positives {
		t.Run(dir, func(t *testing.T) {
			got := fixture(t, l, dir)
			if got == "" {
				t.Fatalf("%s produced no findings; positive fixtures must diagnose", dir)
			}
			golden := filepath.Join("testdata", "src", dir, "golden.txt")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings differ from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
	negatives := []string{
		"simclock/good",
		"seededrand/good",
		"spanend/good",
		"poolpair/good",
		"ctxfirst/good",
		"nogo/good",
		"noblock/good",
		"maporder/good",
		"lockorder/good",
		"hotalloc/good",
		"waiverunused/good",
		"waiver/ok",
	}
	for _, dir := range negatives {
		t.Run(dir, func(t *testing.T) {
			if got := fixture(t, l, dir); got != "" {
				t.Errorf("%s must be clean, got:\n%s", dir, got)
			}
		})
	}
}

// TestFixtureDeterminism asserts the property the tool promises its own
// output: two scans of the same package render byte-identically.
func TestFixtureDeterminism(t *testing.T) {
	l := loaderFor(t)
	a := fixture(t, l, "simclock/bad")
	b := fixture(t, l, "simclock/bad")
	if a != b {
		t.Errorf("output not deterministic:\n%s\nvs\n%s", a, b)
	}
}

// TestSelect covers the -only/-skip flag semantics, including the
// unknown-name usage error.
func TestSelect(t *testing.T) {
	all, err := Select("", "")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("Select(\"\",\"\") = %d analyzers, err %v", len(all), err)
	}
	only, err := Select("simclock,spanend", "")
	if err != nil || len(only) != 2 {
		t.Fatalf("Select(only) = %v, err %v", names(only), err)
	}
	skipped, err := Select("", "simclock")
	if err != nil || len(skipped) != len(All())-1 {
		t.Fatalf("Select(skip) = %v, err %v", names(skipped), err)
	}
	for _, a := range skipped {
		if a.Name == "simclock" {
			t.Error("skip did not drop simclock")
		}
	}
	if _, err := Select("nosuch", ""); err == nil || !strings.Contains(err.Error(), "unknown analyzer") {
		t.Errorf("unknown -only name must be a usage error, got %v", err)
	}
	if _, err := Select("", "nosuch"); err == nil || !strings.Contains(err.Error(), "known:") {
		t.Errorf("unknown -skip error must list known analyzers, got %v", err)
	}
}

func names(as []*Analyzer) []string {
	var ns []string
	for _, a := range as {
		ns = append(ns, a.Name)
	}
	return ns
}

// TestWriteJSON pins the JSON shape: an indented array, empty array (not
// null) on a clean run.
func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("empty findings must marshal to [], got %q", buf.String())
	}
	buf.Reset()
	ds := []Diagnostic{{File: "a.go", Line: 3, Col: 7, Analyzer: "simclock", Message: "m"}}
	if err := WriteJSON(&buf, ds); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"file": "a.go"`, `"line": 3`, `"col": 7`, `"analyzer": "simclock"`, `"message": "m"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("JSON output missing %s:\n%s", want, buf.String())
		}
	}
}

// TestSortOrder pins the deterministic ordering contract.
func TestSortOrder(t *testing.T) {
	ds := []Diagnostic{
		{File: "b.go", Line: 1, Col: 1, Analyzer: "z", Message: "m"},
		{File: "a.go", Line: 9, Col: 1, Analyzer: "z", Message: "m"},
		{File: "a.go", Line: 2, Col: 5, Analyzer: "z", Message: "m"},
		{File: "a.go", Line: 2, Col: 5, Analyzer: "a", Message: "m"},
		{File: "a.go", Line: 2, Col: 1, Analyzer: "z", Message: "m"},
	}
	Sort(ds)
	want := []string{
		"a.go:2:1: z: m",
		"a.go:2:5: a: m",
		"a.go:2:5: z: m",
		"a.go:9:1: z: m",
		"b.go:1:1: z: m",
	}
	for i, d := range ds {
		if d.String() != want[i] {
			t.Errorf("order[%d] = %q, want %q", i, d.String(), want[i])
		}
	}
}

// TestExpandSkipsTestdata checks the ./... walker excludes testdata the way
// the go tool does, while explicit paths still reach fixtures.
func TestExpandSkipsTestdata(t *testing.T) {
	dirs, err := Expand(".", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("./... walked into %s", d)
		}
	}
	explicit, err := Expand(".", []string{"testdata/src/simclock/bad"})
	if err != nil || len(explicit) != 1 {
		t.Fatalf("explicit fixture path: dirs %v, err %v", explicit, err)
	}
}

// TestRepositoryClean is the gate's own gate: the tree this test ships in
// must be free of findings, so any regression fails tier-1 tests too, not
// just make check.
func TestRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository")
	}
	l := loaderFor(t)
	dirs, err := Expand(l.Root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := l.Lint(dirs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		t.Errorf("%s", d)
	}
}
