package lint

import (
	"go/ast"
	"strings"
)

// nogoScoped reports whether a file is on the goroutine diet: the event-core
// packages (internal/simnet, internal/proxynet), whose hot path must not
// regrow goroutine-per-connection dispatch, plus this package's own nogo
// fixtures. Test files never reach the loader, so test-only goroutines stay
// legal.
func nogoScoped(relFile string) bool {
	return strings.HasPrefix(relFile, "internal/simnet/") ||
		strings.HasPrefix(relFile, "internal/proxynet/") ||
		strings.Contains(relFile, "testdata/src/nogo/")
}

// runNoGo flags every go statement in the scoped packages. The simnet event
// core retired goroutine-per-connection from the hot path; the surviving
// goroutines (stream handlers, real-socket relays, agent workers) each carry
// a reasoned waiver, and any new one must argue for itself the same way.
func runNoGo(p *Pass) []Diagnostic {
	var ds []Diagnostic
	for _, f := range p.Files {
		if !nogoScoped(p.FileRel(f)) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				ds = append(ds, p.Diag(g.Pos(),
					"go statement in an event-core package; drive the work from the run-to-completion scheduler (fabric tasks, splice, Clock.AfterFunc) or waive with a reason"))
			}
			return true
		})
	}
	return ds
}
