// Package lint implements tftlint, the repository's domain-specific
// static-analysis suite. The crawl's scientific claim — that every observed
// violation is attributable to the simulated network, not to harness
// nondeterminism — rests on conventions no compiler enforces: clocks are
// injected (simnet.Clock, never the time package's wall-clock reads),
// randomness flows from the seeded world RNG (never the process-global
// math/rand source), every started trace span is ended, and pooled buffers
// are returned on every path. tftlint turns those tribal rules into a
// pre-merge gate.
//
// The framework is deliberately stdlib-only: packages are parsed with
// go/parser and type-checked with go/types through the source importer, so
// the tool builds and runs in environments with no module cache. The
// analyzer interface mirrors the shape of golang.org/x/tools/go/analysis
// (Name, Doc, Run(pass) → diagnostics) without the dependency.
//
// Findings can be waived inline:
//
//	//tftlint:ignore <analyzer>[,<analyzer>...] -- <reason>
//
// The reason is mandatory and the waiver applies to findings on the
// comment's own line and the line below it. A malformed waiver (missing
// reason, unknown analyzer) is itself a diagnostic, so waivers stay
// grep-auditable and cannot rot silently.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding, anchored to a source position. File paths are
// slash-separated and relative to the module root so output is byte-stable
// across machines and checkouts.
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Sort orders diagnostics deterministically: by file, then line, column,
// analyzer, and finally message. Every consumer (text output, JSON output,
// golden tests) sees the same order.
func Sort(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// WriteText renders one "file:line:col: analyzer: message" line per
// diagnostic.
func WriteText(w io.Writer, ds []Diagnostic) error {
	for _, d := range ds {
		if _, err := fmt.Fprintln(w, d); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the diagnostics as a JSON array (an empty array, not
// null, when there are no findings).
func WriteJSON(w io.Writer, ds []Diagnostic) error {
	if ds == nil {
		ds = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ds)
}

// Report is the object shape of `tftlint -json`: the findings plus run
// provenance (how much was scanned, how long it took) so CI archives carry
// analyzer cost alongside analyzer output.
type Report struct {
	// Findings are the diagnostics, in Sort order (never null).
	Findings []Diagnostic `json:"findings"`
	// Packages is the number of package directories scanned.
	Packages int `json:"packages"`
	// Analyzers is the number of analyzers that ran.
	Analyzers int `json:"analyzers"`
	// WallMS is the scan's wall-clock time in milliseconds.
	WallMS int64 `json:"wall_ms"`
}

// WriteJSONReport renders a Report as indented JSON.
func WriteJSONReport(w io.Writer, r Report) error {
	if r.Findings == nil {
		r.Findings = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteWaivers renders the -waivers inventory, one line per waiver, with an
// "[unused]" marker on waivers that suppressed nothing.
func WriteWaivers(w io.Writer, ws []WaiverInfo) error {
	for _, wi := range ws {
		status := ""
		if !wi.Used {
			status = "  [unused]"
		}
		if _, err := fmt.Fprintf(w, "%s:%d: ignore %s -- %s%s\n",
			wi.File, wi.Line, strings.Join(wi.Analyzers, ","), wi.Reason, status); err != nil {
			return err
		}
	}
	return nil
}

// Analyzer is one named check. Run inspects a type-checked package and
// returns its findings; the runner stamps positions, applies waivers, and
// sorts.
type Analyzer struct {
	// Name identifies the analyzer in output, waiver comments, and the
	// -only/-skip flags.
	Name string
	// Doc is a one-line description shown by `tftlint -list`.
	Doc string
	// Run reports the analyzer's findings for one package.
	Run func(*Pass) []Diagnostic
}

// Pass hands one type-checked package to an analyzer.
type Pass struct {
	// Fset maps token positions back to file/line/column.
	Fset *token.FileSet
	// Files are the package's parsed sources (comments included).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info carries the type-checker's fact maps (Uses, Defs, Selections,
	// Types) for the package's files.
	Info *types.Info
	// Path is the package's import path.
	Path string
	// RelDir is the package directory relative to the module root,
	// slash-separated ("" for the root package).
	RelDir string

	root string
}

// Rel converts a token position to a module-root-relative slash path plus
// line and column.
func (p *Pass) Rel(pos token.Pos) (file string, line, col int) {
	pp := p.Fset.Position(pos)
	rel, err := filepath.Rel(p.root, pp.Filename)
	if err != nil {
		rel = pp.Filename
	}
	return filepath.ToSlash(rel), pp.Line, pp.Column
}

// FileRel returns the module-root-relative slash path of a parsed file.
func (p *Pass) FileRel(f *ast.File) string {
	file, _, _ := p.Rel(f.Pos())
	return file
}

// Diag builds a diagnostic at pos. The runner fills in the analyzer name.
func (p *Pass) Diag(pos token.Pos, format string, args ...any) Diagnostic {
	file, line, col := p.Rel(pos)
	return Diagnostic{File: file, Line: line, Col: col, Message: fmt.Sprintf(format, args...)}
}

// PkgFunc resolves the callee of a call expression to a *types.Func, or nil
// when the callee is not a statically-known function or method.
func (p *Pass) PkgFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// ImportedPkg reports the import path behind an identifier when the
// identifier names an imported package (e.g. the "time" in time.Now).
func (p *Pass) ImportedPkg(id *ast.Ident) (string, bool) {
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}

// walkParents traverses root in source order, calling fn with every node
// and its ancestor stack (outermost first, immediate parent last). It never
// prunes, so the stack stays consistent.
func walkParents(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// parent returns the immediate parent from a walkParents stack (nil at the
// root).
func parent(stack []ast.Node) ast.Node {
	if len(stack) == 0 {
		return nil
	}
	return stack[len(stack)-1]
}
