package lint

import (
	"go/ast"
	"strings"
)

// bannedTime are the time-package functions that read or schedule against
// the process wall clock. Durations, time.Time arithmetic, and the zero
// time.Time{} stay legal — only the ambient clock is off limits.
var bannedTime = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

// simclockExempt reports whether a file may read the wall clock without a
// waiver: the simnet.Real implementation (it IS the wall clock behind the
// Clock interface) and the scripts/ tree (developer tooling that never runs
// inside a simulation).
func simclockExempt(relFile string) bool {
	return relFile == "internal/simnet/clock.go" || strings.HasPrefix(relFile, "scripts/")
}

// runSimClock flags every reference to a banned time-package function —
// calls and function values alike (passing time.Now as a timebase is just
// as wall-clocked as calling it).
func runSimClock(p *Pass) []Diagnostic {
	var ds []Diagnostic
	for _, f := range p.Files {
		if simclockExempt(p.FileRel(f)) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !bannedTime[sel.Sel.Name] {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if path, ok := p.ImportedPkg(x); ok && path == "time" {
				ds = append(ds, p.Diag(sel.Pos(),
					"time.%s reads the ambient wall clock; thread an injected simnet.Clock (simnet.Real for daemons) or waive with a reason",
					sel.Sel.Name))
			}
			return true
		})
	}
	return ds
}
