package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses src as a function body and returns it.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// reachableIdents collects every identifier usage inside reachable blocks —
// a convenient fingerprint of what the CFG considers live.
func reachableIdents(c *CFG) map[string]bool {
	out := map[string]bool{}
	for _, blk := range c.Reachable() {
		for _, n := range blk.Nodes {
			ast.Inspect(n, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					out[id.Name] = true
				}
				return true
			})
		}
	}
	return out
}

// TestCFGReachability drives BuildCFG through the statement shapes the
// analyzers depend on and asserts which code survives reachability pruning.
func TestCFGReachability(t *testing.T) {
	cases := []struct {
		name, body   string
		live, dead   []string
		minReachable int
	}{
		{
			name: "straight line",
			body: "a(); b()",
			live: []string{"a", "b"},
		},
		{
			name: "dead after return",
			body: "a(); return; dead()",
			live: []string{"a"},
			dead: []string{"dead"},
		},
		{
			name: "both branches live",
			body: "if cond() { a() } else { b() }; after()",
			live: []string{"cond", "a", "b", "after"},
		},
		{
			name: "loop body and post live",
			body: "for i := 0; i < n; i++ { body() }; after()",
			live: []string{"body", "after", "i", "n"},
		},
		{
			name: "range body live",
			body: "for k := range m { body(k) }; after()",
			live: []string{"m", "body", "after"},
		},
		{
			name: "infinite loop kills after",
			body: "for { body() }; dead()",
			live: []string{"body"},
			dead: []string{"dead"},
		},
		{
			name: "break escapes infinite loop",
			body: "for { if cond() { break }; body() }; after()",
			live: []string{"cond", "body", "after"},
		},
		{
			name: "switch cases live, fallthrough",
			body: "switch x() {\ncase 1:\n\ta()\n\tfallthrough\ncase 2:\n\tb()\ndefault:\n\tc()\n}\nafter()",
			live: []string{"x", "a", "b", "c", "after"},
		},
		{
			name: "select comm ops live",
			body: "select {\ncase v := <-ch:\n\ta(v)\ncase out <- 1:\n\tb()\n}\nafter()",
			live: []string{"ch", "out", "a", "b", "after"},
		},
		{
			name: "goto skips over",
			body: "goto done; dead()\ndone:\n\tafter()",
			live: []string{"after"},
			dead: []string{"dead"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := BuildCFG(parseBody(t, tc.body))
			ids := reachableIdents(c)
			for _, want := range tc.live {
				if !ids[want] {
					t.Errorf("%q should be reachable; reachable idents: %v", want, keys(ids))
				}
			}
			for _, dead := range tc.dead {
				if ids[dead] {
					t.Errorf("%q should be unreachable; reachable idents: %v", dead, keys(ids))
				}
			}
		})
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestCFGNodeDisjointness pins the builder invariant the analyzers rely
// on: no node in any block is a descendant of another block node, so
// walking every node subtree visits each executable expression once.
func TestCFGNodeDisjointness(t *testing.T) {
	body := parseBody(t, `
	if cond() {
		a()
	}
	for i := 0; i < n; i++ {
		switch v := pick(); v {
		case 1:
			b()
		default:
			c()
		}
	}
	select {
	case <-ch:
		d()
	}
`)
	c := BuildCFG(body)
	seen := map[ast.Node]bool{}
	for _, blk := range c.Blocks {
		for _, n := range blk.Nodes {
			ast.Inspect(n, func(sub ast.Node) bool {
				if sub == nil {
					return false
				}
				if seen[sub] {
					t.Fatalf("node %T appears under two block nodes", sub)
				}
				seen[sub] = true
				return true
			})
		}
	}
	if len(seen) == 0 {
		t.Fatal("CFG captured no nodes")
	}
}

// TestCFGNilBody covers declarations without bodies.
func TestCFGNilBody(t *testing.T) {
	c := BuildCFG(nil)
	if len(c.Reachable()) == 0 {
		t.Fatal("entry must be reachable")
	}
	if c.Exit == nil {
		t.Fatal("nil-body CFG must still have an exit")
	}
}

// TestForwardSolver checks the generic worklist solver joins facts across
// a diamond: a fact set on one branch must reach the merge point as a may
// fact, and loop back-edges must reach a fixpoint.
func TestForwardSolver(t *testing.T) {
	body := parseBody(t, `
	if cond() {
		mark()
	} else {
		other()
	}
	after()
`)
	c := BuildCFG(body)
	type fact = map[string]bool
	transfer := func(blk *Block, in fact) fact {
		out := fact{}
		for k := range in {
			out[k] = true
		}
		for _, n := range blk.Nodes {
			ast.Inspect(n, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && id.Name == "mark" {
					out["marked"] = true
				}
				return true
			})
		}
		return out
	}
	join := func(dst, src fact) (fact, bool) {
		changed := false
		for k := range src {
			if !dst[k] {
				if !changed {
					merged := fact{}
					for k := range dst {
						merged[k] = true
					}
					dst = merged
				}
				dst[k] = true
				changed = true
			}
		}
		return dst, changed
	}
	ins := Forward(c, func() fact { return fact{} }, transfer, join)
	// The block holding after() must see "marked" as a may-fact on entry.
	var afterIn fact
	for i, blk := range c.Blocks {
		for _, n := range blk.Nodes {
			found := false
			ast.Inspect(n, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && id.Name == "after" {
					found = true
				}
				return true
			})
			if found {
				afterIn = ins[i]
			}
		}
	}
	if afterIn == nil || !afterIn["marked"] {
		t.Fatalf("fact from the then-branch did not reach the merge point: %v", afterIn)
	}
}

// TestParallelLintDeterminism lints a multi-package set twice through the
// concurrent loader and requires byte-identical rendered output.
func TestParallelLintDeterminism(t *testing.T) {
	l := loaderFor(t)
	dirs := []string{
		"testdata/src/simclock/bad",
		"testdata/src/seededrand/bad",
		"testdata/src/maporder/bad",
		"testdata/src/lockorder/bad",
		"testdata/src/hotalloc/bad",
		"testdata/src/noblock/bad",
		"testdata/src/waiverunused/bad",
	}
	render := func() string {
		ds, err := l.Lint(dirs, All())
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := WriteText(&b, ds); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	first := render()
	if first == "" {
		t.Fatal("expected findings from the bad fixtures")
	}
	for i := 0; i < 3; i++ {
		if got := render(); got != first {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i+2, got, first)
		}
	}
}
