package lint

// maporder closes the determinism suite's blind spot: Go map iteration
// order is random per run, so a `range` over a map whose body reaches an
// order-sensitive sink — a fmt print, a JSONL/dataset writer, a Table row
// append — produces output that differs between identically-seeded crawls.
// The repository idiom is to extract the keys, sort them, and range the
// slice; under that idiom the sink is never inside the map loop, so any
// sink reachable from a map-range body (directly or through same-package
// calls, CFG-reachable code only) is diagnosed at the range statement.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runMapOrder finds map ranges and walks their bodies for sinks.
func runMapOrder(p *Pass) []Diagnostic {
	g := NewCallGraph(p)
	var ds []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if sink, sinkPos, found := mapOrderSink(p, g, rs.Body); found {
				file, line, _ := p.Rel(sinkPos)
				ds = append(ds, p.Diag(rs.Pos(),
					"map iteration order reaches %s (%s:%d); extract the keys, sort them, and range the slice",
					sink, file, line))
			}
			return true
		})
	}
	return ds
}

// mapOrderSink walks a loop body (chasing same-package static calls and
// function literals) for the first order-sensitive sink.
func mapOrderSink(p *Pass, g *CallGraph, body *ast.BlockStmt) (kind string, pos token.Pos, found bool) {
	g.ReachWalk(body, func(n ast.Node, depth int) bool {
		if found {
			return false
		}
		if k, ok := orderSink(p, n); ok {
			kind, pos, found = k, n.Pos(), true
			return false
		}
		return true
	})
	return kind, pos, found
}

// orderSink classifies one node as an order-sensitive output operation.
func orderSink(p *Pass, n ast.Node) (string, bool) {
	switch n := n.(type) {
	case *ast.CallExpr:
		fn := p.PkgFunc(n)
		if fn == nil || fn.Pkg() == nil {
			return "", false
		}
		name := fn.Name()
		switch fn.Pkg().Path() {
		case "fmt":
			switch name {
			case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
				return "fmt." + name, true
			}
			return "", false
		case "encoding/json":
			if name == "Encode" {
				return "json.Encoder.Encode", true
			}
			return "", false
		}
		if pathHasSuffix(fn.Pkg().Path(), "internal/dataset") {
			return "dataset." + name, true
		}
		if name == "WriteString" || name == "Write" {
			// Concrete string/byte accumulators only: an io.Writer
			// interface receiver also answers to "Writer" but covers
			// order-insensitive consumers like hashes.
			sig, _ := fn.Type().(*types.Signature)
			if sig != nil && sig.Recv() != nil && !types.IsInterface(sig.Recv().Type()) {
				switch fn.Pkg().Path() {
				case "strings", "bytes", "bufio":
					return recvName(sig) + "." + name, true
				}
			}
		}
	case *ast.AssignStmt:
		// t.Rows = append(t.Rows, ...) — report rows appended in map order.
		for _, lhs := range n.Lhs {
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Rows" {
				continue
			}
			if recvTypeName(p, sel.X) == "Table" {
				return "Table.Rows", true
			}
		}
	}
	return "", false
}

// pathHasSuffix matches an import-path suffix on segment boundaries.
func pathHasSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	n := len(path) - len(suffix)
	return n > 0 && path[n-1] == '/' && path[n:] == suffix
}
