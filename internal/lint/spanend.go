package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// runSpanEnd enforces span hygiene: the result of every trace.Tracer
// StartRoot/StartChild call must be ended in the starting function — an
// .End() call or defer on the assigned variable — or visibly handed off
// (returned, passed as an argument, stored into a structure). A span that
// is discarded or only decorated leaks an open span from the bounded
// collector's point of view and silently truncates the request's trace
// tree.
//
// The trace package itself is exempt: it is the implementation.
func runSpanEnd(p *Pass) []Diagnostic {
	if strings.HasSuffix(p.Path, "internal/trace") {
		return nil
	}
	var ds []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ds = append(ds, spanEndFunc(p, fd)...)
		}
	}
	return ds
}

// isSpanStart reports whether call statically resolves to a span-producing
// trace.Tracer method.
func isSpanStart(p *Pass, call *ast.CallExpr) (*types.Func, bool) {
	fn := p.PkgFunc(call)
	if fn == nil || (fn.Name() != "StartRoot" && fn.Name() != "StartChild") {
		return nil, false
	}
	if fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/trace") {
		return nil, false
	}
	return fn, true
}

// spanEndFunc checks every span started inside fd. Closures count as part
// of the enclosing function: a span ended inside a nested func literal that
// captures it is ended as far as this analyzer is concerned.
func spanEndFunc(p *Pass, fd *ast.FuncDecl) []Diagnostic {
	var ds []Diagnostic
	walkParents(fd.Body, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		fn, ok := isSpanStart(p, call)
		if !ok {
			return
		}
		label := "Tracer." + fn.Name()
		switch par := parent(stack).(type) {
		case *ast.ExprStmt:
			ds = append(ds, p.Diag(call.Pos(), "result of %s discarded; the span is never ended", label))
		case *ast.DeferStmt:
			if par.Call == call {
				ds = append(ds, p.Diag(call.Pos(), "result of deferred %s discarded; the span is never ended", label))
			}
		case *ast.GoStmt:
			if par.Call == call {
				ds = append(ds, p.Diag(call.Pos(), "result of %s in go statement discarded; the span is never ended", label))
			}
		case *ast.AssignStmt:
			id := assignedIdent(par, call)
			ds = append(ds, checkSpanVar(p, fd, call, label, id)...)
		case *ast.ValueSpec:
			var id *ast.Ident
			for i, v := range par.Values {
				if v == call && i < len(par.Names) {
					id = par.Names[i]
				}
			}
			ds = append(ds, checkSpanVar(p, fd, call, label, id)...)
		default:
			// Returned, passed as an argument, or stored into a composite:
			// ownership visibly moves to the receiver, which the analyzer
			// trusts to end it.
		}
	})
	return ds
}

// assignedIdent returns the LHS identifier matching call on the RHS of an
// assignment (nil when the target is not a plain identifier).
func assignedIdent(as *ast.AssignStmt, call *ast.CallExpr) *ast.Ident {
	for i, rhs := range as.Rhs {
		if rhs == call && i < len(as.Lhs) {
			id, _ := as.Lhs[i].(*ast.Ident)
			return id
		}
	}
	return nil
}

// checkSpanVar verifies the span variable is ended or escapes within fd.
func checkSpanVar(p *Pass, fd *ast.FuncDecl, call *ast.CallExpr, label string, id *ast.Ident) []Diagnostic {
	if id == nil {
		return nil // assigned through a non-identifier lvalue: stored, so handed off
	}
	if id.Name == "_" {
		return []Diagnostic{p.Diag(call.Pos(), "result of %s assigned to _; the span is never ended", label)}
	}
	obj := identObj(p, id)
	if obj == nil {
		return nil // type-check hole; stay quiet rather than guess
	}
	if spanEndedOrEscapes(p, fd, obj) {
		return nil
	}
	return []Diagnostic{p.Diag(call.Pos(),
		"span %q from %s is never ended in %s; call or defer %s.End() on every path, or hand the span off",
		id.Name, label, fd.Name.Name, id.Name)}
}

// spanEndedOrEscapes scans fd for a use of obj that either ends the span
// (x.End anywhere, including deferred or inside a captured closure) or
// moves ownership out of the function (any use that is not a method call
// or field access on the variable itself).
func spanEndedOrEscapes(p *Pass, fd *ast.FuncDecl, obj any) bool {
	found := false
	walkParents(fd.Body, func(n ast.Node, stack []ast.Node) {
		if found {
			return
		}
		id, ok := n.(*ast.Ident)
		if !ok || p.Info.Uses[id] != obj {
			return
		}
		switch par := parent(stack).(type) {
		case *ast.SelectorExpr:
			if par.X == id && par.Sel.Name == "End" {
				found = true
			}
			// Other selections (SetError, SetAttrs, Context) neither end
			// the span nor move it.
		case *ast.AssignStmt:
			for _, lhs := range par.Lhs {
				if lhs == id {
					return // reassignment target, not a use of the value
				}
			}
			found = true // aliased into another variable
		default:
			found = true // returned, passed, stored: handed off
		}
	})
	return found
}
