package lint

// cfg.go builds intra-procedural control-flow graphs from the AST — the
// substrate the dataflow-aware analyzers (lockorder, noblock, maporder,
// hotalloc) share. The graph is deliberately lightweight: basic blocks hold
// the straight-line statement (and control-expression) nodes in execution
// order, and edges capture branch/loop/switch structure plus break,
// continue, goto, fallthrough, and return. Compound statements never appear
// as block nodes themselves; only their non-body parts (an if condition, a
// range operand, a select case's communication) do, so walking every node
// subtree of every block visits each executable expression exactly once.

import (
	"go/ast"
)

// Block is one basic block: straight-line nodes plus successor edges.
type Block struct {
	// Nodes are the block's statements and control expressions in
	// execution order. Subtrees of distinct nodes never overlap.
	Nodes []ast.Node
	// Succs are the blocks control may transfer to next.
	Succs []*Block
	// Index is the block's position in CFG.Blocks (build order, entry
	// first) — stable across runs for deterministic reporting.
	Index int
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks lists every block in build order; Blocks[0] is the entry.
	Blocks []*Block
	// Exit is the synthetic sink reached by falling off the end or
	// returning. It holds no nodes.
	Exit *Block
}

// BuildCFG constructs the control-flow graph of a function body. A nil
// body (declaration without implementation) yields a graph with just an
// entry wired to the exit.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{}
	entry := b.newBlock()
	b.cur = entry
	exit := b.newBlock()
	b.exit = exit
	if body != nil {
		b.stmtList(body.List)
	}
	b.link(b.cur, exit)
	c := &CFG{Blocks: b.blocks, Exit: exit}
	return c
}

// Reachable returns the blocks reachable from the entry, in index order.
// Analyzers walk these so code behind an unconditional return is never
// diagnosed.
func (c *CFG) Reachable() []*Block {
	if len(c.Blocks) == 0 {
		return nil
	}
	seen := make([]bool, len(c.Blocks))
	var stack []*Block
	stack = append(stack, c.Blocks[0])
	seen[0] = true
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	var out []*Block
	for i, blk := range c.Blocks {
		if seen[i] {
			out = append(out, blk)
		}
	}
	return out
}

// cfgBuilder tracks the block under construction and the targets of
// branch statements.
type cfgBuilder struct {
	blocks []*Block
	cur    *Block
	exit   *Block
	// frames is the stack of enclosing breakable/continuable constructs.
	frames []branchFrame
	// labels maps label names to their goto targets; forward gotos get a
	// placeholder block that the labeled statement later adopts.
	labels map[string]*Block
}

// branchFrame records where break and continue jump for one enclosing
// loop, switch, or select. cont is nil for switches and selects.
type branchFrame struct {
	label     string
	brk, cont *Block
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.blocks)}
	b.blocks = append(b.blocks, blk)
	return blk
}

// link adds an edge from src to dst (nil-safe, deduplicating).
func (b *cfgBuilder) link(src, dst *Block) {
	if src == nil || dst == nil {
		return
	}
	for _, s := range src.Succs {
		if s == dst {
			return
		}
	}
	src.Succs = append(src.Succs, dst)
}

// add appends a straight-line node to the current block.
func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// labelBlock returns (creating on first use) the block a label names.
func (b *cfgBuilder) labelBlock(name string) *Block {
	if b.labels == nil {
		b.labels = make(map[string]*Block)
	}
	blk, ok := b.labels[name]
	if !ok {
		blk = b.newBlock()
		b.labels[name] = blk
	}
	return blk
}

// frameFor resolves the branch frame a break or continue targets.
func (b *cfgBuilder) frameFor(label string, needCont bool) (branchFrame, bool) {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if label != "" && f.label != label {
			continue
		}
		if needCont && f.cont == nil {
			continue
		}
		return f, true
	}
	return branchFrame{}, false
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt builds the graph for one statement. label is the pending label when
// the statement is the body of a LabeledStmt (so its break/continue frame
// answers to that name).
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.link(b.cur, lb)
		b.cur = lb
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		condB := b.cur
		after := b.newBlock()
		thenB := b.newBlock()
		b.link(condB, thenB)
		b.cur = thenB
		b.stmtList(s.Body.List)
		b.link(b.cur, after)
		if s.Else != nil {
			elseB := b.newBlock()
			b.link(condB, elseB)
			b.cur = elseB
			b.stmt(s.Else, "")
			b.link(b.cur, after)
		} else {
			b.link(condB, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		b.link(b.cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			b.link(head, after)
		}
		b.link(head, body)
		b.frames = append(b.frames, branchFrame{label: label, brk: after, cont: post})
		b.cur = body
		b.stmtList(s.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		if s.Post != nil {
			b.link(b.cur, post)
			post.Nodes = append(post.Nodes, s.Post)
			b.link(post, head)
		} else {
			b.link(b.cur, head)
		}
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.link(b.cur, head)
		head.Nodes = append(head.Nodes, s.X)
		b.link(head, body)
		b.link(head, after)
		b.frames = append(b.frames, branchFrame{label: label, brk: after, cont: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		b.link(b.cur, head)
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(s.Body.List, label, func(cc *ast.CaseClause) ([]ast.Node, []ast.Stmt) {
			nodes := make([]ast.Node, 0, len(cc.List))
			for _, e := range cc.List {
				nodes = append(nodes, e)
			}
			return nodes, cc.Body
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(s.Body.List, label, func(cc *ast.CaseClause) ([]ast.Node, []ast.Stmt) {
			return nil, cc.Body
		})

	case *ast.SelectStmt:
		after := b.newBlock()
		entry := b.cur
		b.frames = append(b.frames, branchFrame{label: label, brk: after})
		for _, raw := range s.Body.List {
			cc := raw.(*ast.CommClause)
			caseB := b.newBlock()
			b.link(entry, caseB)
			b.cur = caseB
			if cc.Comm != nil {
				b.stmt(cc.Comm, "")
			}
			b.stmtList(cc.Body)
			b.link(b.cur, after)
		}
		b.frames = b.frames[:len(b.frames)-1]
		if len(s.Body.List) == 0 {
			b.link(entry, after)
		}
		b.cur = after

	case *ast.ReturnStmt:
		b.add(s)
		b.link(b.cur, b.exit)
		b.cur = b.newBlock()

	case *ast.BranchStmt:
		b.branch(s)

	default:
		// Assignments, expression statements, declarations, sends, defers,
		// go statements, increments: straight-line nodes.
		b.add(s)
	}
}

// caseClauses wires switch-shaped bodies: every case block hangs off the
// entry, fallthrough links a case to its successor, and a missing default
// adds the entry→after edge.
func (b *cfgBuilder) caseClauses(list []ast.Stmt, label string, split func(*ast.CaseClause) ([]ast.Node, []ast.Stmt)) {
	after := b.newBlock()
	entry := b.cur
	b.frames = append(b.frames, branchFrame{label: label, brk: after})
	caseBlocks := make([]*Block, len(list))
	for i := range list {
		caseBlocks[i] = b.newBlock()
	}
	hasDefault := false
	for i, raw := range list {
		cc := raw.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		nodes, body := split(cc)
		caseB := caseBlocks[i]
		b.link(entry, caseB)
		caseB.Nodes = append(caseB.Nodes, nodes...)
		b.cur = caseB
		// Fallthrough must be the final statement; wire it to the next
		// case's block.
		for _, st := range body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				if i+1 < len(caseBlocks) {
					b.link(b.cur, caseBlocks[i+1])
				}
				b.cur = b.newBlock()
				continue
			}
			b.stmt(st, "")
		}
		b.link(b.cur, after)
	}
	b.frames = b.frames[:len(b.frames)-1]
	if !hasDefault {
		b.link(entry, after)
	}
	b.cur = after
}

// branch wires break, continue, goto, and stray fallthrough.
func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		if f, ok := b.frameFor(label, false); ok {
			b.link(b.cur, f.brk)
		}
	case "continue":
		if f, ok := b.frameFor(label, true); ok {
			b.link(b.cur, f.cont)
		}
	case "goto":
		if label != "" {
			b.link(b.cur, b.labelBlock(label))
		}
	}
	// Fallthrough is handled by caseClauses; anything else ends the block.
	b.cur = b.newBlock()
}
