package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Loader parses and type-checks packages of this module without the go
// tool: module-internal imports are resolved against the repository tree
// and everything else (the standard library) goes through go/importer's
// source importer. No module cache or export data is required. A Loader is
// safe for concurrent use: the package cache is once-guarded per import
// path and the (single-threaded) source importer is serialized.
type Loader struct {
	// Root is the module root directory (where go.mod lives).
	Root string
	// Module is the module path from go.mod.
	Module string
	// Fset is shared by every file the loader touches so positions stay
	// comparable across packages.
	Fset *token.FileSet

	std types.ImporterFrom
	// stdMu serializes the source importer, which keeps an unlocked
	// internal package map.
	stdMu sync.Mutex

	mu   sync.Mutex
	pkgs map[string]*pkgEntry
}

// pkgEntry is one cache slot: the once guard lets concurrent importers of
// the same path share a single load without holding the cache lock across
// type-checking (module import cycles are impossible, so re-entrant loads
// of distinct paths cannot deadlock).
type pkgEntry struct {
	once sync.Once
	p    *Package
	err  error
}

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("<module>/<rel dir>").
	Path string
	// Dir is the absolute package directory.
	Dir string
	// RelDir is Dir relative to the module root, slash-separated ("" for
	// the root package).
	RelDir string
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Pkg is the type-checked package (possibly incomplete when
	// TypeErrors is non-empty).
	Pkg *types.Package
	// Info holds the type-checker's fact maps for Files.
	Info *types.Info
	// TypeErrors collects soft type-check errors. Analysis proceeds past
	// them: the fact maps stay usable for the code that did check.
	TypeErrors []error
}

// cgoOff disables cgo in the default build context exactly once, so the
// source importer type-checks the pure-Go variants of cgo-capable stdlib
// packages (net, os/user) instead of failing on import "C".
var cgoOff sync.Once

// NewLoader creates a loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	cgoOff.Do(func() { build.Default.CgoEnabled = false })
	fset := token.NewFileSet()
	l := &Loader{Root: root, Module: mod, Fset: fset, pkgs: make(map[string]*pkgEntry)}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// FindRoot walks up from dir to the enclosing directory containing go.mod.
func FindRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		up := filepath.Dir(dir)
		if up == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = up
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if after, ok := strings.CutPrefix(strings.TrimSpace(line), "module"); ok {
			mod := strings.Trim(strings.TrimSpace(after), `"`)
			if mod != "" {
				return mod, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// LoadDir parses and type-checks the package in dir (which must live under
// the module root). Results are cached per import path.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.Module)
	}
	path := l.Module
	if rel != "." {
		path = l.Module + "/" + filepath.ToSlash(rel)
	}
	return l.load(path, dir)
}

// load is the cache-aware core of LoadDir and the importer.
func (l *Loader) load(path, dir string) (*Package, error) {
	l.mu.Lock()
	e, ok := l.pkgs[path]
	if !ok {
		e = &pkgEntry{}
		l.pkgs[path] = e
	}
	l.mu.Unlock()
	e.once.Do(func() { e.p, e.err = l.loadUncached(path, dir) })
	return e.p, e.err
}

// loadUncached parses and type-checks one package directory.
func (l *Loader) loadUncached(path, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	p := &Package{Path: path, Dir: dir, Files: files}
	if rel, err := filepath.Rel(l.Root, dir); err == nil && rel != "." {
		p.RelDir = filepath.ToSlash(rel)
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	// Check reports every error through conf.Error and still returns as
	// much of the package as it could type; analyzers run best-effort on
	// whatever checked.
	p.Pkg, _ = conf.Check(path, l.Fset, files, p.Info)
	return p, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.Root, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load from
// the repository tree, everything else defers to the source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		sub := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
		p, err := l.load(path, filepath.Join(l.Root, filepath.FromSlash(sub)))
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.ImportFrom(path, dir, mode)
}

// lint is the shared engine behind Lint and Waivers: it loads and analyzes
// the directories on a GOMAXPROCS-bounded worker pool, then merges results
// in directory order so the output is deterministic regardless of
// scheduling.
func (l *Loader) lint(dirs []string, analyzers []*Analyzer) ([]Diagnostic, []*waiver, error) {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	type result struct {
		ds  []Diagnostic
		ws  []*waiver
		err error
	}
	results := make([]result, len(dirs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(dirs) {
		workers = len(dirs)
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(dirs) {
					return
				}
				pkg, err := l.LoadDir(dirs[i])
				if err != nil {
					results[i].err = err
					continue
				}
				results[i].ds, results[i].ws = l.lintPackage(pkg, analyzers, known)
			}
		}()
	}
	wg.Wait()
	var all []Diagnostic
	var ws []*waiver
	for _, r := range results {
		if r.err != nil {
			return nil, nil, r.err
		}
		all = append(all, r.ds...)
		ws = append(ws, r.ws...)
	}
	Sort(all)
	return all, ws, nil
}

// Expand resolves package patterns relative to cwd into a sorted, deduped
// list of package directories. A trailing "/..." walks the subtree the way
// the go tool does: testdata, vendor, and dot- or underscore-prefixed
// directories are skipped, and only directories containing at least one
// non-test Go file count. A plain pattern names a single directory.
func Expand(cwd string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		base, walk := strings.CutSuffix(pat, "...")
		base = strings.TrimSuffix(base, "/")
		if base == "" {
			base = "."
		}
		if !filepath.IsAbs(base) {
			base = filepath.Join(cwd, base)
		}
		if !walk {
			if !hasGoFiles(base) {
				return nil, fmt.Errorf("lint: no Go files in %s", base)
			}
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if p != base {
				n := d.Name()
				if n == "testdata" || n == "vendor" || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
					return filepath.SkipDir
				}
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains a non-test Go file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}
