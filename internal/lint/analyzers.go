package lint

import (
	"fmt"
	"sort"
	"strings"
)

// All returns every registered analyzer, sorted by name. Adding an analyzer
// means writing its run function, appending it here, and dropping a
// positive and a negative fixture under testdata/src/<name>/ — see
// DESIGN.md "Static analysis".
func All() []*Analyzer {
	as := []*Analyzer{
		{
			Name: "ctxfirst",
			Doc:  "exported functions taking a context.Context must take it as the first parameter",
			Run:  runCtxFirst,
		},
		{
			Name: "hotalloc",
			Doc:  "functions annotated //tftlint:hotpath may not contain fmt calls, loop string concatenation, interface boxing, or escaping composite literals",
			Run:  runHotAlloc,
		},
		{
			Name: "lockorder",
			Doc:  "the per-package mutex acquisition graph (simnet, proxynet, metrics) must stay acyclic, and dynamic calls under a held lock need hoisting or a waiver",
			Run:  runLockOrder,
		},
		{
			Name: "maporder",
			Doc:  "a range over a map must not reach an order-sensitive sink (fmt output, JSON/dataset writers, Table rows); sort the keys first",
			Run:  runMapOrder,
		},
		{
			Name: "noblock",
			Doc:  "no blocking operations (channel ops, mutexes, Stream.Read/Write, interface Read/Write) inside taskQueue callbacks or SetNotify handlers; use the readiness APIs",
			Run:  runNoBlock,
		},
		{
			Name: "nogo",
			Doc:  "go statements in internal/simnet and internal/proxynet are banned; connection work runs on the event core unless a waiver argues otherwise",
			Run:  runNoGo,
		},
		{
			Name: "poolpair",
			Doc:  "every pooled buffer Get (httpwire readers/writers, proxynet copy buffers) needs its matching Put in the same function",
			Run:  runPoolPair,
		},
		{
			Name: "seededrand",
			Doc:  "internal packages must not call package-level math/rand functions; randomness flows from the seeded world RNG",
			Run:  runSeededRand,
		},
		{
			Name: "simclock",
			Doc:  "wall-clock reads (time.Now, time.Sleep, ...) are banned outside the allowlist; time flows through an injected simnet.Clock",
			Run:  runSimClock,
		},
		{
			Name: "spanend",
			Doc:  "every span returned by trace.Tracer Start calls must be ended (or handed off) in the starting function",
			Run:  runSpanEnd,
		},
	}
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	return as
}

// Select filters the registered analyzers by the -only and -skip flag
// values (comma-separated analyzer names; empty means no constraint). An
// unknown name in either list is a usage error naming the known analyzers.
func Select(only, skip string) ([]*Analyzer, error) {
	all := All()
	byName := make(map[string]*Analyzer, len(all))
	var names []string
	for _, a := range all {
		byName[a.Name] = a
		names = append(names, a.Name)
	}
	parse := func(flag, list string) (map[string]bool, error) {
		set := make(map[string]bool)
		for _, n := range strings.Split(list, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if byName[n] == nil {
				return nil, fmt.Errorf("unknown analyzer %q in -%s (known: %s)", n, flag, strings.Join(names, ", "))
			}
			set[n] = true
		}
		return set, nil
	}
	onlySet, err := parse("only", only)
	if err != nil {
		return nil, err
	}
	skipSet, err := parse("skip", skip)
	if err != nil {
		return nil, err
	}
	var out []*Analyzer
	for _, a := range all {
		if len(onlySet) > 0 && !onlySet[a.Name] {
			continue
		}
		if skipSet[a.Name] {
			continue
		}
		out = append(out, a)
	}
	return out, nil
}
