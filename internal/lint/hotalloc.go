package lint

// hotalloc guards the allocation diet of hand-optimized paths. A function
// annotated with the directive
//
//	//tftlint:hotpath
//
// in its doc comment may not contain:
//
//   - any fmt call (Sprintf and friends allocate and reflect);
//   - string concatenation inside a loop (quadratic garbage; build into a
//     byte slice or hoist out of the loop);
//   - interface boxing: converting a concrete non-pointer-shaped value
//     (struct, string, numeric, bool, array) to an interface — as a call
//     argument (including ...any variadics), assignment, return value,
//     conversion, or composite-literal element — allocates per conversion;
//   - escaping composite literals: &T{...} returned, passed, stored in a
//     field/element, or nested in another literal goes to the heap.
//
// The check is intra-procedural and annotation-gated: annotate the probe,
// splice, and dnswire paths the performance PRs hand-optimized so they
// cannot quietly regress. Function literals inside a hot function inherit
// the annotation.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotpathDirective is the annotation comment (recognized anywhere in a
// function's doc comment group).
const HotpathDirective = "//tftlint:hotpath"

// isHotpath reports whether a function declaration carries the directive.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == HotpathDirective || strings.HasPrefix(c.Text, HotpathDirective+" ") {
			return true
		}
	}
	return false
}

// runHotAlloc checks every annotated function.
func runHotAlloc(p *Pass) []Diagnostic {
	var ds []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			ds = append(ds, hotAllocFunc(p, fd)...)
		}
	}
	return ds
}

func hotAllocFunc(p *Pass, fd *ast.FuncDecl) []Diagnostic {
	var ds []Diagnostic
	diag := func(pos token.Pos, format string, args ...any) {
		ds = append(ds, p.Diag(pos, format, args...))
	}
	walkParents(fd.Body, func(n ast.Node, stack []ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			hotAllocCall(p, fd, n, diag)
		case *ast.BinaryExpr:
			if n.Op != token.ADD || !isStringExpr(p, n) || isConstExpr(p, n) {
				return
			}
			// Flag the outermost + of a chain, once, and only in a loop.
			if par, ok := parent(stack).(*ast.BinaryExpr); ok && par.Op == token.ADD && isStringExpr(p, par) {
				return
			}
			if inLoop(stack) {
				diag(n.Pos(), "string concatenation in a loop on a hot path; append to a byte slice or hoist the build out of the loop")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(p, n.Lhs[0]) && inLoop(stack) {
				diag(n.Pos(), "string concatenation in a loop on a hot path; append to a byte slice or hoist the build out of the loop")
			}
			hotAllocAssign(p, n, diag)
		case *ast.ReturnStmt:
			hotAllocReturn(p, fd, n, stack, diag)
		case *ast.CompositeLit:
			hotAllocLitElems(p, n, diag)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok && escapes(stack) {
					diag(cl.Pos(), "escaping composite literal on a hot path; reuse a pooled or caller-provided value")
				}
			}
		}
	})
	return ds
}

// hotAllocCall flags fmt calls and boxing at call boundaries.
func hotAllocCall(p *Pass, fd *ast.FuncDecl, call *ast.CallExpr, diag func(token.Pos, string, ...any)) {
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: T(x). Boxing when T is an interface.
		if len(call.Args) == 1 && types.IsInterface(tv.Type) && boxes(p, call.Args[0], tv.Type) {
			diag(call.Pos(), "conversion to %s boxes %s on a hot path", types.TypeString(tv.Type, types.RelativeTo(p.Pkg)), exprTypeString(p, call.Args[0]))
		}
		return
	}
	if fn := p.PkgFunc(call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		diag(call.Pos(), "fmt.%s on a hot path; preformat, use strconv appends, or a typed error", fn.Name())
		// Still check the arguments below: ...any boxing stacks on top.
	}
	tv, ok := p.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			slice, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = slice.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) && boxes(p, arg, pt) {
			diag(arg.Pos(), "passing %s as %s boxes it on a hot path", exprTypeString(p, arg), types.TypeString(pt, types.RelativeTo(p.Pkg)))
		}
	}
}

// hotAllocAssign flags boxing on plain assignments to interface-typed
// destinations (:= always infers the concrete type, so only = can box).
func hotAllocAssign(p *Pass, n *ast.AssignStmt, diag func(token.Pos, string, ...any)) {
	if n.Tok != token.ASSIGN || len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		lt, ok := p.Info.Types[lhs]
		if !ok || lt.Type == nil || !types.IsInterface(lt.Type) {
			continue
		}
		if boxes(p, n.Rhs[i], lt.Type) {
			diag(n.Rhs[i].Pos(), "assigning %s to %s boxes it on a hot path", exprTypeString(p, n.Rhs[i]), types.TypeString(lt.Type, types.RelativeTo(p.Pkg)))
		}
	}
}

// hotAllocReturn flags boxing into interface-typed results of the nearest
// enclosing function (the declaration or a literal on the ancestor stack).
func hotAllocReturn(p *Pass, fd *ast.FuncDecl, n *ast.ReturnStmt, stack []ast.Node, diag func(token.Pos, string, ...any)) {
	var sig *types.Signature
	for i := len(stack) - 1; i >= 0; i-- {
		if lit, ok := stack[i].(*ast.FuncLit); ok {
			if tv, ok := p.Info.Types[lit]; ok {
				sig, _ = tv.Type.(*types.Signature)
			}
			break
		}
	}
	if sig == nil {
		if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
			sig, _ = fn.Type().(*types.Signature)
		}
	}
	if sig == nil || len(n.Results) != sig.Results().Len() {
		return
	}
	for i, res := range n.Results {
		rt := sig.Results().At(i).Type()
		if types.IsInterface(rt) && boxes(p, res, rt) {
			diag(res.Pos(), "returning %s as %s boxes it on a hot path", exprTypeString(p, res), types.TypeString(rt, types.RelativeTo(p.Pkg)))
		}
	}
}

// hotAllocLitElems flags boxing into interface-typed slice/array/map
// elements of a composite literal ([]any{...} and friends).
func hotAllocLitElems(p *Pass, cl *ast.CompositeLit, diag func(token.Pos, string, ...any)) {
	tv, ok := p.Info.Types[cl]
	if !ok || tv.Type == nil {
		return
	}
	var elem types.Type
	switch t := tv.Type.Underlying().(type) {
	case *types.Slice:
		elem = t.Elem()
	case *types.Array:
		elem = t.Elem()
	case *types.Map:
		elem = t.Elem()
	default:
		return
	}
	if !types.IsInterface(elem) {
		return
	}
	for _, e := range cl.Elts {
		if kv, ok := e.(*ast.KeyValueExpr); ok {
			e = kv.Value
		}
		if boxes(p, e, elem) {
			diag(e.Pos(), "storing %s in %s boxes it on a hot path", exprTypeString(p, e), types.TypeString(elem, types.RelativeTo(p.Pkg)))
		}
	}
}

// boxes reports whether storing expr into an interface-typed destination
// allocates: the expression's type is concrete and not pointer-shaped
// (pointers, channels, maps, and funcs fit in the interface word).
func boxes(p *Pass, expr ast.Expr, dst types.Type) bool {
	tv, ok := p.Info.Types[ast.Unparen(expr)]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	t := tv.Type
	if types.IsInterface(t) {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

// exprTypeString renders an expression's type for messages.
func exprTypeString(p *Pass, expr ast.Expr) string {
	tv, ok := p.Info.Types[ast.Unparen(expr)]
	if !ok || tv.Type == nil {
		return "value"
	}
	return types.TypeString(tv.Type, types.RelativeTo(p.Pkg))
}

// isStringExpr reports whether an expression has string type.
func isStringExpr(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isConstExpr reports whether the whole expression is a compile-time
// constant (constant folding makes it free).
func isConstExpr(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}

// inLoop reports whether the ancestor stack (innermost last) crosses a for
// or range statement before leaving the current function body.
func inLoop(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}

// escapes reports whether the value at the top of the ancestor stack is in
// an escaping position: returned, passed to a call, sent, stored through a
// selector/index/deref, or nested in another composite literal.
func escapes(stack []ast.Node) bool {
	switch par := parent(stack).(type) {
	case *ast.ReturnStmt, *ast.CallExpr, *ast.SendStmt, *ast.CompositeLit, *ast.KeyValueExpr:
		return true
	case *ast.AssignStmt:
		for _, lhs := range par.Lhs {
			switch ast.Unparen(lhs).(type) {
			case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
				return true
			}
		}
	}
	return false
}
