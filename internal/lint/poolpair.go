package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// poolPair describes one Get/Put pair the analyzer enforces. pkgSuffix
// constrains the callee's package by import-path suffix; empty means the
// pair is package-local (unexported helpers callable only where defined).
type poolPair struct {
	get, put  string
	pkgSuffix string
}

// poolPairs are the repository's pooled-buffer protocols (PR 3). The rule
// they encode: pool only where the lifetime ends in-function, so every Get
// has a syntactically findable Put.
var poolPairs = []poolPair{
	{get: "GetReader", put: "PutReader", pkgSuffix: "internal/httpwire"},
	{get: "getWriter", put: "putWriter"},
	{get: "getCopyBuf", put: "putCopyBuf"},
}

// runPoolPair verifies that every pooled Get is held in a local variable
// and returned to its pool by the matching Put (called or deferred) in the
// same function. Escaping the buffer does not count: PR 3's pooling rule is
// that lifetimes end in-function, so a Get whose Put lives elsewhere is a
// leak by convention even if some callee returns it.
func runPoolPair(p *Pass) []Diagnostic {
	var ds []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ds = append(ds, poolPairFunc(p, fd)...)
		}
	}
	return ds
}

// matchPoolFunc returns the pool pair when fn is one of the Get functions.
func matchPoolFunc(p *Pass, fn *types.Func) (poolPair, bool) {
	for _, pair := range poolPairs {
		if fn.Name() != pair.get {
			continue
		}
		if pairMatchesPkg(p, pair, fn) {
			return pair, true
		}
	}
	return poolPair{}, false
}

func pairMatchesPkg(p *Pass, pair poolPair, fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	if pair.pkgSuffix != "" {
		return strings.HasSuffix(fn.Pkg().Path(), pair.pkgSuffix)
	}
	return fn.Pkg() == p.Pkg // package-local helper
}

// poolPairFunc checks one function. The Get inside the pool package's own
// wrapper (e.g. GetReader's body) calls sync.Pool directly, not the
// wrapper, so the implementation does not self-flag.
func poolPairFunc(p *Pass, fd *ast.FuncDecl) []Diagnostic {
	var ds []Diagnostic
	walkParents(fd.Body, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		fn := p.PkgFunc(call)
		if fn == nil {
			return
		}
		pair, ok := matchPoolFunc(p, fn)
		if !ok {
			return
		}
		var id *ast.Ident
		switch par := parent(stack).(type) {
		case *ast.AssignStmt:
			id = assignedIdent(par, call)
		case *ast.ValueSpec:
			for i, v := range par.Values {
				if v == call && i < len(par.Names) {
					id = par.Names[i]
				}
			}
		}
		if id == nil || id.Name == "_" {
			ds = append(ds, p.Diag(call.Pos(),
				"pooled buffer from %s must be held in a local and returned with %s in this function",
				pair.get, pair.put))
			return
		}
		obj := identObj(p, id)
		if obj == nil {
			return // type-check hole; stay quiet rather than guess
		}
		if !putCallFound(p, fd, pair, obj) {
			ds = append(ds, p.Diag(call.Pos(),
				"%q from %s has no matching %s in %s; pool only where the lifetime ends in-function",
				id.Name, pair.get, pair.put, fd.Name.Name))
		}
	})
	return ds
}

// putCallFound reports whether fd contains a call (plain or deferred,
// including inside closures) to the pair's Put with obj among the
// arguments.
func putCallFound(p *Pass, fd *ast.FuncDecl, pair poolPair, obj any) bool {
	found := false
	walkParents(fd.Body, func(n ast.Node, stack []ast.Node) {
		if found {
			return
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		fn := p.PkgFunc(call)
		if fn == nil || fn.Name() != pair.put || !pairMatchesPkg(p, pair, fn) {
			return
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && p.Info.Uses[id] == obj {
				found = true
				return
			}
		}
	})
	return found
}
