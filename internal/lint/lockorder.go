package lint

// lockorder builds the per-package mutex acquisition graph of the
// concurrency-heavy packages (internal/simnet, internal/proxynet,
// internal/metrics) and diagnoses two hazards:
//
//  1. Acquisition cycles: if one code path locks A then B and another
//     locks B then A, the two can deadlock. Edges come from a forward
//     may-held dataflow over each function's CFG (held × acquired) plus
//     transitive may-acquire summaries of same-package static callees,
//     iterated to fixpoint.
//  2. Dynamic calls under a lock: a call through an interface or function
//     value while holding a tracked mutex escapes the statically-buildable
//     graph entirely — whatever it locks is invisible. Hoist the call out
//     of the critical section or waive it with the reason the callee
//     cannot lock.
//
// Locks are named "<Type>.<field>" (or the variable name for non-field
// mutexes). A lock the function itself released earlier (unlock-then-
// relock, as in ring.pumpOrWait) is excluded from its summary so callers
// holding it do not see a false self-edge. sync.Cond.Wait releases and
// reacquires its locker atomically and is modeled as a no-op.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

func lockorderScoped(relFile string) bool {
	return strings.HasPrefix(relFile, "internal/simnet/") ||
		strings.HasPrefix(relFile, "internal/proxynet/") ||
		strings.HasPrefix(relFile, "internal/metrics/") ||
		strings.Contains(relFile, "testdata/src/lockorder/")
}

// lockState is the forward-dataflow fact: the may-held set and the
// released-since-entry set (for summary exclusion). States are immutable;
// transfer copies.
type lockState struct {
	held     map[string]bool
	released map[string]bool
}

func (s lockState) clone() lockState {
	c := lockState{held: make(map[string]bool, len(s.held)), released: make(map[string]bool, len(s.released))}
	for k := range s.held {
		c.held[k] = true
	}
	for k := range s.released {
		c.released[k] = true
	}
	return c
}

// lockEdge is one "acquired to while holding from" observation.
type lockEdge struct {
	from, to string
	pos      token.Pos
}

// runLockOrder analyzes one package.
func runLockOrder(p *Pass) []Diagnostic {
	var roots []lockRoot
	inScope := false
	for _, f := range p.Files {
		if !lockorderScoped(p.FileRel(f)) {
			continue
		}
		inScope = true
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			roots = append(roots, lockRoot{body: fd.Body})
			// Closures run on their own schedule (timer fires, pool
			// prepare hooks); analyze each as an independent root.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					roots = append(roots, lockRoot{body: lit.Body})
				}
				return true
			})
		}
	}
	if !inScope {
		return nil
	}
	la := &lockAnalysis{pass: p, graph: NewCallGraph(p), sums: make(map[*ast.BlockStmt]map[string]bool)}
	// May-acquire summaries to fixpoint: a summary can grow while callees'
	// summaries grow, so iterate until stable.
	for changed := true; changed; {
		changed = false
		for _, r := range roots {
			sum := la.summarize(r.body)
			if !sameSet(la.sums[r.body], sum) {
				la.sums[r.body] = sum
				changed = true
			}
		}
	}
	var ds []Diagnostic
	for _, r := range roots {
		ds = append(ds, la.report(r.body)...)
	}
	ds = append(ds, la.cycles()...)
	return ds
}

type lockRoot struct {
	body *ast.BlockStmt
}

type lockAnalysis struct {
	pass  *Pass
	graph *CallGraph
	// sums maps a function body to the locks it (or its same-package
	// callees) may acquire without having released them first.
	sums map[*ast.BlockStmt]map[string]bool
	// edges is the package's acquisition graph; first observation of each
	// (from, to) pair wins, so positions are deterministic given file
	// order.
	edges  []lockEdge
	edgeAt map[string]bool
	// dyn collects the dynamic-call-under-lock diagnostics.
	dyn []Diagnostic
}

// solve runs the held/released dataflow over one body and returns the CFG
// with per-block entry states.
func (la *lockAnalysis) solve(body *ast.BlockStmt) (*CFG, []lockState) {
	c := BuildCFG(body)
	in := Forward(c,
		func() lockState {
			return lockState{held: map[string]bool{}, released: map[string]bool{}}
		},
		func(blk *Block, s lockState) lockState {
			out := s.clone()
			la.walkBlock(blk, &out, nil)
			return out
		},
		func(a, b lockState) (lockState, bool) {
			changed := false
			for k := range b.held {
				if !a.held[k] {
					if !changed {
						a = a.clone()
						changed = true
					}
					a.held[k] = true
				}
			}
			for k := range b.released {
				if !a.released[k] {
					if !changed {
						a = a.clone()
						changed = true
					}
					a.released[k] = true
				}
			}
			return a, changed
		})
	return c, in
}

// lockEvent is invoked by walkBlock at each interesting point.
type lockEvent struct {
	// acquire is non-"" when a tracked lock is acquired at pos.
	acquire string
	// callee is the summary set of a static same-package call.
	callee map[string]bool
	// dynamic describes a call the graph cannot see through.
	dynamic string
	pos     token.Pos
}

// walkBlock applies one block's lock effects to s in source order,
// reporting events when report is non-nil.
func (la *lockAnalysis) walkBlock(blk *Block, s *lockState, report func(lockEvent, lockState)) {
	for _, n := range blk.Nodes {
		ast.Inspect(n, func(sub ast.Node) bool {
			switch sub := sub.(type) {
			case *ast.FuncLit:
				// Closure bodies run later; they are analyzed as roots.
				return false
			case *ast.CallExpr:
				key, op := la.lockOp(sub)
				switch op {
				case lockAcquire:
					if report != nil {
						report(lockEvent{acquire: key, pos: sub.Pos()}, *s)
					}
					s.held[key] = true
					return true
				case lockRelease:
					delete(s.held, key)
					s.released[key] = true
					return true
				case lockNeutral:
					return true
				}
				if fd := la.graph.DeclOf(sub); fd != nil {
					if report != nil {
						report(lockEvent{callee: la.sums[fd.Body], pos: sub.Pos()}, *s)
					}
					return true
				}
				if desc, ok := la.dynamicCallee(sub); ok && report != nil {
					report(lockEvent{dynamic: desc, pos: sub.Pos()}, *s)
				}
			}
			return true
		})
	}
}

// summarize computes the may-acquire set of one body: every tracked lock
// acquired at a point where the function had not already released it,
// unioned with the current summaries of its static callees.
func (la *lockAnalysis) summarize(body *ast.BlockStmt) map[string]bool {
	c, in := la.solve(body)
	sum := make(map[string]bool)
	for _, blk := range c.Reachable() {
		s := in[blk.Index].clone()
		if s.held == nil {
			continue
		}
		la.walkBlock(blk, &s, func(ev lockEvent, at lockState) {
			if ev.acquire != "" && !at.released[ev.acquire] {
				sum[ev.acquire] = true
			}
			for k := range ev.callee {
				sum[k] = true
			}
		})
	}
	return sum
}

// report replays one body with final dataflow facts, recording acquisition
// edges and dynamic-call diagnostics.
func (la *lockAnalysis) report(body *ast.BlockStmt) []Diagnostic {
	c, in := la.solve(body)
	var ds []Diagnostic
	for _, blk := range c.Reachable() {
		s := in[blk.Index].clone()
		if s.held == nil {
			continue
		}
		la.walkBlock(blk, &s, func(ev lockEvent, at lockState) {
			held := sortedKeys(at.held)
			switch {
			case ev.acquire != "":
				for _, h := range held {
					la.addEdge(h, ev.acquire, ev.pos)
				}
			case ev.dynamic != "":
				if len(held) > 0 {
					ds = append(ds, la.pass.Diag(ev.pos,
						"call through %s while holding %s; the acquisition graph cannot see past it — hoist it out of the critical section or waive with the reason it cannot lock",
						ev.dynamic, strings.Join(held, ", ")))
				}
			case ev.callee != nil:
				for _, h := range held {
					for _, k := range sortedKeys(ev.callee) {
						la.addEdge(h, k, ev.pos)
					}
				}
			}
		})
	}
	return ds
}

func (la *lockAnalysis) addEdge(from, to string, pos token.Pos) {
	if from == to {
		// Same-key re-acquisition: either a recursive self-deadlock or two
		// instances of one type locked in sequence (ring pairs). The graph
		// cannot tell instances apart, so record it as a cycle-free note
		// only when distinct; skip self-edges to avoid instance noise.
		return
	}
	if la.edgeAt == nil {
		la.edgeAt = make(map[string]bool)
	}
	k := from + "\x00" + to
	if la.edgeAt[k] {
		return
	}
	la.edgeAt[k] = true
	la.edges = append(la.edges, lockEdge{from: from, to: to, pos: pos})
}

// cycles reports every edge that participates in an acquisition cycle.
func (la *lockAnalysis) cycles() []Diagnostic {
	adj := make(map[string][]string)
	for _, e := range la.edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	var ds []Diagnostic
	for _, e := range la.edges {
		if path := lockPath(adj, e.to, e.from); path != nil {
			cycle := append([]string{e.from}, path...)
			ds = append(ds, la.pass.Diag(e.pos,
				"lock acquisition cycle: %s; acquiring %s while holding %s can deadlock against the reverse order",
				strings.Join(cycle, " → "), e.to, e.from))
		}
	}
	return ds
}

// lockPath finds a path from src to dst in the acquisition graph (BFS,
// deterministic order), returning the node sequence src..dst, or nil.
func lockPath(adj map[string][]string, src, dst string) []string {
	prev := map[string]string{src: ""}
	queue := []string{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == dst {
			var path []string
			for at := dst; at != ""; at = prev[at] {
				path = append([]string{at}, path...)
				if at == src {
					break
				}
			}
			return path
		}
		next := append([]string(nil), adj[n]...)
		sort.Strings(next)
		for _, m := range next {
			if _, seen := prev[m]; !seen {
				prev[m] = n
				queue = append(queue, m)
			}
		}
	}
	return nil
}

const (
	lockNone = iota
	lockAcquire
	lockRelease
	lockNeutral
)

// lockOp classifies a call as a tracked lock operation. Cond.Wait is
// neutral: it atomically releases and reacquires its locker.
func (la *lockAnalysis) lockOp(call *ast.CallExpr) (string, int) {
	p := la.pass
	fn := p.PkgFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", lockNone
	}
	sig, _ := fn.Type().(*types.Signature)
	if recvName(sig) == "Cond" && fn.Name() == "Wait" {
		return "", lockNeutral
	}
	var op int
	switch fn.Name() {
	case "Lock", "RLock":
		op = lockAcquire
	case "Unlock", "RUnlock":
		op = lockRelease
	default:
		return "", lockNone
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", lockNone
	}
	key := la.lockKey(ast.Unparen(sel.X))
	if key == "" {
		return "", lockNeutral
	}
	return key, op
}

// lockKey names a mutex expression: "<OwnerType>.<field>" for struct
// fields, the variable name otherwise, "" when unresolvable.
func (la *lockAnalysis) lockKey(x ast.Expr) string {
	p := la.pass
	switch x := x.(type) {
	case *ast.SelectorExpr:
		if selx, ok := p.Info.Selections[x]; ok {
			recv := selx.Recv()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			if named, ok := recv.(*types.Named); ok {
				return named.Obj().Name() + "." + x.Sel.Name
			}
			return x.Sel.Name
		}
		// Qualified package-level var: pkg.mu.
		if v, ok := p.Info.Uses[x.Sel].(*types.Var); ok {
			return v.Name()
		}
	case *ast.Ident:
		if v, ok := identObj(p, x).(*types.Var); ok {
			return v.Name()
		}
	}
	return ""
}

// dynamicCallee reports whether call is opaque to the acquisition graph: a
// function-value call or an interface-method call. Builtins, conversions,
// and concrete functions (same- or cross-package) are transparent enough.
func (la *lockAnalysis) dynamicCallee(call *ast.CallExpr) (string, bool) {
	p := la.pass
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return "", false // conversion
	}
	fn := p.PkgFunc(call)
	if fn == nil {
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if _, ok := p.Info.Uses[fun].(*types.Builtin); ok {
				return "", false
			}
			if fun.Name == "min" || fun.Name == "max" {
				return "", false
			}
			return "func value " + fun.Name, true
		case *ast.SelectorExpr:
			return "func value " + exprText(fun), true
		case *ast.FuncLit:
			return "", false // literal called in place: body visible... but skipped; treat as dynamic
		}
		return "dynamic call", true
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		return fmt.Sprintf("interface method %s.%s", recvName(sig), fn.Name()), true
	}
	return "", false
}

// exprText renders a selector chain for messages (x.y.z).
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	}
	return "expr"
}

func sortedKeys(m map[string]bool) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
