package smtpwire

import (
	"net"
	"strings"
	"testing"
)

func runSession(t *testing.T, srv *Server, mitm func([]byte) []byte) (*Session, error) {
	t.Helper()
	c, s := net.Pipe()
	defer c.Close()
	go func() {
		defer s.Close()
		if mitm == nil {
			srv.ServeOnce(s)
			return
		}
		// A middlebox sits between: run the server on an inner pipe and
		// relay with rewriting.
		innerC, innerS := net.Pipe()
		defer innerC.Close()
		go func() {
			defer innerS.Close()
			srv.ServeOnce(innerS)
		}()
		go func() {
			buf := make([]byte, 4096)
			for {
				n, err := innerC.Read(buf)
				if n > 0 {
					if _, werr := s.Write(mitm(buf[:n])); werr != nil {
						return
					}
				}
				if err != nil {
					return
				}
			}
		}()
		buf := make([]byte, 4096)
		for {
			n, err := s.Read(buf)
			if n > 0 {
				if _, werr := innerC.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}()
	return Probe(c, "probe.tft-example.net")
}

func TestProbeHonestServer(t *testing.T) {
	srv := NewServer("mail.tft-example.net")
	sess, err := runSession(t, srv, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sess.Banner, "mail.tft-example.net") {
		t.Fatalf("banner = %q", sess.Banner)
	}
	if !sess.StartTLS {
		t.Fatalf("STARTTLS missing: %v", sess.Capabilities)
	}
	if len(sess.Capabilities) != 3 {
		t.Fatalf("capabilities = %v", sess.Capabilities)
	}
}

func TestProbeThroughStartTLSStripper(t *testing.T) {
	srv := NewServer("mail.tft-example.net")
	sess, err := runSession(t, srv, StripSTARTTLS)
	if err != nil {
		t.Fatal(err)
	}
	if sess.StartTLS {
		t.Fatalf("STARTTLS survived the stripper: %v", sess.Capabilities)
	}
	// The remaining capabilities are intact and the reply stayed
	// well-formed (Probe would error on bad framing).
	if len(sess.Capabilities) != 2 {
		t.Fatalf("capabilities = %v", sess.Capabilities)
	}
}

func TestStripSTARTTLSRepairsFraming(t *testing.T) {
	in := "250-mail greets you\r\n250-8BITMIME\r\n250-PIPELINING\r\n250 STARTTLS\r\n"
	out := string(StripSTARTTLS([]byte(in)))
	if strings.Contains(out, "STARTTLS") {
		t.Fatalf("STARTTLS not stripped: %q", out)
	}
	if !strings.Contains(out, "250 PIPELINING") {
		t.Fatalf("last-line framing not repaired: %q", out)
	}
}

func TestStripSTARTTLSPassesOtherTraffic(t *testing.T) {
	in := "220 mail.example ESMTP ready\r\n"
	if got := string(StripSTARTTLS([]byte(in))); got != in {
		t.Fatalf("greeting altered: %q", got)
	}
}

func TestServerUnknownCommand(t *testing.T) {
	srv := NewServer("mail.tft-example.net")
	c, s := net.Pipe()
	defer c.Close()
	go func() {
		defer s.Close()
		srv.ServeOnce(s)
	}()
	buf := make([]byte, 256)
	n, _ := c.Read(buf) // greeting
	_ = n
	c.Write([]byte("MAIL FROM:<x@y>\r\n"))
	n, err := c.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(buf[:n]), "502") {
		t.Fatalf("reply = %q", buf[:n])
	}
	c.Write([]byte("QUIT\r\n"))
}
