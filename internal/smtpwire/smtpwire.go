// Package smtpwire implements the client and server halves of an SMTP
// session prefix — greeting, EHLO, capability advertisement, STARTTLS —
// plus the middlebox behaviours that violate it.
//
// The paper's §3.4 leaves this as future work: "we could extend our
// methodologies for VPNs that allow arbitrary traffic to be sent, enabling
// us to capture end-to-end connectivity violations in protocols like
// SMTP." This package, together with proxynet's any-port tunnel mode and
// core.SMTPExperiment, implements that extension: through a tunnel that
// permits port 25, a client collects each exit node's view of a mail
// server's banner and capabilities and detects the two classic violations —
// outright port-25 blocking and STARTTLS stripping (a middlebox deleting
// the STARTTLS capability so the session stays in cleartext).
package smtpwire

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Capabilities a server advertises in its EHLO response.
const (
	CapStartTLS = "STARTTLS"
	CapPipelive = "PIPELINING"
	Cap8BitMIME = "8BITMIME"
)

// Banner is a server's identity line (code 220).
type Banner struct {
	// Hostname the server announces.
	Hostname string
	// Software tag (e.g. "ESMTP tftmail").
	Software string
}

// String renders the 220 greeting.
func (b Banner) String() string {
	return fmt.Sprintf("220 %s %s ready", b.Hostname, b.Software)
}

// Session is what a client learned from one SMTP exchange.
type Session struct {
	Banner string
	// Capabilities advertised in response to EHLO, sorted.
	Capabilities []string
	// StartTLS reports whether STARTTLS was among them.
	StartTLS bool
}

// Server answers the session prefix: greeting, EHLO, QUIT. It never
// accepts mail — like the measurement methodology, it terminates before
// any content flows.
type Server struct {
	Banner       Banner
	Capabilities []string
}

// NewServer builds a server advertising STARTTLS plus the common
// capabilities.
func NewServer(hostname string) *Server {
	return &Server{
		Banner:       Banner{Hostname: hostname, Software: "ESMTP tftmail"},
		Capabilities: []string{CapPipelive, Cap8BitMIME, CapStartTLS},
	}
}

// ServeOnce handles a single session prefix on rw.
func (s *Server) ServeOnce(rw io.ReadWriter) error {
	w := bufio.NewWriter(rw)
	fmt.Fprintf(w, "%s\r\n", s.Banner)
	if err := w.Flush(); err != nil {
		return err
	}
	r := bufio.NewReader(rw)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return err
		}
		cmd := strings.ToUpper(strings.TrimSpace(line))
		switch {
		case strings.HasPrefix(cmd, "EHLO"), strings.HasPrefix(cmd, "HELO"):
			caps := append([]string(nil), s.Capabilities...)
			sort.Strings(caps)
			fmt.Fprintf(w, "250-%s greets you\r\n", s.Banner.Hostname)
			for i, c := range caps {
				sep := "-"
				if i == len(caps)-1 {
					sep = " "
				}
				fmt.Fprintf(w, "250%s%s\r\n", sep, c)
			}
			if err := w.Flush(); err != nil {
				return err
			}
		case strings.HasPrefix(cmd, "QUIT"):
			fmt.Fprintf(w, "221 %s closing\r\n", s.Banner.Hostname)
			return w.Flush()
		default:
			fmt.Fprintf(w, "502 command not implemented\r\n")
			if err := w.Flush(); err != nil {
				return err
			}
		}
	}
}

// Probe performs the client half on rw: read the greeting, EHLO, collect
// capabilities, QUIT.
func Probe(rw io.ReadWriter, heloName string) (*Session, error) {
	r := bufio.NewReader(rw)
	greeting, err := readReply(r)
	if err != nil {
		return nil, fmt.Errorf("smtpwire: reading greeting: %w", err)
	}
	if !strings.HasPrefix(greeting[0], "220") {
		return nil, fmt.Errorf("smtpwire: unexpected greeting %q", greeting[0])
	}
	sess := &Session{Banner: strings.TrimPrefix(greeting[0], "220 ")}

	if _, err := fmt.Fprintf(rw, "EHLO %s\r\n", heloName); err != nil {
		return nil, err
	}
	reply, err := readReply(r)
	if err != nil {
		return nil, fmt.Errorf("smtpwire: reading EHLO reply: %w", err)
	}
	for _, line := range reply[1:] { // first line is the greeting echo
		cap := strings.ToUpper(strings.TrimSpace(line[4:]))
		sess.Capabilities = append(sess.Capabilities, cap)
		if cap == CapStartTLS {
			sess.StartTLS = true
		}
	}
	sort.Strings(sess.Capabilities)
	fmt.Fprintf(rw, "QUIT\r\n")
	readReply(r) // best effort
	return sess, nil
}

// readReply collects one (possibly multi-line) SMTP reply.
func readReply(r *bufio.Reader) ([]string, error) {
	var lines []string
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		if len(line) < 4 {
			return nil, fmt.Errorf("smtpwire: short reply line %q", line)
		}
		lines = append(lines, line)
		if line[3] == ' ' {
			return lines, nil
		}
		if line[3] != '-' {
			return nil, fmt.Errorf("smtpwire: malformed reply line %q", line)
		}
	}
}

// StripSTARTTLS rewrites a server→client byte chunk, deleting the STARTTLS
// capability line from EHLO replies — the classic middlebox downgrade that
// keeps mail sessions in cleartext. It operates on whole lines, which the
// relay guarantees by flushing per reply.
func StripSTARTTLS(chunk []byte) []byte {
	lines := strings.Split(string(chunk), "\r\n")
	out := make([]string, 0, len(lines))
	stripped := false
	for _, l := range lines {
		u := strings.ToUpper(l)
		if strings.HasPrefix(u, "250-STARTTLS") || strings.HasPrefix(u, "250 STARTTLS") {
			stripped = true
			continue
		}
		out = append(out, l)
	}
	if stripped {
		// The last capability line must use "250 " framing; repair it.
		for i := len(out) - 1; i >= 0; i-- {
			if strings.HasPrefix(out[i], "250-") {
				rest := out[i][4:]
				// Only repair if it is the final 250 line of the reply.
				isLast := true
				for j := i + 1; j < len(out); j++ {
					if strings.HasPrefix(out[j], "250") {
						isLast = false
						break
					}
				}
				if isLast {
					out[i] = "250 " + rest
				}
				break
			}
		}
	}
	return []byte(strings.Join(out, "\r\n"))
}
