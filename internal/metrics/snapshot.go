package metrics

import (
	"encoding/json"
	"io"
	"sort"
)

// HistogramSnapshot is a histogram's frozen state. Counts[i] counts
// observations <= Bounds[i]; the final element of Counts holds the
// overflow bucket.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Mean is the average observed value.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile by linear interpolation within the
// fixed buckets: the rank (q * Count) is located in its bucket, then placed
// proportionally between the bucket's bounds.
//
// The interpolation contract, exactly:
//
//   - An empty histogram (Count == 0) or one with no bounds returns 0.
//   - q is clamped to [0, 1]: out-of-range arguments behave like 0 or 1.
//   - The first bucket interpolates up from zero (all registry histograms
//     observe non-negative values), so q=0 returns the lower edge of the
//     first non-empty bucket (0 when that is the first bucket).
//   - Empty buckets are skipped; a rank never resolves inside a bucket
//     with no observations.
//   - Ranks landing in the overflow bucket — including q=1 when any
//     observation exceeded the last bound — clamp to the last bound, the
//     usual conservative convention for open-ended buckets.
//
// The estimate is exact when observations are uniform within each bucket
// and is always within one bucket width of the true quantile otherwise.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	cum := int64(0)
	for i, c := range h.Counts {
		prev := cum
		cum += c
		if c == 0 || float64(cum) < rank {
			continue
		}
		if i >= len(h.Bounds) {
			break // overflow bucket
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		hi := h.Bounds[i]
		return lo + (hi-lo)*(rank-float64(prev))/float64(c)
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot is a registry's frozen state: the cross-experiment currency of
// the Run API (tft.Run.Metrics) and the JSON body the daemons serve.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Labeled    map[string]map[string]int64  `json:"labeled,omitempty"`
	// Events is the trace's retained window; EventsTotal counts every
	// event ever recorded (EventsTotal - len(Events) were overwritten).
	Events      []Event `json:"events,omitempty"`
	EventsTotal int64   `json:"events_total"`
}

// Snapshot freezes the registry. Safe to call concurrently with writers;
// individual instruments are read atomically but the snapshot as a whole
// is not a consistent cut. A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			hs := HistogramSnapshot{
				Bounds: append([]float64(nil), h.bounds...),
				Counts: make([]int64, len(h.counts)),
				Count:  h.Count(),
				Sum:    h.Sum(),
			}
			for i := range h.counts {
				hs.Counts[i] = h.counts[i].Load()
			}
			s.Histograms[name] = hs
		}
	}
	if len(r.labeled) > 0 {
		s.Labeled = make(map[string]map[string]int64, len(r.labeled))
		for name, lc := range r.labeled {
			s.Labeled[name] = lc.Values()
		}
	}
	s.Events = r.trace.Events()
	s.EventsTotal = r.trace.Total()
	return s
}

// Counter reads a counter from the snapshot (0 when absent or nil).
func (s *Snapshot) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	return s.Counters[name]
}

// EventsOfKind filters the retained events.
func (s *Snapshot) EventsOfKind(k EventKind) []Event {
	if s == nil {
		return nil
	}
	var out []Event
	for _, e := range s.Events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// TopLabels returns the named labeled counter's labels sorted by
// descending count (ties broken by label), truncated to n (n <= 0 means
// all).
func (s *Snapshot) TopLabels(name string, n int) []LabelCount {
	if s == nil {
		return nil
	}
	m := s.Labeled[name]
	out := make([]LabelCount, 0, len(m))
	for label, count := range m {
		out = append(out, LabelCount{Label: label, Count: count})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Label < out[j].Label
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// LabelCount is one labeled-counter entry.
type LabelCount struct {
	Label string `json:"label"`
	Count int64  `json:"count"`
}

// WriteEventsJSONL writes the retained events one JSON object per line,
// filtered to the given kinds (no kinds = everything). The flat form for
// grep/jq pipelines and the -events-json CLI dump.
func (s *Snapshot) WriteEventsJSONL(w io.Writer, kinds ...EventKind) error {
	if s == nil {
		return nil
	}
	keep := func(e Event) bool {
		if len(kinds) == 0 {
			return true
		}
		for _, k := range kinds {
			if e.Kind == k {
				return true
			}
		}
		return false
	}
	enc := json.NewEncoder(w)
	for _, e := range s.Events {
		if !keep(e) {
			continue
		}
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the snapshot as indented JSON — the expvar-style dump
// the daemons expose.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteJSON snapshots the registry and writes it as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	return r.Snapshot().WriteJSON(w)
}
