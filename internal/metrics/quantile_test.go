package metrics

import (
	"math"
	"testing"
)

// The Quantile interpolation contract, case by case (see the doc comment on
// HistogramSnapshot.Quantile for the prose version).
func TestQuantileEdgeCases(t *testing.T) {
	mk := func(bounds []float64, counts []int64) HistogramSnapshot {
		var total int64
		for _, c := range counts {
			total += c
		}
		return HistogramSnapshot{Bounds: bounds, Counts: counts, Count: total}
	}
	cases := []struct {
		name string
		h    HistogramSnapshot
		q    float64
		want float64
	}{
		{"empty histogram", mk([]float64{1, 2}, []int64{0, 0, 0}), 0.5, 0},
		{"no bounds", HistogramSnapshot{Count: 5}, 0.5, 0},

		// Single bucket holding everything: interpolation spans [0, bound].
		{"single bucket q=0.5", mk([]float64{10}, []int64{4, 0}), 0.5, 5},
		{"single bucket q=0", mk([]float64{10}, []int64{4, 0}), 0, 0},
		{"single bucket q=1", mk([]float64{10}, []int64{4, 0}), 1, 10},

		// q clamps rather than erroring.
		{"q below range", mk([]float64{10}, []int64{4, 0}), -3, 0},
		{"q above range", mk([]float64{10}, []int64{4, 0}), 7, 10},
		{"q NaN-adjacent small", mk([]float64{10}, []int64{4, 0}), 1e-12, 0},

		// Empty buckets are skipped: all mass in the second bucket, so every
		// rank interpolates within (1, 2].
		{"skip empty first bucket q=0", mk([]float64{1, 2}, []int64{0, 10, 0}), 0, 1},
		{"skip empty first bucket q=0.5", mk([]float64{1, 2}, []int64{0, 10, 0}), 0.5, 1.5},

		// Mass split across buckets: rank 3 of 4 is halfway through the
		// second bucket's two observations.
		{"two buckets q=0.75", mk([]float64{1, 2}, []int64{2, 2, 0}), 0.75, 1.5},

		// Overflow bucket clamps to the last bound.
		{"overflow q=1", mk([]float64{1, 2}, []int64{1, 1, 3}), 1, 2},
		{"all overflow", mk([]float64{1, 2}, []int64{0, 0, 5}), 0.5, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.h.Quantile(tc.q)
			if math.Abs(got-tc.want) > 1e-9 {
				t.Fatalf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
			}
		})
	}
}

// A live histogram round-trips through the snapshot with sane quantiles.
func TestQuantileFromRegistry(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("probe_duration_seconds", []float64{0.1, 0.2, 0.4, 0.8})
	for i := 0; i < 100; i++ {
		h.Observe(0.15) // all mass in the (0.1, 0.2] bucket
	}
	snap := r.Snapshot().Histograms["probe_duration_seconds"]
	p50 := snap.Quantile(0.5)
	if p50 <= 0.1 || p50 > 0.2 {
		t.Fatalf("p50 = %v, want within (0.1, 0.2]", p50)
	}
	if p99 := snap.Quantile(0.99); p99 <= p50-1e-9 || p99 > 0.2 {
		t.Fatalf("p99 = %v, want in [p50, 0.2]", p99)
	}
}
