package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sessions")
	const workers, perWorker = 32, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	// The registry returns the same instrument for the same name.
	if r.Counter("sessions") != c {
		t.Fatal("counter identity lost")
	}
}

func TestLabeledCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	lc := r.Labeled("by_country")
	labels := []string{"DE", "US", "BR", "MY", "JP", "IN", "FR", "GB"}
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				lc.Inc(labels[(w+i)%len(labels)])
			}
		}(w)
	}
	wg.Wait()
	total := int64(0)
	for _, lbl := range labels {
		total += lc.Value(lbl)
	}
	if total != workers*perWorker {
		t.Fatalf("labeled total = %d, want %d", total, workers*perWorker)
	}
	vals := lc.Values()
	if len(vals) != len(labels) {
		t.Fatalf("labels = %d, want %d", len(vals), len(labels))
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("window_new")
	g.Set(42)
	g.Add(-2)
	if g.Value() != 40 {
		t.Fatalf("gauge = %d", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rate", []float64{0.1, 0.5, 1.0})
	for _, v := range []float64{0.05, 0.1, 0.3, 0.7, 2.5} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["rate"]
	want := []int64{2, 1, 1, 1} // <=0.1, <=0.5, <=1.0, overflow
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Sum < 3.64 || s.Sum > 3.66 {
		t.Fatalf("sum = %v", s.Sum)
	}
	if m := s.Mean(); m < 0.72 || m > 0.74 {
		t.Fatalf("mean = %v", m)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram([]float64{10, 100})
	const workers, perWorker = 16, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*perWorker {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != workers*perWorker {
		t.Fatalf("sum = %v", h.Sum())
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(5)
	r.Counter("x").Inc()
	r.Gauge("y").Set(3)
	r.Gauge("y").Add(1)
	r.Histogram("z", []float64{1}).Observe(0.5)
	r.Labeled("l").Inc("DE")
	r.Record(Event{Kind: EventViolation})
	if v := r.Counter("x").Value(); v != 0 {
		t.Fatalf("nil counter = %d", v)
	}
	if v := r.Labeled("l").Value("DE"); v != 0 {
		t.Fatalf("nil labeled = %d", v)
	}
	s := r.Snapshot()
	if s == nil || len(s.Counters) != 0 || s.EventsTotal != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
	if s.Counter("anything") != 0 || len(s.TopLabels("l", 5)) != 0 {
		t.Fatal("empty snapshot accessors broken")
	}
}

func TestTraceRingWraparound(t *testing.T) {
	tr := newTrace(4)
	for i := 0; i < 10; i++ {
		tr.record(Event{Kind: EventSessionStarted, Session: fmt.Sprintf("s%d", i)})
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("retained = %d", len(ev))
	}
	// Chronological order, oldest retained first.
	for i, e := range ev {
		wantSeq := int64(6 + i)
		if e.Seq != wantSeq || e.Session != fmt.Sprintf("s%d", wantSeq) {
			t.Fatalf("event %d = %+v, want seq %d", i, e, wantSeq)
		}
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d", tr.Total())
	}
}

func TestTraceUnderCapacity(t *testing.T) {
	tr := newTrace(8)
	tr.record(Event{Kind: EventNodeDiscovered, ZID: "z1"})
	tr.record(Event{Kind: EventDuplicateNode, ZID: "z1"})
	ev := tr.Events()
	if len(ev) != 2 || ev[0].Seq != 0 || ev[1].Seq != 1 {
		t.Fatalf("events = %+v", ev)
	}
}

func TestTraceConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Record(Event{Kind: EventNodeDiscovered})
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.EventsTotal != workers*perWorker {
		t.Fatalf("events total = %d", s.EventsTotal)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("crawl_sessions_total").Add(7)
	r.Gauge("crawl_window_new").Set(3)
	r.Histogram("window_rate", []float64{0.05, 0.5}).Observe(0.2)
	r.Labeled("sessions_by_country").Add("MY", 2)
	r.Record(Event{Kind: EventViolation, ZID: "z42", Detail: "dns_hijack"})

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	for _, want := range []string{"crawl_sessions_total", "sessions_by_country", `"kind": "violation"`, `"zid": "z42"`} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("JSON missing %q:\n%s", want, buf.String())
		}
	}
}

func TestTopLabels(t *testing.T) {
	r := NewRegistry()
	lc := r.Labeled("by_node")
	lc.Add("za", 5)
	lc.Add("zb", 9)
	lc.Add("zc", 9)
	lc.Add("zd", 1)
	top := r.Snapshot().TopLabels("by_node", 3)
	if len(top) != 3 || top[0].Label != "zb" || top[1].Label != "zc" || top[2].Label != "za" {
		t.Fatalf("top = %+v", top)
	}
}

func TestSnapshotConcurrentWithWriters(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 4, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("c").Inc()
				r.Labeled("l").Inc("x")
				r.Record(Event{Kind: EventSessionStarted})
			}
		}()
	}
	for i := 0; i < 50; i++ {
		_ = r.Snapshot()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counter("c") != workers*perWorker || s.EventsTotal != workers*perWorker {
		t.Fatalf("snapshot missed writes: %+v, events %d", s.Counters, s.EventsTotal)
	}
}
