package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// Quantile interpolates linearly within fixed buckets and clamps ranks in
// the overflow bucket to the last bound.
func TestHistogramQuantile(t *testing.T) {
	// 100 observations spread uniformly through (0, 10]: bucket (0,10] has
	// all of them, so quantiles interpolate across that bucket.
	h := HistogramSnapshot{Bounds: []float64{10, 20}, Counts: []int64{100, 0, 0}, Count: 100}
	if got := h.Quantile(0.5); math.Abs(got-5) > 1e-9 {
		t.Fatalf("p50 = %v, want 5", got)
	}
	if got := h.Quantile(1); math.Abs(got-10) > 1e-9 {
		t.Fatalf("p100 = %v, want 10", got)
	}

	// Across buckets: 50 in (0,10], 50 in (10,20] — p75 is midway through
	// the second bucket.
	h = HistogramSnapshot{Bounds: []float64{10, 20}, Counts: []int64{50, 50, 0}, Count: 100}
	if got := h.Quantile(0.75); math.Abs(got-15) > 1e-9 {
		t.Fatalf("p75 = %v, want 15", got)
	}
	if got := h.Quantile(0.25); math.Abs(got-5) > 1e-9 {
		t.Fatalf("p25 = %v, want 5", got)
	}

	// Overflow ranks clamp to the last bound.
	h = HistogramSnapshot{Bounds: []float64{1}, Counts: []int64{1, 9}, Count: 10}
	if got := h.Quantile(0.99); got != 1 {
		t.Fatalf("overflow quantile = %v, want clamp to 1", got)
	}

	// Degenerate cases stay zero.
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v", got)
	}
}

var (
	promComment = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)
	promSample  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9.eE+-]+(Inf|NaN)?$`)
)

// The exposition must be structurally valid line-by-line and carry the
// cumulative histogram encoding.
func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("crawl_sessions_total").Add(7)
	r.Gauge("crawl_window_new").Set(3)
	h := r.Histogram("probe_latency", []float64{0.1, 0.5, 1})
	for _, v := range []float64{0.05, 0.3, 0.4, 0.9, 5} {
		h.Observe(v)
	}
	r.Labeled("crawl_sessions_by_country").Inc(`DE"e\x` + "\n")
	r.Record(Event{Kind: EventViolation, ZID: "z1"})

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	samples := 0
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !promComment.MatchString(line) {
				t.Errorf("malformed comment line %q", line)
			}
			continue
		}
		if !promSample.MatchString(line) {
			t.Errorf("malformed sample line %q", line)
		}
		samples++
	}
	if samples == 0 {
		t.Fatal("no sample lines")
	}
	for _, want := range []string{
		"tft_crawl_sessions_total 7",
		"tft_events_total 1",
		"tft_crawl_window_new 3",
		`tft_probe_latency_bucket{le="0.1"} 1`,
		`tft_probe_latency_bucket{le="0.5"} 3`,
		`tft_probe_latency_bucket{le="1"} 4`,
		`tft_probe_latency_bucket{le="+Inf"} 5`,
		"tft_probe_latency_sum 6.65",
		"tft_probe_latency_count 5",
		`tft_crawl_sessions_by_country{key="DE\"e\\x\n"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// A nil registry still produces the minimal valid exposition.
	buf.Reset()
	var nilReg *Registry
	if err := nilReg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "tft_events_total 0") {
		t.Fatalf("nil registry exposition = %q", buf.String())
	}
}

// ParseEventKind inverts String for every kind and rejects unknowns.
func TestParseEventKind(t *testing.T) {
	for k := EventSessionStarted; k <= EventCrawlStopped; k++ {
		got, ok := ParseEventKind(k.String())
		if !ok || got != k {
			t.Fatalf("ParseEventKind(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := ParseEventKind("no_such_kind"); ok {
		t.Fatal("unknown kind parsed")
	}
}

// WriteEventsJSONL emits one decodable object per line and honours the
// kind filter.
func TestWriteEventsJSONL(t *testing.T) {
	r := NewRegistry()
	r.Record(Event{Kind: EventSessionStarted, Session: "s1"})
	r.Record(Event{Kind: EventViolation, ZID: "z1", Detail: "dns_hijack"})
	r.Record(Event{Kind: EventSessionStarted, Session: "s2"})

	var buf bytes.Buffer
	if err := r.Snapshot().WriteEventsJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3", len(lines))
	}
	var e struct {
		Seq  int64  `json:"seq"`
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != "violation" || e.Seq != 1 {
		t.Fatalf("line 1 = %+v", e)
	}

	buf.Reset()
	if err := r.Snapshot().WriteEventsJSONL(&buf, EventViolation); err != nil {
		t.Fatal(err)
	}
	lines = strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 || !strings.Contains(lines[0], "dns_hijack") {
		t.Fatalf("filtered lines = %v", lines)
	}
}

// After the ring wraps under concurrent writers, Events() must return a
// contiguous, Seq-ordered window ending at the newest event — no holes, no
// stale entries, no reordering (run with -race).
func TestTraceEventsOrderAfterWrapConcurrent(t *testing.T) {
	const (
		capacity = 64
		workers  = 8
		perW     = 200
	)
	tr := newTrace(capacity)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				tr.record(Event{Kind: EventNodeDiscovered})
			}
		}()
	}
	wg.Wait()

	total := int64(workers * perW)
	if got := tr.Total(); got != total {
		t.Fatalf("total = %d, want %d", got, total)
	}
	events := tr.Events()
	if len(events) != capacity {
		t.Fatalf("retained = %d, want %d", len(events), capacity)
	}
	if last := events[len(events)-1].Seq; last != total-1 {
		t.Fatalf("last seq = %d, want %d", last, total-1)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("seq hole at %d: %d then %d", i, events[i-1].Seq, events[i].Seq)
		}
	}
}
