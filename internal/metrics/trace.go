package metrics

import (
	"encoding/json"
	"fmt"
	"sync"
)

// EventKind classifies a crawl trace event.
type EventKind uint8

// The crawl engine's event vocabulary.
const (
	// EventSessionStarted: the crawler handed a worker a fresh session.
	EventSessionStarted EventKind = iota
	// EventNodeDiscovered: a session reached a zID never measured before.
	EventNodeDiscovered
	// EventDuplicateNode: a session landed on an already-measured zID.
	EventDuplicateNode
	// EventBudgetExhausted: a node crossed its per-node byte budget (§3.4).
	EventBudgetExhausted
	// EventStopWindow: the stop rule's sliding window wrapped; Value is the
	// window's new-node rate.
	EventStopWindow
	// EventViolation: an experiment detected an end-to-end violation
	// (hijack, modified object, replaced certificate, monitored request,
	// stripped STARTTLS).
	EventViolation
	// EventCrawlStopped: the crawl ended; Detail says whether the stop rule
	// or the session cap ended it.
	EventCrawlStopped
	// EventStall: the progress watchdog saw no shard advance for its
	// configured interval; Detail is the experiment, Value the seconds
	// since the last progress.
	EventStall
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventSessionStarted:
		return "session_started"
	case EventNodeDiscovered:
		return "node_discovered"
	case EventDuplicateNode:
		return "duplicate_node"
	case EventBudgetExhausted:
		return "budget_exhausted"
	case EventStopWindow:
		return "stop_window"
	case EventViolation:
		return "violation"
	case EventCrawlStopped:
		return "crawl_stopped"
	case EventStall:
		return "stall"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// MarshalJSON renders the kind as its name.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON inverts MarshalJSON so snapshots round-trip.
func (k *EventKind) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	parsed, ok := ParseEventKind(name)
	if !ok {
		return fmt.Errorf("unknown event kind %q", name)
	}
	*k = parsed
	return nil
}

// ParseEventKind resolves a kind name (as rendered by String) back to its
// value — the -events-kind CLI filter and the /events query parameter.
func ParseEventKind(name string) (EventKind, bool) {
	for _, k := range EventKinds() {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// EventKinds lists every defined kind in declaration order — the single
// place the enum's upper bound lives, so usage listings and parsers cannot
// drift when kinds are added.
func EventKinds() []EventKind {
	kinds := make([]EventKind, 0, int(EventStall)+1)
	for k := EventSessionStarted; k <= EventStall; k++ {
		kinds = append(kinds, k)
	}
	return kinds
}

// Event is one typed crawl occurrence.
type Event struct {
	// Seq is the event's position in the full (possibly partially
	// overwritten) stream, starting at 0.
	Seq int64 `json:"seq"`
	// Kind classifies the event.
	Kind EventKind `json:"kind"`
	// Session and ZID locate the event when applicable.
	Session string `json:"session,omitempty"`
	ZID     string `json:"zid,omitempty"`
	// Country is the session's requested exit country.
	Country string `json:"country,omitempty"`
	// Detail is a free-form qualifier (violation type, stop reason).
	Detail string `json:"detail,omitempty"`
	// Value carries the event's numeric payload (window rate, bytes).
	Value float64 `json:"value,omitempty"`
}

// defaultTraceCap bounds a registry's event memory: large enough to hold a
// default-scale crawl's window updates and violations, small enough to cap
// a production daemon's footprint.
const defaultTraceCap = 4096

// Trace is a fixed-capacity ring buffer of events. Old events are
// overwritten once the buffer wraps; Seq numbers stay monotonic so readers
// can tell how much history was dropped.
type Trace struct {
	mu    sync.Mutex
	buf   []Event
	total int64
}

func newTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = defaultTraceCap
	}
	return &Trace{buf: make([]Event, 0, capacity)}
}

func (t *Trace) record(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	e.Seq = t.total
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.total%int64(cap(t.buf))] = e
	}
	t.total++
	t.mu.Unlock()
}

// Events returns the retained events in chronological order.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if t.total > int64(len(t.buf)) {
		// Wrapped: the oldest retained event sits at the write cursor.
		at := t.total % int64(cap(t.buf))
		out = append(out, t.buf[at:]...)
		out = append(out, t.buf[:at]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// Total reports how many events were ever recorded, including overwritten
// ones.
func (t *Trace) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}
