package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// promPrefix namespaces every exposed series, per Prometheus naming
// conventions for a single-application exporter.
const promPrefix = "tft_"

// promName sanitizes a registry name into a legal Prometheus metric name
// ([a-zA-Z_:][a-zA-Z0-9_:]*) under the tft_ prefix. Registry names are
// already snake_case, so this is a guard, not a transformation.
func promName(name string) string {
	var sb strings.Builder
	sb.WriteString(promPrefix)
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			sb.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// promLabel escapes a label value per the text exposition format.
func promLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// promFloat renders a float sample value.
func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and labeled counters as counter
// families, gauges as gauges, histograms as cumulative le-bucketed
// histogram families with _sum and _count. Output is sorted and
// deterministic; tft_events_total is always present, so the exposition is
// never empty.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	if s == nil {
		s = &Snapshot{}
	}
	var sb strings.Builder

	for _, name := range sortedNames(s.Counters) {
		n := promName(name)
		fmt.Fprintf(&sb, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[name])
	}
	n := promPrefix + "events_total"
	fmt.Fprintf(&sb, "# TYPE %s counter\n%s %d\n", n, n, s.EventsTotal)

	for _, name := range sortedNames(s.Gauges) {
		n := promName(name)
		fmt.Fprintf(&sb, "# TYPE %s gauge\n%s %d\n", n, n, s.Gauges[name])
	}

	for _, name := range sortedNames(s.Histograms) {
		h := s.Histograms[name]
		n := promName(name)
		fmt.Fprintf(&sb, "# TYPE %s histogram\n", n)
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&sb, "%s_bucket{le=%q} %d\n", n, promFloat(bound), cum)
		}
		fmt.Fprintf(&sb, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count)
		fmt.Fprintf(&sb, "%s_sum %s\n", n, promFloat(h.Sum))
		fmt.Fprintf(&sb, "%s_count %d\n", n, h.Count)
	}

	for _, name := range sortedNames(s.Labeled) {
		m := s.Labeled[name]
		n := promName(name)
		fmt.Fprintf(&sb, "# TYPE %s counter\n", n)
		for _, label := range sortedNames(m) {
			fmt.Fprintf(&sb, "%s{key=\"%s\"} %d\n", n, promLabel(label), m[label])
		}
	}

	_, err := io.WriteString(w, sb.String())
	return err
}

// WritePrometheus snapshots the registry and renders the exposition. A nil
// registry yields the minimal valid exposition.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
