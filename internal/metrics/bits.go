package metrics

import (
	"math"
	"unsafe"
)

// Thin aliases that keep the unsafe/math plumbing out of the hot-path
// code in metrics.go.

func unsafePointer(p *byte) unsafe.Pointer { return unsafe.Pointer(p) }

func float64bits(f float64) uint64     { return math.Float64bits(f) }
func float64frombits(b uint64) float64 { return math.Float64frombits(b) }
