// Package metrics is the crawl engine's observability substrate: a small,
// dependency-free registry of counters, gauges, fixed-bucket histograms,
// and labeled counters, plus a typed crawl-event trace (trace.go).
//
// Two properties shape the design:
//
//   - Nil-safety: every method works on a nil receiver as a no-op, so
//     instrumented code paths (the crawler, the budget, the super proxy)
//     never branch on "is telemetry enabled" — an un-threaded registry
//     simply costs a nil check.
//   - Lock sharding: counters stripe their hot adds across padded atomic
//     cells and labeled counters shard their maps by label hash, so the
//     worker pool's concurrent sessions do not serialize on telemetry.
package metrics

import (
	"hash/maphash"
	"sort"
	"sync"
	"sync/atomic"
)

// numShards stripes hot-path writes; a power of two so masking replaces
// modulo.
const numShards = 16

// cell is a padded atomic counter; the padding keeps adjacent shards on
// separate cache lines.
type cell struct {
	n atomic.Int64
	_ [56]byte
}

// shardIndex distributes calls across shards. A goroutine's stack address
// is stable within the goroutine and well spread between goroutines, which
// is exactly the distribution striping wants.
func shardIndex(p *byte) int {
	// The pointer itself (not its contents) is the entropy source; shift
	// past allocator alignment.
	return int((uintptr(unsafePointer(p)) >> 6) & (numShards - 1))
}

// Counter is a lock-free striped counter.
type Counter struct {
	shards [numShards]cell
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	var probe byte
	c.shards[shardIndex(&probe)].n.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the shards.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.shards {
		total += c.shards[i].n.Load()
	}
	return total
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed bucket boundaries. Bucket i
// counts observations v <= Bounds[i]; the final implicit bucket counts the
// rest.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // math.Float64bits-encoded running sum
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := float64frombits(old) + v
		if h.sum.CompareAndSwap(old, float64bits(next)) {
			return
		}
	}
}

// Count reports how many observations were recorded.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the total of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return float64frombits(h.sum.Load())
}

// labeledShard is one lock-guarded slice of a LabeledCounter's key space.
type labeledShard struct {
	mu sync.Mutex
	m  map[string]int64
}

// LabeledCounter is a counter keyed by a label (country code, AS number,
// zID). The key space shards across independently locked maps so
// concurrent sessions touching different labels rarely contend.
type LabeledCounter struct {
	seed   maphash.Seed
	shards [numShards]labeledShard
}

func newLabeledCounter() *LabeledCounter {
	lc := &LabeledCounter{seed: maphash.MakeSeed()}
	for i := range lc.shards {
		lc.shards[i].m = make(map[string]int64)
	}
	return lc
}

func (lc *LabeledCounter) shard(label string) *labeledShard {
	return &lc.shards[maphash.String(lc.seed, label)&(numShards-1)]
}

// Add increments label's count by n.
func (lc *LabeledCounter) Add(label string, n int64) {
	if lc == nil {
		return
	}
	s := lc.shard(label)
	s.mu.Lock()
	s.m[label] += n
	s.mu.Unlock()
}

// Inc increments label's count by one.
func (lc *LabeledCounter) Inc(label string) { lc.Add(label, 1) }

// Value reads label's count.
func (lc *LabeledCounter) Value(label string) int64 {
	if lc == nil {
		return 0
	}
	s := lc.shard(label)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[label]
}

// Values copies the full label->count map.
func (lc *LabeledCounter) Values() map[string]int64 {
	if lc == nil {
		return nil
	}
	out := make(map[string]int64)
	for i := range lc.shards {
		s := &lc.shards[i]
		s.mu.Lock()
		for k, v := range s.m {
			out[k] = v
		}
		s.mu.Unlock()
	}
	return out
}

// Registry names and owns a process's metrics. The zero value is not
// usable; construct with NewRegistry. A nil *Registry is a valid no-op
// sink: every accessor returns a nil instrument whose methods do nothing.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	labeled    map[string]*LabeledCounter
	trace      *Trace
}

// NewRegistry creates an empty registry with a default-capacity event
// trace.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		labeled:    make(map[string]*LabeledCounter),
		trace:      newTrace(defaultTraceCap),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with bounds on first
// use. Later calls ignore bounds and return the existing histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Labeled returns the named labeled counter, creating it on first use.
func (r *Registry) Labeled(name string) *LabeledCounter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	lc := r.labeled[name]
	r.mu.RUnlock()
	if lc != nil {
		return lc
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if lc = r.labeled[name]; lc == nil {
		lc = newLabeledCounter()
		r.labeled[name] = lc
	}
	return lc
}

// Record appends an event to the registry's trace.
func (r *Registry) Record(e Event) {
	if r == nil {
		return
	}
	r.trace.record(e)
}
