// Package core implements the paper's contribution: the measurement
// techniques that turn a P2P HTTP/S proxy service into a large-scale
// detector for end-to-end connectivity violations.
//
// Four experiment drivers mirror §4–§7:
//
//   - DNSExperiment: the d1/d2 NXDOMAIN-hijack probe, including the
//     super-proxy resolver gate and the shared-anycast filter.
//   - HTTPExperiment: four-object content-modification detection with the
//     3-nodes-per-AS sampling strategy and revisit-on-detection.
//   - TLSExperiment: two-phase certificate collection over CONNECT tunnels
//     against popular, international, and deliberately-invalid sites.
//   - MonitorExperiment: unique per-node domains plus a 24-hour watch for
//     unexpected third-party requests.
//
// The drivers observe the world only through what the paper could see: the
// proxy client's responses and debug headers, the authoritative DNS query
// log, and the measurement web server's request log. Ground truth from the
// population package is never consulted.
package core

import (
	"context"
	"math/rand/v2"
	"slices"
	"strings"
	"sync"
	"time"

	"github.com/tftproject/tft/internal/geo"
	"github.com/tftproject/tft/internal/metrics"
	"github.com/tftproject/tft/internal/progress"
	"github.com/tftproject/tft/internal/proxynet"
	"github.com/tftproject/tft/internal/trace"
)

// Budget enforces the paper's per-node courtesy cap (§3.4): never more than
// MaxBytes downloaded through any single exit node across all experiments.
type Budget struct {
	// MaxBytes per zID; zero means the paper's 1 MB.
	MaxBytes int64
	// Metrics, when non-nil, receives the charged-byte counter and a
	// budget-exhausted event the first time each node crosses the cap.
	Metrics *metrics.Registry

	mu   sync.Mutex
	used map[string]int64
}

// DefaultBudgetBytes is the paper's 1 MB per exit node.
const DefaultBudgetBytes = 1 << 20

// NewBudget creates a budget tracker.
func NewBudget(maxBytes int64) *Budget {
	if maxBytes <= 0 {
		maxBytes = DefaultBudgetBytes
	}
	return &Budget{MaxBytes: maxBytes, used: make(map[string]int64)}
}

// Charge records n bytes against zid, reporting whether the node remains
// within budget. Callers must stop measuring a node once Charge returns
// false.
func (b *Budget) Charge(zid string, n int) bool {
	b.mu.Lock()
	before := b.used[zid]
	b.used[zid] += int64(n)
	after := b.used[zid]
	b.mu.Unlock()
	b.Metrics.Counter("budget_charged_bytes").Add(int64(n))
	if before <= b.MaxBytes && after > b.MaxBytes {
		b.Metrics.Counter("budget_exhausted_total").Inc()
		b.Metrics.Record(metrics.Event{Kind: metrics.EventBudgetExhausted,
			ZID: zid, Value: float64(after)})
	}
	return after <= b.MaxBytes
}

// Used reports the bytes charged to zid.
func (b *Budget) Used(zid string) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used[zid]
}

// CrawlConfig tunes the §3.2 exit-node discovery loop shared by all
// experiments.
type CrawlConfig struct {
	// Workers is the number of concurrent measurement sessions.
	Workers int
	// Window and StopNewRate implement the stop rule: once fewer than
	// StopNewRate of the last Window sessions discovered a new zID, the
	// crawl ends ("the rate of new exit nodes we discover drops
	// significantly").
	Window      int
	StopNewRate float64
	// MaxSessions bounds the crawl regardless (0 = derived from the
	// country weights).
	MaxSessions int
	// Metrics, when non-nil, receives the crawl's live telemetry: session
	// and novelty counters, per-country session counts, the stop-rule
	// window trajectory, and the typed event trace. A nil registry
	// disables instrumentation at the cost of a nil check.
	Metrics *metrics.Registry
	// Tracer, when non-nil, wraps every measurement session in a client
	// root span whose context the proxy chain's spans parent under,
	// yielding a complete per-request trace tree. Nil disables tracing.
	Tracer *trace.Tracer
	// Progress, when non-nil, is the flight recorder: the crawler reports
	// each issued probe and the drivers report per-shard outcomes into it,
	// so a Sampler can expose live done/total, rates, and ETA while the
	// crawl runs. Nil disables progress reporting.
	Progress *progress.Tracker
	// Now, when non-nil, timestamps each probe so its duration feeds the
	// probe_duration_seconds histogram. Simulated runs inject the world's
	// virtual clock; benchmarks may inject a wall clock to measure real
	// per-probe latency. Nil disables probe timing.
	Now func() time.Time
}

// withDefaults fills unset fields.
func (c CrawlConfig) withDefaults(totalNodes int) CrawlConfig {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Window <= 0 {
		c.Window = 400
	}
	if c.StopNewRate <= 0 {
		c.StopNewRate = 0.05
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 12*totalNodes + 1000
	}
	return c
}

// crawler implements weighted country selection, zID dedup, and the stop
// rule. Safe for concurrent use by the worker pool.
type crawler struct {
	cfg       CrawlConfig
	countries []geo.CountryCode
	cum       []int // cumulative weights
	totalW    int

	mu            sync.Mutex
	rng           *rand.Rand
	seen          map[string]bool
	recent        []bool
	recentAt      int
	filled        int
	newInWin      int
	sessions      int
	stopped       bool
	stopEventDone bool

	// Cached instrument handles; all nil-safe no-ops when cfg.Metrics is
	// nil, so the hot path never branches on telemetry being enabled.
	mSessions   *metrics.Counter
	mNodes      *metrics.Counter
	mDuplicates *metrics.Counter
	mByCountry  *metrics.LabeledCounter
	mWindowNew  *metrics.Gauge
	mWindowRate *metrics.Histogram
	mProbeSecs  *metrics.Histogram
}

// newCrawler builds a crawler over the service-reported country weights.
func newCrawler(cfg CrawlConfig, weights map[geo.CountryCode]int, rng *rand.Rand) *crawler {
	total := 0
	var countries []geo.CountryCode
	for cc := range weights {
		countries = append(countries, cc)
	}
	// Deterministic order for reproducible sampling.
	sortCountries(countries)
	cum := make([]int, len(countries))
	for i, cc := range countries {
		total += weights[cc]
		cum[i] = total
	}
	cfg = cfg.withDefaults(total)
	m := cfg.Metrics
	return &crawler{
		cfg: cfg, countries: countries, cum: cum, totalW: total,
		rng:    rng,
		seen:   make(map[string]bool),
		recent: make([]bool, cfg.Window),

		mSessions:   m.Counter("crawl_sessions_total"),
		mNodes:      m.Counter("crawl_nodes_total"),
		mDuplicates: m.Counter("crawl_duplicates_total"),
		mByCountry:  m.Labeled("crawl_sessions_by_country"),
		mWindowNew:  m.Gauge("crawl_window_new"),
		mWindowRate: m.Histogram("crawl_window_new_rate", windowRateBounds),
		mProbeSecs:  m.Histogram("probe_duration_seconds", probeSecondsBounds),
	}
}

// probeSecondsBounds bucket per-probe durations. The sub-millisecond
// buckets resolve in-process simulated probes under a wall clock; the upper
// buckets cover virtual-clock worlds where middlebox delays advance
// simulated time.
var probeSecondsBounds = []float64{
	1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3,
	0.01, 0.05, 0.1, 0.5, 1, 5, 30,
}

// windowRateBounds bucket the stop-rule window's new-node rate; the 0.05
// boundary is the default StopNewRate, so the lowest buckets show how the
// crawl approached its stopping condition.
var windowRateBounds = []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8}

func sortCountries(cs []geo.CountryCode) {
	slices.Sort(cs)
}

// next picks a country (weight-proportional) and a fresh session ID, or
// reports that the crawl should stop. A cancelled ctx stops the crawl as
// if the session cap had been reached.
func (c *crawler) next(ctx context.Context) (geo.CountryCode, string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ctx.Err() != nil {
		c.recordStop("context_cancelled")
		return "", "", false
	}
	if c.stopped || c.totalW == 0 {
		return "", "", false
	}
	if c.sessions >= c.cfg.MaxSessions {
		c.recordStop("session_cap")
		return "", "", false
	}
	c.sessions++
	// "s%08d" by hand: one allocation instead of Sprintf's boxing, on a
	// path that runs once per session.
	var sb [9]byte
	sb[0] = 's'
	for i, n := 8, c.sessions; i >= 1; i, n = i-1, n/10 {
		sb[i] = byte('0' + n%10)
	}
	id := string(sb[:])
	w := int(c.rng.IntN(c.totalW))
	idx := 0
	for idx < len(c.cum) && c.cum[idx] <= w {
		idx++
	}
	cc := c.countries[idx]
	c.mSessions.Inc()
	c.mByCountry.Inc(string(cc))
	c.cfg.Metrics.Record(metrics.Event{Kind: metrics.EventSessionStarted,
		Session: id, Country: string(cc)})
	return cc, id, true
}

// recordStop emits the crawl-stopped event once. Callers hold c.mu.
func (c *crawler) recordStop(reason string) {
	if c.stopEventDone {
		return
	}
	c.stopEventDone = true
	c.cfg.Metrics.Record(metrics.Event{Kind: metrics.EventCrawlStopped,
		Detail: reason, Value: float64(c.sessions)})
}

// observe records a measured zID, returning false when this node was
// already measured. It also advances the stop rule.
func (c *crawler) observe(zid string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	isNew := !c.seen[zid]
	if isNew {
		c.seen[zid] = true
		c.mNodes.Inc()
		c.cfg.Metrics.Record(metrics.Event{Kind: metrics.EventNodeDiscovered, ZID: zid})
	} else {
		c.mDuplicates.Inc()
		c.cfg.Metrics.Record(metrics.Event{Kind: metrics.EventDuplicateNode, ZID: zid})
	}
	// Ring buffer of recent novelty outcomes.
	if c.filled == len(c.recent) {
		if c.recent[c.recentAt] {
			c.newInWin--
		}
	} else {
		c.filled++
	}
	c.recent[c.recentAt] = isNew
	if isNew {
		c.newInWin++
	}
	c.recentAt = (c.recentAt + 1) % len(c.recent)
	c.mWindowNew.Set(int64(c.newInWin))
	if c.filled == len(c.recent) && c.recentAt == 0 {
		// One trajectory sample per full window turn: how fast is the
		// crawl still finding new nodes?
		rate := float64(c.newInWin) / float64(len(c.recent))
		c.mWindowRate.Observe(rate)
		c.cfg.Metrics.Record(metrics.Event{Kind: metrics.EventStopWindow, Value: rate})
	}
	if c.filled == len(c.recent) &&
		float64(c.newInWin) < c.cfg.StopNewRate*float64(len(c.recent)) {
		c.stopped = true
		c.recordStop("stop_rule")
	}
	return isNew
}

// Stats summarises a crawl.
type Stats struct {
	// Sessions is how many proxy sessions the crawl spent.
	Sessions int
	// UniqueNodes is how many distinct zIDs were measured.
	UniqueNodes int
	// StoppedByRule reports whether the new-node-rate rule (rather than the
	// session cap) ended the crawl.
	StoppedByRule bool
	// Faulted counts probes lost to transport-layer faults (injected chaos
	// or their real-world analogues). They are excluded from violation
	// denominators — a reset mid-probe says nothing about the node's DNS or
	// content path — and surfaced here as the run's error budget. Filled by
	// the driver after the shard merge, not by the crawler.
	Faulted int
}

func (c *crawler) stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Sessions: c.sessions, UniqueNodes: len(c.seen), StoppedByRule: c.stopped}
}

// traceProbe opens the client-side root span for one measurement session.
// The returned context parents everything the proxy chain does for the
// probe; done stamps the measured zID and outcome, then closes the span.
// With a nil CrawlConfig.Tracer both are cheap no-ops.
func (c *crawler) traceProbe(ctx context.Context, name string, cc geo.CountryCode, sess string) (context.Context, func(zid string, oc outcome)) {
	span := c.cfg.Tracer.StartRoot(name, trace.KindClient,
		trace.Str("session", sess), trace.Str("country", string(cc)))
	return trace.NewContext(ctx, span.Context()), func(zid string, oc outcome) {
		if zid != "" {
			span.SetAttrs(trace.Str("zid", zid))
		}
		span.SetAttrs(trace.Str("outcome", oc.String()))
		switch oc {
		case outcomeFailed:
			span.SetError("probe_failed")
		case outcomeFault:
			span.SetError("probe_faulted")
		}
		span.End()
	}
}

// workers reports the resolved worker count — the number of shards a
// sharded consumer of runWorkers must size its sinks for.
func (c *crawler) workers() int { return c.cfg.Workers }

// beginProgress announces the crawl to the flight recorder: the experiment
// name, the node population (the ETA denominator — the service-reported
// country weights the crawl works through), and the shard count. Drivers
// call it once, right after newCrawler.
func (c *crawler) beginProgress(experiment string) {
	c.cfg.Progress.Begin(experiment, int64(c.totalW), c.cfg.Workers)
}

// runWorkers drives measure() from cfg.Workers goroutines until the crawl
// stops or ctx is cancelled. measure is called with the worker's shard
// index, a country, and a session ID, and must do its own recording; a
// given shard's calls are sequential, so per-shard state needs no
// synchronization. Cancellation is checked before every session hand-out,
// so each worker finishes at most the session it is in. With a non-nil
// cfg.Now each probe's duration is observed into probe_duration_seconds.
func (c *crawler) runWorkers(ctx context.Context, measure func(shard int, cc geo.CountryCode, session string)) {
	var wg sync.WaitGroup
	for w := 0; w < c.cfg.Workers; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for {
				cc, sess, ok := c.next(ctx)
				if !ok {
					return
				}
				c.cfg.Progress.Probe(shard)
				if c.cfg.Now == nil {
					measure(shard, cc, sess)
					continue
				}
				start := c.cfg.Now()
				measure(shard, cc, sess)
				c.mProbeSecs.Observe(c.cfg.Now().Sub(start).Seconds())
			}
		}(w)
	}
	wg.Wait()
}

// classifyFailure splits a failed probe between honest failure and
// transport fault: the client's own error is checked first, then the
// service-reported debug error (the super proxy stamps ErrPeerTransport
// when the exit node's fetch died to a reset/stall/truncation). Faulted
// probes are tallied into the run's error budget instead of the failure
// count, so chaos does not masquerade as middlebox behaviour — and so
// genuine failures are not hidden by it either.
func classifyFailure(err error, dbg *proxynet.Debug) outcome {
	if proxynet.IsTransportFault(err) {
		return outcomeFault
	}
	if dbg != nil && dbg.Err == proxynet.ErrPeerTransport {
		return outcomeFault
	}
	return outcomeFailed
}

// shardSink accumulates one worker shard's probe records and outcome
// tallies. Each shard is written by exactly one worker goroutine, so the
// hot path appends without locks; mergeShards reduces the partials after
// the crawl.
type shardSink[T any] struct {
	obs     []T
	tallies shardTallies
}

// shardTallies are the non-observation outcome counts a crawl accumulates.
type shardTallies struct {
	failures   int
	duplicates int
	discarded  int
	faults     int
}

func (t *shardTallies) add(o shardTallies) {
	t.failures += o.failures
	t.duplicates += o.duplicates
	t.discarded += o.discarded
	t.faults += o.faults
}

// newShardSinks sizes one sink per worker shard.
func newShardSinks[T any](workers int) []shardSink[T] {
	return make([]shardSink[T], workers)
}

// mergeShards reduces per-shard partials into a single dataset: tallies
// sum, and observations are concatenated then canonically ordered by zID.
// Because the crawler dedups zIDs globally, the sort is a total order, so
// the merged dataset is independent of worker count and scheduling.
func mergeShards[T any](shards []shardSink[T], zid func(T) string) (obs []T, t shardTallies) {
	n := 0
	for i := range shards {
		n += len(shards[i].obs)
	}
	obs = make([]T, 0, n)
	for i := range shards {
		obs = append(obs, shards[i].obs...)
		t.add(shards[i].tallies)
	}
	slices.SortFunc(obs, func(a, b T) int { return strings.Compare(zid(a), zid(b)) })
	return obs, t
}
