package core

import (
	"context"
	"fmt"
	"net/netip"

	"github.com/tftproject/tft/internal/geo"
	"github.com/tftproject/tft/internal/metrics"
	"github.com/tftproject/tft/internal/proxynet"
	"github.com/tftproject/tft/internal/simnet"
	"github.com/tftproject/tft/internal/smtpwire"
)

// SMTPObservation is one node's view of the mail server — the §3.4
// extension: through a VPN that tunnels arbitrary ports, SMTP becomes
// measurable.
type SMTPObservation struct {
	ZID     string
	NodeIP  netip.Addr
	ASN     geo.ASN
	Country geo.CountryCode
	// Blocked: the tunnel opened but no SMTP banner ever arrived — the
	// signature of ISP port-25 blocking (indistinguishable on the wire
	// from a dead server, which is why the experiment uses its own mail
	// server as the target).
	Blocked bool
	// StartTLS reports whether the STARTTLS capability survived the path.
	StartTLS bool
	// Banner is the greeting the node saw.
	Banner string
}

// SMTPDataset is the extension experiment's output.
type SMTPDataset struct {
	Observations []*SMTPObservation
	Crawl        Stats
	Failures     int
	Duplicates   int
	// Faults counts probes lost to transport-layer faults before the
	// tunnel opened. Faults after the tunnel opens are indistinguishable
	// from port-25 blocking on the wire (the paper's own point about
	// silent port blocking) and land in Blocked.
	Faults int
}

// SMTPExperiment probes a mail server the measurement team controls
// through every exit node and detects port-25 blocking and STARTTLS
// stripping. It requires a tunnel service with AnyPortConnect (§3.4's
// hypothetical VPN); against the Luminati-faithful 443-only configuration
// every probe fails at the proxy, which is itself the paper's point.
type SMTPExperiment struct {
	Client  *proxynet.Client
	Geo     *geo.Registry
	Weights map[geo.CountryCode]int
	Crawl   CrawlConfig
	Seed    uint64
	// MailIP/MailHost locate the measurement mail server.
	MailIP   netip.Addr
	MailHost string
}

// Run executes the crawl.
func (e *SMTPExperiment) Run(ctx context.Context) (*SMTPDataset, error) {
	m := e.Crawl.Metrics
	cr := newCrawler(e.Crawl, e.Weights, simnet.SubRand(e.Seed, "crawl/smtp"))
	cr.beginProgress("smtp")
	prog := e.Crawl.Progress
	ds := &SMTPDataset{}
	shards := newShardSinks[*SMTPObservation](cr.workers())
	cr.runWorkers(ctx, func(shard int, cc geo.CountryCode, sess string) {
		pctx, done := cr.traceProbe(ctx, "probe.smtp", cc, sess)
		obs, oc := e.measure(pctx, cr, cc, sess)
		zid := ""
		if obs != nil {
			zid = obs.ZID
		}
		done(zid, oc)
		sink := &shards[shard]
		switch oc {
		case outcomeOK:
			prog.Done(shard)
			sink.obs = append(sink.obs, obs)
			if obs.Blocked {
				m.Counter("smtp_blocked_total").Inc()
			} else if !obs.StartTLS {
				prog.Violation(shard)
				m.Counter("smtp_stripped_total").Inc()
				m.Record(metrics.Event{Kind: metrics.EventViolation,
					Session: sess, ZID: obs.ZID, Country: string(obs.Country),
					Detail: "smtp_starttls_stripped"})
			}
		case outcomeFailed:
			sink.tallies.failures++
			prog.Fail(shard)
			m.Counter("crawl_failures_total").Inc()
		case outcomeDuplicate:
			sink.tallies.duplicates++
			prog.Duplicate(shard)
		case outcomeFault:
			sink.tallies.faults++
			prog.Fault(shard)
			m.Counter("fault_probes_total").Inc()
		}
	})
	var t shardTallies
	ds.Observations, t = mergeShards(shards, func(o *SMTPObservation) string { return o.ZID })
	ds.Failures, ds.Duplicates, ds.Faults = t.failures, t.duplicates, t.faults
	ds.Crawl = cr.stats()
	ds.Crawl.Faulted = t.faults
	return ds, ctx.Err()
}

// measure opens one tunnel to port 25 and runs the SMTP session prefix.
func (e *SMTPExperiment) measure(ctx context.Context, cr *crawler, cc geo.CountryCode, sess string) (*SMTPObservation, outcome) {
	opts := proxynet.Options{Country: cc, Session: sess}
	conn, dbg, err := e.Client.Connect(ctx, opts, fmt.Sprintf("%s:25", e.MailIP))
	if err != nil || dbg == nil || dbg.ZID == "" {
		return nil, classifyFailure(err, dbg)
	}
	defer conn.Close()
	if !cr.observe(dbg.ZID) {
		return nil, outcomeDuplicate
	}
	obs := &SMTPObservation{ZID: dbg.ZID, NodeIP: dbg.NodeIP}
	if asn, ok := e.Geo.LookupAS(obs.NodeIP); ok {
		obs.ASN = asn
		obs.Country, _ = e.Geo.Country(asn)
	}
	session, err := smtpwire.Probe(conn, e.MailHost)
	if err != nil {
		// The tunnel died before a banner: the node's ISP blocks the port.
		obs.Blocked = true
		return obs, outcomeOK
	}
	obs.Banner = session.Banner
	obs.StartTLS = session.StartTLS
	return obs, outcomeOK
}
