package core

import (
	"bytes"
	"context"
	"fmt"
	"net/netip"
	"strconv"
	"strings"
	"sync"

	"github.com/tftproject/tft/internal/content"
	"github.com/tftproject/tft/internal/dnsserver"
	"github.com/tftproject/tft/internal/geo"
	"github.com/tftproject/tft/internal/metrics"
	"github.com/tftproject/tft/internal/proxynet"
	"github.com/tftproject/tft/internal/simnet"
)

// ObjectOutcome classifies what came back for one measurement object.
type ObjectOutcome int

// Outcomes per object.
const (
	// ObjUnmodified: byte-identical to what the origin served.
	ObjUnmodified ObjectOutcome = iota
	// ObjModified: 200 response with different bytes.
	ObjModified
	// ObjBlocked: replaced by an error/block page (non-200).
	ObjBlocked
	// ObjEmpty: 200 with an empty body.
	ObjEmpty
	// ObjError: the proxied fetch failed.
	ObjError
)

// String names the outcome.
func (o ObjectOutcome) String() string {
	switch o {
	case ObjUnmodified:
		return "unmodified"
	case ObjModified:
		return "modified"
	case ObjBlocked:
		return "blocked"
	case ObjEmpty:
		return "empty"
	case ObjError:
		return "error"
	}
	return fmt.Sprintf("ObjectOutcome(%d)", int(o))
}

// ObjectResult is the per-object record.
type ObjectResult struct {
	Outcome ObjectOutcome
	// BodyLen is the received length.
	BodyLen int
	// Body is retained only for modified HTML (signature extraction) and
	// block pages (filtering).
	Body []byte
	// ImageRatio is received/original size for the image object.
	ImageRatio float64
}

// HTTPObservation is one measured node.
type HTTPObservation struct {
	ZID     string
	NodeIP  netip.Addr
	ASN     geo.ASN
	Country geo.CountryCode
	Objects [4]ObjectResult
}

// AnyModified reports whether any object came back tampered.
func (o *HTTPObservation) AnyModified() bool {
	for _, r := range o.Objects {
		if r.Outcome != ObjUnmodified {
			return true
		}
	}
	return false
}

// HTTPDataset is the HTTP experiment's output.
type HTTPDataset struct {
	Observations []*HTTPObservation
	Crawl        Stats
	Failures     int
	Duplicates   int
	// SkippedQuota counts nodes left unmeasured because their AS already
	// had its three samples and showed no modification (§5.1).
	SkippedQuota int
	// Faults counts probes lost to transport-layer faults; they are
	// excluded from violation denominators (see Stats.Faulted).
	Faults int
}

// HTTPExperiment drives §5's methodology.
type HTTPExperiment struct {
	Client  *proxynet.Client
	Auth    *dnsserver.Authority
	Geo     *geo.Registry
	Zone    string
	Weights map[geo.CountryCode]int
	Budget  *Budget
	Crawl   CrawlConfig
	Seed    uint64
	// PerASQuota is the initial sample per AS (paper: 3). Setting it very
	// high disables the sampling strategy (the exhaustive ablation).
	PerASQuota int
	// Kinds restricts the fetched objects (ablations); nil means all four.
	Kinds []content.Kind
}

const httpPrefix = "h-"

// InstallRules makes h-* names resolve to the web server.
func (e *HTTPExperiment) InstallRules(webIP netip.Addr) {
	e.Auth.SetFallback(func(name string) dnsserver.Rule {
		if strings.HasPrefix(name, httpPrefix) {
			return dnsserver.Always(webIP)
		}
		return nil
	})
}

// Run executes the crawl.
func (e *HTTPExperiment) Run(ctx context.Context) (*HTTPDataset, error) {
	if e.Budget == nil {
		e.Budget = NewBudget(0)
	}
	if e.PerASQuota <= 0 {
		e.PerASQuota = 3
	}
	kinds := e.Kinds
	if kinds == nil {
		kinds = content.Kinds
	}
	m := e.Crawl.Metrics
	if e.Budget.Metrics == nil {
		e.Budget.Metrics = m
	}
	cr := newCrawler(e.Crawl, e.Weights, simnet.SubRand(e.Seed, "crawl/http"))
	cr.beginProgress("http")
	prog := e.Crawl.Progress
	ds := &HTTPDataset{}
	shards := newShardSinks[*HTTPObservation](cr.workers())
	// The AS sampling quota is inherently global — every shard consults it
	// before fully measuring a node — so it stays behind a mutex while the
	// dataset accumulation streams lock-free into per-shard sinks.
	var mu sync.Mutex
	asCount := make(map[geo.ASN]int)
	asFlagged := make(map[geo.ASN]bool)

	cr.runWorkers(ctx, func(shard int, cc geo.CountryCode, sess string) {
		pctx, done := cr.traceProbe(ctx, "probe.http", cc, sess)
		obs, oc := e.measure(pctx, cr, cc, sess, kinds, &mu, asCount, asFlagged)
		zid := ""
		if obs != nil {
			zid = obs.ZID
		}
		done(zid, oc)
		sink := &shards[shard]
		switch oc {
		case outcomeOK:
			prog.Done(shard)
			sink.obs = append(sink.obs, obs)
			for _, res := range obs.Objects {
				m.Labeled("http_object_outcomes").Inc(res.Outcome.String())
			}
			mu.Lock()
			asCount[obs.ASN]++
			if obs.AnyModified() {
				asFlagged[obs.ASN] = true
			}
			mu.Unlock()
			if obs.AnyModified() {
				prog.Violation(shard)
				m.Counter("http_modified_total").Inc()
				m.Record(metrics.Event{Kind: metrics.EventViolation,
					Session: sess, ZID: obs.ZID, Country: string(obs.Country),
					Detail: "http_modified"})
			}
		case outcomeFailed:
			sink.tallies.failures++
			prog.Fail(shard)
			m.Counter("crawl_failures_total").Inc()
		case outcomeDuplicate:
			sink.tallies.duplicates++
			prog.Duplicate(shard)
		case outcomeDiscarded:
			sink.tallies.discarded++
			prog.Discard(shard)
			m.Counter("http_quota_skipped_total").Inc()
		case outcomeFault:
			sink.tallies.faults++
			prog.Fault(shard)
			m.Counter("fault_probes_total").Inc()
		}
	})
	var t shardTallies
	ds.Observations, t = mergeShards(shards, func(o *HTTPObservation) string { return o.ZID })
	ds.Failures, ds.Duplicates, ds.SkippedQuota, ds.Faults =
		t.failures, t.duplicates, t.discarded, t.faults
	ds.Crawl = cr.stats()
	ds.Crawl.Faulted = t.faults
	return ds, ctx.Err()
}

// measure fetches the four objects through one node.
func (e *HTTPExperiment) measure(ctx context.Context, cr *crawler, cc geo.CountryCode, sess string,
	kinds []content.Kind, mu *sync.Mutex, asCount map[geo.ASN]int, asFlagged map[geo.ASN]bool) (*HTTPObservation, outcome) {

	opts := proxynet.Options{Country: cc, Session: sess}
	obs := &HTTPObservation{}
	for i := range obs.Objects {
		obs.Objects[i].Outcome = ObjError
	}

	for idx, k := range kinds {
		host := httpPrefix + sess + "-" + strconv.Itoa(idx) + "." + e.Zone
		resp, dbg, err := e.Client.Get(ctx, opts, "http://"+host+k.Path())
		if err != nil || dbg == nil || dbg.ZID == "" || dbg.Err != "" {
			oc := classifyFailure(err, dbg)
			if oc == outcomeFault {
				// A transport fault mid-measurement would leave ObjError
				// objects that AnyModified reads as tampering; exclude the
				// probe into the error budget rather than misclassify it.
				return nil, outcomeFault
			}
			if idx == 0 {
				return nil, oc
			}
			continue
		}
		if idx == 0 {
			if !cr.observe(dbg.ZID) {
				return nil, outcomeDuplicate
			}
			obs.ZID = dbg.ZID
			obs.NodeIP = dbg.NodeIP
			if asn, ok := e.Geo.LookupAS(obs.NodeIP); ok {
				obs.ASN = asn
				obs.Country, _ = e.Geo.Country(asn)
			}
			// The bandwidth-minimizing strategy: skip fully measuring
			// ASes that already gave 3 clean samples (§5.1).
			mu.Lock()
			skip := asCount[obs.ASN] >= e.PerASQuota && !asFlagged[obs.ASN]
			mu.Unlock()
			if skip {
				return nil, outcomeDiscarded
			}
		} else if dbg.ZID != obs.ZID {
			// Node switched mid-measurement; keep what we have.
			continue
		}
		if !e.Budget.Charge(obs.ZID, len(resp.Body)) {
			break
		}
		obs.Objects[int(k)] = classify(k, resp.StatusCode, resp.Body)
	}
	if obs.ZID == "" {
		return nil, outcomeFailed
	}
	return obs, outcomeOK
}

// classify compares a received object with the canonical one.
func classify(k content.Kind, status int, body []byte) ObjectResult {
	orig := content.Object(k)
	r := ObjectResult{BodyLen: len(body)}
	switch {
	case status != 200:
		r.Outcome = ObjBlocked
		r.Body = body
	case len(body) == 0:
		r.Outcome = ObjEmpty
	case bytes.Equal(body, orig):
		r.Outcome = ObjUnmodified
	default:
		r.Outcome = ObjModified
		if k == content.KindHTML {
			r.Body = body
		}
		if k == content.KindImage {
			r.ImageRatio = content.CompressionRatio(orig, body)
		}
	}
	return r
}
