package core

import (
	"context"
	"math/rand/v2"
	"net/netip"
	"testing"
	"time"

	"github.com/tftproject/tft/internal/content"
	"github.com/tftproject/tft/internal/geo"
	"github.com/tftproject/tft/internal/population"
	"github.com/tftproject/tft/internal/simnet"
)

const (
	testSeed  = 7
	dnsScale  = 0.01
	httpScale = 0.05
	tlsScale  = 0.004
	monScale  = 0.01
)

// runDNS builds a DNS world and runs the experiment over it.
func runDNS(t testing.TB, scale float64) (*population.World, *DNSDataset) {
	t.Helper()
	w, err := population.BuildDNSWorld(testSeed, scale)
	if err != nil {
		t.Fatal(err)
	}
	exp := &DNSExperiment{
		Client: w.Client, Auth: w.Auth, Web: w.Web, Geo: w.Geo,
		Zone: population.Zone, Weights: w.Pool.CountryCounts(), Seed: testSeed,
	}
	exp.InstallRules(population.WebIP)
	ds, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return w, ds
}

func TestBudget(t *testing.T) {
	b := NewBudget(100)
	if !b.Charge("z1", 60) {
		t.Fatal("first charge rejected")
	}
	if b.Charge("z1", 60) {
		t.Fatal("over-budget charge accepted")
	}
	if !b.Charge("z2", 60) {
		t.Fatal("other node affected")
	}
	if b.Used("z1") != 120 {
		t.Fatalf("Used = %d", b.Used("z1"))
	}
	if NewBudget(0).MaxBytes != DefaultBudgetBytes {
		t.Fatal("default budget not applied")
	}
}

func TestCrawlerStopRule(t *testing.T) {
	weights := map[geo.CountryCode]int{"DE": 50, "US": 150}
	cfg := CrawlConfig{Workers: 1, Window: 50, StopNewRate: 0.1, MaxSessions: 100000}
	cr := newCrawler(cfg, weights, testRand())
	// Simulate a world with 30 nodes: novelty dries up, crawl must stop
	// well before MaxSessions.
	for {
		cc, _, ok := cr.next(context.Background())
		if !ok {
			break
		}
		_ = cc
		zid := string(rune('a' + cr.rng.IntN(30)))
		cr.observe(zid)
	}
	st := cr.stats()
	if !st.StoppedByRule {
		t.Fatal("stop rule never triggered")
	}
	if st.Sessions >= 100000 {
		t.Fatal("crawl ran to the session cap")
	}
	if st.UniqueNodes < 25 {
		t.Fatalf("coverage = %d/30 nodes", st.UniqueNodes)
	}
}

func TestCrawlerCountryProportional(t *testing.T) {
	weights := map[geo.CountryCode]int{"DE": 100, "US": 300}
	cr := newCrawler(CrawlConfig{MaxSessions: 8000, Window: 10000}, weights, testRand())
	counts := map[geo.CountryCode]int{}
	for {
		cc, _, ok := cr.next(context.Background())
		if !ok {
			break
		}
		counts[cc]++
	}
	frac := float64(counts["US"]) / float64(counts["US"]+counts["DE"])
	if frac < 0.70 || frac > 0.80 {
		t.Fatalf("US fraction = %.2f, want ~0.75", frac)
	}
}

func TestDNSExperimentEndToEnd(t *testing.T) {
	w, ds := runDNS(t, dnsScale)
	if len(ds.Observations) == 0 {
		t.Fatal("no observations")
	}
	if !ds.Crawl.StoppedByRule {
		t.Error("crawl did not stop by rule")
	}

	// Coverage: most of the pool measured.
	coverage := float64(len(ds.Observations)) / float64(w.Pool.Len())
	if coverage < 0.80 {
		t.Fatalf("coverage = %.2f", coverage)
	}

	// Measured hijack rate tracks the world's ~4.8%, excluding filtered
	// shared-anycast nodes.
	measured, hijacked, filtered := 0, 0, 0
	for _, o := range ds.Observations {
		if o.SharedAnycast {
			filtered++
			continue
		}
		measured++
		if o.Hijacked {
			hijacked++
		}
	}
	rate := float64(hijacked) / float64(measured)
	if rate < 0.035 || rate > 0.065 {
		t.Fatalf("hijack rate = %.3f, want ~0.048", rate)
	}
	if filtered == 0 {
		t.Error("no shared-anycast nodes filtered; footnote-8 path untested")
	}

	// Per-node verdicts must match ground truth.
	wrong := 0
	for _, o := range ds.Observations {
		if o.SharedAnycast {
			continue
		}
		truth := w.TruthFor(o.ZID)
		if truth == nil {
			t.Fatalf("measured unknown node %s", o.ZID)
		}
		if o.Hijacked != (truth.DNSHijacker != "") {
			wrong++
		}
	}
	if wrong > 0 {
		t.Fatalf("%d verdicts disagree with ground truth", wrong)
	}
}

func TestDNSExperimentResolverAndLanding(t *testing.T) {
	w, ds := runDNS(t, dnsScale)
	sawLanding := 0
	for _, o := range ds.Observations {
		if o.SharedAnycast {
			continue
		}
		if !o.ResolverIP.IsValid() {
			t.Fatalf("node %s has no resolver IP", o.ZID)
		}
		if o.Hijacked {
			if len(o.LandingDomains) > 0 {
				sawLanding++
			}
			truth := w.TruthFor(o.ZID)
			_ = truth
		}
	}
	if sawLanding == 0 {
		t.Fatal("no hijacked node produced landing domains")
	}
}

func TestDNSCountryDerivedFromIP(t *testing.T) {
	w, ds := runDNS(t, dnsScale)
	for _, o := range ds.Observations {
		truth := w.TruthFor(o.ZID)
		if o.Country != truth.Country {
			t.Fatalf("node %s measured country %q, truth %q", o.ZID, o.Country, truth.Country)
		}
		if o.ASN != truth.ASN {
			t.Fatalf("node %s measured AS%d, truth AS%d", o.ZID, o.ASN, truth.ASN)
		}
	}
}

func TestHTTPExperimentEndToEnd(t *testing.T) {
	w, err := population.BuildHTTPWorld(testSeed, httpScale)
	if err != nil {
		t.Fatal(err)
	}
	exp := &HTTPExperiment{
		Client: w.Client, Auth: w.Auth, Geo: w.Geo,
		Zone: population.Zone, Weights: w.Pool.CountryCounts(), Seed: testSeed,
	}
	exp.InstallRules(population.WebIP)
	ds, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Observations) == 0 {
		t.Fatal("no observations")
	}

	htmlMod, imgMod := 0, 0
	for _, o := range ds.Observations {
		truth := w.TruthFor(o.ZID)
		html := o.Objects[content.KindHTML]
		img := o.Objects[content.KindImage]
		if html.Outcome == ObjModified || html.Outcome == ObjBlocked {
			htmlMod++
			if truth.HTTPModifier == "" {
				t.Fatalf("false positive HTML modification on %s", o.ZID)
			}
		} else if html.Outcome == ObjUnmodified && truth.HTTPModifier != "" && truth.HTTPModifier != "js-replaced" && truth.HTTPModifier != "css-replaced" {
			t.Fatalf("missed HTML modifier %q on %s", truth.HTTPModifier, o.ZID)
		}
		if img.Outcome == ObjModified {
			imgMod++
			if truth.ImageISP == "" {
				t.Fatalf("false positive image modification on %s", o.ZID)
			}
			if img.ImageRatio <= 0 || img.ImageRatio >= 1 {
				t.Fatalf("image ratio = %v", img.ImageRatio)
			}
		}
	}
	if htmlMod == 0 || imgMod == 0 {
		t.Fatalf("htmlMod=%d imgMod=%d; expected detections", htmlMod, imgMod)
	}
	if ds.SkippedQuota == 0 {
		t.Error("AS sampling never skipped a node; quota logic untested")
	}
}

func TestTLSExperimentEndToEnd(t *testing.T) {
	w, err := population.BuildTLSWorld(testSeed, tlsScale)
	if err != nil {
		t.Fatal(err)
	}
	exp := &TLSExperiment{
		Client: w.Client, Geo: w.Geo, Trust: w.Trust,
		Targets: TargetsFromRegistry(w.Sites),
		Weights: w.Pool.CountryCounts(), Seed: testSeed,
		Now: w.Clock.Now,
	}
	ds, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Observations) == 0 {
		t.Fatal("no observations")
	}
	replacedNodes := 0
	for _, o := range ds.Observations {
		truth := w.TruthFor(o.ZID)
		if o.AnyReplaced() {
			replacedNodes++
			if truth.TLSProduct == "" {
				t.Fatalf("false positive replacement on %s", o.ZID)
			}
			if !o.Phase2 {
				t.Fatalf("replacement without phase-2 scan on %s", o.ZID)
			}
		} else if truth.TLSProduct != "" && truth.TLSProduct != "OpenDNS" {
			// Full-MITM products must always be caught in phase 1;
			// OpenDNS is selective, so misses are expected.
			t.Fatalf("missed TLS product %q on %s", truth.TLSProduct, o.ZID)
		}
	}
	if replacedNodes == 0 {
		t.Fatal("no replacements detected")
	}
}

func TestTLSLaunderingVisible(t *testing.T) {
	w, err := population.BuildTLSWorld(testSeed, tlsScale)
	if err != nil {
		t.Fatal(err)
	}
	exp := &TLSExperiment{
		Client: w.Client, Geo: w.Geo, Trust: w.Trust,
		Targets: TargetsFromRegistry(w.Sites),
		Weights: w.Pool.CountryCounts(), Seed: testSeed,
		Now: w.Clock.Now,
	}
	ds, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// For laundering products (Kaspersky etc.), invalid sites come back
	// with chains that STILL fail the clean store (issuer isn't trusted) —
	// but crucially with the same issuer as valid-site spoofs. Check the
	// observable: replaced invalid-site chains exist and carry AV issuers.
	foundLaunderIssuer := false
	for _, o := range ds.Observations {
		truth := w.TruthFor(o.ZID)
		if truth.TLSProduct != "Kaspersky" && truth.TLSProduct != "Eset SSL Filter" {
			continue
		}
		for _, s := range o.Sites {
			if s.Class == SiteInvalid && s.Replaced && s.IssuerCN != "" {
				foundLaunderIssuer = true
			}
		}
	}
	if !foundLaunderIssuer {
		t.Skip("no laundering product sampled at this scale/seed")
	}
}

func TestMonitorExperimentEndToEnd(t *testing.T) {
	w, err := population.BuildMonitorWorld(testSeed, monScale)
	if err != nil {
		t.Fatal(err)
	}
	exp := &MonitorExperiment{
		Client: w.Client, Auth: w.Auth, Web: w.Web, Geo: w.Geo, Clock: w.Clock,
		Zone: population.Zone, Weights: w.Pool.CountryCounts(), Seed: testSeed,
		Watch: 24 * time.Hour,
	}
	exp.InstallRules(population.WebIP)
	ds, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Observations) == 0 {
		t.Fatal("no observations")
	}
	monitored, vpn, pre := 0, 0, 0
	orgs := map[string]int{}
	for _, o := range ds.Observations {
		truth := w.TruthFor(o.ZID)
		if o.Monitored() {
			monitored++
			if truth.MonitorProduct == "" {
				t.Fatalf("false positive monitoring on %s (unexpected from %v)", o.ZID, o.Unexpected[0].Src)
			}
			for _, u := range o.Unexpected {
				orgs[u.Org]++
				if u.Delay < 0 {
					pre++
				}
			}
		} else if truth.MonitorProduct != "" {
			t.Fatalf("missed monitor %q on %s", truth.MonitorProduct, o.ZID)
		}
		if o.ViaVPN {
			vpn++
			if truth.MonitorProduct != "AnchorFree" {
				t.Fatalf("VPN flag on non-AnchorFree node %s (%q)", o.ZID, truth.MonitorProduct)
			}
		}
	}
	rate := float64(monitored) / float64(len(ds.Observations))
	if rate < 0.010 || rate > 0.022 {
		t.Fatalf("monitored rate = %.4f, want ~0.015", rate)
	}
	if orgs["Trend Micro"] == 0 || orgs["TalkTalk"] == 0 {
		t.Fatalf("expected entities missing: %v", orgs)
	}
	if vpn == 0 {
		t.Error("no VPN-egress nodes observed")
	}
	if pre == 0 {
		t.Error("no pre-fetch (negative delay) requests observed")
	}
}

func TestOpenResolverScanBaseline(t *testing.T) {
	w, err := population.BuildDNSWorld(testSeed, dnsScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("scanning %d resolvers", len(w.ResolverDir))
	res := OpenResolverScan(w.Fabric, population.ClientIP, resolverAddrs(w), population.Zone)
	if res.Scanned == 0 || res.Open == 0 {
		t.Fatalf("scan = %+v", res)
	}
	// Closed ISP resolvers refuse the scanner.
	if res.Refused == 0 {
		t.Fatal("no resolver refused the scanner; ISP resolvers should be closed")
	}
	// A minority of open resolvers hijack (~2% at full scale, §4.3.2
	// footnote 10; the named-group floor inflates the ratio at tiny test
	// scales).
	rate := res.HijackRate()
	if rate <= 0 || rate > 0.40 {
		t.Fatalf("open hijack rate = %.3f", rate)
	}
	// The blind spot: the scan's hijack count is far below what the in-use
	// methodology finds, because ISP resolvers are invisible to it.
	if res.Hijacking > res.Refused {
		t.Fatal("scan saw more hijackers than closed resolvers; blind spot not reproduced")
	}
}

// resolverAddrs extracts the scan target list from a world's directory.
func resolverAddrs(w *population.World) []netip.Addr {
	out := make([]netip.Addr, len(w.ResolverDir))
	for i, e := range w.ResolverDir {
		out[i] = e.Addr
	}
	return out
}

func testRand() *rand.Rand { return simnet.NewRand(99) }

func TestSMTPExtensionEndToEnd(t *testing.T) {
	w, err := population.BuildSMTPWorld(testSeed, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	exp := &SMTPExperiment{
		Client: w.Client, Geo: w.Geo, Weights: w.Pool.CountryCounts(),
		Seed: testSeed, MailIP: population.MailIP, MailHost: population.MailHost,
	}
	ds, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Observations) == 0 {
		t.Fatal("no observations")
	}
	blocked, stripped, clean := 0, 0, 0
	for _, o := range ds.Observations {
		truth := w.TruthFor(o.ZID)
		switch {
		case o.Blocked:
			blocked++
			if truth.HTTPModifier != "smtp:port25-blocked" {
				t.Fatalf("false blocked verdict on %s (%q)", o.ZID, truth.HTTPModifier)
			}
		case !o.StartTLS:
			stripped++
			if truth.HTTPModifier != "smtp:starttls-stripped" {
				t.Fatalf("false stripped verdict on %s (%q)", o.ZID, truth.HTTPModifier)
			}
		default:
			clean++
			if truth.HTTPModifier != "" {
				t.Fatalf("missed violation %q on %s", truth.HTTPModifier, o.ZID)
			}
			if o.Banner == "" {
				t.Fatalf("clean node %s with empty banner", o.ZID)
			}
		}
	}
	if blocked == 0 || stripped == 0 || clean == 0 {
		t.Fatalf("blocked=%d stripped=%d clean=%d", blocked, stripped, clean)
	}
	blockedRate := float64(blocked) / float64(len(ds.Observations))
	if blockedRate < 0.08 || blockedRate > 0.16 {
		t.Fatalf("blocked rate = %.3f, want ~0.12", blockedRate)
	}
}

func TestSMTPAgainstFaithful443OnlyProxy(t *testing.T) {
	// Against the Luminati-faithful configuration (CONNECT to 443 only),
	// every SMTP probe must fail at the proxy — the reason the paper calls
	// this future work.
	w, err := population.BuildSMTPWorld(testSeed, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	w.Super.AnyPortConnect = false
	exp := &SMTPExperiment{
		Client: w.Client, Geo: w.Geo, Weights: w.Pool.CountryCounts(),
		Seed: testSeed, MailIP: population.MailIP, MailHost: population.MailHost,
		Crawl: CrawlConfig{MaxSessions: 50},
	}
	ds, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Observations) != 0 {
		t.Fatalf("%d probes succeeded through a 443-only proxy", len(ds.Observations))
	}
	if ds.Failures == 0 {
		t.Fatal("no failures recorded")
	}
}

func TestLongitudinalDNSEvolution(t *testing.T) {
	w, err := population.BuildDNSWorld(testSeed, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	exp := &DNSExperiment{
		Client: w.Client, Auth: w.Auth, Web: w.Web, Geo: w.Geo,
		Zone: population.Zone, Weights: w.Pool.CountryCounts(), Seed: testSeed,
	}
	exp.InstallRules(population.WebIP)
	long := &LongitudinalDNS{
		Experiment: exp, Clock: w.Clock, Waves: 3,
		BetweenWaves: func(wave int) {
			if wave == 1 {
				// A big hijacker retires between the first two waves.
				if n := w.SetOrgHijack("talktalk-gb", nil); n == 0 {
					t.Fatal("no TalkTalk resolvers to flip")
				}
				w.SetOrgHijack("verizon-us", nil)
				w.SetOrgHijack("tmnet-my", nil)
			}
		},
	}
	waves, err := long.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(waves) != 3 {
		t.Fatalf("waves = %d", len(waves))
	}
	for _, wv := range waves {
		if wv.Measured == 0 {
			t.Fatalf("wave %d measured nothing", wv.Index)
		}
	}
	// Wave 0 sees the full hijacking population; waves 1-2 must show a
	// clearly lower rate after the retirements.
	if waves[1].HijackRate() >= waves[0].HijackRate()*0.92 {
		t.Fatalf("no visible decline: wave0 %.3f, wave1 %.3f",
			waves[0].HijackRate(), waves[1].HijackRate())
	}
	// And the rate stays down.
	if waves[2].HijackRate() >= waves[0].HijackRate()*0.92 {
		t.Fatalf("rate rebounded: wave2 %.3f", waves[2].HijackRate())
	}
	// Waves advance virtual time.
	if !waves[2].Start.After(waves[0].Start) {
		t.Fatal("clock did not advance between waves")
	}
}
