package core

import (
	"context"
	"fmt"
	"time"

	"github.com/tftproject/tft/internal/metrics"
	"github.com/tftproject/tft/internal/simnet"
)

// The paper's conclusion (§9) argues the methodology "opens the door to
// continuous measurements worldwide, with the ability to see how various
// types of violations evolve over time." LongitudinalDNS implements that:
// repeated DNS crawls (waves) against the same world, with the virtual
// clock advancing between waves, producing a hijack-rate time series.

// Wave is one crawl's summary in a longitudinal run.
type Wave struct {
	// Index is the wave number (0-based).
	Index int
	// Start is the virtual time the wave began.
	Start time.Time
	// Dataset holds the wave's full observations.
	Dataset *DNSDataset
	// Measured and Hijacked summarize the wave (shared-anycast filtered
	// nodes excluded from Measured).
	Measured int
	Hijacked int
	// Metrics is the wave's own telemetry snapshot: each wave crawls
	// against a fresh registry, so per-wave session counts, stop-rule
	// trajectories, and violation events stay comparable across waves.
	Metrics *metrics.Snapshot
}

// HijackRate is the wave's hijacked fraction.
func (w Wave) HijackRate() float64 {
	if w.Measured == 0 {
		return 0
	}
	return float64(w.Hijacked) / float64(w.Measured)
}

// LongitudinalDNS runs the §4 probe in repeated waves.
type LongitudinalDNS struct {
	// Experiment is the per-wave driver; its Auth rules must already be
	// installed. Seed and session namespaces are varied per wave.
	Experiment *DNSExperiment
	// Clock advances between waves.
	Clock *simnet.Virtual
	// Interval between wave starts (default 7 virtual days — a weekly
	// continuous measurement).
	Interval time.Duration
	// Waves is the number of crawls (default 4).
	Waves int
	// BetweenWaves, when non-nil, runs after the clock advances and before
	// the next wave — the hook longitudinal scenarios use to evolve the
	// world (an ISP deploying or retiring a hijacking appliance).
	BetweenWaves func(nextWave int)
}

// Run executes the waves.
func (l *LongitudinalDNS) Run(ctx context.Context) ([]Wave, error) {
	if l.Interval <= 0 {
		l.Interval = 7 * 24 * time.Hour
	}
	if l.Waves <= 0 {
		l.Waves = 4
	}
	baseSeed := l.Experiment.Seed
	var waves []Wave
	for i := 0; i < l.Waves; i++ {
		if i > 0 {
			l.Clock.Advance(l.Interval)
			if l.BetweenWaves != nil {
				l.BetweenWaves(i)
			}
		}
		// A fresh seed namespace per wave: new sessions, new d1/d2 names.
		l.Experiment.Seed = baseSeed + uint64(i)*1_000_003
		ds, reg, err := l.runWave(ctx, i)
		if err != nil {
			return waves, err
		}
		w := Wave{Index: i, Start: l.Clock.Now(), Dataset: ds, Metrics: reg.Snapshot()}
		for _, o := range ds.Observations {
			if o.SharedAnycast {
				continue
			}
			w.Measured++
			if o.Hijacked {
				w.Hijacked++
			}
		}
		waves = append(waves, w)
	}
	return waves, nil
}

// runWave executes one crawl with wave-scoped probe names and its own
// metrics registry.
func (l *LongitudinalDNS) runWave(ctx context.Context, wave int) (*DNSDataset, *metrics.Registry, error) {
	// Namespacing happens through the session IDs (sNNN) already being
	// fresh per crawler; d1/d2 names embed them, so waves never collide —
	// but the crawler counts sessions from 1 each run, so prefix the zone
	// temporarily via the experiment's Zone field.
	exp := *l.Experiment
	exp.Zone = fmt.Sprintf("w%d.%s", wave, l.Experiment.Zone)
	reg := metrics.NewRegistry()
	exp.Crawl.Metrics = reg
	ds, err := exp.Run(ctx)
	return ds, reg, err
}
