package core

import (
	"fmt"
	"net/netip"

	"github.com/tftproject/tft/internal/dnsserver"
	"github.com/tftproject/tft/internal/dnswire"
)

// ScanResult summarises an open-resolver scan — the prior-work methodology
// (Dagon et al. 2008, discussed in §4.3.2 and §8) that this paper's
// in-use-resolver measurement improves on. The scan can only see resolvers
// that answer strangers, so ISP-resolver hijacking — the bulk of the
// paper's findings — is invisible to it.
type ScanResult struct {
	Scanned int
	// Open answered the probe; Refused rejected it; Unreachable never
	// responded.
	Open        int
	Refused     int
	Unreachable int
	// Hijacking answered a nonexistent name with an address.
	Hijacking      int
	HijackingAddrs []netip.Addr
}

// HijackRate is the fraction of open resolvers that hijack.
func (r *ScanResult) HijackRate() float64 {
	if r.Open == 0 {
		return 0
	}
	return float64(r.Hijacking) / float64(r.Open)
}

// OpenResolverScan probes every target resolver with a query for a
// nonexistent name under zone and classifies the answers. from is the
// scanner's address (a measurement machine, not an ISP subscriber — which
// is precisely the method's blind spot).
func OpenResolverScan(net dnsserver.Exchanger, from netip.Addr, targets []netip.Addr, zone string) *ScanResult {
	res := &ScanResult{Scanned: len(targets)}
	for i, target := range targets {
		name := fmt.Sprintf("nx-scan-%06d.%s", i, zone)
		q := dnswire.NewQuery(uint16(i), name, dnswire.TypeA)
		wire, err := q.Marshal()
		if err != nil {
			continue
		}
		respWire, err := net.ExchangeDNS(from, target, wire)
		if err != nil {
			res.Unreachable++
			continue
		}
		resp, err := dnswire.Unmarshal(respWire)
		if err != nil {
			res.Unreachable++
			continue
		}
		switch {
		case resp.RCode == dnswire.RCodeRefused:
			res.Refused++
		case resp.RCode == dnswire.RCodeNXDomain:
			res.Open++
		case resp.RCode == dnswire.RCodeSuccess && len(resp.Answers) > 0:
			res.Open++
			res.Hijacking++
			res.HijackingAddrs = append(res.HijackingAddrs, target)
		default:
			res.Open++
		}
	}
	return res
}
