package core

import (
	"bytes"
	"context"
	"fmt"
	"sync"

	"github.com/tftproject/tft/internal/content"
	"github.com/tftproject/tft/internal/geo"
	"github.com/tftproject/tft/internal/origin"
	"github.com/tftproject/tft/internal/proxynet"
	"github.com/tftproject/tft/internal/simnet"
)

// ObjectSizeAblation reproduces the §5.1 observation that motivated the
// paper's object sizes: when fetched objects are smaller than ~1 KB, much
// less content modification is observed, because real-world injectors skip
// tiny responses. It fetches a sub-1 KB page and the 9 KB HTML object
// through the same nodes and compares modification rates.
type ObjectSizeAblation struct {
	Client  *proxynet.Client
	Zone    string
	Weights map[geo.CountryCode]int
	Seed    uint64
	// Samples is how many nodes to probe.
	Samples int
}

// ObjectSizeResult reports the two modification rates.
type ObjectSizeResult struct {
	Nodes        int
	TinyModified int
	FullModified int
}

// TinyRate is the sub-1KB modification rate.
func (r ObjectSizeResult) TinyRate() float64 { return rate(r.TinyModified, r.Nodes) }

// FullRate is the 9KB modification rate.
func (r ObjectSizeResult) FullRate() float64 { return rate(r.FullModified, r.Nodes) }

func rate(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// Run probes Samples nodes. The HTTP experiment's fallback rules must be
// installed (h-* names resolve to the web server).
func (e *ObjectSizeAblation) Run(ctx context.Context) (ObjectSizeResult, error) {
	var res ObjectSizeResult
	var mu sync.Mutex
	rng := simnet.SubRand(e.Seed, "ablation/objsize")
	cr := newCrawler(CrawlConfig{Workers: 8, MaxSessions: e.Samples * 3}, e.Weights, rng)
	tiny := origin.IndexBody()
	full := content.Object(content.KindHTML)

	cr.runWorkers(ctx, func(_ int, cc geo.CountryCode, sess string) {
		mu.Lock()
		done := res.Nodes >= e.Samples
		mu.Unlock()
		if done {
			return
		}
		host := fmt.Sprintf("%sablate-%s.%s", httpPrefix, sess, e.Zone)
		opts := proxynet.Options{Country: cc, Session: sess}
		tinyResp, dbg, err := e.Client.Get(ctx, opts, "http://"+host+"/")
		if err != nil || dbg == nil || dbg.Err != "" || !cr.observe(dbg.ZID) {
			return
		}
		fullResp, dbg2, err := e.Client.Get(ctx, opts, "http://"+host+"/object.html")
		if err != nil || dbg2 == nil || dbg2.Err != "" || dbg2.ZID != dbg.ZID {
			return
		}
		tinyMod := tinyResp.StatusCode != 200 || !bytes.Equal(tinyResp.Body, tiny)
		fullMod := fullResp.StatusCode != 200 || !bytes.Equal(fullResp.Body, full)
		mu.Lock()
		res.Nodes++
		if tinyMod {
			res.TinyModified++
		}
		if fullMod {
			res.FullModified++
		}
		mu.Unlock()
	})
	return res, ctx.Err()
}
