package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/tftproject/tft/internal/geo"
	"github.com/tftproject/tft/internal/metrics"
	"github.com/tftproject/tft/internal/simnet"
)

// Budget.Charge accounting and its telemetry must be exact under
// concurrency (run with -race).
func TestBudgetChargeConcurrentMetrics(t *testing.T) {
	const (
		workers = 16
		charges = 200
		size    = 100
	)
	b := NewBudget(workers * charges * size / 2) // crossed mid-run
	b.Metrics = metrics.NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < charges; i++ {
				b.Charge("z1", size)
			}
		}()
	}
	wg.Wait()
	s := b.Metrics.Snapshot()
	if got := s.Counter("budget_charged_bytes"); got != workers*charges*size {
		t.Fatalf("charged bytes = %d, want %d", got, workers*charges*size)
	}
	// The before/after pair is computed under the lock, so exactly one
	// charge observes the crossing.
	if got := s.Counter("budget_exhausted_total"); got != 1 {
		t.Fatalf("exhausted counter = %d, want 1", got)
	}
	if got := len(s.EventsOfKind(metrics.EventBudgetExhausted)); got != 1 {
		t.Fatalf("exhausted events = %d, want 1", got)
	}
}

// Window=1 is the stop rule's degenerate edge: every duplicate makes the
// window's new-rate zero, stopping the crawl; every novel node keeps it
// alive.
func TestCrawlerStopRuleWindowOne(t *testing.T) {
	cr := newCrawler(CrawlConfig{Window: 1, StopNewRate: 0.5, MaxSessions: 1000},
		map[geo.CountryCode]int{"DE": 1}, simnet.NewRand(1))
	cr.observe("a")
	if cr.stats().StoppedByRule {
		t.Fatal("stopped after a novel observation")
	}
	cr.observe("b")
	if cr.stats().StoppedByRule {
		t.Fatal("stopped while every observation is novel")
	}
	cr.observe("a")
	if !cr.stats().StoppedByRule {
		t.Fatal("single duplicate did not stop a Window=1 crawl")
	}
}

// A warmup of all-duplicate observations must not trip the rule until the
// window is genuinely full of duplicates: the one novel observation keeps
// the crawl alive for exactly Window more duplicates.
func TestCrawlerAllDuplicatesWarmup(t *testing.T) {
	cr := newCrawler(CrawlConfig{Window: 5, StopNewRate: 0.1, MaxSessions: 1000},
		map[geo.CountryCode]int{"DE": 1}, simnet.NewRand(2))
	cr.observe("a") // the only novel node
	for i := 0; i < 4; i++ {
		cr.observe("a")
		if cr.stats().StoppedByRule {
			t.Fatalf("stopped after %d duplicates with the novel slot still in-window", i+1)
		}
	}
	// 5th duplicate evicts the novel outcome: window all-duplicate, rate 0.
	cr.observe("a")
	if !cr.stats().StoppedByRule {
		t.Fatal("all-duplicate window did not stop the crawl")
	}
}

// Cancelling the context stops the crawl within one session per worker:
// next() refuses to hand out sessions after cancellation, so only sessions
// already in flight complete.
func TestCrawlerCancellationMidCrawl(t *testing.T) {
	const (
		workers     = 4
		cancelPoint = 50
	)
	reg := metrics.NewRegistry()
	cr := newCrawler(
		CrawlConfig{Workers: workers, Window: 1 << 16, MaxSessions: 1 << 20, Metrics: reg},
		map[geo.CountryCode]int{"DE": 1, "US": 3}, simnet.NewRand(3))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var n atomic.Int64
	cr.runWorkers(ctx, func(_ int, cc geo.CountryCode, sess string) {
		cr.observe(sess) // all novel: the stop rule never fires
		if n.Add(1) == cancelPoint {
			cancel()
		}
	})
	st := cr.stats()
	if st.Sessions > cancelPoint+workers {
		t.Fatalf("sessions = %d, want <= %d (cancel point + one in-flight session per worker)",
			st.Sessions, cancelPoint+workers)
	}
	if st.StoppedByRule {
		t.Fatal("cancellation misreported as a rule stop")
	}
	stops := reg.Snapshot().EventsOfKind(metrics.EventCrawlStopped)
	if len(stops) != 1 || stops[0].Detail != "context_cancelled" {
		t.Fatalf("stop events = %+v, want one context_cancelled", stops)
	}
}

// The crawler's counters must agree with its stats under a concurrent
// crawl (run with -race).
func TestCrawlerMetricsMatchStats(t *testing.T) {
	reg := metrics.NewRegistry()
	cr := newCrawler(
		CrawlConfig{Workers: 8, Window: 60, StopNewRate: 0.05, MaxSessions: 50000, Metrics: reg},
		map[geo.CountryCode]int{"DE": 2, "US": 5, "BR": 1}, simnet.NewRand(4))
	var dup atomic.Int64
	cr.runWorkers(context.Background(), func(_ int, cc geo.CountryCode, sess string) {
		// A 100-node world: novelty dries up and the rule stops the crawl.
		var sn int
		fmt.Sscanf(sess, "s%d", &sn)
		zid := fmt.Sprintf("z%03d", sn*37%100)
		if !cr.observe(zid) {
			dup.Add(1)
		}
	})
	st := cr.stats()
	s := reg.Snapshot()
	if got := s.Counter("crawl_sessions_total"); got != int64(st.Sessions) {
		t.Fatalf("sessions counter = %d, stats = %d", got, st.Sessions)
	}
	if got := s.Counter("crawl_nodes_total"); got != int64(st.UniqueNodes) {
		t.Fatalf("nodes counter = %d, stats = %d", got, st.UniqueNodes)
	}
	if got := s.Counter("crawl_duplicates_total"); got != dup.Load() {
		t.Fatalf("duplicates counter = %d, measured = %d", got, dup.Load())
	}
	perCountry := int64(0)
	for _, v := range s.Labeled["crawl_sessions_by_country"] {
		perCountry += v
	}
	if perCountry != int64(st.Sessions) {
		t.Fatalf("per-country sum = %d, sessions = %d", perCountry, st.Sessions)
	}
	if !st.StoppedByRule {
		t.Fatal("crawl did not stop by rule")
	}
	if s.Histograms["crawl_window_new_rate"].Count == 0 {
		t.Fatal("no stop-rule window trajectory samples")
	}
}
