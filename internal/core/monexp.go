package core

import (
	"context"
	"net/netip"
	"strings"
	"time"

	"github.com/tftproject/tft/internal/dnsserver"
	"github.com/tftproject/tft/internal/geo"
	"github.com/tftproject/tft/internal/metrics"
	"github.com/tftproject/tft/internal/origin"
	"github.com/tftproject/tft/internal/proxynet"
	"github.com/tftproject/tft/internal/simnet"
)

// UnexpectedRequest is one third-party fetch of a unique measurement domain
// (§7.1) — the content-monitoring signal.
type UnexpectedRequest struct {
	Src netip.Addr
	// ASN and Org locate the requester (Table 9's grouping).
	ASN geo.ASN
	Org string
	// Delay is the time between the node's own request and this one;
	// negative when the monitor raced ahead (Bluecoat).
	Delay time.Duration
	// UserAgent the request carried.
	UserAgent string
}

// MonObservation is one measured node.
type MonObservation struct {
	ZID     string
	NodeIP  netip.Addr
	ASN     geo.ASN
	Country geo.CountryCode
	// Host is the node's unique probe domain.
	Host string
	// RequestAt is when the client issued the fetch.
	RequestAt time.Time
	// ViaVPN: the node's own request arrived from an address other than the
	// service-reported node IP (AnchorFree, §7.2.1).
	ViaVPN bool
	// OwnSrc is the address the node's own request arrived from.
	OwnSrc netip.Addr
	// Unexpected lists the third-party fetches within the watch window.
	Unexpected []UnexpectedRequest
}

// Monitored reports whether any third party refetched this node's domain.
func (o *MonObservation) Monitored() bool { return len(o.Unexpected) > 0 }

// MonDataset is the monitoring experiment's output.
type MonDataset struct {
	Observations []*MonObservation
	Crawl        Stats
	Failures     int
	Duplicates   int
	// Faults counts probes lost to transport-layer faults; they are
	// excluded from violation denominators (see Stats.Faulted).
	Faults int
}

// MonitorExperiment drives §7's methodology.
type MonitorExperiment struct {
	Client  *proxynet.Client
	Auth    *dnsserver.Authority
	Web     *origin.Server
	Geo     *geo.Registry
	Clock   *simnet.Virtual
	Zone    string
	Weights map[geo.CountryCode]int
	Budget  *Budget
	Crawl   CrawlConfig
	Seed    uint64
	// Watch is how long the server log is monitored after the fetches
	// (paper: 24 hours).
	Watch time.Duration
}

const monPrefix = "u-"

// InstallRules makes u-* names resolve to the web server.
func (e *MonitorExperiment) InstallRules(webIP netip.Addr) {
	e.Auth.SetFallback(func(name string) dnsserver.Rule {
		if strings.HasPrefix(name, monPrefix) {
			return dnsserver.Always(webIP)
		}
		return nil
	})
}

// Run crawls, waits out the watch window on the virtual clock, then
// collects the unexpected requests.
func (e *MonitorExperiment) Run(ctx context.Context) (*MonDataset, error) {
	if e.Budget == nil {
		e.Budget = NewBudget(0)
	}
	if e.Watch <= 0 {
		e.Watch = 24 * time.Hour
	}
	m := e.Crawl.Metrics
	if e.Budget.Metrics == nil {
		e.Budget.Metrics = m
	}
	cr := newCrawler(e.Crawl, e.Weights, simnet.SubRand(e.Seed, "crawl/mon"))
	cr.beginProgress("monitor")
	prog := e.Crawl.Progress
	ds := &MonDataset{}
	shards := newShardSinks[*MonObservation](cr.workers())

	cr.runWorkers(ctx, func(shard int, cc geo.CountryCode, sess string) {
		pctx, done := cr.traceProbe(ctx, "probe.monitor", cc, sess)
		obs, oc := e.fetch(pctx, cr, cc, sess)
		zid := ""
		if obs != nil {
			zid = obs.ZID
		}
		done(zid, oc)
		sink := &shards[shard]
		switch oc {
		case outcomeOK:
			prog.Done(shard)
			sink.obs = append(sink.obs, obs)
		case outcomeFailed:
			sink.tallies.failures++
			prog.Fail(shard)
			m.Counter("crawl_failures_total").Inc()
		case outcomeDuplicate:
			sink.tallies.duplicates++
			prog.Duplicate(shard)
		case outcomeFault:
			sink.tallies.faults++
			prog.Fault(shard)
			m.Counter("fault_probes_total").Inc()
		}
	})
	var t shardTallies
	ds.Observations, t = mergeShards(shards, func(o *MonObservation) string { return o.ZID })
	ds.Failures, ds.Duplicates, ds.Faults = t.failures, t.duplicates, t.faults
	ds.Crawl = cr.stats()
	ds.Crawl.Faulted = t.faults

	// Monitors schedule their refetches on the virtual clock; advancing
	// past the watch window delivers every one that falls inside it.
	e.Clock.Advance(e.Watch)

	for _, obs := range ds.Observations {
		e.collect(obs)
		if obs.Monitored() {
			// The watch-window collection runs after the crawl, outside any
			// worker shard; violations land on shard 0.
			prog.Violation(0)
			m.Counter("monitor_monitored_total").Inc()
			m.Counter("monitor_unexpected_requests_total").Add(int64(len(obs.Unexpected)))
			m.Record(metrics.Event{Kind: metrics.EventViolation,
				ZID: obs.ZID, Country: string(obs.Country), Detail: "monitored",
				Value: float64(len(obs.Unexpected))})
		}
	}
	return ds, ctx.Err()
}

// fetch issues the single request for a node's unique domain.
func (e *MonitorExperiment) fetch(ctx context.Context, cr *crawler, cc geo.CountryCode, sess string) (*MonObservation, outcome) {
	host := monPrefix + sess + "." + e.Zone
	opts := proxynet.Options{Country: cc, Session: sess}
	at := e.Clock.Now()
	resp, dbg, err := e.Client.Get(ctx, opts, "http://"+host+"/")
	if err != nil || dbg == nil || dbg.ZID == "" || dbg.Err != "" {
		return nil, classifyFailure(err, dbg)
	}
	if !cr.observe(dbg.ZID) {
		return nil, outcomeDuplicate
	}
	e.Budget.Charge(dbg.ZID, len(resp.Body))
	obs := &MonObservation{ZID: dbg.ZID, NodeIP: dbg.NodeIP, Host: host, RequestAt: at}
	if asn, ok := e.Geo.LookupAS(obs.NodeIP); ok {
		obs.ASN = asn
		obs.Country, _ = e.Geo.Country(asn)
	}
	return obs, outcomeOK
}

// collect splits the server log for the node's domain into its own request
// and the unexpected ones, computing delays.
func (e *MonitorExperiment) collect(obs *MonObservation) {
	reqs := e.Web.RequestsFor(obs.Host)
	if len(reqs) == 0 {
		return
	}
	// Identify the node's own request: by source address, or — when the
	// node browses through a VPN — the earliest arrival.
	ownIdx := -1
	for i, r := range reqs {
		if r.Src == obs.NodeIP {
			ownIdx = i
			break
		}
	}
	if ownIdx < 0 {
		obs.ViaVPN = true
		ownIdx = 0
		for i, r := range reqs {
			if r.Time.Before(reqs[ownIdx].Time) {
				ownIdx = i
			}
		}
	}
	obs.OwnSrc = reqs[ownIdx].Src
	ownAt := reqs[ownIdx].Time
	cutoff := ownAt.Add(e.Watch)
	for i, r := range reqs {
		if i == ownIdx || r.Time.After(cutoff) {
			continue
		}
		u := UnexpectedRequest{Src: r.Src, Delay: r.Time.Sub(ownAt), UserAgent: r.UserAgent}
		if asn, ok := e.Geo.LookupAS(r.Src); ok {
			u.ASN = asn
			if org, ok := e.Geo.Org(asn); ok {
				u.Org = org.Name
			}
		}
		obs.Unexpected = append(obs.Unexpected, u)
	}
}
