package core

import (
	"github.com/tftproject/tft/internal/geo"
	"github.com/tftproject/tft/internal/population"
)

// TargetsFromRegistry converts a world's site registry into the
// experiment's target list.
func TargetsFromRegistry(sr *population.SiteRegistry) *TLSTargets {
	t := &TLSTargets{Popular: make(map[geo.CountryCode][]TLSSite)}
	for _, cc := range sr.Countries() {
		for _, s := range sr.Popular[cc] {
			t.Popular[cc] = append(t.Popular[cc], TLSSite{Host: s.Host, IP: s.IP, KnownChain: s.Chain, Class: SitePopular})
		}
	}
	for _, s := range sr.Universities {
		t.Universities = append(t.Universities, TLSSite{Host: s.Host, IP: s.IP, KnownChain: s.Chain, Class: SiteUniversity})
	}
	for _, s := range sr.Invalid {
		t.Invalid = append(t.Invalid, TLSSite{Host: s.Host, IP: s.IP, KnownChain: s.Chain, Class: SiteInvalid})
	}
	return t
}
