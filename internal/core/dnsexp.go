package core

import (
	"context"
	"net/netip"
	"strings"

	"github.com/tftproject/tft/internal/content"
	"github.com/tftproject/tft/internal/dnsserver"
	"github.com/tftproject/tft/internal/geo"
	"github.com/tftproject/tft/internal/metrics"
	"github.com/tftproject/tft/internal/origin"
	"github.com/tftproject/tft/internal/proxynet"
	"github.com/tftproject/tft/internal/simnet"
)

// DNSObservation is one measured exit node's NXDOMAIN result (§4.1).
type DNSObservation struct {
	ZID    string
	NodeIP netip.Addr
	// ResolverIP is the egress address of the node's DNS server, learned
	// from the authoritative query log for d1 (step 2).
	ResolverIP netip.Addr
	// ASN and Country are derived from NodeIP via the public IP→AS mapping.
	ASN     geo.ASN
	Country geo.CountryCode
	// SharedAnycast marks nodes filtered per footnote 8: their Google
	// anycast instance is the super proxy's, so the d2 gate cannot
	// distinguish them.
	SharedAnycast bool
	// Hijacked is true when d2 returned content instead of NXDOMAIN.
	Hijacked bool
	// LandingDomains are the link hosts extracted from the hijack page.
	LandingDomains []string
	// LandingBody is the raw hijack page (kept for fingerprinting the
	// shared-appliance JavaScript).
	LandingBody []byte
}

// DNSDataset is the DNS experiment's output.
type DNSDataset struct {
	Observations []*DNSObservation
	Crawl        Stats
	// Failures counts sessions that errored before yielding a node.
	Failures int
	// Duplicates counts sessions that landed on an already-measured node.
	Duplicates int
	// Discarded counts sessions where the exit node changed between d1 and
	// d2 (visible in the retry debug header).
	Discarded int
	// Faults counts probes lost to transport-layer faults; they are
	// excluded from violation denominators (see Stats.Faulted).
	Faults int
}

// DNSExperiment drives §4's methodology.
type DNSExperiment struct {
	Client *proxynet.Client
	Auth   *dnsserver.Authority
	Web    *origin.Server
	Geo    *geo.Registry
	// Zone is the measurement domain.
	Zone string
	// Weights are the service-reported per-country node counts (§3.2).
	Weights map[geo.CountryCode]int
	Budget  *Budget
	Crawl   CrawlConfig
	Seed    uint64
	// Sink, when non-nil, receives every successful observation as it is
	// produced, tagged with the worker shard that measured it. Calls within
	// one shard are sequential; distinct shards call concurrently, so sinks
	// keeping global state must synchronize (per-shard state needs not).
	Sink func(shard int, o *DNSObservation)
	// DiscardObservations drops successful observations after the Sink has
	// seen them instead of accumulating them in the dataset — the streaming
	// mode paper-scale crawls use to keep resident memory bounded by the
	// analysis aggregates rather than the observation count.
	DiscardObservations bool
}

// namePrefixes used under the zone.
const (
	d1Prefix = "d1-"
	d2Prefix = "d2-"
)

// InstallRules points the authoritative server's fallback at the d1/d2
// semantics (§4.1 step 1): d1-* names always resolve to the web server;
// d2-* names resolve only for the super proxy's resolver egress.
func (e *DNSExperiment) InstallRules(webIP netip.Addr) {
	e.Auth.SetFallback(func(name string) dnsserver.Rule {
		label, _, ok := strings.Cut(name, ".")
		if !ok {
			return nil
		}
		switch {
		case strings.HasPrefix(label, d1Prefix):
			return dnsserver.Always(webIP)
		case strings.HasPrefix(label, d2Prefix):
			return dnsserver.OnlyFrom(webIP, func(src netip.Addr) bool {
				return src == geo.SuperProxyResolverEgress
			})
		}
		return nil
	})
}

// Run executes the crawl and returns the dataset.
func (e *DNSExperiment) Run(ctx context.Context) (*DNSDataset, error) {
	if e.Budget == nil {
		e.Budget = NewBudget(0)
	}
	m := e.Crawl.Metrics
	if e.Budget.Metrics == nil {
		e.Budget.Metrics = m
	}
	cr := newCrawler(e.Crawl, e.Weights, simnet.SubRand(e.Seed, "crawl/dns"))
	cr.beginProgress("dns")
	prog := e.Crawl.Progress
	ds := &DNSDataset{}
	shards := newShardSinks[*DNSObservation](cr.workers())

	cr.runWorkers(ctx, func(shard int, cc geo.CountryCode, sess string) {
		pctx, done := cr.traceProbe(ctx, "probe.dns", cc, sess)
		obs, outcome := e.measure(pctx, cr, cc, sess)
		zid := ""
		if obs != nil {
			zid = obs.ZID
		}
		done(zid, outcome)
		sink := &shards[shard]
		switch outcome {
		case outcomeOK:
			prog.Done(shard)
			if obs.SharedAnycast {
				m.Counter("dns_shared_anycast_total").Inc()
			}
			if obs.Hijacked {
				prog.Violation(shard)
				m.Counter("dns_hijacked_total").Inc()
				m.Record(metrics.Event{Kind: metrics.EventViolation,
					Session: sess, ZID: obs.ZID, Country: string(obs.Country),
					Detail: "dns_hijack"})
			}
			if e.Sink != nil {
				e.Sink(shard, obs)
			}
			if !e.DiscardObservations {
				sink.obs = append(sink.obs, obs)
			}
		case outcomeFailed:
			sink.tallies.failures++
			prog.Fail(shard)
			m.Counter("crawl_failures_total").Inc()
		case outcomeDuplicate:
			sink.tallies.duplicates++
			prog.Duplicate(shard)
		case outcomeDiscarded:
			sink.tallies.discarded++
			prog.Discard(shard)
			m.Counter("crawl_discarded_total").Inc()
		case outcomeFault:
			sink.tallies.faults++
			prog.Fault(shard)
			m.Counter("fault_probes_total").Inc()
		}
	})
	var t shardTallies
	ds.Observations, t = mergeShards(shards, func(o *DNSObservation) string { return o.ZID })
	ds.Failures, ds.Duplicates, ds.Discarded, ds.Faults =
		t.failures, t.duplicates, t.discarded, t.faults
	ds.Crawl = cr.stats()
	ds.Crawl.Faulted = t.faults
	return ds, ctx.Err()
}

type outcome int

const (
	outcomeOK outcome = iota
	outcomeFailed
	outcomeDuplicate
	outcomeDiscarded
	// outcomeFault: the probe died to a transport-layer fault rather than
	// anything the node's path did — counted into the error budget, never
	// the failure or violation tallies.
	outcomeFault
)

// String names the outcome for span attributes and event filters.
func (o outcome) String() string {
	switch o {
	case outcomeOK:
		return "ok"
	case outcomeFailed:
		return "failed"
	case outcomeDuplicate:
		return "duplicate"
	case outcomeDiscarded:
		return "discarded"
	case outcomeFault:
		return "faulted"
	}
	return "unknown"
}

// measure runs the three-step §4.1 probe through one session.
func (e *DNSExperiment) measure(ctx context.Context, cr *crawler, cc geo.CountryCode, sess string) (*DNSObservation, outcome) {
	d1 := d1Prefix + sess + "." + e.Zone
	d2 := d2Prefix + sess + "." + e.Zone
	// Probe names are unique per session, so once this probe returns their
	// log entries can never be consulted again; releasing them keeps the
	// authority and web-server logs at O(in-flight sessions) instead of
	// O(all sessions) across a paper-scale crawl.
	defer func() {
		e.Auth.Forget(d1)
		e.Auth.Forget(d2)
		e.Web.Forget(d1)
		e.Web.Forget(d2)
	}()
	opts := proxynet.Options{Country: cc, Session: sess, RemoteDNS: true}

	// Step 2: fetch d1; the node's resolver must answer, and both our DNS
	// and web logs light up.
	resp1, dbg1, err := e.Client.Get(ctx, opts, "http://"+d1+"/")
	if err != nil || dbg1 == nil || dbg1.ZID == "" || dbg1.Err != "" {
		return nil, classifyFailure(err, dbg1)
	}
	if !cr.observe(dbg1.ZID) {
		return nil, outcomeDuplicate
	}
	obs := &DNSObservation{ZID: dbg1.ZID}

	// The exit node's IP comes from the web server's request log.
	reqs := e.Web.RequestsFor(d1)
	if len(reqs) == 0 {
		return nil, outcomeFailed
	}
	obs.NodeIP = reqs[0].Src
	if asn, ok := e.Geo.LookupAS(obs.NodeIP); ok {
		obs.ASN = asn
		obs.Country, _ = e.Geo.Country(asn)
	}

	// The node's resolver egress comes from the DNS log: drop one query
	// from the super proxy's own resolution, and what remains is the
	// node's resolver.
	superSeen := false
	for _, q := range e.Auth.QueriesFor(d1) {
		if !superSeen && q.Src == geo.SuperProxyResolverEgress {
			superSeen = true
			continue
		}
		obs.ResolverIP = q.Src
	}
	if !obs.ResolverIP.IsValid() || obs.ResolverIP == geo.SuperProxyResolverEgress {
		// Footnote 8: the node's resolver egress is the super proxy's own
		// anycast instance, so the d2 gate cannot tell them apart — filter.
		obs.SharedAnycast = true
		e.Budget.Charge(obs.ZID, len(resp1.Body))
		return obs, outcomeOK
	}

	// Step 3: request d2 through the same node; NXDOMAIN in the debug log
	// means the node received the honest error.
	resp2, dbg2, err := e.Client.Get(ctx, opts, "http://"+d2+"/")
	if err != nil || dbg2 == nil {
		return nil, classifyFailure(err, dbg2)
	}
	if dbg2.ZID != obs.ZID {
		return nil, outcomeDiscarded
	}
	e.Budget.Charge(obs.ZID, len(resp1.Body)+len(resp2.Body))
	if dbg2.PeerNXDomain() {
		return obs, outcomeOK
	}
	if resp2.StatusCode == 200 {
		obs.Hijacked = true
		obs.LandingBody = resp2.Body
		obs.LandingDomains = content.ExtractDomains(resp2.Body)
	}
	return obs, outcomeOK
}
