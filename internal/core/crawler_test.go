package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"github.com/tftproject/tft/internal/geo"
	"github.com/tftproject/tft/internal/simnet"
)

// Property: the crawler's observe bookkeeping — UniqueNodes equals the
// number of distinct zIDs ever observed, regardless of order.
func TestPropertyCrawlerUniqueCount(t *testing.T) {
	f := func(ids []uint8) bool {
		cr := newCrawler(CrawlConfig{Window: 10000, MaxSessions: 1 << 20},
			map[geo.CountryCode]int{"DE": 1}, simnet.NewRand(1))
		distinct := map[uint8]bool{}
		for _, id := range ids {
			cr.observe(fmt.Sprintf("z%03d", id))
			distinct[id] = true
		}
		return cr.stats().UniqueNodes == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: observe returns true exactly once per zID.
func TestPropertyCrawlerObserveOnce(t *testing.T) {
	f := func(ids []uint8) bool {
		cr := newCrawler(CrawlConfig{Window: 10000, MaxSessions: 1 << 20},
			map[geo.CountryCode]int{"DE": 1}, simnet.NewRand(2))
		seen := map[uint8]bool{}
		for _, id := range ids {
			isNew := cr.observe(fmt.Sprintf("z%03d", id))
			if isNew == seen[id] {
				return false
			}
			seen[id] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCrawlerWorkersConcurrencySafe(t *testing.T) {
	weights := map[geo.CountryCode]int{"DE": 10, "US": 30, "BR": 5}
	cr := newCrawler(CrawlConfig{Workers: 16, Window: 100, StopNewRate: 0.02, MaxSessions: 20000},
		weights, simnet.NewRand(3))
	var mu sync.Mutex
	perCountry := map[geo.CountryCode]int{}
	cr.runWorkers(context.Background(), func(_ int, cc geo.CountryCode, sess string) {
		// Simulate a 40-node world.
		zid := fmt.Sprintf("z%02d", len(sess)%5*8+int(sess[len(sess)-1])%8)
		cr.observe(zid)
		mu.Lock()
		perCountry[cc]++
		mu.Unlock()
	})
	st := cr.stats()
	if !st.StoppedByRule {
		t.Fatalf("stats = %+v", st)
	}
	if perCountry["US"] <= perCountry["BR"] {
		t.Fatalf("weighting broken: %v", perCountry)
	}
	total := 0
	for _, v := range perCountry {
		total += v
	}
	if total != st.Sessions {
		t.Fatalf("sessions %d != measured %d", st.Sessions, total)
	}
}

func TestCrawlerEmptyWeights(t *testing.T) {
	cr := newCrawler(CrawlConfig{}, nil, simnet.NewRand(4))
	if _, _, ok := cr.next(context.Background()); ok {
		t.Fatal("crawl with no countries handed out a session")
	}
}

func TestCrawlerMaxSessionsCap(t *testing.T) {
	cr := newCrawler(CrawlConfig{Window: 1 << 20, MaxSessions: 37},
		map[geo.CountryCode]int{"DE": 1}, simnet.NewRand(5))
	n := 0
	for {
		_, _, ok := cr.next(context.Background())
		if !ok {
			break
		}
		n++
		cr.observe(fmt.Sprintf("z%d", n)) // always new: rule never triggers
	}
	if n != 37 {
		t.Fatalf("sessions = %d, want 37", n)
	}
	if cr.stats().StoppedByRule {
		t.Fatal("cap stop misreported as rule stop")
	}
}

// Property: budget accounting is exact under concurrency.
func TestPropertyBudgetConcurrent(t *testing.T) {
	f := func(charges []uint16) bool {
		b := NewBudget(1 << 40)
		var wg sync.WaitGroup
		var total int64
		for _, c := range charges {
			total += int64(c)
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				b.Charge("z", n)
			}(int(c))
		}
		wg.Wait()
		return b.Used("z") == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestObjectSizeAblationRuns(t *testing.T) {
	// Smoke-level: the ablation machinery is exercised end-to-end in
	// BenchmarkAblationObjectSize; here check the arithmetic helpers.
	r := ObjectSizeResult{Nodes: 200, TinyModified: 1, FullModified: 4}
	if r.TinyRate() >= r.FullRate() {
		t.Fatal("rates inverted")
	}
	var zero ObjectSizeResult
	if zero.TinyRate() != 0 || zero.FullRate() != 0 {
		t.Fatal("zero-node rates not zero")
	}
}
