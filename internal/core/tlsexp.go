package core

import (
	"context"
	"fmt"
	"net/netip"
	"sync/atomic"
	"time"

	"github.com/tftproject/tft/internal/cert"
	"github.com/tftproject/tft/internal/geo"
	"github.com/tftproject/tft/internal/metrics"
	"github.com/tftproject/tft/internal/proxynet"
	"github.com/tftproject/tft/internal/simnet"
	"github.com/tftproject/tft/internal/tlssim"
)

// SiteClass is the §6.1 target taxonomy.
type SiteClass int

// The three site classes.
const (
	SitePopular SiteClass = iota
	SiteUniversity
	SiteInvalid
)

// String names the class.
func (c SiteClass) String() string {
	switch c {
	case SitePopular:
		return "popular"
	case SiteUniversity:
		return "university"
	case SiteInvalid:
		return "invalid"
	}
	return fmt.Sprintf("SiteClass(%d)", int(c))
}

// TLSSite is one probe target.
type TLSSite struct {
	Host string
	IP   netip.Addr
	// KnownChain is what the genuine server presents; for the invalid sites
	// the team controls, detection is an exact match against it.
	KnownChain []*cert.Certificate
	Class      SiteClass
}

// TLSTargets is the experiment's site list.
type TLSTargets struct {
	// Popular holds each country's Alexa-style top sites.
	Popular      map[geo.CountryCode][]TLSSite
	Universities []TLSSite
	Invalid      []TLSSite
}

// SiteResult is the per-site handshake outcome.
type SiteResult struct {
	Host  string
	Class SiteClass
	// Replaced: the presented chain is not the genuine one.
	Replaced bool
	// IssuerCN of the presented leaf (Table 8's grouping key).
	IssuerCN string
	// LeafKey of the presented leaf (key-reuse analysis).
	LeafKey cert.KeyID
	// ChainValid: the presented chain verifies against the clean OS store —
	// for invalid sites this exposes certificate laundering (§6.2).
	ChainValid bool
	// Err records handshake failure.
	Err string
}

// TLSObservation is one measured node.
type TLSObservation struct {
	ZID     string
	NodeIP  netip.Addr
	ASN     geo.ASN
	Country geo.CountryCode
	// Phase2 reports whether the full 33-site scan ran.
	Phase2 bool
	Sites  []SiteResult
}

// AnyReplaced reports whether any probed site presented a replaced chain.
func (o *TLSObservation) AnyReplaced() bool {
	for _, s := range o.Sites {
		if s.Replaced {
			return true
		}
	}
	return false
}

// TLSDataset is the HTTPS experiment's output.
type TLSDataset struct {
	Observations []*TLSObservation
	Crawl        Stats
	Failures     int
	Duplicates   int
	Discarded    int
	// Probes counts CONNECT tunnels opened — the bandwidth metric the
	// two-phase design minimizes (§6.1).
	Probes int64
	// Faults counts probes lost to transport-layer faults; they are
	// excluded from violation denominators (see Stats.Faulted).
	Faults int
}

// TLSExperiment drives §6's methodology.
type TLSExperiment struct {
	Client  *proxynet.Client
	Geo     *geo.Registry
	Trust   *cert.Store
	Targets *TLSTargets
	Weights map[geo.CountryCode]int
	Budget  *Budget
	Crawl   CrawlConfig
	Seed    uint64
	// Now supplies verification time.
	Now func() time.Time
	// AlwaysFullScan disables the two-phase optimization (ablation).
	AlwaysFullScan bool

	probes *int64
}

// Run executes the crawl.
func (e *TLSExperiment) Run(ctx context.Context) (*TLSDataset, error) {
	if e.Budget == nil {
		e.Budget = NewBudget(0)
	}
	m := e.Crawl.Metrics
	if e.Budget.Metrics == nil {
		e.Budget.Metrics = m
	}
	cr := newCrawler(e.Crawl, e.Weights, simnet.SubRand(e.Seed, "crawl/tls"))
	cr.beginProgress("tls")
	prog := e.Crawl.Progress
	ds := &TLSDataset{}
	e.probes = &ds.Probes
	shards := newShardSinks[*TLSObservation](cr.workers())

	cr.runWorkers(ctx, func(shard int, cc geo.CountryCode, sess string) {
		pctx, done := cr.traceProbe(ctx, "probe.tls", cc, sess)
		obs, oc := e.measure(pctx, cr, cc, sess)
		zid := ""
		if obs != nil {
			zid = obs.ZID
		}
		done(zid, oc)
		sink := &shards[shard]
		switch oc {
		case outcomeOK:
			prog.Done(shard)
			sink.obs = append(sink.obs, obs)
			if obs.Phase2 {
				m.Counter("tls_phase2_total").Inc()
			}
			if obs.AnyReplaced() {
				prog.Violation(shard)
				m.Counter("tls_replaced_total").Inc()
				m.Record(metrics.Event{Kind: metrics.EventViolation,
					Session: sess, ZID: obs.ZID, Country: string(obs.Country),
					Detail: "tls_cert_replaced"})
			}
		case outcomeFailed:
			sink.tallies.failures++
			prog.Fail(shard)
			m.Counter("crawl_failures_total").Inc()
		case outcomeDuplicate:
			sink.tallies.duplicates++
			prog.Duplicate(shard)
		case outcomeDiscarded:
			sink.tallies.discarded++
			prog.Discard(shard)
			m.Counter("crawl_discarded_total").Inc()
		case outcomeFault:
			sink.tallies.faults++
			prog.Fault(shard)
			m.Counter("fault_probes_total").Inc()
		}
	})
	var t shardTallies
	ds.Observations, t = mergeShards(shards, func(o *TLSObservation) string { return o.ZID })
	ds.Failures, ds.Duplicates, ds.Discarded, ds.Faults =
		t.failures, t.duplicates, t.discarded, t.faults
	m.Counter("tls_probes_total").Add(ds.Probes)
	ds.Crawl = cr.stats()
	ds.Crawl.Faulted = t.faults
	return ds, ctx.Err()
}

// measure performs the two-phase scan (§6.1, Figure 3) through one node.
func (e *TLSExperiment) measure(ctx context.Context, cr *crawler, cc geo.CountryCode, sess string) (*TLSObservation, outcome) {
	popular := e.Targets.Popular[cc]
	if len(popular) == 0 {
		// No usable ranking for this country (the reason the experiment
		// covers 115 countries, §6.2).
		return nil, outcomeFailed
	}
	rng := simnet.SubRand(e.Seed, "tls/"+sess)
	phase1 := []TLSSite{
		popular[rng.IntN(len(popular))],
		e.Targets.Universities[rng.IntN(len(e.Targets.Universities))],
		e.Targets.Invalid[rng.IntN(len(e.Targets.Invalid))],
	}
	opts := proxynet.Options{Country: cc, Session: sess}
	obs := &TLSObservation{}

	for i, site := range phase1 {
		res, dbg, err := e.probe(ctx, opts, site)
		if err != nil {
			if i == 0 {
				return nil, classifyFailure(err, dbg)
			}
			res = SiteResult{Host: site.Host, Class: site.Class, Err: err.Error()}
		}
		if i == 0 {
			if !cr.observe(dbg.ZID) {
				return nil, outcomeDuplicate
			}
			obs.ZID = dbg.ZID
			obs.NodeIP = dbg.NodeIP
			if asn, ok := e.Geo.LookupAS(obs.NodeIP); ok {
				obs.ASN = asn
				obs.Country, _ = e.Geo.Country(asn)
			}
		} else if dbg != nil && dbg.ZID != obs.ZID {
			return obs, outcomeDiscarded
		}
		obs.Sites = append(obs.Sites, res)
	}

	if obs.AnyReplaced() || e.AlwaysFullScan {
		obs.Phase2 = true
		probed := map[string]bool{}
		for _, s := range obs.Sites {
			probed[s.Host] = true
		}
		full := make([]TLSSite, 0, 33)
		full = append(full, popular...)
		full = append(full, e.Targets.Universities...)
		full = append(full, e.Targets.Invalid...)
		for _, site := range full {
			if probed[site.Host] {
				continue
			}
			res, dbg, err := e.probe(ctx, opts, site)
			if err != nil {
				res = SiteResult{Host: site.Host, Class: site.Class, Err: err.Error()}
			} else if dbg.ZID != obs.ZID {
				break
			}
			obs.Sites = append(obs.Sites, res)
		}
	}
	return obs, outcomeOK
}

// probe collects and judges one site's chain through the tunnel.
func (e *TLSExperiment) probe(ctx context.Context, opts proxynet.Options, site TLSSite) (SiteResult, *proxynet.Debug, error) {
	res := SiteResult{Host: site.Host, Class: site.Class}
	if e.probes != nil {
		atomic.AddInt64(e.probes, 1)
	}
	conn, dbg, err := e.Client.Connect(ctx, opts, site.IP.String()+":443")
	if err != nil {
		return res, dbg, err
	}
	defer conn.Close()
	chain, err := tlssim.CollectChain(conn, site.Host)
	if err != nil {
		return res, dbg, err
	}
	e.Budget.Charge(dbg.ZID, len(cert.MarshalChain(chain)))
	if len(chain) == 0 {
		return res, dbg, fmt.Errorf("empty chain")
	}
	leaf := chain[0]
	res.IssuerCN = leaf.Issuer.CommonName
	res.LeafKey = leaf.PublicKey
	res.ChainValid = e.Trust.Verify(site.Host, chain, e.Now()) == nil
	switch site.Class {
	case SiteInvalid:
		// Exact-match check: the team knows exactly which certificate it
		// serves (§6.1).
		res.Replaced = leaf.Fingerprint() != site.KnownChain[0].Fingerprint()
	default:
		// CDNs rotate certificates, so validation — not exact matching —
		// is the criterion for the first two classes (§6.1 footnote).
		res.Replaced = !res.ChainValid
	}
	return res, dbg, nil
}
