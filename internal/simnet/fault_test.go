package simnet

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

// echoServer registers a request/response echo on (addr, port): read
// everything until EOF or error, write it back, close.
func echoServer(f *Fabric, port uint16, size int) {
	f.HandleTCP(hostB, port, func(conn net.Conn) {
		defer conn.Close()
		buf := make([]byte, size)
		n, _ := io.ReadFull(conn, buf)
		conn.Write(buf[:n])
	})
}

func TestInjectResetFailsBothDirections(t *testing.T) {
	f := NewFabric()
	echoServer(f, 80, 4)
	conn, err := f.Dial(context.Background(), hostA, hostB, 80)
	if err != nil {
		t.Fatal(err)
	}
	conn.(*Stream).InjectReset()
	if _, err := conn.Write([]byte("ping")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("write err = %v, want ErrInjectedReset", err)
	}
	if _, err := conn.Read(make([]byte, 4)); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("read err = %v, want ErrInjectedReset", err)
	}
}

func TestInjectResetDiscardsBufferedData(t *testing.T) {
	a, b := Pipe(0)
	if _, err := b.Write([]byte("buffered")); err != nil {
		t.Fatal(err)
	}
	a.InjectReset()
	if _, err := a.Read(make([]byte, 8)); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("read err = %v, want ErrInjectedReset (reset discards buffered data)", err)
	}
}

func TestInjectStallCollapsesToDeadline(t *testing.T) {
	a, b := Pipe(0)
	a.InjectStall(5)
	if _, err := b.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	n, err := a.Read(buf)
	if err != nil || n != 5 {
		t.Fatalf("first read = (%d, %v), want (5, nil)", n, err)
	}
	if _, err := a.Read(buf); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled read err = %v, want os.ErrDeadlineExceeded", err)
	}
	// TryRead observes the same collapsed deadline, so splices cannot park.
	if _, err := a.TryRead(buf); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled TryRead err = %v, want os.ErrDeadlineExceeded", err)
	}
}

func TestInjectTruncateDeliversPrefixThenEOF(t *testing.T) {
	a, b := Pipe(0)
	a.InjectTruncate(4)
	if _, err := b.Write([]byte("abcdefgh")); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(a)
	if err != nil {
		t.Fatalf("ReadAll err = %v, want clean EOF", err)
	}
	if string(got) != "abcd" {
		t.Fatalf("got %q, want %q", got, "abcd")
	}
}

func TestInjectTrickleCapsReads(t *testing.T) {
	a, b := Pipe(0)
	a.InjectTrickle(3)
	if _, err := b.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	b.CloseWrite()
	var got []byte
	buf := make([]byte, 64)
	reads := 0
	for {
		n, err := a.Read(buf)
		got = append(got, buf[:n]...)
		if n > 3 {
			t.Fatalf("read returned %d bytes, trickle cap is 3", n)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		reads++
	}
	if string(got) != "0123456789" || reads < 3 {
		t.Fatalf("got %q in %d reads, want full payload in >=3 capped reads", got, reads)
	}
}

func TestInjectCorruptMangledStride(t *testing.T) {
	a, b := Pipe(0)
	a.InjectCorrupt(4) // every 4th byte: indexes 3, 7, ...
	payload := []byte("aaaaaaaa")
	if _, err := b.Write(payload); err != nil {
		t.Fatal(err)
	}
	b.CloseWrite()
	got, err := io.ReadAll(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("aaa" + string(rune('a'^corruptMask)) + "aaa" + string(rune('a'^corruptMask)))
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestInjectStallWakesParkedReader(t *testing.T) {
	a, _ := Pipe(0)
	done := make(chan error, 1)
	go func() {
		_, err := a.Read(make([]byte, 1))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the reader park
	a.InjectStall(0)
	select {
	case err := <-done:
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("woken read err = %v, want os.ErrDeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked reader never woke after injection")
	}
}

func TestFaultPlaneDeterministicSchedule(t *testing.T) {
	profile, ok := ProfileByName("lossy-links")
	if !ok {
		t.Fatal("lossy-links profile missing")
	}
	run := func() (armed int64, counts [numFaultKinds]int64) {
		f := NewFabric()
		f.Faults = NewFaultPlane(profile, 42, nil)
		echoServer(f, 80, 4)
		for i := 0; i < 2000; i++ {
			conn, err := f.Dial(context.Background(), hostA, hostB, 80)
			if err != nil {
				t.Fatal(err)
			}
			conn.Write([]byte("ping"))
			io.ReadAll(conn)
			conn.Close()
		}
		for k := FaultKind(0); k < numFaultKinds; k++ {
			counts[k] = f.Faults.Injected(k)
		}
		return f.Faults.Armed(), counts
	}
	a1, c1 := run()
	a2, c2 := run()
	if a1 == 0 {
		t.Fatal("plane armed nothing over 2000 dials")
	}
	if a1 != a2 || c1 != c2 {
		t.Fatalf("fault schedule not deterministic: run1 (%d, %v) vs run2 (%d, %v)", a1, c1, a2, c2)
	}
}

func TestFaultPlanePortFilter(t *testing.T) {
	profile, ok := ProfileByName("flaky-exits")
	if !ok {
		t.Fatal("flaky-exits profile missing")
	}
	f := NewFabric()
	f.Faults = NewFaultPlane(profile, 7, nil)
	echoServer(f, 9999, 4)
	for i := 0; i < 500; i++ {
		conn, err := f.Dial(context.Background(), hostA, hostB, 9999)
		if err != nil {
			t.Fatal(err)
		}
		conn.Write([]byte("ping"))
		io.ReadAll(conn)
		conn.Close()
	}
	if got := f.Faults.Armed(); got != 0 {
		t.Fatalf("armed %d faults on a port outside the profile's filter", got)
	}
}

func TestFaultPlaneDelayedInjectionViaAfterFunc(t *testing.T) {
	clock := NewVirtual(time.Unix(0, 0))
	profile := FaultProfile{
		Name:  "test-delayed",
		Specs: []FaultSpec{{Kind: FaultReset, Prob: 1.0, Delay: 5 * time.Second}},
	}
	f := NewFabric()
	f.Clock = clock
	f.Faults = NewFaultPlane(profile, 1, clock)
	f.HandleTCPStream(hostB, 80, func(conn net.Conn) {
		defer conn.Close()
		buf := make([]byte, 4)
		for {
			if _, err := io.ReadFull(conn, buf); err != nil {
				return
			}
			conn.Write(buf)
		}
	})
	conn, err := f.Dial(context.Background(), hostA, hostB, 80)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Before the delay elapses the stream is healthy.
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if got := f.Faults.Injected(FaultReset); got != 0 {
		t.Fatalf("injected %d resets before the delay elapsed", got)
	}
	clock.Advance(5 * time.Second)
	if got := f.Faults.Injected(FaultReset); got != 1 {
		t.Fatalf("injected = %d after Advance, want 1", got)
	}
	if _, err := conn.Write([]byte("ping")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("post-delay write err = %v, want ErrInjectedReset", err)
	}
}

func TestFaultPlaneOnInjectHook(t *testing.T) {
	profile := FaultProfile{
		Name:  "test-hook",
		Specs: []FaultSpec{{Kind: FaultTruncate, Prob: 1.0, AfterBytes: 1}},
	}
	f := NewFabric()
	f.Faults = NewFaultPlane(profile, 1, nil)
	var kinds []string
	f.Faults.OnInject(func(kind string) { kinds = append(kinds, kind) })
	echoServer(f, 80, 4)
	conn, err := f.Dial(context.Background(), hostA, hostB, 80)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if len(kinds) != 1 || kinds[0] != "truncate" {
		t.Fatalf("hook saw %v, want [truncate]", kinds)
	}
}

func TestProfileNamesResolvable(t *testing.T) {
	names := ProfileNames()
	if len(names) == 0 {
		t.Fatal("no named profiles")
	}
	for _, name := range names {
		if _, ok := ProfileByName(name); !ok {
			t.Fatalf("ProfileByName(%q) failed for a listed name", name)
		}
	}
	if _, ok := ProfileByName("no-such-profile"); ok {
		t.Fatal("ProfileByName accepted an unknown name")
	}
}
