package simnet

import (
	"context"
	"io"
	"net"
	"net/netip"
	"testing"
)

var bg = context.Background()

func mustParse(s string) netip.Addr { return netip.MustParseAddr(s) }

// benchStream measures one-directional throughput over a conn pair: a
// writer pushes b.N writes of size bytes while a drain goroutine consumes.
// The same harness runs against the buffered Pipe and net.Pipe so the
// ns/op columns are directly comparable (the BENCH_n.json trajectory and
// the check gate's smoke run both key off these names).
func benchStream(b *testing.B, size int, dial func() (net.Conn, net.Conn)) {
	w, r := dial()
	defer w.Close()
	defer r.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		io.Copy(io.Discard, r)
	}()
	buf := make([]byte, size)
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Write(buf); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	w.Close()
	<-done
}

func pipePair() (net.Conn, net.Conn)    { a, c := Pipe(0); return a, c }
func netPipePair() (net.Conn, net.Conn) { return net.Pipe() }

func BenchmarkPipeWrite1B(b *testing.B)    { benchStream(b, 1, pipePair) }
func BenchmarkPipeWrite1KB(b *testing.B)   { benchStream(b, 1<<10, pipePair) }
func BenchmarkPipeWrite64KB(b *testing.B)  { benchStream(b, 64<<10, pipePair) }
func BenchmarkNetPipeWrite1B(b *testing.B) { benchStream(b, 1, netPipePair) }
func BenchmarkNetPipeWrite1KB(b *testing.B) {
	benchStream(b, 1<<10, netPipePair)
}
func BenchmarkNetPipeWrite64KB(b *testing.B) {
	benchStream(b, 64<<10, netPipePair)
}

// BenchmarkPipeDialRoundTrip measures a full fabric dial + 1KB echo —
// the per-connection cost every simulated probe pays three times.
func BenchmarkPipeDialRoundTrip(b *testing.B) {
	f := NewFabric()
	srv := mustParse("10.9.9.9")
	cli := mustParse("10.9.9.1")
	f.HandleTCP(srv, 80, func(c net.Conn) {
		defer c.Close()
		buf := make([]byte, 1<<10)
		if _, err := io.ReadFull(c, buf); err == nil {
			c.Write(buf)
		}
	})
	payload := make([]byte, 1<<10)
	buf := make([]byte, 1<<10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := f.Dial(bg, cli, srv, 80)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := conn.Write(payload); err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(conn, buf); err != nil {
			b.Fatal(err)
		}
		conn.Close()
	}
}
