package simnet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
)

// Errors returned by the fabric.
var (
	ErrHostUnreachable = errors.New("simnet: host unreachable")
	ErrConnRefused     = errors.New("simnet: connection refused")
	ErrNoDNSService    = errors.New("simnet: host runs no DNS service")
)

// ConnHandler serves one accepted in-memory connection. The handler owns the
// connection and must close it when done.
//
// Handlers registered with HandleTCP run on the fabric's run-to-completion
// scheduler: the accept is queued as a task and executes inline on whichever
// goroutine next blocks on a fabric stream, not on a goroutine of its own.
// That requires the protocol to be client-talks-first request/response: the
// handler must be able to run to completion once the dialer has written its
// request (nested dials and reads inside the handler are fine — they pump
// the same queue), and the request must fit the stream window so the dialer
// never blocks mid-request with the handler wanting more. Responses of any
// size are fine: the service-side send ring grows instead of blocking.
// Protocols where the server talks first or that interleave multiple rounds
// with the dialer before the dialer ever blocks on a read it can satisfy
// must register with HandleTCPStream instead.
type ConnHandler func(conn net.Conn)

// DNSHandler answers a single DNS query datagram. src is the querying host's
// address (what the paper's authoritative server logs to learn which
// resolver asked). The returned slice is the response datagram; a nil return
// simulates a dropped query.
type DNSHandler func(src netip.Addr, query []byte) []byte

// Fabric is an in-memory network: a registry of hosts addressable by IP,
// offering TCP-like stream dialing and DNS-like datagram exchange. It is the
// simulation analogue of the real net package and is safe for concurrent
// use.
type Fabric struct {
	// Window overrides the per-direction buffer window of dialed streams
	// (DefaultWindow when zero). Larger windows let bulk transfers stream
	// further ahead of the reader; smaller ones bound per-connection
	// memory. See Pipe.
	Window int

	// Clock is the timebase for stream deadlines on dialed connections
	// (nil means the wall clock). Simulated worlds inject their Virtual
	// clock so SetDeadline instants live on virtual time.
	Clock Clock

	// Faults, when non-nil, is the chaos plane: every Dial matching its
	// profile may have deterministic seeded faults armed on the dialer's
	// stream end (see FaultPlane).
	Faults *FaultPlane

	mu    sync.RWMutex
	hosts map[netip.Addr]*host

	// tasks is the run queue of the run-to-completion scheduler: accepted
	// HandleTCP connections wait here and run inline on whichever
	// goroutine next blocks on one of the fabric's streams.
	tasks taskQueue
}

// service is one registered TCP listener.
type service struct {
	h      ConnHandler
	stream bool // run on an own goroutine instead of the event core
}

type host struct {
	mu  sync.RWMutex
	tcp map[uint16]service
	dns DNSHandler
}

// NewFabric returns an empty network fabric.
func NewFabric() *Fabric {
	return &Fabric{hosts: make(map[netip.Addr]*host)}
}

// clock returns the injected deadline clock, defaulting to the wall clock.
func (f *Fabric) clock() Clock {
	if f.Clock != nil {
		return f.Clock
	}
	return Real{}
}

// HandleTCP registers h as the listener for (addr, port), dispatched on the
// fabric's run-to-completion event core (see ConnHandler for the contract).
// Registering a nil handler removes the listener.
func (f *Fabric) HandleTCP(addr netip.Addr, port uint16, h ConnHandler) {
	f.handleTCP(addr, port, h, false)
}

// HandleTCPStream registers h as the listener for (addr, port), running each
// accepted connection on its own goroutine — for protocols where the server
// talks first or that interleave rounds with the dialer (SMTP's greeting,
// interactive tunnels). Registering a nil handler removes the listener.
func (f *Fabric) HandleTCPStream(addr netip.Addr, port uint16, h ConnHandler) {
	f.handleTCP(addr, port, h, true)
}

func (f *Fabric) handleTCP(addr netip.Addr, port uint16, h ConnHandler, stream bool) {
	hst := f.hostFor(addr)
	hst.mu.Lock()
	defer hst.mu.Unlock()
	if h == nil {
		delete(hst.tcp, port)
		return
	}
	hst.tcp[port] = service{h: h, stream: stream}
}

// HandleDNS registers h as the DNS service on addr.
func (f *Fabric) HandleDNS(addr netip.Addr, h DNSHandler) {
	hst := f.hostFor(addr)
	hst.mu.Lock()
	hst.dns = h
	hst.mu.Unlock()
}

// hostFor returns (creating if needed) the host record for addr.
func (f *Fabric) hostFor(addr netip.Addr) *host {
	f.mu.Lock()
	defer f.mu.Unlock()
	hst, ok := f.hosts[addr]
	if !ok {
		hst = &host{tcp: make(map[uint16]service)}
		f.hosts[addr] = hst
	}
	return hst
}

// lookup returns the host record for addr, or nil.
func (f *Fabric) lookup(addr netip.Addr) *host {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.hosts[addr]
}

// Dial opens an in-memory stream from src to (dst, port). The returned
// connection reports src and dst through LocalAddr and RemoteAddr.
//
// The remote handler does not get a goroutine of its own: the accept is
// queued on the fabric's run queue and executes inline on whichever
// goroutine next blocks on a fabric stream — usually the dialer itself, the
// moment it waits for the response. Handlers registered with
// HandleTCPStream are the exception and run on a spawned goroutine.
//
// The stream is a buffered Pipe, not a net.Pipe: writes up to the fabric's
// window complete without waiting for the reader, which removes the
// per-write goroutine rendezvous from every hop of the proxy chain.
func (f *Fabric) Dial(ctx context.Context, src, dst netip.Addr, port uint16) (net.Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	hst := f.lookup(dst)
	if hst == nil {
		return nil, fmt.Errorf("%w: %s", ErrHostUnreachable, dst)
	}
	hst.mu.RLock()
	svc := hst.tcp[port]
	hst.mu.RUnlock()
	if svc.h == nil {
		return nil, fmt.Errorf("%w: %s:%d", ErrConnRefused, dst, port)
	}
	local, remote := newPipePair(f.Window, f.clock(), &f.tasks)
	// The endpoint addresses live inside the pair's single allocation.
	pp := local.pair
	pp.ends[0] = endpoint{ip: src}
	pp.ends[1] = endpoint{ip: dst, port: port}
	cl, sv := &pp.ends[0], &pp.ends[1]
	local.local, local.remote = cl, sv
	remote.local, remote.remote = sv, cl
	if !svc.stream {
		// A sequential handler's dialer is parked beneath it on the stack
		// while it runs, so a response larger than the window could never
		// drain: the service-side send ring grows instead of blocking.
		remote.out.grow = true
	}
	// Arm any scheduled faults before the handler dispatches, so the fault
	// schedule is a function of dial order alone.
	f.Faults.arm(local, port)
	if svc.stream {
		//tftlint:ignore nogo -- stream handlers (server-talks-first or multi-round protocols) deadlock on the dialer's event loop and keep their own goroutine by contract
		go svc.h(remote)
	} else {
		f.tasks.push(func() { svc.h(remote) })
	}
	return local, nil
}

// ExchangeDNS delivers one DNS query datagram from src to the service at
// dst and returns its response. It is synchronous; the virtual network has
// no propagation delay.
func (f *Fabric) ExchangeDNS(src, dst netip.Addr, query []byte) ([]byte, error) {
	hst := f.lookup(dst)
	if hst == nil {
		return nil, fmt.Errorf("%w: %s", ErrHostUnreachable, dst)
	}
	hst.mu.RLock()
	h := hst.dns
	hst.mu.RUnlock()
	if h == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoDNSService, dst)
	}
	resp := h(src, query)
	if resp == nil {
		return nil, fmt.Errorf("simnet: query to %s dropped", dst)
	}
	return resp, nil
}

// HasHost reports whether addr is registered on the fabric.
func (f *Fabric) HasHost(addr netip.Addr) bool { return f.lookup(addr) != nil }

// NumHosts returns the number of registered hosts.
func (f *Fabric) NumHosts() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.hosts)
}

// taskQueue is the FIFO run queue of the fabric's run-to-completion
// scheduler. Tasks are pushed by Dial and drained by blocked stream
// operations (see ring.pumpOrWait); with a single crawl worker that drain
// order is deterministic.
type taskQueue struct {
	mu    sync.Mutex
	tasks []func()
	head  int
	// waiters are the conds of rings parked with nothing to pump; the next
	// push wakes them all so the new task cannot strand behind goroutines
	// that stopped watching the queue.
	waiters []*sync.Cond
}

// push enqueues one task and wakes every parked ring. A task pushed while
// all goroutines are parked (or pinned beneath blocked inline handlers)
// would otherwise never run: parked rings only wake on their own state
// changes. Broadcasting with the cond's lock held closes the race with a
// waiter that subscribed but has not reached Wait — it holds that lock from
// its queue re-check through parking, so it either saw this task pending or
// receives the broadcast.
func (q *taskQueue) push(fn func()) {
	q.mu.Lock()
	q.tasks = append(q.tasks, fn)
	ws := q.waiters
	q.waiters = nil
	q.mu.Unlock()
	for _, c := range ws {
		c.L.Lock()
		c.Broadcast()
		c.L.Unlock()
	}
}

// subscribe registers c for a wakeup on the next push. It reports false —
// registering nothing — when tasks are already pending, so the caller
// re-pumps instead of parking.
func (q *taskQueue) subscribe(c *sync.Cond) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head < len(q.tasks) {
		return false
	}
	q.waiters = append(q.waiters, c)
	return true
}

// pending reports whether any task is queued.
func (q *taskQueue) pending() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.head < len(q.tasks)
}

// runOne pops and runs the oldest task, reporting whether there was one.
// The task runs without the queue lock, so it may dial (pushing new tasks)
// and block on streams (draining them, recursively).
func (q *taskQueue) runOne() bool {
	q.mu.Lock()
	if q.head >= len(q.tasks) {
		q.mu.Unlock()
		return false
	}
	fn := q.tasks[q.head]
	q.tasks[q.head] = nil
	q.head++
	if q.head == len(q.tasks) {
		q.tasks = q.tasks[:0]
		q.head = 0
	}
	q.mu.Unlock()
	fn()
	return true
}

// endpoint is the fabric's net.Addr: the address/port pair held as values,
// so building one costs a single small allocation and extracting the peer
// IP (RemoteIP) costs none.
type endpoint struct {
	ip   netip.Addr
	port uint16
}

// Network implements net.Addr.
func (*endpoint) Network() string { return "tcp" }

// String implements net.Addr.
func (e *endpoint) String() string {
	return netip.AddrPortFrom(e.ip, e.port).String()
}

// RemoteIP extracts the peer netip.Addr from a connection served by the
// fabric (or from a real *net.TCPAddr).
func RemoteIP(conn net.Conn) (netip.Addr, bool) {
	switch ta := conn.RemoteAddr().(type) {
	case *endpoint:
		return ta.ip.Unmap(), true
	case *net.TCPAddr:
		a, ok := netip.AddrFromSlice(ta.IP)
		if !ok {
			return netip.Addr{}, false
		}
		return a.Unmap(), true
	}
	return netip.Addr{}, false
}
