package simnet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
)

// Errors returned by the fabric.
var (
	ErrHostUnreachable = errors.New("simnet: host unreachable")
	ErrConnRefused     = errors.New("simnet: connection refused")
	ErrNoDNSService    = errors.New("simnet: host runs no DNS service")
)

// ConnHandler serves one accepted in-memory connection. The handler owns the
// connection and must close it when done.
type ConnHandler func(conn net.Conn)

// DNSHandler answers a single DNS query datagram. src is the querying host's
// address (what the paper's authoritative server logs to learn which
// resolver asked). The returned slice is the response datagram; a nil return
// simulates a dropped query.
type DNSHandler func(src netip.Addr, query []byte) []byte

// Fabric is an in-memory network: a registry of hosts addressable by IP,
// offering TCP-like stream dialing and DNS-like datagram exchange. It is the
// simulation analogue of the real net package and is safe for concurrent
// use.
type Fabric struct {
	// Window overrides the per-direction buffer window of dialed streams
	// (DefaultWindow when zero). Larger windows let bulk transfers stream
	// further ahead of the reader; smaller ones bound per-connection
	// memory. See Pipe.
	Window int

	mu    sync.RWMutex
	hosts map[netip.Addr]*host
}

type host struct {
	mu  sync.RWMutex
	tcp map[uint16]ConnHandler
	dns DNSHandler
}

// NewFabric returns an empty network fabric.
func NewFabric() *Fabric {
	return &Fabric{hosts: make(map[netip.Addr]*host)}
}

// HandleTCP registers h as the listener for (addr, port). Registering a nil
// handler removes the listener.
func (f *Fabric) HandleTCP(addr netip.Addr, port uint16, h ConnHandler) {
	hst := f.hostFor(addr)
	hst.mu.Lock()
	defer hst.mu.Unlock()
	if h == nil {
		delete(hst.tcp, port)
		return
	}
	hst.tcp[port] = h
}

// HandleDNS registers h as the DNS service on addr.
func (f *Fabric) HandleDNS(addr netip.Addr, h DNSHandler) {
	hst := f.hostFor(addr)
	hst.mu.Lock()
	hst.dns = h
	hst.mu.Unlock()
}

// hostFor returns (creating if needed) the host record for addr.
func (f *Fabric) hostFor(addr netip.Addr) *host {
	f.mu.Lock()
	defer f.mu.Unlock()
	hst, ok := f.hosts[addr]
	if !ok {
		hst = &host{tcp: make(map[uint16]ConnHandler)}
		f.hosts[addr] = hst
	}
	return hst
}

// lookup returns the host record for addr, or nil.
func (f *Fabric) lookup(addr netip.Addr) *host {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.hosts[addr]
}

// Dial opens an in-memory stream from src to (dst, port). The remote
// handler runs on its own goroutine, exactly as a real accepted connection
// would. The returned connection reports src and dst through LocalAddr and
// RemoteAddr.
//
// The stream is a buffered Pipe, not a net.Pipe: writes up to the fabric's
// window complete without waiting for the reader, which removes the
// per-write goroutine rendezvous from every hop of the proxy chain.
func (f *Fabric) Dial(ctx context.Context, src, dst netip.Addr, port uint16) (net.Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	hst := f.lookup(dst)
	if hst == nil {
		return nil, fmt.Errorf("%w: %s", ErrHostUnreachable, dst)
	}
	hst.mu.RLock()
	h := hst.tcp[port]
	hst.mu.RUnlock()
	if h == nil {
		return nil, fmt.Errorf("%w: %s:%d", ErrConnRefused, dst, port)
	}
	local, remote := Pipe(f.Window)
	local.local, local.remote = tcpAddr(src, 0), tcpAddr(dst, port)
	remote.local, remote.remote = tcpAddr(dst, port), tcpAddr(src, 0)
	go h(remote)
	return local, nil
}

// ExchangeDNS delivers one DNS query datagram from src to the service at
// dst and returns its response. It is synchronous; the virtual network has
// no propagation delay.
func (f *Fabric) ExchangeDNS(src, dst netip.Addr, query []byte) ([]byte, error) {
	hst := f.lookup(dst)
	if hst == nil {
		return nil, fmt.Errorf("%w: %s", ErrHostUnreachable, dst)
	}
	hst.mu.RLock()
	h := hst.dns
	hst.mu.RUnlock()
	if h == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoDNSService, dst)
	}
	resp := h(src, query)
	if resp == nil {
		return nil, fmt.Errorf("simnet: query to %s dropped", dst)
	}
	return resp, nil
}

// HasHost reports whether addr is registered on the fabric.
func (f *Fabric) HasHost(addr netip.Addr) bool { return f.lookup(addr) != nil }

// NumHosts returns the number of registered hosts.
func (f *Fabric) NumHosts() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.hosts)
}

// tcpAddr builds a *net.TCPAddr for an address/port pair.
func tcpAddr(a netip.Addr, port uint16) net.Addr {
	return &net.TCPAddr{IP: a.AsSlice(), Port: int(port)}
}

// RemoteIP extracts the peer netip.Addr from a connection served by the
// fabric (or from a real *net.TCPAddr).
func RemoteIP(conn net.Conn) (netip.Addr, bool) {
	ta, ok := conn.RemoteAddr().(*net.TCPAddr)
	if !ok {
		return netip.Addr{}, false
	}
	a, ok := netip.AddrFromSlice(ta.IP)
	if !ok {
		return netip.Addr{}, false
	}
	return a.Unmap(), true
}
