package simnet

import (
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultWindow is the per-direction buffer window of a fabric stream when
// the Fabric does not override it. 64KB holds any single httpwire message
// the measurement stack emits, so a writer streams an entire request or
// response without ever blocking on the reader.
const DefaultWindow = 64 << 10

// ErrWouldBlock is returned by TryRead and TryWrite when the operation
// cannot make progress right now: the readiness error of the non-blocking
// stream API. Callers arm SetNotify and retry when the callback fires.
var ErrWouldBlock = errors.New("simnet: operation would block")

// ErrInjectedReset is the failure an InjectReset leaves on both directions
// of a stream: the simulation analogue of a TCP RST. Fault-aware callers
// (the proxy path, the experiment drivers) classify it as a transport
// fault, never as a middlebox outcome.
var ErrInjectedReset = errors.New("simnet: connection reset by injected fault")

// ringBufPool recycles full-window ring storage between connections. A crawl
// opens millions of short-lived streams; with the pool, the steady-state
// buffer count is the handful of connections actually in flight.
var ringBufPool sync.Pool

// Pipe returns a connected pair of buffered in-memory stream ends, the
// fabric's fast-path replacement for net.Pipe. Each direction is an
// independent ring buffer of at most window bytes (DefaultWindow when
// window <= 0), so writes complete without a reader rendezvous until the
// window fills — the property that removes two goroutine wakeups per Write
// from every hop of the simulated proxy chain.
//
// Semantics match net.Pipe where both define behaviour: reads and writes
// after a local Close return io.ErrClosedPipe, writes to an end whose
// peer has closed return io.ErrClosedPipe, deadline expiry surfaces
// os.ErrDeadlineExceeded (a net.Error with Timeout() == true). Where
// net.Pipe cannot buffer, Pipe behaves like TCP: data written before a
// close is still delivered, and the peer sees io.EOF only after draining
// it. CloseWrite half-closes like a TCP FIN.
//
// A bare Pipe runs deadlines on the wall clock; fabric-dialed streams run
// them on the fabric's injected Clock.
func Pipe(window int) (*Stream, *Stream) {
	return newPipePair(window, Real{}, nil)
}

// pair is one connection: both direction rings and both Stream ends in
// a single allocation. Once both ends are fully closed the pair returns its
// ring storage to ringBufPool.
type pair struct {
	r        [2]ring // r[0]: a→b, r[1]: b→a
	s        [2]Stream
	ends     [2]endpoint // fabric endpoint addresses, carried in the same allocation
	released atomic.Bool
}

// newPipePair builds a connected pair whose deadlines run on clock and
// whose blocked operations drain pump (when non-nil) before parking.
func newPipePair(window int, clock Clock, pump *taskQueue) (*Stream, *Stream) {
	if window <= 0 {
		window = DefaultWindow
	}
	if clock == nil {
		clock = Real{}
	}
	pp := &pair{}
	for i := range pp.r {
		r := &pp.r[i]
		r.window = window
		r.clock = clock
		r.pump = pump
		r.cond.L = &r.mu
	}
	pp.s[0] = Stream{in: &pp.r[1], out: &pp.r[0], pair: pp, local: pipeAddr{}, remote: pipeAddr{}}
	pp.s[1] = Stream{in: &pp.r[0], out: &pp.r[1], pair: pp, local: pipeAddr{}, remote: pipeAddr{}}
	return &pp.s[0], &pp.s[1]
}

// maybeReclaim returns the pair's ring storage to the pool once both ends
// are fully closed. Any operation still in flight observes a closed flag
// under the ring lock before it could touch the buffer, so reclaiming here
// is safe; late closes and deadline callbacks only touch flags.
func (pp *pair) maybeReclaim() {
	for i := range pp.r {
		r := &pp.r[i]
		r.mu.Lock()
		closed := r.wclosed && r.rclosed
		r.mu.Unlock()
		if !closed {
			return
		}
	}
	if !pp.released.CompareAndSwap(false, true) {
		return
	}
	for i := range pp.r {
		r := &pp.r[i]
		r.mu.Lock()
		buf, bufp := r.buf, r.bufp
		r.buf, r.bufp = nil, nil
		r.n, r.start = 0, 0
		// Detach the timers under the lock but stop them after releasing
		// it: Timer.Stop is an interface call the lockorder graph cannot
		// see through, and the gen bump already neuters a racing fire.
		rt, wt := r.rdead.timer, r.wdead.timer
		r.rdead.timer, r.wdead.timer = nil, nil
		r.rdead.gen++
		r.wdead.gen++
		r.notify = nil
		r.mu.Unlock()
		if rt != nil {
			rt.Stop()
		}
		if wt != nil {
			wt.Stop()
		}
		if cap(buf) >= DefaultWindow {
			if bufp == nil {
				bufp = new([]byte)
			}
			*bufp = buf[:0]
			ringBufPool.Put(bufp)
		}
	}
}

// pipeAddr is the placeholder endpoint address, as with net.Pipe.
type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

// ring is one direction of a Stream: a bounded ring buffer with a single
// mutex/cond pair coordinating the (usually one) reader and writer, plus
// the deadline and close state for that direction.
//
// version counts state transitions; a blocked operation snapshots it before
// releasing the lock to run a queued fabric task, and re-checks instead of
// parking if the ring changed underneath — the lost-wakeup guard of the
// run-to-completion scheduler.
type ring struct {
	mu   sync.Mutex
	cond sync.Cond

	buf    []byte  // ring storage; nil until first write, pooled full-window
	bufp   *[]byte // pool box for buf, reused across Get/Put to avoid re-boxing
	start  int     // index of the first unread byte
	n      int     // unread byte count
	window int     // buffer capacity

	wclosed bool // write side closed: reads drain then EOF, writes fail
	rclosed bool // read side closed: writes fail immediately

	rdead, wdead deadline // per-side deadline state

	clock   Clock      // deadline timebase
	pump    *taskQueue // fabric run queue drained while blocked (may be nil)
	grow    bool       // widen past the window instead of blocking writes
	version uint64     // state-transition counter
	notify  func()     // readiness callback (see Stream.SetNotify)

	fault *ringFault // injected-fault state; nil on healthy rings
}

// ringFault is the injected-fault state of one ring direction (see the
// Stream.Inject* methods). A nil pointer is the healthy fast path: the
// data paths pay one pointer check. Fields are guarded by the ring mutex.
//
// Stalls and truncations are byte-count triggered and collapse to their
// client-visible outcome (os.ErrDeadlineExceeded, io.EOF) the moment the
// threshold is crossed, instead of parking the reader until a timer: the
// crawl worlds never advance the virtual clock mid-run, so a parked stall
// would deadlock the run-to-completion core, while the collapsed error is
// byte-for-byte what a real client with a deadline would observe.
type ringFault struct {
	failErr      error // reset: every read and write fails with this
	stallAfter   int64 // -1 disabled; reads past this fail like a deadline
	truncAfter   int64 // -1 disabled; reads past this see a clean io.EOF
	corruptEvery int64 // >0: every Nth delivered byte is XORed
	trickle      int   // >0: per-read byte cap
	delivered    int64 // bytes handed to the reader so far
}

// corruptMask is the XOR pattern FaultCorrupt applies — enough to break
// any header token or payload byte it lands on without zeroing it.
const corruptMask = 0x55

// capRead bounds a read's destination to what the fault state lets
// through. Caller holds the ring mutex and has already returned the
// stall/truncate error when the threshold was reached, so the remaining
// allowance is at least one byte.
func (f *ringFault) capRead(p []byte) []byte {
	max := len(p)
	if f.trickle > 0 && max > f.trickle {
		max = f.trickle
	}
	if f.stallAfter >= 0 {
		if rem := f.stallAfter - f.delivered; int64(max) > rem {
			max = int(rem)
		}
	}
	if f.truncAfter >= 0 {
		if rem := f.truncAfter - f.delivered; int64(max) > rem {
			max = int(rem)
		}
	}
	return p[:max]
}

// deliver accounts bytes handed to the reader, corrupting the stride's
// positions in place. Caller holds the ring mutex.
func (f *ringFault) deliver(p []byte) {
	if f.corruptEvery > 0 {
		for i := range p {
			if (f.delivered+int64(i))%f.corruptEvery == f.corruptEvery-1 {
				p[i] ^= corruptMask
			}
		}
	}
	f.delivered += int64(len(p))
}

// readFaultErr returns the error a read must surface before touching the
// buffer, or nil. Caller holds the ring mutex. Reset discards buffered
// data (as a RST does); stall and truncation fire once the delivered byte
// count reaches their threshold, even with more data buffered — the rest
// "never arrived".
func (f *ringFault) readFaultErr() error {
	switch {
	case f == nil:
		return nil
	case f.failErr != nil:
		return f.failErr
	case f.stallAfter >= 0 && f.delivered >= f.stallAfter:
		return os.ErrDeadlineExceeded
	case f.truncAfter >= 0 && f.delivered >= f.truncAfter:
		return io.EOF
	}
	return nil
}

// injectFault mutates the ring's fault state through the standard
// state-transition path — version bump, broadcast, readiness notify — so
// parked readers, pumping handlers, and TryRead/TryWrite splices observe
// the fault like any other stream event.
func (r *ring) injectFault(mutate func(*ringFault)) {
	r.mu.Lock()
	if r.fault == nil {
		r.fault = &ringFault{stallAfter: -1, truncAfter: -1}
	}
	//tftlint:ignore lockorder -- every mutate closure (Stream.Inject*) only assigns ringFault fields; none can lock
	mutate(r.fault)
	r.version++
	r.cond.Broadcast()
	fn := r.notify
	r.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// deadline is one side's deadline: the exceeded flag, the pending timer,
// and a generation counter that lets a re-arm invalidate the callback of a
// timer whose Stop raced with its firing.
type deadline struct {
	timed bool
	timer Timer
	gen   uint64
}

// ensureBuf allocates the ring storage on first use: a pooled full-window
// buffer when one fits, a fresh one otherwise. Allocating the whole window
// up front means the ring never copies to grow, and the buffer recycles
// through ringBufPool across connections.
func (r *ring) ensureBuf() {
	if p, _ := ringBufPool.Get().(*[]byte); p != nil && cap(*p) >= r.window {
		r.bufp = p
		r.buf = (*p)[:r.window]
	} else {
		// Box the fresh buffer once; the box travels with it through every
		// later Put/Get so returning it to the pool never allocates.
		r.bufp = new([]byte)
		r.buf = make([]byte, r.window)
	}
	r.start = 0
}

// growBuf widens the ring past its window — the escape hatch for handlers
// running inline on the event core, whose dialer sits beneath them on the
// stack and cannot drain the response until they finish. Blocking here
// would deadlock; growing trades bounded memory for progress on exactly
// the rings that need it (see Fabric.Dial). Caller holds r.mu with
// r.n == r.window, so buf is allocated and fully occupied.
func (r *ring) growBuf(need int) {
	newCap := r.window * 2
	for newCap < r.n+need {
		newCap *= 2
	}
	nb := make([]byte, newCap)
	first := len(r.buf) - r.start
	if first > r.n {
		first = r.n
	}
	copy(nb, r.buf[r.start:r.start+first])
	copy(nb[first:], r.buf[:r.n-first])
	old, oldp := r.buf, r.bufp
	r.buf, r.bufp = nb, nil
	r.start = 0
	r.window = newCap
	if cap(old) >= DefaultWindow {
		if oldp == nil {
			oldp = new([]byte)
		}
		*oldp = old[:0]
		ringBufPool.Put(oldp)
	}
}

// pumpOrWait is the blocked path shared by read and write: run one queued
// fabric task if there is one, otherwise park on the cond. Caller holds
// r.mu in the same wait loop and re-checks ring state after return.
//
// Parking subscribes the ring to the run queue first: a task pushed after
// this goroutine parks (a Dial from some other goroutine, possibly the very
// handler this ring is waiting on) must wake somebody, or it strands in the
// queue while every free goroutine sleeps. The pending() re-check under
// r.mu closes the race with a push that fired between subscribing and
// parking — push broadcasts while holding r.mu, so it either finds us in
// Wait or we see its task pending here and return to pump it.
func (r *ring) pumpOrWait() {
	if r.pump != nil {
		v := r.version
		r.mu.Unlock()
		if r.pump.runOne() {
			r.mu.Lock()
			return
		}
		subscribed := r.pump.subscribe(&r.cond)
		r.mu.Lock()
		if !subscribed || r.version != v || r.pump.pending() {
			return
		}
	}
	r.cond.Wait()
}

// copyOut moves buffered bytes into p. Caller holds r.mu and guarantees
// r.n > 0.
func (r *ring) copyOut(p []byte) int {
	total := 0
	for total < len(p) && r.n > 0 {
		chunk := len(r.buf) - r.start // contiguous run from start
		if chunk > r.n {
			chunk = r.n
		}
		k := copy(p[total:], r.buf[r.start:r.start+chunk])
		r.start = (r.start + k) % len(r.buf)
		r.n -= k
		total += k
	}
	return total
}

// copyIn appends up to window-n bytes of p into the ring. Caller holds r.mu.
func (r *ring) copyIn(p []byte) int {
	free := r.window - r.n
	want := len(p)
	if want > free {
		want = free
	}
	if want > 0 && r.buf == nil {
		r.ensureBuf()
	}
	total := 0
	for want > 0 {
		end := (r.start + r.n) % len(r.buf)
		chunk := len(r.buf) - end
		if chunk > want {
			chunk = want
		}
		copy(r.buf[end:end+chunk], p[total:total+chunk])
		r.n += chunk
		total += chunk
		want -= chunk
	}
	return total
}

// read copies buffered bytes out, blocking per the ring's state. Caller is
// the Stream whose in-direction this ring is.
func (r *ring) read(p []byte) (int, error) {
	r.mu.Lock()
	for {
		if r.rclosed {
			r.mu.Unlock()
			return 0, io.ErrClosedPipe
		}
		if err := r.fault.readFaultErr(); err != nil {
			r.mu.Unlock()
			return 0, err
		}
		if r.rdead.timed {
			r.mu.Unlock()
			return 0, os.ErrDeadlineExceeded
		}
		if r.n > 0 {
			break
		}
		if r.wclosed {
			r.mu.Unlock()
			return 0, io.EOF
		}
		if len(p) == 0 {
			r.mu.Unlock()
			return 0, nil
		}
		r.pumpOrWait()
	}
	dst := p
	if r.fault != nil {
		dst = r.fault.capRead(p)
	}
	total := r.copyOut(dst)
	if r.fault != nil {
		r.fault.deliver(dst[:total])
	}
	r.version++
	r.cond.Broadcast()
	fn := r.notify
	r.mu.Unlock()
	if fn != nil {
		fn()
	}
	return total, nil
}

// write copies p into the ring, blocking while the window is full. It
// returns the byte count written before any error.
func (r *ring) write(p []byte) (int, error) {
	if len(p) == 0 {
		r.mu.Lock()
		closed := r.wclosed || r.rclosed
		r.mu.Unlock()
		if closed {
			return 0, io.ErrClosedPipe
		}
		return 0, nil
	}
	total := 0
	for {
		r.mu.Lock()
		for {
			if r.wclosed || r.rclosed {
				r.mu.Unlock()
				return total, io.ErrClosedPipe
			}
			if r.fault != nil && r.fault.failErr != nil {
				err := r.fault.failErr
				r.mu.Unlock()
				return total, err
			}
			if r.wdead.timed {
				r.mu.Unlock()
				return total, os.ErrDeadlineExceeded
			}
			if r.n < r.window {
				break
			}
			if r.grow {
				r.growBuf(len(p) - total)
				break
			}
			r.pumpOrWait()
		}
		total += r.copyIn(p[total:])
		r.version++
		r.cond.Broadcast()
		fn := r.notify
		r.mu.Unlock()
		if fn != nil {
			fn()
		}
		if total == len(p) {
			return total, nil
		}
	}
}

// tryRead is the non-blocking read: (0, ErrWouldBlock) when the ring is
// empty but open.
func (r *ring) tryRead(p []byte) (int, error) {
	r.mu.Lock()
	if r.rclosed {
		r.mu.Unlock()
		return 0, io.ErrClosedPipe
	}
	if err := r.fault.readFaultErr(); err != nil {
		r.mu.Unlock()
		return 0, err
	}
	if r.rdead.timed {
		r.mu.Unlock()
		return 0, os.ErrDeadlineExceeded
	}
	if r.n == 0 {
		wc := r.wclosed
		r.mu.Unlock()
		if wc {
			return 0, io.EOF
		}
		return 0, ErrWouldBlock
	}
	dst := p
	if r.fault != nil {
		dst = r.fault.capRead(p)
	}
	total := r.copyOut(dst)
	if r.fault != nil {
		r.fault.deliver(dst[:total])
	}
	r.version++
	r.cond.Broadcast()
	fn := r.notify
	r.mu.Unlock()
	if fn != nil {
		fn()
	}
	return total, nil
}

// tryWrite is the non-blocking write: it appends what fits and reports
// ErrWouldBlock alongside a short count when the window is full.
func (r *ring) tryWrite(p []byte) (int, error) {
	r.mu.Lock()
	if r.wclosed || r.rclosed {
		r.mu.Unlock()
		return 0, io.ErrClosedPipe
	}
	if r.fault != nil && r.fault.failErr != nil {
		err := r.fault.failErr
		r.mu.Unlock()
		return 0, err
	}
	if r.wdead.timed {
		r.mu.Unlock()
		return 0, os.ErrDeadlineExceeded
	}
	if len(p) == 0 {
		r.mu.Unlock()
		return 0, nil
	}
	if r.n == r.window {
		r.mu.Unlock()
		return 0, ErrWouldBlock
	}
	total := r.copyIn(p)
	r.version++
	r.cond.Broadcast()
	fn := r.notify
	r.mu.Unlock()
	if fn != nil {
		fn()
	}
	if total < len(p) {
		return total, ErrWouldBlock
	}
	return total, nil
}

// closeWrite marks the direction's write side closed: the reader drains
// whatever is buffered and then sees io.EOF.
func (r *ring) closeWrite() {
	r.mu.Lock()
	r.wclosed = true
	r.version++
	r.cond.Broadcast()
	fn := r.notify
	r.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// closeRead marks the direction's read side closed: pending and future
// writes fail with io.ErrClosedPipe, local reads too.
func (r *ring) closeRead() {
	r.mu.Lock()
	r.rclosed = true
	r.version++
	r.cond.Broadcast()
	fn := r.notify
	r.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// setDeadline (re)arms one side's deadline flag and timer on the ring's
// clock: the fabric's injected Clock for dialed streams (simnet.Real in
// daemons), the wall clock for bare Pipes.
func (r *ring) setDeadline(t time.Time, d *deadline) {
	// Clock reads and timer stops stay outside the critical section; the
	// gen bump under the lock invalidates a stale timer that fires in the
	// gap (lockorder: interface calls under r.mu are opaque to the
	// acquisition graph).
	now := r.clock.Now()
	var stale Timer
	defer func() {
		if stale != nil {
			stale.Stop()
		}
	}()
	r.mu.Lock()
	stale, d.timer = d.timer, nil
	d.gen++
	if t.IsZero() {
		d.timed = false
		r.mu.Unlock()
		return
	}
	wait := t.Sub(now)
	if wait <= 0 {
		d.timed = true
		r.version++
		r.cond.Broadcast()
		fn := r.notify
		r.mu.Unlock()
		if fn != nil {
			fn()
		}
		return
	}
	d.timed = false
	gen := d.gen
	//tftlint:ignore lockorder -- the timer must arm under r.mu so a concurrent setDeadline cannot observe a half-armed deadline; Virtual.AfterFunc takes only the clock's own mutex and ring.mu -> clock.mu is this package's one cross-type order, never reversed
	d.timer = r.clock.AfterFunc(wait, func() {
		r.mu.Lock()
		fired := d.gen == gen
		var fn func()
		if fired {
			d.timed = true
			r.version++
			r.cond.Broadcast()
			fn = r.notify
		}
		r.mu.Unlock()
		if fn != nil {
			fn()
		}
	})
	r.mu.Unlock()
}

func (r *ring) setReadDeadline(t time.Time)  { r.setDeadline(t, &r.rdead) }
func (r *ring) setWriteDeadline(t time.Time) { r.setDeadline(t, &r.wdead) }

// setNotify arms (or clears) the ring's readiness callback.
func (r *ring) setNotify(fn func()) {
	r.mu.Lock()
	r.notify = fn
	r.mu.Unlock()
}

// Stream is one end of a buffered fabric pipe. It implements net.Conn plus
// the CloseWrite half-close that TCP-like streams offer, and a non-blocking
// readiness API (TryRead, TryWrite, SetNotify) for event-driven consumers
// like the proxy tunnel splice.
type Stream struct {
	in  *ring // peer → us
	out *ring // us → peer

	pair          *pair
	local, remote net.Addr
}

var _ net.Conn = (*Stream)(nil)

// Read implements net.Conn.
func (s *Stream) Read(p []byte) (int, error) { return s.in.read(p) }

// Write implements net.Conn.
func (s *Stream) Write(p []byte) (int, error) { return s.out.write(p) }

// TryRead is the non-blocking Read: it returns whatever is buffered, or
// (0, ErrWouldBlock) when nothing is and the peer still writes. io.EOF and
// close errors surface exactly as with Read.
func (s *Stream) TryRead(p []byte) (int, error) { return s.in.tryRead(p) }

// TryWrite is the non-blocking Write: it buffers what fits in the window
// and returns the count written, with ErrWouldBlock when p did not fit
// entirely.
func (s *Stream) TryWrite(p []byte) (int, error) { return s.out.tryWrite(p) }

// SetNotify arms fn as the stream's readiness callback: it fires, without
// any lock held, after every state transition on either direction — data
// arriving or draining, a side closing, a deadline expiring. Callbacks must
// be brief, must tolerate spurious invocations, and at most one consumer
// per stream end may arm one. A nil fn disarms.
func (s *Stream) SetNotify(fn func()) {
	s.in.setNotify(fn)
	s.out.setNotify(fn)
}

// Close implements net.Conn: the peer drains any buffered data and then
// reads io.EOF; its writes — and every further local operation — fail with
// io.ErrClosedPipe.
func (s *Stream) Close() error {
	s.out.closeWrite()
	s.in.closeRead()
	s.pair.maybeReclaim()
	return nil
}

// CloseWrite half-closes the stream: the peer sees io.EOF after draining,
// while reads on this end keep working — a TCP FIN.
func (s *Stream) CloseWrite() error {
	s.out.closeWrite()
	return nil
}

// LocalAddr implements net.Conn.
func (s *Stream) LocalAddr() net.Addr { return s.local }

// RemoteAddr implements net.Conn.
func (s *Stream) RemoteAddr() net.Addr { return s.remote }

// SetDeadline implements net.Conn.
func (s *Stream) SetDeadline(t time.Time) error {
	s.in.setReadDeadline(t)
	s.out.setWriteDeadline(t)
	return nil
}

// SetReadDeadline implements net.Conn.
func (s *Stream) SetReadDeadline(t time.Time) error {
	s.in.setReadDeadline(t)
	return nil
}

// SetWriteDeadline implements net.Conn.
func (s *Stream) SetWriteDeadline(t time.Time) error {
	s.out.setWriteDeadline(t)
	return nil
}

// InjectReset kills both directions of the stream: every further read and
// write — on either end, buffered data included — fails with
// ErrInjectedReset, as after a TCP RST.
func (s *Stream) InjectReset() {
	s.in.injectFault(func(f *ringFault) { f.failErr = ErrInjectedReset })
	s.out.injectFault(func(f *ringFault) { f.failErr = ErrInjectedReset })
}

// InjectStall lets this end read after more bytes of its receive
// direction and then fail with os.ErrDeadlineExceeded — a peer that went
// silent until the reader's patience ran out. The peer's writes are
// unaffected.
func (s *Stream) InjectStall(after int64) {
	s.in.injectFault(func(f *ringFault) { f.stallAfter = after })
}

// InjectTruncate delivers after more bytes of this end's receive
// direction and then reports a clean io.EOF — a response cut short.
func (s *Stream) InjectTruncate(after int64) {
	s.in.injectFault(func(f *ringFault) { f.truncAfter = after })
}

// InjectTrickle caps every read on this end's receive direction at chunk
// bytes — a slow link releasing bytes a few at a time.
func (s *Stream) InjectTrickle(chunk int) {
	s.in.injectFault(func(f *ringFault) { f.trickle = chunk })
}

// InjectCorrupt XORs every every-th byte delivered on this end's receive
// direction — an on-path link mangling payloads.
func (s *Stream) InjectCorrupt(every int64) {
	s.in.injectFault(func(f *ringFault) { f.corruptEvery = every })
}
