package simnet

import (
	"io"
	"net"
	"os"
	"sync"
	"time"
)

// DefaultWindow is the per-direction buffer window of a fabric stream when
// the Fabric does not override it. 64KB holds any single httpwire message
// the measurement stack emits, so a writer streams an entire request or
// response without ever blocking on the reader.
const DefaultWindow = 64 << 10

// minRing is the initial ring allocation. Buffers start small and grow
// geometrically toward the window, so the millions of short-lived probe
// connections a crawl opens pay for the bytes they actually carry, not for
// the window's worst case.
const minRing = 1 << 10

// Pipe returns a connected pair of buffered in-memory stream ends, the
// fabric's fast-path replacement for net.Pipe. Each direction is an
// independent ring buffer of at most window bytes (DefaultWindow when
// window <= 0), so writes complete without a reader rendezvous until the
// window fills — the property that removes two goroutine wakeups per Write
// from every hop of the simulated proxy chain.
//
// Semantics match net.Pipe where both define behaviour: reads and writes
// after a local Close return io.ErrClosedPipe, writes to an end whose
// peer has closed return io.ErrClosedPipe, deadline expiry surfaces
// os.ErrDeadlineExceeded (a net.Error with Timeout() == true). Where
// net.Pipe cannot buffer, Pipe behaves like TCP: data written before a
// close is still delivered, and the peer sees io.EOF only after draining
// it. CloseWrite half-closes like a TCP FIN.
func Pipe(window int) (*Stream, *Stream) {
	if window <= 0 {
		window = DefaultWindow
	}
	ab := newRing(window)
	ba := newRing(window)
	a := &Stream{in: ba, out: ab, local: pipeAddr{}, remote: pipeAddr{}}
	b := &Stream{in: ab, out: ba, local: pipeAddr{}, remote: pipeAddr{}}
	return a, b
}

// pipeAddr is the placeholder endpoint address, as with net.Pipe.
type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

// ring is one direction of a Stream: a bounded, growable ring buffer with
// a single mutex/cond pair coordinating the (usually one) reader and
// writer, plus the deadline and close state for that direction.
type ring struct {
	mu   sync.Mutex
	cond sync.Cond

	buf    []byte // ring storage; nil until first write, grows to window
	start  int    // index of the first unread byte
	n      int    // unread byte count
	window int    // growth cap

	wclosed bool // write side closed: reads drain then EOF, writes fail
	rclosed bool // read side closed: writes fail immediately

	rdead, wdead deadline // per-side deadline state
}

// deadline is one side's deadline: the exceeded flag, the pending timer,
// and a generation counter that lets a re-arm invalidate the callback of a
// timer whose Stop raced with its firing.
type deadline struct {
	timed bool
	timer *time.Timer
	gen   uint64
}

func newRing(window int) *ring {
	r := &ring{window: window}
	r.cond.L = &r.mu
	return r
}

// grow enlarges the ring to hold at least need more bytes (capped at the
// window), linearizing buffered data into the new storage.
func (r *ring) grow(need int) {
	want := r.n + need
	if want > r.window {
		want = r.window
	}
	newCap := cap(r.buf)
	if newCap == 0 {
		newCap = minRing
	}
	for newCap < want {
		newCap *= 2
	}
	if newCap > r.window {
		newCap = r.window
	}
	if newCap <= cap(r.buf) {
		return
	}
	nb := make([]byte, newCap)
	if r.n > 0 {
		tail := copy(nb, r.buf[r.start:min(r.start+r.n, len(r.buf))])
		if tail < r.n {
			copy(nb[tail:], r.buf[:r.n-tail])
		}
	}
	r.buf = nb
	r.start = 0
}

// read copies buffered bytes out, blocking per the ring's state. Caller is
// the Stream whose in-direction this ring is.
func (r *ring) read(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.rclosed {
			return 0, io.ErrClosedPipe
		}
		if r.rdead.timed {
			return 0, os.ErrDeadlineExceeded
		}
		if r.n > 0 {
			break
		}
		if r.wclosed {
			return 0, io.EOF
		}
		if len(p) == 0 {
			return 0, nil
		}
		r.cond.Wait()
	}
	total := 0
	for total < len(p) && r.n > 0 {
		chunk := len(r.buf) - r.start // contiguous run from start
		if chunk > r.n {
			chunk = r.n
		}
		k := copy(p[total:], r.buf[r.start:r.start+chunk])
		r.start = (r.start + k) % len(r.buf)
		r.n -= k
		total += k
	}
	r.cond.Broadcast()
	return total, nil
}

// write copies p into the ring, blocking while the window is full. It
// returns the byte count written before any error.
func (r *ring) write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.wclosed {
		return 0, io.ErrClosedPipe
	}
	if len(p) == 0 {
		if r.rclosed {
			return 0, io.ErrClosedPipe
		}
		return 0, nil
	}
	total := 0
	for total < len(p) {
		for {
			if r.wclosed || r.rclosed {
				return total, io.ErrClosedPipe
			}
			if r.wdead.timed {
				return total, os.ErrDeadlineExceeded
			}
			if r.n < r.window {
				break
			}
			r.cond.Wait()
		}
		free := r.window - r.n
		want := len(p) - total
		if want > free {
			want = free
		}
		if r.n+want > cap(r.buf) {
			r.grow(want)
		}
		// Copy into at most two contiguous runs of the ring.
		for want > 0 {
			end := (r.start + r.n) % len(r.buf)
			chunk := len(r.buf) - end
			if chunk > want {
				chunk = want
			}
			copy(r.buf[end:end+chunk], p[total:total+chunk])
			r.n += chunk
			total += chunk
			want -= chunk
		}
		r.cond.Broadcast()
	}
	return total, nil
}

// closeWrite marks the direction's write side closed: the reader drains
// whatever is buffered and then sees io.EOF.
func (r *ring) closeWrite() {
	r.mu.Lock()
	r.wclosed = true
	r.cond.Broadcast()
	r.mu.Unlock()
}

// closeRead marks the direction's read side closed: pending and future
// writes fail with io.ErrClosedPipe, local reads too.
func (r *ring) closeRead() {
	r.mu.Lock()
	r.rclosed = true
	r.cond.Broadcast()
	r.mu.Unlock()
}

// setDeadline (re)arms one side's deadline flag and timer.
func (r *ring) setDeadline(t time.Time, d *deadline) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if d.timer != nil {
		d.timer.Stop()
		d.timer = nil
	}
	d.gen++
	if t.IsZero() {
		d.timed = false
		return
	}
	// Pipe deadlines honour the net.Conn contract: SetDeadline takes an
	// absolute wall-clock instant and must fire even while the virtual
	// clock stands still, so the timer below is deliberately real.
	//tftlint:ignore simclock -- net.Conn deadlines are wall-clock by contract; virtual-time runs never set pipe deadlines
	wait := time.Until(t)
	if wait <= 0 {
		d.timed = true
		r.cond.Broadcast()
		return
	}
	d.timed = false
	gen := d.gen
	//tftlint:ignore simclock -- net.Conn deadlines are wall-clock by contract; virtual-time runs never set pipe deadlines
	d.timer = time.AfterFunc(wait, func() {
		r.mu.Lock()
		if d.gen == gen {
			d.timed = true
			r.cond.Broadcast()
		}
		r.mu.Unlock()
	})
}

func (r *ring) setReadDeadline(t time.Time)  { r.setDeadline(t, &r.rdead) }
func (r *ring) setWriteDeadline(t time.Time) { r.setDeadline(t, &r.wdead) }

// Stream is one end of a buffered fabric pipe. It implements net.Conn plus
// the CloseWrite half-close that TCP-like streams offer.
type Stream struct {
	in  *ring // peer → us
	out *ring // us → peer

	local, remote net.Addr
}

var _ net.Conn = (*Stream)(nil)

// Read implements net.Conn.
func (s *Stream) Read(p []byte) (int, error) { return s.in.read(p) }

// Write implements net.Conn.
func (s *Stream) Write(p []byte) (int, error) { return s.out.write(p) }

// Close implements net.Conn: the peer drains any buffered data and then
// reads io.EOF; its writes — and every further local operation — fail with
// io.ErrClosedPipe.
func (s *Stream) Close() error {
	s.out.closeWrite()
	s.in.closeRead()
	return nil
}

// CloseWrite half-closes the stream: the peer sees io.EOF after draining,
// while reads on this end keep working — a TCP FIN.
func (s *Stream) CloseWrite() error {
	s.out.closeWrite()
	return nil
}

// LocalAddr implements net.Conn.
func (s *Stream) LocalAddr() net.Addr { return s.local }

// RemoteAddr implements net.Conn.
func (s *Stream) RemoteAddr() net.Addr { return s.remote }

// SetDeadline implements net.Conn.
func (s *Stream) SetDeadline(t time.Time) error {
	s.in.setReadDeadline(t)
	s.out.setWriteDeadline(t)
	return nil
}

// SetReadDeadline implements net.Conn.
func (s *Stream) SetReadDeadline(t time.Time) error {
	s.in.setReadDeadline(t)
	return nil
}

// SetWriteDeadline implements net.Conn.
func (s *Stream) SetWriteDeadline(t time.Time) error {
	s.out.setWriteDeadline(t)
	return nil
}
