package simnet

import (
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2016, 4, 13, 0, 0, 0, 0, time.UTC)

func TestVirtualNow(t *testing.T) {
	c := NewVirtual(t0)
	if !c.Now().Equal(t0) {
		t.Fatalf("Now() = %v, want %v", c.Now(), t0)
	}
	c.Advance(5 * time.Second)
	if got := c.Now(); !got.Equal(t0.Add(5 * time.Second)) {
		t.Fatalf("Now() after Advance = %v", got)
	}
}

func TestVirtualAfterFuncFiresInOrder(t *testing.T) {
	c := NewVirtual(t0)
	var order []int
	c.AfterFunc(3*time.Second, func() { order = append(order, 3) })
	c.AfterFunc(1*time.Second, func() { order = append(order, 1) })
	c.AfterFunc(2*time.Second, func() { order = append(order, 2) })
	c.Advance(10 * time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", order)
	}
}

func TestVirtualAfterFuncSameInstantFIFO(t *testing.T) {
	c := NewVirtual(t0)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		c.AfterFunc(time.Second, func() { order = append(order, i) })
	}
	c.Advance(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant order = %v, want FIFO", order)
		}
	}
}

func TestVirtualAdvancePartial(t *testing.T) {
	c := NewVirtual(t0)
	fired := 0
	c.AfterFunc(time.Second, func() { fired++ })
	c.AfterFunc(time.Hour, func() { fired++ })
	c.Advance(time.Minute)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if c.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", c.Pending())
	}
}

func TestVirtualCallbackSeesEventTime(t *testing.T) {
	c := NewVirtual(t0)
	var at time.Time
	c.AfterFunc(7*time.Second, func() { at = c.Now() })
	c.Advance(time.Minute)
	if !at.Equal(t0.Add(7 * time.Second)) {
		t.Fatalf("callback saw %v, want %v", at, t0.Add(7*time.Second))
	}
}

func TestVirtualNestedSchedule(t *testing.T) {
	c := NewVirtual(t0)
	var hits []time.Time
	c.AfterFunc(time.Second, func() {
		hits = append(hits, c.Now())
		c.AfterFunc(time.Second, func() { hits = append(hits, c.Now()) })
	})
	c.Advance(time.Minute)
	if len(hits) != 2 {
		t.Fatalf("hits = %d, want 2 (nested event inside window must fire)", len(hits))
	}
	if !hits[1].Equal(t0.Add(2 * time.Second)) {
		t.Fatalf("nested fired at %v, want %v", hits[1], t0.Add(2*time.Second))
	}
}

func TestVirtualStop(t *testing.T) {
	c := NewVirtual(t0)
	fired := false
	tm := c.AfterFunc(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop() = false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
	c.Advance(time.Hour)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestVirtualRunDrainsAll(t *testing.T) {
	c := NewVirtual(t0)
	count := 0
	c.AfterFunc(time.Hour, func() {
		count++
		c.AfterFunc(24*time.Hour, func() { count++ })
	})
	n := c.Run()
	if n != 2 || count != 2 {
		t.Fatalf("Run fired %d (count %d), want 2", n, count)
	}
	if got := c.Now(); !got.Equal(t0.Add(25 * time.Hour)) {
		t.Fatalf("Now after Run = %v, want %v", got, t0.Add(25*time.Hour))
	}
}

func TestVirtualNegativeDelayClamped(t *testing.T) {
	c := NewVirtual(t0)
	fired := false
	c.AfterFunc(-time.Hour, func() { fired = true })
	c.Advance(0)
	if !fired {
		t.Fatal("negative-delay callback did not fire at current time")
	}
	if !c.Now().Equal(t0) {
		t.Fatal("clock moved backwards")
	}
}

func TestVirtualConcurrentSchedule(t *testing.T) {
	c := NewVirtual(t0)
	var mu sync.Mutex
	fired := 0
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.AfterFunc(time.Duration(i)*time.Millisecond, func() {
				mu.Lock()
				fired++
				mu.Unlock()
			})
		}(i)
	}
	wg.Wait()
	c.Advance(time.Second)
	if fired != 50 {
		t.Fatalf("fired = %d, want 50", fired)
	}
}

func TestRealClockBasics(t *testing.T) {
	var c Clock = Real{}
	before := time.Now()
	if c.Now().Before(before) {
		t.Fatal("Real.Now went backwards")
	}
	done := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Real.AfterFunc never fired")
	}
}
