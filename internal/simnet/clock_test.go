package simnet

import (
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2016, 4, 13, 0, 0, 0, 0, time.UTC)

func TestVirtualNow(t *testing.T) {
	c := NewVirtual(t0)
	if !c.Now().Equal(t0) {
		t.Fatalf("Now() = %v, want %v", c.Now(), t0)
	}
	c.Advance(5 * time.Second)
	if got := c.Now(); !got.Equal(t0.Add(5 * time.Second)) {
		t.Fatalf("Now() after Advance = %v", got)
	}
}

func TestVirtualAfterFuncFiresInOrder(t *testing.T) {
	c := NewVirtual(t0)
	var order []int
	c.AfterFunc(3*time.Second, func() { order = append(order, 3) })
	c.AfterFunc(1*time.Second, func() { order = append(order, 1) })
	c.AfterFunc(2*time.Second, func() { order = append(order, 2) })
	c.Advance(10 * time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", order)
	}
}

func TestVirtualAfterFuncSameInstantFIFO(t *testing.T) {
	c := NewVirtual(t0)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		c.AfterFunc(time.Second, func() { order = append(order, i) })
	}
	c.Advance(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant order = %v, want FIFO", order)
		}
	}
}

func TestVirtualAdvancePartial(t *testing.T) {
	c := NewVirtual(t0)
	fired := 0
	c.AfterFunc(time.Second, func() { fired++ })
	c.AfterFunc(time.Hour, func() { fired++ })
	c.Advance(time.Minute)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if c.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", c.Pending())
	}
}

func TestVirtualCallbackSeesEventTime(t *testing.T) {
	c := NewVirtual(t0)
	var at time.Time
	c.AfterFunc(7*time.Second, func() { at = c.Now() })
	c.Advance(time.Minute)
	if !at.Equal(t0.Add(7 * time.Second)) {
		t.Fatalf("callback saw %v, want %v", at, t0.Add(7*time.Second))
	}
}

func TestVirtualNestedSchedule(t *testing.T) {
	c := NewVirtual(t0)
	var hits []time.Time
	c.AfterFunc(time.Second, func() {
		hits = append(hits, c.Now())
		c.AfterFunc(time.Second, func() { hits = append(hits, c.Now()) })
	})
	c.Advance(time.Minute)
	if len(hits) != 2 {
		t.Fatalf("hits = %d, want 2 (nested event inside window must fire)", len(hits))
	}
	if !hits[1].Equal(t0.Add(2 * time.Second)) {
		t.Fatalf("nested fired at %v, want %v", hits[1], t0.Add(2*time.Second))
	}
}

func TestVirtualStop(t *testing.T) {
	c := NewVirtual(t0)
	fired := false
	tm := c.AfterFunc(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop() = false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
	c.Advance(time.Hour)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestVirtualRunDrainsAll(t *testing.T) {
	c := NewVirtual(t0)
	count := 0
	c.AfterFunc(time.Hour, func() {
		count++
		c.AfterFunc(24*time.Hour, func() { count++ })
	})
	n := c.Run()
	if n != 2 || count != 2 {
		t.Fatalf("Run fired %d (count %d), want 2", n, count)
	}
	if got := c.Now(); !got.Equal(t0.Add(25 * time.Hour)) {
		t.Fatalf("Now after Run = %v, want %v", got, t0.Add(25*time.Hour))
	}
}

func TestVirtualNegativeDelayClamped(t *testing.T) {
	c := NewVirtual(t0)
	fired := false
	c.AfterFunc(-time.Hour, func() { fired = true })
	c.Advance(0)
	if !fired {
		t.Fatal("negative-delay callback did not fire at current time")
	}
	if !c.Now().Equal(t0) {
		t.Fatal("clock moved backwards")
	}
}

func TestVirtualConcurrentSchedule(t *testing.T) {
	c := NewVirtual(t0)
	var mu sync.Mutex
	fired := 0
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.AfterFunc(time.Duration(i)*time.Millisecond, func() {
				mu.Lock()
				fired++
				mu.Unlock()
			})
		}(i)
	}
	wg.Wait()
	c.Advance(time.Second)
	if fired != 50 {
		t.Fatalf("fired = %d, want 50", fired)
	}
}

func TestRealClockBasics(t *testing.T) {
	var c Clock = Real{}
	before := time.Now()
	if c.Now().Before(before) {
		t.Fatal("Real.Now went backwards")
	}
	done := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Real.AfterFunc never fired")
	}
}

// TestVirtualStopRacesFiring hammers Stop from another goroutine while the
// clock fires the same timers: whatever the interleaving, exactly one of
// {fired, stopped-true} holds per timer, and recycled event objects must
// never leak a stale cancellation into a later timer (-race guards the
// memory side).
func TestVirtualStopRacesFiring(t *testing.T) {
	for round := 0; round < 50; round++ {
		c := NewVirtual(t0)
		const n = 64
		var fired [n]int32
		timers := make([]Timer, n)
		for i := 0; i < n; i++ {
			i := i
			timers[i] = c.AfterFunc(time.Millisecond, func() { fired[i]++ })
		}
		stopped := make([]bool, n)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range timers {
				stopped[i] = timers[i].Stop()
			}
		}()
		c.Advance(time.Millisecond)
		wg.Wait()
		for i := 0; i < n; i++ {
			if stopped[i] == (fired[i] == 1) {
				t.Fatalf("round %d timer %d: stopped=%v fired=%d; want exactly one",
					round, i, stopped[i], fired[i])
			}
		}
		// The generation bump must make late Stops on fired (and since
		// recycled) events report false, even if the event object now
		// backs a different timer.
		reused := c.AfterFunc(time.Millisecond, func() {})
		for i := range timers {
			if timers[i].Stop() {
				t.Fatalf("round %d timer %d: Stop true after settle", round, i)
			}
		}
		if !reused.Stop() {
			t.Fatalf("round %d: fresh timer must stop", round)
		}
	}
}

// TestVirtualSameInstantReschedule pins the batching contract: callbacks
// that re-schedule at the same instant run in the same Advance, after the
// current batch, in scheduling order.
func TestVirtualSameInstantReschedule(t *testing.T) {
	c := NewVirtual(t0)
	var order []string
	c.AfterFunc(time.Second, func() {
		order = append(order, "a")
		c.AfterFunc(0, func() { order = append(order, "a2") })
	})
	c.AfterFunc(time.Second, func() {
		order = append(order, "b")
		c.AfterFunc(0, func() { order = append(order, "b2") })
	})
	c.Advance(time.Second)
	want := "a,b,a2,b2"
	got := ""
	for i, s := range order {
		if i > 0 {
			got += ","
		}
		got += s
	}
	if got != want {
		t.Fatalf("firing order %q, want %q", got, want)
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain", c.Pending())
	}
}

// TestVirtualAfterFuncDuringRun schedules from another goroutine while Run
// drains the heap; every callback must fire exactly once and Pending must
// land on zero.
func TestVirtualAfterFuncDuringRun(t *testing.T) {
	c := NewVirtual(t0)
	var mu sync.Mutex
	firedCount := 0
	count := func() { mu.Lock(); firedCount++; mu.Unlock() }
	var wg sync.WaitGroup
	wg.Add(1)
	c.AfterFunc(time.Millisecond, func() {
		// Runs inside Run: keep the external scheduler racing the drain.
		wg.Done()
		count()
	})
	const extra = 200
	go func() {
		wg.Wait()
		for i := 0; i < extra; i++ {
			c.AfterFunc(time.Duration(i)*time.Microsecond, count)
		}
	}()
	total := 0
	for total < 1+extra {
		total += c.Run()
	}
	mu.Lock()
	defer mu.Unlock()
	if firedCount != 1+extra {
		t.Fatalf("fired %d callbacks, want %d", firedCount, 1+extra)
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain", c.Pending())
	}
}

// TestVirtualPendingCounts pins the O(1) live counter against schedule,
// stop, and fire transitions.
func TestVirtualPendingCounts(t *testing.T) {
	c := NewVirtual(t0)
	if c.Pending() != 0 {
		t.Fatalf("fresh clock Pending() = %d", c.Pending())
	}
	a := c.AfterFunc(time.Second, func() {})
	b := c.AfterFunc(2*time.Second, func() {})
	c.AfterFunc(3*time.Second, func() {})
	if got := c.Pending(); got != 3 {
		t.Fatalf("Pending() = %d, want 3", got)
	}
	if !a.Stop() {
		t.Fatal("Stop() = false on pending timer")
	}
	if got := c.Pending(); got != 2 {
		t.Fatalf("Pending() after Stop = %d, want 2", got)
	}
	c.Advance(2 * time.Second)
	if got := c.Pending(); got != 1 {
		t.Fatalf("Pending() after Advance = %d, want 1", got)
	}
	if b.Stop() {
		t.Fatal("Stop() = true on fired timer")
	}
	c.Run()
	if got := c.Pending(); got != 0 {
		t.Fatalf("Pending() after Run = %d, want 0", got)
	}
}
