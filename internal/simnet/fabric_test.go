package simnet

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/netip"
	"testing"
)

var (
	hostA = netip.MustParseAddr("10.0.0.1")
	hostB = netip.MustParseAddr("10.0.0.2")
	hostC = netip.MustParseAddr("10.0.0.3")
)

func TestDialEcho(t *testing.T) {
	f := NewFabric()
	msg := []byte("hello through the fabric")
	// Request/response handler: reads the full request, echoes it, closes.
	// This is the HandleTCP contract — it runs inline on the dialer's
	// goroutine the moment the dialer blocks on ReadFull below.
	f.HandleTCP(hostB, 80, func(conn net.Conn) {
		defer conn.Close()
		buf := make([]byte, len(msg))
		if _, err := io.ReadFull(conn, buf); err != nil {
			t.Error(err)
			return
		}
		conn.Write(buf)
	})
	conn, err := f.Dial(context.Background(), hostA, hostB, 80)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("echo = %q, want %q", buf, msg)
	}
}

func TestDialUnknownHost(t *testing.T) {
	f := NewFabric()
	_, err := f.Dial(context.Background(), hostA, hostB, 80)
	if !errors.Is(err, ErrHostUnreachable) {
		t.Fatalf("err = %v, want ErrHostUnreachable", err)
	}
}

func TestDialClosedPort(t *testing.T) {
	f := NewFabric()
	f.HandleTCP(hostB, 80, func(conn net.Conn) { conn.Close() })
	_, err := f.Dial(context.Background(), hostA, hostB, 443)
	if !errors.Is(err, ErrConnRefused) {
		t.Fatalf("err = %v, want ErrConnRefused", err)
	}
}

func TestServerSeesClientAddress(t *testing.T) {
	f := NewFabric()
	got := make(chan netip.Addr, 1)
	f.HandleTCP(hostB, 80, func(conn net.Conn) {
		defer conn.Close()
		ip, ok := RemoteIP(conn)
		if !ok {
			t.Error("RemoteIP failed")
		}
		got <- ip
	})
	conn, err := f.Dial(context.Background(), hostC, hostB, 80)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Block on a read to pump the handler task; it closes the conn, so the
	// read returns EOF once the handler has reported the peer address.
	var b [1]byte
	if _, err := conn.Read(b[:]); err != io.EOF {
		t.Fatalf("read = %v, want EOF", err)
	}
	if ip := <-got; ip != hostC {
		t.Fatalf("server saw %v, want %v", ip, hostC)
	}
}

func TestClientSeesServerAddress(t *testing.T) {
	f := NewFabric()
	f.HandleTCP(hostB, 8080, func(conn net.Conn) { conn.Close() })
	conn, err := f.Dial(context.Background(), hostA, hostB, 8080)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ip, ok := RemoteIP(conn)
	if !ok || ip != hostB {
		t.Fatalf("client saw remote %v (ok=%v), want %v", ip, ok, hostB)
	}
}

func TestExchangeDNS(t *testing.T) {
	f := NewFabric()
	var sawSrc netip.Addr
	f.HandleDNS(hostB, func(src netip.Addr, q []byte) []byte {
		sawSrc = src
		return append([]byte("re:"), q...)
	})
	resp, err := f.ExchangeDNS(hostA, hostB, []byte("query"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "re:query" {
		t.Fatalf("resp = %q", resp)
	}
	if sawSrc != hostA {
		t.Fatalf("server saw src %v, want %v", sawSrc, hostA)
	}
}

func TestExchangeDNSNoService(t *testing.T) {
	f := NewFabric()
	f.HandleTCP(hostB, 80, func(conn net.Conn) { conn.Close() })
	_, err := f.ExchangeDNS(hostA, hostB, []byte("q"))
	if !errors.Is(err, ErrNoDNSService) {
		t.Fatalf("err = %v, want ErrNoDNSService", err)
	}
}

func TestExchangeDNSUnknownHost(t *testing.T) {
	f := NewFabric()
	_, err := f.ExchangeDNS(hostA, hostC, []byte("q"))
	if !errors.Is(err, ErrHostUnreachable) {
		t.Fatalf("err = %v, want ErrHostUnreachable", err)
	}
}

func TestUnregisterTCP(t *testing.T) {
	f := NewFabric()
	f.HandleTCP(hostB, 80, func(conn net.Conn) { conn.Close() })
	f.HandleTCP(hostB, 80, nil)
	if _, err := f.Dial(context.Background(), hostA, hostB, 80); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("err = %v, want ErrConnRefused after unregister", err)
	}
}

func TestDialCancelledContext(t *testing.T) {
	f := NewFabric()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.Dial(ctx, hostA, hostB, 80); err == nil {
		t.Fatal("Dial with cancelled context succeeded")
	}
}

func TestSubRandIndependence(t *testing.T) {
	a1 := SubRand(42, "population")
	a2 := SubRand(42, "population")
	b := SubRand(42, "crawler")
	for i := 0; i < 100; i++ {
		if a1.Uint64() != a2.Uint64() {
			t.Fatal("same label+seed diverged")
		}
	}
	same := true
	x := SubRand(42, "population")
	for i := 0; i < 10; i++ {
		if x.Uint64() != b.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different labels produced identical streams")
	}
}
