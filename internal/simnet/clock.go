// Package simnet provides the simulation substrate shared by every other
// package in this repository: a pluggable clock (real or virtual), an
// in-memory network fabric with addressable hosts, and deterministic
// random-number plumbing.
//
// The measurement methodology in the paper depends on time only through
// event ordering and recorded delays (session TTLs, monitor refetch delays,
// the 24-hour monitoring window). Running those against a virtual clock lets
// the full experiment complete in milliseconds while preserving every
// observable delay, which is what the analysis consumes.
package simnet

import (
	"container/heap"
	"sync"
	"time"
)

// Clock abstracts time for everything in this repository. Two
// implementations exist: Real (the wall clock, used by the cmd/ daemons) and
// Virtual (a discrete-event clock, used by tests, benches, and full-scale
// simulated runs).
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// AfterFunc schedules f to run once the clock has advanced d past Now.
	// f runs on the clock's goroutine for Virtual clocks; callers must not
	// block inside f.
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer is a handle to a pending AfterFunc callback.
type Timer interface {
	// Stop cancels the callback if it has not fired yet, reporting whether
	// it was cancelled.
	Stop() bool
}

// Real is a Clock backed by the wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, f func()) Timer { return realTimer{time.AfterFunc(d, f)} }

type realTimer struct{ t *time.Timer }

func (r realTimer) Stop() bool { return r.t.Stop() }

// Virtual is a discrete-event clock. Time never advances on its own: callers
// advance it explicitly with Advance or Run, and any AfterFunc callbacks due
// in the traversed window fire in timestamp order.
//
// The zero value is not usable; construct with NewVirtual.
type Virtual struct {
	mu     sync.Mutex
	now    time.Time
	events eventHeap
	seq    uint64
}

// NewVirtual returns a Virtual clock whose current time is start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// AfterFunc implements Clock. Callbacks scheduled with a non-positive delay
// fire at the current virtual time on the next Advance or Run call.
func (v *Virtual) AfterFunc(d time.Duration, f func()) Timer {
	v.mu.Lock()
	defer v.mu.Unlock()
	if d < 0 {
		d = 0
	}
	ev := &event{at: v.now.Add(d), seq: v.seq, fn: f, clock: v}
	v.seq++
	heap.Push(&v.events, ev)
	return ev
}

// Advance moves the clock forward by d, firing every due callback in
// timestamp order. Callbacks may schedule further callbacks; those fire too
// if they fall within the window.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	v.advanceTo(v.now.Add(d))
	v.mu.Unlock()
}

// AdvanceTo moves the clock forward to t (no-op if t is not after Now),
// firing every due callback in timestamp order.
func (v *Virtual) AdvanceTo(t time.Time) {
	v.mu.Lock()
	v.advanceTo(t)
	v.mu.Unlock()
}

// Run fires every pending callback, jumping the clock to each event's
// timestamp, until no events remain. Callbacks scheduled during Run also
// fire. It returns the number of callbacks fired.
func (v *Virtual) Run() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := 0
	for len(v.events) > 0 {
		ev := heap.Pop(&v.events).(*event)
		if ev.stopped {
			continue
		}
		if ev.at.After(v.now) {
			v.now = ev.at
		}
		v.runEvent(ev)
		n++
	}
	return n
}

// Pending reports the number of callbacks that have been scheduled but have
// not yet fired or been stopped.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := 0
	for _, ev := range v.events {
		if !ev.stopped {
			n++
		}
	}
	return n
}

// advanceTo fires due events and sets now to t. Caller holds v.mu.
func (v *Virtual) advanceTo(t time.Time) {
	for len(v.events) > 0 {
		ev := v.events[0]
		if ev.stopped {
			heap.Pop(&v.events)
			continue
		}
		if ev.at.After(t) {
			break
		}
		heap.Pop(&v.events)
		if ev.at.After(v.now) {
			v.now = ev.at
		}
		v.runEvent(ev)
	}
	if t.After(v.now) {
		v.now = t
	}
}

// runEvent invokes an event callback without holding the lock so the
// callback may call back into the clock.
func (v *Virtual) runEvent(ev *event) {
	v.mu.Unlock()
	ev.fn()
	v.mu.Lock()
}

type event struct {
	at      time.Time
	seq     uint64
	fn      func()
	clock   *Virtual
	stopped bool
	index   int
}

// Stop implements Timer.
func (e *event) Stop() bool {
	e.clock.mu.Lock()
	defer e.clock.mu.Unlock()
	if e.stopped || e.index < 0 {
		return false
	}
	e.stopped = true
	return true
}

// eventHeap orders events by (time, sequence) so same-instant callbacks fire
// in scheduling order.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
