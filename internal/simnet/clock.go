// Package simnet provides the simulation substrate shared by every other
// package in this repository: a pluggable clock (real or virtual), an
// in-memory network fabric with addressable hosts, and deterministic
// random-number plumbing.
//
// The measurement methodology in the paper depends on time only through
// event ordering and recorded delays (session TTLs, monitor refetch delays,
// the 24-hour monitoring window). Running those against a virtual clock lets
// the full experiment complete in milliseconds while preserving every
// observable delay, which is what the analysis consumes.
package simnet

import (
	"container/heap"
	"sync"
	"time"
)

// Clock abstracts time for everything in this repository. Two
// implementations exist: Real (the wall clock, used by the cmd/ daemons) and
// Virtual (a discrete-event clock, used by tests, benches, and full-scale
// simulated runs).
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// AfterFunc schedules f to run once the clock has advanced d past Now.
	// f runs on the clock's goroutine for Virtual clocks; callers must not
	// block inside f.
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer is a handle to a pending AfterFunc callback.
type Timer interface {
	// Stop cancels the callback if it has not fired yet, reporting whether
	// it was cancelled.
	Stop() bool
}

// Real is a Clock backed by the wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, f func()) Timer { return realTimer{time.AfterFunc(d, f)} }

type realTimer struct{ t *time.Timer }

func (r realTimer) Stop() bool { return r.t.Stop() }

// Virtual is a discrete-event clock. Time never advances on its own: callers
// advance it explicitly with Advance or Run, and any AfterFunc callbacks due
// in the traversed window fire in timestamp order.
//
// Fired and stopped events are recycled through a free list, so a run that
// schedules millions of callbacks (a full-scale monitor window) reuses a
// bounded set of event objects instead of allocating one per callback.
//
// The zero value is not usable; construct with NewVirtual.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	events  eventHeap
	seq     uint64
	live    int      // scheduled, unfired, unstopped — Pending in O(1)
	free    *event   // recycled event objects, linked through next
	scratch []*event // reusable firing-batch buffer (nil while in use)
}

// NewVirtual returns a Virtual clock whose current time is start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// AfterFunc implements Clock. Callbacks scheduled with a non-positive delay
// fire at the current virtual time on the next Advance or Run call.
func (v *Virtual) AfterFunc(d time.Duration, f func()) Timer {
	v.mu.Lock()
	defer v.mu.Unlock()
	if d < 0 {
		d = 0
	}
	ev := v.alloc()
	ev.at = v.now.Add(d)
	ev.seq = v.seq
	ev.fn = f
	v.seq++
	heap.Push(&v.events, ev)
	v.live++
	return vtimer{clock: v, ev: ev, gen: ev.gen}
}

// vtimer is the handle AfterFunc returns. The generation snapshot keeps a
// Stop that races (or trails) the event's firing from touching a recycled —
// possibly re-scheduled — event object.
type vtimer struct {
	clock *Virtual
	ev    *event
	gen   uint64
}

// Stop implements Timer.
func (t vtimer) Stop() bool {
	v := t.clock
	v.mu.Lock()
	defer v.mu.Unlock()
	ev := t.ev
	if ev.gen != t.gen || ev.stopped || ev.index < 0 {
		return false
	}
	ev.stopped = true
	v.live--
	return true
}

// Advance moves the clock forward by d, firing every due callback in
// timestamp order. Callbacks may schedule further callbacks; those fire too
// if they fall within the window.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	v.advanceTo(v.now.Add(d))
	v.mu.Unlock()
}

// AdvanceTo moves the clock forward to t (no-op if t is not after Now),
// firing every due callback in timestamp order.
func (v *Virtual) AdvanceTo(t time.Time) {
	v.mu.Lock()
	v.advanceTo(t)
	v.mu.Unlock()
}

// Run fires every pending callback, jumping the clock to each event's
// timestamp, until no events remain. Callbacks scheduled during Run also
// fire. It returns the number of callbacks fired.
func (v *Virtual) Run() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := 0
	for {
		for len(v.events) > 0 && v.events[0].stopped {
			v.recycle(heap.Pop(&v.events).(*event))
		}
		if len(v.events) == 0 {
			return n
		}
		n += v.advanceTo(v.events[0].at)
	}
}

// Pending reports the number of callbacks that have been scheduled but have
// not yet fired or been stopped. O(1): progress and stall reporting poll it
// from the crawl hot loop.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.live
}

// advanceTo fires due events batch-by-batch and sets now to t, returning how
// many callbacks fired. Caller holds v.mu.
//
// All events sharing one timestamp are drained under a single lock
// acquisition, then run back-to-back outside the lock — one unlock/lock pair
// per instant instead of one per event. Same-instant events scheduled *by*
// a firing callback land in the next batch, preserving (time, seq) order.
func (v *Virtual) advanceTo(t time.Time) int {
	fired := 0
	for {
		batch := v.takeScratch()
		var at time.Time
		for len(v.events) > 0 {
			ev := v.events[0]
			if ev.stopped {
				heap.Pop(&v.events)
				v.recycle(ev)
				continue
			}
			if ev.at.After(t) {
				break
			}
			if len(batch) > 0 && !ev.at.Equal(at) {
				break
			}
			at = ev.at
			heap.Pop(&v.events)
			v.live--
			batch = append(batch, ev)
		}
		if len(batch) == 0 {
			v.giveScratch(batch)
			break
		}
		if at.After(v.now) {
			v.now = at
		}
		v.mu.Unlock()
		for _, ev := range batch {
			ev.fn()
		}
		v.mu.Lock()
		fired += len(batch)
		for _, ev := range batch {
			v.recycle(ev)
		}
		v.giveScratch(batch)
	}
	if t.After(v.now) {
		v.now = t
	}
	return fired
}

// takeScratch claims the reusable batch buffer (a nested Advance from inside
// a callback finds it taken and allocates its own).
func (v *Virtual) takeScratch() []*event {
	s := v.scratch
	v.scratch = nil
	if s == nil {
		s = make([]*event, 0, 16)
	}
	return s[:0]
}

// giveScratch returns a batch buffer for reuse.
func (v *Virtual) giveScratch(s []*event) {
	if v.scratch == nil || cap(s) > cap(v.scratch) {
		v.scratch = s[:0]
	}
}

// alloc takes an event from the free list, or makes one.
func (v *Virtual) alloc() *event {
	ev := v.free
	if ev == nil {
		return &event{}
	}
	v.free = ev.next
	ev.next = nil
	ev.stopped = false
	return ev
}

// recycle retires a fired or stopped event to the free list. The generation
// bump invalidates any Timer handle still pointing here.
func (v *Virtual) recycle(ev *event) {
	ev.fn = nil
	ev.gen++
	ev.stopped = false
	ev.next = v.free
	v.free = ev
}

type event struct {
	at      time.Time
	seq     uint64
	fn      func()
	gen     uint64
	stopped bool
	index   int
	next    *event // free-list link
}

// eventHeap orders events by (time, sequence) so same-instant callbacks fire
// in scheduling order.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
