package simnet

import (
	"hash/fnv"
	"math/rand/v2"
)

// NewRand returns a deterministic PCG-backed generator for the given seed.
// Every stochastic decision in the repository flows from generators created
// here, so a (seed, scale) pair reproduces a world bit-for-bit.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// SubRand derives an independent generator from a parent seed and a label,
// so distinct subsystems (population, crawler, monitors, ...) consume
// decoupled random streams: adding draws in one never perturbs another.
func SubRand(seed uint64, label string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(label))
	return NewRand(seed ^ h.Sum64())
}

// ShardSeed derives the seed for shard i of a sharded computation with a
// splitmix64 step over the parent seed, so per-shard random streams are
// decorrelated from each other and from every SubRand stream, and any
// shard's seed is computable without enumerating the others.
func ShardSeed(seed uint64, shard int) uint64 {
	z := seed + (uint64(shard)+1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
