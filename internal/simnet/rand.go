package simnet

import (
	"hash/fnv"
	"math/rand/v2"
)

// NewRand returns a deterministic PCG-backed generator for the given seed.
// Every stochastic decision in the repository flows from generators created
// here, so a (seed, scale) pair reproduces a world bit-for-bit.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// SubRand derives an independent generator from a parent seed and a label,
// so distinct subsystems (population, crawler, monitors, ...) consume
// decoupled random streams: adding draws in one never perturbs another.
func SubRand(seed uint64, label string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(label))
	return NewRand(seed ^ h.Sum64())
}
