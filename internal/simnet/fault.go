package simnet

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// FaultKind names one transport-fault mechanism the fault plane can inject
// into a fabric stream — the misbehaviours real residential exit nodes
// exhibit mid-transfer (Mani et al. 2018): hard resets, silent stalls,
// byte-trickling links, truncated responses, and corrupted payloads.
type FaultKind uint8

const (
	// FaultReset kills both directions of the stream: every further read
	// and write fails with ErrInjectedReset, as a TCP RST would.
	FaultReset FaultKind = iota
	// FaultStall delivers AfterBytes of the receive direction and then
	// behaves like a connection that went silent until the reader's
	// deadline: reads fail with os.ErrDeadlineExceeded.
	FaultStall
	// FaultTrickle caps every read on the receive direction at Chunk
	// bytes — a slow link that releases bytes a few at a time.
	FaultTrickle
	// FaultTruncate delivers AfterBytes of the receive direction and then
	// reports a clean io.EOF, as if the peer closed mid-response.
	FaultTruncate
	// FaultCorrupt flips one bit pattern in every Every-th byte delivered
	// on the receive direction — an on-path link mangling payloads.
	FaultCorrupt

	numFaultKinds
)

// String returns the kind's metric label.
func (k FaultKind) String() string {
	switch k {
	case FaultReset:
		return "reset"
	case FaultStall:
		return "stall"
	case FaultTrickle:
		return "trickle"
	case FaultTruncate:
		return "truncate"
	case FaultCorrupt:
		return "corrupt"
	}
	return "unknown"
}

// FaultSpec is one fault the plane may arm on a freshly dialed stream.
type FaultSpec struct {
	// Kind selects the mechanism.
	Kind FaultKind
	// Prob is the per-dial arming probability in [0, 1], drawn from the
	// plane's seeded stream in spec order.
	Prob float64
	// Delay, when positive, defers the injection by that much clock time
	// via Clock.AfterFunc; zero injects at dial time. Crawl-facing
	// profiles use zero: the crawl worlds never advance the virtual clock
	// mid-run, so only byte-count triggers are observable there.
	Delay time.Duration
	// AfterBytes is the receive-direction byte count delivered before a
	// stall or truncation engages.
	AfterBytes int64
	// Chunk is the per-read byte cap of a trickle.
	Chunk int
	// Every is the corruption stride: every Every-th delivered byte is
	// mangled.
	Every int64
}

// FaultProfile is a named bundle of fault specs with a port filter — the
// unit cmd/tft's -chaos flag selects.
type FaultProfile struct {
	// Name identifies the profile ("flaky-exits", ...).
	Name string
	// Ports restricts arming to dials of these destination ports; nil
	// means every port, including the client↔super-proxy leg.
	Ports []uint16
	// Specs are the candidate faults, drawn independently per dial.
	Specs []FaultSpec
}

// chaosProfiles are the named fault mixes, in CLI listing order.
//
//   - flaky-exits: faults only on origin-facing ports (80/443), the legs
//     exit nodes fetch and tunnel over. The super proxy's retry and
//     breaker absorb most of these; the profile exercises the hardening.
//   - lossy-links: every link misbehaves, including client↔super proxy,
//     so faults surface to the measurement client and must be excluded
//     from violation denominators rather than miscounted.
//   - slow-network: trickled reads everywhere plus occasional stalls —
//     the pathological-latency world for soak runs.
var chaosProfiles = []FaultProfile{
	{
		Name:  "flaky-exits",
		Ports: []uint16{80, 443},
		Specs: []FaultSpec{
			{Kind: FaultReset, Prob: 0.015},
			{Kind: FaultStall, Prob: 0.02, AfterBytes: 64},
			{Kind: FaultTruncate, Prob: 0.02, AfterBytes: 96},
		},
	},
	{
		Name: "lossy-links",
		Specs: []FaultSpec{
			{Kind: FaultReset, Prob: 0.01},
			{Kind: FaultTruncate, Prob: 0.015, AfterBytes: 384},
			{Kind: FaultCorrupt, Prob: 0.03, Every: 128},
		},
	},
	{
		Name: "slow-network",
		Specs: []FaultSpec{
			{Kind: FaultTrickle, Prob: 0.25, Chunk: 7},
			{Kind: FaultStall, Prob: 0.015, AfterBytes: 512},
		},
	},
}

// ProfileByName resolves a named chaos profile.
func ProfileByName(name string) (FaultProfile, bool) {
	for _, p := range chaosProfiles {
		if p.Name == name {
			return p, true
		}
	}
	return FaultProfile{}, false
}

// ProfileNames lists the named chaos profiles in listing order.
func ProfileNames() []string {
	out := make([]string, len(chaosProfiles))
	for i, p := range chaosProfiles {
		out[i] = p.Name
	}
	return out
}

// FaultPlane schedules deterministic per-stream faults on a Fabric. Attach
// one via Fabric.Faults; every Dial whose destination port matches the
// profile draws each spec's probability from the plane's seeded stream (in
// spec order, under one lock, so the consumed stream depends only on dial
// order) and injects the hits on the dialer's stream end. With a single
// crawl worker the dial order — and therefore the entire fault schedule —
// is a pure function of (profile, seed).
//
// Injection goes through the ring's existing state-transition path
// (version bump, broadcast, readiness notify), so parked readers, pumping
// handlers, and TryRead/TryWrite splices all observe a fault exactly like
// any other stream event: no goroutines, no blocking, no timers unless a
// spec asks for a Delay.
type FaultPlane struct {
	profile FaultProfile
	clock   Clock

	mu  sync.Mutex
	rng *rand.Rand

	armed    atomic.Int64
	injected [numFaultKinds]atomic.Int64
	onInject atomic.Pointer[func(kind string)]
}

// NewFaultPlane builds a plane for profile whose arming draws come from a
// stream derived from seed and the profile name. clock drives Delay'd
// injections (nil falls back to the wall clock).
func NewFaultPlane(profile FaultProfile, seed uint64, clock Clock) *FaultPlane {
	if clock == nil {
		clock = Real{}
	}
	return &FaultPlane{
		profile: profile,
		clock:   clock,
		rng:     SubRand(seed, "faultplane/"+profile.Name),
	}
}

// OnInject installs a hook called once per injected fault with the kind's
// metric label — the bridge to the run's fault_injected_total counter. The
// hook may fire from a timer callback and must not block.
func (p *FaultPlane) OnInject(fn func(kind string)) {
	if p == nil {
		return
	}
	p.onInject.Store(&fn)
}

// Armed returns how many faults the plane has armed so far.
func (p *FaultPlane) Armed() int64 {
	if p == nil {
		return 0
	}
	return p.armed.Load()
}

// Injected returns how many faults of kind have fired.
func (p *FaultPlane) Injected(kind FaultKind) int64 {
	if p == nil || kind >= numFaultKinds {
		return 0
	}
	return p.injected[kind].Load()
}

// matches reports whether the profile applies to a dial of port.
func (p *FaultPlane) matches(port uint16) bool {
	if len(p.profile.Ports) == 0 {
		return true
	}
	for _, want := range p.profile.Ports {
		if want == port {
			return true
		}
	}
	return false
}

// arm draws the profile's specs for one freshly dialed stream and injects
// (or schedules) the hits on s — the dialer's end, so receive-direction
// faults affect the bytes the dialer reads. Nil-safe: a fabric without a
// plane pays one pointer check per dial.
func (p *FaultPlane) arm(s *Stream, port uint16) {
	if p == nil || !p.matches(port) {
		return
	}
	// One critical section for all draws keeps the consumed random stream
	// a function of dial order alone, however the hits are applied.
	var hits []FaultSpec
	p.mu.Lock()
	for _, spec := range p.profile.Specs {
		if p.rng.Float64() < spec.Prob {
			hits = append(hits, spec)
		}
	}
	p.mu.Unlock()
	if len(hits) == 0 {
		return
	}
	p.armed.Add(int64(len(hits)))
	for _, spec := range hits {
		if spec.Delay > 0 {
			spec := spec
			p.clock.AfterFunc(spec.Delay, func() { p.fire(s, spec) })
			continue
		}
		p.fire(s, spec)
	}
}

// fire applies one armed fault to the stream and reports it.
func (p *FaultPlane) fire(s *Stream, spec FaultSpec) {
	switch spec.Kind {
	case FaultReset:
		s.InjectReset()
	case FaultStall:
		s.InjectStall(spec.AfterBytes)
	case FaultTrickle:
		s.InjectTrickle(spec.Chunk)
	case FaultTruncate:
		s.InjectTruncate(spec.AfterBytes)
	case FaultCorrupt:
		s.InjectCorrupt(spec.Every)
	}
	p.injected[spec.Kind].Add(1)
	if fn := p.onInject.Load(); fn != nil {
		(*fn)(spec.Kind.String())
	}
}
