package simnet

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/netip"
	"os"
	"sync"
	"testing"
	"time"
)

// TestPipeRoundTrip moves data both ways through one pair.
func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe(0)
	msg := []byte("hello across the fabric")
	if n, err := a.Write(msg); err != nil || n != len(msg) {
		t.Fatalf("Write = %d, %v", n, err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(b, got); err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("Read = %q, %v", got, err)
	}
	if n, err := b.Write([]byte("pong")); err != nil || n != 4 {
		t.Fatalf("reverse Write = %d, %v", n, err)
	}
	got = make([]byte, 4)
	if _, err := io.ReadFull(a, got); err != nil || string(got) != "pong" {
		t.Fatalf("reverse Read = %q, %v", got, err)
	}
}

// TestPipeWriteDoesNotBlockWithinWindow is the point of the fast path: a
// writer must complete without any reader present while under the window.
func TestPipeWriteDoesNotBlockWithinWindow(t *testing.T) {
	a, _ := Pipe(4 << 10)
	done := make(chan error, 1)
	go func() {
		_, err := a.Write(make([]byte, 4<<10))
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Write = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("window-sized write blocked with no reader")
	}
}

// TestPipeWriteBlocksBeyondWindow checks backpressure engages at the
// window and releases as the reader drains.
func TestPipeWriteBlocksBeyondWindow(t *testing.T) {
	a, b := Pipe(1 << 10)
	wrote := make(chan int, 1)
	go func() {
		n, _ := a.Write(make([]byte, 3<<10))
		wrote <- n
	}()
	select {
	case <-wrote:
		t.Fatal("3KB write completed against a 1KB window with no reader")
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := io.ReadFull(b, make([]byte, 3<<10)); err != nil {
		t.Fatal(err)
	}
	if n := <-wrote; n != 3<<10 {
		t.Fatalf("writer completed %d of %d", n, 3<<10)
	}
}

// TestPipeCloseWithPendingData: data buffered before Close must still be
// delivered, then EOF — the TCP-like close the relays depend on.
func TestPipeCloseWithPendingData(t *testing.T) {
	a, b := Pipe(0)
	msg := []byte("flushed before close")
	if _, err := a.Write(msg); err != nil {
		t.Fatal(err)
	}
	a.Close()
	got, err := io.ReadAll(b)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("ReadAll after peer close = %q, %v", got, err)
	}
	if _, err := b.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("read after drain = %v, want EOF", err)
	}
}

// TestPipeCloseWrite half-closes: the peer drains to EOF while the
// reverse direction stays open.
func TestPipeCloseWrite(t *testing.T) {
	a, b := Pipe(0)
	a.Write([]byte("fin"))
	if err := a.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(b)
	if err != nil || string(got) != "fin" {
		t.Fatalf("drain = %q, %v", got, err)
	}
	// Reverse direction still works.
	if _, err := b.Write([]byte("ack")); err != nil {
		t.Fatalf("reverse write after CloseWrite = %v", err)
	}
	buf := make([]byte, 3)
	if _, err := io.ReadFull(a, buf); err != nil || string(buf) != "ack" {
		t.Fatalf("reverse read = %q, %v", buf, err)
	}
	// Writes on the closed side fail.
	if _, err := a.Write([]byte("x")); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("write after CloseWrite = %v, want ErrClosedPipe", err)
	}
}

// TestPipeDeadlineExpiryMidRead: a blocked Read must wake with a timeout
// error when its deadline passes.
func TestPipeDeadlineExpiryMidRead(t *testing.T) {
	a, _ := Pipe(0)
	a.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	start := time.Now()
	_, err := a.Read(make([]byte, 1))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("Read = %v, want ErrDeadlineExceeded", err)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("deadline error is not a net.Error timeout: %v", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("read returned before the deadline")
	}
}

// TestPipeDeadlineExpiryMidWrite: a Write blocked on a full window must
// wake with a timeout and report the partial count.
func TestPipeDeadlineExpiryMidWrite(t *testing.T) {
	a, _ := Pipe(1 << 10)
	a.SetWriteDeadline(time.Now().Add(30 * time.Millisecond))
	n, err := a.Write(make([]byte, 4<<10))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("Write = %v, want ErrDeadlineExceeded", err)
	}
	if n != 1<<10 {
		t.Fatalf("partial write = %d, want %d", n, 1<<10)
	}
}

// TestPipeDeadlineReset: re-arming a later deadline after one expired must
// clear the timed-out state (and a racing old timer must not re-set it).
func TestPipeDeadlineReset(t *testing.T) {
	a, b := Pipe(0)
	a.SetReadDeadline(time.Now().Add(-time.Second))
	if _, err := a.Read(make([]byte, 1)); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("expired deadline read = %v", err)
	}
	a.SetReadDeadline(time.Time{})
	b.Write([]byte("y"))
	buf := make([]byte, 1)
	if _, err := a.Read(buf); err != nil || buf[0] != 'y' {
		t.Fatalf("read after reset = %q, %v", buf, err)
	}
}

// TestPipeNetPipeParity runs the same semantic probes against both our
// Pipe and net.Pipe and requires identical outcomes everywhere the two
// can agree (net.Pipe cannot buffer, so probes keep a peer goroutine
// pumping the unbuffered side).
func TestPipeNetPipeParity(t *testing.T) {
	type mk func() (net.Conn, net.Conn)
	impls := map[string]mk{
		"simnet": func() (net.Conn, net.Conn) { a, b := Pipe(0); return a, b },
		"net":    func() (net.Conn, net.Conn) { return net.Pipe() },
	}
	for name, make := range impls {
		t.Run(name, func(t *testing.T) {
			// Write after local close fails with ErrClosedPipe.
			a, _ := make()
			a.Close()
			if _, err := a.Write([]byte("x")); !errors.Is(err, io.ErrClosedPipe) {
				t.Errorf("write after close = %v, want ErrClosedPipe", err)
			}
			// Read after local close fails with ErrClosedPipe.
			a, _ = make()
			a.Close()
			if _, err := a.Read([]byte{0}); !errors.Is(err, io.ErrClosedPipe) {
				t.Errorf("read after close = %v, want ErrClosedPipe", err)
			}
			// Write to a closed peer fails with ErrClosedPipe.
			a, b := make()
			b.Close()
			if _, err := a.Write([]byte("x")); !errors.Is(err, io.ErrClosedPipe) {
				t.Errorf("write to closed peer = %v, want ErrClosedPipe", err)
			}
			// Read from a closed peer (no data) yields EOF.
			a, b = make()
			b.Close()
			if _, err := a.Read([]byte{0}); err != io.EOF {
				t.Errorf("read from closed peer = %v, want EOF", err)
			}
			// Deadline expiry yields a net.Error timeout.
			a, _ = make()
			a.SetReadDeadline(time.Now().Add(10 * time.Millisecond))
			_, err := a.Read([]byte{0})
			var ne net.Error
			if !errors.As(err, &ne) || !ne.Timeout() {
				t.Errorf("deadline read = %v, want net.Error timeout", err)
			}
			// Data crosses intact (reader goroutine for net.Pipe's sake).
			a, b = make()
			msg := []byte("parity payload")
			errc := goWrite(a, msg)
			got := goAllN(b, len(msg))
			if werr := <-errc; werr != nil {
				t.Errorf("write = %v", werr)
			}
			if !bytes.Equal(<-got, msg) {
				t.Error("payload corrupted")
			}
		})
	}
}

func goWrite(c net.Conn, p []byte) chan error {
	errc := make(chan error, 1)
	go func() { _, err := c.Write(p); errc <- err }()
	return errc
}

func goAllN(c net.Conn, n int) chan []byte {
	out := make(chan []byte, 1)
	go func() {
		buf := make([]byte, n)
		io.ReadFull(c, buf)
		out <- buf
	}()
	return out
}

// TestPipeConcurrentReadersWriters hammers one pair from multiple
// goroutines on each side under -race: total bytes must balance.
func TestPipeConcurrentReadersWriters(t *testing.T) {
	a, b := Pipe(2 << 10)
	const writers = 4
	const perWriter = 64 << 10
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			chunk := make([]byte, 1234)
			sent := 0
			for sent < perWriter {
				n := len(chunk)
				if perWriter-sent < n {
					n = perWriter - sent
				}
				w, err := a.Write(chunk[:n])
				if err != nil {
					t.Errorf("writer: %v", err)
					return
				}
				sent += w
			}
		}()
	}
	var readMu sync.Mutex
	totalRead := 0
	var rg sync.WaitGroup
	for i := 0; i < 3; i++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			buf := make([]byte, 2048)
			for {
				n, err := b.Read(buf)
				readMu.Lock()
				totalRead += n
				readMu.Unlock()
				if err != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	a.CloseWrite()
	rg.Wait()
	if totalRead != writers*perWriter {
		t.Fatalf("read %d bytes, wrote %d", totalRead, writers*perWriter)
	}
}

// TestPipeConcurrentCloseDuringTransfer closes both ends mid-flight under
// -race; every goroutine must terminate.
func TestPipeConcurrentCloseDuringTransfer(t *testing.T) {
	for i := 0; i < 20; i++ {
		a, b := Pipe(512)
		var wg sync.WaitGroup
		wg.Add(3)
		go func() {
			defer wg.Done()
			buf := make([]byte, 256)
			for {
				if _, err := a.Write(buf); err != nil {
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			buf := make([]byte, 128)
			for {
				if _, err := b.Read(buf); err != nil {
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			time.Sleep(time.Millisecond)
			a.Close()
			b.Close()
		}()
		wg.Wait()
	}
}

// TestFabricDialStreamAddrs: fabric streams must still report the
// endpoint addresses servers log.
func TestFabricDialStreamAddrs(t *testing.T) {
	f := NewFabric()
	srv := netip.MustParseAddr("10.0.0.2")
	cli := netip.MustParseAddr("10.0.0.1")
	accepted := make(chan net.Conn, 1)
	// HandleTCPStream: the handler hands the conn over a channel instead of
	// serving a request, so it cannot run inline on the dialer's event loop.
	f.HandleTCPStream(srv, 80, func(c net.Conn) { accepted <- c })
	conn, err := f.Dial(context.Background(), cli, srv, 80)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rc := <-accepted
	defer rc.Close()
	ip, ok := RemoteIP(rc)
	if !ok || ip != cli {
		t.Fatalf("server sees peer %v, want %v", ip, cli)
	}
	ip, ok = RemoteIP(conn)
	if !ok || ip != srv {
		t.Fatalf("client sees peer %v, want %v", ip, srv)
	}
}
