package simnet

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// Property: on a Virtual clock, callbacks fire in timestamp order no matter
// the scheduling order, and Now never moves backwards.
func TestPropertyVirtualFiringOrder(t *testing.T) {
	f := func(delaysMs []uint16) bool {
		if len(delaysMs) == 0 {
			return true
		}
		c := NewVirtual(t0)
		var mu sync.Mutex
		var fired []time.Duration
		for _, d := range delaysMs {
			d := time.Duration(d) * time.Millisecond
			c.AfterFunc(d, func() {
				mu.Lock()
				fired = append(fired, d)
				mu.Unlock()
			})
		}
		c.Run()
		if len(fired) != len(delaysMs) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		want := append([]uint16(nil), delaysMs...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		return c.Now().Equal(t0.Add(time.Duration(want[len(want)-1]) * time.Millisecond))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Advance in arbitrary chunks fires exactly the due callbacks.
func TestPropertyVirtualAdvanceChunks(t *testing.T) {
	f := func(delaysMs []uint8, chunksMs []uint8) bool {
		c := NewVirtual(t0)
		fired := 0
		total := 0
		for _, d := range delaysMs {
			total += int(d)
			c.AfterFunc(time.Duration(d)*time.Millisecond, func() { fired++ })
		}
		// Zero-delay callbacks fire on the next Advance, so always take an
		// initial zero step before the fuzzed chunks.
		c.Advance(0)
		elapsed := time.Duration(0)
		for _, ch := range chunksMs {
			c.Advance(time.Duration(ch) * time.Millisecond)
			elapsed += time.Duration(ch) * time.Millisecond
		}
		want := 0
		for _, d := range delaysMs {
			if time.Duration(d)*time.Millisecond <= elapsed {
				want++
			}
		}
		return fired == want && c.Now().Equal(t0.Add(elapsed))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: NewRand is deterministic per seed and distinct across seeds.
func TestPropertyRandSeeding(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := NewRand(seed), NewRand(seed)
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		c := NewRand(seed ^ 0xdeadbeef)
		same := 0
		d := NewRand(seed)
		for i := 0; i < 16; i++ {
			if c.Uint64() == d.Uint64() {
				same++
			}
		}
		return same < 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Fabric property: dialing any registered (addr, port) pair reaches that
// exact handler; unregistered ports are refused.
func TestPropertyFabricRouting(t *testing.T) {
	fab := NewFabric()
	type key struct {
		host byte
		port uint16
	}
	mkAddr := func(h byte) netip.Addr { return netip.AddrFrom4([4]byte{10, 1, 1, h}) }
	for h := byte(1); h <= 4; h++ {
		for p := uint16(1); p <= 3; p++ {
			k := key{h, p * 1000}
			fab.HandleTCP(mkAddr(h), p*1000, func(conn net.Conn) {
				defer conn.Close()
				fmt.Fprintf(conn, "%d/%d", k.host, k.port)
			})
		}
	}
	f := func(h, p uint8) bool {
		host := byte(h%4) + 1
		port := uint16(p%4) * 1000 // 0 is never registered
		conn, err := fab.Dial(context.Background(), mkAddr(9), mkAddr(host), port)
		if port == 0 {
			return err != nil
		}
		if err != nil {
			return false
		}
		defer conn.Close()
		buf := make([]byte, 16)
		n, _ := conn.Read(buf)
		return string(buf[:n]) == fmt.Sprintf("%d/%d", host, port)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
