package proxynet

import (
	"bytes"
	"context"
	"fmt"
	"net/netip"
	"runtime"
	"testing"
	"time"

	"github.com/tftproject/tft/internal/cert"
	"github.com/tftproject/tft/internal/content"
	"github.com/tftproject/tft/internal/dnsserver"
	"github.com/tftproject/tft/internal/geo"
	"github.com/tftproject/tft/internal/middlebox"
	"github.com/tftproject/tft/internal/origin"
	"github.com/tftproject/tft/internal/simnet"
	"github.com/tftproject/tft/internal/tlssim"
)

var (
	t0        = time.Date(2016, 4, 13, 0, 0, 0, 0, time.UTC)
	clientIP  = netip.MustParseAddr("203.0.113.1")
	proxyIP   = netip.MustParseAddr("203.0.113.22")
	webIP     = netip.MustParseAddr("198.51.100.10")
	authIP    = netip.MustParseAddr("198.51.100.53")
	landingIP = netip.MustParseAddr("198.51.100.99")
	siteIP    = netip.MustParseAddr("198.51.100.44")
	ispDNSIP  = netip.MustParseAddr("91.5.0.53")
)

const zone = "probe.tft-example.net"

// testWorld is a miniature end-to-end rig: fabric, clock, authority, web
// server, a handful of exit nodes, a super proxy, and a client.
type testWorld struct {
	fabric *simnet.Fabric
	clock  *simnet.Virtual
	auth   *dnsserver.Authority
	web    *origin.Server
	pool   *Pool
	sp     *SuperProxy
	client *Client
}

func newTestWorld(t *testing.T, churn float64) *testWorld {
	t.Helper()
	w := &testWorld{
		fabric: simnet.NewFabric(),
		clock:  simnet.NewVirtual(t0),
	}
	// Production worlds inject the virtual clock into the fabric (see
	// population.Build), so stream deadlines live on virtual time; the
	// super proxy's response write deadlines depend on that agreement.
	w.fabric.Clock = w.clock
	w.auth = dnsserver.NewAuthority(zone, w.clock)
	w.fabric.HandleDNS(authIP, w.auth.Handler())
	w.web = origin.NewServer(w.clock)
	w.web.AllowSkew = true
	w.fabric.HandleTCP(webIP, 80, w.web.ConnHandler())
	w.fabric.HandleTCP(landingIP, 80, origin.StaticPage(
		middlebox.LandingSpec{Operator: "TestISP", RedirectURL: "http://search.testisp.example/q"}.Render(),
		"text/html"))

	upstream := func(name string) (netip.Addr, bool) { return authIP, true }
	google := dnsserver.NewGoogleResolver(w.fabric, upstream)
	// The super proxy resolves via Google from its pinned egress instance.
	spResolver := &dnsserver.Resolver{
		Addr: geo.GoogleDNSAddr, Net: w.fabric, Upstream: upstream,
		EgressFor: func(netip.Addr) netip.Addr { return geo.SuperProxyResolverEgress },
	}

	w.pool = NewPool(simnet.NewRand(11), churn)
	for i := 0; i < 8; i++ {
		node := &ExitNode{
			ZID:     fmt.Sprintf("z%07d", i),
			Addr:    netip.AddrFrom4([4]byte{91, 5, 1, byte(10 + i)}),
			ASN:     64500,
			Country: "DE",
			Net:     w.fabric,
		}
		if i%2 == 0 {
			node.Resolver = dnsserver.NewResolver(ispDNSIP, w.fabric, upstream)
		} else {
			node.Resolver = google
		}
		if err := w.pool.Add(node); err != nil {
			t.Fatal(err)
		}
	}
	w.sp = NewSuperProxy(proxyIP, w.pool, spResolver, w.clock)
	w.fabric.HandleTCP(proxyIP, ProxyPort, w.sp.ConnHandler())
	w.client = &Client{Net: w.fabric, Src: clientIP, Proxy: proxyIP, User: "lum-customer-tft", Password: "secret"}
	return w
}

func (w *testWorld) setRule(name string, r dnsserver.Rule) {
	w.auth.SetRule(name+"."+zone, r)
}

func TestUsernameRoundTrip(t *testing.T) {
	p := Params{User: "lum-customer-tft", Country: "DE", Session: "429", RemoteDNS: true}
	got := ParseUsername(p.Username())
	if got != p {
		t.Fatalf("round trip = %+v, want %+v", got, p)
	}
	// Plain user with no parameters.
	got = ParseUsername("lum-customer-tft")
	if got.User != "lum-customer-tft" || got.Country != "" || got.Session != "" || got.RemoteDNS {
		t.Fatalf("plain user = %+v", got)
	}
}

func TestProxiedGet(t *testing.T) {
	w := newTestWorld(t, 0)
	w.setRule("d1", dnsserver.Always(webIP))
	resp, dbg, err := w.client.Get(context.Background(), Options{Country: "DE"},
		"http://d1."+zone+"/object.html")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || !bytes.Equal(resp.Body, content.Object(content.KindHTML)) {
		t.Fatalf("status %d, body %d bytes", resp.StatusCode, len(resp.Body))
	}
	if dbg.ZID == "" || !dbg.NodeIP.IsValid() {
		t.Fatalf("debug = %+v", dbg)
	}
	// The origin saw the exit node's IP, not the client's.
	reqs := w.web.RequestsFor("d1." + zone)
	if len(reqs) != 1 || reqs[0].Src != dbg.NodeIP {
		t.Fatalf("origin saw %+v, debug says node %v", reqs, dbg.NodeIP)
	}
	if reqs[0].Src == clientIP {
		t.Fatal("origin saw the measurement client directly")
	}
}

func TestSuperProxyGateBlocksUnknownDomain(t *testing.T) {
	w := newTestWorld(t, 0)
	// No rule for d2: the super proxy's resolver gets NXDOMAIN, so the
	// request must never be forwarded.
	resp, dbg, err := w.client.Get(context.Background(), Options{}, "http://d2."+zone+"/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 502 || dbg.Err != ErrDNSSuper {
		t.Fatalf("resp = %d, dbg = %+v", resp.StatusCode, dbg)
	}
	if w.web.RequestCount() != 0 {
		t.Fatal("request reached the web server despite super proxy NXDOMAIN")
	}
}

func TestD2GateWithRemoteDNS(t *testing.T) {
	w := newTestWorld(t, 0)
	// The d2 rule: answer only the super proxy's resolver egress.
	w.setRule("d2", dnsserver.OnlyFrom(webIP, func(src netip.Addr) bool {
		return src == geo.SuperProxyResolverEgress
	}))
	resp, dbg, err := w.client.Get(context.Background(), Options{RemoteDNS: true}, "http://d2."+zone+"/")
	if err != nil {
		t.Fatal(err)
	}
	// The super proxy forwarded (its resolver was answered), the node's
	// resolver honestly got NXDOMAIN, and the error surfaces in the log.
	if resp.StatusCode != 502 || !dbg.PeerNXDomain() {
		t.Fatalf("resp = %d, dbg = %+v", resp.StatusCode, dbg)
	}
	if dbg.ZID == "" {
		t.Fatal("peer NXDOMAIN without zID attribution")
	}
}

func TestHijackedNodeReturnsLandingContent(t *testing.T) {
	w := newTestWorld(t, 0)
	w.setRule("d2", dnsserver.OnlyFrom(webIP, func(src netip.Addr) bool {
		return src == geo.SuperProxyResolverEgress
	}))
	// Hijack every node's resolver.
	for _, n := range w.pool.Nodes() {
		n.Resolver = &dnsserver.Resolver{
			Addr: ispDNSIP, Net: w.fabric,
			Upstream: func(string) (netip.Addr, bool) { return authIP, true },
			Hijack:   dnsserver.StaticNX{Name: "testisp", Landing: landingIP},
		}
	}
	resp, dbg, err := w.client.Get(context.Background(), Options{RemoteDNS: true}, "http://d2."+zone+"/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || dbg.Err != "" {
		t.Fatalf("hijacked fetch: %d %q", resp.StatusCode, dbg.Err)
	}
	doms := content.ExtractDomains(resp.Body)
	if len(doms) != 1 || doms[0] != "search.testisp.example" {
		t.Fatalf("landing domains = %v", doms)
	}
}

func TestSessionPinning(t *testing.T) {
	w := newTestWorld(t, 0)
	w.setRule("d1", dnsserver.Always(webIP))
	opts := Options{Session: "429"}
	_, dbg1, err := w.client.Get(context.Background(), opts, "http://d1."+zone+"/")
	if err != nil {
		t.Fatal(err)
	}
	w.clock.Advance(10 * time.Second)
	_, dbg2, err := w.client.Get(context.Background(), opts, "http://d1."+zone+"/")
	if err != nil {
		t.Fatal(err)
	}
	if dbg1.ZID != dbg2.ZID {
		t.Fatalf("session not pinned: %s then %s", dbg1.ZID, dbg2.ZID)
	}
}

func TestSessionExpiresAfterTTL(t *testing.T) {
	w := newTestWorld(t, 0)
	w.setRule("d1", dnsserver.Always(webIP))
	opts := Options{Session: "700"}
	zids := make(map[string]bool)
	for i := 0; i < 12; i++ {
		_, dbg, err := w.client.Get(context.Background(), opts, "http://d1."+zone+"/")
		if err != nil {
			t.Fatal(err)
		}
		zids[dbg.ZID] = true
		w.clock.Advance(2 * SessionTTL)
	}
	if len(zids) < 2 {
		t.Fatal("expired sessions kept returning the same node")
	}
}

func TestDifferentSessionsDifferentNodes(t *testing.T) {
	w := newTestWorld(t, 0)
	w.setRule("d1", dnsserver.Always(webIP))
	zids := make(map[string]bool)
	for i := 0; i < 16; i++ {
		_, dbg, err := w.client.Get(context.Background(),
			Options{Session: fmt.Sprintf("s%d", i)}, "http://d1."+zone+"/")
		if err != nil {
			t.Fatal(err)
		}
		zids[dbg.ZID] = true
	}
	if len(zids) < 2 {
		t.Fatal("fresh sessions never rotated exit nodes")
	}
}

func TestPinnedNodeGoneRetriesAndReports(t *testing.T) {
	w := newTestWorld(t, 0)
	w.setRule("d1", dnsserver.Always(webIP))
	opts := Options{Session: "808"}
	_, dbg1, err := w.client.Get(context.Background(), opts, "http://d1."+zone+"/")
	if err != nil {
		t.Fatal(err)
	}
	peer, _ := w.pool.Get(dbg1.ZID)
	peer.(*ExitNode).SetOnline(false)
	_, dbg2, err := w.client.Get(context.Background(), opts, "http://d1."+zone+"/")
	if err != nil {
		t.Fatal(err)
	}
	if dbg2.ZID == dbg1.ZID {
		t.Fatal("offline pinned node served the request")
	}
	if len(dbg2.Attempts) == 0 || dbg2.Attempts[0].ZID != dbg1.ZID {
		t.Fatalf("retry chain missing the dead pin: %+v", dbg2.Attempts)
	}
}

func TestChurnProducesRetryChains(t *testing.T) {
	w := newTestWorld(t, 0.6)
	w.setRule("d1", dnsserver.Always(webIP))
	sawRetry := false
	for i := 0; i < 30 && !sawRetry; i++ {
		_, dbg, err := w.client.Get(context.Background(), Options{}, "http://d1."+zone+"/")
		if err != nil {
			t.Fatal(err)
		}
		if dbg.Err != "" {
			continue
		}
		if len(dbg.Attempts) > 0 {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Fatal("60% churn never produced a visible retry chain")
	}
}

func TestCountrySelection(t *testing.T) {
	w := newTestWorld(t, 0)
	w.setRule("d1", dnsserver.Always(webIP))
	// Add a Brazilian node.
	br := &ExitNode{
		ZID: "zbrazil1", Addr: netip.MustParseAddr("177.10.1.2"), ASN: 64600, Country: "BR",
		Resolver: dnsserver.NewResolver(ispDNSIP, w.fabric, func(string) (netip.Addr, bool) { return authIP, true }),
		Net:      w.fabric,
	}
	if err := w.pool.Add(br); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		_, dbg, err := w.client.Get(context.Background(), Options{Country: "BR"}, "http://d1."+zone+"/")
		if err != nil {
			t.Fatal(err)
		}
		if dbg.ZID != "zbrazil1" {
			t.Fatalf("country-pinned request served by %s", dbg.ZID)
		}
	}
	// A country with no nodes fails after retries.
	resp, dbg, err := w.client.Get(context.Background(), Options{Country: "JP"}, "http://d1."+zone+"/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 502 || dbg.Err != ErrNoPeers {
		t.Fatalf("resp = %d %q", resp.StatusCode, dbg.Err)
	}
}

func TestConnectTunnelCollectsCertificates(t *testing.T) {
	w := newTestWorld(t, 0)
	root := cert.NewRootCA(cert.Name{CommonName: "Site Root"}, "sr", t0.Add(-time.Hour), 1000*time.Hour)
	leaf := root.Issue(cert.Template{Subject: cert.Name{CommonName: "site.example"},
		NotBefore: t0.Add(-time.Hour), NotAfter: t0.Add(1000 * time.Hour), KeySeed: "site"})
	chain := []*cert.Certificate{leaf, root.Cert}
	w.fabric.HandleTCP(siteIP, 443, origin.TLSSite(func(sni string) []*cert.Certificate { return chain }))

	conn, dbg, err := w.client.Connect(context.Background(), Options{}, siteIP.String()+":443")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if dbg.ZID == "" {
		t.Fatal("CONNECT without zID")
	}
	got, err := tlssim.CollectChain(conn, "site.example")
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Fingerprint() != leaf.Fingerprint() {
		t.Fatal("tunnel corrupted the chain")
	}
}

func TestConnectTunnelMITM(t *testing.T) {
	w := newTestWorld(t, 0)
	root := cert.NewRootCA(cert.Name{CommonName: "Site Root"}, "sr", t0.Add(-time.Hour), 1000*time.Hour)
	leaf := root.Issue(cert.Template{Subject: cert.Name{CommonName: "site.example"},
		NotBefore: t0.Add(-time.Hour), NotAfter: t0.Add(1000 * time.Hour), KeySeed: "site"})
	chain := []*cert.Certificate{leaf, root.Cert}
	w.fabric.HandleTCP(siteIP, 443, origin.TLSSite(func(sni string) []*cert.Certificate { return chain }))

	store := cert.NewStore(root.Cert)
	spec := middlebox.ProductSpec{Product: "Avast", IssuerCN: "Avast Web/Mail Shield Root",
		Kind: "Anti-Virus/Security", Invalid: middlebox.InvalidDistinctIssuer}
	pcs := spec.Build(t0, store)
	for _, n := range w.pool.Nodes() {
		n.Path = &middlebox.Path{TLS: []middlebox.TLSInterceptor{
			pcs.Instance(n.ZID, func() time.Time { return t0 }),
		}}
	}
	conn, _, err := w.client.Connect(context.Background(), Options{}, siteIP.String()+":443")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	got, err := tlssim.CollectChain(conn, "site.example")
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Issuer.CommonName != "Avast Web/Mail Shield Root" {
		t.Fatalf("issuer = %q", got[0].Issuer.CommonName)
	}
}

func TestConnectPortRestriction(t *testing.T) {
	w := newTestWorld(t, 0)
	_, dbg, err := w.client.Connect(context.Background(), Options{}, siteIP.String()+":80")
	if err == nil {
		t.Fatal("CONNECT to port 80 succeeded")
	}
	if dbg == nil || dbg.Err == "" {
		t.Fatalf("dbg = %+v", dbg)
	}
}

func TestGetPortRestriction(t *testing.T) {
	w := newTestWorld(t, 0)
	w.setRule("d1", dnsserver.Always(webIP))
	resp, _, err := w.client.Get(context.Background(), Options{}, "http://d1."+zone+":8080/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 403 {
		t.Fatalf("GET to 8080 returned %d", resp.StatusCode)
	}
}

func TestBadAuthRejected(t *testing.T) {
	w := newTestWorld(t, 0)
	w.setRule("d1", dnsserver.Always(webIP))
	bad := &Client{Net: w.fabric, Src: clientIP, Proxy: proxyIP} // empty user
	resp, _, err := bad.Get(context.Background(), Options{}, "http://d1."+zone+"/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 407 {
		t.Fatalf("status = %d, want 407", resp.StatusCode)
	}
}

func TestHTTPInterceptorModifiesProxiedContent(t *testing.T) {
	w := newTestWorld(t, 0)
	w.setRule("d1", dnsserver.Always(webIP))
	for _, n := range w.pool.Nodes() {
		n.Path = &middlebox.Path{HTTP: []middlebox.HTTPInterceptor{
			middlebox.HTMLInjector{Product: "adware", Signature: "msmdzbsyrw.org", SignatureIsURL: true},
		}}
	}
	resp, _, err := w.client.Get(context.Background(), Options{}, "http://d1."+zone+"/object.html")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(resp.Body, []byte("msmdzbsyrw.org")) {
		t.Fatal("injection did not survive the proxy path")
	}
	if bytes.Equal(resp.Body, content.Object(content.KindHTML)) {
		t.Fatal("content unmodified")
	}
}

func TestSessionTablePurge(t *testing.T) {
	clock := simnet.NewVirtual(t0)
	st := newSessionTable(clock)
	st.put("a", "z1")
	st.put("b", "z2")
	clock.Advance(2 * SessionTTL)
	st.put("c", "z3")
	st.purge()
	if st.len() != 1 {
		t.Fatalf("live sessions = %d, want 1", st.len())
	}
	if _, ok := st.get("a"); ok {
		t.Fatal("expired session still resolvable")
	}
	if zid, ok := st.get("c"); !ok || zid != "z3" {
		t.Fatal("fresh session lost")
	}
}

func TestNoGoroutineLeaks(t *testing.T) {
	w := newTestWorld(t, 0)
	w.setRule("d1", dnsserver.Always(webIP))
	// Warm up.
	for i := 0; i < 5; i++ {
		w.client.Get(context.Background(), Options{}, "http://d1."+zone+"/")
	}
	runtime.GC()
	base := runtime.NumGoroutine()
	for i := 0; i < 200; i++ {
		resp, _, err := w.client.Get(context.Background(), Options{}, "http://d1."+zone+"/object.css")
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("request %d: %v %v", i, err, resp)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= base+5 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d -> %d", base, runtime.NumGoroutine())
}
