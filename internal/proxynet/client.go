package proxynet

import (
	"bufio"
	"context"
	"encoding/base64"
	"fmt"
	"net"
	"net/netip"
	"strings"

	"github.com/tftproject/tft/internal/geo"
	"github.com/tftproject/tft/internal/httpwire"
	"github.com/tftproject/tft/internal/trace"
)

// Options are the per-request selection controls a measurement client uses.
type Options struct {
	// Country pins exit-node selection to a country (-country-XX).
	Country geo.CountryCode
	// Session pins subsequent requests to the same exit node (-session-N).
	Session string
	// RemoteDNS makes the exit node perform DNS resolution (-dns-remote) —
	// required to observe the node's resolver at all (§2.3, §4.1).
	RemoteDNS bool
}

// Client is the measurement team's proxy client: it speaks the HTTP proxy
// protocol to the super proxy, authenticating with a parameterized
// username.
type Client struct {
	// Net dials the super proxy.
	Net Dialer
	// Src is the client machine's address.
	Src netip.Addr
	// Proxy is the super proxy's address.
	Proxy netip.Addr
	// User and Password are the zone credentials.
	User, Password string
}

// proxyAuth renders the Proxy-Authorization header value.
func (c *Client) proxyAuth(o Options) string {
	p := Params{User: c.User, Country: o.Country, Session: o.Session, RemoteDNS: o.RemoteDNS}
	cred := p.Username() + ":" + c.Password
	return "Basic " + base64.StdEncoding.EncodeToString([]byte(cred))
}

// stampTrace attaches the context's trace header so the super proxy (and
// the exit node behind it) parent their spans under the client's probe.
func stampTrace(ctx context.Context, req *httpwire.Request) {
	if h := trace.FormatHeader(trace.FromContext(ctx)); h != "" {
		req.Header.Set(trace.HeaderName, h)
	}
}

// parseProxyAuth decodes a Proxy-Authorization header into Params.
func parseProxyAuth(v string) (Params, bool) {
	enc, ok := strings.CutPrefix(v, "Basic ")
	if !ok {
		return Params{}, false
	}
	raw, err := base64.StdEncoding.DecodeString(enc)
	if err != nil {
		return Params{}, false
	}
	cred := string(raw)
	user, _, ok := strings.Cut(cred, ":")
	if !ok || user == "" {
		return Params{}, false
	}
	return ParseUsername(user), true
}

// Get fetches url (absolute http:// form) through the proxy and returns the
// response plus the parsed debug headers. Proxy-level failures (NXDOMAIN at
// the peer, no peers, fetch errors) are reported in Debug.Err with a
// non-nil response, mirroring how Luminati surfaces them; the error return
// covers transport problems only.
func (c *Client) Get(ctx context.Context, o Options, url string) (*httpwire.Response, *Debug, error) {
	conn, err := c.Net.Dial(ctx, c.Src, c.Proxy, ProxyPort)
	if err != nil {
		return nil, nil, fmt.Errorf("proxynet: dialing super proxy: %w", err)
	}
	defer conn.Close()
	req := httpwire.NewRequest("GET", url)
	req.Header.Set("Proxy-Authorization", c.proxyAuth(o))
	stampTrace(ctx, req)
	host, _, _, err := httpwire.ParseAbsoluteURL(url)
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Host", host)
	br := httpwire.GetReader(conn)
	resp, err := httpwire.RoundTrip(conn, br, req)
	httpwire.PutReader(br)
	if err != nil {
		return nil, nil, err
	}
	return resp, ParseDebug(resp.Header), nil
}

// Connect opens a CONNECT tunnel to target ("ip:443") through the proxy.
// On success the returned connection is the raw tunnel; the caller drives
// the TLS handshake (§2.3) and must close it.
func (c *Client) Connect(ctx context.Context, o Options, target string) (net.Conn, *Debug, error) {
	conn, err := c.Net.Dial(ctx, c.Src, c.Proxy, ProxyPort)
	if err != nil {
		return nil, nil, fmt.Errorf("proxynet: dialing super proxy: %w", err)
	}
	req := httpwire.NewRequest("CONNECT", target)
	req.Header.Set("Proxy-Authorization", c.proxyAuth(o))
	stampTrace(ctx, req)
	br := bufio.NewReader(conn)
	resp, err := httpwire.RoundTrip(conn, br, req)
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	dbg := ParseDebug(resp.Header)
	if resp.StatusCode != 200 {
		conn.Close()
		if dbg.Err == "" {
			dbg.Err = resp.Reason
		}
		return nil, dbg, fmt.Errorf("proxynet: CONNECT failed: %d %s", resp.StatusCode, dbg.Err)
	}
	return &bufferedConn{Conn: conn, br: br}, dbg, nil
}

// bufferedConn drains any bytes the response reader buffered before handing
// reads to the underlying connection.
type bufferedConn struct {
	net.Conn
	br *bufio.Reader
}

func (b *bufferedConn) Read(p []byte) (int, error) { return b.br.Read(p) }
